// Shared helpers for the paper-reproduction bench binaries: each binary
// regenerates one table/figure of the paper, printing the rows in the
// paper's shape and dropping a CSV next to the binary for plotting, then
// runs its google-benchmark cases.
#ifndef MEPIPE_BENCH_BENCH_UTIL_H_
#define MEPIPE_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/format.h"
#include "trace/csv.h"

namespace mepipe::bench {

// Prints a titled fixed-width table and writes it as CSV to
// `<csv_name>.csv` in the working directory.
inline void EmitTable(const std::string& title, const std::string& csv_name,
                      const std::vector<std::vector<std::string>>& rows) {
  std::printf("\n=== %s ===\n%s", title.c_str(), RenderTable(rows).c_str());
  if (rows.empty()) {
    return;
  }
  trace::CsvWriter csv(rows.front());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    csv.AddRow(rows[i]);
  }
  const std::string path = csv_name + ".csv";
  csv.WriteFile(path);
  std::printf("(csv written to %s)\n", path.c_str());
}

inline std::string Ms(double seconds) { return StrFormat("%.1f", seconds * 1e3); }
inline std::string Pct(double fraction) { return StrFormat("%.1f%%", fraction * 100.0); }

}  // namespace mepipe::bench

// Standard main: emit the paper artifact first, then run benchmark cases.
#define MEPIPE_BENCH_MAIN(emit_fn)                         \
  int main(int argc, char** argv) {                        \
    emit_fn();                                             \
    ::benchmark::Initialize(&argc, argv);                  \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                            \
    }                                                      \
    ::benchmark::RunSpecifiedBenchmarks();                 \
    ::benchmark::Shutdown();                               \
    return 0;                                              \
  }

#endif  // MEPIPE_BENCH_BENCH_UTIL_H_
