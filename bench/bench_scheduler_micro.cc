// Micro-benchmarks of the library's own machinery (not a paper artifact):
// SVPP schedule generation and discrete-event execution throughput, so
// regressions in the scheduler itself are visible.
#include "bench/bench_util.h"
#include "core/svpp.h"
#include "sched/baselines.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace mepipe {
namespace {

void EmitHeader() {
  std::printf("\n=== Scheduler micro-benchmarks (library performance, not a paper table) ===\n");
}

void BM_GenerateSvpp(benchmark::State& state) {
  core::SvppOptions options;
  options.stages = static_cast<int>(state.range(0));
  options.slices = static_cast<int>(state.range(1));
  options.micros = static_cast<int>(state.range(2));
  std::int64_t ops = 0;
  for (auto _ : state) {
    auto schedule = GenerateSvpp(options);
    ops += static_cast<std::int64_t>(schedule.stage_ops.size() * schedule.stage_ops[0].size());
    benchmark::DoNotOptimize(schedule);
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_GenerateSvpp)
    ->Args({4, 2, 8})
    ->Args({8, 4, 16})
    ->Args({8, 8, 32})
    ->Args({16, 16, 32})
    ->Unit(benchmark::kMillisecond);

void BM_GenerateOneFOneB(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::OneFOneBSchedule(p, n));
  }
}
BENCHMARK(BM_GenerateOneFOneB)->Args({8, 32})->Args({16, 64})->Unit(benchmark::kMillisecond);

void BM_SimulateSchedule(benchmark::State& state) {
  core::SvppOptions options;
  options.stages = 8;
  options.slices = 8;
  options.micros = static_cast<int>(state.range(0));
  const auto schedule = GenerateSvpp(options);
  const sim::UniformCostModel costs(1.0, 1.0, 1.0, 0.05, 8, 3, 35);
  sim::EngineOptions engine;
  engine.wgrad_mode = sim::WgradMode::kFillGemms;
  std::int64_t spans = 0;
  for (auto _ : state) {
    auto result = Simulate(schedule, costs, engine);
    spans += static_cast<std::int64_t>(result.timeline.size());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(spans);
}
BENCHMARK(BM_SimulateSchedule)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_ValidateSchedule(benchmark::State& state) {
  const auto schedule = sched::OneFOneBSchedule(8, 64);
  for (auto _ : state) {
    ValidateSchedule(schedule);
  }
}
BENCHMARK(BM_ValidateSchedule)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitHeader)
