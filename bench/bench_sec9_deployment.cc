// §9 (Discussion), made quantitative: the deployment economics of
// training on cheap accelerators —
//   1. expected cluster-time overhead from hardware failures with
//      memory-based checkpointing (paper: < 5% at 1000 RTX 4090s);
//   2. electric operating cost of both clusters;
//   3. the acquisition-vs-electricity parity horizon (paper: ≈ 24 years
//      for the A100 fleet to catch up).
#include "bench/bench_util.h"
#include "core/deployment.h"
#include "hw/cluster.h"

namespace mepipe {
namespace {

void EmitDeployment() {
  const auto rtx = hw::Rtx4090Cluster();
  const auto a100 = hw::A100Cluster();

  // 1. Failure overhead vs fleet size.
  std::vector<std::vector<std::string>> reliability;
  reliability.push_back({"gpus", "failure_overhead"});
  for (int gpus : {64, 256, 1024, 4096}) {
    reliability.push_back(
        {std::to_string(gpus), bench::Pct(core::FailureOverheadFraction(gpus))});
  }
  bench::EmitTable("§9.1 — expected failure + checkpoint overhead", "sec9_reliability",
                   reliability);
  std::printf("paper's estimate at ~1000 GPUs: < 5%%\n");

  // 2 & 3. Operating cost and parity horizon, plus the rental view of the
  // same fleets (core/deployment tiered economics): what each device
  // costs to *rent* per GPU-hour and per year of continuous use.
  const hw::DeviceTier tiers[] = {hw::A100Tier(), hw::Rtx4090Tier()};
  std::vector<std::vector<std::string>> cost;
  cost.push_back({"cluster", "acquisition_usd", "power_usd_per_day", "tco_1y_usd",
                  "tco_5y_usd", "rental_usd_per_gpu_hour", "rental_1y_usd"});
  for (const hw::DeviceTier& tier : tiers) {
    const auto cluster = tier.spec();
    const double day = core::OperatingCostUsd(cluster, 24.0 * 3600.0);
    hw::ClusterTopology fleet;
    fleet.tiers = {tier};
    const double hourly = core::FleetHourlyCostUsd(fleet);
    cost.push_back({cluster.gpu.name,
                    StrFormat("%.0f", cluster.nodes * cluster.gpu.server_price_usd),
                    StrFormat("%.0f", day),
                    StrFormat("%.0f", core::TotalCostUsd(cluster, 1.0)),
                    StrFormat("%.0f", core::TotalCostUsd(cluster, 5.0)),
                    StrFormat("%.2f", tier.usd_per_gpu_hour),
                    StrFormat("%.0f", hourly * 24.0 * 365.0)});
  }
  bench::EmitTable("§9.3 — acquisition and operating cost", "sec9_cost", cost);

  const double parity = core::CostParityYears(rtx, a100);
  std::printf("cost parity horizon: %.1f years of continuous operation before the\n"
              "A100 cluster's lower power bill cancels its 5x acquisition premium\n"
              "(paper: ~24 years).\n", parity);
}

void BM_FailureOverhead(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::FailureOverheadFraction(static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_FailureOverhead)->Arg(64)->Arg(4096);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitDeployment)
