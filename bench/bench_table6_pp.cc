// Table 6: influence of pipeline-parallel size on DAPPLE for Llama 13B
// at global batch size 64 — (PP, DP, CP) ∈ {(2,4,8), (4,4,4), (8,4,2)}.
// PP=2 exceeds device memory; larger PP raises the bubble ratio but cuts
// static memory and parameter-sync traffic, so PP=8 wins.
#include "bench/bench_util.h"
#include "core/iteration.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe {
namespace {

core::Strategy Dapple(int pp, int dp, int cp) {
  core::Strategy s;
  s.method = core::Method::kDapple;
  s.pp = pp;
  s.dp = dp;
  s.cp = cp;
  return s;
}

void EmitTable6() {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  const int gbs = 64;

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"(PP,DP,CP)", "bubble_ratio", "iteration_time_ms", "peak_mem_GiB"});
  for (const auto& [pp, dp, cp] :
       std::vector<std::tuple<int, int, int>>{{2, 4, 8}, {4, 4, 4}, {8, 4, 2}}) {
    const auto result = core::SimulateIteration(config, Dapple(pp, dp, cp), cluster, gbs);
    rows.push_back({StrFormat("(%d,%d,%d)", pp, dp, cp),
                    result.micros > 0 ? bench::Pct(result.bubble_ratio) : "-",
                    result.feasible ? bench::Ms(result.iteration_time) : "OOM",
                    StrFormat("%.1f", ToGiB(result.peak_memory))});
  }
  bench::EmitTable("Table 6 — influence of PP on DAPPLE (Llama 13B, GBS 64)", "table6_pp",
                   rows);
}

void BM_DapplePpSweep(benchmark::State& state) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  const int pp = static_cast<int>(state.range(0));
  const int cp = 16 / pp;
  for (auto _ : state) {
    auto result = core::SimulateIteration(config, Dapple(pp, 4, cp), cluster, 64);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DapplePpSweep)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitTable6)
