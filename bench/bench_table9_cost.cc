// Table 9: RTX 4090 (64 GPUs, MEPipe) vs A100 (32 GPUs, Megatron-style
// with NVLink tensor parallelism), Llama 7B/13B/34B at GBS 128 —
// iteration time, achieved TFLOPS per GPU, and cost-effectiveness
// (throughput per acquisition dollar; the paper's 2.5× claim).
#include "bench/bench_util.h"
#include "core/deployment.h"
#include "core/planner.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe {
namespace {

using core::Method;

std::optional<core::IterationResult> BestOn(const hw::ClusterSpec& cluster,
                                            const model::TransformerConfig& config,
                                            bool allow_tp) {
  core::PlannerOptions options;
  if (allow_tp) {
    options.tp_candidates = {1, 2, 4, 8};
    options.min_dp = 1;
  }
  std::optional<core::IterationResult> best;
  // The A100 baseline is "the optimal iteration time on the A100 cluster"
  // (§7.6): search the classic Megatron methods; the 4090 side runs
  // MEPipe.
  const std::vector<Method> methods = allow_tp
                                          ? std::vector<Method>{Method::kDapple, Method::kVpp}
                                          : std::vector<Method>{Method::kSvpp};
  for (Method method : methods) {
    const auto result = core::SearchBestStrategy(method, config, cluster, 128, options);
    if (result.best && (!best || result.best->iteration_time < best->iteration_time)) {
      best = result.best;
    }
  }
  return best;
}

void EmitTable9() {
  const auto rtx = hw::Rtx4090Cluster();
  const auto a100 = hw::A100Cluster();
  const double rtx_cluster_price = rtx.nodes * rtx.gpu.server_price_usd;
  const double a100_cluster_price = a100.nodes * a100.gpu.server_price_usd;
  // Rental view of the same fleets (core/deployment): each Table 9 device
  // at its tier's neocloud $/GPU-hour rate.
  hw::ClusterTopology rtx_fleet;
  rtx_fleet.tiers = {hw::Rtx4090Tier()};
  hw::ClusterTopology a100_fleet;
  a100_fleet.tiers = {hw::A100Tier()};
  const double rtx_rate = core::FleetHourlyCostUsd(rtx_fleet);
  const double a100_rate = core::FleetHourlyCostUsd(a100_fleet);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"model", "cluster", "config", "iteration_ms", "tflops_per_gpu",
                  "rental_usd_per_hour", "rental_usd_per_iter",
                  "cost_effectiveness_vs_A100"});
  for (const std::string size : {"7B", "13B", "34B"}) {
    const auto config = model::LlamaBySize(size);
    const auto on_rtx = BestOn(rtx, config, /*allow_tp=*/false);
    const auto on_a100 = BestOn(a100, config, /*allow_tp=*/true);
    double ratio = 0;
    if (on_rtx && on_a100) {
      // Throughput per dollar, normalized to the A100 cluster.
      const double rtx_tput = 1.0 / on_rtx->iteration_time / rtx_cluster_price;
      const double a100_tput = 1.0 / on_a100->iteration_time / a100_cluster_price;
      ratio = rtx_tput / a100_tput;
    }
    auto add = [&rows](const std::string& model_name, const char* cluster_name,
                       const std::optional<core::IterationResult>& r, double hourly_rate,
                       double ratio_value) {
      if (!r) {
        rows.push_back({model_name, cluster_name, "-", "infeasible", "-", "-", "-", "-"});
        return;
      }
      rows.push_back({model_name, cluster_name, r->strategy.ToString(),
                      bench::Ms(r->iteration_time),
                      StrFormat("%.1f", r->per_gpu_flops / 1e12),
                      StrFormat("%.2f", hourly_rate),
                      StrFormat("%.4f", hourly_rate * r->iteration_time / 3600.0),
                      ratio_value > 0 ? StrFormat("%.2fx", ratio_value) : "1.00x (ref)"});
    };
    add(size, "A100-32", on_a100, a100_rate, 0);
    add(size, "RTX4090-64", on_rtx, rtx_rate, ratio);
  }
  bench::EmitTable("Table 9 — A100 vs RTX 4090: time, TFLOPS, cost-effectiveness",
                   "table9_cost", rows);
  std::printf("paper: comparable iteration time, RTX 4090 cluster 2.5x more cost-effective\n"
              "(5x cheaper servers, 2x the GPU count).\n");
}

void BM_A100Plan13B(benchmark::State& state) {
  const auto config = model::Llama13B();
  const auto cluster = hw::A100Cluster();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BestOn(cluster, config, true));
  }
}
BENCHMARK(BM_A100Plan13B)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitTable9)
