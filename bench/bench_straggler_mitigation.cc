// Straggler mitigation study: the same persistent straggler hits a 1F1B
// and an SVPP iteration of equal shape, first on the frozen schedule
// (the sensitivity half, previously in bench_sec9_reliability_sim) and
// then with the rebalancing subsystem in the loop
// (core::MitigateStragglers: estimate the per-stage slowdown, shed
// layers off the slow stage, re-tune caps, regenerate the program
// order, and re-simulate under the *same* fault plan).
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/rebalance.h"
#include "core/svpp.h"
#include "sched/baselines.h"
#include "sim/cost_model.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "trace/ascii.h"

namespace mepipe {
namespace {

constexpr int kStages = 4;
constexpr int kMicros = 16;
constexpr int kUnitsPerChunk = 8;

// A straggler on the middle stage for the whole iteration: the
// persistent case is the one mitigation can plan around (a transient
// window is a repair problem, not a rebalancing one).
sim::FaultPlan PersistentStraggler(double slowdown) {
  sim::FaultPlan plan;
  plan.stragglers.push_back({kStages / 2, 0.0, 1e9, slowdown});
  return plan;
}

core::MitigationReport Mitigate(const sched::Schedule& schedule, const sim::CostModel& costs,
                                double slowdown) {
  core::MitigationOptions options;
  options.rebalance.units_per_chunk = kUnitsPerChunk;
  return core::MitigateStragglers(schedule, costs, PersistentStraggler(slowdown), options);
}

void EmitStragglerMitigation() {
  const auto one_f_one_b = sched::OneFOneBSchedule(kStages, kMicros);
  const auto svpp = core::GenerateSvpp(
      {.stages = kStages, .virtual_chunks = 1, .slices = 4, .micros = kMicros});
  const sim::UniformCostModel fused_costs(1.0, 2.0, 0.0, 0.05);
  const sim::UniformCostModel split_costs(1.0, 1.0, 1.0, 0.05);

  // Sensitivity, now with the mitigated column next to each frozen one:
  // how much of the degradation the rebalancer claws back at each
  // dilation level.
  std::vector<std::vector<std::string>> sensitivity;
  sensitivity.push_back({"slowdown", "window_s", "1f1b_degradation", "1f1b_mitigated",
                         "svpp_degradation", "svpp_mitigated"});
  std::vector<std::vector<std::string>> mitigation;
  mitigation.push_back({"method", "slowdown", "clean_s", "faulted_s", "mitigated_s",
                        "improvement", "plan"});
  for (double slowdown : {1.25, 1.5, 2.0, 3.0}) {
    const auto r1 = Mitigate(one_f_one_b, fused_costs, slowdown);
    const auto rs = Mitigate(svpp, split_costs, slowdown);
    sensitivity.push_back({StrFormat("%.2f", slowdown), "[0,inf)",
                           bench::Pct(r1.degradation() - 1.0),
                           bench::Pct(r1.mitigated_degradation() - 1.0),
                           bench::Pct(rs.degradation() - 1.0),
                           bench::Pct(rs.mitigated_degradation() - 1.0)});
    for (const core::MitigationReport* r : {&r1, &rs}) {
      mitigation.push_back({r == &r1 ? "1F1B" : "SVPP", StrFormat("%.2f", slowdown),
                            StrFormat("%.2f", r->clean_makespan),
                            StrFormat("%.2f", r->faulted_makespan),
                            StrFormat("%.2f", r->mitigated_makespan),
                            StrFormat("%.2fx", r->improvement()), r->plan.Summary()});
    }
  }
  bench::EmitTable(
      "straggler sensitivity — identical fault plan, frozen vs rebalanced schedules",
      "straggler_sensitivity", sensitivity);
  bench::EmitTable("straggler mitigation — estimate, rebalance, re-simulate",
                   "straggler_mitigation", mitigation);

  // One representative timeline: the 2x SVPP case, with the per-stage
  // rebalance annotations on each row.
  const auto showcase = Mitigate(svpp, split_costs, 2.0);
  std::printf("\nmitigated SVPP timeline under the 2.00x straggler (%s):\n%s",
              showcase.plan.Summary().c_str(),
              trace::RenderTimeline(showcase.mitigated, kStages, 100,
                                    showcase.plan.StageLabels(svpp.problem))
                  .c_str());
}

void BM_MitigateStragglers(benchmark::State& state) {
  const auto svpp = core::GenerateSvpp(
      {.stages = kStages, .virtual_chunks = 1, .slices = 4, .micros = kMicros});
  const sim::UniformCostModel costs(1.0, 1.0, 1.0, 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Mitigate(svpp, costs, 2.0).mitigated_makespan);
  }
}
BENCHMARK(BM_MitigateStragglers);

void BM_Rebalance(benchmark::State& state) {
  const int stages = static_cast<int>(state.range(0));
  sched::PipelineProblem problem;
  problem.stages = stages;
  problem.virtual_chunks = 1;
  problem.slices = 4;
  problem.micros = 2 * stages;
  core::StageProfile profile;
  profile.slowdown.assign(static_cast<std::size_t>(stages), 1.0);
  profile.slowdown[static_cast<std::size_t>(stages / 2)] = 2.0;
  core::RebalanceOptions options;
  options.units_per_chunk = kUnitsPerChunk;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Rebalance(profile, problem, options).predicted_gain);
  }
}
BENCHMARK(BM_Rebalance)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitStragglerMitigation)
