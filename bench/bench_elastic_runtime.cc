// Online elastic runtime (core/elastic): frozen vs restart vs elastic
// goodput across an MTBF × fleet × DP-width × repair-time grid. The
// frozen policy stops the world and restores the durable checkpoint on
// every replica loss; restart keeps survivors' state but idles them
// through repair + recovery (the PR-4 baseline on a repair-time axis);
// elastic re-shards to the survivors, re-solves the checkpoint interval
// for the shrunken fleet, and trains degraded until the node returns.
// The gap is the survivors' repair-window work: elastic must never lose
// to restart, and must win outright wherever the repair time exceeds
// the checkpoint interval on a ring wide enough to absorb the loss.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/elastic.h"

namespace mepipe {
namespace {

core::ElasticOptions CellOptions(double mtbf_per_1000_hours, int gpus, int dp,
                                 Seconds repair, std::uint64_t seed) {
  core::ElasticOptions opt;
  opt.run.gpus = gpus;
  opt.run.dp_replicas = dp;
  opt.run.seed = seed;
  opt.run.reliability.mtbf_per_1000_gpus = mtbf_per_1000_hours * 3600.0;
  opt.run.reliability.recovery_time = 120.0;
  opt.run.reliability.checkpoint_write_cost = 20.0;
  const Seconds mtbf = opt.run.reliability.mtbf_per_1000_gpus * 1000.0 / gpus;
  opt.run.target_useful_time = 80.0 * mtbf;
  opt.repair_time = repair;
  opt.reshard_stall = 20.0;
  opt.replan_stall = 30.0;
  // Re-solve the checkpoint interval per surviving-fleet shape, at
  // trimmed solver effort — it runs once per (shape, cell), memoized.
  opt.resolve_checkpoint_interval = true;
  opt.interval_solve_mtbfs = 20.0;
  opt.interval_solver = {0, 0, /*coarse_points=*/7, /*golden_iterations=*/6};
  return opt;
}

void EmitElasticRuntime() {
  constexpr Seconds kIteration = 5.0;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"gpus", "dp", "mtbf_s", "repair_s", "interval_s",
                  "goodput_frozen", "goodput_restart", "goodput_elastic",
                  "degraded_frac", "reshards", "elastic_vs_restart"});
  int violations = 0;
  std::uint64_t seed = 1;
  for (double mtbf_hours : {6.0, 24.0}) {
    for (int gpus : {1024, 4096, 16384}) {
      for (int dp : {2, 4, 8}) {
        for (Seconds repair : {600.0, 7200.0}) {
          ++seed;
          core::ElasticOptions opt = CellOptions(mtbf_hours, gpus, dp, repair, seed);
          const Seconds mtbf = opt.run.reliability.mtbf_per_1000_gpus * 1000.0 / gpus;

          opt.policy = core::ElasticPolicy::kFrozen;
          const core::ElasticMetrics frozen = core::SimulateElasticRun(kIteration, opt);
          opt.policy = core::ElasticPolicy::kRestart;
          const core::ElasticMetrics restart = core::SimulateElasticRun(kIteration, opt);
          opt.policy = core::ElasticPolicy::kElastic;
          const core::ElasticMetrics elastic = core::SimulateElasticRun(kIteration, opt);

          const Seconds interval =
              elastic.checkpoint_interval_by_survivors[static_cast<std::size_t>(dp - 1)];
          if (elastic.goodput + 1e-9 < restart.goodput) {
            ++violations;
          }
          if (dp > 2 && repair > interval &&
              elastic.goodput <= restart.goodput) {
            ++violations;
          }
          rows.push_back({std::to_string(gpus), std::to_string(dp),
                          StrFormat("%.0f", mtbf), StrFormat("%.0f", repair),
                          StrFormat("%.0f", interval),
                          StrFormat("%.4f", frozen.goodput),
                          StrFormat("%.4f", restart.goodput),
                          StrFormat("%.4f", elastic.goodput),
                          StrFormat("%.4f", elastic.degraded_fraction),
                          std::to_string(elastic.reshards),
                          StrFormat("%.3fx", elastic.goodput / restart.goodput)});
        }
      }
    }
  }
  bench::EmitTable(
      "Online elastic runtime — frozen vs restart vs elastic goodput "
      "(MTBF x fleet x DP x repair)",
      "elastic_runtime", rows);
  std::printf("dominance violations (elastic < restart, or tie where repair > "
              "interval at dp > 2): %d — must be 0\n",
              violations);
}

void BM_ElasticRun(benchmark::State& state) {
  core::ElasticOptions opt =
      CellOptions(6.0, 4096, static_cast<int>(state.range(0)), 3600.0, 7);
  opt.resolve_checkpoint_interval = false;  // time the control loop itself
  opt.run.reliability.checkpoint_interval = 600.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SimulateElasticRun(5.0, opt).goodput);
  }
}
BENCHMARK(BM_ElasticRun)->Arg(2)->Arg(8);

void BM_ElasticDetector(benchmark::State& state) {
  core::ElasticOptions opt = CellOptions(24.0, 1024, 4, 1800.0, 11);
  opt.resolve_checkpoint_interval = false;
  opt.run.reliability.checkpoint_interval = 600.0;
  opt.straggler.mtbf = 5000.0;
  opt.straggler.slowdown = 2.0;
  opt.straggler.duration = 2000.0;
  opt.straggler.busy_noise_sigma = 0.02;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SimulateElasticRun(5.0, opt).replans);
  }
}
BENCHMARK(BM_ElasticDetector);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitElasticRuntime)
