// Table 7: influence of context-parallel size on DAPPLE for Llama 13B at
// global batch size 32 — (PP,DP,CP) ∈ {(8,8,1), (8,4,2), (8,2,4)}.
// CP=2 wins: the bubble reduction (more micro-batches per replica)
// outweighs the KV-exchange overhead; CP=4's communication dominates.
#include "bench/bench_util.h"
#include "core/analytic.h"
#include "core/iteration.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe {
namespace {

core::Strategy Dapple(int pp, int dp, int cp) {
  core::Strategy s;
  s.method = core::Method::kDapple;
  s.pp = pp;
  s.dp = dp;
  s.cp = cp;
  return s;
}

void EmitTable7() {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  const int gbs = 32;

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"(PP,DP,CP)", "n", "bubble_analytic", "bubble_simulated",
                  "iteration_time_ms"});
  for (const auto& [pp, dp, cp] :
       std::vector<std::tuple<int, int, int>>{{8, 8, 1}, {8, 4, 2}, {8, 2, 4}}) {
    const auto result = core::SimulateIteration(config, Dapple(pp, dp, cp), cluster, gbs);
    const auto analytic = core::Analyze(core::Method::kDapple, {pp, 1, 1, gbs / dp});
    rows.push_back({StrFormat("(%d,%d,%d)", pp, dp, cp), std::to_string(gbs / dp),
                    analytic ? bench::Pct(analytic->bubble_ratio) : "-",
                    result.micros > 0 ? bench::Pct(result.bubble_ratio) : "-",
                    result.feasible ? bench::Ms(result.iteration_time) : result.note});
  }
  bench::EmitTable("Table 7 — influence of CP on DAPPLE (Llama 13B, GBS 32)", "table7_cp",
                   rows);
  std::printf("paper analytic bubbles: 63.6%% / 46.7%% / 30.4%% — reproduced exactly by the\n"
              "closed form; the measured column adds communication effects.\n");
}

void BM_DappleCpSweep(benchmark::State& state) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  const int cp = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = core::SimulateIteration(config, Dapple(8, 8 / cp, cp), cluster, 32);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DappleCpSweep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitTable7)
