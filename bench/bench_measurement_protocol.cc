// The §7.1 measurement protocol applied to the headline configuration:
// "Each task is executed for 100 iterations … We measure the average
// time of the last 10 iterations as the result." Reports tail mean ±
// stddev under per-op jitter for MEPipe and the strongest baseline,
// demonstrating that the paper's point estimates are stable.
#include "bench/bench_util.h"
#include "core/experiment.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe {
namespace {

core::Strategy Mepipe13B() {
  core::Strategy s;
  s.method = core::Method::kSvpp;
  s.pp = 8;
  s.dp = 8;
  s.spp = 4;
  return s;
}

core::Strategy Zb13B() {
  core::Strategy s;
  s.method = core::Method::kZb1p;
  s.pp = 8;
  s.dp = 4;
  s.cp = 2;
  return s;
}

void EmitProtocol() {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  core::ExperimentOptions options;
  options.iterations = 100;
  options.tail = 10;
  options.noise_sigma = 0.03;

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"system", "config", "tail_mean_ms", "tail_stddev_ms", "tail_min_ms",
                  "tail_max_ms"});
  for (const core::Strategy& strategy : {Mepipe13B(), Zb13B()}) {
    const auto report = RunExperiment(config, strategy, cluster, 128, options);
    if (!report.feasible) {
      rows.push_back({ToString(strategy.method), strategy.ToString(), report.note, "-", "-",
                      "-"});
      continue;
    }
    rows.push_back({ToString(strategy.method), strategy.ToString(),
                    bench::Ms(report.mean_iteration), bench::Ms(report.stddev_iteration),
                    bench::Ms(report.min_iteration), bench::Ms(report.max_iteration)});
  }
  bench::EmitTable(
      "§7.1 measurement protocol — 100 jittered iterations, average of the last 10",
      "measurement_protocol", rows);
  std::printf("per-op jitter sigma = 3%%; iteration-level dispersion is far smaller —\n"
              "the paper's average-of-10 protocol yields stable point estimates.\n");
}

void BM_HundredIterations(benchmark::State& state) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  core::ExperimentOptions options;
  options.iterations = 10;
  options.tail = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunExperiment(config, Mepipe13B(), cluster, 128, options));
  }
}
BENCHMARK(BM_HundredIterations)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitProtocol)
