// Figures 11-12: the fine-grained weight-gradient ablation. MEPipe on
// Llama 13B, GBS 64, with its Table 5 configuration, executed (a) with W
// computed immediately after each backward (Figure 11's baseline) and
// (b) with per-GEMM W work dynamically filled into communication waits
// and the iteration tail (Figure 12). The paper measures 9.4%
// improvement; we report the same ratio plus the rendered timelines.
#include "bench/bench_util.h"
#include "core/iteration.h"
#include "hw/cluster.h"
#include "model/transformer.h"
#include "core/memory_model.h"
#include "core/svpp.h"
#include "trace/ascii.h"
#include "trace/memory_timeline.h"

namespace mepipe {
namespace {

core::Strategy PaperConfig() {
  core::Strategy s;
  s.method = core::Method::kSvpp;
  s.pp = 8;
  s.dp = 8;
  s.spp = 4;  // Table 5: (8, 4, 1)
  return s;
}

core::IterationResult Run(sim::WgradMode mode) {
  core::IterationOptions options;
  options.wgrad_mode = mode;
  return SimulateIteration(model::Llama13B(), PaperConfig(), hw::Rtx4090Cluster(), 64,
                           options);
}

// Re-run the fine-grained mode with the memory series recorded, for the
// Figure-1-style sparkline view of per-stage activation residency.
sim::SimResult RunWithMemorySeries() {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  const core::Strategy strategy = PaperConfig();
  sched::PipelineProblem problem;
  problem.stages = strategy.pp;
  problem.slices = strategy.spp;
  problem.micros = 64 / strategy.dp;
  problem.split_backward = true;
  const core::TrainingCostModel costs(config, strategy, cluster, problem);
  core::SvppOptions svpp;
  svpp.stages = strategy.pp;
  svpp.slices = strategy.spp;
  svpp.micros = problem.micros;
  svpp.max_inflight = ChooseSvppVariant(costs, svpp, cluster.gpu).f;
  sim::EngineOptions engine;
  engine.wgrad_mode = sim::WgradMode::kFillGemms;
  engine.record_memory_timeline = true;
  return Simulate(GenerateSvpp(svpp), costs, engine);
}

void EmitAblation() {
  const auto immediate = Run(sim::WgradMode::kImmediate);
  const auto whole = Run(sim::WgradMode::kFillWhole);
  const auto gemms = Run(sim::WgradMode::kFillGemms);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"wgrad_policy", "iteration_ms", "pipeline_ms", "bubble", "peak_mem_GiB"});
  auto add = [&rows](const char* name, const core::IterationResult& r) {
    rows.push_back({name, bench::Ms(r.iteration_time), bench::Ms(r.pipeline_time),
                    bench::Pct(r.bubble_ratio), StrFormat("%.1f", ToGiB(r.peak_memory))});
  };
  add("immediate (Fig.11 baseline)", immediate);
  add("deferred whole-W (ZB-style)", whole);
  add("fine-grained per-GEMM (Fig.12)", gemms);
  bench::EmitTable("Figures 11-12 — fine-grained weight-gradient ablation (13B, GBS 64)",
                   "fig11_wgrad_ablation", rows);

  std::printf("improvement from fine-grained W: %.1f%% (paper: 9.4%%)\n",
              100.0 * (immediate.iteration_time - gemms.iteration_time) /
                  immediate.iteration_time);

  std::printf("\nTimeline without fine-grained W (Figure 11):\n%s",
              trace::RenderTimeline(immediate.sim, PaperConfig().pp, 110).c_str());
  std::printf("\nTimeline with fine-grained W (Figure 12):\n%s",
              trace::RenderTimeline(gemms.sim, PaperConfig().pp, 110).c_str());

  std::printf("\nPer-stage activation residency over the iteration (fine-grained W):\n%s",
              trace::RenderMemorySparklines(RunWithMemorySeries(), 110).c_str());
}

void BM_WgradMode(benchmark::State& state) {
  const auto mode = static_cast<sim::WgradMode>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Run(mode));
  }
}
BENCHMARK(BM_WgradMode)
    ->Arg(static_cast<int>(sim::WgradMode::kImmediate))
    ->Arg(static_cast<int>(sim::WgradMode::kFillGemms))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitAblation)
