// Surrogate planner scaling (core/surrogate + the two-phase driver in
// core/planner): how faithfully the analytic surrogate ranks the
// strategy grid against the full discrete-event search, and how many
// candidates per second the surrogate sweep prices.
//
// planner_scale.csv holds only the deterministic fidelity numbers —
// per method × objective: top-1 agreement, top-5 recall, Spearman rank
// correlation, worst relative score error, and whether the two-phase
// search lands on the exhaustive winner. Throughput (candidates/sec,
// cache-hit speedup) is machine-dependent and goes to stdout only, so
// the CI drift job can diff the CSV byte for byte.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/planner.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe {
namespace {

using core::Method;
using core::PlannerObjective;
using core::PlannerOptions;
using core::PlannerResult;
using core::Strategy;

// The fidelity grid: small enough to price every candidate with the
// exact engine, wide enough that ranking errors would show.
PlannerOptions FidelityOptions(PlannerObjective objective) {
  PlannerOptions options;
  options.pp_candidates = {2, 4, 8};
  options.slice_candidates = {1, 2, 4, 8};
  options.vp_candidates = {1, 2};
  options.objective = objective;
  options.resilience.seed = 7;
  // Trimmed interval-solver effort: the goodput objective solves once
  // per feasible candidate. Deterministic, just cheaper.
  options.interval_solver = {0, 0, /*coarse_points=*/9, /*golden_iterations=*/8};
  return options;
}

// The score each objective ranks by, on the exact side.
double DesScore(const core::IterationResult& result, PlannerObjective objective) {
  return objective == PlannerObjective::kGoodput ? result.goodput.effective_iteration_time
                                                 : result.iteration_time;
}

// ... and on the surrogate side (the planner's phase-1 ranking rule).
double SurrogateScore(const core::SurrogateResult& result, const PlannerOptions& options) {
  if (options.objective != PlannerObjective::kGoodput) {
    return result.iteration_time;
  }
  core::ResilienceOptions res = options.resilience;
  res.dp_replicas = result.strategy.dp;
  return core::ClosedFormGoodput(result.iteration_time, result.checkpoint_shard, res,
                                 options.checkpoint_cost)
      .effective_iteration_time;
}

// Indices of the k best scores, ascending.
std::vector<std::size_t> TopK(const std::vector<double>& scores,
                              const std::vector<std::size_t>& candidates, std::size_t k) {
  std::vector<std::size_t> order = candidates;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] != scores[b] ? scores[a] < scores[b] : a < b;
  });
  order.resize(std::min(k, order.size()));
  return order;
}

// Spearman rank correlation between two scores over the same index set.
double SpearmanCorrelation(const std::vector<double>& a, const std::vector<double>& b,
                           const std::vector<std::size_t>& indices) {
  const std::size_t n = indices.size();
  if (n < 2) {
    return 1.0;
  }
  const auto ranks = [&](const std::vector<double>& scores) {
    std::vector<std::size_t> order = indices;
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return scores[x] != scores[y] ? scores[x] < scores[y] : x < y;
    });
    std::vector<double> rank(n);
    for (std::size_t pos = 0; pos < n; ++pos) {
      const auto it = std::find(indices.begin(), indices.end(), order[pos]);
      rank[static_cast<std::size_t>(it - indices.begin())] = static_cast<double>(pos);
    }
    return rank;
  };
  const std::vector<double> ra = ranks(a);
  const std::vector<double> rb = ranks(b);
  double d2 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = ra[i] - rb[i];
    d2 += d * d;
  }
  const double nn = static_cast<double>(n);
  return 1.0 - 6.0 * d2 / (nn * (nn * nn - 1.0));
}

void EmitPlannerScale() {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  const int gbs = 64;
  const std::vector<Method> methods = {Method::kDapple, Method::kVpp, Method::kZb1p,
                                       Method::kSvpp};

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"method", "objective", "candidates", "feasible", "top1_agree",
                  "top5_recall", "rank_corr", "max_rel_err_pct", "twophase_match",
                  "sims_exhaustive", "sims_twophase"});
  int fidelity_misses = 0;
  for (PlannerObjective objective :
       {PlannerObjective::kIterationTime, PlannerObjective::kGoodput}) {
    for (Method method : methods) {
      const PlannerOptions options = FidelityOptions(objective);
      const PlannerResult exact =
          core::SearchBestStrategy(method, config, cluster, gbs, options);

      // Surrogate-price the identical candidate list (grid order).
      std::vector<double> des_score(exact.evaluated.size());
      std::vector<double> sur_score(exact.evaluated.size());
      std::vector<std::size_t> common;  // feasible on both sides
      core::SurrogateOptions surrogate;
      surrogate.iteration = options.iteration;
      surrogate.iteration.keep_timeline = false;
      double max_rel_err = 0;
      for (std::size_t i = 0; i < exact.evaluated.size(); ++i) {
        const core::IterationResult& des = exact.evaluated[i];
        if (!des.feasible) {
          continue;
        }
        const core::SurrogateResult priced =
            core::SurrogatePrice(config, des.strategy, cluster, gbs, surrogate);
        if (!priced.feasible) {
          continue;
        }
        des_score[i] = DesScore(des, objective);
        sur_score[i] = SurrogateScore(priced, options);
        common.push_back(i);
        max_rel_err = std::max(
            max_rel_err, std::abs(sur_score[i] - des_score[i]) / des_score[i]);
      }

      const std::vector<std::size_t> des_top = TopK(des_score, common, 5);
      const std::vector<std::size_t> sur_top = TopK(sur_score, common, 5);
      const bool top1 = !des_top.empty() && !sur_top.empty() && des_top[0] == sur_top[0];
      std::size_t recalled = 0;
      for (const std::size_t i : des_top) {
        recalled += std::count(sur_top.begin(), sur_top.end(), i) > 0 ? 1u : 0u;
      }
      const double recall =
          des_top.empty() ? 1.0
                          : static_cast<double>(recalled) / static_cast<double>(des_top.size());
      const double corr = SpearmanCorrelation(des_score, sur_score, common);

      PlannerOptions two_phase_options = FidelityOptions(objective);
      two_phase_options.two_phase = true;
      two_phase_options.surrogate_top_k = 5;
      two_phase_options.threads = 2;
      const PlannerResult two_phase =
          core::SearchBestStrategy(method, config, cluster, gbs, two_phase_options);
      const bool match =
          exact.best.has_value() == two_phase.best.has_value() &&
          (!exact.best ||
           exact.best->strategy.ToString() == two_phase.best->strategy.ToString());

      if (!top1 || recall < 0.95 || !match) {
        ++fidelity_misses;
      }
      rows.push_back({std::string(ToString(method)),
                      objective == PlannerObjective::kGoodput ? "goodput" : "iter_time",
                      StrFormat("%zu", exact.evaluated.size()),
                      StrFormat("%zu", common.size()), top1 ? "yes" : "no",
                      StrFormat("%.2f", recall), StrFormat("%.3f", corr),
                      StrFormat("%.2f", max_rel_err * 100.0), match ? "yes" : "no",
                      StrFormat("%d", exact.simulated),
                      StrFormat("%d", two_phase.simulated)});
    }
  }
  bench::EmitTable("Surrogate vs DES ranking fidelity (Llama-13B, RTX 4090, GBS 64)",
                   "planner_scale", rows);
  std::printf("fidelity misses (top1/recall/two-phase): %d\n", fidelity_misses);

  // ---- throughput: machine-dependent, stdout only -------------------------
  // A wide grid across methods, model sizes, and batch sizes; every
  // structurally enumerable candidate is priced by the surrogate.
  core::SurrogateCache cache;
  PlannerOptions sweep;
  sweep.min_dp = 2;
  sweep.pp_candidates = {2, 4, 5, 8, 10, 16, 20, 32};
  sweep.slice_candidates = {1, 2, 4, 8, 16};
  sweep.vp_candidates = {1, 2, 4, 5, 8};
  sweep.tp_candidates = {1, 2, 4, 8};
  sweep.two_phase = true;
  sweep.surrogate_top_k = 1;  // throughput: phase 1 is the workload
  sweep.threads = 0;          // hardware concurrency
  sweep.cache = &cache;
  const std::vector<Method> all_methods = {
      Method::kGPipe, Method::kDapple, Method::kVpp,  Method::kHanayo, Method::kTeraPipe,
      Method::kZb1p,  Method::kZbv,    Method::kSvpp, Method::kZbvCapped};
  const auto run_sweep = [&]() {
    long candidates = 0;
    long hits = 0;
    for (const char* size : {"7B", "13B", "34B"}) {
      const auto swept_config = model::LlamaBySize(size);
      for (int batch : {16, 32, 64, 128}) {
        for (Method method : all_methods) {
          const PlannerResult result =
              core::SearchBestStrategy(method, swept_config, cluster, batch, sweep);
          candidates += result.surrogate_priced;
          hits += result.cache_hits;
        }
      }
    }
    return std::pair<long, long>{candidates, hits};
  };

  const auto cold_start = std::chrono::steady_clock::now();
  const auto [cold_candidates, cold_hits] = run_sweep();
  const double cold_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - cold_start).count();
  const auto warm_start = std::chrono::steady_clock::now();
  const auto [warm_candidates, warm_hits] = run_sweep();
  const double warm_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - warm_start).count();
  std::printf(
      "\nsurrogate sweep: %ld candidates in %.2fs (%.0f candidates/sec, %ld cache hits)\n",
      cold_candidates, cold_s, cold_candidates / cold_s, cold_hits);
  std::printf(
      "cached re-sweep: %ld candidates in %.2fs (%.0f candidates/sec, %ld/%ld served)\n",
      warm_candidates, warm_s, warm_candidates / warm_s, warm_hits, warm_candidates);
}

void BM_SurrogatePriceCandidate(benchmark::State& state) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  Strategy strategy;
  strategy.method = Method::kSvpp;
  strategy.pp = 8;
  strategy.spp = 8;
  strategy.dp = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::SurrogatePrice(config, strategy, cluster, 64).iteration_time);
  }
}
BENCHMARK(BM_SurrogatePriceCandidate);

void BM_DesPriceCandidate(benchmark::State& state) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  Strategy strategy;
  strategy.method = Method::kSvpp;
  strategy.pp = 8;
  strategy.spp = 8;
  strategy.dp = 8;
  core::IterationOptions options;
  options.keep_timeline = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::SimulateIteration(config, strategy, cluster, 64, options).iteration_time);
  }
}
BENCHMARK(BM_DesPriceCandidate);

void BM_TwoPhaseSearch(benchmark::State& state) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  PlannerOptions options = FidelityOptions(PlannerObjective::kIterationTime);
  options.two_phase = state.range(0) != 0;
  options.surrogate_top_k = 5;
  options.threads = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::SearchBestStrategy(Method::kSvpp, config, cluster, 64, options).simulated);
  }
}
BENCHMARK(BM_TwoPhaseSearch)->Arg(0)->Arg(1);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitPlannerScale)
