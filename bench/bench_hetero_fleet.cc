// Heterogeneous-fleet planning: a mixed RTX 4090 + A100 fleet whose
// cross-tier link sweeps from same-campus LAN to metered WAN. Each cell
// runs the fleet grid search twice — kDollarCost and kIterationTime —
// and compares both against the all-premium baseline (the A100 tier
// alone). The dollar objective should abandon the premium tier on WAN
// cells: egress billing makes split placements expensive and the A100's
// rental rate makes uniform-premium expensive, so the cost winner lands
// on the cheap tier even when the time winner does not.
#include "bench/bench_util.h"
#include "core/planner.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe {
namespace {

using core::Method;

constexpr int kGlobalBatch = 128;

hw::ClusterTopology MixedFleet(const hw::TierLink& cross) {
  hw::ClusterTopology fleet;
  fleet.tiers = {hw::Rtx4090Tier(), hw::A100Tier()};
  fleet.SetLinkBetween(0, 1, cross);
  return fleet;
}

core::PlannerOptions FleetOptions(core::SurrogateCache* cache, core::PlannerObjective objective,
                                  int threads) {
  core::PlannerOptions options;
  options.min_dp = 1;
  options.pp_candidates = {4, 8};
  options.slice_candidates = {1, 4};
  options.vp_candidates = {1};
  options.two_phase = true;
  options.surrogate_top_k = 8;
  options.threads = threads;
  options.cache = cache;
  options.objective = objective;
  return options;
}

std::optional<core::PlacedIterationResult> Search(const hw::ClusterTopology& fleet,
                                                  core::SurrogateCache* cache,
                                                  core::PlannerObjective objective,
                                                  int threads = 8) {
  const auto result = core::SearchBestFleetStrategy(Method::kSvpp, model::Llama13B(), fleet,
                                                    kGlobalBatch, FleetOptions(cache, objective, threads));
  return result.best;
}

// The all-premium placement inside the two-tier fleet: every stage on
// the A100 tier (index 1).
bool AllPremium(const hw::StagePlacement& placement) {
  return placement.uniform() && placement.tier_of(0) == 1;
}

void EmitHeteroFleet() {
  struct Cell {
    const char* link;
    std::string gbps;
    double egress_usd_per_gb;
    hw::TierLink cross;
  };
  const std::vector<Cell> cells = {
      {"lan", "-", 0.0, hw::LanLink(hw::Rtx4090Cluster().inter_node)},
      {"wan", "25", 0.02, hw::WanLink(25.0, 0.02)},
      {"wan", "25", 0.08, hw::WanLink(25.0, 0.08)},
      {"wan", "5", 0.02, hw::WanLink(5.0, 0.02)},
      {"wan", "5", 0.08, hw::WanLink(5.0, 0.08)},
  };

  core::SurrogateCache cache;

  // All-premium baseline: the best the A100 tier alone can do, priced in
  // dollars (single-tier fleet — time and dollar ranking coincide up to
  // dp's rank footprint, so search the dollar objective directly).
  hw::ClusterTopology premium;
  premium.tiers = {hw::A100Tier()};
  const auto on_premium = Search(premium, &cache, core::PlannerObjective::kDollarCost);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"link", "wan_gbps", "egress_usd_per_gb", "cost_config", "cost_usd_per_iter",
                  "cost_iter_ms", "time_config", "time_usd_per_iter", "time_iter_ms",
                  "premium_usd_per_iter", "flip_from_premium"});
  int wan_flips = 0;
  int wan_cells = 0;
  for (const Cell& cell : cells) {
    const auto fleet = MixedFleet(cell.cross);
    const auto by_cost = Search(fleet, &cache, core::PlannerObjective::kDollarCost);
    const auto by_time = Search(fleet, &cache, core::PlannerObjective::kIterationTime);
    if (!by_cost || !by_time || !on_premium) {
      rows.push_back({cell.link, cell.gbps, StrFormat("%.2f", cell.egress_usd_per_gb),
                      "infeasible", "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    const bool flip = !AllPremium(by_cost->placed.placement) &&
                      by_cost->dollars.usd_per_iteration <
                          on_premium->dollars.usd_per_iteration;
    const bool is_wan = cell.cross.wan;
    wan_cells += is_wan ? 1 : 0;
    wan_flips += (is_wan && flip) ? 1 : 0;
    rows.push_back({cell.link, cell.gbps, StrFormat("%.2f", cell.egress_usd_per_gb),
                    by_cost->placed.ToString(),
                    StrFormat("%.4f", by_cost->dollars.usd_per_iteration),
                    bench::Ms(by_cost->result.iteration_time), by_time->placed.ToString(),
                    StrFormat("%.4f", by_time->dollars.usd_per_iteration),
                    bench::Ms(by_time->result.iteration_time),
                    StrFormat("%.4f", on_premium->dollars.usd_per_iteration),
                    flip ? "yes" : "no"});
  }
  bench::EmitTable("Heterogeneous fleet — cost-optimal vs time-optimal vs all-premium",
                   "hetero_fleet", rows);
  std::printf("kDollarCost abandons the all-premium placement on %d of %d WAN cells.\n",
              wan_flips, wan_cells);

  // Two-phase determinism: the winner must be bit-identical whether the
  // surrogate sweep runs on 1, 2, or 8 workers.
  const auto parity_fleet = MixedFleet(hw::WanLink(25.0, 0.02));
  const auto t1 = Search(parity_fleet, &cache, core::PlannerObjective::kDollarCost, 1);
  const auto t2 = Search(parity_fleet, &cache, core::PlannerObjective::kDollarCost, 2);
  const auto t8 = Search(parity_fleet, &cache, core::PlannerObjective::kDollarCost, 8);
  const bool parity = t1 && t2 && t8 && t1->placed.ToString() == t2->placed.ToString() &&
                      t1->placed.ToString() == t8->placed.ToString() &&
                      t1->dollars.usd_per_iteration == t2->dollars.usd_per_iteration &&
                      t1->dollars.usd_per_iteration == t8->dollars.usd_per_iteration;
  std::printf("two-phase thread parity (1/2/8 workers): %s\n", parity ? "ok" : "MISMATCH");
}

void BM_FleetPlan(benchmark::State& state) {
  core::SurrogateCache cache;
  const auto fleet = MixedFleet(hw::WanLink(25.0, 0.02));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Search(fleet, &cache, core::PlannerObjective::kDollarCost, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_FleetPlan)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitHeteroFleet)
