// Figure 1: bubble ratio vs. peak activation memory per worker for the
// state-of-the-art scheduling methods on Llama 13B (context 4096, p=8,
// virtual pipeline size 2 where applicable, micro-batch size 1, n=8).
//
// DAPPLE/VPP/TeraPipe/SVPP points come from executable schedules measured
// by the engine (uniform per-op costs — Figure 1 is a scheduling-theory
// figure, not a wall-clock one); Hanayo is analytic (Table 3), exactly as
// the paper treats it.
#include <optional>

#include "bench/bench_util.h"
#include "core/analytic.h"
#include "core/svpp.h"
#include "model/memory.h"
#include "model/transformer.h"
#include "sched/baselines.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace mepipe {
namespace {

constexpr int kStages = 8;
constexpr int kVirtual = 2;
constexpr int kMicros = 8;

struct Point {
  std::string method;
  double bubble_ratio = 0;
  double activation_fraction = 0;  // of A
};

// Measures an executable schedule with uniform costs; activation memory
// is reported as retained (slice, chunk) forwards × their share of A.
Point Measure(const std::string& name, const sched::Schedule& schedule) {
  const int units = schedule.problem.slices * schedule.problem.num_chunks();
  const sim::UniformCostModel costs(1.0, schedule.problem.split_backward ? 1.0 : 2.0,
                                    1.0, 0.0, /*act_bytes=*/1);
  const sim::SimResult result = Simulate(schedule, costs);
  Point point;
  point.method = name;
  point.bubble_ratio = result.bubble_ratio;
  point.activation_fraction =
      static_cast<double>(result.peak_activation) / static_cast<double>(units);
  return point;
}

std::vector<Point> BuildPoints() {
  std::vector<Point> points;
  points.push_back(Measure("DAPPLE", sched::OneFOneBSchedule(kStages, kMicros)));
  points.push_back(Measure("VPP", sched::VppSchedule(kStages, kVirtual, kMicros)));
  if (const auto hanayo =
          core::Analyze(core::Method::kHanayo, {kStages, kVirtual, 1, kMicros})) {
    points.push_back({"Hanayo (analytic)", hanayo->bubble_ratio, hanayo->activation_fraction});
  }
  points.push_back(Measure("TeraPipe s=4", sched::TeraPipeSchedule(kStages, 4, kMicros)));
  for (int s : {4, 8}) {
    core::SvppOptions options;
    options.stages = kStages;
    options.virtual_chunks = kVirtual;
    options.slices = s;
    options.micros = kMicros;
    options.split_backward = false;
    options.max_inflight = core::Table3Inflight(options);
    points.push_back(Measure(StrFormat("MEPipe (SVPP) s=%d", s), GenerateSvpp(options)));
  }
  return points;
}

void EmitFigure1() {
  const auto config = model::Llama13B();
  const double a_gib = ToGiB(model::SampleActivationBytes(config));

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"method", "bubble_ratio", "peak_act_fraction_of_A", "peak_act_GiB"});
  double dapple_gib = 0;
  double svpp4_gib = 0;
  double svpp8_gib = 0;
  for (const Point& point : BuildPoints()) {
    const double gib = point.activation_fraction * a_gib;
    rows.push_back({point.method, bench::Pct(point.bubble_ratio),
                    StrFormat("%.3f", point.activation_fraction), StrFormat("%.2f", gib)});
    if (point.method == "DAPPLE") {
      dapple_gib = gib;
    } else if (point.method == "MEPipe (SVPP) s=4") {
      svpp4_gib = gib;
    } else if (point.method == "MEPipe (SVPP) s=8") {
      svpp8_gib = gib;
    }
  }
  bench::EmitTable(
      StrFormat("Figure 1 — bubble ratio vs peak activation memory (Llama 13B, A = %.1f GiB)",
                a_gib),
      "fig01_memory_bubble", rows);
  std::printf("memory reduction vs DAPPLE: s=4 %.0f%%, s=8 %.0f%% (paper: >70%%, >80%%)\n",
              100.0 * (1.0 - svpp4_gib / dapple_gib), 100.0 * (1.0 - svpp8_gib / dapple_gib));
}

void BM_Figure1Points(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPoints());
  }
}
BENCHMARK(BM_Figure1Points)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitFigure1)
