// Ablations of MEPipe's design choices (called out in DESIGN.md):
//
//  A. §4.3 backward rescheduling — child-count priority among ready
//     backwards, on vs off.
//  B. §5 slice partitioning — uniform slices (MEPipe's choice at 4k
//     context, shape-friendly) vs TeraPipe-style balanced non-uniform
//     slices, at context 4k and 128k. The paper predicts uniform wins at
//     moderate context and non-uniform wins beyond ~128k tokens.
#include "bench/bench_util.h"
#include "core/iteration.h"
#include "core/svpp.h"
#include "hw/cluster.h"
#include "model/slicing.h"
#include "model/transformer.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace mepipe {
namespace {

// --- A: backward rescheduling -----------------------------------------------

double SvppMakespan(int p, int v, int s, int n, bool reschedule) {
  core::SvppOptions options;
  options.stages = p;
  options.virtual_chunks = v;
  options.slices = s;
  options.micros = n;
  options.reschedule_backwards = reschedule;
  const auto schedule = GenerateSvpp(options);
  const sim::UniformCostModel costs(1.0, 1.0, 1.0, 0.05, 4, 2, 8);
  sim::EngineOptions engine;
  engine.wgrad_mode = sim::WgradMode::kFillGemms;
  return Simulate(schedule, costs, engine).makespan;
}

void EmitReschedulingAblation() {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"(p,v,s,n)", "makespan_base", "makespan_rescheduled", "gain"});
  for (const auto& [p, v, s, n] : std::vector<std::tuple<int, int, int, int>>{
           {4, 1, 2, 8}, {4, 2, 2, 8}, {8, 1, 4, 16}, {8, 2, 2, 16}}) {
    const double base = SvppMakespan(p, v, s, n, false);
    const double rescheduled = SvppMakespan(p, v, s, n, true);
    rows.push_back({StrFormat("(%d,%d,%d,%d)", p, v, s, n), StrFormat("%.1f", base),
                    StrFormat("%.1f", rescheduled),
                    StrFormat("%+.1f%%", 100.0 * (base - rescheduled) / base)});
  }
  bench::EmitTable("Ablation A — §4.3 backward rescheduling (child-count priority)",
                   "ablation_rescheduling", rows);
}

// --- B: slice partitioning ----------------------------------------------------

core::IterationResult RunSlicing(std::int64_t seq_len, bool balanced,
                                 std::int64_t alignment) {
  auto config = model::Llama13B();
  config.seq_len = seq_len;
  const auto cluster = hw::Rtx4090Cluster();
  core::Strategy strategy;
  strategy.method = core::Method::kSvpp;
  strategy.pp = 8;
  strategy.dp = 8;
  strategy.spp = 8;
  core::IterationOptions options;
  options.cost.balanced_slices = balanced;
  options.cost.slice_alignment = alignment;
  options.keep_timeline = false;
  // Pin the memory variant so only the slicing differs.
  options.svpp_inflight = 15;
  return SimulateIteration(config, strategy, cluster, 64, options);
}

void EmitSlicingAblation() {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"context", "slicing", "imbalance", "pipeline_ms", "note"});
  const auto config13 = model::Llama13B();
  for (const std::int64_t seq_len : {4096LL, 131072LL}) {
    const double uni_imb =
        model::SliceImbalance(config13, model::UniformSlices(seq_len, 8));
    auto cfg = config13;
    cfg.seq_len = seq_len;
    const double bal_imb =
        model::SliceImbalance(cfg, model::AlignSlices(model::BalancedSlices(cfg, seq_len, 8), 128));
    const auto uniform = RunSlicing(seq_len, false, 1);
    const auto balanced = RunSlicing(seq_len, true, 128);
    rows.push_back({std::to_string(seq_len), "uniform", StrFormat("%.3f", uni_imb),
                    bench::Ms(uniform.pipeline_time),
                    uniform.feasible ? "ok" : "(memory exceeded; timing-only)"});
    rows.push_back({std::to_string(seq_len), "balanced+aligned", StrFormat("%.3f", bal_imb),
                    bench::Ms(balanced.pipeline_time),
                    balanced.feasible ? "ok" : "(memory exceeded; timing-only)"});
  }
  bench::EmitTable(
      "Ablation B — uniform vs balanced slice partitioning (13B, pp=8, spp=8)",
      "ablation_slicing", rows);
  std::printf("§5's prediction: uniform + fine-grained W suffices at 4k context;\n"
              "balanced partitioning pays off once attention dominates (~128k).\n");
}

void EmitAll() {
  EmitReschedulingAblation();
  EmitSlicingAblation();
}

void BM_BalancedSlices(benchmark::State& state) {
  const auto config = model::Llama13B();
  const std::int64_t seq_len = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::BalancedSlices(config, seq_len, 16));
  }
}
BENCHMARK(BM_BalancedSlices)->Arg(4096)->Arg(131072);

void BM_RescheduledGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(SvppMakespan(8, 1, 4, 16, true));
  }
}
BENCHMARK(BM_RescheduledGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitAll)
