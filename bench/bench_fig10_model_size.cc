// Figure 10 + Table 8: iteration time of Llama 7B/13B/34B at global
// batch size 128 on the 64× RTX 4090 cluster, each system grid-searched
// to its optimal configuration (§7.4).
#include "bench/bench_util.h"
#include "core/planner.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe {
namespace {

using core::Method;

const std::vector<Method> kSystems = {Method::kDapple, Method::kVpp, Method::kZb1p,
                                      Method::kZbv, Method::kSvpp};

void EmitFigure10() {
  const auto cluster = hw::Rtx4090Cluster();
  const int gbs = 128;

  std::vector<std::vector<std::string>> fig10;
  fig10.push_back({"model", "system", "iteration_ms", "bubble", "mfu", "tflops_per_gpu"});
  std::vector<std::vector<std::string>> table8;
  table8.push_back({"system", "model", "PP", "CP/SPP", "VP", "recompute", "note"});

  for (const std::string size : {"7B", "13B", "34B"}) {
    const auto config = model::LlamaBySize(size);
    double best_other = 1e300;
    double mepipe_time = 0;
    for (Method method : kSystems) {
      const auto result = core::SearchBestStrategy(method, config, cluster, gbs);
      if (!result.best) {
        fig10.push_back({size, ToString(method), "infeasible", "-", "-", "-"});
        table8.push_back({ToString(method), size, "-", "-", "-", "-", "OOM"});
        continue;
      }
      const auto& b = *result.best;
      fig10.push_back({size, ToString(method), bench::Ms(b.iteration_time),
                       bench::Pct(b.bubble_ratio), bench::Pct(b.mfu),
                       StrFormat("%.1f", b.per_gpu_flops / 1e12)});
      table8.push_back({ToString(method), size, std::to_string(b.strategy.pp),
                        std::to_string(std::max(b.strategy.cp, b.strategy.spp)),
                        std::to_string(b.strategy.vp), b.strategy.recompute ? "yes" : "no",
                        "ok"});
      if (method == Method::kSvpp) {
        mepipe_time = b.iteration_time;
      } else {
        best_other = std::min(best_other, b.iteration_time);
      }
    }
    if (mepipe_time > 0 && best_other < 1e300) {
      std::printf("%s: MEPipe speedup over best baseline: %.2fx\n", size.c_str(),
                  best_other / mepipe_time);
    }
  }
  bench::EmitTable("Figure 10 — iteration time vs model size (GBS 128)", "fig10_model_size",
                   fig10);
  bench::EmitTable("Table 8 — optimal parallel configurations per model size",
                   "table8_configs", table8);
}

void BM_Plan34B(benchmark::State& state) {
  const auto config = model::Llama34B();
  const auto cluster = hw::Rtx4090Cluster();
  for (auto _ : state) {
    auto result = core::SearchBestStrategy(Method::kSvpp, config, cluster, 128);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Plan34B)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitFigure10)
