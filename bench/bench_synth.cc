// Memory–bubble frontier of the budgeted schedule synthesizer
// (sched/synth.h) at the paper's canonical scheduling-theory shape
// (p=8, n=8, uniform per-op costs, zero transfer): one synthesized
// point per activation budget from the v-chunk floor up to 1F1B parity
// (2p retained chunk-forwards), against the handcrafted constructions
// at their own budgets.
//
// The frontier column is the cumulative best over budgets <= c — the
// honest "best known schedule within budget c" (the raw per-cap sweep
// is not perfectly monotone; both columns are emitted so nothing is
// silently dropped). The pinned CSV doubles as the acceptance artifact:
// at budget 16 the synthesizer reaches the 6n+(p-1) bound while the
// capped generator approximation sits far above it at the same honest
// memory — a strict domination.
#include <algorithm>

#include "bench/bench_util.h"
#include "sched/baselines.h"
#include "sched/synth.h"
#include "sched/validate.h"
#include "sched/zbv.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace mepipe {
namespace {

constexpr int kStages = 8;
constexpr int kMicros = 8;

struct Point {
  std::string method;
  int budget = 0;        // retained chunk-forwards, worst stage
  double makespan = 0;   // chunk-op units
  double bubble = 0;
  int peak_retained = 0;
  bool at_bound = false;  // reached the chunk-chain lower bound
};

int PeakRetained(const sched::Schedule& schedule) {
  int peak = 0;
  for (int stage = 0; stage < schedule.problem.stages; ++stage) {
    peak = std::max(peak, sched::PeakRetainedForwards(schedule, stage));
  }
  return peak;
}

sim::SimResult Run(const sched::Schedule& schedule) {
  // Split schedules price B and W separately; fused ones pay both halves
  // in their B — same total work per micro either way.
  const sim::UniformCostModel costs(1.0, schedule.problem.split_backward ? 1.0 : 2.0, 1.0,
                                    0.0);
  sim::EngineOptions options;
  if (schedule.deferred_wgrad) {
    options.wgrad_mode = sim::WgradMode::kFillWhole;
  }
  return Simulate(schedule, costs, options);
}

sched::Schedule SynthAt(int cap) {
  sched::PipelineProblem problem;
  problem.stages = kStages;
  problem.virtual_chunks = 2;
  problem.micros = kMicros;
  problem.split_backward = true;
  problem.placement = sched::ChunkPlacement::kVShape;
  sched::SynthOptions options;
  options.transfer_time = 0.0;
  options.budget.assign(static_cast<std::size_t>(kStages), cap);
  return sched::SynthesizeSchedule(problem, options);
}

Point Measure(const std::string& method, int budget, const sched::Schedule& schedule) {
  const sim::SimResult result = Run(schedule);
  Point point;
  point.method = method;
  point.budget = budget;
  point.makespan = result.makespan;
  point.bubble = result.bubble_ratio;
  point.peak_retained = PeakRetained(schedule);
  // The 6n+(p-1) chunk-chain bound is the split-family yardstick; fused
  // schedules price B+W as one op and are not comparable against it.
  point.at_bound = schedule.problem.split_backward &&
                   result.makespan <= 6.0 * kMicros + (kStages - 1) + 1e-9;
  return point;
}

std::vector<Point> BuildFrontier() {
  std::vector<Point> points;
  // Synthesized sweep: v=2 split V-shape from the v floor to 1F1B parity.
  for (int cap = 2; cap <= 2 * kStages; ++cap) {
    points.push_back(Measure(StrFormat("Synth cap=%d", cap), cap, SynthAt(cap)));
  }
  // Handcrafted constructions at their own budgets, for comparison. The
  // capped generator's budget is its *honest* peak — its deferred Ws
  // hold every forward past its B, 1F1B parity, not the ~A/2 its
  // release-on-B accounting suggests (see core/iteration).
  points.push_back(Measure("DAPPLE (1F1B)", std::min(kStages, kMicros),
                           sched::OneFOneBSchedule(kStages, kMicros)));
  points.push_back(Measure("ZBV handcrafted", sched::ZbvMaxRetainedForwards(kStages, kMicros),
                           sched::ZbvSchedule(kStages, kMicros)));
  points.push_back(Measure("ZBV-capped (honest mem)",
                           sched::ZbvMaxRetainedForwards(kStages, kMicros),
                           sched::ZbvCappedSchedule(kStages, kMicros)));
  return points;
}

void EmitFrontier() {
  const std::vector<Point> points = BuildFrontier();

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"method", "budget_chunk_forwards", "makespan", "frontier_makespan",
                  "bubble_ratio", "peak_retained", "at_bound"});
  double frontier = 0.0;
  double synth_at_parity = 0.0;
  double capped_at_parity = 0.0;
  for (const Point& point : points) {
    const bool synth = point.method.rfind("Synth", 0) == 0;
    if (synth) {
      frontier = frontier > 0.0 ? std::min(frontier, point.makespan) : point.makespan;
      if (point.budget == 2 * kStages) {
        synth_at_parity = point.makespan;
      }
    } else if (point.method.rfind("ZBV-capped", 0) == 0) {
      capped_at_parity = point.makespan;
    }
    rows.push_back({point.method, StrFormat("%d", point.budget),
                    StrFormat("%.2f", point.makespan),
                    synth ? StrFormat("%.2f", frontier) : "-", bench::Pct(point.bubble),
                    StrFormat("%d", point.peak_retained), point.at_bound ? "yes" : "no"});
  }
  bench::EmitTable(
      StrFormat("Synthesizer memory–bubble frontier (p=%d, n=%d, v=2 split V-shape, "
                "uniform costs)",
                kStages, kMicros),
      "synth_frontier", rows);
  std::printf("domination at 1F1B-parity memory (%d chunk-forwards): synth %.0f vs "
              "ZBV-capped %.0f chunk-op units (bound %.0f)\n",
              2 * kStages, synth_at_parity, capped_at_parity,
              6.0 * kMicros + (kStages - 1));
}

void BM_SynthesizeParityBudget(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(SynthAt(2 * kStages));
  }
}
BENCHMARK(BM_SynthesizeParityBudget)->Unit(benchmark::kMillisecond);

void BM_SynthesizeTightBudget(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(SynthAt(4));
  }
}
BENCHMARK(BM_SynthesizeTightBudget)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitFrontier)
