// Checkpoint-interval optimization and restart scopes, §9's reliability
// discussion carried one step further: instead of measuring the overhead
// of a *given* checkpoint interval (bench_sec9_reliability_sim), solve
// for the goodput-optimal interval per (fleet size × write cost × MTBF)
// and cross-validate the Young/Daly closed form + simulation refinement
// against a brute-force scan of the simulated optimum. The companion
// table compares full-pipeline restart against DP-replica-local restart
// (only the lost replica replays the interrupted iteration) across
// data-parallel widths.
#include <cmath>

#include "bench/bench_util.h"
#include "core/resilience.h"

namespace mepipe {
namespace {

constexpr Seconds kIterationTime = 5.0;

// Brute-force simulated optimum over a denser log-spaced interval grid
// than the solver's coarse scan uses.
struct SimulatedOptimum {
  Seconds interval = 0;
  double goodput = 0;
};

SimulatedOptimum BruteForceOptimum(const core::ResilienceOptions& base, Seconds lo,
                                   Seconds hi, int points) {
  SimulatedOptimum best;
  for (int i = 0; i < points; ++i) {
    const Seconds interval =
        lo * std::pow(hi / lo, static_cast<double>(i) / (points - 1));
    core::ResilienceOptions run = base;
    run.reliability.checkpoint_interval = interval;
    const double goodput =
        core::SimulateTrainingRun(kIterationTime, run).goodput;
    if (goodput > best.goodput) {
      best = {interval, goodput};
    }
  }
  return best;
}

void EmitCheckpointInterval() {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"gpus", "write_cost_s", "mtbf_s", "young_s", "daly_s", "refined_s",
                  "sim_opt_s", "goodput_refined", "goodput_sim_opt", "goodput_gap"});
  for (int gpus : {1024, 4096, 16384}) {
    for (double write_cost : {2.0, 10.0, 30.0}) {
      for (double mtbf_per_1000_h : {6.0, 12.0, 24.0}) {
        core::ResilienceOptions options;
        options.gpus = gpus;
        options.seed = 2025;
        options.reliability.mtbf_per_1000_gpus = mtbf_per_1000_h * 3600.0;
        options.reliability.checkpoint_write_cost = write_cost;
        const Seconds mtbf =
            options.reliability.mtbf_per_1000_gpus * 1000.0 / gpus;
        options.target_useful_time = 200.0 * mtbf;  // ~200 expected failures

        const core::CheckpointIntervalSolution sol =
            core::OptimalCheckpointInterval(kIterationTime, options);
        const SimulatedOptimum opt =
            BruteForceOptimum(options, sol.daly / 16.0, sol.daly * 16.0, 33);
        const double gap = (opt.goodput - sol.goodput) / opt.goodput;
        rows.push_back({std::to_string(gpus), StrFormat("%.0f", write_cost),
                        StrFormat("%.0f", mtbf), StrFormat("%.1f", sol.young),
                        StrFormat("%.1f", sol.daly), StrFormat("%.1f", sol.refined),
                        StrFormat("%.1f", opt.interval), bench::Pct(sol.goodput),
                        bench::Pct(opt.goodput), bench::Pct(gap)});
      }
    }
  }
  bench::EmitTable(
      "checkpoint-interval solver: Young/Daly + refinement vs brute-force simulated optimum",
      "checkpoint_interval", rows);
  std::printf("acceptance: goodput at the solver interval within 5%% of the simulated optimum\n");
}

void EmitReplicaRestart() {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"dp", "lost_full_s", "lost_replica_s", "lost_shrink", "goodput_full",
                  "goodput_replica", "restarts_full", "restarts_replica"});
  for (int dp : {1, 2, 4, 8, 16}) {
    core::ResilienceOptions options;
    options.gpus = 4096;
    // Distinct failure trajectory per row (dp itself only gates the
    // scope, not the Poisson draws).
    options.seed = 2025 + static_cast<std::uint64_t>(dp);
    options.reliability.checkpoint_write_cost = 10.0;
    const Seconds mtbf =
        options.reliability.mtbf_per_1000_gpus * 1000.0 / options.gpus;
    options.target_useful_time = 200.0 * mtbf;
    options.dp_replicas = dp;

    options.restart_scope = sim::RestartScope::kFullPipeline;
    const core::ResilienceMetrics full =
        core::SimulateTrainingRun(kIterationTime, options);
    options.restart_scope = sim::RestartScope::kDpReplicaLocal;
    const core::ResilienceMetrics replica =
        core::SimulateTrainingRun(kIterationTime, options);

    const double shrink =
        full.lost_time > 0 ? 1.0 - replica.lost_time / full.lost_time : 0.0;
    rows.push_back({std::to_string(dp), StrFormat("%.1f", full.lost_time),
                    StrFormat("%.1f", replica.lost_time), bench::Pct(shrink),
                    bench::Pct(full.goodput), bench::Pct(replica.goodput),
                    std::to_string(full.restarts), std::to_string(replica.restarts)});
  }
  bench::EmitTable(
      "restart scope: full-pipeline rollback vs DP-replica-local replay (4096 GPUs)",
      "replica_restart", rows);
  std::printf("dp=1 has no surviving peer (scopes coincide); dp>1 must strictly shrink lost time\n");
}

void EmitAll() {
  EmitCheckpointInterval();
  EmitReplicaRestart();
}

void BM_OptimalCheckpointInterval(benchmark::State& state) {
  core::ResilienceOptions options;
  options.gpus = static_cast<int>(state.range(0));
  options.seed = 7;
  options.target_useful_time = 1e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::OptimalCheckpointInterval(kIterationTime, options).refined);
  }
}
BENCHMARK(BM_OptimalCheckpointInterval)->Arg(1024)->Arg(16384);

void BM_ReplicaRestartRun(benchmark::State& state) {
  core::ResilienceOptions options;
  options.gpus = 4096;
  options.target_useful_time = 1e6;
  options.restart_scope = sim::RestartScope::kDpReplicaLocal;
  options.dp_replicas = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SimulateTrainingRun(kIterationTime, options).lost_time);
  }
}
BENCHMARK(BM_ReplicaRestartRun)->Arg(1)->Arg(8);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitAll)
