// Figure 9: measured performance of one Llama 13B transformer layer as
// the sample is cut into 1/2/4/8 pieces by context parallelism (CP,
// which pays KV-exchange communication) versus sequence pipeline
// parallelism (SPP, which pays only kernel-shape efficiency).
//
// The paper's claims reproduced here: SPP=8 loses ≈12.6% of layer
// throughput; CP loses strictly more at every size (claim C2).
#include "bench/bench_util.h"
#include "hw/cluster.h"
#include "hw/comm_model.h"
#include "hw/efficiency.h"
#include "model/flops.h"
#include "model/transformer.h"

namespace mepipe {
namespace {

struct LayerPerf {
  Seconds time_per_layer = 0;   // per whole sample, per GPU-visible work
  double relative = 1.0;        // vs size=1
};

// Per-GPU time to push one whole sample through one transformer layer.
Seconds SppLayerTime(const model::TransformerConfig& config, int spp,
                     const hw::ClusterSpec& cluster, const hw::EfficiencyModel& eff) {
  Seconds total = 0;
  for (const model::SliceSpan& span : model::UniformSlices(config.seq_len, spp)) {
    const model::LayerFlops flops = ForwardLayerFlops(config, span);
    total += eff.KernelTime(flops.total(), cluster.gpu, config, span.tokens);
  }
  return total;
}

// Per-GPU time for a CP rank's share of one layer (tokens/cp + the KV
// ring exchange), normalized back to whole-sample work by ×cp.
Seconds CpLayerTime(const model::TransformerConfig& config, int cp,
                    const hw::ClusterSpec& cluster, const hw::EfficiencyModel& eff) {
  const hw::CommModel comm(cluster);
  const std::int64_t tokens = config.seq_len / cp;
  const model::LayerFlops whole = ForwardLayerFlops(config, {0, config.seq_len});
  const Flops rank_flops = whole.gemm / cp + whole.attention / cp;
  const hw::ParallelLayout layout{8, 64 / 8 / cp, cp, 1};
  const Seconds compute = eff.KernelTime(rank_flops, cluster.gpu, config, tokens);
  const Seconds exchange = comm.CpKvExchangePerLayer(config, tokens, layout);
  return (compute + exchange) * cp;  // whole-sample equivalent
}

void EmitFigure9() {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  const hw::EfficiencyModel eff;

  const Seconds base = SppLayerTime(config, 1, cluster, eff);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"size", "SPP_layer_ms", "SPP_relative_perf", "CP_layer_ms",
                  "CP_relative_perf"});
  double spp8_rel = 1.0;
  for (int size : {1, 2, 4, 8}) {
    const Seconds spp = SppLayerTime(config, size, cluster, eff);
    const Seconds cp = CpLayerTime(config, size, cluster, eff);
    const double spp_rel = base / spp;
    const double cp_rel = base / cp;
    if (size == 8) {
      spp8_rel = spp_rel;
    }
    rows.push_back({std::to_string(size), StrFormat("%.2f", ToMilliseconds(spp)),
                    StrFormat("%.3f", spp_rel), StrFormat("%.2f", ToMilliseconds(cp)),
                    StrFormat("%.3f", cp_rel)});
  }
  bench::EmitTable("Figure 9 — transformer-layer performance vs CP/SPP size (Llama 13B)",
                   "fig09_layer_perf", rows);
  std::printf("SPP=8 degradation: %.1f%% (paper: 12.6%%); CP is worse at every size.\n",
              100.0 * (1.0 - spp8_rel));
}

void BM_SppLayer(benchmark::State& state) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  const hw::EfficiencyModel eff;
  const int spp = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SppLayerTime(config, spp, cluster, eff));
  }
}
BENCHMARK(BM_SppLayer)->Arg(1)->Arg(8);

void BM_CpLayer(benchmark::State& state) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  const hw::EfficiencyModel eff;
  const int cp = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CpLayerTime(config, cp, cluster, eff));
  }
}
BENCHMARK(BM_CpLayer)->Arg(2)->Arg(8);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitFigure9)
