// Table 3: closed-form bubble ratio and activation memory of every
// scheduling method, in both regimes (n ≥ p and n < p), cross-checked
// against the discrete-event simulator under the table's assumptions.
#include <optional>

#include "bench/bench_util.h"
#include "core/analytic.h"
#include "core/svpp.h"
#include "sched/baselines.h"
#include "sched/zbv.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace mepipe {
namespace {

using core::AnalyticInput;
using core::Method;

std::optional<double> SimulatedBubble(Method method, const AnalyticInput& in) {
  sched::Schedule schedule;
  switch (method) {
    case Method::kGPipe:
      schedule = sched::GPipeSchedule(in.p, in.n);
      break;
    case Method::kDapple:
      schedule = sched::OneFOneBSchedule(in.p, in.n);
      break;
    case Method::kVpp:
      if (in.n % in.p != 0) {
        return std::nullopt;
      }
      schedule = sched::VppSchedule(in.p, in.v, in.n);
      break;
    case Method::kTeraPipe:
      schedule = sched::TeraPipeSchedule(in.p, in.s, in.n);
      break;
    case Method::kSvpp: {
      core::SvppOptions options;
      options.stages = in.p;
      options.virtual_chunks = in.v;
      options.slices = in.s;
      options.micros = in.n;
      options.split_backward = false;
      schedule = GenerateSvpp(options);
      break;
    }
    case Method::kZbv: {
      // Handcrafted ZB-V splits B/W, so its closed form assumes
      // F = B = W and zero transfer.
      sched::ZbvOptions options;
      options.transfer_time = 0.0;
      schedule = sched::HandcraftedZbvSchedule(in.p, in.n, options);
      const sim::UniformCostModel costs(1.0, 1.0, 1.0, 0.0);
      return Simulate(schedule, costs).bubble_ratio;
    }
    default:
      return std::nullopt;
  }
  // B=F regime for slice schedules (MEPipe splits B/W), B=2F otherwise.
  const sim::UniformCostModel costs(1.0, in.s > 1 ? 1.0 : 2.0, 0.0, 0.0);
  return Simulate(schedule, costs).bubble_ratio;
}

void EmitTable3() {
  struct Row {
    Method method;
    AnalyticInput input;
  };
  const std::vector<Row> cases = {
      // Small cluster (n >= p).
      {Method::kGPipe, {8, 1, 1, 16}},
      {Method::kDapple, {8, 1, 1, 16}},
      {Method::kVpp, {8, 2, 1, 16}},
      {Method::kHanayo, {8, 2, 1, 16}},
      {Method::kTeraPipe, {8, 1, 4, 16}},
      {Method::kZbv, {8, 2, 1, 16}},
      {Method::kSvpp, {8, 1, 4, 16}},
      {Method::kSvpp, {8, 2, 4, 16}},
      // Large cluster (n < p).
      {Method::kDapple, {8, 1, 1, 4}},
      {Method::kHanayo, {8, 2, 1, 4}},
      {Method::kTeraPipe, {8, 1, 4, 4}},
      {Method::kSvpp, {8, 1, 4, 4}},
  };

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"method", "p", "v", "s", "n", "regime", "bubble_analytic", "bubble_simulated",
                  "activation_fraction_of_A"});
  for (const Row& row : cases) {
    const auto analytic = core::Analyze(row.method, row.input);
    if (!analytic) {
      continue;
    }
    const auto simulated = SimulatedBubble(row.method, row.input);
    rows.push_back({ToString(row.method), std::to_string(row.input.p),
                    std::to_string(row.input.v), std::to_string(row.input.s),
                    std::to_string(row.input.n),
                    row.input.n >= row.input.p ? "n>=p" : "n<p",
                    bench::Pct(analytic->bubble_ratio),
                    simulated ? bench::Pct(*simulated) : "(analytic only)",
                    StrFormat("%.3f", analytic->activation_fraction)});
  }
  bench::EmitTable("Table 3 — analytic bubble ratio & activation memory", "table3_analytic",
                   rows);
  std::printf(
      "note: simulated SVPP bubbles use the Table 3 variant ceiling; slice\n"
      "rows are checked at B=F (split-B/W regime). See EXPERIMENTS.md.\n");
}

void BM_AnalyzeAllRows(benchmark::State& state) {
  for (auto _ : state) {
    for (int n : {4, 16, 64}) {
      for (Method m : {Method::kGPipe, Method::kDapple, Method::kVpp, Method::kHanayo,
                       Method::kTeraPipe, Method::kSvpp}) {
        benchmark::DoNotOptimize(core::Analyze(m, {8, 2, 4, n}));
      }
    }
  }
}
BENCHMARK(BM_AnalyzeAllRows);

void BM_SimulatedSvppCrossCheck(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulatedBubble(Method::kSvpp, {8, 1, 4, 16}));
  }
}
BENCHMARK(BM_SimulatedSvppCrossCheck)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitTable3)
