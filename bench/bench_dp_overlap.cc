// DP-overlap study: how much of the data-parallel gradient
// synchronization hides inside pipeline bubbles once the per-bucket
// all-reduce runs as first-class schedule ops on the engine's comm
// streams (sim::EngineOptions::dp_overlap), across DP degrees and DP
// link speeds, for the 1F1B and SVPP schedule families (each with an
// interleaved vp=2 member — multi-chunk stages are what give the
// critical stage an early bucket to hide).
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/iteration.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe {
namespace {

constexpr int kStages = 8;
constexpr int kGlobalBatch = 64;

struct Family {
  const char* label;
  core::Method method;
  int spp;
  int vp;
};

// kVpp is interleaved 1F1B (Megatron); it is the 1F1B family's
// multi-chunk member, as vp=2 SVPP is for the slice family.
constexpr Family kFamilies[] = {
    {"1f1b", core::Method::kDapple, 1, 1},
    {"1f1b-il", core::Method::kVpp, 1, 2},
    {"svpp", core::Method::kSvpp, 2, 1},
    {"svpp-il", core::Method::kSvpp, 2, 2},
};

core::IterationResult Run(const Family& family, const hw::ClusterSpec& cluster, int dp,
                          bool overlap) {
  core::Strategy strategy;
  strategy.method = family.method;
  strategy.pp = kStages;
  strategy.dp = dp;
  strategy.spp = family.spp;
  strategy.vp = family.vp;
  strategy.recompute = !(family.method == core::Method::kSvpp);
  core::IterationOptions options;
  options.keep_timeline = false;
  options.dp_overlap = overlap;
  return SimulateIteration(model::Llama7B(), strategy, cluster, kGlobalBatch, options);
}

void EmitDpOverlap() {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"schedule", "dp", "dp_link_gbps", "shared_fabric", "iter_serial_ms",
                  "iter_overlap_ms", "dp_sync_ms", "hidden_ms", "exposed_ms",
                  "exposed_share"});
  for (const Family& family : kFamilies) {
    for (const int dp : {4, 8}) {
      // The DP ring rides the intra-node fabric in this layout (dp ranks
      // are node-local); shrinking its bandwidth models slower
      // cost-effective interconnects.
      for (const double bw_scale : {1.0, 0.5, 0.25}) {
        hw::ClusterSpec cluster = hw::Rtx4090Cluster();
        cluster.nodes = dp;  // pp=8 across nodes, dp node-local
        cluster.intra_node.bandwidth *= bw_scale;
        const auto serial = Run(family, cluster, dp, /*overlap=*/false);
        const auto overlap = Run(family, cluster, dp, /*overlap=*/true);
        if (!serial.feasible || !overlap.feasible) {
          rows.push_back({family.label, std::to_string(dp),
                          StrFormat("%.1f", cluster.intra_node.bandwidth / 1e9),
                          "-", "infeasible: " + serial.note, "", "", "", "", ""});
          continue;
        }
        const bool shared = hw::SingleTierTopology(cluster)
                                .FabricShares(serial.strategy.layout())
                                .Shares(hw::Dim::kData, hw::Dim::kPipeline);
        rows.push_back({family.label, std::to_string(dp),
                        StrFormat("%.1f", cluster.intra_node.bandwidth / 1e9),
                        shared ? "yes" : "no", bench::Ms(serial.iteration_time),
                        bench::Ms(overlap.iteration_time), bench::Ms(overlap.dp.serialized),
                        bench::Ms(overlap.dp.hidden), bench::Ms(overlap.dp.exposed),
                        bench::Pct(overlap.dp.serialized > 0
                                       ? overlap.dp.exposed / overlap.dp.serialized
                                       : 0.0)});
      }
    }
  }
  bench::EmitTable("DP gradient-sync overlap (serialized vs overlapped)", "dp_overlap",
                   rows);
}

void BM_IterationWithDpOverlap(benchmark::State& state) {
  const hw::ClusterSpec cluster = hw::Rtx4090Cluster();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Run(kFamilies[3], cluster, 8, state.range(0) != 0).iteration_time);
  }
}
BENCHMARK(BM_IterationWithDpOverlap)->Arg(0)->Arg(1);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitDpOverlap)
