// Figure 8 + Table 5: end-to-end iteration time of Llama 13B on the
// 64× RTX 4090 cluster across global batch sizes {32, 64, 128}, with the
// grid-searched optimal parallel configuration per system (the paper's
// own methodology, §7.1-§7.2).
#include "bench/bench_util.h"
#include "core/planner.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe {
namespace {

using core::Method;

// ZBV is the handcrafted construction; ZBV-capped keeps the former
// generator approximation in the comparison so the fidelity gap stays
// visible end-to-end.
const std::vector<Method> kSystems = {Method::kDapple,    Method::kVpp,  Method::kZb1p,
                                      Method::kZbvCapped, Method::kZbv,  Method::kSvpp};

void EmitFigure8() {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();

  std::vector<std::vector<std::string>> fig8;
  fig8.push_back({"gbs", "system", "iteration_ms", "bubble", "peak_mem_GiB", "mfu"});
  std::vector<std::vector<std::string>> table5;
  table5.push_back({"system", "gbs", "PP", "CP/SPP", "VP", "recompute", "note"});

  for (int gbs : {32, 64, 128}) {
    double best_other = 1e300;
    double mepipe_time = 0;
    for (Method method : kSystems) {
      const auto result = core::SearchBestStrategy(method, config, cluster, gbs);
      if (!result.best) {
        fig8.push_back({std::to_string(gbs), ToString(method), "infeasible", "-", "-", "-"});
        table5.push_back({ToString(method), std::to_string(gbs), "-", "-", "-", "-", "OOM"});
        continue;
      }
      const auto& b = *result.best;
      fig8.push_back({std::to_string(gbs), ToString(method), bench::Ms(b.iteration_time),
                      bench::Pct(b.bubble_ratio), StrFormat("%.1f", ToGiB(b.peak_memory)),
                      bench::Pct(b.mfu)});
      const int slice = std::max(b.strategy.cp, b.strategy.spp);
      table5.push_back({ToString(method), std::to_string(gbs), std::to_string(b.strategy.pp),
                        std::to_string(slice), std::to_string(b.strategy.vp),
                        b.strategy.recompute ? "yes" : "no", "ok"});
      if (method == Method::kSvpp) {
        mepipe_time = b.iteration_time;
      } else {
        best_other = std::min(best_other, b.iteration_time);
      }
    }
    if (mepipe_time > 0 && best_other < 1e300) {
      std::printf("GBS=%d: MEPipe speedup over best baseline: %.2fx\n", gbs,
                  best_other / mepipe_time);
    }
  }
  bench::EmitTable("Figure 8 — Llama 13B iteration time vs global batch size",
                   "fig08_e2e_gbs", fig8);
  bench::EmitTable("Table 5 — optimal parallel configurations", "table5_configs", table5);
}

void BM_PlanMepipe(benchmark::State& state) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  const int gbs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = core::SearchBestStrategy(Method::kSvpp, config, cluster, gbs);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PlanMepipe)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_SimulateBestIteration(benchmark::State& state) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  core::Strategy strategy;
  strategy.method = Method::kSvpp;
  strategy.pp = 8;
  strategy.dp = 8;
  strategy.spp = 4;
  for (auto _ : state) {
    auto result = core::SimulateIteration(config, strategy, cluster, 128);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SimulateBestIteration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitFigure8)
