// Multi-job cluster service under Poisson traffic: a two-tier 4090+A100
// fleet takes a seeded job stream at two load levels, with and without
// injected node failures, under the dynamic allocation policy and the
// static equal-partition baseline. Reported per cell: admission rate,
// modeled planning-latency p50/p99 (deterministic — derived from the
// planner's own work counters, never wall-clock), and fleet-wide goodput
// (useful device-seconds over fleet device-seconds). The dynamic policy
// must beat the static baseline on total goodput: static strands the
// unused remainder of every partition and cannot reshape around
// failures, which is exactly the capacity the admission/rebalance loop
// reclaims. The CSV is drift-checked in CI; wall-clock timing lives only
// in the google-benchmark cases below.
#include "bench/bench_util.h"
#include "common/check.h"
#include "core/cluster.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe {
namespace {

hw::ClusterTopology TwoTierFleet() {
  hw::ClusterTopology fleet;
  fleet.tiers = {hw::Rtx4090Tier(), hw::A100Tier()};
  fleet.SetLinkBetween(0, 1, hw::LanLink(hw::Rtx4090Cluster().inter_node));
  return fleet;
}

core::ClusterServiceOptions ServiceOptions(core::AllocationPolicy policy) {
  core::ClusterServiceOptions options;
  options.policy = policy;
  options.planner.min_dp = 1;
  options.planner.pp_candidates = {2, 4, 8};
  options.planner.slice_candidates = {1, 2, 4};
  options.planner.vp_candidates = {1};
  options.planner.two_phase = true;
  options.planner.surrogate_top_k = 4;
  options.planner.threads = 1;
  return options;
}

core::TrafficOptions Traffic(int jobs, Seconds mean_interarrival) {
  core::TrafficOptions options;
  options.jobs = jobs;
  options.mean_interarrival = mean_interarrival;
  options.seed = 17;
  options.min_iterations = 200;
  options.max_iterations = 600;
  core::JobMixEntry small;
  small.config = model::Llama7B();
  small.global_batch = 16;
  small.min_nodes = 1;
  small.max_nodes = 2;
  small.weight = 2.0;
  core::JobMixEntry large;
  large.config = model::Llama13B();
  large.global_batch = 32;
  large.min_nodes = 2;
  large.max_nodes = 4;
  large.weight = 1.0;
  options.mix = {small, large};
  return options;
}

const char* PolicyName(core::AllocationPolicy policy) {
  return policy == core::AllocationPolicy::kDynamic ? "dynamic" : "static";
}

void EmitClusterService() {
  struct Cell {
    const char* load;
    int jobs;
    Seconds mean_interarrival;
    int failures;
  };
  const std::vector<Cell> cells = {
      {"light", 10, 1800, 0},
      {"light", 10, 1800, 3},
      {"heavy", 16, 60, 0},
      {"heavy", 16, 60, 4},
  };

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"load", "policy", "jobs", "failures", "admitted", "completed",
                  "terminal_failed", "rejected", "preempts", "shrinks", "expands",
                  "plan_calls", "plan_memo_hits", "plan_p50_ms", "plan_p99_ms",
                  "admission_rate", "mean_wait_s", "goodput"});

  double dynamic_goodput = 0;
  double static_goodput = 0;
  for (const Cell& cell : cells) {
    const std::vector<core::JobRequest> requests =
        core::GenerateTraffic(Traffic(cell.jobs, cell.mean_interarrival));
    for (const core::AllocationPolicy policy :
         {core::AllocationPolicy::kDynamic, core::AllocationPolicy::kStaticEqual}) {
      core::ClusterService service(TwoTierFleet(), ServiceOptions(policy));
      const core::ClusterMetrics m = core::RunTraffic(service, requests, cell.failures);
      (policy == core::AllocationPolicy::kDynamic ? dynamic_goodput : static_goodput) +=
          m.goodput;
      rows.push_back({cell.load, PolicyName(policy), StrFormat("%d", cell.jobs),
                      StrFormat("%d", cell.failures), StrFormat("%d", m.admitted),
                      StrFormat("%d", m.completed), StrFormat("%d", m.failed),
                      StrFormat("%d", m.rejected), StrFormat("%d", m.preemptions),
                      StrFormat("%d", m.shrinks), StrFormat("%d", m.expands),
                      StrFormat("%d", m.plan_calls), StrFormat("%d", m.plan_cache_hits),
                      StrFormat("%.3f", m.planning_p50 * 1e3),
                      StrFormat("%.3f", m.planning_p99 * 1e3),
                      StrFormat("%.3f", m.admission_rate),
                      StrFormat("%.1f", m.mean_wait), StrFormat("%.4f", m.goodput)});
    }
  }
  bench::EmitTable("Cluster service — dynamic vs static equal-partition under traffic",
                   "cluster_service", rows);
  std::printf("total goodput: dynamic=%.4f static=%.4f\n", dynamic_goodput,
              static_goodput);
  MEPIPE_CHECK_GT(dynamic_goodput, static_goodput)
      << "dynamic allocation must beat the static equal-partition baseline";
}

void BM_ClusterTraffic(benchmark::State& state) {
  const std::vector<core::JobRequest> requests = core::GenerateTraffic(Traffic(14, 400));
  for (auto _ : state) {
    core::ClusterService service(
        TwoTierFleet(),
        ServiceOptions(static_cast<core::AllocationPolicy>(state.range(0))));
    benchmark::DoNotOptimize(core::RunTraffic(service, requests, 3));
  }
}
BENCHMARK(BM_ClusterTraffic)
    ->Arg(0)  // kDynamic
    ->Arg(1)  // kStaticEqual
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitClusterService)
