// §9.1 reliability, reproduced by measurement instead of assertion: a
// Poisson fault-injected training-run simulation (core/resilience) whose
// failure-overhead fraction is cross-validated against the analytic
// FailureOverheadFraction at every fleet size the discussion covers.
// (The straggler-sensitivity companion lives in
// bench_straggler_mitigation.)
#include <cmath>

#include "bench/bench_util.h"
#include "core/resilience.h"
#include "core/svpp.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace mepipe {
namespace {

// An 8-stage SVPP iteration at millisecond-scale op costs; the engine
// measures its makespan, which anchors the resilience runner.
sched::Schedule ReferenceSchedule() {
  return core::GenerateSvpp(
      {.stages = 8, .virtual_chunks = 1, .slices = 4, .micros = 32});
}

void EmitReliabilitySim() {
  const auto schedule = ReferenceSchedule();
  const sim::UniformCostModel costs(/*f=*/0.040, /*b=*/0.080, /*w=*/0.040,
                                    /*transfer=*/0.002);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"gpus", "analytic_overhead", "measured_overhead", "rel_error",
                  "restarts", "goodput"});
  for (int gpus : {64, 256, 1024, 4096}) {
    core::ResilienceOptions options;
    options.gpus = gpus;
    options.seed = 2025;
    const Seconds mtbf =
        options.reliability.mtbf_per_1000_gpus * 1000.0 / gpus;
    options.target_useful_time = 300.0 * mtbf;  // ~300 expected failures
    const core::ResilienceMetrics m =
        core::SimulateTrainingRun(schedule, costs, options);
    const double analytic = core::FailureOverheadFraction(gpus, options.reliability);
    const double rel_error =
        std::abs(m.overhead_fraction - analytic) / analytic;
    rows.push_back({std::to_string(gpus), bench::Pct(analytic),
                    bench::Pct(m.overhead_fraction), bench::Pct(rel_error),
                    std::to_string(m.restarts), bench::Pct(m.goodput)});
  }
  bench::EmitTable(
      "§9.1 — failure overhead: simulated (Poisson fault injection) vs analytic",
      "sec9_reliability_sim", rows);
  std::printf("paper's estimate at ~1000 GPUs: < 5%% — both columns should agree\n");
  // The straggler-sensitivity table moved to bench_straggler_mitigation,
  // which pairs each frozen-schedule degradation with its rebalanced
  // counterpart.
}

void BM_ResilienceRun(benchmark::State& state) {
  core::ResilienceOptions options;
  options.gpus = static_cast<int>(state.range(0));
  options.target_useful_time = 1e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SimulateTrainingRun(10.0, options).wall_time);
  }
}
BENCHMARK(BM_ResilienceRun)->Arg(256)->Arg(4096);

void BM_FaultedSimulate(benchmark::State& state) {
  const auto schedule = ReferenceSchedule();
  const sim::UniformCostModel costs(0.040, 0.080, 0.040, 0.002);
  sim::FaultPlan plan;
  plan.stragglers = {{4, 1.0, 3.0, 2.0}};
  plan.fail_stops = {{2, 5.0, 0.1, 1.0}};
  sim::EngineOptions options;
  options.fault_plan = plan;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::Simulate(schedule, costs, options).makespan);
  }
}
BENCHMARK(BM_FaultedSimulate);

}  // namespace
}  // namespace mepipe

MEPIPE_BENCH_MAIN(mepipe::EmitReliabilitySim)
