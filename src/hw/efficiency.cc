#include "hw/efficiency.h"

#include "common/check.h"

namespace mepipe::hw {

double EfficiencyModel::ShapeEfficiency(std::int64_t hidden, std::int64_t tokens) const {
  MEPIPE_CHECK_GT(hidden, 0);
  MEPIPE_CHECK_GT(tokens, 0);
  const double t_half =
      reference_t_half_ * static_cast<double>(reference_hidden_) / static_cast<double>(hidden);
  const double t = static_cast<double>(tokens);
  return t / (t + t_half);
}

double EfficiencyModel::AlignmentEfficiency(std::int64_t tokens) const {
  MEPIPE_CHECK_GT(tokens, 0);
  constexpr std::int64_t kTile = 128;
  if (tokens % kTile == 0) {
    return 1.0;
  }
  // The ragged tail tile does full-tile work for partial output.
  const std::int64_t tiles = (tokens + kTile - 1) / kTile;
  return static_cast<double>(tokens) / static_cast<double>(tiles * kTile);
}

Seconds EfficiencyModel::KernelTime(Flops flops, const GpuSpec& gpu,
                                    const model::TransformerConfig& config,
                                    std::int64_t tokens) const {
  if (flops <= 0) {
    return 0.0;
  }
  const double efficiency = ShapeEfficiency(config.hidden, tokens);
  return flops / (gpu.sustained_matmul_flops() * efficiency);
}

}  // namespace mepipe::hw
