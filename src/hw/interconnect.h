// Interconnect link descriptions: PCIe 4.0 (intra-node, RTX 4090 servers),
// NVLink 3 (intra-node, A100 servers), and InfiniBand NICs (inter-node).
#ifndef MEPIPE_HW_INTERCONNECT_H_
#define MEPIPE_HW_INTERCONNECT_H_

#include <string>

#include "common/units.h"

namespace mepipe::hw {

struct LinkSpec {
  std::string name;
  // Achievable point-to-point bandwidth per direction.
  BytesPerSecond bandwidth = 0;
  // Per-message fixed cost (kernel launch + NIC/switch traversal).
  Seconds latency = 0;
  // Traffic on this link crosses the host root complex (PCIe-class
  // fabrics). NIC DMA takes the same path, so a through-host intra-node
  // link contends with inter-node traffic — the single-fabric property
  // of cost-effective clusters (see DpSharesPipelineFabric).
  bool through_host = false;

  Seconds transfer_time(Bytes bytes) const {
    return latency + static_cast<double>(bytes) / bandwidth;
  }
};

// Presets. Bandwidths are effective (measured-style), not spec-sheet.
LinkSpec Pcie4x16();       // ~25 GB/s effective p2p through host
LinkSpec NvLink3();        // ~250 GB/s effective per direction
LinkSpec Infiniband100G(); // 100 Gb/s NIC ≈ 12 GB/s effective
LinkSpec Infiniband800G(); // 8×100 Gb/s rails ≈ 96 GB/s effective

}  // namespace mepipe::hw

#endif  // MEPIPE_HW_INTERCONNECT_H_
