// Cluster topology and the mapping from parallel dimensions to links.
//
// Ranks are laid out Megatron-style, innermost to outermost:
//   tensor (tp) → context (cp) → data (dp) → pipeline (pp)
// so adjacent pipeline stages are world/pp ranks apart. On the paper's
// testbed (8 nodes × 8 RTX 4090, pp=8) every pipeline boundary crosses
// nodes and all eight per-node streams share one 100 Gb/s NIC.
//
// Two levels of description coexist:
//  - `ClusterSpec`: one homogeneous fleet (the original API, unchanged).
//  - `ClusterTopology`: a fleet of `DeviceTier`s (GPU spec, count, rental
//    price, region) joined by typed `TierLink`s (LAN vs WAN, $/GB egress).
//    `SingleTierTopology(spec)` embeds a ClusterSpec as the one-tier
//    special case; every dimension→link query on it is bit-identical to
//    the legacy free functions, which survive as thin delegating shims.
#ifndef MEPIPE_HW_CLUSTER_H_
#define MEPIPE_HW_CLUSTER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "hw/gpu.h"
#include "hw/interconnect.h"

namespace mepipe::hw {

struct ClusterSpec {
  GpuSpec gpu;
  int nodes = 0;
  int gpus_per_node = 0;
  LinkSpec intra_node;  // GPU↔GPU inside a server
  LinkSpec inter_node;  // NIC between servers (per node, shared)

  int world_size() const { return nodes * gpus_per_node; }
};

// Paper testbeds (§7.1, §7.6).
ClusterSpec Rtx4090Cluster();  // 8 nodes × 8 GPU, PCIe4 + IB-100G
ClusterSpec A100Cluster();     // 4 nodes × 8 GPU, NVLink + IB-800G

struct ClusterTopology;
struct StagePlacement;
struct LayoutIssue;

// How the world is decomposed. tp is kept for the A100 comparison; the
// 4090 search space fixes tp=1 (§7.1). spp (slice count) consumes no
// ranks and therefore does not appear here.
struct ParallelLayout {
  int pp = 1;
  int dp = 1;
  int cp = 1;
  int tp = 1;

  int ranks() const { return pp * dp * cp * tp; }

  // Structured feasibility checks, replacing the ad-hoc divisibility and
  // capacity tests previously inlined in planner grid enumeration and
  // elastic re-plans. Empty result ⇔ the layout is admissible on the
  // topology. The placement overload additionally checks the per-tier
  // rank budget and flags tp>1 on consumer (through-host fabric) tiers.
  std::vector<LayoutIssue> Validate(const ClusterTopology& topology) const;
  std::vector<LayoutIssue> Validate(const ClusterTopology& topology,
                                    const StagePlacement& placement) const;
};

// The four communication dimensions a layout maps onto links.
enum class Dim : std::uint8_t { kPipeline = 0, kContext = 1, kData = 2, kTensor = 3 };

const char* DimName(Dim dim);

// Which physical fabric a dimension's traffic rides, coarsest first.
enum class FabricClass : std::uint8_t { kLoopback = 0, kIntraNode = 1, kInterNode = 2, kWan = 3 };

// Per-dimension fabric assignment plus the contention predicate between
// dimensions. `Shares(kData, kPipeline)` reproduces the legacy
// `DpSharesPipelineFabric` exactly: no contention when either side is
// loopback; same fabric tier always contends; split tiers contend iff
// the intra-node fabric is through-host (PCIe-class), because NIC DMA
// then crosses the same root complex — the §3 single-fabric property of
// cost-effective clusters. NVLink-class intra fabrics bypass the host.
struct FabricShareMap {
  std::array<FabricClass, 4> fabric = {FabricClass::kLoopback, FabricClass::kLoopback,
                                       FabricClass::kLoopback, FabricClass::kLoopback};
  bool through_host_intra = false;

  FabricClass of(Dim dim) const { return fabric[static_cast<int>(dim)]; }

  bool Shares(Dim a, Dim b) const {
    const FabricClass fa = of(a);
    const FabricClass fb = of(b);
    if (fa == FabricClass::kLoopback || fb == FabricClass::kLoopback) {
      return false;
    }
    if (fa == fb) {
      return true;
    }
    return through_host_intra;
  }
};

// One homogeneous slice of a heterogeneous fleet: a device class in one
// region with its own intra/inter-node links and a rental price.
struct DeviceTier {
  std::string name;
  GpuSpec gpu;
  int nodes = 0;
  int gpus_per_node = 0;
  LinkSpec intra_node;
  LinkSpec inter_node;
  // Rental rate per GPU per hour (cloud/neocloud list-price style); the
  // kDollarCost planner objective multiplies it by occupied ranks.
  double usd_per_gpu_hour = 0.0;
  std::string region = "local";

  int world_size() const { return nodes * gpus_per_node; }
  // Consumer-class fabric: intra-node traffic crosses the host root
  // complex, so tp>1 is flagged by ParallelLayout::Validate.
  bool consumer_fabric() const { return intra_node.through_host; }
  // View of this tier as a standalone homogeneous cluster.
  ClusterSpec spec() const;
};

// Typed link between two tiers. WAN links additionally price egress.
struct TierLink {
  LinkSpec link;
  double usd_per_gb_egress = 0.0;  // billed per direction
  bool wan = false;
};

// stage → tier index, one entry per pipeline stage.
struct StagePlacement {
  std::vector<int> stage_tier;

  static StagePlacement Uniform(int stages, int tier);
  int tier_of(int stage) const { return stage_tier[static_cast<std::size_t>(stage)]; }
  int stages() const { return static_cast<int>(stage_tier.size()); }
  bool uniform() const;
  // Order-sensitive hash, for surrogate cache keys.
  std::uint64_t Hash() const;
  std::string ToString() const;  // e.g. "t0x4|t1x4"
};

// Structured layout-admissibility error (see ParallelLayout::Validate).
struct LayoutIssue {
  enum class Code {
    kEmptyLayout,                    // some factor < 1
    kWorldMismatch,                  // single-tier: ranks() != world (exact cover)
    kRankOversubscription,           // a tier hosts more ranks than it has
    kPlacementShape,                 // placement length != pp or tier out of range
    kTensorParallelOnConsumerTier,   // tp>1 on a through-host-fabric tier
  };
  Code code;
  int tier = -1;  // offending tier, when applicable
  std::string message;
};

const char* LayoutIssueCodeName(LayoutIssue::Code code);

// A fleet of device tiers plus the inter-tier link matrix. The one-tier
// case reproduces the legacy ClusterSpec mapping bit-identically.
struct ClusterTopology {
  std::vector<DeviceTier> tiers;
  // Symmetric tier×tier matrix (row-major, diagonal unused). Filled by
  // SetLinkBetween; empty for single-tier topologies.
  std::vector<TierLink> tier_links;

  int num_tiers() const { return static_cast<int>(tiers.size()); }
  int world_size() const;
  const DeviceTier& tier(int i) const { return tiers[static_cast<std::size_t>(i)]; }

  void SetLinkBetween(int a, int b, TierLink link);
  const TierLink& LinkBetween(int a, int b) const;

  // Tier with the highest sustained matmul throughput (ties → lowest
  // index); the reference device for candidate construction and the
  // numerator of TierSlowdown.
  int FastestTier() const;
  // ≥ 1: how much slower tier i's device is than the fastest tier's.
  double TierSlowdown(int i) const;

  // Effective link for one dimension of `layout`, collapsing the four
  // legacy free-function helpers. Single-tier: bit-identical to
  // PipelineP2pLink / ContextParallelLink / DataParallelLink /
  // TensorParallelLink. Multi-tier: intra-stage dimensions (cp/dp/tp)
  // take the worst per-tier mapping; kPipeline conservatively reports
  // the slowest inter-tier link shared by the dp·cp·tp concurrent
  // boundary streams (per-boundary placement-aware pricing lives in
  // CommModel::PipelineP2pAcross).
  LinkSpec LinkFor(Dim dim, const ParallelLayout& layout) const;
  // LinkFor for a dimension evaluated on one tier's sub-cluster.
  LinkSpec LinkForOnTier(Dim dim, const ParallelLayout& layout, int tier) const;

  // Per-dimension fabric classes + contention predicate (see
  // FabricShareMap). Multi-tier maps take the worst class per dimension
  // and set through_host_intra if any tier's intra fabric is.
  FabricShareMap FabricShares(const ParallelLayout& layout) const;
};

// One tier's contribution to a carved sub-fleet: `nodes` whole nodes
// taken from tier `tier` of a parent topology. Carving is node-granular
// because a tier's NIC-sharing behaviour (gpus_per_node streams on one
// NIC) only reproduces when nodes move whole.
struct TierSlice {
  int tier = 0;
  int nodes = 0;
};

// Carves a disjoint sub-fleet out of `fleet`: whole-node slices per
// tier, preserving each tier's GPU spec, intra/inter-node links, rental
// rate and region. Slices with zero nodes are dropped (so callers can
// pass a dense per-tier demand vector); surviving tier pairs inherit
// the parent's inter-tier link. The result is a self-contained
// ClusterTopology — the planner prices it exactly as if the sub-fleet
// were the whole cluster. Node *identity* is not tracked here; the
// cluster service owns which concrete node ids back each slice.
ClusterTopology CarveSubTopology(const ClusterTopology& fleet,
                                 const std::vector<TierSlice>& slices);

// Embeds a homogeneous cluster as a one-tier topology.
ClusterTopology SingleTierTopology(const ClusterSpec& spec,
                                   double usd_per_gpu_hour = 0.0,
                                   std::string region = "local",
                                   std::string name = "t0");

// Tier presets with 2025-style neocloud rental rates (Table 9 devices).
DeviceTier Rtx4090Tier();  // 8×8, PCIe4 + IB-100G, ~$0.35/GPU-hr
DeviceTier A100Tier();     // 4×8, NVLink + IB-800G, ~$1.90/GPU-hr

// Cross-region WAN preset: `gbps` effective per direction, ~30 ms RTT
// class latency, priced per GB of egress.
TierLink WanLink(double gbps, double usd_per_gb);
// Same-campus cross-tier LAN (no egress billing).
TierLink LanLink(const LinkSpec& link);

// ---------------------------------------------------------------------
// Legacy accessors, kept as thin shims over ClusterTopology::LinkFor /
// FabricShares so existing call sites and snapshots stay bit-identical.
// ---------------------------------------------------------------------

// Effective link for one pipeline p2p stream between adjacent stages,
// accounting for NIC sharing by co-located concurrent streams.
LinkSpec PipelineP2pLink(const ClusterSpec& cluster, const ParallelLayout& layout);

// Effective link for context-parallel collectives (KV ring exchange).
LinkSpec ContextParallelLink(const ClusterSpec& cluster, const ParallelLayout& layout);

// Effective link for data-parallel gradient/optimizer collectives.
LinkSpec DataParallelLink(const ClusterSpec& cluster, const ParallelLayout& layout);

// Effective link for tensor-parallel activations (A100 only in practice).
LinkSpec TensorParallelLink(const ClusterSpec& cluster, const ParallelLayout& layout);

// Whether the DP gradient ring and the pipeline p2p stream of one device
// contend for the same physical fabric, so overlapped DP sync must yield
// to in-flight pipeline transfers (sim::EngineOptions::dp_link_shared).
// Shim over FabricShareMap::Shares(kData, kPipeline).
bool DpSharesPipelineFabric(const ClusterSpec& cluster, const ParallelLayout& layout);

}  // namespace mepipe::hw

#endif  // MEPIPE_HW_CLUSTER_H_
