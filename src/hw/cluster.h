// Cluster topology and the mapping from parallel dimensions to links.
//
// Ranks are laid out Megatron-style, innermost to outermost:
//   tensor (tp) → context (cp) → data (dp) → pipeline (pp)
// so adjacent pipeline stages are world/pp ranks apart. On the paper's
// testbed (8 nodes × 8 RTX 4090, pp=8) every pipeline boundary crosses
// nodes and all eight per-node streams share one 100 Gb/s NIC.
#ifndef MEPIPE_HW_CLUSTER_H_
#define MEPIPE_HW_CLUSTER_H_

#include "common/units.h"
#include "hw/gpu.h"
#include "hw/interconnect.h"

namespace mepipe::hw {

struct ClusterSpec {
  GpuSpec gpu;
  int nodes = 0;
  int gpus_per_node = 0;
  LinkSpec intra_node;  // GPU↔GPU inside a server
  LinkSpec inter_node;  // NIC between servers (per node, shared)

  int world_size() const { return nodes * gpus_per_node; }
};

// Paper testbeds (§7.1, §7.6).
ClusterSpec Rtx4090Cluster();  // 8 nodes × 8 GPU, PCIe4 + IB-100G
ClusterSpec A100Cluster();     // 4 nodes × 8 GPU, NVLink + IB-800G

// How the world is decomposed. tp is kept for the A100 comparison; the
// 4090 search space fixes tp=1 (§7.1). spp (slice count) consumes no
// ranks and therefore does not appear here.
struct ParallelLayout {
  int pp = 1;
  int dp = 1;
  int cp = 1;
  int tp = 1;

  int ranks() const { return pp * dp * cp * tp; }
};

// Effective link for one pipeline p2p stream between adjacent stages,
// accounting for NIC sharing by co-located concurrent streams.
LinkSpec PipelineP2pLink(const ClusterSpec& cluster, const ParallelLayout& layout);

// Effective link for context-parallel collectives (KV ring exchange).
LinkSpec ContextParallelLink(const ClusterSpec& cluster, const ParallelLayout& layout);

// Effective link for data-parallel gradient/optimizer collectives.
LinkSpec DataParallelLink(const ClusterSpec& cluster, const ParallelLayout& layout);

// Effective link for tensor-parallel activations (A100 only in practice).
LinkSpec TensorParallelLink(const ClusterSpec& cluster, const ParallelLayout& layout);

// Whether the DP gradient ring and the pipeline p2p stream of one device
// contend for the same physical fabric, so overlapped DP sync must yield
// to in-flight pipeline transfers (sim::EngineOptions::dp_link_shared).
// True when both ride the per-node NIC, both ride the intra-node fabric,
// or they split tiers on a through-host (PCIe-class) intra-node fabric —
// NIC DMA then crosses the same root complex the DP ring uses, the §3
// single-fabric property of cost-effective clusters. NVLink-class intra
// fabrics bypass the host and do not contend with the NIC.
bool DpSharesPipelineFabric(const ClusterSpec& cluster, const ParallelLayout& layout);

}  // namespace mepipe::hw

#endif  // MEPIPE_HW_CLUSTER_H_
