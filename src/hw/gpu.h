// Accelerator descriptions. The two devices the paper compares are the
// NVIDIA RTX 4090 (cheap: high FLOPS, small memory, no NVLink) and the
// NVIDIA A100-80G (expensive: NVLink, large memory) — Table 9.
#ifndef MEPIPE_HW_GPU_H_
#define MEPIPE_HW_GPU_H_

#include <string>

#include "common/units.h"

namespace mepipe::hw {

struct GpuSpec {
  std::string name;
  Bytes memory_capacity = 0;
  // Memory that the CUDA context, framework allocator, and fragmentation
  // keep away from tensors; subtracted before any OOM comparison.
  Bytes memory_reserved = 0;
  // Peak dense fp16/bf16 tensor-core throughput (spec sheet).
  FlopsPerSecond peak_flops = 0;
  // Multiplier applied to `peak_flops` for matmul-class kernels before
  // operator-shape efficiency: captures the fp32-accumulation penalty the
  // paper hits on the RTX 4090 (§7.6: "approximately half the performance
  // of a single A100") and general sustained-vs-peak derating.
  double matmul_derate = 1.0;
  // Acquisition price of one 8-GPU server (Table 9, USD).
  double server_price_usd = 0;
  // Board power, used by the §9 operating-cost discussion (watts).
  double board_power_w = 0;

  Bytes usable_memory() const { return memory_capacity - memory_reserved; }
  FlopsPerSecond sustained_matmul_flops() const { return peak_flops * matmul_derate; }
};

// Presets matching Table 9.
GpuSpec Rtx4090();
GpuSpec A100_80G();

}  // namespace mepipe::hw

#endif  // MEPIPE_HW_GPU_H_
