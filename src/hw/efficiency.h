// Operator-shape efficiency model.
//
// GEMM and FlashAttention kernels lose throughput as the token dimension
// of their inputs shrinks — the degradation both CP and SPP pay when they
// cut samples into slices (§7.3, Figure 9). The model is a saturating
// curve  eff(t) = t / (t + t_half)  whose half-saturation constant is
// calibrated so that a Llama-13B transformer layer slows by ≈12.6% when
// SPP goes from 1 to 8 at context 4096 — the paper's measurement.
// Narrower models (smaller hidden) saturate later because their GEMMs
// are smaller, hence t_half scales inversely with hidden width.
#ifndef MEPIPE_HW_EFFICIENCY_H_
#define MEPIPE_HW_EFFICIENCY_H_

#include <cstdint>

#include "common/units.h"
#include "hw/gpu.h"
#include "model/transformer.h"

namespace mepipe::hw {

class EfficiencyModel {
 public:
  EfficiencyModel() = default;
  // `reference_t_half` is t_half for a hidden width of `reference_hidden`.
  EfficiencyModel(double reference_t_half, std::int64_t reference_hidden)
      : reference_t_half_(reference_t_half), reference_hidden_(reference_hidden) {}

  // Relative kernel efficiency (0, 1] for matmul-class work on a slice of
  // `tokens` rows in a model of width `hidden`.
  double ShapeEfficiency(std::int64_t hidden, std::int64_t tokens) const;

  // Additional multiplier for row counts that are not tile-aligned
  // (multiples of 128): ragged final tiles waste tensor-core lanes. This
  // is the §5 cost of TeraPipe-style non-uniform slice boundaries on
  // "modern accelerators [where] operators exhibit optimal performance
  // when the input dimensions are powers of 2".
  double AlignmentEfficiency(std::int64_t tokens) const;

  // Time for `flops` of matmul-class work on `gpu` over a slice of
  // `tokens` tokens in `config`.
  Seconds KernelTime(Flops flops, const GpuSpec& gpu, const model::TransformerConfig& config,
                     std::int64_t tokens) const;

 private:
  double reference_t_half_ = 75.0;      // calibrated to Figure 9 (13B, L=4096)
  std::int64_t reference_hidden_ = 5120;
};

}  // namespace mepipe::hw

#endif  // MEPIPE_HW_EFFICIENCY_H_
