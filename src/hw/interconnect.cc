#include "hw/interconnect.h"

namespace mepipe::hw {

LinkSpec Pcie4x16() { return {"PCIe4-x16", 25e9, Microseconds(15), /*through_host=*/true}; }

LinkSpec NvLink3() { return {"NVLink3", 250e9, Microseconds(5)}; }

LinkSpec Infiniband100G() { return {"IB-100G", 12e9, Microseconds(25)}; }

LinkSpec Infiniband800G() { return {"IB-800G", 96e9, Microseconds(25)}; }

}  // namespace mepipe::hw
