#include "hw/gpu.h"

namespace mepipe::hw {

GpuSpec Rtx4090() {
  GpuSpec spec;
  spec.name = "RTX-4090";
  spec.memory_capacity = 24 * kGiB;
  spec.memory_reserved = static_cast<Bytes>(1.5 * static_cast<double>(kGiB));
  spec.peak_flops = 330 * kTera;  // fp16 tensor cores, fp16 accumulate
  // FP32 accumulation halves tensor-core throughput on AD102 (§7.6), and
  // sustained GEMM reaches ~90% of that on large shapes.
  spec.matmul_derate = 0.5 * 0.90;
  spec.server_price_usd = 30'000;
  spec.board_power_w = 450;
  return spec;
}

GpuSpec A100_80G() {
  GpuSpec spec;
  spec.name = "A100-80G";
  spec.memory_capacity = 80 * kGiB;
  spec.memory_reserved = static_cast<Bytes>(1.5 * static_cast<double>(kGiB));
  spec.peak_flops = 312 * kTera;
  spec.matmul_derate = 0.90;  // fp32 accumulation is full-rate on A100
  spec.server_price_usd = 150'000;
  spec.board_power_w = 400;
  return spec;
}

}  // namespace mepipe::hw
