#include "hw/cluster.h"

#include <algorithm>

#include "common/check.h"

namespace mepipe::hw {
namespace {

LinkSpec Shared(LinkSpec link, int streams) {
  MEPIPE_CHECK_GT(streams, 0);
  link.bandwidth /= static_cast<double>(streams);
  return link;
}

}  // namespace

ClusterSpec Rtx4090Cluster() {
  ClusterSpec c;
  c.gpu = Rtx4090();
  c.nodes = 8;
  c.gpus_per_node = 8;
  c.intra_node = Pcie4x16();
  c.inter_node = Infiniband100G();
  return c;
}

ClusterSpec A100Cluster() {
  ClusterSpec c;
  c.gpu = A100_80G();
  c.nodes = 4;
  c.gpus_per_node = 8;
  c.intra_node = NvLink3();
  c.inter_node = Infiniband800G();
  return c;
}

LinkSpec PipelineP2pLink(const ClusterSpec& cluster, const ParallelLayout& layout) {
  MEPIPE_CHECK_EQ(layout.ranks(), cluster.world_size())
      << "layout must cover the whole cluster";
  if (layout.pp == 1) {
    return {"loopback", 1e15, 0.0};
  }
  const int stride = cluster.world_size() / layout.pp;  // ranks between stages
  if (stride >= cluster.gpus_per_node) {
    // Every boundary crosses nodes; all per-node streams share the NIC.
    return Shared(cluster.inter_node, cluster.gpus_per_node);
  }
  // A node holds several stages. The worst (steady-state critical) boundary
  // is still the inter-node one, shared by `stride` concurrent streams.
  if (cluster.nodes > 1 && layout.pp * stride > cluster.gpus_per_node) {
    return Shared(cluster.inter_node, stride);
  }
  return cluster.intra_node;
}

LinkSpec ContextParallelLink(const ClusterSpec& cluster, const ParallelLayout& layout) {
  if (layout.cp == 1) {
    return {"loopback", 1e15, 0.0};
  }
  const int group_span = layout.cp * layout.tp;  // contiguous innermost ranks
  if (group_span <= cluster.gpus_per_node) {
    return cluster.intra_node;
  }
  return Shared(cluster.inter_node, cluster.gpus_per_node);
}

LinkSpec DataParallelLink(const ClusterSpec& cluster, const ParallelLayout& layout) {
  if (layout.dp * layout.cp == 1) {
    return {"loopback", 1e15, 0.0};
  }
  const int group_span = layout.dp * layout.cp * layout.tp;
  if (group_span <= cluster.gpus_per_node) {
    return cluster.intra_node;
  }
  // A ring over a contiguous multi-node block crosses each node's NIC
  // once per direction; only the cp·tp rings interleaved within the same
  // block contend for it (the intra-node hops ride the faster fabric).
  return Shared(cluster.inter_node, layout.cp * layout.tp);
}

bool DpSharesPipelineFabric(const ClusterSpec& cluster, const ParallelLayout& layout) {
  if (layout.pp == 1 || layout.dp * layout.cp == 1) {
    return false;  // no pipeline transfers, or no DP sync at all
  }
  const int stride = cluster.world_size() / layout.pp;
  const bool pp_inter = stride >= cluster.gpus_per_node ||
                        (cluster.nodes > 1 && layout.pp * stride > cluster.gpus_per_node);
  const bool dp_inter = layout.dp * layout.cp * layout.tp > cluster.gpus_per_node;
  if (pp_inter == dp_inter) {
    return true;  // same tier: both on the NIC or both on the intra fabric
  }
  return cluster.intra_node.through_host;
}

LinkSpec TensorParallelLink(const ClusterSpec& cluster, const ParallelLayout& layout) {
  if (layout.tp == 1) {
    return {"loopback", 1e15, 0.0};
  }
  if (layout.tp <= cluster.gpus_per_node) {
    return cluster.intra_node;
  }
  return Shared(cluster.inter_node, cluster.gpus_per_node);
}

}  // namespace mepipe::hw
