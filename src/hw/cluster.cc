#include "hw/cluster.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/check.h"

namespace mepipe::hw {
namespace {

LinkSpec Shared(LinkSpec link, int streams) {
  MEPIPE_CHECK_GT(streams, 0);
  link.bandwidth /= static_cast<double>(streams);
  return link;
}

LinkSpec Loopback() { return {"loopback", 1e15, 0.0}; }

// Lightweight non-owning view of one homogeneous fabric (a ClusterSpec or
// one DeviceTier). All dimension→link logic lives on this view so the
// legacy shims and ClusterTopology::LinkFor share one implementation
// without copying specs per query.
struct FabricView {
  int nodes = 0;
  int gpus_per_node = 0;
  const LinkSpec* intra = nullptr;
  const LinkSpec* inter = nullptr;

  int world() const { return nodes * gpus_per_node; }
};

FabricView ViewOf(const ClusterSpec& c) {
  return {c.nodes, c.gpus_per_node, &c.intra_node, &c.inter_node};
}

FabricView ViewOf(const DeviceTier& t) {
  return {t.nodes, t.gpus_per_node, &t.intra_node, &t.inter_node};
}

// Pipeline p2p link on one fabric. `host_stages` is how many consecutive
// stages this fabric hosts (layout.pp when it hosts the whole pipeline).
// The stage stride equals the per-stage rank group dp·cp·tp, which for a
// full-cover layout is exactly world/pp — the legacy formula.
LinkSpec PipelineLinkOn(const FabricView& v, const ParallelLayout& layout, int host_stages) {
  if (layout.pp == 1) {
    return Loopback();
  }
  const int stride = layout.dp * layout.cp * layout.tp;  // ranks between stages
  if (stride >= v.gpus_per_node) {
    // Every boundary crosses nodes; all per-node streams share the NIC.
    return Shared(*v.inter, v.gpus_per_node);
  }
  // A node holds several stages. The worst (steady-state critical) boundary
  // is still the inter-node one, shared by `stride` concurrent streams.
  if (v.nodes > 1 && host_stages * stride > v.gpus_per_node) {
    return Shared(*v.inter, stride);
  }
  return *v.intra;
}

LinkSpec ContextLinkOn(const FabricView& v, const ParallelLayout& layout) {
  if (layout.cp == 1) {
    return Loopback();
  }
  const int group_span = layout.cp * layout.tp;  // contiguous innermost ranks
  if (group_span <= v.gpus_per_node) {
    return *v.intra;
  }
  return Shared(*v.inter, v.gpus_per_node);
}

LinkSpec DataLinkOn(const FabricView& v, const ParallelLayout& layout) {
  if (layout.dp * layout.cp == 1) {
    return Loopback();
  }
  const int group_span = layout.dp * layout.cp * layout.tp;
  if (group_span <= v.gpus_per_node) {
    return *v.intra;
  }
  // A ring over a contiguous multi-node block crosses each node's NIC
  // once per direction; only the cp·tp rings interleaved within the same
  // block contend for it (the intra-node hops ride the faster fabric).
  return Shared(*v.inter, layout.cp * layout.tp);
}

LinkSpec TensorLinkOn(const FabricView& v, const ParallelLayout& layout) {
  if (layout.tp == 1) {
    return Loopback();
  }
  if (layout.tp <= v.gpus_per_node) {
    return *v.intra;
  }
  return Shared(*v.inter, v.gpus_per_node);
}

LinkSpec LinkOn(const FabricView& v, Dim dim, const ParallelLayout& layout, int host_stages) {
  switch (dim) {
    case Dim::kPipeline:
      return PipelineLinkOn(v, layout, host_stages);
    case Dim::kContext:
      return ContextLinkOn(v, layout);
    case Dim::kData:
      return DataLinkOn(v, layout);
    case Dim::kTensor:
      return TensorLinkOn(v, layout);
  }
  MEPIPE_CHECK(false) << "unknown Dim";
  return Loopback();
}

FabricShareMap SharesOn(const FabricView& v, const ParallelLayout& layout, int host_stages) {
  FabricShareMap map;
  map.through_host_intra = v.intra->through_host;
  if (layout.pp > 1) {
    const int stride = layout.dp * layout.cp * layout.tp;
    const bool pp_inter =
        stride >= v.gpus_per_node || (v.nodes > 1 && host_stages * stride > v.gpus_per_node);
    map.fabric[static_cast<int>(Dim::kPipeline)] =
        pp_inter ? FabricClass::kInterNode : FabricClass::kIntraNode;
  }
  if (layout.cp > 1) {
    map.fabric[static_cast<int>(Dim::kContext)] = layout.cp * layout.tp <= v.gpus_per_node
                                                      ? FabricClass::kIntraNode
                                                      : FabricClass::kInterNode;
  }
  if (layout.dp * layout.cp > 1) {
    map.fabric[static_cast<int>(Dim::kData)] =
        layout.dp * layout.cp * layout.tp > v.gpus_per_node ? FabricClass::kInterNode
                                                            : FabricClass::kIntraNode;
  }
  if (layout.tp > 1) {
    map.fabric[static_cast<int>(Dim::kTensor)] =
        layout.tp <= v.gpus_per_node ? FabricClass::kIntraNode : FabricClass::kInterNode;
  }
  return map;
}

// Worse = slower for a representative 1 MiB message; ties break toward
// higher latency so the ordering is total and deterministic.
bool WorseLink(const LinkSpec& a, const LinkSpec& b) {
  constexpr Bytes kProbe = 1 << 20;
  const Seconds ta = a.transfer_time(kProbe);
  const Seconds tb = b.transfer_time(kProbe);
  if (ta != tb) {
    return ta > tb;
  }
  return a.latency > b.latency;
}

}  // namespace

const char* DimName(Dim dim) {
  switch (dim) {
    case Dim::kPipeline:
      return "pipeline";
    case Dim::kContext:
      return "context";
    case Dim::kData:
      return "data";
    case Dim::kTensor:
      return "tensor";
  }
  return "?";
}

const char* LayoutIssueCodeName(LayoutIssue::Code code) {
  switch (code) {
    case LayoutIssue::Code::kEmptyLayout:
      return "empty_layout";
    case LayoutIssue::Code::kWorldMismatch:
      return "world_mismatch";
    case LayoutIssue::Code::kRankOversubscription:
      return "rank_oversubscription";
    case LayoutIssue::Code::kPlacementShape:
      return "placement_shape";
    case LayoutIssue::Code::kTensorParallelOnConsumerTier:
      return "tp_on_consumer_tier";
  }
  return "?";
}

ClusterSpec Rtx4090Cluster() {
  ClusterSpec c;
  c.gpu = Rtx4090();
  c.nodes = 8;
  c.gpus_per_node = 8;
  c.intra_node = Pcie4x16();
  c.inter_node = Infiniband100G();
  return c;
}

ClusterSpec A100Cluster() {
  ClusterSpec c;
  c.gpu = A100_80G();
  c.nodes = 4;
  c.gpus_per_node = 8;
  c.intra_node = NvLink3();
  c.inter_node = Infiniband800G();
  return c;
}

ClusterSpec DeviceTier::spec() const {
  ClusterSpec c;
  c.gpu = gpu;
  c.nodes = nodes;
  c.gpus_per_node = gpus_per_node;
  c.intra_node = intra_node;
  c.inter_node = inter_node;
  return c;
}

StagePlacement StagePlacement::Uniform(int stages, int tier) {
  MEPIPE_CHECK_GT(stages, 0);
  StagePlacement p;
  p.stage_tier.assign(static_cast<std::size_t>(stages), tier);
  return p;
}

bool StagePlacement::uniform() const {
  for (const int t : stage_tier) {
    if (t != stage_tier.front()) {
      return false;
    }
  }
  return true;
}

std::uint64_t StagePlacement::Hash() const {
  // SplitMix64-style order-sensitive mix, matching core/surrogate's Digest.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(stage_tier.size());
  for (const int t : stage_tier) {
    std::uint64_t z = h + 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(t);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = z ^ (z >> 31);
  }
  return h;
}

std::string StagePlacement::ToString() const {
  std::string out;
  int run_tier = -1;
  int run_len = 0;
  char buf[32];
  const auto flush = [&] {
    if (run_len == 0) {
      return;
    }
    std::snprintf(buf, sizeof(buf), "t%dx%d", run_tier, run_len);
    if (!out.empty()) {
      out += '|';
    }
    out += buf;
  };
  for (const int t : stage_tier) {
    if (t == run_tier) {
      ++run_len;
      continue;
    }
    flush();
    run_tier = t;
    run_len = 1;
  }
  flush();
  return out.empty() ? "-" : out;
}

int ClusterTopology::world_size() const {
  int total = 0;
  for (const DeviceTier& t : tiers) {
    total += t.world_size();
  }
  return total;
}

void ClusterTopology::SetLinkBetween(int a, int b, TierLink link) {
  const int n = num_tiers();
  MEPIPE_CHECK(a >= 0 && a < n && b >= 0 && b < n && a != b);
  tier_links.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  tier_links[static_cast<std::size_t>(a) * n + b] = link;
  tier_links[static_cast<std::size_t>(b) * n + a] = std::move(link);
}

const TierLink& ClusterTopology::LinkBetween(int a, int b) const {
  const int n = num_tiers();
  MEPIPE_CHECK(a >= 0 && a < n && b >= 0 && b < n && a != b);
  MEPIPE_CHECK_EQ(static_cast<int>(tier_links.size()), n * n)
      << "inter-tier links not configured (SetLinkBetween)";
  const TierLink& link = tier_links[static_cast<std::size_t>(a) * n + b];
  MEPIPE_CHECK_GT(link.link.bandwidth, 0) << "no link between tiers " << a << " and " << b;
  return link;
}

int ClusterTopology::FastestTier() const {
  MEPIPE_CHECK(!tiers.empty());
  int best = 0;
  for (int i = 1; i < num_tiers(); ++i) {
    if (tiers[static_cast<std::size_t>(i)].gpu.sustained_matmul_flops() >
        tiers[static_cast<std::size_t>(best)].gpu.sustained_matmul_flops()) {
      best = i;
    }
  }
  return best;
}

double ClusterTopology::TierSlowdown(int i) const {
  const double fastest =
      tiers[static_cast<std::size_t>(FastestTier())].gpu.sustained_matmul_flops();
  const double mine = tier(i).gpu.sustained_matmul_flops();
  MEPIPE_CHECK_GT(mine, 0);
  return fastest / mine;
}

LinkSpec ClusterTopology::LinkForOnTier(Dim dim, const ParallelLayout& layout, int t) const {
  const DeviceTier& tr = tier(t);
  const int stride = layout.dp * layout.cp * layout.tp;
  // Stages this tier could host back to back; caps the NIC-contention
  // condition when a tier holds only part of the pipeline.
  const int host_stages =
      std::max(1, std::min(layout.pp, tr.world_size() / std::max(1, stride)));
  return LinkOn(ViewOf(tr), dim, layout, host_stages);
}

LinkSpec ClusterTopology::LinkFor(Dim dim, const ParallelLayout& layout) const {
  MEPIPE_CHECK(!tiers.empty());
  if (num_tiers() == 1) {
    if (dim == Dim::kPipeline) {
      MEPIPE_CHECK_EQ(layout.ranks(), world_size()) << "layout must cover the whole cluster";
      if (layout.pp == 1) {
        return Loopback();
      }
      return LinkOn(ViewOf(tiers.front()), dim, layout, layout.pp);
    }
    return LinkOn(ViewOf(tiers.front()), dim, layout, layout.pp);
  }
  if (dim == Dim::kPipeline) {
    if (layout.pp == 1) {
      return Loopback();
    }
    // Conservative fleet-wide summary: the slowest inter-tier link, shared
    // by the dp·cp·tp streams of one crossing stage boundary. Per-boundary
    // placement-aware pricing lives in CommModel::PipelineP2pAcross.
    const LinkSpec* worst = nullptr;
    for (int a = 0; a < num_tiers(); ++a) {
      for (int b = a + 1; b < num_tiers(); ++b) {
        const LinkSpec& l = LinkBetween(a, b).link;
        if (worst == nullptr || WorseLink(l, *worst)) {
          worst = &l;
        }
      }
    }
    return Shared(*worst, layout.dp * layout.cp * layout.tp);
  }
  // Intra-stage dimensions live inside one tier; report the worst tier's
  // mapping so fleet-wide estimates stay conservative.
  LinkSpec worst = LinkForOnTier(dim, layout, 0);
  for (int t = 1; t < num_tiers(); ++t) {
    LinkSpec candidate = LinkForOnTier(dim, layout, t);
    if (WorseLink(candidate, worst)) {
      worst = std::move(candidate);
    }
  }
  return worst;
}

FabricShareMap ClusterTopology::FabricShares(const ParallelLayout& layout) const {
  MEPIPE_CHECK(!tiers.empty());
  if (num_tiers() == 1) {
    return SharesOn(ViewOf(tiers.front()), layout, layout.pp);
  }
  FabricShareMap merged;
  for (int t = 0; t < num_tiers(); ++t) {
    const DeviceTier& tr = tier(t);
    const int stride = layout.dp * layout.cp * layout.tp;
    const int host_stages =
        std::max(1, std::min(layout.pp, tr.world_size() / std::max(1, stride)));
    const FabricShareMap map = SharesOn(ViewOf(tr), layout, host_stages);
    for (int d = 0; d < 4; ++d) {
      merged.fabric[d] = std::max(merged.fabric[d], map.fabric[d]);
    }
    merged.through_host_intra = merged.through_host_intra || map.through_host_intra;
  }
  if (layout.pp > 1) {
    // Some stage boundary may cross tiers; classify pipeline as WAN if any
    // inter-tier link is, else keep the per-tier class.
    for (const TierLink& l : tier_links) {
      if (l.wan && l.link.bandwidth > 0) {
        merged.fabric[static_cast<int>(Dim::kPipeline)] = FabricClass::kWan;
        break;
      }
    }
  }
  return merged;
}

std::vector<LayoutIssue> ParallelLayout::Validate(const ClusterTopology& topology) const {
  std::vector<LayoutIssue> issues;
  if (pp < 1 || dp < 1 || cp < 1 || tp < 1) {
    issues.push_back({LayoutIssue::Code::kEmptyLayout, -1,
                      "all layout factors must be >= 1"});
    return issues;
  }
  if (topology.num_tiers() == 1) {
    if (ranks() != topology.world_size()) {
      issues.push_back({LayoutIssue::Code::kWorldMismatch, 0,
                        "layout covers " + std::to_string(ranks()) + " ranks, cluster has " +
                            std::to_string(topology.world_size())});
    }
  } else {
    if (ranks() > topology.world_size()) {
      issues.push_back({LayoutIssue::Code::kRankOversubscription, -1,
                        "layout needs " + std::to_string(ranks()) + " ranks, fleet has " +
                            std::to_string(topology.world_size())});
    }
    const int group = dp * cp * tp;
    bool fits_somewhere = false;
    for (const DeviceTier& t : topology.tiers) {
      if (t.world_size() >= group) {
        fits_somewhere = true;
        break;
      }
    }
    if (!fits_somewhere) {
      issues.push_back({LayoutIssue::Code::kRankOversubscription, -1,
                        "stage group of " + std::to_string(group) +
                            " ranks exceeds every tier's capacity"});
    }
  }
  if (tp > 1) {
    bool any_premium = false;
    for (const DeviceTier& t : topology.tiers) {
      if (!t.consumer_fabric()) {
        any_premium = true;
        break;
      }
    }
    if (!any_premium) {
      issues.push_back({LayoutIssue::Code::kTensorParallelOnConsumerTier, -1,
                        "tp=" + std::to_string(tp) +
                            " but every tier has a through-host intra-node fabric"});
    }
  }
  return issues;
}

std::vector<LayoutIssue> ParallelLayout::Validate(const ClusterTopology& topology,
                                                  const StagePlacement& placement) const {
  std::vector<LayoutIssue> issues;
  if (pp < 1 || dp < 1 || cp < 1 || tp < 1) {
    issues.push_back({LayoutIssue::Code::kEmptyLayout, -1,
                      "all layout factors must be >= 1"});
    return issues;
  }
  if (placement.stages() != pp) {
    issues.push_back({LayoutIssue::Code::kPlacementShape, -1,
                      "placement names " + std::to_string(placement.stages()) +
                          " stages, layout has pp=" + std::to_string(pp)});
    return issues;
  }
  std::vector<int> stages_on(static_cast<std::size_t>(topology.num_tiers()), 0);
  for (const int t : placement.stage_tier) {
    if (t < 0 || t >= topology.num_tiers()) {
      issues.push_back({LayoutIssue::Code::kPlacementShape, t,
                        "placement references tier " + std::to_string(t) + " of " +
                            std::to_string(topology.num_tiers())});
      return issues;
    }
    ++stages_on[static_cast<std::size_t>(t)];
  }
  const int group = dp * cp * tp;
  for (int t = 0; t < topology.num_tiers(); ++t) {
    const int need = stages_on[static_cast<std::size_t>(t)] * group;
    if (need > topology.tier(t).world_size()) {
      issues.push_back({LayoutIssue::Code::kRankOversubscription, t,
                        "tier " + topology.tier(t).name + " hosts " +
                            std::to_string(stages_on[static_cast<std::size_t>(t)]) +
                            " stages needing " + std::to_string(need) + " ranks, has " +
                            std::to_string(topology.tier(t).world_size())});
    }
    if (tp > 1 && stages_on[static_cast<std::size_t>(t)] > 0 &&
        topology.tier(t).consumer_fabric()) {
      issues.push_back({LayoutIssue::Code::kTensorParallelOnConsumerTier, t,
                        "tp=" + std::to_string(tp) + " on consumer tier " +
                            topology.tier(t).name});
    }
  }
  return issues;
}

ClusterTopology CarveSubTopology(const ClusterTopology& fleet,
                                 const std::vector<TierSlice>& slices) {
  const int n = fleet.num_tiers();
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  ClusterTopology carved;
  std::vector<int> parent_tier;  // carved tier index -> fleet tier index
  for (const TierSlice& slice : slices) {
    MEPIPE_CHECK(slice.tier >= 0 && slice.tier < n)
        << "slice references tier " << slice.tier << " of " << n;
    MEPIPE_CHECK(!seen[static_cast<std::size_t>(slice.tier)])
        << "duplicate slice for tier " << slice.tier;
    seen[static_cast<std::size_t>(slice.tier)] = true;
    MEPIPE_CHECK_GE(slice.nodes, 0);
    if (slice.nodes == 0) {
      continue;
    }
    const DeviceTier& parent = fleet.tier(slice.tier);
    MEPIPE_CHECK_LE(slice.nodes, parent.nodes)
        << "slice wants " << slice.nodes << " nodes, tier " << parent.name << " has "
        << parent.nodes;
    DeviceTier t = parent;
    t.nodes = slice.nodes;
    carved.tiers.push_back(std::move(t));
    parent_tier.push_back(slice.tier);
  }
  MEPIPE_CHECK(!carved.tiers.empty()) << "carve selects no nodes";
  for (int a = 0; a < carved.num_tiers(); ++a) {
    for (int b = a + 1; b < carved.num_tiers(); ++b) {
      carved.SetLinkBetween(a, b, fleet.LinkBetween(parent_tier[static_cast<std::size_t>(a)],
                                                    parent_tier[static_cast<std::size_t>(b)]));
    }
  }
  return carved;
}

ClusterTopology SingleTierTopology(const ClusterSpec& spec, double usd_per_gpu_hour,
                                   std::string region, std::string name) {
  ClusterTopology topo;
  DeviceTier t;
  t.name = std::move(name);
  t.gpu = spec.gpu;
  t.nodes = spec.nodes;
  t.gpus_per_node = spec.gpus_per_node;
  t.intra_node = spec.intra_node;
  t.inter_node = spec.inter_node;
  t.usd_per_gpu_hour = usd_per_gpu_hour;
  t.region = std::move(region);
  topo.tiers.push_back(std::move(t));
  return topo;
}

DeviceTier Rtx4090Tier() {
  const ClusterSpec spec = Rtx4090Cluster();
  DeviceTier t;
  t.name = "rtx4090";
  t.gpu = spec.gpu;
  t.nodes = spec.nodes;
  t.gpus_per_node = spec.gpus_per_node;
  t.intra_node = spec.intra_node;
  t.inter_node = spec.inter_node;
  t.usd_per_gpu_hour = 0.35;
  t.region = "consumer-dc";
  return t;
}

DeviceTier A100Tier() {
  const ClusterSpec spec = A100Cluster();
  DeviceTier t;
  t.name = "a100";
  t.gpu = spec.gpu;
  t.nodes = spec.nodes;
  t.gpus_per_node = spec.gpus_per_node;
  t.intra_node = spec.intra_node;
  t.inter_node = spec.inter_node;
  t.usd_per_gpu_hour = 1.90;
  t.region = "premium-dc";
  return t;
}

TierLink WanLink(double gbps, double usd_per_gb) {
  TierLink l;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wan-%gG", gbps);
  l.link.name = buf;
  l.link.bandwidth = gbps * 1e9 / 8.0;  // effective bytes/s per direction
  l.link.latency = 15e-3;               // cross-region, ~30 ms RTT class
  l.link.through_host = true;           // WAN NICs DMA through the host
  l.usd_per_gb_egress = usd_per_gb;
  l.wan = true;
  return l;
}

TierLink LanLink(const LinkSpec& link) {
  TierLink l;
  l.link = link;
  l.usd_per_gb_egress = 0.0;
  l.wan = false;
  return l;
}

LinkSpec PipelineP2pLink(const ClusterSpec& cluster, const ParallelLayout& layout) {
  // Shim over the shared single-tier mapping (ClusterTopology::LinkFor).
  MEPIPE_CHECK_EQ(layout.ranks(), cluster.world_size())
      << "layout must cover the whole cluster";
  if (layout.pp == 1) {
    return Loopback();
  }
  return PipelineLinkOn(ViewOf(cluster), layout, layout.pp);
}

LinkSpec ContextParallelLink(const ClusterSpec& cluster, const ParallelLayout& layout) {
  return ContextLinkOn(ViewOf(cluster), layout);
}

LinkSpec DataParallelLink(const ClusterSpec& cluster, const ParallelLayout& layout) {
  return DataLinkOn(ViewOf(cluster), layout);
}

LinkSpec TensorParallelLink(const ClusterSpec& cluster, const ParallelLayout& layout) {
  return TensorLinkOn(ViewOf(cluster), layout);
}

bool DpSharesPipelineFabric(const ClusterSpec& cluster, const ParallelLayout& layout) {
  return SharesOn(ViewOf(cluster), layout, layout.pp).Shares(Dim::kData, Dim::kPipeline);
}

}  // namespace mepipe::hw
