#include "hw/comm_model.h"

#include <utility>

#include "common/check.h"
#include "model/memory.h"

namespace mepipe::hw {
namespace {

LinkSpec ShareBandwidth(LinkSpec link, int streams) {
  MEPIPE_CHECK_GT(streams, 0);
  link.bandwidth /= static_cast<double>(streams);
  return link;
}

}  // namespace

CommModel::CommModel(ClusterTopology topology, StagePlacement placement)
    : topology_(std::move(topology)), placement_(std::move(placement)) {
  MEPIPE_CHECK(!topology_.tiers.empty());
  cluster_ = topology_.tiers.front().spec();
}

Seconds CommModel::PipelineP2p(Bytes bytes, const ParallelLayout& layout) const {
  if (layout.pp == 1) {
    return 0.0;
  }
  return topology_.LinkFor(Dim::kPipeline, layout).transfer_time(bytes);
}

Seconds CommModel::PipelineP2pAcross(Bytes bytes, const ParallelLayout& layout,
                                     int from_stage, int to_stage) const {
  if (layout.pp == 1 || from_stage == to_stage) {
    return 0.0;
  }
  if (placement_.stages() == 0 || topology_.num_tiers() == 1) {
    return PipelineP2p(bytes, layout);
  }
  MEPIPE_CHECK_EQ(placement_.stages(), layout.pp);
  const int a = placement_.tier_of(from_stage);
  const int b = placement_.tier_of(to_stage);
  if (a == b) {
    return topology_.LinkForOnTier(Dim::kPipeline, layout, a).transfer_time(bytes);
  }
  // Cross-tier boundary: every dp·cp·tp rank pair of the two stages moves
  // its shard concurrently through the shared inter-tier pipe.
  const LinkSpec link =
      ShareBandwidth(topology_.LinkBetween(a, b).link, layout.dp * layout.cp * layout.tp);
  return link.transfer_time(bytes);
}

Seconds CommModel::AllReduce(Bytes bytes, int group, const LinkSpec& link) {
  MEPIPE_CHECK_GT(group, 0);
  if (group == 1 || bytes == 0) {
    return 0.0;
  }
  const double g = static_cast<double>(group);
  const double volume = 2.0 * (g - 1.0) / g * static_cast<double>(bytes);
  return 2.0 * (g - 1.0) * link.latency + volume / link.bandwidth;
}

Seconds CommModel::AllGather(Bytes bytes, int group, const LinkSpec& link) {
  MEPIPE_CHECK_GT(group, 0);
  if (group == 1 || bytes == 0) {
    return 0.0;
  }
  const double g = static_cast<double>(group);
  const double volume = (g - 1.0) / g * static_cast<double>(bytes);
  return (g - 1.0) * link.latency + volume / link.bandwidth;
}

Seconds CommModel::ReduceScatter(Bytes bytes, int group, const LinkSpec& link) {
  return AllGather(bytes, group, link);  // same ring volume and steps
}

Seconds CommModel::CpKvExchangePerLayer(const model::TransformerConfig& config,
                                        std::int64_t tokens_per_worker,
                                        const ParallelLayout& layout) const {
  if (layout.cp == 1) {
    return 0.0;
  }
  const LinkSpec link = topology_.LinkFor(Dim::kContext, layout);
  // Each worker ends up receiving the K and V blocks of every peer:
  // an all-gather of 2 (K,V) · tokens · kv_hidden · 2 bytes.
  const Bytes kv_bytes = 2 * tokens_per_worker * config.kv_hidden() * 2;
  const Bytes total = kv_bytes * layout.cp;
  return AllGather(total, layout.cp, link);
}

Seconds CommModel::DpGradientSync(Bytes param_bytes, const ParallelLayout& layout) const {
  // CP ranks hold identical parameters and compute gradients on different
  // tokens, so the synchronization (and ZeRO sharding) group is dp·cp —
  // exactly Megatron's distributed-optimizer group.
  const int group = layout.dp * layout.cp;
  if (group == 1) {
    return 0.0;
  }
  const LinkSpec link = topology_.LinkFor(Dim::kData, layout);
  // ZeRO-1: reduce-scatter fp32-accumulated grads (4 bytes/param over the
  // 2-byte param count ⇒ 2× param_bytes) + all-gather updated bf16 params.
  return ReduceScatter(2 * param_bytes, group, link) + AllGather(param_bytes, group, link);
}

Seconds CommModel::DpGradientSyncAtStage(Bytes param_bytes, const ParallelLayout& layout,
                                         int stage) const {
  const int group = layout.dp * layout.cp;
  if (group == 1) {
    return 0.0;
  }
  if (placement_.stages() == 0 || topology_.num_tiers() == 1) {
    return DpGradientSync(param_bytes, layout);
  }
  MEPIPE_CHECK_EQ(placement_.stages(), layout.pp);
  const LinkSpec link =
      topology_.LinkForOnTier(Dim::kData, layout, placement_.tier_of(stage));
  return ReduceScatter(2 * param_bytes, group, link) + AllGather(param_bytes, group, link);
}

Seconds CommModel::TpAllReducePerLayer(const model::TransformerConfig& config,
                                       std::int64_t tokens, const ParallelLayout& layout) const {
  if (layout.tp == 1) {
    return 0.0;
  }
  const LinkSpec link = topology_.LinkFor(Dim::kTensor, layout);
  const Bytes boundary = model::BoundaryBytesPerToken(config) * tokens;
  // Megatron partitioning: one all-reduce after attention + one after MLP.
  return 2.0 * AllReduce(boundary, layout.tp, link);
}

}  // namespace mepipe::hw
