#include "hw/comm_model.h"

#include "common/check.h"
#include "model/memory.h"

namespace mepipe::hw {

Seconds CommModel::PipelineP2p(Bytes bytes, const ParallelLayout& layout) const {
  if (layout.pp == 1) {
    return 0.0;
  }
  return PipelineP2pLink(cluster_, layout).transfer_time(bytes);
}

Seconds CommModel::AllReduce(Bytes bytes, int group, const LinkSpec& link) {
  MEPIPE_CHECK_GT(group, 0);
  if (group == 1 || bytes == 0) {
    return 0.0;
  }
  const double g = static_cast<double>(group);
  const double volume = 2.0 * (g - 1.0) / g * static_cast<double>(bytes);
  return 2.0 * (g - 1.0) * link.latency + volume / link.bandwidth;
}

Seconds CommModel::AllGather(Bytes bytes, int group, const LinkSpec& link) {
  MEPIPE_CHECK_GT(group, 0);
  if (group == 1 || bytes == 0) {
    return 0.0;
  }
  const double g = static_cast<double>(group);
  const double volume = (g - 1.0) / g * static_cast<double>(bytes);
  return (g - 1.0) * link.latency + volume / link.bandwidth;
}

Seconds CommModel::ReduceScatter(Bytes bytes, int group, const LinkSpec& link) {
  return AllGather(bytes, group, link);  // same ring volume and steps
}

Seconds CommModel::CpKvExchangePerLayer(const model::TransformerConfig& config,
                                        std::int64_t tokens_per_worker,
                                        const ParallelLayout& layout) const {
  if (layout.cp == 1) {
    return 0.0;
  }
  const LinkSpec link = ContextParallelLink(cluster_, layout);
  // Each worker ends up receiving the K and V blocks of every peer:
  // an all-gather of 2 (K,V) · tokens · kv_hidden · 2 bytes.
  const Bytes kv_bytes = 2 * tokens_per_worker * config.kv_hidden() * 2;
  const Bytes total = kv_bytes * layout.cp;
  return AllGather(total, layout.cp, link);
}

Seconds CommModel::DpGradientSync(Bytes param_bytes, const ParallelLayout& layout) const {
  // CP ranks hold identical parameters and compute gradients on different
  // tokens, so the synchronization (and ZeRO sharding) group is dp·cp —
  // exactly Megatron's distributed-optimizer group.
  const int group = layout.dp * layout.cp;
  if (group == 1) {
    return 0.0;
  }
  const LinkSpec link = DataParallelLink(cluster_, layout);
  // ZeRO-1: reduce-scatter fp32-accumulated grads (4 bytes/param over the
  // 2-byte param count ⇒ 2× param_bytes) + all-gather updated bf16 params.
  return ReduceScatter(2 * param_bytes, group, link) + AllGather(param_bytes, group, link);
}

Seconds CommModel::TpAllReducePerLayer(const model::TransformerConfig& config,
                                       std::int64_t tokens, const ParallelLayout& layout) const {
  if (layout.tp == 1) {
    return 0.0;
  }
  const LinkSpec link = TensorParallelLink(cluster_, layout);
  const Bytes boundary = model::BoundaryBytesPerToken(config) * tokens;
  // Megatron partitioning: one all-reduce after attention + one after MLP.
  return 2.0 * AllReduce(boundary, layout.tp, link);
}

}  // namespace mepipe::hw
