// Communication cost model: point-to-point transfers and the ring-based
// collectives (all-reduce / all-gather / reduce-scatter) that DP, CP and
// TP issue. All costs are α-β style: per-step latency + volume/bandwidth.
//
// A CommModel is built either from one homogeneous ClusterSpec (legacy,
// bit-identical behavior) or from a ClusterTopology plus a stage→tier
// StagePlacement, in which case pipeline boundaries that cross tiers are
// priced on the inter-tier (possibly WAN) link and DP rings on the
// hosting tier's fabric.
#ifndef MEPIPE_HW_COMM_MODEL_H_
#define MEPIPE_HW_COMM_MODEL_H_

#include <cstdint>

#include "common/units.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe::hw {

class CommModel {
 public:
  explicit CommModel(const ClusterSpec& cluster)
      : topology_(SingleTierTopology(cluster)), cluster_(cluster) {}

  CommModel(ClusterTopology topology, StagePlacement placement);

  const ClusterSpec& cluster() const { return cluster_; }
  const ClusterTopology& topology() const { return topology_; }
  const StagePlacement& placement() const { return placement_; }

  // One pipeline activation/gradient transfer between adjacent stages
  // (fleet-wide worst boundary; see PipelineP2pAcross for per-boundary).
  Seconds PipelineP2p(Bytes bytes, const ParallelLayout& layout) const;

  // Placement-aware boundary transfer from `from_stage` to `to_stage`.
  // Same tier: the tier's own pipeline mapping. Cross tier: the
  // inter-tier link, shared by the dp·cp·tp concurrent boundary streams.
  Seconds PipelineP2pAcross(Bytes bytes, const ParallelLayout& layout, int from_stage,
                            int to_stage) const;

  // Ring collectives over a group of `group` ranks on `link`.
  // `bytes` is the full (unsharded) payload size.
  static Seconds AllReduce(Bytes bytes, int group, const LinkSpec& link);
  static Seconds AllGather(Bytes bytes, int group, const LinkSpec& link);
  static Seconds ReduceScatter(Bytes bytes, int group, const LinkSpec& link);

  // Context parallelism: per transformer layer, each worker circulates the
  // K and V blocks of its `tokens_per_worker` tokens around the CP ring
  // (forward), and the corresponding gradients on backward (§2.2).
  Seconds CpKvExchangePerLayer(const model::TransformerConfig& config,
                               std::int64_t tokens_per_worker,
                               const ParallelLayout& layout) const;

  // Data parallelism with ZeRO-1: gradient reduce-scatter + parameter
  // all-gather over this stage's `param_bytes` of parameters.
  Seconds DpGradientSync(Bytes param_bytes, const ParallelLayout& layout) const;

  // Same, but on the fabric of the tier hosting `stage` (placement-aware;
  // falls back to the fleet-wide mapping when no placement is set).
  Seconds DpGradientSyncAtStage(Bytes param_bytes, const ParallelLayout& layout,
                                int stage) const;

  // Tensor parallelism: two all-reduces of the layer output per forward
  // (and two per backward) over the TP group — used by the A100 baseline.
  Seconds TpAllReducePerLayer(const model::TransformerConfig& config, std::int64_t tokens,
                              const ParallelLayout& layout) const;

 private:
  ClusterTopology topology_;
  StagePlacement placement_;  // empty when constructed from a ClusterSpec
  ClusterSpec cluster_;       // tier-0 view, kept for legacy accessors
};

}  // namespace mepipe::hw

#endif  // MEPIPE_HW_COMM_MODEL_H_
