// Communication cost model: point-to-point transfers and the ring-based
// collectives (all-reduce / all-gather / reduce-scatter) that DP, CP and
// TP issue. All costs are α-β style: per-step latency + volume/bandwidth.
#ifndef MEPIPE_HW_COMM_MODEL_H_
#define MEPIPE_HW_COMM_MODEL_H_

#include <cstdint>

#include "common/units.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe::hw {

class CommModel {
 public:
  explicit CommModel(const ClusterSpec& cluster) : cluster_(cluster) {}

  const ClusterSpec& cluster() const { return cluster_; }

  // One pipeline activation/gradient transfer between adjacent stages.
  Seconds PipelineP2p(Bytes bytes, const ParallelLayout& layout) const;

  // Ring collectives over a group of `group` ranks on `link`.
  // `bytes` is the full (unsharded) payload size.
  static Seconds AllReduce(Bytes bytes, int group, const LinkSpec& link);
  static Seconds AllGather(Bytes bytes, int group, const LinkSpec& link);
  static Seconds ReduceScatter(Bytes bytes, int group, const LinkSpec& link);

  // Context parallelism: per transformer layer, each worker circulates the
  // K and V blocks of its `tokens_per_worker` tokens around the CP ring
  // (forward), and the corresponding gradients on backward (§2.2).
  Seconds CpKvExchangePerLayer(const model::TransformerConfig& config,
                               std::int64_t tokens_per_worker,
                               const ParallelLayout& layout) const;

  // Data parallelism with ZeRO-1: gradient reduce-scatter + parameter
  // all-gather over this stage's `param_bytes` of parameters.
  Seconds DpGradientSync(Bytes param_bytes, const ParallelLayout& layout) const;

  // Tensor parallelism: two all-reduces of the layer output per forward
  // (and two per backward) over the TP group — used by the A100 baseline.
  Seconds TpAllReducePerLayer(const model::TransformerConfig& config, std::int64_t tokens,
                              const ParallelLayout& layout) const;

 private:
  ClusterSpec cluster_;
};

}  // namespace mepipe::hw

#endif  // MEPIPE_HW_COMM_MODEL_H_
