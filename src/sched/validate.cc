#include "sched/validate.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "common/format.h"
#include "sched/dependency.h"

namespace mepipe::sched {
namespace {

// Tolerance for table-time comparisons (the table is built from sums of
// doubles; exact arithmetic would make the checks brittle).
constexpr double kEps = 1e-9;

double OpDuration(const OpId& op, const TableCosts& costs) {
  switch (op.kind) {
    case OpKind::kForward:
      return costs.f_time;
    case OpKind::kBackward:
      return costs.b_time;
    default:
      return costs.w_time;
  }
}

// Expected multiset of statically ordered ops for one stage, carrying
// the schedule's job tag.
std::vector<OpId> ExpectedOps(const Schedule& schedule, int stage) {
  std::vector<OpId> expected = StageOps(schedule.problem, stage, schedule.job);
  if (schedule.deferred_wgrad) {
    std::erase_if(expected, [](const OpId& op) { return op.kind == OpKind::kWeightGrad; });
  }
  return expected;
}

void AddViolation(InvariantReport& report, std::string invariant, std::string detail) {
  report.violations.push_back({std::move(invariant), std::move(detail)});
}

// Structural pass: every stage lists exactly its owned op multiset.
void CheckMultisets(const Schedule& schedule, InvariantReport& report) {
  const PipelineProblem& problem = schedule.problem;
  if (static_cast<int>(schedule.stage_ops.size()) != problem.stages) {
    AddViolation(report, "multiset",
                 StrFormat("%d stage lists for %d stages",
                           static_cast<int>(schedule.stage_ops.size()), problem.stages));
    return;
  }
  if (schedule.deferred_wgrad && !problem.split_backward) {
    AddViolation(report, "multiset", "deferred W requires split backward");
  }
  for (int stage = 0; stage < problem.stages; ++stage) {
    std::vector<OpId> expected = ExpectedOps(schedule, stage);
    std::vector<OpId> actual = schedule.stage_ops[static_cast<std::size_t>(stage)];
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    if (expected != actual) {
      AddViolation(report, "multiset",
                   StrFormat("stage %d op multiset mismatch (%d vs expected %d)", stage,
                             static_cast<int>(actual.size()), static_cast<int>(expected.size())));
    }
  }
}

// Timing pass under list semantics. Returns false (and records a
// violation) when the joint program order deadlocks.
bool BuildTable(const Schedule& schedule, const TableCosts& costs, ScheduleTable& table,
                InvariantReport& report) {
  const PipelineProblem& problem = schedule.problem;
  std::unordered_map<OpId, double, OpIdHash> done;
  std::vector<std::size_t> cursor(static_cast<std::size_t>(problem.stages), 0);
  std::vector<double> stage_time(static_cast<std::size_t>(problem.stages), 0.0);
  std::size_t remaining = 0;
  for (const auto& ops : schedule.stage_ops) {
    remaining += ops.size();
  }
  bool progressed = true;
  while (progressed && remaining > 0) {
    progressed = false;
    for (int stage = 0; stage < problem.stages; ++stage) {
      auto& index = cursor[static_cast<std::size_t>(stage)];
      const auto& ops = schedule.stage_ops[static_cast<std::size_t>(stage)];
      while (index < ops.size()) {
        const OpId& op = ops[index];
        double ready = stage_time[static_cast<std::size_t>(stage)];
        bool blocked = false;
        for (const Dep& dep : DependenciesOf(problem, op)) {
          auto it = done.find(dep.op);
          if (it == done.end()) {
            blocked = true;
            break;
          }
          ready = std::max(ready, it->second + (dep.cross_stage ? costs.transfer_time : 0.0));
        }
        if (blocked) {
          break;
        }
        const double end = ready + OpDuration(op, costs);
        done.emplace(op, end);
        table.rows.push_back({stage, op, ready, end});
        table.makespan = std::max(table.makespan, end);
        stage_time[static_cast<std::size_t>(stage)] = end;
        ++index;
        --remaining;
        progressed = true;
      }
    }
  }
  if (remaining > 0) {
    AddViolation(report, "executable",
                 StrFormat("program order deadlocks: %d ops can never run",
                           static_cast<int>(remaining)));
    return false;
  }
  return true;
}

// W-after-B in program order, per (micro, slice, chunk). Only meaningful
// for static-W schedules; deferred W has no table rows.
void CheckWAfterB(const Schedule& schedule, InvariantReport& report) {
  for (int stage = 0; stage < schedule.problem.stages; ++stage) {
    std::unordered_map<OpId, std::size_t, OpIdHash> backward_index;
    const auto& ops = schedule.stage_ops[static_cast<std::size_t>(stage)];
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const OpId& op = ops[i];
      if (op.kind == OpKind::kBackward) {
        backward_index.emplace(op, i);
      } else if (op.kind == OpKind::kWeightGrad || op.kind == OpKind::kWeightGradGemm) {
        OpId b = op;
        b.kind = OpKind::kBackward;
        b.gemm = -1;
        auto it = backward_index.find(b);
        if (it == backward_index.end()) {
          AddViolation(report, "w-after-b",
                       ToString(op) + " precedes its backward on stage " +
                           std::to_string(stage));
        }
      }
    }
  }
}

// Causal slice order within a stage's program order: forwards ascend
// slices, backwards descend (the dK/dV accumulation direction).
void CheckSliceOrder(const Schedule& schedule, InvariantReport& report) {
  const int slices = schedule.problem.slices;
  if (slices == 1) {
    return;
  }
  for (int stage = 0; stage < schedule.problem.stages; ++stage) {
    std::unordered_map<OpId, std::size_t, OpIdHash> seen;
    const auto& ops = schedule.stage_ops[static_cast<std::size_t>(stage)];
    for (std::size_t i = 0; i < ops.size(); ++i) {
      seen.emplace(ops[i], i);
    }
    for (const OpId& op : ops) {
      OpId prior = op;
      if (op.kind == OpKind::kForward && op.slice > 0) {
        prior.slice = op.slice - 1;
      } else if (op.kind == OpKind::kBackward && op.slice + 1 < slices) {
        prior.slice = op.slice + 1;
      } else {
        continue;
      }
      auto it = seen.find(prior);
      if (it != seen.end() && it->second > seen.at(op)) {
        AddViolation(report, "slice-kv",
                     ToString(op) + " precedes " + ToString(prior) + " on stage " +
                         std::to_string(stage));
      }
    }
  }
}

// Declarative re-check over the table: every dependency's producer ends
// (plus transfer, when cross-stage) before the consumer starts. Catches
// builder bugs the same way a tabular validity query would.
void CheckDependencyTiming(const Schedule& schedule, const TableCosts& costs,
                           const ScheduleTable& table, InvariantReport& report) {
  std::unordered_map<OpId, const TableRow*, OpIdHash> by_op;
  for (const TableRow& row : table.rows) {
    by_op.emplace(row.op, &row);
  }
  for (const TableRow& row : table.rows) {
    for (const Dep& dep : DependenciesOf(schedule.problem, row.op)) {
      auto it = by_op.find(dep.op);
      if (it == by_op.end()) {
        if (!schedule.deferred_wgrad || dep.op.kind != OpKind::kWeightGrad) {
          AddViolation(report, "chunk-chain",
                       ToString(row.op) + " depends on missing " + ToString(dep.op));
        }
        continue;
      }
      const double gate = it->second->end + (dep.cross_stage ? costs.transfer_time : 0.0);
      if (row.start + kEps < gate) {
        AddViolation(report, "chunk-chain",
                     StrFormat("%s starts %.6f before its dependency %s allows %.6f",
                               ToString(row.op).c_str(), row.start, ToString(dep.op).c_str(),
                               gate));
      }
    }
  }
}

// Running retained-forward accounting against the per-stage cap — the
// count core/memory_model multiplies into bytes.
void CheckActivationCap(const Schedule& schedule, const std::vector<int>& cap,
                        InvariantReport& report) {
  if (cap.empty()) {
    return;
  }
  if (static_cast<int>(cap.size()) != schedule.problem.stages) {
    AddViolation(report, "activation-cap",
                 StrFormat("cap has %d entries for %d stages", static_cast<int>(cap.size()),
                           schedule.problem.stages));
    return;
  }
  for (int stage = 0; stage < schedule.problem.stages; ++stage) {
    const int peak = PeakRetainedForwards(schedule, stage);
    const int limit = cap[static_cast<std::size_t>(stage)];
    if (limit > 0 && peak > limit) {
      AddViolation(report, "activation-cap",
                   StrFormat("stage %d retains %d forwards, cap %d", stage, peak, limit));
    }
  }
}

// One op per compute stream per instant: a stage's table spans must not
// overlap.
void CheckStreamExclusivity(const ScheduleTable& table, int stages, InvariantReport& report) {
  std::vector<std::vector<const TableRow*>> by_stage(static_cast<std::size_t>(stages));
  for (const TableRow& row : table.rows) {
    by_stage[static_cast<std::size_t>(row.stage)].push_back(&row);
  }
  for (int stage = 0; stage < stages; ++stage) {
    auto& rows = by_stage[static_cast<std::size_t>(stage)];
    std::sort(rows.begin(), rows.end(),
              [](const TableRow* a, const TableRow* b) { return a->start < b->start; });
    for (std::size_t i = 1; i < rows.size(); ++i) {
      if (rows[i]->start + kEps < rows[i - 1]->end) {
        AddViolation(report, "one-op-per-stream",
                     StrFormat("stage %d runs %s and %s concurrently", stage,
                               ToString(rows[i - 1]->op).c_str(),
                               ToString(rows[i]->op).c_str()));
      }
    }
  }
}

}  // namespace

std::string InvariantReport::Summary() const {
  std::string out;
  for (const Violation& violation : violations) {
    out += violation.invariant;
    out += ": ";
    out += violation.detail;
    out += '\n';
  }
  return out;
}

ScheduleTable BuildScheduleTable(const Schedule& schedule, const TableCosts& costs) {
  ValidateSchedule(schedule);
  ScheduleTable table;
  InvariantReport report;
  const bool ok = BuildTable(schedule, costs, table, report);
  MEPIPE_CHECK(ok) << report.Summary();
  return table;
}

InvariantReport CheckScheduleInvariants(const Schedule& schedule,
                                        const InvariantOptions& options) {
  InvariantReport report;
  schedule.problem.Validate();
  CheckMultisets(schedule, report);
  if (!report.ok()) {
    return report;  // timing over a malformed op set would only cascade
  }
  ScheduleTable table;
  if (!BuildTable(schedule, options.costs, table, report)) {
    return report;
  }
  CheckWAfterB(schedule, report);
  CheckSliceOrder(schedule, report);
  CheckDependencyTiming(schedule, options.costs, table, report);
  CheckActivationCap(schedule, options.retained_cap, report);
  CheckStreamExclusivity(table, schedule.problem.stages, report);
  return report;
}

void ValidateScheduleInvariants(const Schedule& schedule, const InvariantOptions& options) {
  const InvariantReport report = CheckScheduleInvariants(schedule, options);
  MEPIPE_CHECK(report.ok()) << "schedule '" << schedule.method << "' violates invariants:\n"
                            << report.Summary();
}

}  // namespace mepipe::sched
