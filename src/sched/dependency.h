// Dependency semantics of slice-level pipeline training (§4.1, Figure 4).
//
// Forward F(m,t,g) requires:
//   - F(m,t,g-1): the slice's activations from the preceding chunk
//     (a cross-stage transfer whenever the chunks live on different
//     stages);
//   - F(m,t-1,g): the K/V of all preceding slices of the same sample on
//     the same chunk (causal attention — same device, no transfer).
// Backward B(m,t,g) requires:
//   - B(m,t,g+1) (cross-stage), or F(m,t,G-1) when g is the last chunk
//     (the loss of slice t only depends on its own logits);
//   - B(m,t+1,g): dK/dV contributions flowing from later slices.
// Weight gradients W/Wg(m,t,g) require only B(m,t,g).
// DP-sync buckets AR(g) require every gradient-producing op of chunk g:
//   all W(m,t,g) when the problem splits B/W, else all B(m,t,g) — the
//   bucket's gradients exist only once the last of them has run.
#ifndef MEPIPE_SCHED_DEPENDENCY_H_
#define MEPIPE_SCHED_DEPENDENCY_H_

#include <vector>

#include "sched/op.h"

namespace mepipe::sched {

struct Dep {
  OpId op;
  bool cross_stage = false;  // satisfied through an inter-stage transfer

  friend bool operator==(const Dep&, const Dep&) = default;
};

// Dependencies of `op` under `problem`. `op.kind == kWeightGradGemm` deps
// match kWeightGrad (the GEMMs of one W are mutually independent).
std::vector<Dep> DependenciesOf(const PipelineProblem& problem, const OpId& op);

// Allocation-free dependency walk: invokes `visit(const Dep&)` for every
// dependency of `op`. Single source of the dependency semantics above —
// DependenciesOf, the engine's ready-time scan, and the surrogate's
// critical-path pass all go through this.
template <typename Visitor>
void ForEachDependency(const PipelineProblem& problem, const OpId& op,
                       Visitor&& visit) {
  const int last_chunk = problem.num_chunks() - 1;
  const int stage = problem.stage_of_chunk(op.chunk);
  // Dependencies never cross jobs: every producer inherits the
  // consumer's job tag, so tagged schedules (sched::TagJob) resolve
  // against their own ops.
  const int job = op.job;
  switch (op.kind) {
    case OpKind::kForward: {
      if (op.chunk > 0) {
        const bool cross = problem.stage_of_chunk(op.chunk - 1) != stage;
        visit(Dep{{OpKind::kForward, op.micro, op.slice, op.chunk - 1, -1, job}, cross});
      }
      if (op.slice > 0) {
        visit(Dep{{OpKind::kForward, op.micro, op.slice - 1, op.chunk, -1, job}, false});
      }
      break;
    }
    case OpKind::kBackward: {
      if (op.chunk < last_chunk) {
        const bool cross = problem.stage_of_chunk(op.chunk + 1) != stage;
        visit(Dep{{OpKind::kBackward, op.micro, op.slice, op.chunk + 1, -1, job}, cross});
      } else {
        visit(Dep{{OpKind::kForward, op.micro, op.slice, last_chunk, -1, job}, false});
      }
      if (op.slice + 1 < problem.slices) {
        visit(Dep{{OpKind::kBackward, op.micro, op.slice + 1, op.chunk, -1, job}, false});
      }
      break;
    }
    case OpKind::kWeightGrad:
    case OpKind::kWeightGradGemm: {
      visit(Dep{{OpKind::kBackward, op.micro, op.slice, op.chunk, -1, job}, false});
      break;
    }
    case OpKind::kDpSync: {
      // The bucket is ready once the last gradient op of its chunk has
      // run: every W when the schedule splits B/W, every B otherwise.
      const OpKind producer =
          problem.split_backward ? OpKind::kWeightGrad : OpKind::kBackward;
      for (int micro = 0; micro < problem.micros; ++micro) {
        for (int slice = 0; slice < problem.slices; ++slice) {
          visit(Dep{{producer, micro, slice, op.chunk, -1, job}, false});
        }
      }
      break;
    }
  }
}

// All F/B(/W) compute ops owned by `stage`, in an unspecified order,
// stamped with `job` (0 = untagged). Per-GEMM W splits are not
// enumerated here (they are an execution-time refinement of
// kWeightGrad).
std::vector<OpId> StageOps(const PipelineProblem& problem, int stage, int job = 0);

// All compute ops of the whole problem.
std::vector<OpId> AllOps(const PipelineProblem& problem);

// The data-parallel gradient-sync buckets owned by `stage`: one kDpSync
// op per chunk placed on the stage, in chunk order (the order the
// engine's per-stage comm stream issues them when each is ready). These
// are comm ops — never part of Schedule::stage_ops or StageOps above.
std::vector<OpId> DpSyncOps(const PipelineProblem& problem, int stage, int job = 0);

// Canonical identity of chunk `g`'s gradient bucket.
OpId DpSyncOp(int chunk, int job = 0);

}  // namespace mepipe::sched

#endif  // MEPIPE_SCHED_DEPENDENCY_H_
