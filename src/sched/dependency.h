// Dependency semantics of slice-level pipeline training (§4.1, Figure 4).
//
// Forward F(m,t,g) requires:
//   - F(m,t,g-1): the slice's activations from the preceding chunk
//     (a cross-stage transfer whenever the chunks live on different
//     stages);
//   - F(m,t-1,g): the K/V of all preceding slices of the same sample on
//     the same chunk (causal attention — same device, no transfer).
// Backward B(m,t,g) requires:
//   - B(m,t,g+1) (cross-stage), or F(m,t,G-1) when g is the last chunk
//     (the loss of slice t only depends on its own logits);
//   - B(m,t+1,g): dK/dV contributions flowing from later slices.
// Weight gradients W/Wg(m,t,g) require only B(m,t,g).
// DP-sync buckets AR(g) require every gradient-producing op of chunk g:
//   all W(m,t,g) when the problem splits B/W, else all B(m,t,g) — the
//   bucket's gradients exist only once the last of them has run.
#ifndef MEPIPE_SCHED_DEPENDENCY_H_
#define MEPIPE_SCHED_DEPENDENCY_H_

#include <vector>

#include "sched/op.h"

namespace mepipe::sched {

struct Dep {
  OpId op;
  bool cross_stage = false;  // satisfied through an inter-stage transfer

  friend bool operator==(const Dep&, const Dep&) = default;
};

// Dependencies of `op` under `problem`. `op.kind == kWeightGradGemm` deps
// match kWeightGrad (the GEMMs of one W are mutually independent).
std::vector<Dep> DependenciesOf(const PipelineProblem& problem, const OpId& op);

// All F/B(/W) compute ops owned by `stage`, in an unspecified order.
// Per-GEMM W splits are not enumerated here (they are an execution-time
// refinement of kWeightGrad).
std::vector<OpId> StageOps(const PipelineProblem& problem, int stage);

// All compute ops of the whole problem.
std::vector<OpId> AllOps(const PipelineProblem& problem);

// The data-parallel gradient-sync buckets owned by `stage`: one kDpSync
// op per chunk placed on the stage, in chunk order (the order the
// engine's per-stage comm stream issues them when each is ready). These
// are comm ops — never part of Schedule::stage_ops or StageOps above.
std::vector<OpId> DpSyncOps(const PipelineProblem& problem, int stage);

// Canonical identity of chunk `g`'s gradient bucket.
OpId DpSyncOp(int chunk);

}  // namespace mepipe::sched

#endif  // MEPIPE_SCHED_DEPENDENCY_H_
