#include "sched/serialize.h"

#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/format.h"

namespace mepipe::sched {
namespace {

constexpr const char* kHeader = "mepipe-schedule v1";

const char* PlacementTag(ChunkPlacement placement) {
  return placement == ChunkPlacement::kVShape ? "v" : "rr";
}

std::string OpToken(const OpId& op) {
  std::string token = StrFormat("%s%d.%d.%d", ToString(op.kind), op.micro, op.slice, op.chunk);
  if (op.kind == OpKind::kWeightGradGemm) {
    token += StrFormat(".%d", op.gemm);
  }
  return token;
}

OpId ParseOpToken(const std::string& token) {
  OpId op;
  std::size_t cursor = 0;
  if (token.rfind("Wg", 0) == 0) {
    op.kind = OpKind::kWeightGradGemm;
    cursor = 2;
  } else if (token.rfind("AR", 0) == 0) {
    op.kind = OpKind::kDpSync;
    cursor = 2;
  } else if (!token.empty() && token[0] == 'F') {
    op.kind = OpKind::kForward;
    cursor = 1;
  } else if (!token.empty() && token[0] == 'B') {
    op.kind = OpKind::kBackward;
    cursor = 1;
  } else if (!token.empty() && token[0] == 'W') {
    op.kind = OpKind::kWeightGrad;
    cursor = 1;
  } else {
    MEPIPE_CHECK(false) << "bad op token: " << token;
  }
  int fields[4] = {0, 0, 0, -1};
  int field = 0;
  std::string number;
  for (std::size_t i = cursor; i <= token.size(); ++i) {
    if (i == token.size() || token[i] == '.') {
      MEPIPE_CHECK(!number.empty()) << "bad op token: " << token;
      MEPIPE_CHECK_LT(field, 4) << "bad op token: " << token;
      fields[field++] = std::stoi(number);
      number.clear();
    } else {
      number += token[i];
    }
  }
  MEPIPE_CHECK_GE(field, 3) << "bad op token: " << token;
  op.micro = fields[0];
  op.slice = fields[1];
  op.chunk = fields[2];
  op.gemm = fields[3];
  return op;
}

// Reads "key=value" off a stream token.
std::pair<std::string, std::string> KeyValue(const std::string& token) {
  const std::size_t eq = token.find('=');
  MEPIPE_CHECK_NE(eq, std::string::npos) << "expected key=value, got: " << token;
  return {token.substr(0, eq), token.substr(eq + 1)};
}

}  // namespace

std::string SerializeSchedule(const Schedule& schedule) {
  std::string out = kHeader;
  out += "\nmethod ";
  out += schedule.method;
  // Job tag only when set — untagged schedules (the norm, and every
  // golden snapshot) serialize byte-identically to the pre-tag format.
  if (schedule.job != 0) {
    out += StrFormat("\njob %d", schedule.job);
  }
  out += StrFormat("\nproblem p=%d v=%d s=%d n=%d split=%d placement=%s deferred_w=%d\n",
                   schedule.problem.stages, schedule.problem.virtual_chunks,
                   schedule.problem.slices, schedule.problem.micros,
                   schedule.problem.split_backward ? 1 : 0,
                   PlacementTag(schedule.problem.placement), schedule.deferred_wgrad ? 1 : 0);
  for (int stage = 0; stage < schedule.problem.stages; ++stage) {
    out += StrFormat("stage %d:", stage);
    for (const OpId& op : schedule.stage_ops[static_cast<std::size_t>(stage)]) {
      out += ' ';
      out += OpToken(op);
    }
    out += '\n';
  }
  return out;
}

Schedule ParseSchedule(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  MEPIPE_CHECK(static_cast<bool>(std::getline(in, line)) && line == kHeader)
      << "missing header '" << kHeader << "'";

  Schedule schedule;
  MEPIPE_CHECK(static_cast<bool>(std::getline(in, line)) && line.rfind("method ", 0) == 0)
      << "missing method line";
  schedule.method = line.substr(7);

  MEPIPE_CHECK(static_cast<bool>(std::getline(in, line))) << "missing problem line";
  if (line.rfind("job ", 0) == 0) {
    schedule.job = std::stoi(line.substr(4));
    MEPIPE_CHECK_GE(schedule.job, 0) << "negative job tag";
    MEPIPE_CHECK(static_cast<bool>(std::getline(in, line))) << "missing problem line";
  }
  MEPIPE_CHECK(line.rfind("problem ", 0) == 0) << "missing problem line";
  {
    std::istringstream fields(line.substr(8));
    std::string token;
    while (fields >> token) {
      const auto [key, value] = KeyValue(token);
      if (key == "p") {
        schedule.problem.stages = std::stoi(value);
      } else if (key == "v") {
        schedule.problem.virtual_chunks = std::stoi(value);
      } else if (key == "s") {
        schedule.problem.slices = std::stoi(value);
      } else if (key == "n") {
        schedule.problem.micros = std::stoi(value);
      } else if (key == "split") {
        schedule.problem.split_backward = value == "1";
      } else if (key == "placement") {
        schedule.problem.placement =
            value == "v" ? ChunkPlacement::kVShape : ChunkPlacement::kRoundRobin;
      } else if (key == "deferred_w") {
        schedule.deferred_wgrad = value == "1";
      } else {
        MEPIPE_CHECK(false) << "unknown problem field: " << key;
      }
    }
  }
  schedule.problem.Validate();
  schedule.stage_ops.resize(static_cast<std::size_t>(schedule.problem.stages));

  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    MEPIPE_CHECK(line.rfind("stage ", 0) == 0) << "unexpected line: " << line;
    std::istringstream fields(line.substr(6));
    std::string stage_token;
    fields >> stage_token;
    MEPIPE_CHECK(!stage_token.empty() && stage_token.back() == ':')
        << "malformed stage line: " << line;
    const int stage = std::stoi(stage_token.substr(0, stage_token.size() - 1));
    MEPIPE_CHECK_GE(stage, 0);
    MEPIPE_CHECK_LT(stage, schedule.problem.stages);
    std::string op_token;
    while (fields >> op_token) {
      schedule.stage_ops[static_cast<std::size_t>(stage)].push_back(ParseOpToken(op_token));
    }
  }

  if (schedule.job != 0) {
    TagJob(schedule, schedule.job);  // op tokens don't carry the tag
  }
  ValidateSchedule(schedule);
  return schedule;
}

void WriteScheduleFile(const Schedule& schedule, const std::string& path) {
  std::ofstream file(path);
  MEPIPE_CHECK(file.good()) << "cannot open " << path;
  file << SerializeSchedule(schedule);
  MEPIPE_CHECK(file.good()) << "write to " << path << " failed";
}

Schedule ReadScheduleFile(const std::string& path) {
  std::ifstream file(path);
  MEPIPE_CHECK(file.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseSchedule(buffer.str());
}

}  // namespace mepipe::sched
