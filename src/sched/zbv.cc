#include "sched/zbv.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sched/dependency.h"

namespace mepipe::sched {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

// The two fill-policy axes the recipe tries (the best of the four
// combinations is kept):
//   alternate — when an F and a B are both ready, prefer the opposite of
//               what just ran (keeps the F relay feeding downstream
//               stages) instead of strictly draining backwards;
//   w_eager   — pending weight gradients may fill any idle slot, instead
//               of running only when memory pressure forces one (to
//               admit a capped forward) or during the final drain.
struct FillPolicy {
  bool alternate = true;
  bool w_eager = true;
};

struct Built {
  std::vector<std::vector<OpId>> order;
  double makespan = kInfinity;
  // Worst-stage peak activation in chunk-forward units: retained
  // forwards plus act_grad_weight per pending W (see ZbvOptions).
  double peak_activation_units = 0.0;
};

class Builder {
 public:
  Builder(const PipelineProblem& problem, const ZbvOptions& options, int cap, FillPolicy policy)
      : problem_(problem),
        options_(options),
        cap_(cap),
        policy_(policy),
        state_(static_cast<std::size_t>(problem.stages)) {}

  Built Run();

 private:
  struct StageState {
    int f_next[2] = {0, 0};  // next micro to forward, per leg (0 = descending)
    int b_next[2] = {0, 0};
    std::deque<OpId> pending_w;  // Ws whose B has run, FIFO
    int retained = 0;            // chunk-forwards awaiting their W
    double peak_units = 0.0;     // peak of retained + weighted W backlog
    double free_at = 0.0;
    // Alternation state: after an F prefer a B and vice versa.
    bool prefer_backward = false;
  };

  int ChunkOfLeg(int stage, int leg) const {
    return leg == 0 ? stage : 2 * problem_.stages - 1 - stage;
  }

  double Duration(OpKind kind) const {
    switch (kind) {
      case OpKind::kForward:
        return options_.f_time;
      case OpKind::kBackward:
        return options_.b_time;
      default:
        return options_.w_time;
    }
  }

  // Earliest start permitted by finished dependencies; +inf if one is
  // still unscheduled.
  double ReadyTime(const OpId& op) const {
    double ready = 0.0;
    for (const Dep& dep : DependenciesOf(problem_, op)) {
      auto it = done_.find(dep.op);
      if (it == done_.end()) {
        return kInfinity;
      }
      ready = std::max(ready, it->second + (dep.cross_stage ? options_.transfer_time : 0.0));
    }
    return ready;
  }

  const PipelineProblem& problem_;
  const ZbvOptions& options_;
  const int cap_;
  const FillPolicy policy_;
  std::vector<StageState> state_;
  std::unordered_map<OpId, double, OpIdHash> done_;
};

Built Builder::Run() {
  const int p = problem_.stages;
  const int n = problem_.micros;
  const double lookahead = 2.0 * options_.transfer_time;

  Built built;
  built.order.resize(static_cast<std::size_t>(p));
  std::size_t remaining = static_cast<std::size_t>(p) * 6 * static_cast<std::size_t>(n);

  double now = 0.0;
  while (remaining > 0) {
    bool scheduled_any = false;
    double next_event = kInfinity;

    for (int stage = 0; stage < p; ++stage) {
      StageState& st = state_[static_cast<std::size_t>(stage)];
      const bool fb_left =
          st.f_next[0] < n || st.f_next[1] < n || st.b_next[0] < n || st.b_next[1] < n;
      if (!fb_left && st.pending_w.empty()) {
        continue;  // stage fully drained
      }
      if (st.free_at > now) {
        next_event = std::min(next_event, st.free_at);
        continue;
      }

      // Enumerate the stage's candidate ops: the next F and B of each
      // leg, plus the oldest pending W. Dependencies order the two legs
      // naturally (stage p-1's ascending F needs its descending F; a
      // descending B needs the ascending B of the same micro).
      struct Candidate {
        OpId op;
        double ready = kInfinity;
        int rank = 0;
      };
      Candidate best;
      bool found = false;
      bool forward_capped = false;  // a dep-ready F was blocked by the cap

      auto consider = [&](const OpId& op, int rank, int headroom) {
        const double ready = ReadyTime(op);
        if (ready == kInfinity) {
          return;
        }
        if (ready > now + lookahead) {
          next_event = std::min(next_event, ready);
          return;
        }
        if (op.kind == OpKind::kForward && st.retained > cap_ - headroom) {
          forward_capped = true;
          return;
        }
        if (!found || std::tie(rank, ready, op.micro, op.chunk) <
                          std::tie(best.rank, best.ready, best.op.micro, best.op.chunk)) {
          best = {op, ready, rank};
          found = true;
        }
      };

      // Rank order within the stage. The ascending-leg (second-visit)
      // forward outranks the descending one: it is the op that unlocks
      // the local B chain, the recipe's zero-bubble turnaround. A
      // descending forward additionally reserves one cap slot for it —
      // otherwise eager first-leg forwards fill the retained budget and
      // the backward chain can never start (deadlock).
      const int f_rank = policy_.alternate ? (st.prefer_backward ? 1 : 0) : 1;
      const int b_rank = 1 - f_rank;
      for (int leg = 0; leg < 2; ++leg) {
        const int chunk = ChunkOfLeg(stage, leg);
        if (st.f_next[leg] < n) {
          consider({OpKind::kForward, st.f_next[leg], 0, chunk}, 2 * f_rank + (leg == 0 ? 1 : 0),
                   leg == 0 ? 2 : 1);
        }
        if (st.b_next[leg] < n) {
          consider({OpKind::kBackward, st.b_next[leg], 0, chunk}, 2 * b_rank, 0);
        }
      }
      const bool w_admissible =
          !st.pending_w.empty() && (policy_.w_eager || forward_capped || !fb_left);
      if (w_admissible) {
        consider(st.pending_w.front(), 6, 0);
      }
      if (!found) {
        continue;
      }

      const OpId op = best.op;
      const double start = std::max(now, best.ready);
      const double end = start + Duration(op.kind);
      done_.emplace(op, end);
      built.order[static_cast<std::size_t>(stage)].push_back(op);
      switch (op.kind) {
        case OpKind::kForward:
          ++st.retained;
          ++st.f_next[op.chunk == stage ? 0 : 1];
          st.prefer_backward = true;
          break;
        case OpKind::kBackward:
          ++st.b_next[op.chunk == stage ? 0 : 1];
          st.pending_w.push_back({OpKind::kWeightGrad, op.micro, 0, op.chunk});
          st.prefer_backward = false;
          break;
        default:  // kWeightGrad
          --st.retained;
          st.pending_w.pop_front();
          break;
      }
      st.peak_units = std::max(
          st.peak_units, st.retained + options_.act_grad_weight *
                                           static_cast<double>(st.pending_w.size()));
      st.free_at = end;
      --remaining;
      scheduled_any = true;
      next_event = std::min(next_event, end);
    }

    if (scheduled_any) {
      continue;  // other stages may start at the same instant
    }
    MEPIPE_CHECK_LT(next_event, kInfinity)
        << "ZB-V construction deadlocked with " << remaining
        << " ops left; the retained-forward cap is likely below 2";
    now = next_event;
  }

  built.makespan = 0.0;
  built.peak_activation_units = 0.0;
  for (const StageState& st : state_) {
    built.makespan = std::max(built.makespan, st.free_at);
    built.peak_activation_units = std::max(built.peak_activation_units, st.peak_units);
  }
  return built;
}

constexpr FillPolicy kFillTrials[] = {
    {true, true}, {true, false}, {false, true}, {false, false}};

// The shared validation + cap/budget resolution of the public entry
// points. Returns the resolved retained-forward cap.
int ResolveZbvCap(int stages, const ZbvOptions& options) {
  MEPIPE_CHECK_GT(options.f_time, 0.0);
  MEPIPE_CHECK_GT(options.b_time, 0.0);
  MEPIPE_CHECK_GT(options.w_time, 0.0);
  MEPIPE_CHECK_GE(options.transfer_time, 0.0);
  MEPIPE_CHECK_GE(options.act_grad_weight, 0.0);
  MEPIPE_CHECK_GE(options.activation_budget_units, 0.0);
  const int cap = options.max_retained > 0 ? options.max_retained : 2 * stages;
  MEPIPE_CHECK_GE(cap, 2) << "ZB-V needs both legs of a micro-batch in flight";
  return cap;
}

double ResolveZbvBudget(int cap, const ZbvOptions& options) {
  return options.activation_budget_units > 0.0 ? options.activation_budget_units
                                               : static_cast<double>(cap);
}

}  // namespace

int ZbvMaxRetainedForwards(int stages, int micros) { return 2 * std::min(stages, micros); }

std::vector<ZbvFillCandidate> ZbvFillCandidates(int stages, int micros,
                                                const ZbvOptions& options) {
  PipelineProblem problem;
  problem.stages = stages;
  problem.virtual_chunks = 2;
  problem.micros = micros;
  problem.split_backward = true;
  problem.placement = ChunkPlacement::kVShape;
  problem.Validate();
  const int cap = ResolveZbvCap(stages, options);
  const double budget = ResolveZbvBudget(cap, options);
  std::vector<ZbvFillCandidate> candidates;
  for (const FillPolicy policy : kFillTrials) {
    const Built built = Builder(problem, options, cap, policy).Run();
    candidates.push_back({policy.alternate, policy.w_eager, built.makespan,
                          built.peak_activation_units,
                          built.peak_activation_units <= budget + 1e-9});
  }
  return candidates;
}

Schedule HandcraftedZbvSchedule(int stages, int micros, const ZbvOptions& options) {
  PipelineProblem problem;
  problem.stages = stages;
  problem.virtual_chunks = 2;
  problem.micros = micros;
  problem.split_backward = true;
  problem.placement = ChunkPlacement::kVShape;
  problem.Validate();
  const int cap = ResolveZbvCap(stages, options);
  const double budget = ResolveZbvBudget(cap, options);

  // Memory-aware fill selection: a fill within the activation budget
  // always beats one that blows it, and among fills on the same side of
  // the budget the smaller makespan wins (first-tried wins exact ties,
  // as before). When no fill fits — the budget is below what the
  // construction can do at all — the ranking degrades to peak-first so
  // the least-memory fill is returned instead of throwing.
  Built best;
  bool best_feasible = false;
  for (const FillPolicy policy : kFillTrials) {
    Built built = Builder(problem, options, cap, policy).Run();
    const bool feasible = built.peak_activation_units <= budget + 1e-9;
    const auto key = [](bool fits, const Built& b) {
      return std::make_tuple(!fits, fits ? 0.0 : b.peak_activation_units, b.makespan);
    };
    if (best.order.empty() || key(feasible, built) < key(best_feasible, best)) {
      best = std::move(built);
      best_feasible = feasible;
    }
  }

  Schedule schedule;
  schedule.problem = problem;
  schedule.method = "ZBV";
  schedule.stage_ops = std::move(best.order);
  schedule.deferred_wgrad = false;
  ValidateSchedule(schedule);
  return schedule;
}

}  // namespace mepipe::sched
