// Memory-controllable schedule synthesis: one engine that emits the whole
// handcrafted zoo (1F1B, VPP, ZBV, …) as points of a single budgeted
// family, plus the budgets in between that no handcrafted recipe covers.
//
// Following "Pipeline Parallelism with Controllable Memory" (Qi et al.,
// arXiv:2405.15362), every schedule in sched/ decomposes into a repeating
// per-stage building block — some number of warmup forwards, then a
// steady-state rotation of F/B(/W) over the stage's local chunks — whose
// free parameters are the per-stage warmup offsets and the fill policy.
// The synthesizer instantiates that parameterization under a per-stage
// activation budget (retained chunk-forwards) with two cooperating
// engines:
//
//   composer  — an event-driven, stage-local greedy (the generalization
//               of sched/zbv.cc's Builder to arbitrary v, both chunk
//               placements, and fused or split backward) that turns a
//               concrete (warmup offsets, fill policy) assignment into a
//               complete program order. Later-visit forwards outrank
//               earlier ones and each visit-k forward reserves v-k cap
//               slots, so the backward chain can always be reached and
//               the budget is respected by construction.
//   refiner   — a branch-and-bound over the warmup offsets, seeded by
//               greedy incumbents, pruned by an admissible chunk-chain
//               lower bound (for uniform-cost ZBV shapes the bound is
//               exactly 6n+(p-1) chunk-op units, and the composer
//               reaches it) and by the activation cap (offsets beyond a
//               stage's budget cannot be scheduled and are never
//               branched on).
//
// Budget extremes recover the handcrafted constructions:
//   v=1, fused B,  budget_i = max(1, p-i)  → 1F1B
//   v>1, fused B,  round-robin placement   → VPP-class interleaving
//   v=2, split B,  V-shape, budget 2p      → ZB-V at the 6n+(p-1) bound
// and intermediate budgets trace the memory–bubble frontier between
// them (bench_synth pins it in synth_frontier.csv).
#ifndef MEPIPE_SCHED_SYNTH_H_
#define MEPIPE_SCHED_SYNTH_H_

#include <string>
#include <vector>

#include "sched/schedule.h"

namespace mepipe::sched {

struct SynthOptions {
  // Abstract per-op durations used to order the composition; real costs
  // are applied later by the execution engine. With split_backward,
  // b_time is the activation-gradient half only.
  double f_time = 1.0;
  double b_time = 1.0;
  double w_time = 1.0;
  // Abstract inter-stage transfer delay (same role as
  // GeneratorOptions::transfer_time).
  double transfer_time = 0.05;
  // Per-stage activation budget in retained chunk-forwards (a forward is
  // retained until the op that releases it: W when the problem splits
  // the backward, B otherwise). Empty = uncapped (n·v per stage). Every
  // entry must be >= v, the floor below which a micro-batch's chunk
  // chain cannot fit on the stage.
  std::vector<int> budget;
  // Branch-and-bound controls: offsets are branched within
  // ±offset_radius of the incumbent's measured warmup, and at most
  // max_leaves full compositions are evaluated (the incumbent is always
  // a valid schedule, so exhaustion degrades quality, never correctness).
  int offset_radius = 2;
  int max_leaves = 256;
  // Schedule::method label; empty selects "Synth(v=..,cap=..)".
  std::string method_name;
};

// Synthesis diagnostics (all filled by SynthesizeSchedule).
struct SynthReport {
  double makespan = 0.0;     // abstract, under the SynthOptions durations
  double lower_bound = 0.0;  // admissible chunk-chain bound for the shape
  bool reached_lower_bound = false;
  std::vector<int> warmup;   // chosen per-stage warmup offsets
  int peak_retained = 0;     // worst-stage retained chunk-forwards
  int leaves_evaluated = 0;  // compositions run by the refiner
  int subtrees_pruned = 0;   // cut by the bound or the activation cap
};

// Synthesizes and validates a schedule for `problem` (slices must be 1;
// the slice axis is SVPP's dimension, not the block family's). Throws
// CheckError for malformed inputs: non-positive durations, negative
// transfer, a budget vector whose length is not `stages`, or a budget
// entry below the v floor.
Schedule SynthesizeSchedule(const PipelineProblem& problem, const SynthOptions& options = {},
                            SynthReport* report = nullptr);

// The admissible makespan lower bound the refiner prunes with: every op
// starts no earlier than its dependency-DAG earliest start (infinite
// resources), and a stage must serially execute all of its work after
// the ramp first reaches it —
//   max( max_i  earliest_arrival_i + serial_work_i ,  critical path ).
// For uniform-cost ZBV shapes (v=2, split B, F=B=W, zero transfer) this
// is exactly 6n+(p-1) chunk-op units.
double SynthChunkChainLowerBound(const PipelineProblem& problem, const SynthOptions& options = {});

// The per-stage budget vectors under which the synthesizer reproduces
// the handcrafted extremes (see header comment).
std::vector<int> SynthOneFOneBBudget(int stages, int micros);
std::vector<int> SynthZbvBudget(int stages, int micros);

}  // namespace mepipe::sched

#endif  // MEPIPE_SCHED_SYNTH_H_
