// The static schedule container: a per-stage program order over compute
// ops, plus validation that the order is executable (deadlock-free and
// complete) under the slice-level dependency semantics.
#ifndef MEPIPE_SCHED_SCHEDULE_H_
#define MEPIPE_SCHED_SCHEDULE_H_

#include <string>
#include <vector>

#include "sched/dependency.h"
#include "sched/op.h"

namespace mepipe::sched {

struct Schedule {
  PipelineProblem problem;
  std::string method;  // e.g. "1F1B", "VPP", "SVPP(f=6)"
  // Program order per stage. Engines execute each stage's list in order,
  // waiting on dependencies; bubbles arise from the waits.
  std::vector<std::vector<OpId>> stage_ops;
  // When true (zero-bubble / MEPipe fine-grained W), kWeightGrad ops are
  // NOT part of `stage_ops`; the execution engine schedules them
  // dynamically into bubbles and drains the remainder at iteration end.
  bool deferred_wgrad = false;
  // Owning training job (core/cluster's multi-job dimension). 0 =
  // untagged single-job schedule, the state every generator produces;
  // TagJob stamps this together with every OpId::job so validation and
  // execution agree on the tag.
  int job = 0;
};

// Stamps `job` onto the schedule and every op in its program orders.
// Generators always emit job=0; the cluster service tags each admitted
// job's winning schedule so interleaved multi-job timelines stay
// attributable. Idempotent; `job` must be >= 0.
void TagJob(Schedule& schedule, int job);

// Throws CheckError when the schedule is malformed: wrong op multiset per
// stage, ops on the wrong stage, or a program order that deadlocks under
// the dependency semantics.
void ValidateSchedule(const Schedule& schedule);

// Index of the first backward op in `stage`'s program order (the paper's
// "number of forward passes before the first backward" when all earlier
// entries are forwards). Returns the list size if no backward exists.
std::size_t FirstBackwardIndex(const Schedule& schedule, int stage);

// Peak number of forward passes whose activations are simultaneously
// retained on `stage`, assuming program order (+1 on F, -1 on the
// releasing op: B when not split, W when split with deferred_wgrad=false;
// with deferred W the activation survives until iteration end in the
// worst case, so the count releases on B only as a lower bound).
int PeakRetainedForwards(const Schedule& schedule, int stage);

}  // namespace mepipe::sched

#endif  // MEPIPE_SCHED_SCHEDULE_H_
