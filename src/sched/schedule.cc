#include "sched/schedule.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace mepipe::sched {
namespace {

using OpSet = std::unordered_set<OpId, OpIdHash>;

// Expected multiset of ops for a stage's static order, carrying the
// schedule's job tag so tagged schedules validate against themselves.
std::vector<OpId> ExpectedStageOps(const Schedule& schedule, int stage) {
  std::vector<OpId> expected = StageOps(schedule.problem, stage, schedule.job);
  if (schedule.deferred_wgrad) {
    std::erase_if(expected, [](const OpId& op) { return op.kind == OpKind::kWeightGrad; });
  }
  return expected;
}

}  // namespace

void TagJob(Schedule& schedule, int job) {
  MEPIPE_CHECK_GE(job, 0);
  schedule.job = job;
  for (auto& ops : schedule.stage_ops) {
    for (OpId& op : ops) {
      op.job = job;
    }
  }
}

void ValidateSchedule(const Schedule& schedule) {
  const PipelineProblem& problem = schedule.problem;
  problem.Validate();
  MEPIPE_CHECK_EQ(static_cast<int>(schedule.stage_ops.size()), problem.stages);
  if (schedule.deferred_wgrad) {
    MEPIPE_CHECK(problem.split_backward) << "deferred W requires split backward";
  }

  // 1. Each stage's list is exactly the expected op multiset.
  for (int stage = 0; stage < problem.stages; ++stage) {
    std::vector<OpId> expected = ExpectedStageOps(schedule, stage);
    std::vector<OpId> actual = schedule.stage_ops[static_cast<std::size_t>(stage)];
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    MEPIPE_CHECK(expected == actual)
        << "stage " << stage << " op multiset mismatch (" << actual.size() << " vs expected "
        << expected.size() << ")";
  }

  // 2. The program orders are jointly executable: repeatedly advance every
  // stage past ops whose dependencies have completed. W ops removed from
  // the static order (deferred) are treated as always-runnable after their
  // B, which the engine guarantees; they impose no order constraints here.
  OpSet done;
  std::vector<std::size_t> cursor(static_cast<std::size_t>(problem.stages), 0);
  bool progressed = true;
  std::size_t remaining = 0;
  for (const auto& ops : schedule.stage_ops) {
    remaining += ops.size();
  }
  while (progressed && remaining > 0) {
    progressed = false;
    for (int stage = 0; stage < problem.stages; ++stage) {
      auto& index = cursor[static_cast<std::size_t>(stage)];
      const auto& ops = schedule.stage_ops[static_cast<std::size_t>(stage)];
      while (index < ops.size()) {
        const OpId& op = ops[index];
        bool ready = true;
        for (const Dep& dep : DependenciesOf(problem, op)) {
          if (!done.contains(dep.op)) {
            ready = false;
            break;
          }
        }
        if (!ready) {
          break;
        }
        done.insert(op);
        ++index;
        --remaining;
        progressed = true;
      }
    }
  }
  MEPIPE_CHECK_EQ(remaining, 0u) << "schedule deadlocks: " << remaining
                                 << " ops can never execute under program order";
}

std::size_t FirstBackwardIndex(const Schedule& schedule, int stage) {
  const auto& ops = schedule.stage_ops[static_cast<std::size_t>(stage)];
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == OpKind::kBackward) {
      return i;
    }
  }
  return ops.size();
}

int PeakRetainedForwards(const Schedule& schedule, int stage) {
  const bool release_on_w = schedule.problem.split_backward && !schedule.deferred_wgrad;
  int current = 0;
  int peak = 0;
  for (const OpId& op : schedule.stage_ops[static_cast<std::size_t>(stage)]) {
    switch (op.kind) {
      case OpKind::kForward:
        peak = std::max(peak, ++current);
        break;
      case OpKind::kBackward:
        if (!release_on_w) {
          --current;
        }
        break;
      case OpKind::kWeightGrad:
        if (release_on_w) {
          --current;
        }
        break;
      case OpKind::kWeightGradGemm:
      case OpKind::kDpSync:
        break;
    }
  }
  return peak;
}

}  // namespace mepipe::sched
