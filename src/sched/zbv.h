// The original handcrafted ZB-V schedule construction (Qi et al.,
// "Pipeline Parallelism with Controllable Memory", arXiv:2405.15362).
//
// ZB-V places v=2 chunks per stage in a V: stage i owns chunk i on the
// descending leg and chunk 2p-1-i on the ascending leg, so both the
// mid-pipeline turnaround (chunk p-1 → p on stage p-1) and the loss
// turnaround (F → B of chunk 2p-1 on stage 0) are stage-local. With the
// backward split into its activation-gradient half (B) and its
// weight-gradient half (W), every stage owes 2F + 2B + 2W per
// micro-batch, and the construction interleaves them so that under
// uniform durations (F ≈ B ≈ W) the steady state is bubble-free while
// at most 2p chunk-forwards — 1F1B-parity activation memory — are ever
// retained per stage.
//
// Unlike the capped list-scheduler approximation (`ZbvCappedSchedule`),
// this generator emits the V-shape F/B/W interleaving directly:
//   1. warmup     — the chunk-0 forward wave descends the V; while a
//                   stage waits for its ascending-leg forward to come
//                   back up, it fills the wait with future descending-
//                   leg forwards (memory permitting) — the closed-form
//                   warmup depth grows as the stage nears the top;
//   2. steady     — one B, one F, one W per chunk per period,
//                   alternating legs, W drawn FIFO from the pending
//                   queue its B filled;
//   3. drain      — remaining B waves retire, then the W backlog runs
//                   back-to-back.
// Weight gradients are part of the static program order (the recipe
// decides where W runs), not deferred to the execution engine.
//
// Four fill-policy variants are tried — whether an idle slot prefers
// alternating F/B or strictly drains backwards, and whether pending W
// may fill any idle slot or only memory-forced ones. Selection is
// memory-aware: a fill's peak activation (retained chunk-forwards plus
// the act-grad each pending W retains until it runs) is checked against
// the activation budget first, and only the feasible fills compete on
// abstract makespan. (The former makespan-only ranking could select a
// lazy-W fill whose act-grad backlog blew the budget while a
// memory-equivalent eager fill existed.)
#ifndef MEPIPE_SCHED_ZBV_H_
#define MEPIPE_SCHED_ZBV_H_

#include "sched/schedule.h"

namespace mepipe::sched {

struct ZbvOptions {
  // Abstract durations used to order the construction; real costs are
  // applied later by the execution engine. B is the activation-gradient
  // half only, so F ≈ B ≈ W is the zero-bubble regime.
  double f_time = 1.0;
  double b_time = 1.0;
  double w_time = 1.0;
  // Abstract inter-stage transfer delay (same role as
  // GeneratorOptions::transfer_time).
  double transfer_time = 0.05;
  // Per-stage cap on retained chunk-forwards; a forward is retained
  // until its weight gradient has run. 0 selects the construction's
  // 1F1B-parity bound of 2p chunk-forwards (each 1/(2p) of a sample's
  // activation footprint).
  int max_retained = 0;
  // Memory-aware fill selection. A fill's peak activation is counted in
  // chunk-forward units: retained forwards plus act_grad_weight per
  // pending W (the activation gradient B produces is retained until its
  // W consumes it). Fills whose peak exceeds activation_budget_units
  // are filtered out of the makespan ranking whenever any fill fits;
  // 0 budget means "the retained-forward cap" (so with the default
  // act_grad_weight of 0 the ranking degenerates to the legacy
  // makespan-only selection).
  double act_grad_weight = 0.0;
  double activation_budget_units = 0.0;
};

// One fill-policy variant's measured profile, for tests and diagnostics.
struct ZbvFillCandidate {
  bool alternate = false;
  bool w_eager = false;
  double makespan = 0.0;
  double peak_activation_units = 0.0;  // retained + act-grad backlog
  bool within_budget = false;
};

// Profiles of the four fill policies under `options`, in the fixed trial
// order (alternate, w_eager) = (1,1), (1,0), (0,1), (0,0). The schedule
// HandcraftedZbvSchedule returns is the feasible candidate with the
// smallest makespan (peak, then makespan, when none fits the budget).
std::vector<ZbvFillCandidate> ZbvFillCandidates(int stages, int micros,
                                                const ZbvOptions& options = {});

// Builds and validates the handcrafted ZB-V schedule. Throws CheckError
// for malformed inputs (stages < 1, micros < 1, max_retained < 2).
Schedule HandcraftedZbvSchedule(int stages, int micros, const ZbvOptions& options = {});

// The memory bound of the construction: retained chunk-forwards on the
// worst stage, min(2·micros, 2·stages) — 1F1B parity when n ≥ p.
int ZbvMaxRetainedForwards(int stages, int micros);

}  // namespace mepipe::sched

#endif  // MEPIPE_SCHED_ZBV_H_
