#include "sched/op.h"

#include "common/check.h"
#include "common/format.h"

namespace mepipe::sched {

const char* ToString(OpKind kind) {
  switch (kind) {
    case OpKind::kForward:
      return "F";
    case OpKind::kBackward:
      return "B";
    case OpKind::kWeightGrad:
      return "W";
    case OpKind::kWeightGradGemm:
      return "Wg";
    case OpKind::kDpSync:
      return "AR";
  }
  return "?";
}

std::string ToString(const OpId& op) {
  std::string out = StrFormat("%s(m=%d,t=%d,g=%d", ToString(op.kind), op.micro, op.slice, op.chunk);
  if (op.kind == OpKind::kWeightGradGemm) {
    out += StrFormat(",k=%d", op.gemm);
  }
  if (op.job != 0) {
    out += StrFormat(",j=%d", op.job);
  }
  return out + ")";
}

std::size_t OpIdHash::operator()(const OpId& op) const {
  std::size_t seed = static_cast<std::size_t>(op.kind);
  auto mix = [&seed](std::size_t value) {
    seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  };
  mix(static_cast<std::size_t>(op.micro));
  mix(static_cast<std::size_t>(op.slice));
  mix(static_cast<std::size_t>(op.chunk));
  mix(static_cast<std::size_t>(op.gemm + 1));
  mix(static_cast<std::size_t>(op.job));
  return seed;
}

int PipelineProblem::stage_of_chunk(int chunk) const {
  MEPIPE_CHECK_GE(chunk, 0);
  MEPIPE_CHECK_LT(chunk, num_chunks());
  switch (placement) {
    case ChunkPlacement::kRoundRobin:
      return chunk % stages;
    case ChunkPlacement::kVShape: {
      // Zig-zag: 0,1,…,p-1, then p-1,…,1,0, repeating.
      const int round = chunk / stages;
      const int offset = chunk % stages;
      return (round % 2 == 0) ? offset : stages - 1 - offset;
    }
  }
  return chunk % stages;
}

std::int64_t PipelineProblem::ops_per_stage() const {
  const std::int64_t fb = static_cast<std::int64_t>(micros) * slices * virtual_chunks;
  return split_backward ? 3 * fb : 2 * fb;
}

void PipelineProblem::Validate() const {
  MEPIPE_CHECK_GE(stages, 1);
  MEPIPE_CHECK_GE(virtual_chunks, 1);
  MEPIPE_CHECK_GE(slices, 1);
  MEPIPE_CHECK_GE(micros, 1);
  if (placement == ChunkPlacement::kVShape) {
    MEPIPE_CHECK_EQ(virtual_chunks, 2) << "V-shape placement is defined for v=2";
  }
}

}  // namespace mepipe::sched
