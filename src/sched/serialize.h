// Plain-text serialization of schedules, so a generated schedule can be
// handed to an external execution engine (the role Megatron plays for
// the real MEPipe, §6) or archived and diffed. The format is
// line-oriented and human-readable:
//
//   mepipe-schedule v1
//   method SVPP(v=1,s=2,f=5)
//   problem p=4 v=1 s=2 n=6 split=1 placement=rr deferred_w=1
//   stage 0: F0.0.0 F0.1.0 B0.1.0 ...
//   ...
//
// Op tokens are K<micro>.<slice>.<chunk>[.<gemm>] with K ∈ {F,B,W,Wg}.
#ifndef MEPIPE_SCHED_SERIALIZE_H_
#define MEPIPE_SCHED_SERIALIZE_H_

#include <string>

#include "sched/schedule.h"

namespace mepipe::sched {

std::string SerializeSchedule(const Schedule& schedule);

// Parses and validates; throws CheckError on malformed input or on a
// schedule that fails ValidateSchedule.
Schedule ParseSchedule(const std::string& text);

void WriteScheduleFile(const Schedule& schedule, const std::string& path);
Schedule ReadScheduleFile(const std::string& path);

}  // namespace mepipe::sched

#endif  // MEPIPE_SCHED_SERIALIZE_H_
