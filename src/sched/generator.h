// A deadlock-free, policy-driven list scheduler over the slice-level
// dependency graph. It generates static per-stage program orders by
// simulating abstract time: at every instant each idle stage starts the
// highest-priority ready op, subject to a per-stage cap on the number of
// retained forward passes (the memory knob — §4.2's "number of forward
// passes before the first backward", parameter f).
//
// This single engine generates:
//   - 1F1B/DAPPLE      (v=1, s=1, cap_i = min(n, p-i))
//   - SVPP and all its memory variants (general v, s, cap_i = max(v·s, f-i))
//   - TeraPipe/GPipe   (uncapped, forward-first priority)
// The cap schema cap_i = max(v·s, f−i) reduces exactly to 1F1B's warmup
// depth for v=s=1, f=p.
#ifndef MEPIPE_SCHED_GENERATOR_H_
#define MEPIPE_SCHED_GENERATOR_H_

#include <string>
#include <vector>

#include "sched/schedule.h"

namespace mepipe::sched {

// Structured option-admissibility error (same idiom as
// hw::ParallelLayout::Validate): one issue per violated rule, so callers
// can report every problem at once instead of failing on the first.
struct GeneratorIssue {
  enum class Code {
    kInflightCapArity,      // inflight_cap length != stage count
    kStageTimeScaleArity,   // stage_time_scale length != stage count
    kNonPositiveTimeScale,  // a stage_time_scale entry <= 0 (or NaN)
    kNegativeInflightCap,   // an inflight_cap entry < 0
    kNonPositiveDuration,   // an abstract f/b/w duration <= 0
    kNegativeTransfer,      // transfer_time < 0
  };
  Code code;
  int stage = -1;  // offending entry index, when applicable
  std::string message;
};

const char* GeneratorIssueCodeName(GeneratorIssue::Code code);

// How weight-gradient ops are placed when problem.split_backward is set.
enum class WgradPolicy {
  kDeferred,        // not in the static order; the engine fills bubbles (§5)
  kLowestPriority,  // statically placed only when no F/B is ready (ZB-style)
  kImmediate,       // statically placed right after the producing B
};

struct GeneratorOptions {
  // Per-stage cap on retained forwards; 0 entries or an empty vector mean
  // "uncapped". Use CapSchedule() to build the SVPP/1F1B schema.
  std::vector<int> inflight_cap;
  // Priority between a ready F and a ready B: backward-first releases
  // memory and unblocks upstream stages (1F1B/SVPP); forward-first yields
  // GPipe/TeraPipe shapes.
  bool backward_first = true;
  WgradPolicy wgrad = WgradPolicy::kDeferred;
  // §4.3 rescheduling optimization: among simultaneously-ready backward
  // passes, prefer the one with the most transitive children
  // ((slice+1)·(chunk+1) − 1), which unblocks the largest remaining
  // subtree. Off ⇒ plain lexicographic order (the unoptimized variant).
  bool child_count_backward_priority = false;
  // Abstract durations used only to order the generation; real costs are
  // applied later by the execution engine.
  double f_time = 1.0;
  double b_time = 2.0;
  double w_time = 1.0;
  // Per-stage multipliers on the abstract durations (all must be > 0):
  // an op on stage i takes kind_time · stage_time_scale[i]. Empty =
  // uniform stages. This is the straggler-aware hook: core/rebalance
  // passes measured slowdowns (× the rebalanced layer-share ratio) so
  // the generated interleaving wraps around a known-slow stage instead
  // of assuming uniform rates.
  std::vector<double> stage_time_scale;
  // Abstract inter-stage transfer delay; a small positive value keeps the
  // generated interleavings realistic (a transfer never beats a no-op).
  double transfer_time = 0.05;
  // Scheduling lookahead: an op whose dependencies complete within this
  // window still competes for the current slot (the stage idles until it
  // is ready). Without it, a ready backward that beats an in-flight
  // forward by one transfer latency steals the slot and delays the
  // forward relay by a whole backward — a limit cycle that inflates the
  // steady-state bubble. Defaults to 2× transfer_time.
  double lookahead = -1.0;

  // Structured admissibility checks against a `stages`-stage problem.
  // Empty result ⇔ the options are well-formed (a length mismatch
  // between the per-stage vectors and the stage count was previously
  // only caught — or worse, silently accepted — deep inside
  // generation). GenerateCapped runs this at entry and throws
  // CheckError with the full issue list.
  std::vector<GeneratorIssue> Validate(int stages) const;
};

// Builds the cap vector cap_i = max(min_cap, f - i) for `stages` stages.
std::vector<int> CapSchedule(int stages, int f, int min_cap);

// Generates and validates a schedule. Throws CheckError if the options
// make the problem unschedulable (e.g. a cap below v·s).
Schedule GenerateCapped(const PipelineProblem& problem, const GeneratorOptions& options,
                        std::string method_name);

}  // namespace mepipe::sched

#endif  // MEPIPE_SCHED_GENERATOR_H_
