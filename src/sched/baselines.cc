#include "sched/baselines.h"

#include <algorithm>

#include "common/check.h"
#include "common/format.h"
#include "sched/generator.h"
#include "sched/zbv.h"

namespace mepipe::sched {
namespace {

// Mapping of Megatron-LM's interleaved-1F1B "virtual micro-batch" counter
// to (micro, local chunk). Counter k walks groups of p consecutive micros
// per chunk, cycling through the v chunks, then moving to the next group
// of p micros.
struct VirtualStep {
  int micro = 0;
  int local_chunk = 0;  // in [0, v)
};

VirtualStep DecodeVirtualStep(int k, int stages, int chunks, bool forward) {
  const int group = stages * chunks;
  const int in_group = k % group;
  int local_chunk = in_group / stages;
  if (!forward) {
    local_chunk = chunks - 1 - local_chunk;
  }
  const int micro = (in_group % stages) + stages * (k / group);
  return {micro, local_chunk};
}

}  // namespace

Schedule GPipeSchedule(int stages, int micros) {
  PipelineProblem problem;
  problem.stages = stages;
  problem.micros = micros;
  GeneratorOptions options;
  options.backward_first = false;  // forwards drain first
  return GenerateCapped(problem, options, "GPipe");
}

Schedule OneFOneBSchedule(int stages, int micros) {
  PipelineProblem problem;
  problem.stages = stages;
  problem.micros = micros;
  GeneratorOptions options;
  options.inflight_cap = CapSchedule(stages, stages, 1);
  return GenerateCapped(problem, options, "1F1B");
}

Schedule VppSchedule(int stages, int virtual_chunks, int micros) {
  MEPIPE_CHECK_GE(virtual_chunks, 2) << "VPP requires at least two chunks per stage";
  MEPIPE_CHECK_EQ(micros % stages, 0) << "Megatron interleaving requires n % p == 0";
  PipelineProblem problem;
  problem.stages = stages;
  problem.virtual_chunks = virtual_chunks;
  problem.micros = micros;

  Schedule schedule;
  schedule.problem = problem;
  schedule.method = StrFormat("VPP(v=%d)", virtual_chunks);
  schedule.stage_ops.resize(static_cast<std::size_t>(stages));

  const int total = micros * virtual_chunks;  // forward units per stage
  for (int rank = 0; rank < stages; ++rank) {
    auto& ops = schedule.stage_ops[static_cast<std::size_t>(rank)];
    const int warmup = std::min((stages - rank - 1) * 2 + (virtual_chunks - 1) * stages, total);
    int f_next = 0;
    int b_next = 0;
    auto emit_forward = [&] {
      const VirtualStep step = DecodeVirtualStep(f_next++, stages, virtual_chunks, true);
      ops.push_back({OpKind::kForward, step.micro, 0, step.local_chunk * stages + rank});
    };
    auto emit_backward = [&] {
      const VirtualStep step = DecodeVirtualStep(b_next++, stages, virtual_chunks, false);
      ops.push_back({OpKind::kBackward, step.micro, 0, step.local_chunk * stages + rank});
    };
    for (int k = 0; k < warmup; ++k) {
      emit_forward();
    }
    while (f_next < total) {
      emit_forward();
      emit_backward();
    }
    while (b_next < total) {
      emit_backward();
    }
  }
  ValidateSchedule(schedule);
  return schedule;
}

Schedule TeraPipeSchedule(int stages, int slices, int micros) {
  PipelineProblem problem;
  problem.stages = stages;
  problem.slices = slices;
  problem.micros = micros;
  GeneratorOptions options;
  options.backward_first = false;  // GPipe-like: all forwards first
  return GenerateCapped(problem, options, StrFormat("TeraPipe(s=%d)", slices));
}

Schedule Zb1pSchedule(int stages, int micros) {
  PipelineProblem problem;
  problem.stages = stages;
  problem.micros = micros;
  problem.split_backward = true;
  GeneratorOptions options;
  options.inflight_cap = CapSchedule(stages, stages, 1);
  options.wgrad = WgradPolicy::kDeferred;
  // B here is the activation-gradient half only: roughly as long as F.
  options.b_time = 1.0;
  return GenerateCapped(problem, options, "ZB-1P");
}

Schedule HanayoSchedule(int stages, int micros) {
  PipelineProblem problem;
  problem.stages = stages;
  problem.virtual_chunks = 2;
  problem.micros = micros;
  problem.placement = ChunkPlacement::kVShape;
  GeneratorOptions options;
  // Table 3 grants Hanayo DAPPLE-class activation memory (A): up to 2p
  // chunk-forwards of A/(2p) each on the first stage.
  options.inflight_cap = CapSchedule(stages, 2 * stages, 2);
  return GenerateCapped(problem, options, "Hanayo");
}

Schedule ZbvSchedule(int stages, int micros) {
  return HandcraftedZbvSchedule(stages, micros);
}

Schedule ZbvCappedSchedule(int stages, int micros) {
  PipelineProblem problem;
  problem.stages = stages;
  problem.virtual_chunks = 2;
  problem.micros = micros;
  problem.split_backward = true;
  problem.placement = ChunkPlacement::kVShape;
  GeneratorOptions options;
  // V-shape pairs each stage's two chunks symmetrically; cap p keeps the
  // retained-forward profile in the 1F1B family (ZBV's design goal).
  options.inflight_cap = CapSchedule(stages, std::max(stages, 2), 2);
  options.wgrad = WgradPolicy::kDeferred;
  options.b_time = 1.0;
  return GenerateCapped(problem, options, "ZBV-capped");
}

}  // namespace mepipe::sched
