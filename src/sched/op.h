// The operation taxonomy every pipeline schedule in this library is
// expressed in, and the pipeline problem instance they are scheduled for.
//
// A compute op is identified by (kind, micro, slice, chunk):
//   micro ∈ [0, n)  — micro-batch index
//   slice ∈ [0, s)  — slice index within the micro-batch's sample (§2.1,
//                     TeraPipe-style sequence slicing; s=1 ⇒ classic PP)
//   chunk ∈ [0, v·p) — global model chunk (§2.1, VPP; v=1 ⇒ one chunk per
//                     stage). The chunk determines the owning stage.
// Weight-gradient work may additionally be decomposed into individual
// GEMMs (§5), identified by a `gemm` sub-index.
#ifndef MEPIPE_SCHED_OP_H_
#define MEPIPE_SCHED_OP_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace mepipe::sched {

enum class OpKind : std::uint8_t {
  kForward,         // F — forward pass of one slice through one chunk
  kBackward,        // B — activation-gradient backward (or full backward
                    //     when the schedule does not split B/W)
  kWeightGrad,      // W — whole weight-gradient computation of a slice/chunk
  kWeightGradGemm,  // Wg — one GEMM of a W computation (fine-grained, §5)
  kDpSync,          // AR — data-parallel gradient all-reduce of one
                    //      bucket (all gradients of one chunk). Runs on a
                    //      comm stream, not the compute stream; becomes
                    //      ready when the last gradient op of its chunk
                    //      completes. Identified by `chunk` alone
                    //      (micro/slice/gemm are 0/0/-1).
};

const char* ToString(OpKind kind);

struct OpId {
  OpKind kind = OpKind::kForward;
  int micro = 0;
  int slice = 0;
  int chunk = 0;
  int gemm = -1;  // only meaningful for kWeightGradGemm
  // Owning training job, for multi-job cluster timelines (core/cluster).
  // 0 = untagged single-job run — the default everywhere a schedule is
  // generated; sched::TagJob stamps a whole schedule after the fact and
  // every dependency/engine-synthesized op inherits the consumer's tag,
  // so one interleaved timeline can attribute each span to its job (the
  // multi-session `session_id` idiom).
  int job = 0;

  friend auto operator<=>(const OpId&, const OpId&) = default;
};

std::string ToString(const OpId& op);

struct OpIdHash {
  std::size_t operator()(const OpId& op) const;
};

// How global chunks map onto pipeline stages.
enum class ChunkPlacement : std::uint8_t {
  kRoundRobin,  // stage(g) = g mod p  (Megatron interleaved VPP)
  kVShape,      // v=2 zig-zag: 0,1,…,p-1,p-1,…,1,0  (ZBV / Hanayo wave)
};

// A pipeline scheduling problem instance (Table 1 notations).
struct PipelineProblem {
  int stages = 1;          // p
  int virtual_chunks = 1;  // v — chunks per stage
  int slices = 1;          // s — sequence pipeline size
  int micros = 1;          // n — number of micro-batches
  bool split_backward = false;  // B and W are separate ops (ZB / MEPipe)
  ChunkPlacement placement = ChunkPlacement::kRoundRobin;

  int num_chunks() const { return virtual_chunks * stages; }

  int stage_of_chunk(int chunk) const;

  // Compute ops per stage in a full iteration (excluding per-GEMM splits):
  // n·s·v forwards, n·s·v backwards (+ n·s·v weight grads when split).
  std::int64_t ops_per_stage() const;

  void Validate() const;  // throws CheckError on malformed instances
};

}  // namespace mepipe::sched

#endif  // MEPIPE_SCHED_OP_H_
