#include "sched/synth.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/format.h"
#include "sched/dependency.h"
#include "sched/validate.h"

namespace mepipe::sched {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;

// The fill-policy axes (the same two sched/zbv.cc tries):
//   alternate — when an F and a B are both ready, prefer the opposite of
//               what just ran instead of strictly draining backwards;
//   w_eager   — pending weight gradients may fill any idle slot, instead
//               of running only when memory pressure forces one or
//               during the final drain. Meaningless for fused backward.
struct FillPolicy {
  bool alternate = true;
  bool w_eager = true;
};

// Chunks owned by each stage, ascending — chunk index increases along
// the forward chain for both placements, so this is also the order the
// forward wave visits the stage ("visit order").
std::vector<std::vector<int>> LocalChunks(const PipelineProblem& problem) {
  std::vector<std::vector<int>> local(static_cast<std::size_t>(problem.stages));
  for (int chunk = 0; chunk < problem.num_chunks(); ++chunk) {
    local[static_cast<std::size_t>(problem.stage_of_chunk(chunk))].push_back(chunk);
  }
  return local;
}

// Earliest-start DP over the dependency DAG under infinite resources.
// Micro-batches are independent (no inter-micro dependencies at s=1),
// so one pass over the chunk chains covers every micro.
struct EarliestStarts {
  std::vector<double> forward;   // earliest F start per chunk
  std::vector<double> backward;  // earliest B start per chunk
};

EarliestStarts ComputeEarliestStarts(const PipelineProblem& problem,
                                     const SynthOptions& options) {
  const int chunks = problem.num_chunks();
  EarliestStarts es;
  es.forward.resize(static_cast<std::size_t>(chunks), 0.0);
  es.backward.resize(static_cast<std::size_t>(chunks), 0.0);
  for (int g = 1; g < chunks; ++g) {
    const bool cross = problem.stage_of_chunk(g) != problem.stage_of_chunk(g - 1);
    es.forward[static_cast<std::size_t>(g)] = es.forward[static_cast<std::size_t>(g - 1)] +
                                              options.f_time +
                                              (cross ? options.transfer_time : 0.0);
  }
  es.backward[static_cast<std::size_t>(chunks - 1)] =
      es.forward[static_cast<std::size_t>(chunks - 1)] + options.f_time;
  for (int g = chunks - 2; g >= 0; --g) {
    const bool cross = problem.stage_of_chunk(g) != problem.stage_of_chunk(g + 1);
    es.backward[static_cast<std::size_t>(g)] = es.backward[static_cast<std::size_t>(g + 1)] +
                                               options.b_time +
                                               (cross ? options.transfer_time : 0.0);
  }
  return es;
}

struct Composed {
  std::vector<std::vector<OpId>> order;
  double makespan = kInfinity;
  int peak_retained = 0;
  std::vector<int> first_backward_forwards;  // realized warmup per stage
};

// The building-block composer: an event-driven, stage-local greedy over
// (warmup offsets, fill policy). Generalizes sched/zbv.cc's Builder —
// arbitrary v, both placements, fused or split backward — with the same
// deadlock-avoidance invariant: a visit-k forward reserves v-k cap
// slots, so later-visit forwards (the ones that unlock the backward
// chain) are always admissible when earlier ones are.
class Composer {
 public:
  Composer(const PipelineProblem& problem, const SynthOptions& options,
           const std::vector<std::vector<int>>& local_chunks, const std::vector<int>& caps,
           const std::vector<int>& warmup, FillPolicy policy)
      : problem_(problem),
        options_(options),
        local_(local_chunks),
        caps_(caps),
        warmup_(warmup),
        policy_(policy),
        state_(static_cast<std::size_t>(problem.stages)) {}

  // Throws CheckError when the (warmup, cap) assignment deadlocks.
  Composed Run();

 private:
  struct StageState {
    std::vector<int> f_next;  // next micro to forward, per visit
    std::vector<int> b_next;
    std::deque<OpId> pending_w;  // Ws whose B has run, FIFO (split only)
    int retained = 0;            // chunk-forwards awaiting their release
    int peak_retained = 0;
    int forwards_done = 0;
    int first_backward_forwards = -1;  // forwards_done when the first B ran
    double free_at = 0.0;
    bool prefer_backward = false;
  };

  double Duration(OpKind kind) const {
    switch (kind) {
      case OpKind::kForward:
        return options_.f_time;
      case OpKind::kBackward:
        return options_.b_time;
      default:
        return options_.w_time;
    }
  }

  // Earliest start permitted by finished dependencies; +inf if one is
  // still unscheduled.
  double ReadyTime(const OpId& op) const {
    double ready = 0.0;
    bool blocked = false;
    ForEachDependency(problem_, op, [&](const Dep& dep) {
      const auto it = done_.find(dep.op);
      if (it == done_.end()) {
        blocked = true;
        return;
      }
      ready = std::max(ready, it->second + (dep.cross_stage ? options_.transfer_time : 0.0));
    });
    return blocked ? kInfinity : ready;
  }

  const PipelineProblem& problem_;
  const SynthOptions& options_;
  const std::vector<std::vector<int>>& local_;
  const std::vector<int>& caps_;
  const std::vector<int>& warmup_;
  const FillPolicy policy_;
  std::vector<StageState> state_;
  std::unordered_map<OpId, double, OpIdHash> done_;
};

Composed Composer::Run() {
  const int p = problem_.stages;
  const int n = problem_.micros;
  const int v = problem_.virtual_chunks;
  const bool split = problem_.split_backward;
  const double lookahead = 2.0 * options_.transfer_time;
  const int ops_per_fb = (split ? 3 : 2);

  for (int stage = 0; stage < p; ++stage) {
    StageState& st = state_[static_cast<std::size_t>(stage)];
    st.f_next.assign(static_cast<std::size_t>(v), 0);
    st.b_next.assign(static_cast<std::size_t>(v), 0);
  }

  Composed composed;
  composed.order.resize(static_cast<std::size_t>(p));
  std::size_t remaining =
      static_cast<std::size_t>(p) * static_cast<std::size_t>(ops_per_fb) * v *
      static_cast<std::size_t>(n);

  double now = 0.0;
  while (remaining > 0) {
    bool scheduled_any = false;
    double next_event = kInfinity;

    for (int stage = 0; stage < p; ++stage) {
      StageState& st = state_[static_cast<std::size_t>(stage)];
      const auto& chunks = local_[static_cast<std::size_t>(stage)];
      bool f_left = false;
      bool b_left = false;
      for (int k = 0; k < v; ++k) {
        f_left = f_left || st.f_next[static_cast<std::size_t>(k)] < n;
        b_left = b_left || st.b_next[static_cast<std::size_t>(k)] < n;
      }
      if (!f_left && !b_left && st.pending_w.empty()) {
        continue;  // stage fully drained
      }
      if (st.free_at > now) {
        next_event = std::min(next_event, st.free_at);
        continue;
      }

      struct Candidate {
        OpId op;
        double ready = kInfinity;
        std::int64_t rank = 0;
      };
      Candidate best;
      bool found = false;
      bool forward_capped = false;  // a dep-ready F was blocked by the cap

      const int cap = caps_[static_cast<std::size_t>(stage)];
      auto consider = [&](const OpId& op, std::int64_t rank, int headroom) {
        const double ready = ReadyTime(op);
        if (ready == kInfinity) {
          return;
        }
        if (ready > now + lookahead) {
          next_event = std::min(next_event, ready);
          return;
        }
        if (op.kind == OpKind::kForward && st.retained > cap - headroom) {
          forward_capped = true;
          return;
        }
        if (!found || std::tie(rank, ready, op.micro, op.chunk) <
                          std::tie(best.rank, best.ready, best.op.micro, best.op.chunk)) {
          best = {op, ready, rank};
          found = true;
        }
      };

      // Kind preference: with the alternate policy an F prefers to follow
      // a B and vice versa (keeps the relay feeding downstream stages);
      // without it, ready backwards always drain first.
      const int f_rank = policy_.alternate ? (st.prefer_backward ? 1 : 0) : 1;
      const int b_rank = 1 - f_rank;

      // Forwards: the later-visit forward outranks the earlier one — it
      // is the op that unlocks the local backward chain — and a visit-k
      // forward reserves v-k cap slots so later visits stay admissible.
      for (int k = 0; k < v; ++k) {
        const int micro = st.f_next[static_cast<std::size_t>(k)];
        if (micro < n) {
          consider({OpKind::kForward, micro, 0, chunks[static_cast<std::size_t>(k)]},
                   static_cast<std::int64_t>(f_rank) * 1000 + (v - 1 - k), v - k);
        }
      }
      // Backwards are gated behind the warmup offset: the block
      // parameterization fixes the number of forwards a stage runs
      // before its first backward. The gate lifts once the stage's
      // forwards are exhausted; a gate the memory cap makes
      // unsatisfiable deadlocks, and the refiner discards the offsets.
      const bool warmup_met =
          st.forwards_done >= warmup_[static_cast<std::size_t>(stage)] || !f_left;
      if (warmup_met) {
        // All visits' backwards rank equally (dependencies and the
        // (ready, micro, chunk) tie-break order the legs naturally —
        // the zbv recipe's choice).
        for (int k = 0; k < v; ++k) {
          const int micro = st.b_next[static_cast<std::size_t>(k)];
          if (micro < n) {
            consider({OpKind::kBackward, micro, 0, chunks[static_cast<std::size_t>(k)]},
                     static_cast<std::int64_t>(b_rank) * 1000, 0);
          }
        }
      }
      const bool w_admissible =
          !st.pending_w.empty() &&
          (policy_.w_eager || forward_capped || (!f_left && !b_left));
      if (w_admissible) {
        consider(st.pending_w.front(), 2 * 1000, 0);
      }
      if (!found) {
        continue;
      }

      const OpId op = best.op;
      const double start = std::max(now, best.ready);
      const double end = start + Duration(op.kind);
      done_.emplace(op, end);
      composed.order[static_cast<std::size_t>(stage)].push_back(op);
      const auto visit_of = [&](int chunk) {
        return static_cast<std::size_t>(
            std::find(chunks.begin(), chunks.end(), chunk) - chunks.begin());
      };
      switch (op.kind) {
        case OpKind::kForward:
          ++st.retained;
          st.peak_retained = std::max(st.peak_retained, st.retained);
          ++st.f_next[visit_of(op.chunk)];
          ++st.forwards_done;
          st.prefer_backward = true;
          break;
        case OpKind::kBackward:
          if (st.first_backward_forwards < 0) {
            st.first_backward_forwards = st.forwards_done;
          }
          ++st.b_next[visit_of(op.chunk)];
          if (split) {
            st.pending_w.push_back({OpKind::kWeightGrad, op.micro, 0, op.chunk});
          } else {
            --st.retained;
          }
          st.prefer_backward = false;
          break;
        default:  // kWeightGrad
          --st.retained;
          st.pending_w.pop_front();
          break;
      }
      st.free_at = end;
      --remaining;
      scheduled_any = true;
      next_event = std::min(next_event, end);
    }

    if (scheduled_any) {
      continue;  // other stages may start at the same instant
    }
    MEPIPE_CHECK_LT(next_event, kInfinity)
        << "schedule composition deadlocked with " << remaining
        << " ops left; the warmup offsets are unsatisfiable under the activation budget";
    now = next_event;
  }

  composed.makespan = 0.0;
  composed.first_backward_forwards.resize(static_cast<std::size_t>(p), 0);
  composed.peak_retained = 0;
  for (int stage = 0; stage < p; ++stage) {
    const StageState& st = state_[static_cast<std::size_t>(stage)];
    composed.makespan = std::max(composed.makespan, st.free_at);
    composed.peak_retained = std::max(composed.peak_retained, st.peak_retained);
    composed.first_backward_forwards[static_cast<std::size_t>(stage)] =
        std::max(st.first_backward_forwards, 0);
  }
  return composed;
}

std::vector<int> ResolveCaps(const PipelineProblem& problem, const SynthOptions& options) {
  const int uncapped = problem.micros * problem.virtual_chunks;
  if (options.budget.empty()) {
    return std::vector<int>(static_cast<std::size_t>(problem.stages), uncapped);
  }
  MEPIPE_CHECK_EQ(static_cast<int>(options.budget.size()), problem.stages)
      << "synth budget must have one entry per stage";
  std::vector<int> caps = options.budget;
  for (int& cap : caps) {
    MEPIPE_CHECK_GE(cap, problem.virtual_chunks)
        << "a stage's budget cannot hold one micro-batch's chunk chain";
    cap = std::min(cap, uncapped);
  }
  return caps;
}

void ValidateOptions(const SynthOptions& options) {
  MEPIPE_CHECK_GT(options.f_time, 0.0);
  MEPIPE_CHECK_GT(options.b_time, 0.0);
  MEPIPE_CHECK_GT(options.w_time, 0.0);
  MEPIPE_CHECK_GE(options.transfer_time, 0.0);
  MEPIPE_CHECK_GE(options.offset_radius, 0);
  MEPIPE_CHECK_GE(options.max_leaves, 1);
}

}  // namespace

double SynthChunkChainLowerBound(const PipelineProblem& problem, const SynthOptions& options) {
  problem.Validate();
  ValidateOptions(options);
  const EarliestStarts es = ComputeEarliestStarts(problem, options);
  const double per_fb =
      options.f_time + options.b_time + (problem.split_backward ? options.w_time : 0.0);
  const double work =
      static_cast<double>(problem.micros) * problem.virtual_chunks * per_fb;
  // Critical path: one micro's full chunk chain, W tail included.
  double bound = es.backward.front() + options.b_time +
                 (problem.split_backward ? options.w_time : 0.0);
  // Ramp + serial work: a stage cannot start before the forward wave
  // first reaches it, and must execute all of its ops serially.
  for (const auto& chunks : LocalChunks(problem)) {
    bound = std::max(bound, es.forward[static_cast<std::size_t>(chunks.front())] + work);
  }
  return bound;
}

std::vector<int> SynthOneFOneBBudget(int stages, int micros) {
  std::vector<int> budget(static_cast<std::size_t>(stages));
  for (int i = 0; i < stages; ++i) {
    budget[static_cast<std::size_t>(i)] = std::max(1, std::min(micros, stages - i));
  }
  return budget;
}

std::vector<int> SynthZbvBudget(int stages, int micros) {
  return std::vector<int>(static_cast<std::size_t>(stages),
                          std::max(2, 2 * std::min(stages, micros)));
}

Schedule SynthesizeSchedule(const PipelineProblem& problem, const SynthOptions& options,
                            SynthReport* report) {
  problem.Validate();
  MEPIPE_CHECK_EQ(problem.slices, 1)
      << "the block family covers the (p, v, n) axes; slices are SVPP's dimension";
  ValidateOptions(options);
  const std::vector<int> caps = ResolveCaps(problem, options);
  const std::vector<std::vector<int>> local = LocalChunks(problem);
  const EarliestStarts es = ComputeEarliestStarts(problem, options);
  const double lower_bound = SynthChunkChainLowerBound(problem, options);

  const int p = problem.stages;
  const int total_forwards = problem.micros * problem.virtual_chunks;
  const double per_fb_tail =
      options.b_time + (problem.split_backward ? options.w_time : 0.0);

  SynthReport stats;
  stats.lower_bound = lower_bound;

  struct Incumbent {
    Composed composed;
    FillPolicy policy;
    bool valid = false;
  };
  Incumbent best;

  const auto try_compose = [&](const std::vector<int>& warmup, FillPolicy policy) {
    ++stats.leaves_evaluated;
    try {
      Composed composed = Composer(problem, options, local, caps, warmup, policy).Run();
      if (!best.valid || composed.makespan < best.composed.makespan - kEps ||
          (composed.makespan < best.composed.makespan + kEps &&
           composed.peak_retained < best.composed.peak_retained)) {
        best.composed = std::move(composed);
        best.policy = policy;
        best.valid = true;
      }
    } catch (const CheckError&) {
      // Unsatisfiable (warmup, cap) assignment — discard the leaf.
    }
  };

  // ---- seed incumbents: the greedy block compositions ----------------------
  // Emergent warmup (offset 0: dependencies and the cap shape the ramp)
  // and eager warmup (fill to the budget), under each fill policy. The
  // w axis only exists when the backward is split.
  std::vector<FillPolicy> policies;
  for (const bool alternate : {true, false}) {
    policies.push_back({alternate, true});
    if (problem.split_backward) {
      policies.push_back({alternate, false});
    }
  }
  const std::vector<int> emergent(static_cast<std::size_t>(p), 0);
  std::vector<int> eager = caps;
  for (int& w : eager) {
    w = std::min(w, total_forwards);
  }
  for (const FillPolicy& policy : policies) {
    try_compose(emergent, policy);
    try_compose(eager, policy);
  }
  MEPIPE_CHECK(best.valid) << "no seed composition is schedulable under the budget";

  // ---- branch-and-bound refinement over the warmup offsets -----------------
  // Branch each stage's offset within ±offset_radius of the incumbent's
  // realized warmup; prune with the admissible chunk-chain bound and the
  // activation cap (offsets beyond a stage's budget are never branched).
  if (options.offset_radius > 0 && best.composed.makespan > lower_bound + kEps) {
    const std::vector<int> base = best.composed.first_backward_forwards;
    std::vector<int> assigned(static_cast<std::size_t>(p), 0);
    // Lower bound of a node whose stages [0, depth) have fixed offsets:
    // stage i runs at least w_i forwards after the ramp reaches it before
    // its first backward (which also cannot precede the backward chain's
    // own earliest start), then still owes the rest of its work.
    const auto node_bound = [&](int depth) {
      double bound = lower_bound;
      for (int i = 0; i < depth; ++i) {
        const auto& chunks = local[static_cast<std::size_t>(i)];
        const double arrive = es.forward[static_cast<std::size_t>(chunks.front())];
        const double first_b =
            std::max(arrive + assigned[static_cast<std::size_t>(i)] * options.f_time,
                     es.backward[static_cast<std::size_t>(chunks.back())]);
        bound = std::max(
            bound, first_b +
                       (total_forwards - assigned[static_cast<std::size_t>(i)]) *
                           options.f_time +
                       static_cast<double>(total_forwards) * per_fb_tail);
      }
      return bound;
    };
    const auto descend = [&](auto&& self, int depth) -> void {
      if (stats.leaves_evaluated >= options.max_leaves ||
          best.composed.makespan <= lower_bound + kEps) {
        return;
      }
      if (depth == p) {
        if (assigned != base) {
          try_compose(assigned, best.policy);
        }
        return;
      }
      // Nearest offsets first, so the incumbent's neighborhood is
      // explored before the fringe.
      for (int delta = 0; delta <= options.offset_radius; ++delta) {
        for (const int sign : {1, -1}) {
          if (delta == 0 && sign < 0) {
            continue;
          }
          const int offset = base[static_cast<std::size_t>(depth)] + sign * delta;
          if (offset < 0 || offset > total_forwards) {
            continue;
          }
          if (offset > caps[static_cast<std::size_t>(depth)]) {
            ++stats.subtrees_pruned;  // activation-cap pruning
            continue;
          }
          assigned[static_cast<std::size_t>(depth)] = offset;
          if (node_bound(depth + 1) >= best.composed.makespan - kEps) {
            ++stats.subtrees_pruned;
            continue;
          }
          self(self, depth + 1);
        }
      }
    };
    descend(descend, 0);
  }

  Schedule schedule;
  schedule.problem = problem;
  schedule.method =
      options.method_name.empty()
          ? StrFormat("Synth(v=%d,cap=%d..%d)", problem.virtual_chunks,
                      *std::min_element(caps.begin(), caps.end()),
                      *std::max_element(caps.begin(), caps.end()))
          : options.method_name;
  schedule.stage_ops = std::move(best.composed.order);
  schedule.deferred_wgrad = false;  // W is part of the synthesized block
  ValidateSchedule(schedule);
  InvariantOptions invariants;
  invariants.costs.f_time = options.f_time;
  invariants.costs.b_time = options.b_time;
  invariants.costs.w_time = options.w_time;
  invariants.costs.transfer_time = options.transfer_time;
  invariants.retained_cap = caps;
  ValidateScheduleInvariants(schedule, invariants);

  stats.makespan = best.composed.makespan;
  stats.reached_lower_bound = stats.makespan <= lower_bound + kEps;
  stats.warmup = best.composed.first_backward_forwards;
  stats.peak_retained = best.composed.peak_retained;
  if (report != nullptr) {
    *report = stats;
  }
  return schedule;
}

}  // namespace mepipe::sched
