// Reusable schedule-invariant validator and the tabular schedule
// abstraction it checks over.
//
// A hand-built schedule is only as trustworthy as its checker, so every
// schedule test suite funnels through this harness instead of ad-hoc
// partial dependency checks. Following the tabular-schedule idea
// (Barley et al., arXiv:2605.24006), a Schedule's per-stage program
// orders are first flattened into a declarative (op, stage, start, end)
// table under abstract costs — list semantics: each stage runs its ops
// in order the instant dependencies allow — and the invariants are then
// stated as predicates over that table:
//
//   multiset        every stage lists exactly its owned ops, once
//   executable      the joint program order admits a complete execution
//                   (dependency completeness and acyclicity)
//   w-after-b       a static weight gradient runs after its backward,
//                   per (micro, slice, chunk)
//   slice-kv        causal slice order: F(m,t,g) after F(m,t-1,g) and
//                   B(m,t,g) after B(m,t+1,g) on the same stage
//   chunk-chain     cross-chunk dependencies are respected in table
//                   time, including the inter-stage transfer delay
//   activation-cap  the running count of retained forwards (released by
//                   W when W is static, by B otherwise) never exceeds
//                   the per-stage cap — the accounting core/memory_model
//                   prices in bytes, checked here in forward units
//   one-op-per-stream
//                   a stage's compute stream never runs two ops at the
//                   same instant (table spans do not overlap)
//
// CheckScheduleInvariants collects every violation; the Validate
// wrapper throws CheckError on the first. ValidateSchedule
// (sched/schedule.h) remains the cheap structural subset generators
// call on every construction.
#ifndef MEPIPE_SCHED_VALIDATE_H_
#define MEPIPE_SCHED_VALIDATE_H_

#include <string>
#include <vector>

#include "sched/schedule.h"

namespace mepipe::sched {

// Abstract durations used to build the table. Transfers delay
// cross-stage dependencies only.
struct TableCosts {
  double f_time = 1.0;
  double b_time = 1.0;
  double w_time = 1.0;
  double transfer_time = 0.0;
};

struct TableRow {
  int stage = 0;
  OpId op;
  double start = 0.0;
  double end = 0.0;
};

// The flattened (op, stage, time) table, rows grouped by stage in
// program order. Requires a schedule that already passes the structural
// ValidateSchedule; throws CheckError otherwise.
struct ScheduleTable {
  std::vector<TableRow> rows;
  double makespan = 0.0;
};

ScheduleTable BuildScheduleTable(const Schedule& schedule, const TableCosts& costs = {});

struct InvariantOptions {
  TableCosts costs;
  // Per-stage cap on retained forwards for the activation-accounting
  // invariant; empty skips the check. (Callers derive the cap from
  // core/memory_model's byte budget divided by the per-forward unit, or
  // from the construction's documented bound.)
  std::vector<int> retained_cap;
};

struct Violation {
  std::string invariant;  // e.g. "w-after-b", "activation-cap"
  std::string detail;
};

struct InvariantReport {
  std::vector<Violation> violations;
  bool ok() const { return violations.empty(); }
  // Human-readable one-per-line summary ("<invariant>: <detail>").
  std::string Summary() const;
};

// Runs every invariant, collecting violations instead of throwing.
InvariantReport CheckScheduleInvariants(const Schedule& schedule,
                                        const InvariantOptions& options = {});

// Throws CheckError with the full summary when any invariant fails.
void ValidateScheduleInvariants(const Schedule& schedule, const InvariantOptions& options = {});

}  // namespace mepipe::sched

#endif  // MEPIPE_SCHED_VALIDATE_H_
