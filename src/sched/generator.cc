#include "sched/generator.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "sched/dependency.h"

namespace mepipe::sched {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

struct GeneratorState {
  const PipelineProblem& problem;
  const GeneratorOptions& options;

  // Incremental readiness over three dense kind-planes (F, B, W — the
  // only kinds generation schedules). `unmet` counts unscheduled
  // dependencies; `ready` accumulates max(dep end + transfer) as deps
  // finish and is final once unmet reaches zero. This replaces a
  // per-round dependency walk over every pending op — same values, same
  // selection, just computed once per edge.
  std::vector<int> unmet;
  std::vector<double> ready;
  // Position of each op in its stage's StageOps order. Ties in Priority
  // (possible between B and an immediate W) fall back to this, which is
  // exactly the order the former full pending scan visited them in.
  std::vector<int> pos;
  std::vector<double> stage_free;
  std::vector<int> inflight;          // retained forwards per stage
  // Ops whose dependencies have all been scheduled, per owning stage —
  // the only ops the selection scan needs to look at. Unordered (the
  // (Priority, pos) key makes selection order-free); swap-removed when
  // scheduled.
  std::vector<std::vector<OpId>> unlocked;
  std::vector<std::size_t> stage_left;     // unscheduled ops per stage
  std::vector<std::vector<OpId>> order;    // output program order
  // Forwards already scheduled per (stage, micro) — drives the
  // reservation-based admission that keeps capped generation
  // deadlock-free (see AdmitForward).
  std::vector<std::vector<int>> fwd_scheduled;

  explicit GeneratorState(const PipelineProblem& p, const GeneratorOptions& o)
      : problem(p),
        options(o),
        unmet(3 * static_cast<std::size_t>(p.micros) * static_cast<std::size_t>(p.slices) *
                  static_cast<std::size_t>(p.num_chunks()),
              0),
        ready(unmet.size(), 0.0),
        pos(unmet.size(), 0),
        stage_free(static_cast<std::size_t>(p.stages), 0.0),
        inflight(static_cast<std::size_t>(p.stages), 0),
        unlocked(static_cast<std::size_t>(p.stages)),
        stage_left(static_cast<std::size_t>(p.stages), 0),
        order(static_cast<std::size_t>(p.stages)),
        fwd_scheduled(static_cast<std::size_t>(p.stages),
                      std::vector<int>(static_cast<std::size_t>(p.micros), 0)),
        last_kind(static_cast<std::size_t>(p.stages), OpKind::kForward) {}

  // Admission control for forwards under the memory cap. Admitting any
  // ready forward greedily can deadlock for v > 1: early chunks of new
  // micro-batches fill the cap, starving the oldest micro's later-chunk
  // forwards, whose backward chain is the only thing that frees memory.
  // Rule: always leave enough headroom for the oldest forward-incomplete
  // micro-batch on this stage to finish its remaining v·s forwards.
  bool AdmitForward(int stage, const OpId& op, int cap) const {
    const int in_flight = inflight[static_cast<std::size_t>(stage)];
    if (in_flight >= cap) {
      return false;
    }
    const int per_micro = problem.virtual_chunks * problem.slices;
    const auto& scheduled = fwd_scheduled[static_cast<std::size_t>(stage)];
    int oldest = -1;
    for (int m = 0; m < problem.micros; ++m) {
      if (scheduled[static_cast<std::size_t>(m)] < per_micro) {
        oldest = m;
        break;
      }
    }
    if (oldest < 0 || op.micro <= oldest) {
      return true;  // the oldest micro itself is never starved
    }
    const int remaining = per_micro - scheduled[static_cast<std::size_t>(oldest)];
    return in_flight + 1 + remaining <= cap;
  }

  int cap(int stage) const {
    if (options.inflight_cap.empty()) {
      return 0;  // uncapped
    }
    return options.inflight_cap[static_cast<std::size_t>(stage)];
  }

  double duration(int stage, const OpId& op) const {
    double base = 1.0;
    switch (op.kind) {
      case OpKind::kForward:
        base = options.f_time;
        break;
      case OpKind::kBackward:
        base = options.b_time;
        break;
      case OpKind::kWeightGrad:
      case OpKind::kWeightGradGemm:
      case OpKind::kDpSync:  // comm op; never generated into program orders
        base = options.w_time;
        break;
    }
    if (!options.stage_time_scale.empty()) {
      base *= options.stage_time_scale[static_cast<std::size_t>(stage)];
    }
    return base;
  }

  std::size_t OpIndex(const OpId& op) const {
    const std::size_t kind = op.kind == OpKind::kForward    ? 0
                             : op.kind == OpKind::kBackward ? 1
                                                            : 2;
    return ((kind * static_cast<std::size_t>(problem.micros) +
             static_cast<std::size_t>(op.micro)) *
                static_cast<std::size_t>(problem.slices) +
            static_cast<std::size_t>(op.slice)) *
               static_cast<std::size_t>(problem.num_chunks()) +
           static_cast<std::size_t>(op.chunk);
  }

  // Register a to-be-scheduled op: its stage-order position (the former
  // scan order, used as the tie-break) and its dependency count (deps
  // are always F/B ops, which generation always schedules). Dep-free ops
  // start unlocked.
  void Seed(int stage, const OpId& op, int position) {
    const std::size_t idx = OpIndex(op);
    pos[idx] = position;
    int count = 0;
    ForEachDependency(problem, op, [&](const Dep&) { ++count; });
    unmet[idx] = count;
    if (count == 0) {
      unlocked[static_cast<std::size_t>(stage)].push_back(op);
    }
    ++stage_left[static_cast<std::size_t>(stage)];
  }

  // `op` finished at `end`: feed its completion into every dependent op
  // generation will schedule. Exact inverse of ForEachDependency,
  // restricted to the generated kinds (no Wg split, no DpSync buckets;
  // W only when emitted statically).
  void MarkDone(const OpId& op, double end, bool emit_w_static) {
    const auto feed = [&](OpKind kind, int micro, int slice, int chunk, bool cross) {
      const OpId child{kind, micro, slice, chunk};
      const std::size_t idx = OpIndex(child);
      ready[idx] = std::max(ready[idx], end + (cross ? options.transfer_time : 0.0));
      if (--unmet[idx] == 0) {
        unlocked[static_cast<std::size_t>(problem.stage_of_chunk(chunk))].push_back(child);
      }
    };
    const int last_chunk = problem.num_chunks() - 1;
    const int stage = problem.stage_of_chunk(op.chunk);
    switch (op.kind) {
      case OpKind::kForward:
        if (op.chunk < last_chunk) {
          const bool cross = problem.stage_of_chunk(op.chunk + 1) != stage;
          feed(OpKind::kForward, op.micro, op.slice, op.chunk + 1, cross);
        } else {
          feed(OpKind::kBackward, op.micro, op.slice, last_chunk, false);
        }
        if (op.slice + 1 < problem.slices) {
          feed(OpKind::kForward, op.micro, op.slice + 1, op.chunk, false);
        }
        break;
      case OpKind::kBackward:
        if (op.chunk > 0) {
          const bool cross = problem.stage_of_chunk(op.chunk - 1) != stage;
          feed(OpKind::kBackward, op.micro, op.slice, op.chunk - 1, cross);
        }
        if (op.slice > 0) {
          feed(OpKind::kBackward, op.micro, op.slice - 1, op.chunk, false);
        }
        if (emit_w_static) {
          feed(OpKind::kWeightGrad, op.micro, op.slice, op.chunk, false);
        }
        break;
      case OpKind::kWeightGrad:
      case OpKind::kWeightGradGemm:
      case OpKind::kDpSync:
        break;  // nothing generation schedules depends on these
    }
  }

  // Last compute kind scheduled per stage; drives 1F1B-style alternation.
  std::vector<OpKind> last_kind;

  // Rank used to break ties among ops ready at the same instant. Lower is
  // better. In backward-first (1F1B/SVPP) mode the steady state must
  // *alternate* F and B: always draining ready backwards back-to-back
  // starves downstream stages of forwards and reopens bubbles, so when
  // both kinds are ready we prefer the opposite of what just ran.
  // GPipe mode simply prefers F.
  std::int64_t Priority(int stage, const OpId& op) const {
    const bool prefer_backward =
        options.backward_first &&
        last_kind[static_cast<std::size_t>(stage)] != OpKind::kBackward;
    std::int64_t kind_rank = 0;
    switch (op.kind) {
      case OpKind::kBackward:
        kind_rank = prefer_backward ? 0 : 1;
        break;
      case OpKind::kForward:
        kind_rank = prefer_backward ? 1 : 0;
        break;
      case OpKind::kWeightGrad:
      case OpKind::kWeightGradGemm:
      case OpKind::kDpSync:  // comm op; never generated into program orders
        kind_rank = (options.wgrad == WgradPolicy::kImmediate) ? 0 : 2;
        break;
    }
    // Within a kind: earlier micro first; forwards walk chunks upward and
    // slices within a chunk; backwards walk chunks downward and slices
    // downward (the dependency direction).
    const bool backwardish = op.kind != OpKind::kForward;
    if (backwardish && options.child_count_backward_priority &&
        op.kind == OpKind::kBackward) {
      // More children ⇒ smaller rank ⇒ scheduled first (§4.3).
      const std::int64_t children =
          static_cast<std::int64_t>(op.slice + 1) * (op.chunk + 1) - 1;
      const std::int64_t max_children =
          static_cast<std::int64_t>(problem.slices) * problem.num_chunks();
      return ((kind_rank * 4096 + op.micro) * 4096 * 4096) + (max_children - children);
    }
    const std::int64_t chunk_rank = backwardish ? (problem.num_chunks() - 1 - op.chunk) : op.chunk;
    const std::int64_t slice_rank = backwardish ? (problem.slices - 1 - op.slice) : op.slice;
    return ((kind_rank * 4096 + op.micro) * 4096 + chunk_rank) * 4096 + slice_rank;
  }
};

}  // namespace

const char* GeneratorIssueCodeName(GeneratorIssue::Code code) {
  switch (code) {
    case GeneratorIssue::Code::kInflightCapArity:
      return "inflight-cap-arity";
    case GeneratorIssue::Code::kStageTimeScaleArity:
      return "stage-time-scale-arity";
    case GeneratorIssue::Code::kNonPositiveTimeScale:
      return "non-positive-time-scale";
    case GeneratorIssue::Code::kNegativeInflightCap:
      return "negative-inflight-cap";
    case GeneratorIssue::Code::kNonPositiveDuration:
      return "non-positive-duration";
    case GeneratorIssue::Code::kNegativeTransfer:
      return "negative-transfer";
  }
  return "?";
}

std::vector<GeneratorIssue> GeneratorOptions::Validate(int stages) const {
  std::vector<GeneratorIssue> issues;
  const auto add = [&](GeneratorIssue::Code code, int stage, std::string message) {
    issues.push_back({code, stage, std::move(message)});
  };
  if (!inflight_cap.empty() && static_cast<int>(inflight_cap.size()) != stages) {
    add(GeneratorIssue::Code::kInflightCapArity, -1,
        "inflight_cap has " + std::to_string(inflight_cap.size()) + " entries for " +
            std::to_string(stages) + " stages");
  } else {
    for (std::size_t i = 0; i < inflight_cap.size(); ++i) {
      if (inflight_cap[i] < 0) {
        add(GeneratorIssue::Code::kNegativeInflightCap, static_cast<int>(i),
            "inflight_cap[" + std::to_string(i) + "] = " + std::to_string(inflight_cap[i]));
      }
    }
  }
  if (!stage_time_scale.empty() && static_cast<int>(stage_time_scale.size()) != stages) {
    add(GeneratorIssue::Code::kStageTimeScaleArity, -1,
        "stage_time_scale has " + std::to_string(stage_time_scale.size()) + " entries for " +
            std::to_string(stages) + " stages");
  } else {
    for (std::size_t i = 0; i < stage_time_scale.size(); ++i) {
      if (!(stage_time_scale[i] > 0.0)) {  // also catches NaN
        add(GeneratorIssue::Code::kNonPositiveTimeScale, static_cast<int>(i),
            "stage_time_scale[" + std::to_string(i) + "] = " +
                std::to_string(stage_time_scale[i]));
      }
    }
  }
  if (!(f_time > 0.0)) {
    add(GeneratorIssue::Code::kNonPositiveDuration, -1,
        "f_time = " + std::to_string(f_time));
  }
  if (!(b_time > 0.0)) {
    add(GeneratorIssue::Code::kNonPositiveDuration, -1,
        "b_time = " + std::to_string(b_time));
  }
  if (!(w_time > 0.0)) {
    add(GeneratorIssue::Code::kNonPositiveDuration, -1,
        "w_time = " + std::to_string(w_time));
  }
  if (transfer_time < 0.0) {
    add(GeneratorIssue::Code::kNegativeTransfer, -1,
        "transfer_time = " + std::to_string(transfer_time));
  }
  return issues;
}

std::vector<int> CapSchedule(int stages, int f, int min_cap) {
  MEPIPE_CHECK_GE(f, min_cap) << "cap f below the schedulability floor v*s";
  std::vector<int> caps(static_cast<std::size_t>(stages));
  for (int i = 0; i < stages; ++i) {
    caps[static_cast<std::size_t>(i)] = std::max(min_cap, f - i);
  }
  return caps;
}

Schedule GenerateCapped(const PipelineProblem& problem, const GeneratorOptions& options,
                        std::string method_name) {
  problem.Validate();
  if (const std::vector<GeneratorIssue> issues = options.Validate(problem.stages);
      !issues.empty()) {
    std::string summary;
    for (const GeneratorIssue& issue : issues) {
      summary += std::string(summary.empty() ? "" : "; ") +
                 GeneratorIssueCodeName(issue.code) + ": " + issue.message;
    }
    MEPIPE_CHECK(false) << "malformed GeneratorOptions for method " << method_name << ": "
                        << summary;
  }

  GeneratorState state(problem, options);
  const bool emit_w_static =
      problem.split_backward && options.wgrad != WgradPolicy::kDeferred;
  std::size_t remaining = 0;
  for (int stage = 0; stage < problem.stages; ++stage) {
    int position = 0;
    for (const OpId& op : StageOps(problem, stage)) {
      if (op.kind == OpKind::kWeightGrad && !emit_w_static) {
        continue;  // deferred to the execution engine
      }
      state.Seed(stage, op, position++);
      ++remaining;
    }
  }

  double now = 0.0;
  while (remaining > 0) {
    bool scheduled_any = false;
    double next_event = kInfinity;

    for (int stage = 0; stage < problem.stages; ++stage) {
      auto& unlocked = state.unlocked[static_cast<std::size_t>(stage)];
      const double free_at = state.stage_free[static_cast<std::size_t>(stage)];
      if (state.stage_left[static_cast<std::size_t>(stage)] == 0) {
        continue;
      }
      if (free_at > now) {
        next_event = std::min(next_event, free_at);
        continue;
      }
      // Gather candidates ready at `now` (or within the lookahead window).
      const double lookahead =
          options.lookahead >= 0 ? options.lookahead : 2.0 * options.transfer_time;
      const OpId* best = nullptr;
      std::size_t best_slot = 0;
      std::int64_t best_priority = 0;
      int best_pos = 0;
      double best_ready = 0.0;
      const int cap = state.cap(stage);
      for (std::size_t slot = 0; slot < unlocked.size(); ++slot) {
        const OpId& op = unlocked[slot];
        const std::size_t idx = state.OpIndex(op);
        const double ready = state.ready[idx];
        if (ready > now + lookahead) {
          next_event = std::min(next_event, ready);
          continue;
        }
        if (op.kind == OpKind::kForward && cap > 0 && !state.AdmitForward(stage, op, cap)) {
          continue;  // memory cap / reservation: hold this forward back
        }
        const std::int64_t priority = state.Priority(stage, op);
        const int position = state.pos[idx];
        if (best == nullptr || priority < best_priority ||
            (priority == best_priority && position < best_pos)) {
          best = &op;
          best_slot = slot;
          best_priority = priority;
          best_pos = position;
          best_ready = ready;
        }
      }
      if (best == nullptr) {
        continue;
      }
      const OpId op = *best;
      const double start = std::max(now, best_ready);
      const double end = start + state.duration(stage, op);
      state.MarkDone(op, end, emit_w_static);
      state.order[static_cast<std::size_t>(stage)].push_back(op);
      if (op.kind == OpKind::kForward) {
        ++state.inflight[static_cast<std::size_t>(stage)];
        ++state.fwd_scheduled[static_cast<std::size_t>(stage)]
                             [static_cast<std::size_t>(op.micro)];
      } else if (op.kind == OpKind::kBackward) {
        --state.inflight[static_cast<std::size_t>(stage)];
      }
      if (op.kind == OpKind::kForward || op.kind == OpKind::kBackward) {
        state.last_kind[static_cast<std::size_t>(stage)] = op.kind;
      }
      state.stage_free[static_cast<std::size_t>(stage)] = end;
      unlocked[best_slot] = unlocked.back();
      unlocked.pop_back();
      --state.stage_left[static_cast<std::size_t>(stage)];
      --remaining;
      scheduled_any = true;
      next_event = std::min(next_event, end);
    }

    if (scheduled_any) {
      continue;  // other stages may start at the same instant
    }
    MEPIPE_CHECK_LT(next_event, kInfinity)
        << "generator deadlocked with " << remaining << " ops left (method " << method_name
        << "); the in-flight cap is likely below the v*s floor";
    now = next_event;
  }

  Schedule schedule;
  schedule.problem = problem;
  schedule.method = std::move(method_name);
  schedule.stage_ops = std::move(state.order);
  schedule.deferred_wgrad = problem.split_backward && options.wgrad == WgradPolicy::kDeferred;
  ValidateSchedule(schedule);
  return schedule;
}

}  // namespace mepipe::sched
