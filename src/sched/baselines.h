// Canonical constructions of the baseline pipeline schedules the paper
// compares against (§2.1, §7.1):
//   GPipe      — all forwards then all backwards (micro-batch granularity)
//   1F1B       — DAPPLE/PipeDream-flush one-forward-one-backward
//   VPP        — Megatron-LM interleaved virtual pipeline (v chunks/stage)
//   TeraPipe   — sequence pipeline (slices), GPipe-like ordering
//   ZB-1P      — zero-bubble extension of 1F1B (split B/W, deferred W)
//   ZBV        — zero-bubble V-shape (v=2 zig-zag chunk placement)
// Each returns a validated static Schedule.
#ifndef MEPIPE_SCHED_BASELINES_H_
#define MEPIPE_SCHED_BASELINES_H_

#include "sched/schedule.h"

namespace mepipe::sched {

Schedule GPipeSchedule(int stages, int micros);

Schedule OneFOneBSchedule(int stages, int micros);

// Megatron-LM interleaved schedule. Requires micros % stages == 0 (the
// framework's own constraint) and virtual_chunks >= 2.
Schedule VppSchedule(int stages, int virtual_chunks, int micros);

// TeraPipe sequence pipeline: GPipe ordering at slice granularity.
Schedule TeraPipeSchedule(int stages, int slices, int micros);

// Zero-bubble ZB-1P: 1F1B shape with split backward; weight gradients are
// deferred and filled into bubbles by the execution engine.
Schedule Zb1pSchedule(int stages, int micros);

// Zero-bubble ZBV: the original handcrafted v=2 V-shape construction
// with split backward (sched/zbv.h) — F/B/W statically interleaved per
// the ZB-V recipe, 1F1B-parity activation memory.
Schedule ZbvSchedule(int stages, int micros);

// The former capped-list-scheduler approximation of ZBV (V-shape chunk
// placement, deferred W, 1F1B-family caps). Retained as a baseline for
// the differential tests; its bubble ratio is pessimistic relative to
// the handcrafted construction.
Schedule ZbvCappedSchedule(int stages, int micros);

// Hanayo wave-like schedule: two model chunks per stage in a V
// (wave) placement without weight replication, fused backward. A
// shape-approximation via the capped generator; its Table 3 profile
// (VPP-class bubble, DAPPLE-class memory) is what the analysis uses.
Schedule HanayoSchedule(int stages, int micros);

}  // namespace mepipe::sched

#endif  // MEPIPE_SCHED_BASELINES_H_
