#include "sched/dependency.h"

#include "common/check.h"

namespace mepipe::sched {

std::vector<Dep> DependenciesOf(const PipelineProblem& problem, const OpId& op) {
  std::vector<Dep> deps;
  ForEachDependency(problem, op, [&deps](const Dep& dep) { deps.push_back(dep); });
  return deps;
}

std::vector<OpId> StageOps(const PipelineProblem& problem, int stage, int job) {
  MEPIPE_CHECK_GE(stage, 0);
  MEPIPE_CHECK_LT(stage, problem.stages);
  std::vector<OpId> ops;
  for (int chunk = 0; chunk < problem.num_chunks(); ++chunk) {
    if (problem.stage_of_chunk(chunk) != stage) {
      continue;
    }
    for (int micro = 0; micro < problem.micros; ++micro) {
      for (int slice = 0; slice < problem.slices; ++slice) {
        ops.push_back({OpKind::kForward, micro, slice, chunk, -1, job});
        ops.push_back({OpKind::kBackward, micro, slice, chunk, -1, job});
        if (problem.split_backward) {
          ops.push_back({OpKind::kWeightGrad, micro, slice, chunk, -1, job});
        }
      }
    }
  }
  return ops;
}

std::vector<OpId> AllOps(const PipelineProblem& problem) {
  std::vector<OpId> ops;
  for (int stage = 0; stage < problem.stages; ++stage) {
    auto stage_ops = StageOps(problem, stage);
    ops.insert(ops.end(), stage_ops.begin(), stage_ops.end());
  }
  return ops;
}

OpId DpSyncOp(int chunk, int job) { return {OpKind::kDpSync, 0, 0, chunk, -1, job}; }

std::vector<OpId> DpSyncOps(const PipelineProblem& problem, int stage, int job) {
  MEPIPE_CHECK_GE(stage, 0);
  MEPIPE_CHECK_LT(stage, problem.stages);
  std::vector<OpId> buckets;
  for (int chunk = 0; chunk < problem.num_chunks(); ++chunk) {
    if (problem.stage_of_chunk(chunk) == stage) {
      buckets.push_back(DpSyncOp(chunk, job));
    }
  }
  return buckets;
}

}  // namespace mepipe::sched
