#include "sched/dependency.h"

#include "common/check.h"

namespace mepipe::sched {

std::vector<Dep> DependenciesOf(const PipelineProblem& problem, const OpId& op) {
  const int last_chunk = problem.num_chunks() - 1;
  const int stage = problem.stage_of_chunk(op.chunk);
  std::vector<Dep> deps;
  switch (op.kind) {
    case OpKind::kForward: {
      if (op.chunk > 0) {
        const bool cross = problem.stage_of_chunk(op.chunk - 1) != stage;
        deps.push_back({{OpKind::kForward, op.micro, op.slice, op.chunk - 1}, cross});
      }
      if (op.slice > 0) {
        deps.push_back({{OpKind::kForward, op.micro, op.slice - 1, op.chunk}, false});
      }
      break;
    }
    case OpKind::kBackward: {
      if (op.chunk < last_chunk) {
        const bool cross = problem.stage_of_chunk(op.chunk + 1) != stage;
        deps.push_back({{OpKind::kBackward, op.micro, op.slice, op.chunk + 1}, cross});
      } else {
        deps.push_back({{OpKind::kForward, op.micro, op.slice, last_chunk}, false});
      }
      if (op.slice + 1 < problem.slices) {
        deps.push_back({{OpKind::kBackward, op.micro, op.slice + 1, op.chunk}, false});
      }
      break;
    }
    case OpKind::kWeightGrad:
    case OpKind::kWeightGradGemm: {
      deps.push_back({{OpKind::kBackward, op.micro, op.slice, op.chunk}, false});
      break;
    }
    case OpKind::kDpSync: {
      // The bucket is ready once the last gradient op of its chunk has
      // run: every W when the schedule splits B/W, every B otherwise.
      const OpKind producer = problem.split_backward ? OpKind::kWeightGrad : OpKind::kBackward;
      for (int micro = 0; micro < problem.micros; ++micro) {
        for (int slice = 0; slice < problem.slices; ++slice) {
          deps.push_back({{producer, micro, slice, op.chunk}, false});
        }
      }
      break;
    }
  }
  return deps;
}

std::vector<OpId> StageOps(const PipelineProblem& problem, int stage) {
  MEPIPE_CHECK_GE(stage, 0);
  MEPIPE_CHECK_LT(stage, problem.stages);
  std::vector<OpId> ops;
  for (int chunk = 0; chunk < problem.num_chunks(); ++chunk) {
    if (problem.stage_of_chunk(chunk) != stage) {
      continue;
    }
    for (int micro = 0; micro < problem.micros; ++micro) {
      for (int slice = 0; slice < problem.slices; ++slice) {
        ops.push_back({OpKind::kForward, micro, slice, chunk});
        ops.push_back({OpKind::kBackward, micro, slice, chunk});
        if (problem.split_backward) {
          ops.push_back({OpKind::kWeightGrad, micro, slice, chunk});
        }
      }
    }
  }
  return ops;
}

std::vector<OpId> AllOps(const PipelineProblem& problem) {
  std::vector<OpId> ops;
  for (int stage = 0; stage < problem.stages; ++stage) {
    auto stage_ops = StageOps(problem, stage);
    ops.insert(ops.end(), stage_ops.begin(), stage_ops.end());
  }
  return ops;
}

OpId DpSyncOp(int chunk) { return {OpKind::kDpSync, 0, 0, chunk}; }

std::vector<OpId> DpSyncOps(const PipelineProblem& problem, int stage) {
  MEPIPE_CHECK_GE(stage, 0);
  MEPIPE_CHECK_LT(stage, problem.stages);
  std::vector<OpId> buckets;
  for (int chunk = 0; chunk < problem.num_chunks(); ++chunk) {
    if (problem.stage_of_chunk(chunk) == stage) {
      buckets.push_back(DpSyncOp(chunk));
    }
  }
  return buckets;
}

}  // namespace mepipe::sched
