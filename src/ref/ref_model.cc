#include "ref/ref_model.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace mepipe::ref {

using tensor::Tensor;

namespace {

// Copies head `hd`'s columns [hd·d, (hd+1)·d) out of x[t, h].
Tensor HeadCols(const Tensor& x, std::int64_t hd, std::int64_t d) {
  const std::int64_t t = x.dim(0);
  Tensor out({t, d});
  for (std::int64_t i = 0; i < t; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      out.at(i, j) = x.at(i, hd * d + j);
    }
  }
  return out;
}

void AddHeadCols(Tensor& x, const Tensor& part, std::int64_t hd, std::int64_t d) {
  const std::int64_t t = part.dim(0);
  for (std::int64_t i = 0; i < t; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      x.at(i, hd * d + j) += part.at(i, j);
    }
  }
}

// Forward state retained by one (layer, slice) for its backward pass —
// the "activations" whose footprint the scheduling work economizes.
struct LayerSliceState {
  Tensor x_in;                  // [t,h] layer input
  Tensor normed_attn;           // [t,h]
  Tensor inv_rms_attn;          // [t]
  Tensor q, k, v;               // [t,h]
  std::vector<Tensor> probs;    // per head: [t, ctx_end]
  Tensor ctx;                   // [t,h] attention mix (input of wo)
  Tensor resid;                 // [t,h] x_in + attn_out
  Tensor normed_mlp;            // [t,h]
  Tensor inv_rms_mlp;           // [t]
  Tensor gate, up, act;         // [t,f]
};

struct SliceState {
  std::vector<LayerSliceState> layers;
  Tensor final_in;       // [t,h] input of the final norm
  Tensor inv_rms_final;  // [t]
  Tensor normed_final;   // [t,h]
  Tensor dlogits;        // [t,V] from the loss
};

// A deferred weight-gradient GEMM: *target += inᵀ · dout (§5).
struct WGradTask {
  Tensor in;
  Tensor dout;
  Tensor* target;
};

class WGradSink {
 public:
  explicit WGradSink(bool deferred) : deferred_(deferred) {}

  void Emit(const Tensor& in, const Tensor& dout, Tensor* target) {
    if (deferred_) {
      tasks_.push_back({in, dout, target});
    } else {
      target->Add(MatMulTa(in, dout));
    }
  }

  // Runs every deferred GEMM (the W phase).
  void Drain() {
    for (const WGradTask& task : tasks_) {
      task.target->Add(MatMulTa(task.in, task.dout));
    }
    tasks_.clear();
  }

 private:
  bool deferred_;
  std::vector<WGradTask> tasks_;
};

}  // namespace

Weights Weights::Random(const RefConfig& config, std::uint32_t seed) {
  std::mt19937 rng(seed);
  const float scale = 0.08f;
  Weights w;
  w.embedding = Tensor::Randn({config.vocab, config.hidden}, rng, scale);
  w.final_norm = Tensor({config.hidden});
  w.final_norm.Fill(1.0f);
  w.head = Tensor::Randn({config.hidden, config.vocab}, rng, scale);
  for (std::int64_t l = 0; l < config.layers; ++l) {
    LayerWeights layer;
    layer.wq = Tensor::Randn({config.hidden, config.hidden}, rng, scale);
    layer.wk = Tensor::Randn({config.hidden, config.hidden}, rng, scale);
    layer.wv = Tensor::Randn({config.hidden, config.hidden}, rng, scale);
    layer.wo = Tensor::Randn({config.hidden, config.hidden}, rng, scale);
    layer.wgate = Tensor::Randn({config.hidden, config.ffn}, rng, scale);
    layer.wup = Tensor::Randn({config.hidden, config.ffn}, rng, scale);
    layer.wdown = Tensor::Randn({config.ffn, config.hidden}, rng, scale);
    layer.norm_attn = Tensor({config.hidden});
    layer.norm_attn.Fill(1.0f);
    layer.norm_mlp = Tensor({config.hidden});
    layer.norm_mlp.Fill(1.0f);
    w.layers.push_back(std::move(layer));
  }
  return w;
}

Weights Weights::ZerosLike(const RefConfig& config) {
  Weights w;
  w.embedding = Tensor::Zeros({config.vocab, config.hidden});
  w.final_norm = Tensor::Zeros({config.hidden});
  w.head = Tensor::Zeros({config.hidden, config.vocab});
  for (std::int64_t l = 0; l < config.layers; ++l) {
    LayerWeights layer;
    layer.wq = Tensor::Zeros({config.hidden, config.hidden});
    layer.wk = Tensor::Zeros({config.hidden, config.hidden});
    layer.wv = Tensor::Zeros({config.hidden, config.hidden});
    layer.wo = Tensor::Zeros({config.hidden, config.hidden});
    layer.wgate = Tensor::Zeros({config.hidden, config.ffn});
    layer.wup = Tensor::Zeros({config.hidden, config.ffn});
    layer.wdown = Tensor::Zeros({config.ffn, config.hidden});
    layer.norm_attn = Tensor::Zeros({config.hidden});
    layer.norm_mlp = Tensor::Zeros({config.hidden});
    w.layers.push_back(std::move(layer));
  }
  return w;
}

float Weights::MaxAbsDiff(const Weights& a, const Weights& b) {
  float m = Tensor::MaxAbsDiff(a.embedding, b.embedding);
  m = std::max(m, Tensor::MaxAbsDiff(a.final_norm, b.final_norm));
  m = std::max(m, Tensor::MaxAbsDiff(a.head, b.head));
  MEPIPE_CHECK_EQ(a.layers.size(), b.layers.size());
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    const LayerWeights& x = a.layers[l];
    const LayerWeights& y = b.layers[l];
    m = std::max(m, Tensor::MaxAbsDiff(x.wq, y.wq));
    m = std::max(m, Tensor::MaxAbsDiff(x.wk, y.wk));
    m = std::max(m, Tensor::MaxAbsDiff(x.wv, y.wv));
    m = std::max(m, Tensor::MaxAbsDiff(x.wo, y.wo));
    m = std::max(m, Tensor::MaxAbsDiff(x.wgate, y.wgate));
    m = std::max(m, Tensor::MaxAbsDiff(x.wup, y.wup));
    m = std::max(m, Tensor::MaxAbsDiff(x.wdown, y.wdown));
    m = std::max(m, Tensor::MaxAbsDiff(x.norm_attn, y.norm_attn));
    m = std::max(m, Tensor::MaxAbsDiff(x.norm_mlp, y.norm_mlp));
  }
  return m;
}

RefModel::StepResult RefModel::TrainStepSliced(const std::vector<std::int64_t>& tokens,
                                               const std::vector<std::int64_t>& targets,
                                               const std::vector<model::SliceSpan>& spans,
                                               bool defer_weight_grads) const {
  MEPIPE_CHECK_EQ(static_cast<std::int64_t>(tokens.size()), config_.seq_len);
  MEPIPE_CHECK_EQ(tokens.size(), targets.size());
  MEPIPE_CHECK(!spans.empty());
  MEPIPE_CHECK_EQ(spans.back().end(), config_.seq_len);

  const std::int64_t h = config_.hidden;
  const std::int64_t d = config_.head_dim();
  const std::int64_t heads = config_.heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const std::int64_t total_tokens = config_.seq_len;

  StepResult result;
  result.grads = Weights::ZerosLike(config_);
  WGradSink wgrad(defer_weight_grads);

  // --- forward: slices in order, growing per-layer K/V caches ------------
  std::vector<Tensor> k_cache(static_cast<std::size_t>(config_.layers), Tensor({0, h}));
  std::vector<Tensor> v_cache(static_cast<std::size_t>(config_.layers), Tensor({0, h}));
  std::vector<SliceState> states(spans.size());

  for (std::size_t si = 0; si < spans.size(); ++si) {
    const model::SliceSpan span = spans[si];
    std::vector<std::int64_t> slice_tokens(
        tokens.begin() + static_cast<std::ptrdiff_t>(span.start),
        tokens.begin() + static_cast<std::ptrdiff_t>(span.end()));
    Tensor x = Embed(weights_.embedding, slice_tokens);

    SliceState& state = states[si];
    state.layers.resize(static_cast<std::size_t>(config_.layers));
    for (std::int64_t l = 0; l < config_.layers; ++l) {
      const LayerWeights& w = weights_.layers[static_cast<std::size_t>(l)];
      LayerSliceState& ls = state.layers[static_cast<std::size_t>(l)];
      ls.x_in = x;

      auto norm_attn = RmsNorm(x, w.norm_attn);
      ls.normed_attn = norm_attn.y;
      ls.inv_rms_attn = norm_attn.inv_rms;
      ls.q = MatMul(ls.normed_attn, w.wq);
      ls.k = MatMul(ls.normed_attn, w.wk);
      ls.v = MatMul(ls.normed_attn, w.wv);
      k_cache[static_cast<std::size_t>(l)].AppendRows(ls.k);
      v_cache[static_cast<std::size_t>(l)].AppendRows(ls.v);
      const Tensor& keys = k_cache[static_cast<std::size_t>(l)];
      const Tensor& values = v_cache[static_cast<std::size_t>(l)];
      const std::int64_t ctx = keys.dim(0);
      MEPIPE_CHECK_EQ(ctx, span.end());

      ls.ctx = Tensor({span.tokens, h});
      ls.probs.resize(static_cast<std::size_t>(heads));
      for (std::int64_t hd = 0; hd < heads; ++hd) {
        const Tensor qh = HeadCols(ls.q, hd, d);
        const Tensor kh = HeadCols(keys, hd, d);
        const Tensor vh = HeadCols(values, hd, d);
        Tensor scores = MatMulTb(qh, kh);  // [t, ctx]
        scores.Scale(scale);
        // Causal mask: query at global position span.start+i sees keys 0..pos.
        for (std::int64_t i = 0; i < span.tokens; ++i) {
          for (std::int64_t j = span.start + i + 1; j < ctx; ++j) {
            scores.at(i, j) = -1e30f;
          }
        }
        Tensor probs = SoftmaxRows(scores);
        AddHeadCols(ls.ctx, MatMul(probs, vh), hd, d);
        ls.probs[static_cast<std::size_t>(hd)] = std::move(probs);
      }

      Tensor attn_out = MatMul(ls.ctx, w.wo);
      ls.resid = ls.x_in;
      ls.resid.Add(attn_out);

      auto norm_mlp = RmsNorm(ls.resid, w.norm_mlp);
      ls.normed_mlp = norm_mlp.y;
      ls.inv_rms_mlp = norm_mlp.inv_rms;
      ls.gate = MatMul(ls.normed_mlp, w.wgate);
      ls.up = MatMul(ls.normed_mlp, w.wup);
      ls.act = Mul(Silu(ls.gate), ls.up);
      Tensor mlp_out = MatMul(ls.act, w.wdown);
      x = ls.resid;
      x.Add(mlp_out);
    }

    // Head + loss for this slice (the loss of slice t depends only on its
    // own logits — why the first backward can start early, §4.1).
    state.final_in = x;
    auto norm_final = RmsNorm(x, weights_.final_norm);
    state.normed_final = norm_final.y;
    state.inv_rms_final = norm_final.inv_rms;
    Tensor logits = MatMul(state.normed_final, weights_.head);
    std::vector<std::int64_t> slice_targets(
        targets.begin() + static_cast<std::ptrdiff_t>(span.start),
        targets.begin() + static_cast<std::ptrdiff_t>(span.end()));
    auto ce = CrossEntropy(logits, slice_targets);
    const double weight = static_cast<double>(span.tokens) / static_cast<double>(total_tokens);
    result.loss += ce.loss * weight;
    ce.dlogits.Scale(static_cast<float>(weight));
    state.dlogits = std::move(ce.dlogits);
  }

  // --- backward: slices in REVERSE order with dK/dV accumulators ----------
  // B(m,t) must run after B(m,t+1): the gradient of slice t's keys/values
  // receives contributions from every later slice's queries. These
  // accumulators are that dependency, made concrete.
  std::vector<Tensor> dk_cache(static_cast<std::size_t>(config_.layers),
                               Tensor({config_.seq_len, h}));
  std::vector<Tensor> dv_cache(static_cast<std::size_t>(config_.layers),
                               Tensor({config_.seq_len, h}));

  for (std::size_t si = spans.size(); si-- > 0;) {
    const model::SliceSpan span = spans[si];
    SliceState& state = states[si];

    // Head / final-norm backward.
    Tensor dy = MatMulTb(state.dlogits, weights_.head);  // [t,h]
    wgrad.Emit(state.normed_final, state.dlogits, &result.grads.head);
    auto final_grads = RmsNormBackward(state.final_in, weights_.final_norm,
                                       state.inv_rms_final, dy);
    result.grads.final_norm.Add(final_grads.dw);
    Tensor dx = std::move(final_grads.dx);  // gradient w.r.t. layer-stack output

    for (std::int64_t l = config_.layers; l-- > 0;) {
      const LayerWeights& w = weights_.layers[static_cast<std::size_t>(l)];
      LayerWeights& g = result.grads.layers[static_cast<std::size_t>(l)];
      LayerSliceState& ls = state.layers[static_cast<std::size_t>(l)];

      // out = resid + wdown(act(norm_mlp(resid)))
      const Tensor& d_out = dx;
      Tensor d_act = MatMulTb(d_out, w.wdown);
      wgrad.Emit(ls.act, d_out, &g.wdown);
      const Tensor silu_gate = Silu(ls.gate);
      Tensor d_gate_out = Mul(d_act, ls.up);
      Tensor d_up = Mul(d_act, silu_gate);
      Tensor d_gate = SiluBackward(ls.gate, d_gate_out);
      Tensor d_normed_mlp = MatMulTb(d_gate, w.wgate);
      d_normed_mlp.Add(MatMulTb(d_up, w.wup));
      wgrad.Emit(ls.normed_mlp, d_gate, &g.wgate);
      wgrad.Emit(ls.normed_mlp, d_up, &g.wup);
      auto mlp_norm_grads =
          RmsNormBackward(ls.resid, w.norm_mlp, ls.inv_rms_mlp, d_normed_mlp);
      g.norm_mlp.Add(mlp_norm_grads.dw);
      Tensor d_resid = d_out;
      d_resid.Add(mlp_norm_grads.dx);

      // resid = x_in + wo(ctx)
      Tensor d_ctx = MatMulTb(d_resid, w.wo);
      wgrad.Emit(ls.ctx, d_resid, &g.wo);

      // Attention backward per head; dK/dV flow into the accumulators.
      const Tensor& keys = k_cache[static_cast<std::size_t>(l)];
      const Tensor& values = v_cache[static_cast<std::size_t>(l)];
      Tensor d_q = Tensor({span.tokens, h});
      Tensor& dk_acc = dk_cache[static_cast<std::size_t>(l)];
      Tensor& dv_acc = dv_cache[static_cast<std::size_t>(l)];
      const std::int64_t ctx_len = span.end();
      for (std::int64_t hd = 0; hd < heads; ++hd) {
        const Tensor& probs = ls.probs[static_cast<std::size_t>(hd)];
        const Tensor d_ctx_h = HeadCols(d_ctx, hd, d);
        const Tensor kh = HeadCols(keys, hd, d).RowSlice(0, ctx_len);
        const Tensor vh = HeadCols(values, hd, d).RowSlice(0, ctx_len);
        // dV_ctx += probsᵀ · d_ctx_h   (contributes to *all* prior slices)
        const Tensor dv_part = MatMulTa(probs, d_ctx_h);  // [ctx, d]
        for (std::int64_t j = 0; j < ctx_len; ++j) {
          for (std::int64_t c = 0; c < d; ++c) {
            dv_acc.at(j, hd * d + c) += dv_part.at(j, c);
          }
        }
        const Tensor d_probs = MatMulTb(d_ctx_h, vh);  // [t, ctx]
        Tensor d_scores = SoftmaxRowsBackward(probs, d_probs);
        d_scores.Scale(scale);
        AddHeadCols(d_q, MatMul(d_scores, kh), hd, d);
        const Tensor dk_part = MatMulTa(d_scores, HeadCols(ls.q, hd, d));  // [ctx, d]
        for (std::int64_t j = 0; j < ctx_len; ++j) {
          for (std::int64_t c = 0; c < d; ++c) {
            dk_acc.at(j, hd * d + c) += dk_part.at(j, c);
          }
        }
      }

      // This slice's own K/V rows are now fully accumulated (its own
      // queries above + every later slice processed before it).
      const Tensor d_k_own = dk_acc.RowSlice(span.start, span.end());
      const Tensor d_v_own = dv_acc.RowSlice(span.start, span.end());
      Tensor d_normed_attn = MatMulTb(d_q, w.wq);
      d_normed_attn.Add(MatMulTb(d_k_own, w.wk));
      d_normed_attn.Add(MatMulTb(d_v_own, w.wv));
      wgrad.Emit(ls.normed_attn, d_q, &g.wq);
      wgrad.Emit(ls.normed_attn, d_k_own, &g.wk);
      wgrad.Emit(ls.normed_attn, d_v_own, &g.wv);

      auto attn_norm_grads =
          RmsNormBackward(ls.x_in, w.norm_attn, ls.inv_rms_attn, d_normed_attn);
      g.norm_attn.Add(attn_norm_grads.dw);
      Tensor d_x_in = std::move(attn_norm_grads.dx);
      d_x_in.Add(d_resid);  // residual path
      dx = std::move(d_x_in);
    }

    // Embedding gradient for this slice's tokens.
    std::vector<std::int64_t> slice_tokens(
        tokens.begin() + static_cast<std::ptrdiff_t>(span.start),
        tokens.begin() + static_cast<std::ptrdiff_t>(span.end()));
    EmbedBackward(slice_tokens, dx, result.grads.embedding);
  }

  // --- the W phase: run every deferred weight-gradient GEMM (§5) ----------
  wgrad.Drain();
  return result;
}

RefModel::StepResult RefModel::TrainStepWhole(const std::vector<std::int64_t>& tokens,
                                              const std::vector<std::int64_t>& targets) const {
  return TrainStepSliced(tokens, targets, {{0, config_.seq_len}}, false);
}

double RefModel::Loss(const std::vector<std::int64_t>& tokens,
                      const std::vector<std::int64_t>& targets) const {
  return TrainStepWhole(tokens, targets).loss;
}

}  // namespace mepipe::ref
