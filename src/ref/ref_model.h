// A reference decoder-only transformer executed *slice by slice* — the
// numerical counterpart of the scheduling work in src/core.
//
// The simulator shows slice-level scheduling is fast; this module shows
// it is *correct*: processing a sample as s sequential slices (forward
// with a K/V cache, backward in reverse slice order with dK/dV
// accumulators, weight gradients optionally deferred and applied later,
// §5) produces bit-for-bit the gradients of whole-sequence execution up
// to float associativity. The backward dependency the scheduler encodes
// — B(m,t) after B(m,t+1) — is exactly the dK/dV accumulation order
// visible in TrainStepSliced.
//
// Dimensions are meant to be tiny (tests use hidden ≤ 64); performance
// is the simulator's job.
#ifndef MEPIPE_REF_REF_MODEL_H_
#define MEPIPE_REF_REF_MODEL_H_

#include <cstdint>
#include <vector>

#include "model/flops.h"
#include "tensor/tensor.h"

namespace mepipe::ref {

struct RefConfig {
  std::int64_t hidden = 32;
  std::int64_t ffn = 64;
  std::int64_t layers = 2;
  std::int64_t heads = 4;
  std::int64_t vocab = 61;
  std::int64_t seq_len = 16;

  std::int64_t head_dim() const { return hidden / heads; }
};

struct LayerWeights {
  tensor::Tensor wq, wk, wv, wo;      // [h,h]
  tensor::Tensor wgate, wup;          // [h,f]
  tensor::Tensor wdown;               // [f,h]
  tensor::Tensor norm_attn, norm_mlp; // [h]
};

struct Weights {
  tensor::Tensor embedding;  // [V,h]
  tensor::Tensor final_norm; // [h]
  tensor::Tensor head;       // [h,V]
  std::vector<LayerWeights> layers;

  static Weights Random(const RefConfig& config, std::uint32_t seed);
  static Weights ZerosLike(const RefConfig& config);
  // Max |a-b| over every parameter tensor.
  static float MaxAbsDiff(const Weights& a, const Weights& b);
};

class RefModel {
 public:
  RefModel(RefConfig config, std::uint32_t seed)
      : config_(config), weights_(Weights::Random(config, seed)) {}

  const RefConfig& config() const { return config_; }
  Weights& weights() { return weights_; }

  struct StepResult {
    double loss = 0;
    Weights grads;
  };

  // One forward+backward over `tokens` (next-token targets `targets`),
  // executed as the given sequence of slices. `defer_weight_grads`
  // separates B from W: the backward stashes (activation, output-grad)
  // pairs per GEMM and a second phase computes every dW — the §5
  // decomposition.
  StepResult TrainStepSliced(const std::vector<std::int64_t>& tokens,
                             const std::vector<std::int64_t>& targets,
                             const std::vector<model::SliceSpan>& spans,
                             bool defer_weight_grads) const;

  // Whole-sequence execution (a single slice).
  StepResult TrainStepWhole(const std::vector<std::int64_t>& tokens,
                            const std::vector<std::int64_t>& targets) const;

  // Loss only (for finite-difference gradient checking).
  double Loss(const std::vector<std::int64_t>& tokens,
              const std::vector<std::int64_t>& targets) const;

 private:
  RefConfig config_;
  Weights weights_;
};

}  // namespace mepipe::ref

#endif  // MEPIPE_REF_REF_MODEL_H_
