#include "sim/engine.h"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <limits>
#include <optional>
#include <utility>

#include "common/check.h"
#include "sched/dependency.h"

namespace mepipe::sim {
namespace {

using sched::Dep;
using sched::OpId;
using sched::OpKind;

constexpr double kEps = 1e-12;

// Sentinel for "not recorded yet" in the dense time arenas below. All
// recorded times are >= 0, so the comparison is exact.
constexpr Seconds kNotDone = -1.0;

// A deferred weight-gradient work item, optionally split into GEMMs.
struct WgradItem {
  OpId op;               // the kWeightGrad identity
  Seconds available = 0; // its B's completion time
  int next_gemm = 0;
  int gemm_count = 1;    // 1 when executed as a whole-W task
};

struct MemEvent {
  Seconds time = 0;
  Bytes delta = 0;
};

class Engine {
 public:
  Engine(const sched::Schedule& schedule, const CostModel& costs, const EngineOptions& options)
      : schedule_(schedule),
        problem_(schedule.problem),
        costs_(costs),
        options_(options),
        micros_(static_cast<std::size_t>(problem_.micros)),
        slices_(static_cast<std::size_t>(problem_.slices)),
        chunks_(static_cast<std::size_t>(problem_.num_chunks())),
        done_(3 * micros_ * slices_ * chunks_, kNotDone),
        transfer_arrival_(2 * micros_ * slices_ * chunks_, kNotDone),
        link_free_(static_cast<std::size_t>(problem_.stages) *
                       static_cast<std::size_t>(problem_.stages),
                   0.0),
        cursor_(static_cast<std::size_t>(problem_.stages), 0),
        clock_(static_cast<std::size_t>(problem_.stages), 0.0),
        wqueue_(static_cast<std::size_t>(problem_.stages)),
        mem_events_(static_cast<std::size_t>(problem_.stages)),
        current_bytes_(static_cast<std::size_t>(problem_.stages), 0),
        busy_(static_cast<std::size_t>(problem_.stages), 0.0),
        first_start_(static_cast<std::size_t>(problem_.stages),
                     std::numeric_limits<Seconds>::infinity()),
        last_end_(static_cast<std::size_t>(problem_.stages), 0.0),
        overflow_count_(static_cast<std::size_t>(problem_.stages), 0),
        overflow_bytes_(static_cast<std::size_t>(problem_.stages), 0) {
    if (!options_.activation_budget.empty()) {
      MEPIPE_CHECK_EQ(options_.activation_budget.size(),
                      static_cast<std::size_t>(problem_.stages))
          << "activation_budget must have one entry per stage";
      for (Bytes budget : options_.activation_budget) {
        MEPIPE_CHECK_GE(budget, 0) << "negative activation budget";
      }
    }
    if (options_.fault_plan) {
      faulty_.emplace(costs, options_.fault_plan, problem_.stages);
    }
  }

  SimResult Run();

 private:
  // Dense arena index for an op's completion slot. Only F/B/W identities
  // are recorded (per-GEMM splits and DP buckets are never dependency
  // targets), so three kind planes of micros × slices × chunks cover the
  // whole space with a single subtraction-free computation.
  std::size_t OpIndex(const OpId& op) const {
    const std::size_t kind = op.kind == OpKind::kForward   ? 0
                             : op.kind == OpKind::kBackward ? 1
                                                            : 2;
    return ((kind * micros_ + static_cast<std::size_t>(op.micro)) * slices_ +
            static_cast<std::size_t>(op.slice)) *
               chunks_ +
           static_cast<std::size_t>(op.chunk);
  }

  Seconds DoneTime(const OpId& op) const { return done_[OpIndex(op)]; }
  bool IsDone(const OpId& op) const { return done_[OpIndex(op)] != kNotDone; }
  void SetDone(const OpId& op, Seconds time) { done_[OpIndex(op)] = time; }

  // Arrival time of `producer`'s output at the consuming stage, applying
  // per-directed-link serialization. Memoized (each producer feeds one
  // consumer). Transfer producers are F/B only, so the first two kind
  // planes of the arena suffice.
  Seconds TransferArrival(const OpId& producer) {
    Seconds& memo = transfer_arrival_[OpIndex(producer)];
    if (memo != kNotDone) {
      return memo;
    }
    const Seconds done = DoneTime(producer);
    MEPIPE_CHECK(done != kNotDone);
    const int from = problem_.stage_of_chunk(producer.chunk);
    const int to = producer.kind == OpKind::kForward
                       ? problem_.stage_of_chunk(producer.chunk + 1)
                       : problem_.stage_of_chunk(producer.chunk - 1);
    double& link_free = link_free_[static_cast<std::size_t>(from) *
                                       static_cast<std::size_t>(problem_.stages) +
                                   static_cast<std::size_t>(to)];
    Seconds start = std::max(done, link_free);
    Seconds arrival;
    if (faulty_) {
      start = faulty_->NextUpTime(start);
      arrival = faulty_->TransferEndAt(from, to, producer, start);
    } else {
      arrival = start + costs_.TransferTime(producer);
    }
    link_free = arrival;
    timeline_.push_back({from, producer, start, arrival, /*is_transfer=*/true});
    memo = arrival;
    return arrival;
  }

  Seconds ReadyTime(const OpId& op) {
    Seconds ready = 0.0;
    sched::ForEachDependency(problem_, op, [&](const Dep& dep) {
      if (dep.cross_stage) {
        ready = std::max(ready, TransferArrival(dep.op));
      } else {
        const Seconds done = DoneTime(dep.op);
        MEPIPE_CHECK(done != kNotDone);
        ready = std::max(ready, done);
      }
    });
    return ready;
  }

  bool DepsDone(const OpId& op) const {
    bool all = true;
    sched::ForEachDependency(problem_, op, [&](const Dep& dep) {
      all = all && IsDone(dep.op);
    });
    return all;
  }

  // Fault-aware pricing: where a compute op started at `start` finishes.
  Seconds ComputeEnd(int stage, const OpId& op, Seconds start) const {
    return faulty_ ? faulty_->ComputeEndAt(stage, op, start)
                   : start + costs_.ComputeTime(op);
  }

  // First instant >= t the stage may start work (skips fail-stop downtime).
  Seconds StartAt(Seconds t) const { return faulty_ ? faulty_->NextUpTime(t) : t; }

  void RecordCompute(int stage, const OpId& op, Seconds start, Seconds end) {
    timeline_.push_back({stage, op, start, end, /*is_transfer=*/false});
    busy_[static_cast<std::size_t>(stage)] += end - start;
    first_start_[static_cast<std::size_t>(stage)] =
        std::min(first_start_[static_cast<std::size_t>(stage)], start);
    last_end_[static_cast<std::size_t>(stage)] =
        std::max(last_end_[static_cast<std::size_t>(stage)], end);
  }

  void AddMem(int stage, Seconds time, Bytes delta) {
    mem_events_[static_cast<std::size_t>(stage)].push_back({time, delta});
    current_bytes_[static_cast<std::size_t>(stage)] += delta;
  }

  // Releases the activation (and act-grad) footprint of (micro, slice,
  // chunk) at `time` on `stage`.
  void ReleaseSlice(int stage, const OpId& op, Seconds time, bool release_act_grad) {
    const OpId forward{OpKind::kForward, op.micro, op.slice, op.chunk, -1, op.job};
    AddMem(stage, time, -costs_.ActivationBytes(forward));
    if (release_act_grad) {
      const OpId backward{OpKind::kBackward, op.micro, op.slice, op.chunk, -1, op.job};
      AddMem(stage, time, -costs_.ActGradBytes(backward));
    }
  }

  // Executes W items from the stage's queue into the idle window
  // [clock, until). Never overshoots `until`.
  void FillWgrad(int stage, Seconds until) {
    if (options_.wgrad_mode == WgradMode::kImmediate) {
      return;
    }
    auto& queue = wqueue_[static_cast<std::size_t>(stage)];
    double& clock = clock_[static_cast<std::size_t>(stage)];
    while (!queue.empty()) {
      WgradItem& item = queue.front();
      if (item.available > clock + kEps) {
        break;
      }
      const OpId gemm_op{OpKind::kWeightGradGemm, item.op.micro, item.op.slice, item.op.chunk,
                         item.next_gemm, item.op.job};
      const OpId exec_op = item.gemm_count > 1 ? gemm_op : item.op;
      const Seconds start = StartAt(clock);
      const Seconds end = ComputeEnd(stage, exec_op, start);
      if (end > until + kEps) {
        break;  // does not fit in the bubble
      }
      RecordCompute(stage, exec_op, start, end);
      clock = end;
      if (++item.next_gemm >= item.gemm_count) {
        SetDone(item.op, clock);
        ReleaseSlice(stage, item.op, clock, /*release_act_grad=*/true);
        queue.pop_front();
      }
    }
  }

  // Frees memory by draining deferred W items until `incoming` more bytes
  // fit within the stage's activation budget (no-op when unbudgeted).
  // When the queue runs dry with the stage still over budget, the
  // allocation is admitted and the violation recorded — or, under
  // strict_activation_budget, the engine throws.
  void DrainForBudget(int stage, Bytes incoming) {
    if (options_.activation_budget.empty()) {
      return;
    }
    const Bytes budget = options_.activation_budget[static_cast<std::size_t>(stage)];
    if (budget <= 0) {
      return;  // 0 = this stage is unbudgeted
    }
    auto& queue = wqueue_[static_cast<std::size_t>(stage)];
    while (!queue.empty() &&
           current_bytes_[static_cast<std::size_t>(stage)] + incoming > budget) {
      DrainWgradItem(stage, queue.front());
      queue.pop_front();
    }
    const Bytes resident = current_bytes_[static_cast<std::size_t>(stage)] + incoming;
    if (resident > budget) {
      const Bytes overflow = resident - budget;
      MEPIPE_CHECK(!options_.strict_activation_budget)
          << "stage " << stage << " exceeds its activation budget by " << overflow
          << " bytes with no deferred W work left to drain";
      ++overflow_count_[static_cast<std::size_t>(stage)];
      overflow_bytes_[static_cast<std::size_t>(stage)] =
          std::max(overflow_bytes_[static_cast<std::size_t>(stage)], overflow);
    }
  }

  // Schedules every stage's DP gradient buckets on that stage's comm
  // stream against the finished timeline. Each bucket starts at
  // max(stream free, last gradient producer done); with dp_link_shared
  // its transmission is additionally suspended while pipeline transfers
  // touching the stage hold the fabric. Fills result.dp and, per stage,
  // dp_busy. Correctness of the hidden/exposed split: every bucket
  // dependency and every pipeline transfer ends by result.makespan, so
  // past the makespan the stream runs gap-free and unstretched — the
  // exposed tail per stage is at most that stage's summed bucket cost,
  // hence exposed <= serialized and hidden >= 0.
  void RunDpSync(SimResult& result, std::vector<Seconds>& dp_busy) {
    // Merged fabric-busy intervals per stage (either endpoint of a
    // pipeline transfer contends with that stage's DP ring).
    std::vector<std::vector<std::pair<Seconds, Seconds>>> fabric_busy(
        static_cast<std::size_t>(problem_.stages));
    if (options_.dp_link_shared) {
      for (const OpSpan& span : timeline_) {
        if (!span.is_transfer) {
          continue;
        }
        const int to = span.op.kind == OpKind::kForward
                           ? problem_.stage_of_chunk(span.op.chunk + 1)
                           : problem_.stage_of_chunk(span.op.chunk - 1);
        fabric_busy[static_cast<std::size_t>(span.stage)].push_back({span.start, span.end});
        if (to != span.stage) {
          fabric_busy[static_cast<std::size_t>(to)].push_back({span.start, span.end});
        }
      }
      for (auto& intervals : fabric_busy) {
        std::sort(intervals.begin(), intervals.end());
        std::vector<std::pair<Seconds, Seconds>> merged;
        for (const auto& interval : intervals) {
          if (!merged.empty() && interval.first <= merged.back().second) {
            merged.back().second = std::max(merged.back().second, interval.second);
          } else {
            merged.push_back(interval);
          }
        }
        intervals = std::move(merged);
      }
    }
    // End of a transmission of `work` seconds entering at `start`,
    // suspended across the sorted disjoint busy `intervals`.
    const auto advance = [](const std::vector<std::pair<Seconds, Seconds>>& intervals,
                            Seconds start, Seconds work) {
      Seconds t = start;
      Seconds remaining = work;
      for (const auto& [begin, end] : intervals) {
        if (end <= t) {
          continue;  // already past this interval
        }
        if (t + remaining <= begin) {
          break;  // finishes before the fabric is next claimed
        }
        if (t >= begin) {
          t = end;  // entered mid-interval: wait it out
          continue;
        }
        remaining -= begin - t;  // transmit until the pipeline claims the link
        t = end;                 // suspended while its transfer runs
      }
      return t + remaining;
    };

    for (int stage = 0; stage < problem_.stages; ++stage) {
      std::vector<std::pair<Seconds, OpId>> buckets;  // (ready, bucket)
      Seconds total = 0;
      for (const OpId& bucket : sched::DpSyncOps(problem_, stage, schedule_.job)) {
        const Seconds duration = costs_.DpSyncTime(bucket);
        if (duration <= 0) {
          continue;  // the model does not price this bucket
        }
        Seconds ready = 0;
        sched::ForEachDependency(problem_, bucket, [&](const Dep& dep) {
          const Seconds done = DoneTime(dep.op);
          MEPIPE_CHECK(done != kNotDone)
              << "DP bucket scheduled before its gradients completed";
          ready = std::max(ready, done);
        });
        buckets.push_back({ready, bucket});
        total += duration;
      }
      // NCCL-style launch order: buckets enqueue as their gradients
      // become ready (stable on chunk order for deterministic ties).
      std::stable_sort(buckets.begin(), buckets.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; });
      Seconds stream = 0;
      for (const auto& [ready, bucket] : buckets) {
        const Seconds start = std::max(stream, ready);
        const Seconds end =
            options_.dp_link_shared
                ? advance(fabric_busy[static_cast<std::size_t>(stage)], start,
                          costs_.DpSyncTime(bucket))
                : start + costs_.DpSyncTime(bucket);
        timeline_.push_back({stage, bucket, start, end, /*is_transfer=*/true});
        dp_busy[static_cast<std::size_t>(stage)] += end - start;
        stream = end;
        ++result.dp.buckets;
      }
      result.dp.serialized = std::max(result.dp.serialized, total);
      result.dp.last_end = std::max(result.dp.last_end, stream);
    }
    result.dp.exposed = std::max(0.0, result.dp.last_end - result.makespan);
    result.dp.hidden = std::max(0.0, result.dp.serialized - result.dp.exposed);
  }

  // Runs a W item (whole or remaining GEMMs) to completion immediately.
  void DrainWgradItem(int stage, WgradItem& item) {
    double& clock = clock_[static_cast<std::size_t>(stage)];
    clock = std::max(clock, item.available);
    if (item.gemm_count <= 1) {
      const Seconds start = StartAt(clock);
      const Seconds end = ComputeEnd(stage, item.op, start);
      RecordCompute(stage, item.op, start, end);
      clock = end;
    } else {
      for (; item.next_gemm < item.gemm_count; ++item.next_gemm) {
        const OpId gemm_op{OpKind::kWeightGradGemm, item.op.micro, item.op.slice, item.op.chunk,
                           item.next_gemm, item.op.job};
        const Seconds start = StartAt(clock);
        const Seconds end = ComputeEnd(stage, gemm_op, start);
        RecordCompute(stage, gemm_op, start, end);
        clock = end;
      }
    }
    SetDone(item.op, clock);
    ReleaseSlice(stage, item.op, clock, /*release_act_grad=*/true);
  }

  const sched::Schedule& schedule_;
  const sched::PipelineProblem& problem_;
  const CostModel& costs_;
  EngineOptions options_;

  // Event arenas: completion times and memoized transfer arrivals live
  // in dense per-op vectors (kNotDone sentinel) instead of hash maps,
  // and the per-directed-link free times in a flat stages × stages
  // matrix. One allocation each up front; the hot loop does index
  // arithmetic only. Sized at construction from the problem shape.
  const std::size_t micros_;
  const std::size_t slices_;
  const std::size_t chunks_;
  std::vector<Seconds> done_;
  std::vector<Seconds> transfer_arrival_;
  std::vector<double> link_free_;
  std::vector<std::size_t> cursor_;
  std::vector<double> clock_;
  std::vector<std::deque<WgradItem>> wqueue_;
  std::vector<std::vector<MemEvent>> mem_events_;
  std::vector<Bytes> current_bytes_;
  std::vector<Seconds> busy_;
  std::vector<Seconds> first_start_;
  std::vector<Seconds> last_end_;
  std::vector<int> overflow_count_;
  std::vector<Bytes> overflow_bytes_;
  std::vector<OpSpan> timeline_;
  std::optional<FaultyCostModel> faulty_;
};

SimResult Engine::Run() {
  sched::ValidateSchedule(schedule_);

  std::size_t remaining = 0;
  for (const auto& ops : schedule_.stage_ops) {
    remaining += ops.size();
  }
  // Compute spans plus at most one transfer per F/B op; per-GEMM W
  // splits can push past this, at which point the vector grows normally.
  timeline_.reserve(2 * remaining);
  for (auto& events : mem_events_) {
    events.reserve(2 * remaining / std::max(1, problem_.stages));
  }

  while (remaining > 0) {
    bool progress = false;
    for (int stage = 0; stage < problem_.stages; ++stage) {
      auto& cursor = cursor_[static_cast<std::size_t>(stage)];
      const auto& ops = schedule_.stage_ops[static_cast<std::size_t>(stage)];
      double& clock = clock_[static_cast<std::size_t>(stage)];
      while (cursor < ops.size()) {
        const OpId& op = ops[cursor];
        if (!DepsDone(op)) {
          break;
        }
        const Seconds ready = ReadyTime(op);
        if (ready > clock) {
          FillWgrad(stage, ready);
        }
        if (op.kind == OpKind::kForward) {
          DrainForBudget(stage, costs_.ActivationBytes(op));
        } else if (op.kind == OpKind::kBackward && problem_.split_backward) {
          DrainForBudget(stage, costs_.ActGradBytes(op));
        }
        const Seconds start = StartAt(std::max(clock, ready));
        const Seconds end = ComputeEnd(stage, op, start);
        RecordCompute(stage, op, start, end);
        clock = end;
        SetDone(op, end);

        switch (op.kind) {
          case OpKind::kForward:
            AddMem(stage, end, costs_.ActivationBytes(op));
            break;
          case OpKind::kBackward:
            if (!problem_.split_backward) {
              ReleaseSlice(stage, op, end, /*release_act_grad=*/false);
            } else {
              AddMem(stage, end, costs_.ActGradBytes(op));
              if (schedule_.deferred_wgrad) {
                const OpId w{OpKind::kWeightGrad, op.micro, op.slice, op.chunk, -1, op.job};
                WgradItem item{w, end, 0,
                               options_.wgrad_mode == WgradMode::kFillGemms
                                   ? costs_.WeightGradGemmCount(w)
                                   : 1};
                if (options_.wgrad_mode == WgradMode::kImmediate) {
                  DrainWgradItem(stage, item);
                } else {
                  wqueue_[static_cast<std::size_t>(stage)].push_back(item);
                }
              }
            }
            break;
          case OpKind::kWeightGrad:
            // Statically placed W (non-deferred split schedules).
            ReleaseSlice(stage, op, end, /*release_act_grad=*/true);
            break;
          case OpKind::kWeightGradGemm:
            MEPIPE_CHECK(false) << "per-GEMM ops cannot appear in static orders";
            break;
          case OpKind::kDpSync:
            MEPIPE_CHECK(false) << "DP-sync ops run on comm streams, never in static orders";
            break;
        }
        ++cursor;
        --remaining;
        progress = true;
      }
    }
    MEPIPE_CHECK(progress) << "engine wedged with " << remaining
                           << " ops left — schedule validation should have caught this";
  }

  // Drain any weight-gradient work still queued (zero-bubble tail).
  for (int stage = 0; stage < problem_.stages; ++stage) {
    auto& queue = wqueue_[static_cast<std::size_t>(stage)];
    while (!queue.empty()) {
      DrainWgradItem(stage, queue.front());
      queue.pop_front();
    }
  }

  SimResult result;
  for (const OpSpan& span : timeline_) {
    if (!span.is_transfer) {
      result.makespan = std::max(result.makespan, span.end);
    }
  }

  // Overlapped data-parallel gradient sync: a post-pass over the now
  // fixed compute/transfer timeline. Buckets only read completed
  // gradients, and under dp_link_shared DP yields the fabric to the
  // pipeline, so nothing above moves — how much sync hides in bubbles
  // and how much tail is exposed past the makespan simply emerges.
  std::vector<Seconds> dp_busy(static_cast<std::size_t>(problem_.stages), 0.0);
  if (options_.dp_overlap) {
    RunDpSync(result, dp_busy);
  }

  result.stages.resize(static_cast<std::size_t>(problem_.stages));
  double bubble_sum = 0;
  for (int stage = 0; stage < problem_.stages; ++stage) {
    StageMetrics& metrics = result.stages[static_cast<std::size_t>(stage)];
    metrics.busy = busy_[static_cast<std::size_t>(stage)];
    metrics.bubble_ratio =
        result.makespan > 0 ? 1.0 - metrics.busy / result.makespan : 0.0;
    const Seconds first = first_start_[static_cast<std::size_t>(stage)];
    const Seconds last = last_end_[static_cast<std::size_t>(stage)];
    if (first <= last) {  // the stage ran at least one compute op
      metrics.warmup_idle = first;
      metrics.steady_idle = std::max(0.0, (last - first) - metrics.busy);
      metrics.drain_idle = std::max(0.0, result.makespan - last);
    } else {
      metrics.warmup_idle = result.makespan;  // never ran: all warmup
    }
    metrics.budget_violations = overflow_count_[static_cast<std::size_t>(stage)];
    metrics.budget_overflow_bytes = overflow_bytes_[static_cast<std::size_t>(stage)];
    metrics.dp_sync = dp_busy[static_cast<std::size_t>(stage)];
    result.budget_violations += metrics.budget_violations;
    bubble_sum += metrics.bubble_ratio;

    auto& events = mem_events_[static_cast<std::size_t>(stage)];
    std::stable_sort(events.begin(), events.end(),
                     [](const MemEvent& a, const MemEvent& b) { return a.time < b.time; });
    if (options_.record_memory_timeline && result.memory_timeline.empty()) {
      result.memory_timeline.resize(static_cast<std::size_t>(problem_.stages));
    }
    Bytes current = 0;
    for (const MemEvent& event : events) {
      current += event.delta;
      metrics.peak_activation = std::max(metrics.peak_activation, current);
      if (options_.record_memory_timeline) {
        auto& series = result.memory_timeline[static_cast<std::size_t>(stage)];
        if (!series.empty() && series.back().time == event.time) {
          series.back().bytes = current;  // coalesce simultaneous deltas
        } else {
          series.push_back({event.time, current});
        }
      }
    }
    result.peak_activation = std::max(result.peak_activation, metrics.peak_activation);
  }
  result.bubble_ratio = problem_.stages > 0 ? bubble_sum / problem_.stages : 0.0;
  if (faulty_) {
    result.fault_spans = faulty_->Spans();
  }
  result.timeline = std::move(timeline_);
  std::sort(result.timeline.begin(), result.timeline.end(),
            [](const OpSpan& a, const OpSpan& b) {
              return a.start < b.start || (a.start == b.start && a.stage < b.stage);
            });
  return result;
}

}  // namespace

SimResult Simulate(const sched::Schedule& schedule, const CostModel& costs,
                   const EngineOptions& options) {
  return Engine(schedule, costs, options).Run();
}

}  // namespace mepipe::sim
