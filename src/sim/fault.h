// Fault injection for the discrete-event engine.
//
// Real consumer-GPU clusters (§9) see stragglers, degraded links,
// flaky transfers, and outright device loss. Instead of asserting their
// cost in closed form, a scripted FaultPlan perturbs a schedule's
// execution so the engine *measures* the degradation:
//   - StragglerFault:     a stage computes `slowdown`× slower inside a
//                         time window (thermal throttling, preemption);
//   - LinkDegradeFault:   transfers on a directed stage link take
//                         `factor`× longer inside a window;
//   - TransferRetryFault: transfers entering a link inside a window are
//                         retransmitted with exponential backoff;
//   - FailStopFault:      a device is lost at time t. After a detection
//                         delay the job restarts from the last plan
//                         checkpoint and replays the lost work; the
//                         whole pipeline is suspended for
//                         detection + restart + replay.
// All perturbations are pure functions of the plan — two runs of the
// same plan produce identical timelines.
#ifndef MEPIPE_SIM_FAULT_H_
#define MEPIPE_SIM_FAULT_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "sim/cost_model.h"

namespace mepipe::sim {

// A stage computes `slowdown`× slower over [begin, end). Ops spanning a
// boundary are integrated piecewise; slowdown must be >= 1.
struct StragglerFault {
  int stage = 0;
  Seconds begin = 0;
  Seconds end = 0;
  double slowdown = 1.0;
};

// Transfers on the directed link from→to take `factor`× longer over
// [begin, end) (bandwidth degradation); factor must be >= 1.
struct LinkDegradeFault {
  int from = 0;
  int to = 0;
  Seconds begin = 0;
  Seconds end = 0;
  double factor = 1.0;
};

// A transfer entering link from→to inside [begin, end) fails `retries`
// times before succeeding; the k-th failed attempt is followed by a
// backoff wait of `backoff`·2^k before retransmission.
struct TransferRetryFault {
  int from = 0;
  int to = 0;
  Seconds begin = 0;
  Seconds end = 0;
  int retries = 1;
  Seconds backoff = 0;
};

// Fail-stop device loss on `stage` at progress time `time` (time already
// excludes earlier failures' downtime). Work since the last checkpoint
// at or before `time` (FaultPlan::checkpoints; t=0 is implicit) is lost;
// the pipeline stalls for detection_delay + repair_time + restart_time +
// lost work. `repair_time` models the wall-clock wait for the lost
// device to be replaced/repaired before the restart can begin (0 = a
// hot spare is available immediately); the elastic runtime
// (core/elastic) instead keeps surviving replicas training through this
// window.
struct FailStopFault {
  int stage = 0;
  Seconds time = 0;
  Seconds detection_delay = 0;
  Seconds restart_time = 0;
  Seconds repair_time = 0;
};

// How far a fail-stop rolls the job back.
//  - kFullPipeline: every replica restores the last durable checkpoint
//    and the whole cluster replays the work since it.
//  - kDpReplicaLocal: surviving data-parallel replicas keep their state;
//    the lost replica restores from a peer at the last DP sync point
//    (FaultPlan::sync_points) and replays only the work since that sync
//    while the survivors idle. The restore target is the most recent of
//    the last checkpoint and the last sync point, so replica-local
//    replay is never longer than a full restart's.
enum class RestartScope { kFullPipeline, kDpReplicaLocal };

const char* ToString(RestartScope scope);

struct FaultPlan {
  std::vector<StragglerFault> stragglers;
  std::vector<LinkDegradeFault> link_degrades;
  std::vector<TransferRetryFault> transfer_retries;
  std::vector<FailStopFault> fail_stops;
  // Progress-time instants at which a consistent checkpoint exists (the
  // restart target of a fail-stop). t=0 always counts as one.
  std::vector<Seconds> checkpoints;
  // Rollback scope of the fail-stops (see RestartScope).
  RestartScope restart_scope = RestartScope::kFullPipeline;
  // Progress-time instants at which all DP replicas hold an identical,
  // peer-fetchable copy of the state (iteration boundaries). Only
  // consulted under kDpReplicaLocal; t=0 always counts as one.
  std::vector<Seconds> sync_points;

  bool empty() const;
  // Throws CheckError on malformed plans: windows with end <= begin,
  // slowdown/factor < 1, retries < 1, negative times, out-of-range
  // stages, or overlapping straggler windows on one stage.
  void Validate(int stages) const;
};

// Value-semantic handle to a FaultPlan. Replaces the raw
// `const FaultPlan*` must-outlive-the-call option fields: constructing a
// FaultPlanRef from a plan copies (or moves) it into shared storage, so
// every holder — EngineOptions, IterationOptions, PlannerOptions, a
// FaultyCostModel deep in a decorator stack — keeps the plan alive by
// construction instead of by comment. Cheap to copy (one shared_ptr).
// A default-constructed ref means "no plan" (a clean run).
class FaultPlanRef {
 public:
  FaultPlanRef() = default;
  FaultPlanRef(std::nullptr_t) {}  // NOLINT: `options.fault_plan = nullptr` clears
  // Takes ownership of a copy/move of `plan`.
  FaultPlanRef(FaultPlan plan)  // NOLINT: implicit `options.fault_plan = plan`
      : plan_(std::make_shared<const FaultPlan>(std::move(plan))) {}
  // Shares an already-shared plan (no copy).
  FaultPlanRef(std::shared_ptr<const FaultPlan> plan) : plan_(std::move(plan)) {}  // NOLINT

  bool has_value() const { return plan_ != nullptr; }
  explicit operator bool() const { return has_value(); }
  // True when there is no plan or the plan injects nothing.
  bool empty() const;

  // Throws CheckError when no plan is held.
  const FaultPlan& operator*() const {
    MEPIPE_CHECK(plan_ != nullptr) << "dereferencing an empty FaultPlanRef";
    return *plan_;
  }
  const FaultPlan* operator->() const { return &**this; }
  const FaultPlan* get() const { return plan_.get(); }

 private:
  std::shared_ptr<const FaultPlan> plan_;
};

// Span kinds exported to the trace layer. The first four mirror the
// FaultPlan event types; the last three are emitted by the elastic
// runtime (core/elastic): a live schedule re-plan after straggler
// detection, a ZeRO-shard redistribution when the DP ring shrinks or
// re-expands, and the repair window of a lost node.
enum class FaultKind {
  kStraggler,
  kLinkDegrade,
  kTransferRetry,
  kFailStop,
  kReplan,
  kReshard,
  kRepair,
};

const char* ToString(FaultKind kind);

// One fault window, exported in SimResult::fault_spans and by the
// Chrome-trace / CSV exporters.
struct FaultSpan {
  FaultKind kind = FaultKind::kStraggler;
  int stage = -1;  // affected stage (stragglers, fail-stops)
  int from = -1;   // affected link (degrades, retries)
  int to = -1;
  Seconds begin = 0;
  Seconds end = 0;
  std::string label;
};

// Applies a FaultPlan to a base cost model.
//
// The plain CostModel interface delegates to `base` (fault-free
// durations, inherited from WrappingCostModel); the time-aware queries
// below price an op *started at a given instant*, integrating straggler
// / link windows piecewise and suspending across fail-stop downtime.
// The engine uses the time-aware path when EngineOptions::fault_plan is
// set.
//
// Holds `base` by reference (it must outlive this wrapper — or build
// through CostModelStack, which owns the chain); the plan is held by
// value through FaultPlanRef.
class FaultyCostModel : public WrappingCostModel {
 public:
  // Validates the plan against `stages` (throws CheckError; a held plan
  // is required — pass an empty FaultPlan{} for a plan that injects
  // nothing).
  FaultyCostModel(const CostModel& base, FaultPlanRef plan, int stages);

  // First instant >= t at which the cluster is up (skips fail-stop
  // downtime windows).
  Seconds NextUpTime(Seconds t) const;

  // End time of `op` started at `start` on `stage`: straggler windows
  // dilate progress, downtime suspends it.
  Seconds ComputeEndAt(int stage, const sched::OpId& op, Seconds start) const;

  // End time of the transfer of `producer`'s output entering link
  // from→to at `start`: degrade windows dilate it, a retry window at the
  // entry instant forces failed attempts + backoff, downtime suspends
  // transmission (backoff waits run on the wall clock).
  Seconds TransferEndAt(int from, int to, const sched::OpId& producer, Seconds start) const;

  // Every fault window of the plan as exportable spans; fail-stop spans
  // cover the full derived downtime (detection + restart + replay).
  std::vector<FaultSpan> Spans() const;

 private:
  struct Window {
    Seconds begin = 0;
    Seconds end = 0;
    double dilation = 1.0;  // elapsed wall time per unit of work inside
  };
  struct Downtime {
    Seconds begin = 0;
    Seconds end = 0;
    int stage = 0;
    Seconds lost = 0;  // replayed work included in [begin, end)
    RestartScope scope = RestartScope::kFullPipeline;
  };

  // Advances `work` seconds of dilated progress from `start` through
  // `windows` (sorted, per stage or link) and the global downtimes.
  Seconds AdvanceWork(const std::vector<Window>& windows, Seconds start, Seconds work) const;

  FaultPlanRef plan_;
  std::vector<std::vector<Window>> stage_windows_;          // per stage
  std::vector<std::pair<std::pair<int, int>, std::vector<Window>>> link_windows_;
  std::vector<Downtime> downtimes_;                         // sorted, disjoint
};

// Fluent CostModelStack layer (declared in sim/cost_model.h).
inline CostModelStack& CostModelStack::Faulty(FaultPlanRef plan, int stages) {
  return Wrap<FaultyCostModel>(std::move(plan), stages);
}

}  // namespace mepipe::sim

#endif  // MEPIPE_SIM_FAULT_H_
