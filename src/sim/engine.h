// The discrete-event execution engine.
//
// Executes a static Schedule against a CostModel: every stage runs its
// program order, waiting on same-stage completions and cross-stage
// transfers (serialized per directed stage-pair link). Deferred
// weight-gradient work is slotted into the waits — the runtime half of
// the paper's fine-grained weight-gradient technique (§5). The engine
// tracks activation (+ activation-gradient) memory so that peak
// consumption and bubbles are *measured*, not asserted.
#ifndef MEPIPE_SIM_ENGINE_H_
#define MEPIPE_SIM_ENGINE_H_

#include <vector>

#include "common/units.h"
#include "sched/schedule.h"
#include "sim/cost_model.h"
#include "sim/fault.h"

namespace mepipe::sim {

// How deferred weight-gradient ops are executed.
enum class WgradMode {
  kImmediate,  // W runs right after its producing B (the Fig. 11 baseline)
  kFillWhole,  // whole-W tasks fill bubbles; remainder drains at the end (ZB)
  kFillGemms,  // per-GEMM tasks fill bubbles (MEPipe fine-grained, Fig. 12)
};

struct EngineOptions {
  WgradMode wgrad_mode = WgradMode::kFillGemms;
  // Per-stage activation-memory budget (bytes). Deferring weight
  // gradients retains activations and activation gradients; before an op
  // that allocates would overflow the budget, the stage drains deferred W
  // work to free memory first — the paper's rule that forwards/backwards
  // proceed "as soon as there is enough memory" (§5, Figure 7b), and the
  // mechanism that keeps zero-bubble-style schedules at 1F1B-class
  // memory instead of deferring every W to the tail.
  // Empty = unlimited; otherwise one entry per stage (a 0 entry means
  // that stage is unbudgeted; negative entries throw CheckError). When
  // the deferred-W queue runs dry before enough memory is freed, the op
  // is admitted anyway and the violation is recorded in StageMetrics —
  // or, with strict_activation_budget, the engine throws.
  std::vector<Bytes> activation_budget;
  // Throw CheckError on an activation-budget violation instead of
  // recording it (see activation_budget above).
  bool strict_activation_budget = false;
  // Record the per-stage activation-memory series over time (enables
  // Figure-1-style memory plots; costs memory proportional to op count).
  bool record_memory_timeline = false;
  // Scripted fault plan (sim/fault.h). When set, compute and transfer
  // durations are priced time-aware through a FaultyCostModel wrapped
  // around the engine's cost model: stragglers dilate stage compute,
  // degraded links and retries stretch transfers, and fail-stop events
  // suspend every stage for detection + restart + replay of the work
  // lost since the plan's last checkpoint. The plan's windows are
  // exported in SimResult::fault_spans. Value-semantic: assigning a
  // FaultPlan copies it into shared storage.
  FaultPlanRef fault_plan;
  // Overlap the per-bucket data-parallel gradient all-reduce with the
  // pipeline. After the compute/transfer timeline is fixed, each stage's
  // gradient buckets (one kDpSync op per chunk, sched::DpSyncOps) launch
  // on that stage's DP comm stream as soon as their last gradient
  // producer completes, serialized per stream. Buckets only *read*
  // finished gradients and (under dp_link_shared) yield the fabric to
  // pipeline transfers, so the pipeline timeline is provably unchanged;
  // only how much sync hides inside it emerges. No-op when the cost
  // model does not price buckets (CostModel::DpSyncTime == 0).
  bool dp_overlap = false;
  // The DP ring shares the fabric with inter-stage pipeline transfers
  // (single PCIe/IB NIC per device, §3): while a pipeline transfer
  // touching a bucket's stage is in flight, that bucket's transmission
  // is suspended. DP always yields, so pipeline transfers are never
  // delayed — contention shows up purely as later sync completion.
  bool dp_link_shared = false;
};

// One point of a stage's activation-memory series.
struct MemoryPoint {
  Seconds time = 0;
  Bytes bytes = 0;  // resident activation (+act-grad) bytes after `time`
};

struct OpSpan {
  int stage = 0;
  sched::OpId op;
  Seconds start = 0;
  Seconds end = 0;
  bool is_transfer = false;
};

struct StageMetrics {
  Seconds busy = 0;             // sum of compute-op durations
  Bytes peak_activation = 0;    // activations + retained act-grads
  double bubble_ratio = 0;      // 1 - busy / makespan
  // Idle-gap decomposition of the stage's bubble, attributing lost time
  // to the pipeline phase it falls in (warmup + steady + drain ==
  // makespan − busy). This is what makes rebalancing gains attributable:
  // a straggler inflates the *steady* gaps of its neighbours, while a
  // bad in-flight cap shows up as warmup/drain.
  Seconds warmup_idle = 0;      // before the stage's first compute op
  Seconds steady_idle = 0;      // gaps between its first and last compute op
  Seconds drain_idle = 0;       // after its last compute op
  // Activation-budget violations: ops admitted after the deferred-W
  // queue ran dry with the stage still over budget.
  int budget_violations = 0;
  Bytes budget_overflow_bytes = 0;  // worst overshoot past the budget
  // Wall time this stage's DP comm stream spent on gradient buckets
  // (includes fabric-contention stretch; 0 unless dp_overlap ran).
  Seconds dp_sync = 0;
};

// Data-parallel gradient-sync accounting (all zero unless
// EngineOptions::dp_overlap is set and the cost model prices buckets).
// Invariant: exposed + hidden == serialized, with both terms >= 0 —
// every bucket's dependencies complete by the makespan, so sync work
// past the makespan runs gap-free and the tail can never exceed the
// serialized total.
struct DpSyncStats {
  // Added iteration time if sync ran back-to-back after the pipeline
  // flush instead: max over stages of the stage's summed bucket cost
  // (stages' DP groups all-reduce concurrently).
  Seconds serialized = 0;
  Seconds hidden = 0;      // portion absorbed inside pipeline bubbles
  Seconds exposed = 0;     // tail past the pipeline makespan
  Seconds last_end = 0;    // completion instant of the last bucket
  int buckets = 0;         // buckets scheduled across all stages
};

struct SimResult {
  Seconds makespan = 0;
  double bubble_ratio = 0;      // mean of per-stage bubble ratios
  Bytes peak_activation = 0;    // max over stages
  int budget_violations = 0;    // total over stages
  std::vector<StageMetrics> stages;
  // Overlapped-DP-sync accounting (see DpSyncStats).
  DpSyncStats dp;
  // Compute spans + transfers; kDpSync bucket spans appear here with
  // is_transfer == true when dp_overlap ran.
  std::vector<OpSpan> timeline;
  // Fault windows applied to this run (only when fault_plan is set).
  std::vector<FaultSpan> fault_spans;
  // Per-stage memory series (only when record_memory_timeline is set).
  std::vector<std::vector<MemoryPoint>> memory_timeline;
};

// Runs the schedule to completion. The schedule must validate; passing an
// invalid schedule throws CheckError.
SimResult Simulate(const sched::Schedule& schedule, const CostModel& costs,
                   const EngineOptions& options = {});

}  // namespace mepipe::sim

#endif  // MEPIPE_SIM_ENGINE_H_
