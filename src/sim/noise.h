// Measurement-noise wrapper for cost models.
//
// Real iterations jitter (kernel scheduling, NCCL, host preemption); the
// paper therefore runs 100 iterations and averages the last 10 (§7.1).
// NoisyCostModel perturbs every compute/transfer duration with seeded
// lognormal noise so that experiment harnesses can reproduce the same
// measure-many-iterations protocol and report dispersion.
#ifndef MEPIPE_SIM_NOISE_H_
#define MEPIPE_SIM_NOISE_H_

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "sim/cost_model.h"

namespace mepipe::sim {

class NoisyCostModel : public WrappingCostModel {
 public:
  // `sigma` is the lognormal shape parameter (~relative std-dev; 0.03 ≈
  // 3% duration jitter); must be >= 0. Each instance is an independent
  // "iteration": reseed (or construct anew) per iteration to draw fresh
  // noise.
  //
  // Holds `base` by reference: the base model must outlive this wrapper.
  // In particular, never construct one from a temporary —
  //   NoisyCostModel bad(UniformCostModel(...), 0.03, 1);  // dangling!
  // Prefer `CostModelStack stack(base); stack.Noisy(0.03, 1);`, which
  // owns the wrapper and pins the lifetime structurally.
  NoisyCostModel(const CostModel& base, double sigma, std::uint64_t seed)
      : WrappingCostModel(base), sigma_(sigma), seed_(seed) {
    MEPIPE_CHECK_GE(sigma, 0.0) << "noise sigma must be non-negative";
  }

  Seconds ComputeTime(const sched::OpId& op) const override {
    return base().ComputeTime(op) * Multiplier(op, /*salt=*/0x9e3779b9);
  }
  Seconds TransferTime(const sched::OpId& producer) const override {
    return base().TransferTime(producer) * Multiplier(producer, /*salt=*/0x85ebca6b);
  }
  // DP sync rides the same NCCL rings real jitter hits; perturb it like
  // any other comm op so the overlap window sees dispersion too.
  Seconds DpSyncTime(const sched::OpId& bucket) const override {
    return base().DpSyncTime(bucket) * Multiplier(bucket, /*salt=*/0xc2b2ae35);
  }

 private:
  // Deterministic per-op multiplier: the same op always draws the same
  // noise within one iteration (ops may be priced repeatedly). A cheap
  // splitmix64 hash mix replaces the former per-call std::mt19937_64
  // construction — same determinism guarantee at a fraction of the cost,
  // and independent of the standard library's distribution internals.
  double Multiplier(const sched::OpId& op, std::uint64_t salt) const {
    std::uint64_t key = seed_ ^ salt;
    key = key * 0x100000001b3ULL ^ sched::OpIdHash{}(op);
    return std::exp(sigma_ * GaussianFromKey(key));
  }

  double sigma_;
  std::uint64_t seed_;
};

// Fluent CostModelStack layer (declared in sim/cost_model.h).
inline CostModelStack& CostModelStack::Noisy(double sigma, std::uint64_t seed) {
  return Wrap<NoisyCostModel>(sigma, seed);
}

}  // namespace mepipe::sim

#endif  // MEPIPE_SIM_NOISE_H_
