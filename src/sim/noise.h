// Measurement-noise wrapper for cost models.
//
// Real iterations jitter (kernel scheduling, NCCL, host preemption); the
// paper therefore runs 100 iterations and averages the last 10 (§7.1).
// NoisyCostModel perturbs every compute/transfer duration with seeded
// lognormal noise so that experiment harnesses can reproduce the same
// measure-many-iterations protocol and report dispersion.
#ifndef MEPIPE_SIM_NOISE_H_
#define MEPIPE_SIM_NOISE_H_

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "sim/cost_model.h"

namespace mepipe::sim {

class NoisyCostModel : public CostModel {
 public:
  // `sigma` is the lognormal shape parameter (~relative std-dev; 0.03 ≈
  // 3% duration jitter); must be >= 0. Each instance is an independent
  // "iteration": reseed (or construct anew) per iteration to draw fresh
  // noise.
  //
  // Holds `base` by reference: the base model must outlive this wrapper.
  // In particular, never construct one from a temporary —
  //   NoisyCostModel bad(UniformCostModel(...), 0.03, 1);  // dangling!
  NoisyCostModel(const CostModel& base, double sigma, std::uint64_t seed)
      : base_(base), sigma_(sigma), seed_(seed) {
    MEPIPE_CHECK_GE(sigma, 0.0) << "noise sigma must be non-negative";
  }

  Seconds ComputeTime(const sched::OpId& op) const override {
    return base_.ComputeTime(op) * Multiplier(op, /*salt=*/0x9e3779b9);
  }
  Seconds TransferTime(const sched::OpId& producer) const override {
    return base_.TransferTime(producer) * Multiplier(producer, /*salt=*/0x85ebca6b);
  }
  Bytes ActivationBytes(const sched::OpId& forward) const override {
    return base_.ActivationBytes(forward);
  }
  Bytes ActGradBytes(const sched::OpId& backward) const override {
    return base_.ActGradBytes(backward);
  }
  int WeightGradGemmCount(const sched::OpId& wgrad) const override {
    return base_.WeightGradGemmCount(wgrad);
  }

 private:
  // Deterministic per-op multiplier: the same op always draws the same
  // noise within one iteration (ops may be priced repeatedly). A cheap
  // splitmix64 hash mix replaces the former per-call std::mt19937_64
  // construction — same determinism guarantee at a fraction of the cost,
  // and independent of the standard library's distribution internals.
  double Multiplier(const sched::OpId& op, std::uint64_t salt) const {
    std::uint64_t key = seed_ ^ salt;
    key = key * 0x100000001b3ULL ^ sched::OpIdHash{}(op);
    return std::exp(sigma_ * GaussianFromKey(key));
  }

  const CostModel& base_;
  double sigma_;
  std::uint64_t seed_;
};

}  // namespace mepipe::sim

#endif  // MEPIPE_SIM_NOISE_H_
