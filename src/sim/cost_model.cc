#include "sim/cost_model.h"

#include "common/check.h"

namespace mepipe::sim {

Seconds UniformCostModel::ComputeTime(const sched::OpId& op) const {
  switch (op.kind) {
    case sched::OpKind::kForward:
      return f_;
    case sched::OpKind::kBackward:
      return b_;
    case sched::OpKind::kWeightGrad:
      return w_;
    case sched::OpKind::kWeightGradGemm:
      return w_ / static_cast<double>(wgrad_gemms_);
    case sched::OpKind::kDpSync:
      return dp_sync_;  // comm op; priced via DpSyncTime in the engine
  }
  return 0.0;
}

Seconds UniformCostModel::TransferTime(const sched::OpId&) const { return transfer_; }

Bytes UniformCostModel::ActivationBytes(const sched::OpId&) const { return act_bytes_; }

Bytes UniformCostModel::ActGradBytes(const sched::OpId&) const { return act_grad_bytes_; }

int UniformCostModel::WeightGradGemmCount(const sched::OpId&) const {
  MEPIPE_CHECK_GE(wgrad_gemms_, 1);
  return wgrad_gemms_;
}

Seconds UniformCostModel::DpSyncTime(const sched::OpId&) const { return dp_sync_; }

}  // namespace mepipe::sim
