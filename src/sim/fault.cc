#include "sim/fault.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/format.h"

namespace mepipe::sim {
namespace {

// Sorted-window invariant checker shared by stragglers and link degrades.
template <typename Event>
void CheckDisjoint(std::vector<Event> events, const char* what) {
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.begin < b.begin; });
  for (std::size_t i = 1; i < events.size(); ++i) {
    MEPIPE_CHECK_LE(events[i - 1].end, events[i].begin)
        << "overlapping " << what << " windows at t=" << events[i].begin;
  }
}

}  // namespace

bool FaultPlan::empty() const {
  return stragglers.empty() && link_degrades.empty() && transfer_retries.empty() &&
         fail_stops.empty();
}

bool FaultPlanRef::empty() const { return plan_ == nullptr || plan_->empty(); }

void FaultPlan::Validate(int stages) const {
  for (const StragglerFault& s : stragglers) {
    MEPIPE_CHECK(s.stage >= 0 && s.stage < stages) << "straggler stage " << s.stage;
    MEPIPE_CHECK_LT(s.begin, s.end) << "straggler window";
    MEPIPE_CHECK_GE(s.begin, 0.0);
    MEPIPE_CHECK_GE(s.slowdown, 1.0) << "straggler slowdown must be >= 1";
  }
  for (int stage = 0; stage < stages; ++stage) {
    std::vector<StragglerFault> mine;
    for (const StragglerFault& s : stragglers) {
      if (s.stage == stage) {
        mine.push_back(s);
      }
    }
    CheckDisjoint(std::move(mine), "straggler");
  }
  for (const LinkDegradeFault& d : link_degrades) {
    MEPIPE_CHECK(d.from >= 0 && d.from < stages) << "degrade link from " << d.from;
    MEPIPE_CHECK(d.to >= 0 && d.to < stages) << "degrade link to " << d.to;
    MEPIPE_CHECK_NE(d.from, d.to);
    MEPIPE_CHECK_LT(d.begin, d.end) << "degrade window";
    MEPIPE_CHECK_GE(d.begin, 0.0);
    MEPIPE_CHECK_GE(d.factor, 1.0) << "degrade factor must be >= 1";
  }
  for (const LinkDegradeFault& d : link_degrades) {
    std::vector<LinkDegradeFault> mine;
    for (const LinkDegradeFault& other : link_degrades) {
      if (other.from == d.from && other.to == d.to) {
        mine.push_back(other);
      }
    }
    CheckDisjoint(std::move(mine), "link-degrade");
  }
  for (const TransferRetryFault& r : transfer_retries) {
    MEPIPE_CHECK(r.from >= 0 && r.from < stages) << "retry link from " << r.from;
    MEPIPE_CHECK(r.to >= 0 && r.to < stages) << "retry link to " << r.to;
    MEPIPE_CHECK_LT(r.begin, r.end) << "retry window";
    MEPIPE_CHECK_GE(r.begin, 0.0);
    MEPIPE_CHECK_GE(r.retries, 1);
    MEPIPE_CHECK_GE(r.backoff, 0.0);
  }
  for (const FailStopFault& f : fail_stops) {
    MEPIPE_CHECK(f.stage >= 0 && f.stage < stages) << "fail-stop stage " << f.stage;
    MEPIPE_CHECK_GE(f.time, 0.0);
    MEPIPE_CHECK_GE(f.detection_delay, 0.0);
    MEPIPE_CHECK_GE(f.restart_time, 0.0);
    MEPIPE_CHECK_GE(f.repair_time, 0.0);
  }
  for (Seconds c : checkpoints) {
    MEPIPE_CHECK_GE(c, 0.0) << "checkpoint time";
  }
  for (Seconds s : sync_points) {
    MEPIPE_CHECK_GE(s, 0.0) << "sync-point time";
  }
}

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kLinkDegrade: return "link-degrade";
    case FaultKind::kTransferRetry: return "transfer-retry";
    case FaultKind::kFailStop: return "fail-stop";
    case FaultKind::kReplan: return "replan";
    case FaultKind::kReshard: return "reshard";
    case FaultKind::kRepair: return "repair";
  }
  return "?";
}

const char* ToString(RestartScope scope) {
  switch (scope) {
    case RestartScope::kFullPipeline: return "full-pipeline";
    case RestartScope::kDpReplicaLocal: return "dp-replica-local";
  }
  return "?";
}

FaultyCostModel::FaultyCostModel(const CostModel& base, FaultPlanRef plan_ref, int stages)
    : WrappingCostModel(base), plan_(std::move(plan_ref)) {
  const FaultPlan& plan = *plan_;  // throws on an empty ref
  plan.Validate(stages);

  stage_windows_.resize(static_cast<std::size_t>(stages));
  for (const StragglerFault& s : plan.stragglers) {
    stage_windows_[static_cast<std::size_t>(s.stage)].push_back(
        {s.begin, s.end, s.slowdown});
  }
  for (auto& windows : stage_windows_) {
    std::sort(windows.begin(), windows.end(),
              [](const Window& a, const Window& b) { return a.begin < b.begin; });
  }
  for (const LinkDegradeFault& d : plan.link_degrades) {
    auto it = std::find_if(link_windows_.begin(), link_windows_.end(),
                           [&](const auto& entry) {
                             return entry.first == std::pair<int, int>{d.from, d.to};
                           });
    if (it == link_windows_.end()) {
      link_windows_.push_back({{d.from, d.to}, {}});
      it = std::prev(link_windows_.end());
    }
    it->second.push_back({d.begin, d.end, d.factor});
  }
  for (auto& [link, windows] : link_windows_) {
    std::sort(windows.begin(), windows.end(),
              [](const Window& a, const Window& b) { return a.begin < b.begin; });
  }

  // Derive the global downtime windows. Fail-stop times are progress
  // instants; each failure pushes everything after it by its own
  // detection + restart + replay, so wall-clock begins accumulate the
  // lengths of the earlier windows. Under kDpReplicaLocal the restore
  // target additionally includes the DP sync points: only the lost
  // replica replays (survivors idle for the same window), so the replay
  // reaches back only to the most recent of checkpoint and sync point.
  std::vector<Seconds> ckpts = plan.checkpoints;
  ckpts.push_back(0.0);
  if (plan.restart_scope == RestartScope::kDpReplicaLocal) {
    ckpts.insert(ckpts.end(), plan.sync_points.begin(), plan.sync_points.end());
  }
  std::sort(ckpts.begin(), ckpts.end());
  std::vector<FailStopFault> fails = plan.fail_stops;
  std::sort(fails.begin(), fails.end(),
            [](const FailStopFault& a, const FailStopFault& b) { return a.time < b.time; });
  Seconds offset = 0;
  for (const FailStopFault& f : fails) {
    Seconds last_ckpt = 0;
    for (Seconds c : ckpts) {
      if (c <= f.time) {
        last_ckpt = c;
      } else {
        break;
      }
    }
    const Seconds lost = f.time - last_ckpt;
    const Seconds begin = f.time + offset;
    const Seconds length = f.detection_delay + f.repair_time + f.restart_time + lost;
    downtimes_.push_back({begin, begin + length, f.stage, lost, plan.restart_scope});
    offset += length;
  }
}

Seconds FaultyCostModel::NextUpTime(Seconds t) const {
  for (const Downtime& d : downtimes_) {
    if (t < d.begin) {
      break;
    }
    if (t < d.end) {
      t = d.end;
    }
  }
  return t;
}

Seconds FaultyCostModel::AdvanceWork(const std::vector<Window>& windows, Seconds start,
                                     Seconds work) const {
  Seconds t = NextUpTime(start);
  double remaining = work;
  for (int guard = 0;; ++guard) {
    MEPIPE_CHECK_LT(guard, 1 << 20) << "fault plan produced unbounded execution";
    double dilation = 1.0;
    Seconds boundary = std::numeric_limits<Seconds>::infinity();
    for (const Window& w : windows) {
      if (t < w.begin) {
        boundary = w.begin;  // windows sorted: first upcoming one
        break;
      }
      if (t < w.end) {
        dilation = w.dilation;
        boundary = w.end;
        break;
      }
    }
    for (const Downtime& d : downtimes_) {
      if (t < d.begin) {
        boundary = std::min(boundary, d.begin);
        break;
      }
    }
    const Seconds finish = t + remaining * dilation;
    if (finish <= boundary) {
      return finish;
    }
    remaining -= (boundary - t) / dilation;
    t = NextUpTime(boundary);
  }
}

Seconds FaultyCostModel::ComputeEndAt(int stage, const sched::OpId& op, Seconds start) const {
  MEPIPE_CHECK(stage >= 0 && stage < static_cast<int>(stage_windows_.size()));
  return AdvanceWork(stage_windows_[static_cast<std::size_t>(stage)], start,
                     base().ComputeTime(op));
}

Seconds FaultyCostModel::TransferEndAt(int from, int to, const sched::OpId& producer,
                                       Seconds start) const {
  static const std::vector<Window> kNoWindows;
  const std::vector<Window>* windows = &kNoWindows;
  for (const auto& [link, entry] : link_windows_) {
    if (link == std::pair<int, int>{from, to}) {
      windows = &entry;
      break;
    }
  }
  const Seconds duration = base().TransferTime(producer);
  Seconds t = NextUpTime(start);
  for (const TransferRetryFault& r : plan_->transfer_retries) {
    if (r.from != from || r.to != to || t < r.begin || t >= r.end) {
      continue;
    }
    Seconds backoff = r.backoff;
    for (int attempt = 0; attempt < r.retries; ++attempt) {
      t = AdvanceWork(*windows, t, duration);  // the failed transmission
      t = NextUpTime(t + backoff);             // wall-clock backoff wait
      backoff *= 2;
    }
    break;  // one retry window governs a given entry instant
  }
  return AdvanceWork(*windows, t, duration);
}

std::vector<FaultSpan> FaultyCostModel::Spans() const {
  std::vector<FaultSpan> spans;
  for (const StragglerFault& s : plan_->stragglers) {
    spans.push_back({FaultKind::kStraggler, s.stage, -1, -1, s.begin, s.end,
                     StrFormat("stage %d x%.2f slower", s.stage, s.slowdown)});
  }
  for (const LinkDegradeFault& d : plan_->link_degrades) {
    spans.push_back({FaultKind::kLinkDegrade, -1, d.from, d.to, d.begin, d.end,
                     StrFormat("link %d->%d x%.2f slower", d.from, d.to, d.factor)});
  }
  for (const TransferRetryFault& r : plan_->transfer_retries) {
    spans.push_back({FaultKind::kTransferRetry, -1, r.from, r.to, r.begin, r.end,
                     StrFormat("link %d->%d %d retries", r.from, r.to, r.retries)});
  }
  for (const Downtime& d : downtimes_) {
    const char* replayer =
        d.scope == RestartScope::kDpReplicaLocal ? "lost replica replays" : "replay";
    spans.push_back({FaultKind::kFailStop, d.stage, -1, -1, d.begin, d.end,
                     StrFormat("stage %d lost: %s %.1fs after restart", d.stage, replayer,
                               d.lost)});
  }
  std::sort(spans.begin(), spans.end(),
            [](const FaultSpan& a, const FaultSpan& b) { return a.begin < b.begin; });
  return spans;
}

}  // namespace mepipe::sim
