// The cost interface the execution engine charges schedules against.
// Implementations map ops to durations and memory footprints; the
// production model (core/training_cost.h) derives them from the
// transformer FLOPs model, the operator-efficiency curves, and the
// cluster's links. A uniform model is provided for tests and analytic
// cross-checks.
#ifndef MEPIPE_SIM_COST_MODEL_H_
#define MEPIPE_SIM_COST_MODEL_H_

#include "common/units.h"
#include "sched/op.h"

namespace mepipe::sim {

class CostModel {
 public:
  virtual ~CostModel() = default;

  // Duration of one compute op (F, B, W, or a single W GEMM).
  virtual Seconds ComputeTime(const sched::OpId& op) const = 0;

  // Duration of the inter-stage transfer of `producer`'s output
  // (activations for F, activation gradients for B).
  virtual Seconds TransferTime(const sched::OpId& producer) const = 0;

  // Activation bytes retained when this forward completes.
  virtual Bytes ActivationBytes(const sched::OpId& forward) const = 0;

  // Activation-gradient bytes retained between a split backward and its
  // weight-gradient computation.
  virtual Bytes ActGradBytes(const sched::OpId& backward) const = 0;

  // Number of individual GEMMs the weight-gradient computation of this
  // (micro, slice, chunk) decomposes into (§5). Must be >= 1.
  virtual int WeightGradGemmCount(const sched::OpId& wgrad) const = 0;
};

// Uniform costs: F = `f`, B = `b`, W = `w` seconds, transfers = `transfer`
// seconds, one activation unit per forward. Used by tests to compare the
// engine against Table 3's closed forms (which assume balanced stages and
// free communication).
class UniformCostModel : public CostModel {
 public:
  UniformCostModel(Seconds f, Seconds b, Seconds w, Seconds transfer, Bytes act_bytes = 1,
                   Bytes act_grad_bytes = 0, int wgrad_gemms = 1)
      : f_(f), b_(b), w_(w), transfer_(transfer), act_bytes_(act_bytes),
        act_grad_bytes_(act_grad_bytes), wgrad_gemms_(wgrad_gemms) {}

  Seconds ComputeTime(const sched::OpId& op) const override;
  Seconds TransferTime(const sched::OpId& producer) const override;
  Bytes ActivationBytes(const sched::OpId& forward) const override;
  Bytes ActGradBytes(const sched::OpId& backward) const override;
  int WeightGradGemmCount(const sched::OpId& wgrad) const override;

 private:
  Seconds f_, b_, w_, transfer_;
  Bytes act_bytes_, act_grad_bytes_;
  int wgrad_gemms_;
};

}  // namespace mepipe::sim

#endif  // MEPIPE_SIM_COST_MODEL_H_
