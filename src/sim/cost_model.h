// The cost interface the execution engine charges schedules against.
// Implementations map ops to durations and memory footprints; the
// production model (core/training_cost.h) derives them from the
// transformer FLOPs model, the operator-efficiency curves, and the
// cluster's links. A uniform model is provided for tests and analytic
// cross-checks.
//
// Derived behaviors (measurement noise, fault injection, straggler
// rebalancing) are expressed as *decorators* over a base model:
// WrappingCostModel forwards every query to the wrapped model so a
// decorator overrides only what it perturbs, and CostModelStack owns a
// chain of decorators behind a single CostModel reference — the one
// object engine/iteration/planner code takes, instead of bespoke
// adapter plumbing per combination.
#ifndef MEPIPE_SIM_COST_MODEL_H_
#define MEPIPE_SIM_COST_MODEL_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sched/op.h"

namespace mepipe::sim {

struct FaultPlan;  // sim/fault.h
class FaultPlanRef;

class CostModel {
 public:
  virtual ~CostModel() = default;

  // Duration of one compute op (F, B, W, or a single W GEMM).
  virtual Seconds ComputeTime(const sched::OpId& op) const = 0;

  // Duration of the inter-stage transfer of `producer`'s output
  // (activations for F, activation gradients for B).
  virtual Seconds TransferTime(const sched::OpId& producer) const = 0;

  // Activation bytes retained when this forward completes.
  virtual Bytes ActivationBytes(const sched::OpId& forward) const = 0;

  // Activation-gradient bytes retained between a split backward and its
  // weight-gradient computation.
  virtual Bytes ActGradBytes(const sched::OpId& backward) const = 0;

  // Number of individual GEMMs the weight-gradient computation of this
  // (micro, slice, chunk) decomposes into (§5). Must be >= 1.
  virtual int WeightGradGemmCount(const sched::OpId& wgrad) const = 0;

  // Duration of the data-parallel gradient all-reduce of one bucket
  // (kDpSync op; the bucket is `op.chunk`'s gradients). 0 means the
  // model does not price DP sync per bucket — the engine then has
  // nothing to overlap and EngineOptions::dp_overlap is a no-op.
  virtual Seconds DpSyncTime(const sched::OpId& bucket) const {
    (void)bucket;
    return 0.0;
  }
};

// Uniform costs: F = `f`, B = `b`, W = `w` seconds, transfers = `transfer`
// seconds, one activation unit per forward. Used by tests to compare the
// engine against Table 3's closed forms (which assume balanced stages and
// free communication). `dp_sync` prices one gradient bucket (per chunk).
class UniformCostModel : public CostModel {
 public:
  UniformCostModel(Seconds f, Seconds b, Seconds w, Seconds transfer, Bytes act_bytes = 1,
                   Bytes act_grad_bytes = 0, int wgrad_gemms = 1, Seconds dp_sync = 0)
      : f_(f), b_(b), w_(w), transfer_(transfer), act_bytes_(act_bytes),
        act_grad_bytes_(act_grad_bytes), wgrad_gemms_(wgrad_gemms), dp_sync_(dp_sync) {}

  Seconds ComputeTime(const sched::OpId& op) const override;
  Seconds TransferTime(const sched::OpId& producer) const override;
  Bytes ActivationBytes(const sched::OpId& forward) const override;
  Bytes ActGradBytes(const sched::OpId& backward) const override;
  int WeightGradGemmCount(const sched::OpId& wgrad) const override;
  Seconds DpSyncTime(const sched::OpId& bucket) const override;

 private:
  Seconds f_, b_, w_, transfer_;
  Bytes act_bytes_, act_grad_bytes_;
  int wgrad_gemms_;
  Seconds dp_sync_;
};

// Decorator base: forwards every query to the wrapped model. Concrete
// decorators (NoisyCostModel, FaultyCostModel, RebalancedCostModel)
// derive from this and override only the queries they perturb.
//
// Holds `base` by reference: the wrapped model must outlive the wrapper.
// Prefer building chains through CostModelStack, which owns the
// intermediate layers and makes the lifetime structural.
class WrappingCostModel : public CostModel {
 public:
  explicit WrappingCostModel(const CostModel& base) : base_(base) {}

  Seconds ComputeTime(const sched::OpId& op) const override { return base_.ComputeTime(op); }
  Seconds TransferTime(const sched::OpId& producer) const override {
    return base_.TransferTime(producer);
  }
  Bytes ActivationBytes(const sched::OpId& forward) const override {
    return base_.ActivationBytes(forward);
  }
  Bytes ActGradBytes(const sched::OpId& backward) const override {
    return base_.ActGradBytes(backward);
  }
  int WeightGradGemmCount(const sched::OpId& wgrad) const override {
    return base_.WeightGradGemmCount(wgrad);
  }
  Seconds DpSyncTime(const sched::OpId& bucket) const override {
    return base_.DpSyncTime(bucket);
  }

 protected:
  const CostModel& base() const { return base_; }

 private:
  const CostModel& base_;
};

// Owning builder for decorator chains:
//
//   sim::CostModelStack stack(costs);
//   stack.Noisy(0.03, seed)                         // sim/noise.h
//        .Faulty(plan, stages)                      // sim/fault.h
//        .Wrap<core::RebalancedCostModel>(problem, plan);
//   Simulate(schedule, stack.model(), engine);
//
// Layers apply bottom-up: the first call wraps the base, later calls
// wrap the result. The stack owns every layer it builds (only the
// original base must outlive it), so the chain has value-like lifetime
// instead of a web of must-outlive references.
//
// Order matters where the math does not commute: Faulty() integrates
// straggler windows over the durations it wraps, so Noisy-then-Faulty
// dilates the *jittered* durations (the paper's measurement model),
// while Faulty's time-aware queries applied before scaling layers would
// misplace window boundaries. Multiplicative rescalers (Noisy,
// Rebalanced) commute with each other. See test_cost_model_stack.cc.
class CostModelStack {
 public:
  explicit CostModelStack(const CostModel& base) : top_(&base) {}

  CostModelStack(const CostModelStack&) = delete;
  CostModelStack& operator=(const CostModelStack&) = delete;
  CostModelStack(CostModelStack&&) = default;
  CostModelStack& operator=(CostModelStack&&) = default;

  // Pushes decorator `M`, constructed as M(current_top, args...). Works
  // for any WrappingCostModel (or CostModel taking a base reference
  // first), including ones from layers sim cannot see (core).
  template <typename M, typename... Args>
  CostModelStack& Wrap(Args&&... args) {
    auto layer = std::make_unique<M>(*top_, std::forward<Args>(args)...);
    top_ = layer.get();
    layers_.push_back(std::move(layer));
    return *this;
  }

  // Fluent names for the in-tree decorators. Defined in the headers
  // declaring the decorator (sim/noise.h, sim/fault.h) — include those
  // to use them.
  CostModelStack& Noisy(double sigma, std::uint64_t seed);
  CostModelStack& Faulty(FaultPlanRef plan, int stages);

  // The top of the stack (the base model when nothing was wrapped).
  const CostModel& model() const { return *top_; }
  int depth() const { return static_cast<int>(layers_.size()); }

 private:
  const CostModel* top_;
  std::vector<std::unique_ptr<const CostModel>> layers_;
};

}  // namespace mepipe::sim

#endif  // MEPIPE_SIM_COST_MODEL_H_
