// Minimal CSV writer for bench outputs (feeds the paper-figure plotting
// pipeline; every bench also prints a human-readable table), plus the
// per-stage metrics export used to attribute rebalancing gains.
#ifndef MEPIPE_TRACE_CSV_H_
#define MEPIPE_TRACE_CSV_H_

#include <string>
#include <vector>

#include "sim/engine.h"

namespace mepipe::trace {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // RFC-4180-style serialization (quotes fields containing , " or \n).
  std::string ToString() const;
  void WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Per-stage metrics of a simulated run as CSV, one row per stage:
// stage,busy_s,warmup_idle_s,steady_idle_s,drain_idle_s,bubble_ratio,
// peak_activation_bytes,budget_violations. The idle columns decompose
// each stage's bubble into warmup/steady/drain phases (see
// sim::StageMetrics) so schedule changes — rebalancing in particular —
// can be attributed to the phase they improve.
std::string StageMetricsCsv(const sim::SimResult& result);
void WriteStageMetricsCsv(const sim::SimResult& result, const std::string& path);

}  // namespace mepipe::trace

#endif  // MEPIPE_TRACE_CSV_H_
