// Minimal CSV writer for bench outputs (feeds the paper-figure plotting
// pipeline; every bench also prints a human-readable table).
#ifndef MEPIPE_TRACE_CSV_H_
#define MEPIPE_TRACE_CSV_H_

#include <string>
#include <vector>

namespace mepipe::trace {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // RFC-4180-style serialization (quotes fields containing , " or \n).
  std::string ToString() const;
  void WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mepipe::trace

#endif  // MEPIPE_TRACE_CSV_H_
