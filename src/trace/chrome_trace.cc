#include "trace/chrome_trace.h"

#include <fstream>

#include "common/check.h"
#include "common/format.h"

namespace mepipe::trace {

namespace {

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string ToChromeTraceJson(const sim::SimResult& result) {
  return ToChromeTraceJson(result, {});
}

std::string ToChromeTraceJson(const sim::SimResult& result,
                              const std::vector<std::string>& stage_labels) {
  std::string out = "[\n";
  bool first = true;
  for (std::size_t stage = 0; stage < stage_labels.size(); ++stage) {
    if (stage_labels[stage].empty()) {
      continue;
    }
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += StrFormat(
        "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": %d, "
        "\"args\": {\"name\": \"%s\"}}",
        static_cast<int>(stage), EscapeJson(stage_labels[stage]).c_str());
  }
  for (const sim::OpSpan& span : result.timeline) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += StrFormat(
        "  {\"name\": \"%s\", \"ph\": \"X\", \"pid\": %d, \"tid\": %d, "
        "\"ts\": %.3f, \"dur\": %.3f}",
        ToString(span.op).c_str(), span.is_transfer ? 1 : 0, span.stage,
        ToMicroseconds(span.start), ToMicroseconds(span.end - span.start));
  }
  // Fault windows (engine runs with a fault plan) on their own track
  // group: tid = affected stage, or the link's source stage.
  for (const sim::FaultSpan& span : result.fault_spans) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    const int tid = span.stage >= 0 ? span.stage : span.from;
    out += StrFormat(
        "  {\"name\": \"%s: %s\", \"ph\": \"X\", \"pid\": 2, \"tid\": %d, "
        "\"ts\": %.3f, \"dur\": %.3f}",
        ToString(span.kind), EscapeJson(span.label).c_str(), tid, ToMicroseconds(span.begin),
        ToMicroseconds(span.end - span.begin));
  }
  out += "\n]\n";
  return out;
}

std::string ToChromeTraceJson(const std::vector<sim::FaultSpan>& spans) {
  sim::SimResult shell;
  shell.fault_spans = spans;
  return ToChromeTraceJson(shell, {});
}

std::string ToChromeTraceJson(const std::vector<JobTimeline>& jobs) {
  std::string out = "[\n";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += event;
  };
  for (const JobTimeline& job : jobs) {
    if (!job.name.empty()) {
      emit(StrFormat(
          "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, "
          "\"args\": {\"name\": \"%s\"}}",
          job.job_id, EscapeJson(job.name).c_str()));
    }
    for (const sim::OpSpan& span : job.result.timeline) {
      emit(StrFormat(
          "  {\"name\": \"%s\", \"ph\": \"X\", \"pid\": %d, \"tid\": %d, "
          "\"ts\": %.3f, \"dur\": %.3f}",
          ToString(span.op).c_str(), job.job_id,
          span.is_transfer ? 100 + span.stage : span.stage,
          ToMicroseconds(job.offset + span.start),
          ToMicroseconds(span.end - span.start)));
    }
    for (const sim::FaultSpan& span : job.result.fault_spans) {
      const int tid = span.stage >= 0 ? span.stage : span.from;
      emit(StrFormat(
          "  {\"name\": \"%s: %s\", \"ph\": \"X\", \"pid\": %d, \"tid\": %d, "
          "\"ts\": %.3f, \"dur\": %.3f}",
          ToString(span.kind), EscapeJson(span.label).c_str(), job.job_id, tid,
          ToMicroseconds(job.offset + span.begin),
          ToMicroseconds(span.end - span.begin)));
    }
  }
  out += "\n]\n";
  return out;
}

void WriteChromeTrace(const std::vector<JobTimeline>& jobs, const std::string& path) {
  std::ofstream file(path);
  MEPIPE_CHECK(file.good()) << "cannot open " << path;
  file << ToChromeTraceJson(jobs);
  MEPIPE_CHECK(file.good()) << "write to " << path << " failed";
}

void WriteChromeTrace(const std::vector<sim::FaultSpan>& spans, const std::string& path) {
  std::ofstream file(path);
  MEPIPE_CHECK(file.good()) << "cannot open " << path;
  file << ToChromeTraceJson(spans);
  MEPIPE_CHECK(file.good()) << "write to " << path << " failed";
}

void WriteChromeTrace(const sim::SimResult& result, const std::string& path) {
  WriteChromeTrace(result, {}, path);
}

void WriteChromeTrace(const sim::SimResult& result,
                      const std::vector<std::string>& stage_labels, const std::string& path) {
  std::ofstream file(path);
  MEPIPE_CHECK(file.good()) << "cannot open " << path;
  file << ToChromeTraceJson(result, stage_labels);
  MEPIPE_CHECK(file.good()) << "write to " << path << " failed";
}

}  // namespace mepipe::trace
