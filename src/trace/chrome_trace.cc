#include "trace/chrome_trace.h"

#include <fstream>

#include "common/check.h"
#include "common/format.h"

namespace mepipe::trace {

std::string ToChromeTraceJson(const sim::SimResult& result) {
  std::string out = "[\n";
  bool first = true;
  for (const sim::OpSpan& span : result.timeline) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += StrFormat(
        "  {\"name\": \"%s\", \"ph\": \"X\", \"pid\": %d, \"tid\": %d, "
        "\"ts\": %.3f, \"dur\": %.3f}",
        ToString(span.op).c_str(), span.is_transfer ? 1 : 0, span.stage,
        ToMicroseconds(span.start), ToMicroseconds(span.end - span.start));
  }
  // Fault windows (engine runs with a fault plan) on their own track
  // group: tid = affected stage, or the link's source stage.
  for (const sim::FaultSpan& span : result.fault_spans) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    const int tid = span.stage >= 0 ? span.stage : span.from;
    out += StrFormat(
        "  {\"name\": \"%s: %s\", \"ph\": \"X\", \"pid\": 2, \"tid\": %d, "
        "\"ts\": %.3f, \"dur\": %.3f}",
        ToString(span.kind), span.label.c_str(), tid, ToMicroseconds(span.begin),
        ToMicroseconds(span.end - span.begin));
  }
  out += "\n]\n";
  return out;
}

void WriteChromeTrace(const sim::SimResult& result, const std::string& path) {
  std::ofstream file(path);
  MEPIPE_CHECK(file.good()) << "cannot open " << path;
  file << ToChromeTraceJson(result);
  MEPIPE_CHECK(file.good()) << "write to " << path << " failed";
}

}  // namespace mepipe::trace
