// Chrome-trace (about://tracing / Perfetto) JSON export of simulated
// timelines, mirroring the profiler component of the paper's
// implementation (§6: "a profiler that measures the computation time").
#ifndef MEPIPE_TRACE_CHROME_TRACE_H_
#define MEPIPE_TRACE_CHROME_TRACE_H_

#include <string>

#include "sim/engine.h"

namespace mepipe::trace {

// Returns the timeline as a Chrome trace-event JSON document. Compute ops
// appear on per-stage tracks (pid=0, tid=stage); transfers on a parallel
// track group (pid=1).
std::string ToChromeTraceJson(const sim::SimResult& result);

// Writes the JSON to `path`. Throws CheckError on I/O failure.
void WriteChromeTrace(const sim::SimResult& result, const std::string& path);

}  // namespace mepipe::trace

#endif  // MEPIPE_TRACE_CHROME_TRACE_H_
