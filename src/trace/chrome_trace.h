// Chrome-trace (about://tracing / Perfetto) JSON export of simulated
// timelines, mirroring the profiler component of the paper's
// implementation (§6: "a profiler that measures the computation time").
#ifndef MEPIPE_TRACE_CHROME_TRACE_H_
#define MEPIPE_TRACE_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "sim/engine.h"

namespace mepipe::trace {

// Returns the timeline as a Chrome trace-event JSON document. Compute ops
// appear on per-stage tracks (pid=0, tid=stage); transfers on a parallel
// track group (pid=1).
std::string ToChromeTraceJson(const sim::SimResult& result);

// Same, with one annotation label per stage (e.g. the measured slowdown
// and the rebalanced layer/cap assignment, core/rebalance's
// RebalancePlan::StageLabels). Labels are emitted as thread_name
// metadata so Perfetto shows them on the stage tracks; an empty vector
// reduces to the plain export.
std::string ToChromeTraceJson(const sim::SimResult& result,
                              const std::vector<std::string>& stage_labels);

// Fault/elastic spans alone (no op timeline) — e.g. the elastic
// runtime's event log (core::ElasticMetrics::events) on the run's wall
// clock: the spans render on the pid=2 fault track group.
std::string ToChromeTraceJson(const std::vector<sim::FaultSpan>& spans);

// One job's simulated timeline inside a multi-job fleet view. `offset`
// shifts every span onto the cluster wall clock (the service's
// segment_start), so concurrently running jobs interleave correctly.
struct JobTimeline {
  int job_id = 0;     // becomes the Chrome trace pid
  std::string name;   // process_name metadata (e.g. the JobRequest name)
  Seconds offset = 0;
  sim::SimResult result;
};

// Interleaved multi-job export: pid = job_id (one process group per
// job), tid = stage for compute, 100+stage for transfers — the
// multi-session layout job-tagged OpIds (",j=N" in span names) pair
// with. Fault spans keep tid = stage inside the owning job's group.
std::string ToChromeTraceJson(const std::vector<JobTimeline>& jobs);

// Writes the JSON to `path`. Throws CheckError on I/O failure.
void WriteChromeTrace(const sim::SimResult& result, const std::string& path);
void WriteChromeTrace(const sim::SimResult& result,
                      const std::vector<std::string>& stage_labels, const std::string& path);
void WriteChromeTrace(const std::vector<sim::FaultSpan>& spans, const std::string& path);
void WriteChromeTrace(const std::vector<JobTimeline>& jobs, const std::string& path);

}  // namespace mepipe::trace

#endif  // MEPIPE_TRACE_CHROME_TRACE_H_
