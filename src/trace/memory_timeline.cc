#include "trace/memory_timeline.h"
#include <fstream>

#include <algorithm>

#include "common/check.h"
#include "common/format.h"
#include "trace/csv.h"

namespace mepipe::trace {

std::string MemoryTimelineCsv(const sim::SimResult& result) {
  MEPIPE_CHECK(!result.memory_timeline.empty())
      << "run the engine with record_memory_timeline=true";
  CsvWriter csv({"stage", "time_s", "bytes"});
  for (std::size_t stage = 0; stage < result.memory_timeline.size(); ++stage) {
    for (const sim::MemoryPoint& point : result.memory_timeline[stage]) {
      csv.AddRow({std::to_string(stage), StrFormat("%.6f", point.time),
                  std::to_string(point.bytes)});
    }
  }
  return csv.ToString();
}

void WriteMemoryTimelineCsv(const sim::SimResult& result, const std::string& path) {
  const std::string text = MemoryTimelineCsv(result);
  std::ofstream file(path);
  MEPIPE_CHECK(file.good()) << "cannot open " << path;
  file << text;
  MEPIPE_CHECK(file.good()) << "write to " << path << " failed";
}

std::string RenderMemorySparklines(const sim::SimResult& result, int columns) {
  MEPIPE_CHECK(!result.memory_timeline.empty())
      << "run the engine with record_memory_timeline=true";
  MEPIPE_CHECK_GT(columns, 0);
  if (result.makespan <= 0 || result.peak_activation <= 0) {
    return "(no memory activity)\n";
  }
  static constexpr char kLevels[] = " .:-=+*%#";
  constexpr int kNumLevels = static_cast<int>(sizeof(kLevels) - 2);
  std::string out;
  for (std::size_t stage = 0; stage < result.memory_timeline.size(); ++stage) {
    std::string row(static_cast<std::size_t>(columns), ' ');
    const auto& series = result.memory_timeline[stage];
    std::size_t cursor = 0;
    Bytes current = 0;
    for (int c = 0; c < columns; ++c) {
      const Seconds cell_time =
          result.makespan * (static_cast<double>(c) + 0.5) / static_cast<double>(columns);
      while (cursor < series.size() && series[cursor].time <= cell_time) {
        current = series[cursor].bytes;
        ++cursor;
      }
      const double fraction =
          static_cast<double>(current) / static_cast<double>(result.peak_activation);
      const int level = std::clamp(static_cast<int>(fraction * kNumLevels + 0.5), 0,
                                   kNumLevels);
      row[static_cast<std::size_t>(c)] = kLevels[level];
    }
    out += StrFormat("stage %zu |", stage) + row + "| peak " +
           FormatBytes(result.stages[stage].peak_activation) + "\n";
  }
  return out;
}

}  // namespace mepipe::trace
