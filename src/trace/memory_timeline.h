// Export and rendering of per-stage activation-memory series (engine
// runs with record_memory_timeline) — the data behind Figure-1-style
// memory plots.
#ifndef MEPIPE_TRACE_MEMORY_TIMELINE_H_
#define MEPIPE_TRACE_MEMORY_TIMELINE_H_

#include <string>

#include "sim/engine.h"

namespace mepipe::trace {

// CSV with columns stage,time_s,bytes — one row per change point.
// Throws CheckError when the result carries no memory timeline.
std::string MemoryTimelineCsv(const sim::SimResult& result);
void WriteMemoryTimelineCsv(const sim::SimResult& result, const std::string& path);

// One sparkline row per stage: resident activation memory over time,
// quantized into `columns` cells of ' ' (empty) through '#' (peak).
std::string RenderMemorySparklines(const sim::SimResult& result, int columns = 100);

}  // namespace mepipe::trace

#endif  // MEPIPE_TRACE_MEMORY_TIMELINE_H_
