// ASCII renderers for pipeline schedules and simulated timelines — the
// textual analogue of the paper's Figures 2-7 and 11-12.
#ifndef MEPIPE_TRACE_ASCII_H_
#define MEPIPE_TRACE_ASCII_H_

#include <string>
#include <vector>

#include "sched/schedule.h"
#include "sim/engine.h"

namespace mepipe::trace {

// Renders the program order of each stage as a compact token stream, e.g.
//   stage 0 | F0.0 F0.1 F1.0 B0.1 F1.1 B0.0 ...
// Tokens are K<micro>.<slice> (chunk shown as K<micro>.<slice>@<chunk>
// when v > 1).
std::string RenderScheduleOrders(const sched::Schedule& schedule);

// Renders a simulated timeline as one row per stage, quantizing time into
// `columns` character cells: F cells are the micro-batch digit, B cells
// letters, W cells '·', idle ' '. Gives the classic pipeline-diagram view
// of bubbles (Figures 2-7, 11, 12).
std::string RenderTimeline(const sim::SimResult& result, int stages, int columns = 120);

// Same, appending one annotation per stage after its row (e.g. measured
// slowdown + rebalanced layer/cap assignment). Labels beyond `stages`
// are ignored; missing or empty labels leave the row unannotated.
std::string RenderTimeline(const sim::SimResult& result, int stages, int columns,
                           const std::vector<std::string>& stage_labels);

}  // namespace mepipe::trace

#endif  // MEPIPE_TRACE_ASCII_H_
