#include "trace/ascii.h"

#include <algorithm>

#include "common/check.h"
#include "common/format.h"

namespace mepipe::trace {
namespace {

char ForwardCell(int micro) { return static_cast<char>('0' + micro % 10); }
char BackwardCell(int micro) { return static_cast<char>('a' + micro % 26); }

}  // namespace

std::string RenderScheduleOrders(const sched::Schedule& schedule) {
  std::string out = "schedule: " + schedule.method + "\n";
  const bool show_chunk = schedule.problem.virtual_chunks > 1;
  for (int stage = 0; stage < schedule.problem.stages; ++stage) {
    out += StrFormat("stage %d |", stage);
    for (const sched::OpId& op : schedule.stage_ops[static_cast<std::size_t>(stage)]) {
      std::string token = StrFormat(" %s%d.%d", ToString(op.kind), op.micro, op.slice);
      if (show_chunk) {
        token += StrFormat("@%d", op.chunk / schedule.problem.stages);
      }
      out += token;
    }
    out += '\n';
  }
  return out;
}

std::string RenderTimeline(const sim::SimResult& result, int stages, int columns) {
  return RenderTimeline(result, stages, columns, {});
}

std::string RenderTimeline(const sim::SimResult& result, int stages, int columns,
                           const std::vector<std::string>& stage_labels) {
  MEPIPE_CHECK_GT(columns, 0);
  MEPIPE_CHECK_GT(stages, 0);
  if (result.makespan <= 0) {
    return "(empty timeline)\n";
  }
  std::vector<std::string> rows(static_cast<std::size_t>(stages),
                                std::string(static_cast<std::size_t>(columns), ' '));
  const double scale = static_cast<double>(columns) / result.makespan;
  for (const sim::OpSpan& span : result.timeline) {
    if (span.is_transfer || span.stage < 0 || span.stage >= stages) {
      continue;
    }
    char cell = ' ';
    switch (span.op.kind) {
      case sched::OpKind::kForward:
        cell = ForwardCell(span.op.micro);
        break;
      case sched::OpKind::kBackward:
        cell = BackwardCell(span.op.micro);
        break;
      case sched::OpKind::kWeightGrad:
      case sched::OpKind::kWeightGradGemm:
        cell = '.';
        break;
      case sched::OpKind::kDpSync:
        cell = '~';  // unreachable: sync spans are transfers, skipped above
        break;
    }
    int begin = static_cast<int>(span.start * scale);
    int end = static_cast<int>(span.end * scale);
    begin = std::clamp(begin, 0, columns - 1);
    end = std::clamp(end, begin + 1, columns);
    for (int c = begin; c < end; ++c) {
      rows[static_cast<std::size_t>(span.stage)][static_cast<std::size_t>(c)] = cell;
    }
  }
  std::string out;
  for (int stage = 0; stage < stages; ++stage) {
    out += StrFormat("stage %d |", stage) + rows[static_cast<std::size_t>(stage)] + "|";
    if (static_cast<std::size_t>(stage) < stage_labels.size() &&
        !stage_labels[static_cast<std::size_t>(stage)].empty()) {
      out += " " + stage_labels[static_cast<std::size_t>(stage)];
    }
    out += '\n';
  }
  out += StrFormat("legend: digits = F (micro id), letters = B, '.' = W; makespan %s\n",
                   FormatSeconds(result.makespan).c_str());
  return out;
}

}  // namespace mepipe::trace
