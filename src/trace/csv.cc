#include "trace/csv.h"

#include <fstream>

#include "common/check.h"
#include "common/format.h"

namespace mepipe::trace {
namespace {

std::string EscapeField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvWriter::AddRow(std::vector<std::string> row) {
  MEPIPE_CHECK_EQ(row.size(), header_.size()) << "CSV row arity mismatch";
  rows_.push_back(std::move(row));
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto append = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += EscapeField(row[i]);
    }
    out += '\n';
  };
  append(header_);
  for (const auto& row : rows_) {
    append(row);
  }
  return out;
}

void CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream file(path);
  MEPIPE_CHECK(file.good()) << "cannot open " << path;
  file << ToString();
  MEPIPE_CHECK(file.good()) << "write to " << path << " failed";
}

std::string StageMetricsCsv(const sim::SimResult& result) {
  CsvWriter csv({"stage", "busy_s", "warmup_idle_s", "steady_idle_s", "drain_idle_s",
                 "bubble_ratio", "peak_activation_bytes", "budget_violations"});
  for (std::size_t stage = 0; stage < result.stages.size(); ++stage) {
    const sim::StageMetrics& m = result.stages[stage];
    csv.AddRow({std::to_string(stage), StrFormat("%.6f", m.busy),
                StrFormat("%.6f", m.warmup_idle), StrFormat("%.6f", m.steady_idle),
                StrFormat("%.6f", m.drain_idle), StrFormat("%.4f", m.bubble_ratio),
                std::to_string(m.peak_activation), std::to_string(m.budget_violations)});
  }
  return csv.ToString();
}

void WriteStageMetricsCsv(const sim::SimResult& result, const std::string& path) {
  std::ofstream file(path);
  MEPIPE_CHECK(file.good()) << "cannot open " << path;
  file << StageMetricsCsv(result);
  MEPIPE_CHECK(file.good()) << "write to " << path << " failed";
}

}  // namespace mepipe::trace
