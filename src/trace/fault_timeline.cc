#include "trace/fault_timeline.h"

#include <fstream>

#include "common/check.h"
#include "common/format.h"
#include "trace/csv.h"

namespace mepipe::trace {

std::string FaultTimelineCsv(const std::vector<sim::FaultSpan>& spans) {
  CsvWriter csv({"kind", "stage", "from", "to", "begin_s", "end_s", "label"});
  for (const sim::FaultSpan& span : spans) {
    csv.AddRow({ToString(span.kind), std::to_string(span.stage),
                std::to_string(span.from), std::to_string(span.to),
                StrFormat("%.6f", span.begin), StrFormat("%.6f", span.end), span.label});
  }
  return csv.ToString();
}

std::string FaultTimelineCsv(const sim::SimResult& result) {
  return FaultTimelineCsv(result.fault_spans);
}

void WriteFaultTimelineCsv(const std::vector<sim::FaultSpan>& spans, const std::string& path) {
  std::ofstream file(path);
  MEPIPE_CHECK(file.good()) << "cannot open " << path;
  file << FaultTimelineCsv(spans);
  MEPIPE_CHECK(file.good()) << "write to " << path << " failed";
}

void WriteFaultTimelineCsv(const sim::SimResult& result, const std::string& path) {
  WriteFaultTimelineCsv(result.fault_spans, path);
}

std::string RenderFaultSpans(const std::vector<sim::FaultSpan>& spans) {
  std::string out;
  for (const sim::FaultSpan& span : spans) {
    out += StrFormat("[%9.3fs, %9.3fs) %-14s %s\n", span.begin, span.end,
                     ToString(span.kind), span.label.c_str());
  }
  return out;
}

std::string RenderFaultSpans(const sim::SimResult& result) {
  return RenderFaultSpans(result.fault_spans);
}

}  // namespace mepipe::trace
