// Export of the fault windows applied to a simulated run (engine runs
// with EngineOptions::fault_plan) — the data behind failure/straggler
// overlays on timeline plots.
#ifndef MEPIPE_TRACE_FAULT_TIMELINE_H_
#define MEPIPE_TRACE_FAULT_TIMELINE_H_

#include <string>

#include "sim/engine.h"

namespace mepipe::trace {

// CSV with columns kind,stage,from,to,begin_s,end_s,label — one row per
// fault span, sorted by begin time. A result without fault spans yields
// just the header.
std::string FaultTimelineCsv(const sim::SimResult& result);
void WriteFaultTimelineCsv(const sim::SimResult& result, const std::string& path);

// One line per fault span, human-readable — pairs with RenderTimeline.
std::string RenderFaultSpans(const sim::SimResult& result);

}  // namespace mepipe::trace

#endif  // MEPIPE_TRACE_FAULT_TIMELINE_H_
