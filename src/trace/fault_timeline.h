// Export of the fault windows applied to a simulated run (engine runs
// with EngineOptions::fault_plan) — the data behind failure/straggler
// overlays on timeline plots. The span-vector overloads take any
// sim::FaultSpan list directly, e.g. the elastic runtime's event log
// (core::ElasticMetrics::events: fail-stops, repair windows, reshard
// barriers, live re-plans, straggler windows on the run's wall clock).
#ifndef MEPIPE_TRACE_FAULT_TIMELINE_H_
#define MEPIPE_TRACE_FAULT_TIMELINE_H_

#include <string>
#include <vector>

#include "sim/engine.h"

namespace mepipe::trace {

// CSV with columns kind,stage,from,to,begin_s,end_s,label — one row per
// fault span, in input order (begin-sorted for every in-repo producer).
// An empty span list yields just the header.
std::string FaultTimelineCsv(const std::vector<sim::FaultSpan>& spans);
std::string FaultTimelineCsv(const sim::SimResult& result);
void WriteFaultTimelineCsv(const std::vector<sim::FaultSpan>& spans, const std::string& path);
void WriteFaultTimelineCsv(const sim::SimResult& result, const std::string& path);

// One line per fault span, human-readable — pairs with RenderTimeline.
std::string RenderFaultSpans(const std::vector<sim::FaultSpan>& spans);
std::string RenderFaultSpans(const sim::SimResult& result);

}  // namespace mepipe::trace

#endif  // MEPIPE_TRACE_FAULT_TIMELINE_H_
