#include "model/flops.h"

#include "common/check.h"

namespace mepipe::model {
namespace {

// Sum over the queries of a span of the number of keys each attends to
// (causal attention): sum_{q in span} (span.start + local_index(q) + 1).
double AttendedKeyPositions(const SliceSpan& span) {
  const double t = static_cast<double>(span.tokens);
  const double o = static_cast<double>(span.start);
  return t * o + t * (t + 1.0) / 2.0;
}

}  // namespace

std::vector<SliceSpan> UniformSlices(std::int64_t seq_len, std::int64_t slices) {
  MEPIPE_CHECK_GT(slices, 0);
  MEPIPE_CHECK_GE(seq_len, slices);
  std::vector<SliceSpan> spans;
  spans.reserve(static_cast<std::size_t>(slices));
  const std::int64_t base = seq_len / slices;
  const std::int64_t remainder = seq_len % slices;
  std::int64_t start = 0;
  for (std::int64_t i = 0; i < slices; ++i) {
    const std::int64_t tokens = base + (i < remainder ? 1 : 0);
    spans.push_back({start, tokens});
    start += tokens;
  }
  return spans;
}

LayerFlops ForwardLayerFlops(const TransformerConfig& config, const SliceSpan& span) {
  const double t = static_cast<double>(span.tokens);
  const double h = static_cast<double>(config.hidden);
  const double hkv = static_cast<double>(config.kv_hidden());
  const double f = static_cast<double>(config.ffn_hidden);

  LayerFlops out;
  // Q and output projections (h×h each), K and V projections (h×h_kv each),
  // gated MLP (gate, up, down: 3 GEMMs of h×f). 2 FLOPs per MAC.
  out.gemm = 2.0 * t * (2.0 * h * h + 2.0 * h * hkv + 3.0 * h * f);
  // Attention score: QK^T and PV, 2·h FLOPs per (query, key) pair each.
  out.attention = 4.0 * h * AttendedKeyPositions(span);
  return out;
}

Flops BackwardLayerFlops(const TransformerConfig& config, const SliceSpan& span) {
  const LayerFlops fwd = ForwardLayerFlops(config, span);
  // dX GEMMs cost the same as the forward GEMMs; attention backward
  // (dQ + dK/dV) costs roughly twice the forward attention score.
  return fwd.gemm + 2.0 * fwd.attention;
}

Flops WeightGradLayerFlops(const TransformerConfig& config, const SliceSpan& span) {
  // dW = activation^T · output-grad for every projection: same FLOPs as
  // the forward GEMMs, no attention-context term (§5).
  return ForwardLayerFlops(config, {0, span.tokens}).gemm;
}

Flops ForwardEmbeddingFlops(const TransformerConfig& config, std::int64_t tokens) {
  // Table lookup; modelled as one copy of the output activations.
  return static_cast<double>(tokens) * static_cast<double>(config.hidden);
}

Flops ForwardHeadFlops(const TransformerConfig& config, std::int64_t tokens) {
  return 2.0 * static_cast<double>(tokens) * static_cast<double>(config.hidden) *
         static_cast<double>(config.vocab);
}

Flops BackwardHeadFlops(const TransformerConfig& config, std::int64_t tokens) {
  return ForwardHeadFlops(config, tokens);  // dX projection
}

Flops WeightGradHeadFlops(const TransformerConfig& config, std::int64_t tokens) {
  return ForwardHeadFlops(config, tokens);  // dW projection
}

std::vector<Flops> WeightGradGemms(const TransformerConfig& config, std::int64_t tokens) {
  const double t = static_cast<double>(tokens);
  const double h = static_cast<double>(config.hidden);
  const double hkv = static_cast<double>(config.kv_hidden());
  const double f = static_cast<double>(config.ffn_hidden);
  return {
      2.0 * t * h * h,    // dW_q
      2.0 * t * h * hkv,  // dW_k
      2.0 * t * h * hkv,  // dW_v
      2.0 * t * h * h,    // dW_out
      2.0 * t * h * f,    // dW_gate
      2.0 * t * h * f,    // dW_up
      2.0 * t * f * h,    // dW_down
  };
}

Flops TrainingFlops(const TransformerConfig& config, std::int64_t tokens) {
  // Per-layer: F + B + W for the full sequence.
  const SliceSpan whole{0, config.seq_len};
  const LayerFlops fwd = ForwardLayerFlops(config, whole);
  const Flops per_layer = fwd.total() + BackwardLayerFlops(config, whole) +
                          WeightGradLayerFlops(config, whole);
  const double sequences = static_cast<double>(tokens) / static_cast<double>(config.seq_len);
  const Flops layers = sequences * static_cast<double>(config.layers) * per_layer;
  const Flops head = sequences * (ForwardHeadFlops(config, config.seq_len) +
                                  BackwardHeadFlops(config, config.seq_len) +
                                  WeightGradHeadFlops(config, config.seq_len));
  return layers + head;
}

double ModelFlopsUtilization(const TransformerConfig& config, std::int64_t tokens_per_iter,
                             Seconds iteration_time, int num_gpus, FlopsPerSecond peak_per_gpu) {
  MEPIPE_CHECK_GT(iteration_time, 0.0);
  MEPIPE_CHECK_GT(num_gpus, 0);
  const Flops work = TrainingFlops(config, tokens_per_iter);
  return work / (iteration_time * static_cast<double>(num_gpus) * peak_per_gpu);
}

}  // namespace mepipe::model
