// Floating-point-operation cost model for decoder-only transformers,
// resolved to the granularity MEPipe schedules at: one *slice* of one
// micro-batch passing through one contiguous group of layers.
//
// Costs are split the way §5 of the paper splits them:
//   F  — forward pass (balanced GEMMs + context-dependent attention score)
//   B  — backward activation-gradient pass (dX GEMMs + attention backward)
//   W  — backward weight-gradient pass (dW GEMMs only; independent of the
//        slice's attention context, hence balanced across slices)
//
// The attention-score term grows with the number of preceding tokens,
// which is exactly the per-slice imbalance the paper's fine-grained
// weight-gradient technique compensates for.
#ifndef MEPIPE_MODEL_FLOPS_H_
#define MEPIPE_MODEL_FLOPS_H_

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "model/transformer.h"

namespace mepipe::model {

// A contiguous token range of one sample: [start, start + tokens).
// `start` is the number of preceding tokens the attention of this slice
// must attend over (its KV context offset).
struct SliceSpan {
  std::int64_t start = 0;
  std::int64_t tokens = 0;

  std::int64_t end() const { return start + tokens; }
  bool operator==(const SliceSpan&) const = default;
};

// Partitions a sequence of `seq_len` tokens into `slices` uniform spans.
// `seq_len` need not divide evenly; earlier slices get the remainder,
// matching Megatron's padding-free uniform split.
std::vector<SliceSpan> UniformSlices(std::int64_t seq_len, std::int64_t slices);

// Per-transformer-layer forward FLOPs of one slice, split into the
// context-independent GEMM part and the context-dependent attention part.
struct LayerFlops {
  Flops gemm = 0;
  Flops attention = 0;
  Flops total() const { return gemm + attention; }
};

LayerFlops ForwardLayerFlops(const TransformerConfig& config, const SliceSpan& span);

// Backward activation-gradient (B) FLOPs of one slice through one layer:
// one dX GEMM set (equal to the forward GEMM cost) plus the attention
// backward (≈ 2× the forward attention cost: dQ, dK/dV recurrences).
Flops BackwardLayerFlops(const TransformerConfig& config, const SliceSpan& span);

// Weight-gradient (W) FLOPs of one slice through one layer: one dW GEMM
// set, equal to the forward GEMM cost and independent of `span.start`.
Flops WeightGradLayerFlops(const TransformerConfig& config, const SliceSpan& span);

// Embedding layer (lookup — negligible compute, modelled as a small copy).
Flops ForwardEmbeddingFlops(const TransformerConfig& config, std::int64_t tokens);

// LM head (projection to vocabulary + softmax/loss).
Flops ForwardHeadFlops(const TransformerConfig& config, std::int64_t tokens);
Flops BackwardHeadFlops(const TransformerConfig& config, std::int64_t tokens);
Flops WeightGradHeadFlops(const TransformerConfig& config, std::int64_t tokens);

// The per-GEMM decomposition of a layer's weight-gradient computation
// (§5): q, k, v, attention-out, gate, up, down projections. Returns the
// FLOPs of each individual GEMM for a slice of `tokens` tokens.
std::vector<Flops> WeightGradGemms(const TransformerConfig& config, std::int64_t tokens);

// Whole-model *model FLOPs* of one training step over `tokens` tokens
// (forward + backward + weight grads), used for MFU accounting exactly as
// the paper's §7.6 (≈ 6 · params · tokens + attention term).
Flops TrainingFlops(const TransformerConfig& config, std::int64_t tokens);

// Model FLOPS utilization given measured iteration time.
double ModelFlopsUtilization(const TransformerConfig& config, std::int64_t tokens_per_iter,
                             Seconds iteration_time, int num_gpus, FlopsPerSecond peak_per_gpu);

}  // namespace mepipe::model

#endif  // MEPIPE_MODEL_FLOPS_H_
