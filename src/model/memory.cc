#include "model/memory.h"

#include "common/check.h"

namespace mepipe::model {

Bytes LayerActivationBytesPerToken(const TransformerConfig& config) {
  const std::int64_t h = config.hidden;
  const std::int64_t hkv = config.kv_hidden();
  const std::int64_t f = config.ffn_hidden;
  // Retained for backward (bf16 = 2 bytes each):
  //   layer input (residual + dW_qkv input)            2h
  //   q                                                2h
  //   k, v                                             2·2·hkv
  //   attention output (input of out-projection)       2h
  //   MLP input (post-norm)                            2h
  //   gate out, up out, silu(gate)·up (input of down)  3·2f
  // plus two RMSNorm rstd scalars (negligible).
  return 2 * (4 * h + 2 * hkv) + 2 * 3 * f;
}

Bytes LayerActivationBytesPerTokenRecompute(const TransformerConfig& config) {
  return 2 * config.hidden;  // only the layer input tensor survives
}

Bytes BoundaryBytesPerToken(const TransformerConfig& config) { return 2 * config.hidden; }

Bytes LayerActGradBytesPerToken(const TransformerConfig& config) {
  // Output gradients of every dW GEMM must stay resident until W runs:
  // d(attn_out_proj_out) ~ h, d(q,k,v), d(gate), d(up), d(down input).
  const std::int64_t h = config.hidden;
  const std::int64_t hkv = config.kv_hidden();
  const std::int64_t f = config.ffn_hidden;
  return 2 * (2 * h + 2 * hkv) + 2 * 3 * f;
}

Bytes SampleActivationBytes(const TransformerConfig& config) {
  const Bytes per_token = LayerActivationBytesPerToken(config) * config.layers +
                          // embedding output + head input boundaries
                          2 * BoundaryBytesPerToken(config);
  return per_token * config.seq_len;
}

Bytes LogitsTemporaryBytes(const TransformerConfig& config, std::int64_t tokens) {
  // fp32 logits plus fp32 softmax/grad buffer.
  return 2 * 4 * tokens * config.vocab;
}

StageMemory StaticStageMemory(const TransformerConfig& config, std::int64_t stage_layers,
                              bool has_embedding, bool has_head, int dp,
                              std::int64_t logits_tokens, const MemoryModelOptions& options) {
  MEPIPE_CHECK_GE(stage_layers, 0);
  MEPIPE_CHECK_GT(dp, 0);
  std::int64_t params = stage_layers * config.params_per_layer();
  if (has_embedding) {
    params += config.embedding_params();
  }
  if (has_head) {
    params += config.head_params();
  }
  StageMemory memory;
  memory.parameters = params * options.bytes_per_param;
  memory.gradients = params * options.bytes_per_grad;
  memory.optimizer = params * options.optimizer_bytes_per_param / dp;
  memory.temporary = options.fixed_workspace +
                     (has_head ? LogitsTemporaryBytes(config, logits_tokens) : 0);
  return memory;
}

}  // namespace mepipe::model
