#include "model/slicing.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mepipe::model {

Flops SliceForwardCost(const TransformerConfig& config, const SliceSpan& span) {
  return ForwardLayerFlops(config, span).total();
}

double SliceTimeCost(const TransformerConfig& config, const SliceSpan& span,
                     const SliceTimeModel& time_model) {
  const LayerFlops flops = ForwardLayerFlops(config, span);
  return time_model.gemm_weight * flops.gemm + time_model.attention_weight * flops.attention +
         time_model.overhead;
}

namespace {

void ValidateTimeModel(const SliceTimeModel& time_model) {
  MEPIPE_CHECK_GE(time_model.gemm_weight, 0.0);
  MEPIPE_CHECK_GE(time_model.attention_weight, 0.0);
  MEPIPE_CHECK_GE(time_model.overhead, 0.0);
  MEPIPE_CHECK(time_model.gemm_weight > 0.0 || time_model.attention_weight > 0.0)
      << "slice time model weights all zero";
}

// Largest token count t such that the slice [start, start+t) costs at
// most `budget`. Slice time is strictly increasing in t, so binary
// search applies.
std::int64_t MaxTokensWithinBudget(const TransformerConfig& config, std::int64_t start,
                                   std::int64_t remaining, const SliceTimeModel& time_model,
                                   double budget) {
  std::int64_t lo = 0;
  std::int64_t hi = remaining;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo + 1) / 2;
    if (SliceTimeCost(config, {start, mid}, time_model) <= budget) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

// Can `seq_len` tokens be covered by at most `slices` slices each
// costing ≤ budget? Greedy (always take the largest feasible slice) is
// optimal for contiguous bottleneck partitioning.
bool Feasible(const TransformerConfig& config, std::int64_t seq_len, std::int64_t slices,
              const SliceTimeModel& time_model, double budget) {
  std::int64_t start = 0;
  for (std::int64_t i = 0; i < slices && start < seq_len; ++i) {
    const std::int64_t take =
        MaxTokensWithinBudget(config, start, seq_len - start, time_model, budget);
    if (take == 0) {
      return false;  // even a single token exceeds the budget
    }
    start += take;
  }
  return start >= seq_len;
}

}  // namespace

std::vector<SliceSpan> TimeBalancedSlices(const TransformerConfig& config, std::int64_t seq_len,
                                          std::int64_t slices,
                                          const SliceTimeModel& time_model) {
  MEPIPE_CHECK_GT(slices, 0);
  MEPIPE_CHECK_GE(seq_len, slices);
  ValidateTimeModel(time_model);
  if (slices == 1) {
    return {{0, seq_len}};
  }

  // Binary-search the bottleneck budget between mean cost and whole cost.
  const double whole = SliceTimeCost(config, {0, seq_len}, time_model);
  double lo = whole / static_cast<double>(slices);
  double hi = whole;
  for (int iter = 0; iter < 64 && hi - lo > 1e-6 * whole; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (Feasible(config, seq_len, slices, time_model, mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }

  // Materialize the partition at the found bottleneck, then spread any
  // trailing shortfall by extending the final slice.
  std::vector<SliceSpan> spans;
  std::int64_t start = 0;
  for (std::int64_t i = 0; i < slices; ++i) {
    std::int64_t take;
    if (i + 1 == slices) {
      take = seq_len - start;
    } else {
      take = MaxTokensWithinBudget(config, start, seq_len - start, time_model, hi);
      // Never strand the remaining slices without tokens.
      const std::int64_t slices_left = slices - i - 1;
      take = std::min(take, seq_len - start - slices_left);
      take = std::max<std::int64_t>(take, 1);
    }
    spans.push_back({start, take});
    start += take;
  }
  MEPIPE_CHECK_EQ(start, seq_len);
  return spans;
}

std::vector<SliceSpan> BalancedSlices(const TransformerConfig& config, std::int64_t seq_len,
                                      std::int64_t slices) {
  return TimeBalancedSlices(config, seq_len, slices, SliceTimeModel{});
}

double SliceImbalance(const TransformerConfig& config, const std::vector<SliceSpan>& spans) {
  MEPIPE_CHECK(!spans.empty());
  Flops max_cost = 0;
  Flops total = 0;
  for (const SliceSpan& span : spans) {
    const Flops cost = SliceForwardCost(config, span);
    max_cost = std::max(max_cost, cost);
    total += cost;
  }
  return max_cost / (total / static_cast<double>(spans.size()));
}

std::vector<SliceSpan> AlignSlices(std::vector<SliceSpan> spans, std::int64_t alignment) {
  MEPIPE_CHECK_GT(alignment, 0);
  if (spans.size() <= 1 || alignment == 1) {
    return spans;
  }
  const std::int64_t seq_len = spans.back().end();
  std::int64_t start = 0;
  for (std::size_t i = 0; i + 1 < spans.size(); ++i) {
    std::int64_t end = spans[i].end();
    end = (end + alignment / 2) / alignment * alignment;  // round to nearest
    // Keep at least one aligned block per remaining slice.
    std::int64_t min_end = start + alignment;
    std::int64_t max_end =
        seq_len - static_cast<std::int64_t>(spans.size() - i - 1) * alignment;
    if (max_end < min_end) {
      // Too few tokens for one aligned block per remaining slice
      // (seq_len < slices·alignment): degrade to keeping every span
      // non-empty instead of aligned. Without this the clamp below runs
      // with min > max — undefined behaviour — and could empty a span.
      min_end = start + 1;
      max_end = seq_len - static_cast<std::int64_t>(spans.size() - i - 1);
    }
    end = std::clamp(end, min_end, max_end);
    spans[i] = {start, end - start};
    start = end;
  }
  spans.back() = {start, seq_len - start};
  MEPIPE_CHECK_GT(spans.back().tokens, 0);
  return spans;
}

}  // namespace mepipe::model
