// Sample-slicing strategies.
//
// Uniform slicing (model/flops.h) keeps GEMM shapes power-of-two
// friendly but leaves the causal-attention work imbalanced: later slices
// attend over more context. TeraPipe instead partitions samples
// *non-uniformly* so every slice costs the same time, via dynamic
// programming (§5). MEPipe argues uniform + fine-grained W wins at
// moderate context, while non-uniform wins beyond ~128k tokens — this
// module implements the non-uniform partitioner so the trade-off can be
// measured (see bench_ablation_slicing).
#ifndef MEPIPE_MODEL_SLICING_H_
#define MEPIPE_MODEL_SLICING_H_

#include <cstdint>
#include <vector>

#include "model/flops.h"
#include "model/transformer.h"

namespace mepipe::model {

// Forward cost (FLOPs) of one slice through one transformer layer —
// the objective the balanced partitioner equalizes.
Flops SliceForwardCost(const TransformerConfig& config, const SliceSpan& span);

// Per-slice *time* functional for partitioning under heterogeneous
// stage rates (core/rebalance): a throttled stage slows compute-bound
// GEMMs harder than memory-bound attention, and every slice pays a
// fixed per-slice overhead (kernel launch + p2p latency) that grows
// relatively more expensive on a slow stage. All quantities are
// relative — scaling all three by a constant leaves the optimal
// partition unchanged; the defaults reduce the functional to raw
// forward FLOPs (the classic TeraPipe objective).
struct SliceTimeModel {
  double gemm_weight = 1.0;       // relative cost per GEMM FLOP (must be >= 0)
  double attention_weight = 1.0;  // relative cost per attention FLOP (>= 0)
  double overhead = 0.0;          // fixed per-slice cost, FLOPs-equivalent (>= 0)
};

// Weighted time cost of one slice — the objective TimeBalancedSlices
// equalizes. Strictly increasing in the slice's token count.
double SliceTimeCost(const TransformerConfig& config, const SliceSpan& span,
                     const SliceTimeModel& time_model);

// Generalization of BalancedSlices: partitions `seq_len` tokens into
// `slices` contiguous spans whose *time* under `time_model` is as equal
// as possible (minimizes the maximum slice time). Runs an exact
// bottleneck search (binary search on the bottleneck + greedy
// feasibility, O(s·log²)), equivalent to TeraPipe's DP solution for
// this cost structure.
std::vector<SliceSpan> TimeBalancedSlices(const TransformerConfig& config, std::int64_t seq_len,
                                          std::int64_t slices,
                                          const SliceTimeModel& time_model);

// Partitions `seq_len` tokens into `slices` contiguous spans whose
// per-layer forward FLOPs are as equal as possible (minimizes the
// maximum slice cost). Earlier slices come out longer (they attend over
// less context). Equal to TimeBalancedSlices under the default
// SliceTimeModel.
std::vector<SliceSpan> BalancedSlices(const TransformerConfig& config, std::int64_t seq_len,
                                      std::int64_t slices);

// Quality metric: max slice cost / mean slice cost (1.0 = perfectly
// balanced). Uniform slicing of long contexts scores well above 1.
double SliceImbalance(const TransformerConfig& config,
                      const std::vector<SliceSpan>& spans);

// Rounds span boundaries to multiples of `alignment` tokens (GEMM and
// FlashAttention prefer power-of-two-ish shapes — the paper's §5
// efficiency argument), preserving coverage. The last span absorbs the
// rounding remainder.
std::vector<SliceSpan> AlignSlices(std::vector<SliceSpan> spans, std::int64_t alignment);

}  // namespace mepipe::model

#endif  // MEPIPE_MODEL_SLICING_H_
