// Sample-slicing strategies.
//
// Uniform slicing (model/flops.h) keeps GEMM shapes power-of-two
// friendly but leaves the causal-attention work imbalanced: later slices
// attend over more context. TeraPipe instead partitions samples
// *non-uniformly* so every slice costs the same time, via dynamic
// programming (§5). MEPipe argues uniform + fine-grained W wins at
// moderate context, while non-uniform wins beyond ~128k tokens — this
// module implements the non-uniform partitioner so the trade-off can be
// measured (see bench_ablation_slicing).
#ifndef MEPIPE_MODEL_SLICING_H_
#define MEPIPE_MODEL_SLICING_H_

#include <cstdint>
#include <vector>

#include "model/flops.h"
#include "model/transformer.h"

namespace mepipe::model {

// Forward cost (FLOPs) of one slice through one transformer layer —
// the objective the balanced partitioner equalizes.
Flops SliceForwardCost(const TransformerConfig& config, const SliceSpan& span);

// Partitions `seq_len` tokens into `slices` contiguous spans whose
// per-layer forward FLOPs are as equal as possible (minimizes the
// maximum slice cost). Earlier slices come out longer (they attend over
// less context). Runs an exact bottleneck search (binary search on the
// bottleneck + greedy feasibility, O(s·log²)), equivalent to TeraPipe's
// DP solution for this cost structure.
std::vector<SliceSpan> BalancedSlices(const TransformerConfig& config, std::int64_t seq_len,
                                      std::int64_t slices);

// Quality metric: max slice cost / mean slice cost (1.0 = perfectly
// balanced). Uniform slicing of long contexts scores well above 1.
double SliceImbalance(const TransformerConfig& config,
                      const std::vector<SliceSpan>& spans);

// Rounds span boundaries to multiples of `alignment` tokens (GEMM and
// FlashAttention prefer power-of-two-ish shapes — the paper's §5
// efficiency argument), preserving coverage. The last span absorbs the
// rounding remainder.
std::vector<SliceSpan> AlignSlices(std::vector<SliceSpan> spans, std::int64_t alignment);

}  // namespace mepipe::model

#endif  // MEPIPE_MODEL_SLICING_H_
