// Memory cost model (§4.5): the three components the paper's variant
// selector reasons about — static memory (parameters, gradients,
// optimizer shards), temporary memory (loss/logits workspace), and
// activation memory retained between forward and backward passes.
//
// All byte counts are for bf16/fp16 training with a Megatron-style
// mixed-precision Adam optimizer sharded over the data-parallel group
// (ZeRO-1), matching the paper's setup.
#ifndef MEPIPE_MODEL_MEMORY_H_
#define MEPIPE_MODEL_MEMORY_H_

#include <cstdint>

#include "common/units.h"
#include "model/transformer.h"

namespace mepipe::model {

// Tunable byte-accounting knobs. Defaults reproduce the paper's own
// measurements (e.g. §7.4: the mixed-precision optimizer occupies
// 12 bytes/param sharded over all d·p workers ⇒ 6.375 GB for 34B on 64).
struct MemoryModelOptions {
  int bytes_per_param = 2;          // bf16 parameters
  int bytes_per_grad = 2;           // bf16 gradient buffers
  int optimizer_bytes_per_param = 12;  // fp32 master + Adam m, v (ZeRO-1 sharded)
  Bytes fixed_workspace = static_cast<Bytes>(1) * kGiB;  // cuDNN/cuBLAS/NCCL workspaces
};

// --- Activation accounting -------------------------------------------------

// Bytes of activations one transformer layer must retain per token for its
// backward pass (FlashAttention: no quadratic score matrix is stored).
Bytes LayerActivationBytesPerToken(const TransformerConfig& config);

// Same, when full recomputation is enabled: only the layer input survives.
Bytes LayerActivationBytesPerTokenRecompute(const TransformerConfig& config);

// Bytes of the hidden-state boundary tensor transferred between pipeline
// stages, per token.
Bytes BoundaryBytesPerToken(const TransformerConfig& config);

// Bytes of activation *gradients* retained per token per layer between a
// split backward (B) and its deferred weight-gradient computation (W).
// This is the extra footprint of zero-bubble-style scheduling (§7.1).
Bytes LayerActGradBytesPerToken(const TransformerConfig& config);

// Activation memory of one full sample through the whole model — the "A"
// of Table 3 (embedding/head contributions folded in).
Bytes SampleActivationBytes(const TransformerConfig& config);

// --- Static + temporary accounting -----------------------------------------

struct StageMemory {
  Bytes parameters = 0;
  Bytes gradients = 0;
  Bytes optimizer = 0;
  Bytes temporary = 0;
  Bytes total() const { return parameters + gradients + optimizer + temporary; }
};

// Static + temporary memory of one pipeline stage holding `stage_layers`
// partition units (embedding and head included via flags), with the
// optimizer sharded over `dp` workers.
StageMemory StaticStageMemory(const TransformerConfig& config, std::int64_t stage_layers,
                              bool has_embedding, bool has_head, int dp,
                              std::int64_t logits_tokens,
                              const MemoryModelOptions& options = {});

// Temporary bytes for materializing fp32 logits + softmax for `tokens`
// tokens on the head stage. Slicing samples (SPP) shrinks this too.
Bytes LogitsTemporaryBytes(const TransformerConfig& config, std::int64_t tokens);

}  // namespace mepipe::model

#endif  // MEPIPE_MODEL_MEMORY_H_
