#include "model/transformer.h"

#include "common/check.h"

namespace mepipe::model {

std::int64_t TransformerConfig::params_per_layer() const {
  // Attention: Q (h*h), K/V (h*h_kv each), output projection (h*h).
  const std::int64_t attn = hidden * hidden * 2 + hidden * kv_hidden() * 2;
  // Gated MLP: gate, up (h*f each) and down (f*h).
  const std::int64_t mlp = 3 * hidden * ffn_hidden;
  // RMSNorm scales (two per layer).
  const std::int64_t norms = 2 * hidden;
  return attn + mlp + norms;
}

std::int64_t TransformerConfig::embedding_params() const { return vocab * hidden; }

std::int64_t TransformerConfig::head_params() const { return vocab * hidden; }

std::int64_t TransformerConfig::total_params() const {
  return layers * params_per_layer() + embedding_params() + head_params() + hidden /* final norm */;
}

TransformerConfig Llama7B() {
  TransformerConfig c;
  c.name = "Llama-7B";
  c.hidden = 4096;
  c.ffn_hidden = 11008;
  c.layers = 30;  // 32 minus the two removed layers (§7.1)
  c.heads = 32;
  c.kv_heads = 32;
  return c;
}

TransformerConfig Llama13B() {
  TransformerConfig c;
  c.name = "Llama-13B";
  c.hidden = 5120;
  c.ffn_hidden = 13824;
  c.layers = 38;  // 40 minus the two removed layers
  c.heads = 40;
  c.kv_heads = 40;
  return c;
}

TransformerConfig Llama34B() {
  TransformerConfig c;
  c.name = "Llama-34B";
  c.hidden = 8192;
  c.ffn_hidden = 22016;
  c.layers = 46;  // 48 minus the two removed layers
  c.heads = 64;
  c.kv_heads = 8;  // Llama-2 34B uses grouped-query attention
  return c;
}

TransformerConfig LlamaBySize(const std::string& size) {
  if (size == "7B") {
    return Llama7B();
  }
  if (size == "13B") {
    return Llama13B();
  }
  if (size == "34B") {
    return Llama34B();
  }
  MEPIPE_CHECK(false) << "unknown Llama size: " << size;
  return {};
}

TransformerConfig TinyTestModel() {
  TransformerConfig c;
  c.name = "Tiny";
  c.hidden = 64;
  c.ffn_hidden = 172;
  c.layers = 6;
  c.heads = 4;
  c.kv_heads = 4;
  c.vocab = 1000;
  c.seq_len = 128;
  return c;
}

}  // namespace mepipe::model
