// Transformer (Llama-family) model descriptions.
//
// Mirrors the configurations evaluated in the paper (§7.1, Table 4):
// Llama-2 7B / 13B / 34B with two transformer layers removed so that the
// embedding layer and the LM head layer can be counted as pipeline
// partition units, giving 32 / 40 / 48 evenly partitionable "layers".
#ifndef MEPIPE_MODEL_TRANSFORMER_H_
#define MEPIPE_MODEL_TRANSFORMER_H_

#include <cstdint>
#include <string>

#include "common/units.h"

namespace mepipe::model {

// Static architecture description of a decoder-only transformer.
struct TransformerConfig {
  std::string name;
  std::int64_t hidden = 0;           // model width h
  std::int64_t ffn_hidden = 0;       // gated-MLP intermediate width f
  std::int64_t layers = 0;           // transformer layers (embedding/head excluded)
  std::int64_t heads = 0;            // attention heads
  std::int64_t kv_heads = 0;         // key/value heads (GQA); == heads for MHA
  std::int64_t vocab = 32000;        // vocabulary size
  std::int64_t seq_len = 4096;       // training context length

  // Number of pipeline partition units: transformer layers plus the
  // embedding layer and the head layer (§7.1).
  std::int64_t partition_units() const { return layers + 2; }

  // Per-head dimension.
  std::int64_t head_dim() const { return hidden / heads; }
  // Total K/V width (h_kv): kv_heads * head_dim.
  std::int64_t kv_hidden() const { return kv_heads * head_dim(); }

  // Parameter counts.
  std::int64_t params_per_layer() const;
  std::int64_t embedding_params() const;  // token embedding table
  std::int64_t head_params() const;       // LM head projection
  std::int64_t total_params() const;
};

// Paper presets (Table 4, with the two-layer removal already applied).
TransformerConfig Llama7B();
TransformerConfig Llama13B();
TransformerConfig Llama34B();
TransformerConfig LlamaBySize(const std::string& size);  // "7B" | "13B" | "34B"

// A tiny model for tests/examples where absolute sizes are irrelevant.
TransformerConfig TinyTestModel();

}  // namespace mepipe::model

#endif  // MEPIPE_MODEL_TRANSFORMER_H_
