#include "common/format.h"

#include <cstdarg>
#include <cstdio>

#include "common/check.h"

namespace mepipe {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  MEPIPE_CHECK_GE(needed, 0);
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string PadRight(const std::string& text, std::size_t width) {
  if (text.size() >= width) {
    return text.substr(0, width);
  }
  return text + std::string(width - text.size(), ' ');
}

std::string PadLeft(const std::string& text, std::size_t width) {
  if (text.size() >= width) {
    return text;
  }
  return std::string(width - text.size(), ' ') + text;
}

std::string RenderTable(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) {
    return "";
  }
  const std::size_t columns = rows.front().size();
  std::vector<std::size_t> widths(columns, 0);
  for (const auto& row : rows) {
    MEPIPE_CHECK_EQ(row.size(), columns) << "ragged table row";
    for (std::size_t c = 0; c < columns; ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < columns; ++c) {
      out += PadRight(rows[r][c], widths[c]);
      if (c + 1 < columns) {
        out += "  ";
      }
    }
    out += '\n';
    if (r == 0) {
      for (std::size_t c = 0; c < columns; ++c) {
        out += std::string(widths[c], '-');
        if (c + 1 < columns) {
          out += "  ";
        }
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace mepipe
