#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace mepipe {
namespace {

std::string Printf(const char* fmt, double value, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value);
  return std::string(buf) + suffix;
}

}  // namespace

std::string FormatBytes(Bytes bytes) {
  const double b = static_cast<double>(bytes);
  if (std::abs(b) >= static_cast<double>(kGiB)) {
    return Printf("%.2f", b / static_cast<double>(kGiB), " GiB");
  }
  if (std::abs(b) >= static_cast<double>(kMiB)) {
    return Printf("%.2f", b / static_cast<double>(kMiB), " MiB");
  }
  if (std::abs(b) >= static_cast<double>(kKiB)) {
    return Printf("%.2f", b / static_cast<double>(kKiB), " KiB");
  }
  return Printf("%.0f", b, " B");
}

std::string FormatSeconds(Seconds seconds) {
  if (seconds >= 1.0) {
    return Printf("%.3f", seconds, " s");
  }
  if (seconds >= 1e-3) {
    return Printf("%.1f", seconds * 1e3, " ms");
  }
  return Printf("%.1f", seconds * 1e6, " us");
}

std::string FormatFlopsRate(FlopsPerSecond rate) {
  if (rate >= kTera) {
    return Printf("%.1f", rate / kTera, " TFLOPS");
  }
  return Printf("%.1f", rate / kGiga, " GFLOPS");
}

}  // namespace mepipe
