// Physical units used by the cost and memory models.
//
// The library standardizes on:
//   - time:   double seconds (`Seconds`)
//   - memory: std::int64_t bytes (`Bytes`)
//   - work:   double floating-point operations (`Flops`)
//   - rate:   double bytes per second / flops per second
//
// Helper literals and converters keep call sites free of magic factors.
#ifndef MEPIPE_COMMON_UNITS_H_
#define MEPIPE_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace mepipe {

using Seconds = double;
using Bytes = std::int64_t;
using Flops = double;
using BytesPerSecond = double;
using FlopsPerSecond = double;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

constexpr Seconds Milliseconds(double ms) { return ms * 1e-3; }
constexpr Seconds Microseconds(double us) { return us * 1e-6; }
constexpr double ToMilliseconds(Seconds s) { return s * 1e3; }
constexpr double ToMicroseconds(Seconds s) { return s * 1e6; }

constexpr double ToGiB(Bytes b) { return static_cast<double>(b) / static_cast<double>(kGiB); }
constexpr double ToTeraflops(Flops f) { return f / kTera; }

// Human-readable rendering, e.g. "12.3 GiB", "116.0 TFLOPS", "6226.3 ms".
std::string FormatBytes(Bytes bytes);
std::string FormatSeconds(Seconds seconds);
std::string FormatFlopsRate(FlopsPerSecond rate);

}  // namespace mepipe

#endif  // MEPIPE_COMMON_UNITS_H_
