// Deterministic, implementation-independent random sampling.
//
// The standard <random> distributions are not guaranteed to produce the
// same sequences across standard-library implementations, which would
// make "identical results under a fixed seed" a per-toolchain promise.
// The fault-injection and noise layers therefore draw from a splitmix64
// generator with hand-rolled inverse-CDF / Box-Muller transforms: the
// same seed yields bit-identical streams everywhere.
#ifndef MEPIPE_COMMON_RNG_H_
#define MEPIPE_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace mepipe {

// One splitmix64 step (Steele, Lea & Flood; the seeding PRNG of
// xoshiro). Advances `state` and returns a well-mixed 64-bit value.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Maps 64 random bits onto (0, 1) — never returns 0 or 1, so it is safe
// under std::log.
constexpr double UnitUniform(std::uint64_t bits) {
  return (static_cast<double>(bits >> 11) + 0.5) * 0x1.0p-53;
}

// Tiny deterministic sampler over a splitmix64 stream.
class SplitMixRng {
 public:
  explicit SplitMixRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t NextU64() { return SplitMix64(state_); }
  double NextUniform() { return UnitUniform(NextU64()); }

  // Exponential with the given mean (inverse CDF).
  double NextExponential(double mean) { return -mean * std::log(NextUniform()); }

  // Standard normal via Box-Muller (one of the pair is discarded; cost
  // is irrelevant at the rates these models sample).
  double NextGaussian() {
    const double u1 = NextUniform();
    const double u2 = NextUniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
  }

 private:
  std::uint64_t state_;
};

// Standard normal draw fully determined by `key` — for stateless per-op
// noise where the same key must always yield the same perturbation.
inline double GaussianFromKey(std::uint64_t key) {
  SplitMixRng rng(key);
  return rng.NextGaussian();
}

}  // namespace mepipe

#endif  // MEPIPE_COMMON_RNG_H_
