// Small text-formatting helpers shared by the trace renderers and the
// bench table printers. Kept dependency-free (no fmt/abseil).
#ifndef MEPIPE_COMMON_FORMAT_H_
#define MEPIPE_COMMON_FORMAT_H_

#include <string>
#include <vector>

namespace mepipe {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Pads/truncates `text` to exactly `width` columns (left-aligned).
std::string PadRight(const std::string& text, std::size_t width);
// Pads `text` to at least `width` columns (right-aligned).
std::string PadLeft(const std::string& text, std::size_t width);

// Renders rows as a fixed-width text table with a header separator; the
// first row is treated as the header. Every row must have the same arity.
std::string RenderTable(const std::vector<std::vector<std::string>>& rows);

}  // namespace mepipe

#endif  // MEPIPE_COMMON_FORMAT_H_
