#include "common/check.h"

namespace mepipe::internal {

void FailCheck(const char* file, int line, const char* condition,
               const std::string& message) {
  std::ostringstream out;
  out << "Check failed at " << file << ":" << line << ": " << condition;
  if (!message.empty()) {
    out << " — " << message;
  }
  throw CheckError(out.str());
}

}  // namespace mepipe::internal
