// Lightweight runtime-check macros used throughout the library.
//
// Checks are always on (they guard scheduling invariants whose violation
// would silently corrupt simulation results), and failures throw
// mepipe::CheckError so that tests can assert on them and library users
// can recover.
#ifndef MEPIPE_COMMON_CHECK_H_
#define MEPIPE_COMMON_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace mepipe {

// Thrown when a MEPIPE_CHECK* macro fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

[[noreturn]] void FailCheck(const char* file, int line, const char* condition,
                            const std::string& message);

// Stream-style message builder so call sites can write
//   MEPIPE_CHECK(x > 0) << "x was " << x;
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}

  [[noreturn]] ~CheckMessageBuilder() noexcept(false) {
    FailCheck(file_, line_, condition_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

// Consumes a CheckMessageBuilder when the condition holds (no-op).
struct CheckVoidify {
  void operator&(const CheckMessageBuilder&) {}
};

}  // namespace internal
}  // namespace mepipe

#define MEPIPE_CHECK(condition)                                       \
  (condition) ? (void)0                                               \
              : ::mepipe::internal::CheckVoidify() &                  \
                    ::mepipe::internal::CheckMessageBuilder(__FILE__, \
                                                            __LINE__, #condition)

#define MEPIPE_CHECK_EQ(a, b) MEPIPE_CHECK((a) == (b))
#define MEPIPE_CHECK_NE(a, b) MEPIPE_CHECK((a) != (b))
#define MEPIPE_CHECK_LT(a, b) MEPIPE_CHECK((a) < (b))
#define MEPIPE_CHECK_LE(a, b) MEPIPE_CHECK((a) <= (b))
#define MEPIPE_CHECK_GT(a, b) MEPIPE_CHECK((a) > (b))
#define MEPIPE_CHECK_GE(a, b) MEPIPE_CHECK((a) >= (b))

#endif  // MEPIPE_COMMON_CHECK_H_
