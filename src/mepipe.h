// Umbrella header: the public API of the MEPipe library.
//
//   model/   — transformer configs, FLOPs, memory, slicing
//   hw/      — GPUs, links, clusters, efficiency, collectives
//   sched/   — ops, dependencies, schedules, baselines, serialization
//   sim/     — discrete-event engine, cost models, noise, fault injection
//   core/    — SVPP, analytics, memory model, planner + surrogate,
//              heterogeneous fleets, multi-job cluster service,
//              profiler, deployment economics, resilience simulation,
//              straggler rebalancing
//   trace/   — ASCII timelines, Chrome traces, CSV, fault overlays
//   tensor/, ref/ — the numerical validation substrate
#ifndef MEPIPE_MEPIPE_H_
#define MEPIPE_MEPIPE_H_

#include "core/analytic.h"
#include "core/cluster.h"
#include "core/deployment.h"
#include "core/elastic.h"
#include "core/experiment.h"
#include "core/fleet.h"
#include "core/iteration.h"
#include "core/memory_model.h"
#include "core/planner.h"
#include "core/profiler.h"
#include "core/rebalance.h"
#include "core/resilience.h"
#include "core/svpp.h"
#include "core/training_cost.h"
#include "hw/cluster.h"
#include "hw/comm_model.h"
#include "hw/efficiency.h"
#include "hw/gpu.h"
#include "hw/interconnect.h"
#include "model/flops.h"
#include "model/memory.h"
#include "model/slicing.h"
#include "model/transformer.h"
#include "ref/ref_model.h"
#include "sched/baselines.h"
#include "sched/dependency.h"
#include "sched/generator.h"
#include "sched/op.h"
#include "sched/schedule.h"
#include "sched/serialize.h"
#include "sched/synth.h"
#include "sim/cost_model.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "sim/noise.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "trace/ascii.h"
#include "trace/chrome_trace.h"
#include "trace/csv.h"
#include "trace/fault_timeline.h"
#include "trace/memory_timeline.h"

#endif  // MEPIPE_MEPIPE_H_
