// Heterogeneous-fleet planning (ROADMAP item 4): stage→tier placement
// over a hw::ClusterTopology, dollar-cost pricing, and the cost-model
// wrapper that re-prices one candidate for a concrete placement.
//
// The pipeline of a placed candidate is built on a *reference
// sub-cluster* of the fastest tier sized to the layout's rank count, so
// the homogeneous machinery (BuildCandidate, TrainingCostModel, the
// schedule generators) applies unchanged. Heterogeneity is then layered
// on top:
//  - Static tier speed ratios become a per-stage StageProfile
//    (PlacementSlowdowns) fed through core/rebalance's exact
//    PartitionUnitsBySpeed, so slow tiers host fewer layers and the
//    program order is regenerated with
//    sched::GeneratorOptions::stage_time_scale — the same estimate →
//    rebalance → regenerate idiom MitigateStragglers uses for dynamic
//    stragglers.
//  - TierScaledCostModel (a sim::WrappingCostModel) dilates each
//    chunk's compute by its stage's tier slowdown, re-prices pipeline
//    boundary transfers through hw::CommModel::PipelineP2pAcross (WAN
//    when the boundary crosses tiers), and re-prices DP gradient
//    buckets on the hosting tier's fabric.
//  - Memory feasibility is checked per stage against the *hosting*
//    tier's usable memory, with static memory scaled by the adopted
//    layer share.
// A single-tier topology with a uniform placement takes none of these
// paths and reproduces SimulateIteration / SurrogatePrice bit for bit.
#ifndef MEPIPE_CORE_FLEET_H_
#define MEPIPE_CORE_FLEET_H_

#include <string>
#include <vector>

#include "core/iteration.h"
#include "core/rebalance.h"
#include "core/surrogate.h"
#include "hw/cluster.h"
#include "hw/comm_model.h"

namespace mepipe::core {

// Per-stage compute slowdown implied by the placement: the fastest
// tier's sustained matmul rate over the hosting tier's (each >= 1).
StageProfile PlacementSlowdowns(const hw::ClusterTopology& topology,
                                const hw::StagePlacement& placement);

// Deterministic placement candidates for a pp-stage pipeline: every
// uniform single-tier placement (tier index ascending), then every
// contiguous two-tier split — k stages on tier a followed by pp-k on
// tier b, for each ordered pair (a, b), k ascending. No capacity
// filtering; callers gate with ParallelLayout::Validate.
std::vector<hw::StagePlacement> EnumeratePlacements(const hw::ClusterTopology& topology,
                                                    int pp);

// A strategy pinned to a concrete stage→tier assignment.
struct PlacedStrategy {
  Strategy strategy;
  hw::StagePlacement placement;

  std::string ToString() const;  // "svpp pp8 dp2 ... @ t0x4|t1x4"
};

// The kDollarCost objective's decomposition (core/deployment pairs this
// with its acquisition/electricity parity math).
struct DollarCostBreakdown {
  double fleet_usd_per_hour = 0;        // occupied ranks × tier rental rate
  Bytes wan_egress_bytes = 0;           // per iteration, all WAN crossings
  double egress_usd_per_iteration = 0;  // billed per GB at each crossing
  double rental_usd_per_iteration = 0;  // fleet $/hr × iteration time
  double usd_per_iteration = 0;         // rental + egress
};

// Activation/gradient traffic leaving a region per iteration: for each
// chunk boundary whose two stages sit on tiers joined by a WAN link,
// global_batch samples × seq_len tokens × boundary bytes/token, in each
// direction (forward activations + backward gradients). TP replication
// of the boundary tensor is not billed (tp=1 on consumer fleets).
Bytes WanEgressBytesPerIteration(const model::TransformerConfig& config,
                                 const PlacedStrategy& placed,
                                 const sched::PipelineProblem& problem,
                                 const hw::ClusterTopology& topology);

DollarCostBreakdown PriceDollarCost(const hw::ClusterTopology& topology,
                                    const PlacedStrategy& placed, Seconds iteration_time,
                                    Bytes wan_egress_bytes,
                                    double egress_usd_per_gb_override = -1.0);

// Re-prices a homogeneous candidate (built on the fastest tier's
// reference sub-cluster) for a concrete placement. Wrap it *above*
// RebalancedCostModel so compute dilation applies to the re-partitioned
// layer shares:
//   stack.Wrap<RebalancedCostModel>(problem, plan)
//        .Wrap<TierScaledCostModel>(priced, topology, placed, plan);
class TierScaledCostModel : public sim::WrappingCostModel {
 public:
  // `priced` is the base TrainingCostModel (for boundary/param volumes —
  // the wrapped `base` may already be decorated); `plan` supplies the
  // per-chunk layer-share ratios (pass a default RebalancePlan for the
  // un-repartitioned case). Holds `base` and `priced` by reference.
  TierScaledCostModel(const sim::CostModel& base, const TrainingCostModel& priced,
                      const hw::ClusterTopology& topology, const PlacedStrategy& placed,
                      const RebalancePlan& plan);

  Seconds ComputeTime(const sched::OpId& op) const override;
  Seconds TransferTime(const sched::OpId& producer) const override;
  Seconds DpSyncTime(const sched::OpId& bucket) const override;

 private:
  const TrainingCostModel& priced_;
  hw::CommModel comm_;  // topology + placement aware
  hw::ParallelLayout layout_;
  sched::PipelineProblem problem_;
  std::vector<double> stage_slowdown_;  // per stage
  std::vector<double> chunk_scale_;     // per chunk layer-share ratio
};

// One placed candidate, fully priced. `result` carries the engine- (or
// table-) grade timing/memory verdict; `dollars` the rental + egress
// economics the kDollarCost objective ranks on.
struct PlacedIterationResult {
  PlacedStrategy placed;
  IterationResult result;
  DollarCostBreakdown dollars;
  std::vector<double> slowdown;  // per stage, from PlacementSlowdowns
  std::vector<int> stage_units;  // adopted per-stage layer split
};

struct PlacedSurrogateResult {
  PlacedStrategy placed;
  SurrogateResult result;
  DollarCostBreakdown dollars;
};

// DES-grade pricing of a placed candidate. Clean-run only: fault plans,
// noise, and straggler rebalancing in `options` are ignored (static
// heterogeneity is already folded into the candidate itself).
PlacedIterationResult SimulatePlacedIteration(const model::TransformerConfig& config,
                                              const PlacedStrategy& placed,
                                              const hw::ClusterTopology& topology,
                                              int global_batch,
                                              const IterationOptions& options = {});

// Analytic counterpart (tabular critical-path pass), cacheable through
// SurrogateOptions::cache — keys carry TopologyFingerprint and the
// placement hash so fleet prices never collide with homogeneous ones.
PlacedSurrogateResult SurrogatePricePlaced(const model::TransformerConfig& config,
                                           const PlacedStrategy& placed,
                                           const hw::ClusterTopology& topology,
                                           int global_batch,
                                           const SurrogateOptions& options = {});

}  // namespace mepipe::core

#endif  // MEPIPE_CORE_FLEET_H_
