// Sequence Virtual Pipeline Parallelism — the paper's primary
// contribution (§4).
//
// SVPP schedules forward and backward passes at the granularity of
// (slice, chunk) units and interleaves them 1F1B-style, advancing the
// first backward pass so that at most `f` forward passes are ever
// retained per stage. The family of schedules parameterized by f trades
// bubble ratio against activation memory (§4.2, Figure 5):
//   f = v·s                       — minimal memory, most bubbles
//   f = v·max(p,s)+min(p,s)−1     — lowest bubble, Table 3's memory bound
#ifndef MEPIPE_CORE_SVPP_H_
#define MEPIPE_CORE_SVPP_H_

#include "sched/generator.h"
#include "sched/schedule.h"

namespace mepipe::core {

struct SvppOptions {
  int stages = 1;          // p
  int virtual_chunks = 1;  // v
  int slices = 1;          // s
  int micros = 1;          // n
  // Memory variant: forward passes retained before the first backward on
  // stage 0 (§4.2). 0 selects the lowest-bubble variant automatically.
  int max_inflight = 0;
  // MEPipe splits B/W and defers W to the engine's fill policy (§5). Set
  // false to fold W into B (plain SVPP without fine-grained W).
  bool split_backward = true;
  // §4.3 backward rescheduling optimization (on by default).
  bool reschedule_backwards = true;
};

// Lower bound on f: all v·s forwards of the first micro-batch must finish
// before its first backward (§4.2).
int MinInflight(const SvppOptions& options);

// The variant Table 3 analyzes: f = v·max(p,s) + min(p,s) − 1. Its
// activation footprint is the paper's memory bound.
int Table3Inflight(const SvppOptions& options);

// The f beyond which this engine measures no further bubble reduction.
// Slightly above the Table 3 bound: retaining a slice's activations
// spans the full down-and-up round trip plus the (s−1)-slice backward
// stagger, so the steady state needs ≈ 2·v·s extra in-flight forwards of
// slack (see EXPERIMENTS.md for the measurement).
int MaxUsefulInflight(const SvppOptions& options);

// Generates and validates the SVPP schedule for the given variant.
// Throws CheckError for infeasible options (e.g. f < v·s).
sched::Schedule GenerateSvpp(const SvppOptions& options);

}  // namespace mepipe::core

#endif  // MEPIPE_CORE_SVPP_H_
