// Strategy grid search (§7.1 "Baseline", §7.3 "Selection of the Optimal
// Parallel Strategy"): exhaustively evaluates the (PP, DP, CP/SPP, VP,
// recomputation) combinations a method admits and returns the fastest
// feasible one — exactly how the paper tuned every system it compares.
#ifndef MEPIPE_CORE_PLANNER_H_
#define MEPIPE_CORE_PLANNER_H_

#include <optional>
#include <vector>

#include "core/fleet.h"
#include "core/iteration.h"
#include "core/resilience.h"
#include "core/surrogate.h"

namespace mepipe::core {

// What the grid search optimizes.
//  - kIterationTime: fault-free iteration time — the paper's §7 setup.
//  - kGoodput: delivered training throughput under a failure model.
//    Each feasible candidate is priced end-to-end: its checkpoint write
//    cost follows from the strategy's worst checkpoint shard
//    (IterationResult::checkpoint_shard through CheckpointWriteCost),
//    OptimalCheckpointInterval picks the Young/Daly-refined interval for
//    that write cost, and SimulateTrainingRun measures the goodput the
//    strategy actually delivers. Candidates are ranked by
//    goodput.effective_iteration_time = iteration_time / goodput — the
//    wall-clock cost of one useful iteration — so a slightly slower
//    schedule with cheaper checkpoints or a friendlier restart scope can
//    out-rank the fault-free winner.
//  - kDollarCost: dollars per iteration — fleet rental (occupied ranks ×
//    tier $/GPU-hour × iteration time) plus WAN egress. Meaningful on the
//    fleet path (SearchBestFleetStrategy), where tiers price differently;
//    on the homogeneous path every candidate rents the same fleet, so the
//    ranking degenerates to kIterationTime.
enum class PlannerObjective { kIterationTime, kGoodput, kDollarCost };

struct PlannerOptions {
  IterationOptions iteration;
  // §7.1: minimal data-parallel size used to emulate large-cluster runs.
  int min_dp = 2;
  std::vector<int> pp_candidates = {2, 4, 8, 16, 32};
  // CP sizes for CP methods, SPP sizes for slice methods.
  std::vector<int> slice_candidates = {1, 2, 4, 8, 16};
  std::vector<int> vp_candidates = {1, 2};
  std::vector<int> tp_candidates = {1};  // opened up for the A100 runs
  bool allow_recompute = true;
  // Cost-model-guided pruning (§9's "automated parallelization
  // frameworks" direction): skip configurations whose lower bound
  // already exceeds the best feasible score found so far. Same winner,
  // fewer simulations. The bound (core::SurrogateLowerBound) is
  // fault-aware — straggler windows cap each stage's work rate — so
  // pruning stays on in the joint straggler × goodput search. Only
  // search_rebalanced disables it: re-partitioning moves work across
  // stages, invalidating any per-stage bound.
  bool prune = false;
  // ---- two-phase surrogate search (core/surrogate) ----
  // Phase 1 prices the whole grid with the analytic surrogate (on
  // `threads` workers), phase 2 runs the exact DES + interval solver on
  // the `surrogate_top_k` best surrogate-feasible candidates only.
  // Winner parity with the exhaustive search holds on every pinned
  // planner configuration (tested for both objectives) but is heuristic
  // in general: the surrogate's ranking must put the true winner inside
  // the top-k. Falls back to the exhaustive path under a fault plan (the
  // surrogate prices clean runs only) or when no candidate is
  // surrogate-feasible.
  bool two_phase = false;
  int surrogate_top_k = 8;
  // Worker threads for the surrogate sweep: 0 = hardware concurrency,
  // 1 = serial. The winner is bit-identical regardless of thread count —
  // candidates are scored independently, ranked by (score, grid order),
  // and the exact phase runs in grid order.
  int threads = 1;
  // Optional cross-search pricing cache (not owned; thread-safe).
  // Serves repeated shapes across planner re-runs and memoizes the
  // goodput objective's per-candidate interval solve.
  SurrogateCache* cache = nullptr;
  // Evaluate every strategy under this engine-level fault plan (empty =
  // clean; overrides iteration.fault_plan when set). Value-semantic:
  // assigning a FaultPlan copies it into shared storage.
  //
  // Composes with objective = kGoodput into a *joint* straggler ×
  // goodput search: each candidate's iteration time is measured under
  // the fault plan (and, with search_rebalanced, the better of the
  // plain and rebalanced variants is kept), and that faulted/mitigated
  // iteration time is what the goodput pricing runs on — so the search
  // ranks by wall-clock cost per useful iteration with *both* straggler
  // dilation and failure/checkpoint overhead priced in one pass. With
  // either axis off the search reduces exactly to the other standalone
  // mode (pinned by tests): an empty plan + kGoodput is the pure
  // goodput search, a plan + kIterationTime the pure straggler search.
  sim::FaultPlanRef fault_plan;
  // Also evaluate each strategy's straggler-rebalanced variant
  // (core/rebalance) and keep the better of the two. Only meaningful
  // together with a fault plan.
  bool search_rebalanced = false;
  // Ranking objective (see PlannerObjective).
  PlannerObjective objective = PlannerObjective::kIterationTime;
  // Failure model pricing the goodput objective: fleet size, MTBF,
  // recovery cost, restart scope, run length, seed. The checkpoint
  // interval and write cost are overridden per candidate (solver-chosen
  // interval; write cost from the strategy's checkpoint shard), and
  // dp_replicas is set to the candidate's dp. The default 1024-GPU fleet
  // mirrors §7.1's large-cluster emulation.
  ResilienceOptions resilience;
  // Checkpoint-store bandwidth/barrier pricing the per-strategy write.
  CheckpointCostOptions checkpoint_cost;
  // Refinement effort of the per-candidate interval solver.
  CheckpointIntervalOptions interval_solver;
};

struct PlannerResult {
  std::optional<IterationResult> best;      // fastest feasible, if any
  std::vector<IterationResult> evaluated;   // every combination tried
  int simulated = 0;                        // full simulations run
  int pruned = 0;                           // skipped via the lower bound
  int surrogate_priced = 0;                 // phase-1 analytic prices (two_phase)
  int cache_hits = 0;                       // of those, served from the cache
};

// Searches the grid for `method`. Timelines are kept only on the winner.
PlannerResult SearchBestStrategy(Method method, const model::TransformerConfig& config,
                                 const hw::ClusterSpec& cluster, int global_batch,
                                 const PlannerOptions& options = {});

// ---- Heterogeneous-fleet search (core/fleet) ------------------------------

// Outcome of SearchBestFleetStrategy. `evaluated` counts the placed grid
// after layout validation; placements rejected by
// ParallelLayout::Validate never enter the grid and are tallied in
// `invalid_placements`.
struct FleetPlannerResult {
  std::optional<PlacedIterationResult> best;  // best feasible, if any
  // Phase-1 surrogate prices in grid order (empty unless two_phase).
  std::vector<PlacedSurrogateResult> priced;
  int evaluated = 0;
  int invalid_placements = 0;
  int simulated = 0;
  int surrogate_priced = 0;
  int cache_hits = 0;
};

// Grid search over (strategy shape × dp × stage→tier placement) on a
// tiered fleet, ranked by `options.objective` (kIterationTime or
// kDollarCost; kGoodput is not supported here and CHECK-fails). Unlike
// the homogeneous search the layout need not cover the whole fleet: dp
// runs over powers of two >= min_dp while the layout still fits, and
// every placement from EnumeratePlacements that validates becomes a
// candidate axis. With options.two_phase the grid is surrogate-priced in
// parallel (SurrogatePricePlaced; thread-count-invariant winner — same
// (score, grid order) ranking as the homogeneous driver) and the DES
// runs only on the surrogate top-k. Clean-run only: a fault plan
// CHECK-fails.
FleetPlannerResult SearchBestFleetStrategy(Method method,
                                           const model::TransformerConfig& config,
                                           const hw::ClusterTopology& topology,
                                           int global_batch,
                                           const PlannerOptions& options = {});

// Convenience: searches several methods and returns per-method winners.
std::vector<PlannerResult> SearchMethods(const std::vector<Method>& methods,
                                         const model::TransformerConfig& config,
                                         const hw::ClusterSpec& cluster, int global_batch,
                                         const PlannerOptions& options = {});

}  // namespace mepipe::core

#endif  // MEPIPE_CORE_PLANNER_H_
