#include "core/planner.h"

#include <algorithm>

#include "common/check.h"
#include "core/deployment.h"

namespace mepipe::core {
namespace {

bool UsesSlices(Method method) {
  return method == Method::kSvpp || method == Method::kTeraPipe;
}

bool SplitsBackward(Method method) {
  return method == Method::kZb1p || method == Method::kZbv || method == Method::kZbvCapped ||
         method == Method::kSvpp;
}

std::vector<int> VpCandidatesFor(Method method, const PlannerOptions& options) {
  switch (method) {
    case Method::kVpp: {
      std::vector<int> vps;
      for (int vp : options.vp_candidates) {
        if (vp >= 2) {
          vps.push_back(vp);
        }
      }
      if (vps.empty()) {
        vps.push_back(2);
      }
      return vps;
    }
    case Method::kZbv:
    case Method::kZbvCapped:
    case Method::kHanayo:
      return {2};
    case Method::kSvpp:
      return options.vp_candidates;
    default:
      return {1};
  }
}

// Compute-only lower bound on a strategy's iteration time: the busiest
// stage must at least execute all of its F/B/W work back to back, and
// the iteration ends with the data-parallel sync and optimizer step. Any
// bubble or transfer only adds to this. Returns nullopt when the
// strategy is structurally inapplicable (the full evaluation will report
// the reason).
std::optional<Seconds> IterationLowerBound(Method method,
                                           const model::TransformerConfig& config,
                                           const Strategy& strategy,
                                           const hw::ClusterSpec& cluster, int global_batch,
                                           const IterationOptions& options) {
  if (global_batch % strategy.dp != 0) {
    return std::nullopt;
  }
  sched::PipelineProblem problem;
  problem.stages = strategy.pp;
  problem.virtual_chunks = strategy.vp;
  problem.slices = strategy.spp;
  problem.micros = global_batch / strategy.dp;
  problem.split_backward = SplitsBackward(method);
  try {
    problem.Validate();
    const TrainingCostModel costs(config, strategy, cluster, problem, options.cost);
    Seconds busiest = 0;
    for (int stage = 0; stage < problem.stages; ++stage) {
      Seconds busy = 0;
      for (int chunk = 0; chunk < problem.num_chunks(); ++chunk) {
        if (problem.stage_of_chunk(chunk) != stage) {
          continue;
        }
        for (int slice = 0; slice < problem.slices; ++slice) {
          busy += costs.ComputeTime({sched::OpKind::kForward, 0, slice, chunk});
          busy += costs.ComputeTime({sched::OpKind::kBackward, 0, slice, chunk});
          if (problem.split_backward) {
            busy += costs.ComputeTime({sched::OpKind::kWeightGrad, 0, slice, chunk});
          }
        }
      }
      busiest = std::max(busiest, busy * problem.micros);
    }
    // With overlapped DP sync (IterationOptions::dp_overlap) the whole
    // collective can hide inside pipeline bubbles, so it cannot be part
    // of a lower bound; serialized sync always adds in full.
    const Seconds dp_sync = options.dp_overlap ? 0.0 : costs.DpSyncTime();
    return busiest + dp_sync + options.optimizer_step;
  } catch (const CheckError&) {
    return std::nullopt;  // let the full evaluation explain why
  }
}

// Prices a feasible result under the goodput objective's failure model:
// per-strategy checkpoint write cost from its worst shard, Young/Daly +
// refinement for the interval, then a simulated training run for the
// delivered goodput. No-op on infeasible results. Under a fault plan
// `result.iteration_time` is the faulted (possibly mitigated) time, so
// the joint mode compounds failure overhead on top of straggler
// dilation — the PlannerOptions::fault_plan contract.
void PriceGoodput(IterationResult& result, const PlannerOptions& options) {
  if (!result.feasible || options.objective != PlannerObjective::kGoodput) {
    return;
  }
  ResilienceOptions res = options.resilience;
  res.reliability.checkpoint_write_cost =
      CheckpointWriteCost(result.checkpoint_shard, options.checkpoint_cost);
  res.dp_replicas = result.strategy.dp;
  const CheckpointIntervalSolution sol =
      OptimalCheckpointInterval(result.iteration_time, res, options.interval_solver);
  result.goodput.priced = true;
  result.goodput.checkpoint_interval = sol.refined;
  result.goodput.checkpoint_write_cost = res.reliability.checkpoint_write_cost;
  result.goodput.goodput = sol.goodput;
  result.goodput.effective_iteration_time =
      result.iteration_time / std::max(sol.goodput, 1e-12);
}

// The quantity the search minimizes for `result` under `options`'
// objective. Feasible results only.
Seconds Score(const IterationResult& result, const PlannerOptions& options) {
  return options.objective == PlannerObjective::kGoodput
             ? result.goodput.effective_iteration_time
             : result.iteration_time;
}

}  // namespace

PlannerResult SearchBestStrategy(Method method, const model::TransformerConfig& config,
                                 const hw::ClusterSpec& cluster, int global_batch,
                                 const PlannerOptions& options) {
  PlannerResult out;
  const int world = cluster.world_size();

  IterationOptions eval_options = options.iteration;
  eval_options.keep_timeline = false;
  if (options.fault_plan) {
    eval_options.fault_plan = options.fault_plan;
  }
  const bool faulted = !eval_options.fault_plan.empty();
  // The compute-only lower bound assumes clean stage rates; under a
  // fault plan it would prune configurations that are merely slow when
  // dilated, so pruning is off.
  const bool prune = options.prune && !faulted;

  for (int tp : options.tp_candidates) {
    for (int pp : options.pp_candidates) {
      for (int slice : options.slice_candidates) {
        for (int vp : VpCandidatesFor(method, options)) {
          const std::vector<bool> recompute_choices =
              (options.allow_recompute && !SplitsBackward(method))
                  ? std::vector<bool>{false, true}
                  : std::vector<bool>{false};
          for (bool recompute : recompute_choices) {
            Strategy strategy;
            strategy.method = method;
            strategy.pp = pp;
            strategy.tp = tp;
            strategy.vp = vp;
            strategy.recompute = recompute;
            if (UsesSlices(method)) {
              strategy.cp = 1;
              strategy.spp = slice;
            } else {
              strategy.cp = slice;
              strategy.spp = 1;
            }
            const int denom = pp * strategy.cp * tp;
            if (denom == 0 || world % denom != 0) {
              continue;
            }
            strategy.dp = world / denom;
            if (strategy.dp < options.min_dp) {
              continue;
            }
            if (prune && out.best) {
              // Sound under both objectives: the goodput score
              // iteration_time / goodput never falls below the
              // iteration time itself (goodput <= 1), so a compute
              // bound above the incumbent's score bounds the candidate
              // out either way.
              const auto bound = IterationLowerBound(method, config, strategy, cluster,
                                                     global_batch, eval_options);
              if (bound && *bound >= Score(*out.best, options)) {
                ++out.pruned;
                IterationResult skipped;
                skipped.strategy = strategy;
                skipped.note = "pruned: compute lower bound above incumbent";
                out.evaluated.push_back(std::move(skipped));
                continue;
              }
            }
            IterationResult result =
                SimulateIteration(config, strategy, cluster, global_batch, eval_options);
            ++out.simulated;
            PriceGoodput(result, options);
            if (options.search_rebalanced && faulted && !eval_options.rebalance_stragglers) {
              IterationOptions mitigated_options = eval_options;
              mitigated_options.rebalance_stragglers = true;
              IterationResult mitigated =
                  SimulateIteration(config, strategy, cluster, global_batch, mitigated_options);
              ++out.simulated;
              PriceGoodput(mitigated, options);
              if (mitigated.feasible &&
                  (!result.feasible ||
                   Score(mitigated, options) < Score(result, options))) {
                result = std::move(mitigated);
              }
            }
            if (result.feasible) {
              if (!out.best || Score(result, options) < Score(*out.best, options)) {
                out.best = result;
              }
            }
            out.evaluated.push_back(std::move(result));
          }
        }
      }
    }
  }

  // Re-simulate the winner with its timeline for downstream rendering
  // (and re-price it: the re-simulation resets the goodput fields).
  if (out.best) {
    IterationOptions final_options = eval_options;
    final_options.keep_timeline = true;
    final_options.rebalance_stragglers =
        eval_options.rebalance_stragglers || out.best->mitigation.rebalanced;
    *out.best =
        SimulateIteration(config, out.best->strategy, cluster, global_batch, final_options);
    MEPIPE_CHECK(out.best->feasible);
    PriceGoodput(*out.best, options);
  }
  return out;
}

std::vector<PlannerResult> SearchMethods(const std::vector<Method>& methods,
                                         const model::TransformerConfig& config,
                                         const hw::ClusterSpec& cluster, int global_batch,
                                         const PlannerOptions& options) {
  std::vector<PlannerResult> results;
  results.reserve(methods.size());
  for (Method method : methods) {
    results.push_back(SearchBestStrategy(method, config, cluster, global_batch, options));
  }
  return results;
}

}  // namespace mepipe::core
