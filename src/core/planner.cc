#include "core/planner.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/check.h"
#include "core/deployment.h"

namespace mepipe::core {
namespace {

std::vector<int> VpCandidatesFor(Method method, const PlannerOptions& options) {
  switch (method) {
    case Method::kVpp: {
      std::vector<int> vps;
      for (int vp : options.vp_candidates) {
        if (vp >= 2) {
          vps.push_back(vp);
        }
      }
      if (vps.empty()) {
        vps.push_back(2);
      }
      return vps;
    }
    case Method::kZbv:
    case Method::kZbvCapped:
    case Method::kHanayo:
      return {2};
    case Method::kSynth:
      // The synthesizer is budget-general across v: sweep the same
      // virtual-chunk candidates as SVPP (v=1 recovers the 1F1B block,
      // v=2 the V-shape family).
      return options.vp_candidates;
    case Method::kSvpp:
      return options.vp_candidates;
    default:
      return {1};
  }
}

// The full candidate grid for `method`, in the canonical enumeration
// order tp → pp → slice → vp → recompute. This order is the search's
// tie-break: every driver (serial exhaustive, pruned, two-phase
// parallel) ranks equal scores by position in this list, which is what
// makes the parallel winner bit-identical to the serial one.
std::vector<Strategy> EnumerateCandidates(Method method, const hw::ClusterSpec& cluster,
                                          const PlannerOptions& options) {
  std::vector<Strategy> grid;
  const int world = cluster.world_size();
  const hw::ClusterTopology topology = hw::SingleTierTopology(cluster);
  for (int tp : options.tp_candidates) {
    for (int pp : options.pp_candidates) {
      for (int slice : options.slice_candidates) {
        for (int vp : VpCandidatesFor(method, options)) {
          const std::vector<bool> recompute_choices =
              (options.allow_recompute && !MethodSplitsBackward(method))
                  ? std::vector<bool>{false, true}
                  : std::vector<bool>{false};
          for (bool recompute : recompute_choices) {
            Strategy strategy;
            strategy.method = method;
            strategy.pp = pp;
            strategy.tp = tp;
            strategy.vp = vp;
            strategy.recompute = recompute;
            if (MethodUsesSlices(method)) {
              strategy.cp = 1;
              strategy.spp = slice;
            } else {
              strategy.cp = slice;
              strategy.spp = 1;
            }
            const int denom = pp * strategy.cp * tp;
            if (denom == 0) {
              continue;
            }
            strategy.dp = world / denom;
            if (strategy.dp < options.min_dp) {
              continue;
            }
            // Structured admissibility (kWorldMismatch subsumes the old
            // world % denom test: an integer-truncated dp cannot cover
            // the world exactly).
            if (!strategy.layout().Validate(topology).empty()) {
              continue;
            }
            grid.push_back(strategy);
          }
        }
      }
    }
  }
  return grid;
}

// Prices a feasible result under the goodput objective's failure model:
// per-strategy checkpoint write cost from its worst shard, Young/Daly +
// refinement for the interval (memoized through the SurrogateCache when
// one is attached), then a simulated training run for the delivered
// goodput. No-op on infeasible results. Under a fault plan
// `result.iteration_time` is the faulted (possibly mitigated) time, so
// the joint mode compounds failure overhead on top of straggler
// dilation — the PlannerOptions::fault_plan contract.
void PriceGoodput(IterationResult& result, const PlannerOptions& options) {
  if (!result.feasible || options.objective != PlannerObjective::kGoodput) {
    return;
  }
  ResilienceOptions res = options.resilience;
  res.reliability.checkpoint_write_cost =
      CheckpointWriteCost(result.checkpoint_shard, options.checkpoint_cost);
  res.dp_replicas = result.strategy.dp;
  const CheckpointIntervalSolution sol =
      options.cache != nullptr
          ? options.cache->IntervalSolve(result.iteration_time, res, options.interval_solver)
          : OptimalCheckpointInterval(result.iteration_time, res, options.interval_solver);
  result.goodput.priced = true;
  result.goodput.checkpoint_interval = sol.refined;
  result.goodput.checkpoint_write_cost = res.reliability.checkpoint_write_cost;
  result.goodput.goodput = sol.goodput;
  result.goodput.effective_iteration_time =
      result.iteration_time / std::max(sol.goodput, 1e-12);
}

// The quantity the search minimizes for `result` under `options`'
// objective. Feasible results only.
Seconds Score(const IterationResult& result, const PlannerOptions& options) {
  return options.objective == PlannerObjective::kGoodput
             ? result.goodput.effective_iteration_time
             : result.iteration_time;
}

// The surrogate analogue of Score for phase-1 ranking: closed-form
// goodput pricing instead of the Monte-Carlo-refined solve.
Seconds SurrogateScore(const SurrogateResult& result, const PlannerOptions& options) {
  if (options.objective != PlannerObjective::kGoodput) {
    return result.iteration_time;
  }
  ResilienceOptions res = options.resilience;
  res.dp_replicas = result.strategy.dp;
  return ClosedFormGoodput(result.iteration_time, result.checkpoint_shard, res,
                           options.checkpoint_cost)
      .effective_iteration_time;
}

// Phase 1 of the two-phase driver: surrogate-price every grid candidate
// on `threads` workers (atomic work index; results land in their
// candidate's slot, so the outcome is thread-count-independent).
std::vector<SurrogateResult> SurrogateSweep(const std::vector<Strategy>& grid,
                                            const model::TransformerConfig& config,
                                            const hw::ClusterSpec& cluster, int global_batch,
                                            const IterationOptions& iteration,
                                            SurrogateCache* cache, int threads) {
  std::vector<SurrogateResult> priced(grid.size());
  if (grid.empty()) {
    return priced;
  }
  SurrogateOptions surrogate;
  surrogate.iteration = iteration;
  surrogate.iteration.keep_timeline = false;
  surrogate.iteration.keep_schedule = false;
  surrogate.cache = cache;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::clamp(threads, 1, static_cast<int>(grid.size()));

  std::atomic<std::size_t> next{0};
  const auto worker = [&]() {
    for (std::size_t i = next.fetch_add(1); i < grid.size(); i = next.fetch_add(1)) {
      try {
        priced[i] = SurrogatePrice(config, grid[i], cluster, global_batch, surrogate);
      } catch (const CheckError& err) {
        priced[i].strategy = grid[i];
        priced[i].feasible = false;
        priced[i].note = err.what();
      }
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  return priced;
}

}  // namespace

PlannerResult SearchBestStrategy(Method method, const model::TransformerConfig& config,
                                 const hw::ClusterSpec& cluster, int global_batch,
                                 const PlannerOptions& options) {
  PlannerResult out;

  IterationOptions eval_options = options.iteration;
  eval_options.keep_timeline = false;
  if (options.fault_plan) {
    eval_options.fault_plan = options.fault_plan;
  }
  const bool faulted = !eval_options.fault_plan.empty();
  // The lower bound is fault-aware (straggler windows cap each stage's
  // rate), so pruning survives a fault plan. Rebalanced search moves
  // work across stages, which no per-stage bound survives — off there.
  const bool prune = options.prune && !(faulted && options.search_rebalanced);

  const std::vector<Strategy> grid = EnumerateCandidates(method, cluster, options);

  // ---- phase 1: surrogate sweep + top-k selection (two_phase only) ----
  // The surrogate prices clean runs only; under a fault plan the search
  // stays exhaustive (the fault-aware bound still prunes it).
  std::vector<char> selected;
  std::vector<SurrogateResult> priced;
  const bool two_phase = options.two_phase && !faulted;
  if (two_phase) {
    priced = SurrogateSweep(grid, config, cluster, global_batch, eval_options,
                            options.cache, options.threads);
    out.surrogate_priced = static_cast<int>(priced.size());
    for (const SurrogateResult& result : priced) {
      out.cache_hits += result.cache_hit ? 1 : 0;
    }
    std::vector<std::pair<Seconds, std::size_t>> ranked;  // (score, grid index)
    ranked.reserve(priced.size());
    for (std::size_t i = 0; i < priced.size(); ++i) {
      if (priced[i].feasible) {
        ranked.push_back({SurrogateScore(priced[i], options), i});
      }
    }
    std::sort(ranked.begin(), ranked.end());
    const std::size_t top_k =
        std::min<std::size_t>(ranked.size(),
                              static_cast<std::size_t>(std::max(1, options.surrogate_top_k)));
    selected.assign(grid.size(), 0);
    for (std::size_t r = 0; r < top_k; ++r) {
      selected[ranked[r].second] = 1;
    }
    if (ranked.empty()) {
      // Nothing surrogate-feasible: fall back to the exhaustive pass so
      // a conservative surrogate can never hide a feasible strategy.
      selected.assign(grid.size(), 1);
    }
  }

  // ---- phase 2 / exhaustive: exact DES + goodput pricing ----
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Strategy& strategy = grid[i];
    if (two_phase && !selected[i]) {
      IterationResult skipped;
      skipped.strategy = strategy;
      skipped.note = priced[i].feasible
                         ? "skipped: outside surrogate top-k"
                         : "surrogate: " + priced[i].note;
      out.evaluated.push_back(std::move(skipped));
      continue;
    }
    if (prune && out.best) {
      // Sound under both objectives: the goodput score
      // iteration_time / goodput never falls below the iteration time
      // itself (goodput <= 1), so a bound above the incumbent's score
      // bounds the candidate out either way.
      const auto bound =
          SurrogateLowerBound(config, strategy, cluster, global_batch, eval_options);
      if (bound && *bound >= Score(*out.best, options)) {
        ++out.pruned;
        IterationResult skipped;
        skipped.strategy = strategy;
        skipped.note = "pruned: lower bound above incumbent";
        out.evaluated.push_back(std::move(skipped));
        continue;
      }
    }
    IterationResult result =
        SimulateIteration(config, strategy, cluster, global_batch, eval_options);
    ++out.simulated;
    PriceGoodput(result, options);
    if (options.search_rebalanced && faulted && !eval_options.rebalance_stragglers) {
      IterationOptions mitigated_options = eval_options;
      mitigated_options.rebalance_stragglers = true;
      IterationResult mitigated =
          SimulateIteration(config, strategy, cluster, global_batch, mitigated_options);
      ++out.simulated;
      PriceGoodput(mitigated, options);
      if (mitigated.feasible &&
          (!result.feasible || Score(mitigated, options) < Score(result, options))) {
        result = std::move(mitigated);
      }
    }
    if (result.feasible) {
      if (!out.best || Score(result, options) < Score(*out.best, options)) {
        out.best = result;
      }
    }
    out.evaluated.push_back(std::move(result));
  }

  // Re-simulate the winner with its timeline for downstream rendering
  // (and re-price it: the re-simulation resets the goodput fields).
  if (out.best) {
    IterationOptions final_options = eval_options;
    final_options.keep_timeline = true;
    final_options.rebalance_stragglers =
        eval_options.rebalance_stragglers || out.best->mitigation.rebalanced;
    *out.best =
        SimulateIteration(config, out.best->strategy, cluster, global_batch, final_options);
    MEPIPE_CHECK(out.best->feasible);
    PriceGoodput(*out.best, options);
  }
  return out;
}

namespace {

// The fleet grid in canonical order: tp → pp → slice → vp → recompute →
// dp (powers of two) → placement (EnumeratePlacements order). As in the
// homogeneous search, this order is the tie-break that makes the
// parallel two-phase winner thread-count-invariant.
std::vector<PlacedStrategy> EnumerateFleetCandidates(Method method,
                                                     const hw::ClusterTopology& topology,
                                                     const PlannerOptions& options,
                                                     int* invalid_placements) {
  std::vector<PlacedStrategy> grid;
  const int world = topology.world_size();
  for (int tp : options.tp_candidates) {
    for (int pp : options.pp_candidates) {
      const std::vector<hw::StagePlacement> placements = EnumeratePlacements(topology, pp);
      for (int slice : options.slice_candidates) {
        for (int vp : VpCandidatesFor(method, options)) {
          const std::vector<bool> recompute_choices =
              (options.allow_recompute && !MethodSplitsBackward(method))
                  ? std::vector<bool>{false, true}
                  : std::vector<bool>{false};
          for (bool recompute : recompute_choices) {
            Strategy strategy;
            strategy.method = method;
            strategy.pp = pp;
            strategy.tp = tp;
            strategy.vp = vp;
            strategy.recompute = recompute;
            if (MethodUsesSlices(method)) {
              strategy.cp = 1;
              strategy.spp = slice;
            } else {
              strategy.cp = slice;
              strategy.spp = 1;
            }
            const int denom = pp * strategy.cp * tp;
            if (denom == 0) {
              continue;
            }
            // The layout need not cover the fleet: dp sweeps powers of
            // two while the rank count still fits somewhere.
            for (int dp = 1; dp <= world / denom; dp *= 2) {
              if (dp < options.min_dp) {
                continue;
              }
              strategy.dp = dp;
              for (const hw::StagePlacement& placement : placements) {
                if (!strategy.layout().Validate(topology, placement).empty()) {
                  ++*invalid_placements;
                  continue;
                }
                grid.push_back({strategy, placement});
              }
            }
          }
        }
      }
    }
  }
  return grid;
}

// The fleet search's ranking quantity (kGoodput is rejected upstream).
double FleetScore(Seconds iteration_time, const DollarCostBreakdown& dollars,
                  const PlannerOptions& options) {
  return options.objective == PlannerObjective::kDollarCost ? dollars.usd_per_iteration
                                                            : iteration_time;
}

// Phase 1 of the fleet driver: SurrogatePricePlaced over the placed grid
// on `threads` workers. Same atomic-work-index scheme as SurrogateSweep,
// so the result vector is independent of the thread count.
std::vector<PlacedSurrogateResult> FleetSurrogateSweep(
    const std::vector<PlacedStrategy>& grid, const model::TransformerConfig& config,
    const hw::ClusterTopology& topology, int global_batch, const IterationOptions& iteration,
    SurrogateCache* cache, int threads) {
  std::vector<PlacedSurrogateResult> priced(grid.size());
  if (grid.empty()) {
    return priced;
  }
  SurrogateOptions surrogate;
  surrogate.iteration = iteration;
  surrogate.iteration.keep_timeline = false;
  surrogate.iteration.keep_schedule = false;
  surrogate.cache = cache;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::clamp(threads, 1, static_cast<int>(grid.size()));

  std::atomic<std::size_t> next{0};
  const auto worker = [&]() {
    for (std::size_t i = next.fetch_add(1); i < grid.size(); i = next.fetch_add(1)) {
      try {
        priced[i] = SurrogatePricePlaced(config, grid[i], topology, global_batch, surrogate);
      } catch (const CheckError& err) {
        priced[i].placed = grid[i];
        priced[i].result.strategy = grid[i].strategy;
        priced[i].result.feasible = false;
        priced[i].result.note = err.what();
      }
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  return priced;
}

}  // namespace

FleetPlannerResult SearchBestFleetStrategy(Method method,
                                           const model::TransformerConfig& config,
                                           const hw::ClusterTopology& topology,
                                           int global_batch, const PlannerOptions& options) {
  MEPIPE_CHECK(options.objective != PlannerObjective::kGoodput)
      << "the goodput objective is not supported on the fleet path";
  MEPIPE_CHECK(options.fault_plan.empty() && options.iteration.fault_plan.empty())
      << "the fleet search prices clean runs only";
  FleetPlannerResult out;

  IterationOptions eval_options = options.iteration;
  eval_options.keep_timeline = false;

  std::vector<PlacedStrategy> grid =
      EnumerateFleetCandidates(method, topology, options, &out.invalid_placements);
  out.evaluated = static_cast<int>(grid.size());

  // ---- phase 1: analytic placement pricing (two_phase only) ----
  std::vector<char> selected(grid.size(), 1);
  if (options.two_phase && !grid.empty()) {
    out.priced = FleetSurrogateSweep(grid, config, topology, global_batch, eval_options,
                                     options.cache, options.threads);
    out.surrogate_priced = static_cast<int>(out.priced.size());
    for (const PlacedSurrogateResult& priced : out.priced) {
      out.cache_hits += priced.result.cache_hit ? 1 : 0;
    }
    std::vector<std::pair<double, std::size_t>> ranked;  // (score, grid index)
    ranked.reserve(out.priced.size());
    for (std::size_t i = 0; i < out.priced.size(); ++i) {
      if (out.priced[i].result.feasible) {
        ranked.push_back(
            {FleetScore(out.priced[i].result.iteration_time, out.priced[i].dollars, options),
             i});
      }
    }
    std::sort(ranked.begin(), ranked.end());
    if (!ranked.empty()) {
      const std::size_t top_k = std::min<std::size_t>(
          ranked.size(), static_cast<std::size_t>(std::max(1, options.surrogate_top_k)));
      selected.assign(grid.size(), 0);
      for (std::size_t r = 0; r < top_k; ++r) {
        selected[ranked[r].second] = 1;
      }
    }
    // Nothing surrogate-feasible: keep everything selected so the DES
    // pass can still find a feasible placement the surrogate missed.
  }

  // ---- phase 2 / exhaustive: DES in grid order ----
  double best_score = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!selected[i]) {
      continue;
    }
    PlacedIterationResult result;
    try {
      result = SimulatePlacedIteration(config, grid[i], topology, global_batch, eval_options);
    } catch (const CheckError& err) {
      result.placed = grid[i];
      result.result.strategy = grid[i].strategy;
      result.result.feasible = false;
      result.result.note = err.what();
    }
    ++out.simulated;
    if (!result.result.feasible) {
      continue;
    }
    const double score = FleetScore(result.result.iteration_time, result.dollars, options);
    if (!out.best || score < best_score) {
      best_score = score;
      out.best = std::move(result);
    }
  }

  // Re-simulate the winner with its timeline for downstream rendering.
  if (out.best) {
    IterationOptions final_options = eval_options;
    final_options.keep_timeline = true;
    *out.best =
        SimulatePlacedIteration(config, out.best->placed, topology, global_batch, final_options);
    MEPIPE_CHECK(out.best->result.feasible);
  }
  return out;
}

std::vector<PlannerResult> SearchMethods(const std::vector<Method>& methods,
                                         const model::TransformerConfig& config,
                                         const hw::ClusterSpec& cluster, int global_batch,
                                         const PlannerOptions& options) {
  std::vector<PlannerResult> results;
  results.reserve(methods.size());
  for (Method method : methods) {
    results.push_back(SearchBestStrategy(method, config, cluster, global_batch, options));
  }
  return results;
}

}  // namespace mepipe::core
