// TrainingCostModel: maps schedule ops to durations and memory footprints
// for a concrete (model, parallel strategy, cluster) triple. This is the
// simulator-facing analogue of the paper's profiler component (§6): where
// the real system measures per-op times on the device, we derive them
// from the FLOPs model, the operator-efficiency curves, and the link
// model.
#ifndef MEPIPE_CORE_TRAINING_COST_H_
#define MEPIPE_CORE_TRAINING_COST_H_

#include <string>
#include <vector>

#include "core/analytic.h"
#include "hw/cluster.h"
#include "hw/comm_model.h"
#include "hw/efficiency.h"
#include "model/flops.h"
#include "model/memory.h"
#include "model/transformer.h"
#include "sched/op.h"
#include "sim/cost_model.h"

namespace mepipe::core {

// A complete parallel training strategy — the tuples of Tables 5-8.
struct Strategy {
  Method method = Method::kSvpp;
  int pp = 1;   // pipeline stages
  int dp = 1;   // data-parallel replicas (with ZeRO-1)
  int cp = 1;   // context-parallel ranks (splits samples across GPUs)
  int tp = 1;   // tensor-parallel ranks (A100 comparison only)
  int vp = 1;   // virtual chunks per stage
  int spp = 1;  // sequence-pipeline slices per sample (consumes no ranks)
  bool recompute = false;

  hw::ParallelLayout layout() const { return {pp, dp, cp, tp}; }
  std::string ToString() const;
};

struct TrainingCostOptions {
  hw::EfficiencyModel efficiency;
  // Fixed per-op host/launch overhead (framework dispatch, NCCL enqueue).
  Seconds op_overhead = Microseconds(60);
  model::MemoryModelOptions memory;
  // Slice samples non-uniformly so per-slice forward cost is balanced
  // (TeraPipe's DP partitioning, §5) instead of uniformly. Pays kernel
  // shape efficiency on the odd-sized slices; wins at very long context.
  bool balanced_slices = false;
  // Round non-uniform slice boundaries to this many tokens (GEMM /
  // FlashAttention shape friendliness).
  std::int64_t slice_alignment = 1;
};

class TrainingCostModel : public sim::CostModel {
 public:
  // `problem` must describe the same (pp, vp, spp) as `strategy`; the
  // micro count is free. Throws CheckError on inconsistent or unsupported
  // combinations (cp>1 with spp>1, recompute with split backward, model
  // units not divisible by pp·vp).
  TrainingCostModel(const model::TransformerConfig& config, const Strategy& strategy,
                    const hw::ClusterSpec& cluster, const sched::PipelineProblem& problem,
                    const TrainingCostOptions& options = {});

  // --- sim::CostModel ---
  Seconds ComputeTime(const sched::OpId& op) const override;
  Seconds TransferTime(const sched::OpId& producer) const override;
  Bytes ActivationBytes(const sched::OpId& forward) const override;
  Bytes ActGradBytes(const sched::OpId& backward) const override;
  int WeightGradGemmCount(const sched::OpId& wgrad) const override;
  // One chunk's gradient bucket: ZeRO-1 reduce-scatter + all-gather of
  // that chunk's parameters over the dp·cp group. This is what the
  // engine overlaps with the pipeline (EngineOptions::dp_overlap).
  Seconds DpSyncTime(const sched::OpId& bucket) const override;

  // --- memory / comm summaries used by the iteration runner ---
  // Worst-stage static + temporary memory.
  Bytes MaxStaticMemory() const;
  // Per-stage static + temporary memory.
  Bytes StaticMemory(int stage) const;
  // Worst-stage data-parallel gradient/optimizer synchronization time as
  // one monolithic collective (the serialized-after-flush baseline).
  // Bucketing pays the per-collective latency once per chunk, so the
  // summed bucket costs of a stage are >= this.
  Seconds DpSyncTime() const;
  // Activation bytes retained by a single forward pass on the
  // worst (most-loaded) chunk — the unit the §4.5 variant selector
  // divides the remaining memory budget by.
  Bytes PerForwardActivationBytes() const;
  // Checkpoint sizing for §9's memory-based checkpointing. Every rank
  // persists its ZeRO-1 optimizer shard (fp32 master + Adam moments);
  // the first data-parallel rank of each stage additionally writes the
  // stage's bf16 parameters. CheckpointShardBytes is the worst single
  // rank's write (it governs the parallel write stall, see
  // core::CheckpointWriteCost); CheckpointStateBytes is the total unique
  // state a restore needs.
  Bytes CheckpointShardBytes() const;
  Bytes CheckpointStateBytes() const;

  // Per-stage / per-chunk decompositions of the summaries above, used by
  // the heterogeneous-fleet wrapper (core/fleet) to re-price one stage's
  // traffic on the fabric of the tier that hosts it.
  Seconds StageDpSyncTime(int stage) const;  // monolithic sync of one stage
  Bytes StageParamBytes(int stage) const;
  Bytes ChunkParamBytes(int chunk) const;
  // Pipeline boundary tensor volume of one slice (activations forward,
  // activation gradients backward — same size).
  Bytes BoundaryBytes(int slice) const;

  const Strategy& strategy() const { return strategy_; }
  const sched::PipelineProblem& problem() const { return problem_; }

 private:
  struct ChunkShape {
    int transformer_layers = 0;
    bool has_embedding = false;
    bool has_head = false;
  };

  std::int64_t SliceTokens(int slice) const;
  const ChunkShape& Shape(int chunk) const;

  model::TransformerConfig config_;
  Strategy strategy_;
  hw::ClusterSpec cluster_;
  sched::PipelineProblem problem_;
  TrainingCostOptions options_;
  hw::CommModel comm_;

  std::vector<model::SliceSpan> spans_;   // per-slice token ranges (per cp rank)
  std::vector<ChunkShape> chunks_;        // per global chunk
  // Precomputed durations [chunk][slice].
  std::vector<std::vector<Seconds>> forward_time_;
  std::vector<std::vector<Seconds>> backward_time_;   // act-grad half (or full)
  std::vector<std::vector<Seconds>> wgrad_time_;
  // Per-GEMM weight-gradient durations [chunk][slice][gemm].
  std::vector<std::vector<std::vector<Seconds>>> wgemm_time_;
  std::vector<Bytes> param_bytes_per_stage_;
  std::vector<Bytes> param_bytes_per_chunk_;
};

}  // namespace mepipe::core

#endif  // MEPIPE_CORE_TRAINING_COST_H_
