// End-to-end iteration simulation: builds the schedule a strategy calls
// for, prices it with TrainingCostModel, executes it on the
// discrete-event engine, and folds in the data-parallel synchronization
// and optimizer step — producing the quantities the paper's evaluation
// reports (iteration time, bubble ratio, peak memory, per-GPU TFLOPS,
// MFU).
#ifndef MEPIPE_CORE_ITERATION_H_
#define MEPIPE_CORE_ITERATION_H_

#include <string>

#include "core/training_cost.h"
#include "hw/cluster.h"
#include "model/transformer.h"
#include "sim/engine.h"

namespace mepipe::core {

struct IterationOptions {
  TrainingCostOptions cost;
  // Fill policy for deferred weight gradients (MEPipe default: per-GEMM).
  sim::WgradMode wgrad_mode = sim::WgradMode::kFillGemms;
  // SVPP memory variant; 0 = automatic via the §4.5 memory model.
  int svpp_inflight = 0;
  // Disable the §4.3 backward rescheduling pass (ablation).
  bool svpp_reschedule = true;
  // Host-side optimizer step once per iteration.
  Seconds optimizer_step = Milliseconds(15);
  // Drop the (potentially large) per-op timeline from the result.
  bool keep_timeline = true;
  // Per-op lognormal duration jitter (0 = deterministic); seeds one
  // "iteration" of the §7.1 measurement protocol (see core/experiment.h).
  double noise_sigma = 0;
  std::uint64_t noise_seed = 0;
  // Scripted engine-level fault plan the iteration runs under (nullptr =
  // clean run). Must outlive the call.
  const sim::FaultPlan* fault_plan = nullptr;
  // Straggler-aware rebalancing (core/rebalance): when the fault plan
  // slows stages down, estimate the per-stage slowdown, re-partition
  // layers / re-tune caps, and adopt the mitigated schedule when it
  // beats the unmitigated one under the same plan.
  bool rebalance_stragglers = false;
};

struct IterationResult {
  Strategy strategy;
  bool feasible = false;
  std::string note;  // "ok", or the constraint/OOM explanation

  int micros = 0;                // n per data-parallel replica
  Seconds pipeline_time = 0;     // schedule makespan
  // Straggler mitigation (IterationOptions::rebalance_stragglers): true
  // when a rebalanced schedule was adopted; unmitigated_pipeline_time is
  // the makespan the original schedule measured under the same faults
  // (== pipeline_time when nothing was adopted).
  bool rebalanced = false;
  Seconds unmitigated_pipeline_time = 0;
  Seconds dp_sync_time = 0;
  Seconds iteration_time = 0;    // makespan + DP sync + optimizer step
  double bubble_ratio = 0;

  Bytes static_memory = 0;       // worst stage
  Bytes peak_activation = 0;     // worst stage (measured)
  Bytes peak_memory = 0;         // static + activations

  double per_gpu_flops = 0;      // achieved FLOPS per GPU
  double mfu = 0;                // model FLOPS utilization

  sim::SimResult sim;            // timeline (empty if !keep_timeline)
};

// Simulates one training iteration of `config` under `strategy` on
// `cluster` with global batch size `global_batch` (samples). Infeasible
// strategies (indivisible batch, model not partitionable, OOM, …) return
// feasible=false with an explanatory note instead of throwing.
IterationResult SimulateIteration(const model::TransformerConfig& config,
                                  const Strategy& strategy, const hw::ClusterSpec& cluster,
                                  int global_batch, const IterationOptions& options = {});

}  // namespace mepipe::core

#endif  // MEPIPE_CORE_ITERATION_H_
