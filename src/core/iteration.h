// End-to-end iteration simulation: builds the schedule a strategy calls
// for, prices it with TrainingCostModel, executes it on the
// discrete-event engine, and folds in the data-parallel synchronization
// and optimizer step — producing the quantities the paper's evaluation
// reports (iteration time, bubble ratio, peak memory, per-GPU TFLOPS,
// MFU).
#ifndef MEPIPE_CORE_ITERATION_H_
#define MEPIPE_CORE_ITERATION_H_

#include <optional>
#include <string>
#include <vector>

#include "core/training_cost.h"
#include "hw/cluster.h"
#include "model/transformer.h"
#include "sched/schedule.h"
#include "sim/engine.h"

namespace mepipe::core {

// Whether `method` schedules B and W as separate ops (zero-bubble family
// and MEPipe) — fixed properties of the method the planner and the
// surrogate both key decisions off.
bool MethodSplitsBackward(Method method);
// Whether `method`'s slice axis is SPP (sequence pipeline) rather than CP.
bool MethodUsesSlices(Method method);

struct IterationOptions {
  TrainingCostOptions cost;
  // Fill policy for deferred weight gradients (MEPipe default: per-GEMM).
  sim::WgradMode wgrad_mode = sim::WgradMode::kFillGemms;
  // SVPP memory variant; 0 = automatic via the §4.5 memory model.
  int svpp_inflight = 0;
  // Method::kSynth refinement effort (sched/synth.h): warmup-offset
  // search radius around the composed incumbent and the leaf budget of
  // the branch-and-bound. Both are pricing-relevant — the surrogate
  // fingerprints them.
  int synth_offset_radius = 2;
  int synth_max_leaves = 256;
  // Disable the §4.3 backward rescheduling pass (ablation).
  bool svpp_reschedule = true;
  // Host-side optimizer step once per iteration.
  Seconds optimizer_step = Milliseconds(15);
  // Drop the (potentially large) per-op timeline from the result.
  bool keep_timeline = true;
  // Keep the executed schedule (post-mitigation when a rebalanced one
  // was adopted) in IterationResult::schedule, so callers can re-check
  // sched/validate invariants — the elastic runtime does this for every
  // live re-plan under the shrunken fleet's activation budget.
  bool keep_schedule = false;
  // Per-op lognormal duration jitter (0 = deterministic); seeds one
  // "iteration" of the §7.1 measurement protocol (see core/experiment.h).
  double noise_sigma = 0;
  std::uint64_t noise_seed = 0;
  // Scripted engine-level fault plan the iteration runs under (an empty
  // ref = clean run). Value-semantic: assigning a FaultPlan copies it
  // into shared storage.
  sim::FaultPlanRef fault_plan;
  // Straggler-aware rebalancing (core/rebalance): when the fault plan
  // slows stages down, estimate the per-stage slowdown, re-partition
  // layers / re-tune caps, and adopt the mitigated schedule when it
  // beats the unmitigated one under the same plan.
  bool rebalance_stragglers = false;
  // Overlap the per-bucket DP gradient all-reduce with the pipeline
  // (sim::EngineOptions::dp_overlap) instead of serializing the
  // monolithic sync after the flush. Whether the DP ring contends with
  // pipeline transfers is derived from the cluster topology
  // (hw::DpSharesPipelineFabric). iteration_time then pays only the
  // exposed tail (IterationResult::dp).
  bool dp_overlap = false;
};

struct IterationResult {
  Strategy strategy;
  bool feasible = false;
  std::string note;  // "ok", or the constraint/OOM explanation

  int micros = 0;                // n per data-parallel replica
  Seconds pipeline_time = 0;     // schedule makespan

  // Straggler-mitigation outcome (IterationOptions::rebalance_stragglers;
  // zero-initialized when mitigation is off).
  struct MitigationOutcome {
    // True when a rebalanced schedule was adopted; unmitigated_pipeline_time
    // is the makespan the original schedule measured under the same
    // faults (== pipeline_time when nothing was adopted).
    bool rebalanced = false;
    Seconds unmitigated_pipeline_time = 0;
  };
  MitigationOutcome mitigation;

  // DP gradient-sync breakdown. Invariant: exposed + hidden == serialized
  // (without overlap everything is exposed).
  struct DpSyncBreakdown {
    bool overlapped = false;  // IterationOptions::dp_overlap was in effect
    Seconds serialized = 0;   // cost if synced back-to-back after the flush
    Seconds hidden = 0;       // absorbed inside pipeline bubbles
    Seconds exposed = 0;      // remainder the iteration actually pays
  };
  DpSyncBreakdown dp;
  Seconds dp_sync_time = 0;      // == dp.exposed (the paid remainder)
  Seconds iteration_time = 0;    // makespan + exposed DP sync + optimizer step
  double bubble_ratio = 0;

  Bytes static_memory = 0;       // worst stage
  Bytes peak_activation = 0;     // worst stage (measured)
  Bytes peak_memory = 0;         // static + activations
  // Checkpoint sizing of this strategy (TrainingCostModel): the worst
  // single rank's parallel write and the total restorable state. Feeds
  // the planner's goodput objective via core::CheckpointWriteCost.
  Bytes checkpoint_shard = 0;
  Bytes checkpoint_state = 0;

  // Goodput pricing (PlannerObjective::kGoodput; zero/false until the
  // planner prices this result under its failure model).
  struct GoodputOutcome {
    bool priced = false;
    Seconds checkpoint_interval = 0;    // solver-chosen (Young/Daly refined)
    Seconds checkpoint_write_cost = 0;  // from checkpoint_shard
    double goodput = 0;                 // useful/wall under the failure model
    // Wall-clock seconds per useful iteration: iteration_time / goodput.
    // The quantity the goodput objective minimizes.
    Seconds effective_iteration_time = 0;
  };
  GoodputOutcome goodput;

  double per_gpu_flops = 0;      // achieved FLOPS per GPU
  double mfu = 0;                // model FLOPS utilization

  sim::SimResult sim;            // timeline (empty if !keep_timeline)
  // The executed schedule and the per-stage activation budget (bytes)
  // the engine ran it under (empty unless IterationOptions::keep_schedule
  // and, for the budget, the method defers weight gradients).
  sched::Schedule schedule;
  std::vector<Bytes> activation_budget;
};

// Everything a candidate strategy needs before execution: the structural
// feasibility verdict, the pipeline problem, the priced cost model, the
// generated schedule, and the engine-facing wgrad/budget settings.
// Shared between SimulateIteration (which executes the schedule on the
// DES) and surrogate::SurrogatePrice (which prices it analytically) so
// both paths agree on exactly what a candidate means.
struct CandidateBuild {
  Strategy strategy;
  bool feasible = false;
  std::string note;  // "ok", or the structural-constraint explanation
  int micros = 0;
  sched::PipelineProblem problem;
  // Present iff feasible (TrainingCostModel has no default state).
  std::optional<TrainingCostModel> costs;
  sched::Schedule schedule;
  // Effective engine settings: methods with statically-filled W override
  // the caller's wgrad mode; split-backward methods get a per-stage
  // activation budget of usable_memory - StaticMemory(stage).
  sim::WgradMode wgrad_mode = sim::WgradMode::kFillGemms;
  std::vector<Bytes> activation_budget;
};

// Builds (but does not execute) the candidate: structural feasibility,
// problem, cost model, schedule, and engine settings. Infeasible
// candidates return feasible=false with a note and no costs/schedule.
CandidateBuild BuildCandidate(const model::TransformerConfig& config,
                              const Strategy& strategy, const hw::ClusterSpec& cluster,
                              int global_batch, const IterationOptions& options = {});

// Simulates one training iteration of `config` under `strategy` on
// `cluster` with global batch size `global_batch` (samples). Infeasible
// strategies (indivisible batch, model not partitionable, OOM, …) return
// feasible=false with an explanatory note instead of throwing.
IterationResult SimulateIteration(const model::TransformerConfig& config,
                                  const Strategy& strategy, const hw::ClusterSpec& cluster,
                                  int global_batch, const IterationOptions& options = {});

}  // namespace mepipe::core

#endif  // MEPIPE_CORE_ITERATION_H_
