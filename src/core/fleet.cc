#include "core/fleet.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/format.h"
#include "core/deployment.h"
#include "model/flops.h"
#include "model/memory.h"
#include "sched/generator.h"
#include "sched/schedule.h"
#include "sim/engine.h"

namespace mepipe::core {

StageProfile PlacementSlowdowns(const hw::ClusterTopology& topology,
                                const hw::StagePlacement& placement) {
  StageProfile profile;
  profile.slowdown.reserve(placement.stage_tier.size());
  for (const int tier : placement.stage_tier) {
    profile.slowdown.push_back(topology.TierSlowdown(tier));
  }
  return profile;
}

std::vector<hw::StagePlacement> EnumeratePlacements(const hw::ClusterTopology& topology,
                                                    int pp) {
  MEPIPE_CHECK_GE(pp, 1) << "placements need at least one stage";
  std::vector<hw::StagePlacement> out;
  for (int t = 0; t < topology.num_tiers(); ++t) {
    out.push_back(hw::StagePlacement::Uniform(pp, t));
  }
  for (int a = 0; a < topology.num_tiers(); ++a) {
    for (int b = 0; b < topology.num_tiers(); ++b) {
      if (a == b) {
        continue;
      }
      for (int k = 1; k < pp; ++k) {
        hw::StagePlacement placement = hw::StagePlacement::Uniform(pp, b);
        for (int stage = 0; stage < k; ++stage) {
          placement.stage_tier[static_cast<std::size_t>(stage)] = a;
        }
        out.push_back(std::move(placement));
      }
    }
  }
  return out;
}

std::string PlacedStrategy::ToString() const {
  return strategy.ToString() + " @ " + placement.ToString();
}

Bytes WanEgressBytesPerIteration(const model::TransformerConfig& config,
                                 const PlacedStrategy& placed,
                                 const sched::PipelineProblem& problem,
                                 const hw::ClusterTopology& topology) {
  if (topology.num_tiers() < 2 || placed.placement.uniform()) {
    return 0;
  }
  // One WAN crossing moves every sample's full boundary tensor each
  // iteration, in both directions: micros per replica × dp replicas ×
  // seq_len tokens (summed across slices and cp ranks) × bytes/token.
  const Bytes per_crossing = model::BoundaryBytesPerToken(config) * config.seq_len *
                             problem.micros * placed.strategy.dp * 2;
  Bytes total = 0;
  for (int g = 0; g + 1 < problem.num_chunks(); ++g) {
    const int from = placed.placement.tier_of(problem.stage_of_chunk(g));
    const int to = placed.placement.tier_of(problem.stage_of_chunk(g + 1));
    if (from == to || !topology.LinkBetween(from, to).wan) {
      continue;
    }
    total += per_crossing;
  }
  return total;
}

DollarCostBreakdown PriceDollarCost(const hw::ClusterTopology& topology,
                                    const PlacedStrategy& placed, Seconds iteration_time,
                                    Bytes wan_egress_bytes,
                                    double egress_usd_per_gb_override) {
  DollarCostBreakdown out;
  out.fleet_usd_per_hour =
      PlacementHourlyCostUsd(topology, placed.placement, placed.strategy.layout());
  out.wan_egress_bytes = wan_egress_bytes;
  double rate = egress_usd_per_gb_override;
  if (rate < 0) {
    // The priciest WAN link the placement actually crosses (in practice a
    // two-tier split crosses exactly one).
    rate = 0;
    for (int stage = 0; stage + 1 < placed.placement.stages(); ++stage) {
      const int a = placed.placement.tier_of(stage);
      const int b = placed.placement.tier_of(stage + 1);
      if (a == b || !topology.LinkBetween(a, b).wan) {
        continue;
      }
      rate = std::max(rate, topology.LinkBetween(a, b).usd_per_gb_egress);
    }
  }
  out.egress_usd_per_iteration = EgressCostUsd(wan_egress_bytes, rate);
  out.rental_usd_per_iteration = out.fleet_usd_per_hour * iteration_time / 3600.0;
  out.usd_per_iteration = out.rental_usd_per_iteration + out.egress_usd_per_iteration;
  return out;
}

TierScaledCostModel::TierScaledCostModel(const sim::CostModel& base,
                                         const TrainingCostModel& priced,
                                         const hw::ClusterTopology& topology,
                                         const PlacedStrategy& placed,
                                         const RebalancePlan& plan)
    : sim::WrappingCostModel(base),
      priced_(priced),
      comm_(topology, placed.placement),
      layout_(placed.strategy.layout()),
      problem_(priced.problem()) {
  // Dilation is relative to the fastest *occupied* tier — the reference
  // device the candidate's absolute durations were priced on.
  StageProfile profile = PlacementSlowdowns(topology, placed.placement);
  const double fastest =
      *std::min_element(profile.slowdown.begin(), profile.slowdown.end());
  for (double& s : profile.slowdown) {
    s /= fastest;
  }
  stage_slowdown_ = std::move(profile.slowdown);
  chunk_scale_.resize(static_cast<std::size_t>(problem_.num_chunks()));
  for (int g = 0; g < problem_.num_chunks(); ++g) {
    chunk_scale_[static_cast<std::size_t>(g)] = plan.unit_ratio(g);
  }
}

Seconds TierScaledCostModel::ComputeTime(const sched::OpId& op) const {
  if (op.kind == sched::OpKind::kDpSync) {
    return base().ComputeTime(op);  // priced via DpSyncTime below
  }
  const int stage = problem_.stage_of_chunk(op.chunk);
  return base().ComputeTime(op) * stage_slowdown_[static_cast<std::size_t>(stage)];
}

Seconds TierScaledCostModel::TransferTime(const sched::OpId& producer) const {
  int delta = 0;
  if (producer.kind == sched::OpKind::kForward) {
    delta = 1;
  } else if (producer.kind == sched::OpKind::kBackward) {
    delta = -1;
  } else {
    return base().TransferTime(producer);
  }
  const int consumer = producer.chunk + delta;
  if (consumer < 0 || consumer >= problem_.num_chunks()) {
    return base().TransferTime(producer);
  }
  const int from = problem_.stage_of_chunk(producer.chunk);
  const int to = problem_.stage_of_chunk(consumer);
  if (from == to) {
    // Same-stage chunk handoff (the V-shape turn); charged only when the
    // engine considers it cross-stage, which it never does.
    return base().TransferTime(producer);
  }
  return comm_.PipelineP2pAcross(priced_.BoundaryBytes(producer.slice), layout_, from, to);
}

Seconds TierScaledCostModel::DpSyncTime(const sched::OpId& bucket) const {
  const double scale = chunk_scale_[static_cast<std::size_t>(bucket.chunk)];
  const Bytes bytes = static_cast<Bytes>(
      std::llround(static_cast<double>(priced_.ChunkParamBytes(bucket.chunk)) * scale));
  return comm_.DpGradientSyncAtStage(bytes, layout_, problem_.stage_of_chunk(bucket.chunk));
}

namespace {

// A placed candidate, ready to price: the homogeneous build on the
// reference tier's sub-cluster, the (reference-relative) slowdown
// profile, the adopted layer re-partition, and per-stage scale factors
// for static memory.
struct PlacedBuild {
  CandidateBuild build;
  int ref_tier = 0;
  StageProfile profile;  // relative to ref_tier, each >= 1
  RebalancePlan plan;    // default (no-op) when compute is uniform
  std::vector<double> static_scale;
};

// The reference tier's spec resized to exactly `ranks` devices, so the
// homogeneous BuildCandidate machinery applies unchanged.
bool ReferenceSpec(const hw::DeviceTier& tier, int ranks, hw::ClusterSpec* spec,
                   std::string* error) {
  *spec = tier.spec();
  if (ranks <= spec->gpus_per_node) {
    spec->nodes = 1;
    spec->gpus_per_node = ranks;
    return true;
  }
  if (ranks % spec->gpus_per_node == 0) {
    spec->nodes = ranks / spec->gpus_per_node;
    return true;
  }
  *error = StrFormat("layout ranks %d not divisible by tier %s's %d GPUs per node", ranks,
                     tier.name.c_str(), spec->gpus_per_node);
  return false;
}

PlacedBuild BuildPlaced(const model::TransformerConfig& config, const PlacedStrategy& placed,
                        const hw::ClusterTopology& topology, int global_batch,
                        const IterationOptions& options) {
  PlacedBuild pb;
  pb.build.strategy = placed.strategy;
  const hw::ParallelLayout layout = placed.strategy.layout();
  const std::vector<hw::LayoutIssue> issues = layout.Validate(topology, placed.placement);
  if (!issues.empty()) {
    pb.build.note = issues.front().message;
    return pb;
  }

  // Reference tier: fastest among the tiers the placement occupies.
  pb.ref_tier = placed.placement.tier_of(0);
  for (const int t : placed.placement.stage_tier) {
    if (topology.TierSlowdown(t) < topology.TierSlowdown(pb.ref_tier) ||
        (topology.TierSlowdown(t) == topology.TierSlowdown(pb.ref_tier) && t < pb.ref_tier)) {
      pb.ref_tier = t;
    }
  }
  hw::ClusterSpec ref_spec;
  std::string error;
  if (!ReferenceSpec(topology.tier(pb.ref_tier), layout.ranks(), &ref_spec, &error)) {
    pb.build.note = std::move(error);
    return pb;
  }
  pb.build = BuildCandidate(config, placed.strategy, ref_spec, global_batch, options);
  if (!pb.build.feasible) {
    return pb;
  }
  const sched::PipelineProblem& problem = pb.build.problem;
  pb.static_scale.assign(static_cast<std::size_t>(problem.stages), 1.0);

  pb.profile = PlacementSlowdowns(topology, placed.placement);
  const double fastest =
      *std::min_element(pb.profile.slowdown.begin(), pb.profile.slowdown.end());
  bool hetero_compute = false;
  for (double& s : pb.profile.slowdown) {
    s /= fastest;
    hetero_compute = hetero_compute || s != 1.0;
  }

  if (hetero_compute) {
    // Shed layers off the slow tiers and regenerate the program order —
    // the MitigateStragglers idiom, applied to a *static* speed profile.
    RebalanceOptions rebalance;
    rebalance.repartition_layers = true;
    rebalance.rebalance_slices = false;
    rebalance.retune_caps = true;
    rebalance.units_per_chunk =
        static_cast<int>(config.partition_units()) / problem.num_chunks();
    rebalance.min_units_per_chunk = 1;
    const int floor_cap = problem.virtual_chunks * problem.slices;
    rebalance.base_caps.resize(static_cast<std::size_t>(problem.stages));
    for (int i = 0; i < problem.stages; ++i) {
      rebalance.base_caps[static_cast<std::size_t>(i)] =
          std::max(floor_cap, sched::PeakRetainedForwards(pb.build.schedule, i));
    }
    pb.plan = Rebalance(pb.profile, problem, rebalance);
    if (pb.plan.any_change()) {
      sched::GeneratorOptions generator;
      generator.inflight_cap =
          pb.plan.new_caps.empty() ? rebalance.base_caps : pb.plan.new_caps;
      generator.backward_first = true;
      generator.child_count_backward_priority = true;
      generator.wgrad = pb.build.schedule.deferred_wgrad ? sched::WgradPolicy::kDeferred
                                                         : sched::WgradPolicy::kLowestPriority;
      generator.b_time = problem.split_backward ? 1.0 : 2.0;
      generator.stage_time_scale.resize(static_cast<std::size_t>(problem.stages));
      for (int i = 0; i < problem.stages; ++i) {
        generator.stage_time_scale[static_cast<std::size_t>(i)] =
            pb.profile.slowdown[static_cast<std::size_t>(i)] *
            pb.plan.stage_unit_ratio(problem, i);
        pb.static_scale[static_cast<std::size_t>(i)] = pb.plan.stage_unit_ratio(problem, i);
      }
      pb.build.schedule =
          sched::GenerateCapped(problem, generator, pb.build.schedule.method + "+placed");
    }
  }

  // Activation budgets against the *hosting* tier's memory, with static
  // memory scaled by the adopted layer share. The single-tier uniform
  // case recomputes exactly what BuildCandidate produced.
  if (problem.split_backward) {
    const TrainingCostModel& costs = *pb.build.costs;
    for (int stage = 0; stage < problem.stages; ++stage) {
      const Bytes usable =
          topology.tier(placed.placement.tier_of(stage)).gpu.usable_memory();
      const Bytes stage_static = static_cast<Bytes>(
          std::llround(static_cast<double>(costs.StaticMemory(stage)) *
                       pb.static_scale[static_cast<std::size_t>(stage)]));
      pb.build.activation_budget[static_cast<std::size_t>(stage)] =
          std::max<Bytes>(0, usable - stage_static);
    }
  }
  return pb;
}

// Worst-stage serialized DP sync, each stage priced on its hosting
// tier's fabric with its adopted parameter share. Reduces to
// TrainingCostModel::DpSyncTime() on a single tier with no re-partition.
Seconds SerializedDpSync(const TrainingCostModel& costs, const hw::CommModel& comm,
                         const hw::ParallelLayout& layout, const PlacedBuild& pb) {
  Seconds worst = 0;
  for (int stage = 0; stage < pb.build.problem.stages; ++stage) {
    const Bytes bytes = static_cast<Bytes>(
        std::llround(static_cast<double>(costs.StageParamBytes(stage)) *
                     pb.static_scale[static_cast<std::size_t>(stage)]));
    worst = std::max(worst, comm.DpGradientSyncAtStage(bytes, layout, stage));
  }
  return worst;
}

// Rank-weighted mean peak FLOPS of the occupied devices (the MFU
// denominator). Exact tier value for uniform placements.
double MeanPeakFlops(const hw::ClusterTopology& topology, const PlacedStrategy& placed) {
  if (placed.placement.uniform()) {
    return topology.tier(placed.placement.tier_of(0)).gpu.peak_flops;
  }
  const hw::ParallelLayout layout = placed.strategy.layout();
  const double group = layout.dp * layout.cp * layout.tp;
  double total = 0;
  for (int stage = 0; stage < placed.placement.stages(); ++stage) {
    total += group * topology.tier(placed.placement.tier_of(stage)).gpu.peak_flops;
  }
  return total / layout.ranks();
}

std::string OomNote(const hw::ClusterTopology& topology, const PlacedStrategy& placed,
                    int stage, Bytes peak, Bytes stage_total) {
  const hw::DeviceTier& tier = topology.tier(placed.placement.tier_of(stage));
  if (topology.num_tiers() < 2) {
    // Match SimulateIteration's wording so the one-tier special case is
    // bit-identical, notes included.
    return StrFormat("OOM: peak %s > usable %s", FormatBytes(peak).c_str(),
                     FormatBytes(tier.gpu.usable_memory()).c_str());
  }
  return StrFormat("OOM on stage %d (%s): peak %s > usable %s", stage, tier.name.c_str(),
                   FormatBytes(stage_total).c_str(),
                   FormatBytes(tier.gpu.usable_memory()).c_str());
}

}  // namespace

PlacedIterationResult SimulatePlacedIteration(const model::TransformerConfig& config,
                                              const PlacedStrategy& placed,
                                              const hw::ClusterTopology& topology,
                                              int global_batch,
                                              const IterationOptions& options) {
  PlacedIterationResult out;
  out.placed = placed;
  out.result.strategy = placed.strategy;
  PlacedBuild pb = BuildPlaced(config, placed, topology, global_batch, options);
  if (!pb.build.feasible) {
    out.result.note = std::move(pb.build.note);
    return out;
  }
  const sched::PipelineProblem& problem = pb.build.problem;
  const hw::ParallelLayout layout = placed.strategy.layout();
  const TrainingCostModel& costs = *pb.build.costs;

  out.slowdown = pb.profile.slowdown;
  const int units_per_chunk =
      static_cast<int>(config.partition_units()) / problem.num_chunks();
  out.stage_units.assign(static_cast<std::size_t>(problem.stages), 0);
  for (int g = 0; g < problem.num_chunks(); ++g) {
    out.stage_units[static_cast<std::size_t>(problem.stage_of_chunk(g))] +=
        pb.plan.new_units.empty() ? units_per_chunk
                                  : pb.plan.new_units[static_cast<std::size_t>(g)];
  }

  sim::CostModelStack stack(costs);
  if (pb.plan.any_change()) {
    stack.Wrap<RebalancedCostModel>(problem, pb.plan);
  }
  if (topology.num_tiers() > 1) {
    stack.Wrap<TierScaledCostModel>(costs, topology, placed, pb.plan);
  }

  sim::EngineOptions engine;
  engine.wgrad_mode = pb.build.wgrad_mode;
  engine.activation_budget = pb.build.activation_budget;
  engine.dp_overlap = options.dp_overlap;
  engine.dp_link_shared = options.dp_overlap && topology.FabricShares(layout).Shares(
                                                    hw::Dim::kData, hw::Dim::kPipeline);
  sim::SimResult sim = Simulate(pb.build.schedule, stack.model(), engine);

  IterationResult& result = out.result;
  result.micros = pb.build.micros;
  result.pipeline_time = sim.makespan;
  result.mitigation.unmitigated_pipeline_time = sim.makespan;
  const hw::CommModel comm(topology, placed.placement);
  result.dp.overlapped = options.dp_overlap;
  if (options.dp_overlap) {
    result.dp.serialized = sim.dp.serialized;
    result.dp.hidden = sim.dp.hidden;
    result.dp.exposed = sim.dp.exposed;
  } else {
    result.dp.serialized = SerializedDpSync(costs, comm, layout, pb);
    result.dp.exposed = result.dp.serialized;
  }
  result.dp_sync_time = result.dp.exposed;
  result.iteration_time = sim.makespan + result.dp_sync_time + options.optimizer_step;
  result.bubble_ratio = sim.bubble_ratio;
  result.peak_activation = sim.peak_activation;
  result.checkpoint_shard = costs.CheckpointShardBytes();
  result.checkpoint_state = costs.CheckpointStateBytes();

  Bytes peak = 0;
  Bytes static_peak = 0;
  int oom_stage = -1;
  Bytes oom_total = 0;
  for (int stage = 0; stage < problem.stages; ++stage) {
    const Bytes stage_static = static_cast<Bytes>(
        std::llround(static_cast<double>(costs.StaticMemory(stage)) *
                     pb.static_scale[static_cast<std::size_t>(stage)]));
    static_peak = std::max(static_peak, stage_static);
    const Bytes total =
        stage_static + sim.stages[static_cast<std::size_t>(stage)].peak_activation;
    peak = std::max(peak, total);
    if (oom_stage < 0 &&
        total > topology.tier(placed.placement.tier_of(stage)).gpu.usable_memory()) {
      oom_stage = stage;
      oom_total = total;
    }
  }
  result.static_memory = static_peak;
  result.peak_memory = peak;
  if (oom_stage >= 0) {
    result.feasible = false;
    result.note = OomNote(topology, placed, oom_stage, peak, oom_total);
  } else {
    result.feasible = true;
    result.note = "ok";
  }

  const std::int64_t tokens = static_cast<std::int64_t>(global_batch) * config.seq_len;
  result.per_gpu_flops = model::TrainingFlops(config, tokens) /
                         (result.iteration_time * static_cast<double>(layout.ranks()));
  result.mfu = result.per_gpu_flops / MeanPeakFlops(topology, placed);

  if (options.keep_timeline) {
    result.sim = std::move(sim);
  } else {
    sim.timeline.clear();
    result.sim = std::move(sim);
  }
  if (options.keep_schedule) {
    result.schedule = pb.build.schedule;
    result.activation_budget = engine.activation_budget;
  }

  out.dollars = PriceDollarCost(
      topology, placed, result.iteration_time,
      WanEgressBytesPerIteration(config, placed, problem, topology));
  return out;
}

PlacedSurrogateResult SurrogatePricePlaced(const model::TransformerConfig& config,
                                           const PlacedStrategy& placed,
                                           const hw::ClusterTopology& topology,
                                           int global_batch,
                                           const SurrogateOptions& options) {
  PlacedSurrogateResult out;
  out.placed = placed;
  // Problem shape for egress accounting, derivable without a build (and
  // therefore also on a cache hit).
  sched::PipelineProblem shape;
  shape.stages = placed.strategy.pp;
  shape.virtual_chunks = placed.strategy.vp;
  shape.slices = placed.strategy.spp;
  shape.micros = global_batch / std::max(1, placed.strategy.dp);
  shape.split_backward = MethodSplitsBackward(placed.strategy.method);
  if (placed.strategy.method == Method::kZbv || placed.strategy.method == Method::kZbvCapped ||
      placed.strategy.method == Method::kHanayo) {
    shape.placement = sched::ChunkPlacement::kVShape;
  }
  const Bytes egress = WanEgressBytesPerIteration(config, placed, shape, topology);

  SurrogateKey key;
  if (options.cache != nullptr) {
    key.method = placed.strategy.method;
    key.pp = placed.strategy.pp;
    key.dp = placed.strategy.dp;
    key.cp = placed.strategy.cp;
    key.tp = placed.strategy.tp;
    key.vp = placed.strategy.vp;
    key.spp = placed.strategy.spp;
    key.recompute = placed.strategy.recompute;
    key.global_batch = global_batch;
    key.fingerprint = TopologyFingerprint(config, topology, options.iteration);
    key.placement = placed.placement.Hash();
    if (auto hit = options.cache->Lookup(key)) {
      hit->cache_hit = true;
      out.result = *hit;
      out.dollars = PriceDollarCost(topology, placed, out.result.iteration_time, egress);
      return out;
    }
  }

  PlacedBuild pb = BuildPlaced(config, placed, topology, global_batch, options.iteration);
  SurrogateResult& result = out.result;
  result.strategy = placed.strategy;
  if (!pb.build.feasible) {
    result.note = std::move(pb.build.note);
  } else {
    const sched::PipelineProblem& problem = pb.build.problem;
    const hw::ParallelLayout layout = placed.strategy.layout();
    const TrainingCostModel& costs = *pb.build.costs;

    sim::CostModelStack stack(costs);
    if (pb.plan.any_change()) {
      stack.Wrap<RebalancedCostModel>(problem, pb.plan);
    }
    if (topology.num_tiers() > 1) {
      stack.Wrap<TierScaledCostModel>(costs, topology, placed, pb.plan);
    }

    TableOptions table;
    table.wgrad_mode = pb.build.wgrad_mode;
    table.activation_budget = pb.build.activation_budget;
    table.dp_overlap = options.iteration.dp_overlap;
    const TablePrice price = PriceScheduleTable(pb.build.schedule, stack.model(), table);

    result.micros = pb.build.micros;
    result.pipeline_time = price.makespan;
    if (options.iteration.dp_overlap) {
      result.dp_sync_time = price.dp_exposed;
    } else {
      const hw::CommModel comm(topology, placed.placement);
      result.dp_sync_time = SerializedDpSync(costs, comm, layout, pb);
    }
    result.iteration_time =
        price.makespan + result.dp_sync_time + options.iteration.optimizer_step;
    result.bubble_ratio = price.bubble_ratio;
    result.peak_activation = price.peak_activation;
    result.checkpoint_shard = costs.CheckpointShardBytes();

    Bytes peak = 0;
    Bytes static_peak = 0;
    int oom_stage = -1;
    Bytes oom_total = 0;
    for (int stage = 0; stage < problem.stages; ++stage) {
      const Bytes stage_static = static_cast<Bytes>(
          std::llround(static_cast<double>(costs.StaticMemory(stage)) *
                       pb.static_scale[static_cast<std::size_t>(stage)]));
      static_peak = std::max(static_peak, stage_static);
      const Bytes total =
          stage_static + price.stage_peak_activation[static_cast<std::size_t>(stage)];
      peak = std::max(peak, total);
      if (oom_stage < 0 &&
          total > topology.tier(placed.placement.tier_of(stage)).gpu.usable_memory()) {
        oom_stage = stage;
        oom_total = total;
      }
    }
    result.static_memory = static_peak;
    result.peak_memory = peak;
    if (oom_stage >= 0) {
      result.feasible = false;
      result.note = OomNote(topology, placed, oom_stage, peak, oom_total);
    } else {
      result.feasible = true;
      result.note = "ok";
    }
  }
  if (options.cache != nullptr) {
    options.cache->Insert(key, result);
  }
  out.dollars = PriceDollarCost(topology, placed, result.iteration_time, egress);
  return out;
}

}  // namespace mepipe::core
