#include "core/iteration.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/format.h"
#include "core/memory_model.h"
#include "core/rebalance.h"
#include "core/svpp.h"
#include "model/flops.h"
#include "model/slicing.h"
#include "sched/baselines.h"
#include "sched/synth.h"
#include "sched/zbv.h"
#include "sim/noise.h"

namespace mepipe::core {

bool MethodSplitsBackward(Method method) {
  return method == Method::kZb1p || method == Method::kZbv || method == Method::kZbvCapped ||
         method == Method::kSvpp || method == Method::kSynth;
}

bool MethodUsesSlices(Method method) {
  return method == Method::kSvpp || method == Method::kTeraPipe;
}

namespace {

CandidateBuild InfeasibleBuild(const Strategy& strategy, std::string note) {
  CandidateBuild build;
  build.strategy = strategy;
  build.feasible = false;
  build.note = std::move(note);
  return build;
}

IterationResult Infeasible(const Strategy& strategy, std::string note) {
  IterationResult result;
  result.strategy = strategy;
  result.feasible = false;
  result.note = std::move(note);
  return result;
}

}  // namespace

CandidateBuild BuildCandidate(const model::TransformerConfig& config,
                              const Strategy& strategy, const hw::ClusterSpec& cluster,
                              int global_batch, const IterationOptions& options) {
  // ---- structural feasibility -------------------------------------------
  if (strategy.method == Method::kHanayo && strategy.vp != 2) {
    return InfeasibleBuild(strategy, "the Hanayo wave schedule is defined for vp=2");
  }
  const int world = cluster.world_size();
  if (strategy.layout().ranks() != world) {
    return InfeasibleBuild(strategy, StrFormat("layout covers %d ranks, cluster has %d",
                                               strategy.layout().ranks(), world));
  }
  if (global_batch % strategy.dp != 0) {
    return InfeasibleBuild(strategy, "global batch not divisible by dp");
  }
  const int micros = global_batch / strategy.dp;
  if (config.partition_units() % (strategy.pp * strategy.vp) != 0) {
    return InfeasibleBuild(strategy,
                           StrFormat("%lld units not divisible by pp*vp=%d",
                                     static_cast<long long>(config.partition_units()),
                                     strategy.pp * strategy.vp));
  }
  if (config.partition_units() / (strategy.pp * strategy.vp) < 1) {
    return InfeasibleBuild(strategy, "fewer partition units than chunks");
  }
  if (strategy.cp > 1 && strategy.spp > 1) {
    return InfeasibleBuild(strategy, "cp and spp cannot be combined");
  }
  if (config.seq_len % strategy.cp != 0) {
    return InfeasibleBuild(strategy, "sequence length not divisible by cp");
  }
  if (strategy.recompute && MethodSplitsBackward(strategy.method)) {
    return InfeasibleBuild(strategy, "recompute incompatible with split B/W (§7.1)");
  }
  if (strategy.method == Method::kVpp) {
    if (strategy.vp < 2) {
      return InfeasibleBuild(strategy, "VPP requires vp >= 2");
    }
    if (micros % strategy.pp != 0) {
      return InfeasibleBuild(strategy, "Megatron interleaving requires n % p == 0");
    }
  }
  if ((strategy.method == Method::kZbv || strategy.method == Method::kZbvCapped) &&
      strategy.vp != 2) {
    return InfeasibleBuild(strategy, "ZBV is defined for vp=2");
  }
  if ((strategy.method == Method::kDapple || strategy.method == Method::kGPipe ||
       strategy.method == Method::kZb1p) &&
      strategy.vp != 1) {
    return InfeasibleBuild(strategy, "method does not use virtual chunks");
  }
  if (strategy.spp > 1 && strategy.method != Method::kSvpp &&
      strategy.method != Method::kTeraPipe) {
    return InfeasibleBuild(strategy, "only SPP methods slice samples");
  }

  // ---- problem + costs -----------------------------------------------------
  CandidateBuild build;
  build.strategy = strategy;
  build.micros = micros;
  sched::PipelineProblem& problem = build.problem;
  problem.stages = strategy.pp;
  problem.virtual_chunks = strategy.vp;
  problem.slices = strategy.spp;
  problem.micros = micros;
  problem.split_backward = MethodSplitsBackward(strategy.method);
  if (strategy.method == Method::kZbv || strategy.method == Method::kZbvCapped ||
      strategy.method == Method::kHanayo ||
      (strategy.method == Method::kSynth && strategy.vp == 2)) {
    problem.placement = sched::ChunkPlacement::kVShape;
  }

  build.costs.emplace(config, strategy, cluster, problem, options.cost);
  const TrainingCostModel& costs = *build.costs;

  if (problem.split_backward) {
    // Deferred weight gradients retain memory; cap every stage's
    // activation footprint at what the device leaves after static memory
    // (§5: proceed "as soon as there is enough memory"). Computed before
    // the schedule switch because the budget-aware constructions (kZbv,
    // kSynth) consume it as their activation budget.
    build.activation_budget.resize(static_cast<std::size_t>(strategy.pp));
    for (int stage = 0; stage < strategy.pp; ++stage) {
      build.activation_budget[static_cast<std::size_t>(stage)] =
          std::max<Bytes>(0, cluster.gpu.usable_memory() - costs.StaticMemory(stage));
    }
  }
  // The budget in retained-chunk-forward units (the schedule builders'
  // memory currency); 0 per-forward bytes means memory is not modeled.
  const double per_forward = static_cast<double>(costs.PerForwardActivationBytes());

  // ---- schedule -------------------------------------------------------------
  build.wgrad_mode = options.wgrad_mode;
  switch (strategy.method) {
    case Method::kGPipe:
      build.schedule = sched::GPipeSchedule(strategy.pp, micros);
      break;
    case Method::kDapple:
      build.schedule = sched::OneFOneBSchedule(strategy.pp, micros);
      break;
    case Method::kVpp:
      build.schedule = sched::VppSchedule(strategy.pp, strategy.vp, micros);
      break;
    case Method::kTeraPipe:
      build.schedule = sched::TeraPipeSchedule(strategy.pp, strategy.spp, micros);
      break;
    case Method::kZb1p:
      build.schedule = sched::Zb1pSchedule(strategy.pp, micros);
      build.wgrad_mode = sim::WgradMode::kFillWhole;  // ZB fills whole-W tasks
      break;
    case Method::kZbv: {
      // Handcrafted construction: W ops are statically placed, so the
      // engine's deferred-W fill modes do not apply. The builder orders
      // ops against the measured per-op costs, not its uniform defaults.
      sched::ZbvOptions zbv;
      zbv.f_time = costs.ComputeTime({sched::OpKind::kForward, 0, 0, 0});
      zbv.b_time = costs.ComputeTime({sched::OpKind::kBackward, 0, 0, 0});
      zbv.w_time = costs.ComputeTime({sched::OpKind::kWeightGrad, 0, 0, 0});
      zbv.transfer_time = costs.TransferTime({sched::OpKind::kForward, 0, 0, 0});
      if (per_forward > 0) {
        // Memory-aware fill selection: weight each pending W by the
        // act-grad bytes its B retains, and pass the tightest stage's
        // byte budget in chunk-forward units so the construction never
        // picks a budget-violating fill when a fitting one exists.
        zbv.act_grad_weight =
            static_cast<double>(costs.ActGradBytes({sched::OpKind::kBackward, 0, 0, 0})) /
            per_forward;
        Bytes tightest = build.activation_budget.front();
        for (const Bytes b : build.activation_budget) {
          tightest = std::min(tightest, b);
        }
        zbv.activation_budget_units = static_cast<double>(tightest) / per_forward;
      }
      build.schedule = sched::HandcraftedZbvSchedule(strategy.pp, micros, zbv);
      break;
    }
    case Method::kZbvCapped:
      build.schedule = sched::ZbvCappedSchedule(strategy.pp, micros);
      build.wgrad_mode = sim::WgradMode::kFillWhole;
      break;
    case Method::kSvpp: {
      SvppOptions svpp;
      svpp.stages = strategy.pp;
      svpp.virtual_chunks = strategy.vp;
      svpp.slices = strategy.spp;
      svpp.micros = micros;
      svpp.split_backward = true;
      svpp.reschedule_backwards = options.svpp_reschedule;
      if (options.svpp_inflight > 0) {
        svpp.max_inflight = options.svpp_inflight;
      } else {
        const VariantDecision decision = ChooseSvppVariant(costs, svpp, cluster.gpu);
        if (!decision.feasible) {
          return InfeasibleBuild(strategy, "no feasible SVPP variant: " + decision.reason);
        }
        svpp.max_inflight = decision.f;
      }
      build.schedule = GenerateSvpp(svpp);
      break;
    }
    case Method::kHanayo:
      build.schedule = sched::HanayoSchedule(strategy.pp, micros);
      break;
    case Method::kSynth: {
      // Budgeted synthesizer: statically-placed W like kZbv, ordered by
      // the measured per-op costs, with each stage's byte budget
      // converted into retained-chunk-forward units.
      sched::SynthOptions synth;
      synth.f_time = costs.ComputeTime({sched::OpKind::kForward, 0, 0, 0});
      synth.b_time = costs.ComputeTime({sched::OpKind::kBackward, 0, 0, 0});
      synth.w_time = costs.ComputeTime({sched::OpKind::kWeightGrad, 0, 0, 0});
      synth.transfer_time = costs.TransferTime({sched::OpKind::kForward, 0, 0, 0});
      synth.offset_radius = options.synth_offset_radius;
      synth.max_leaves = options.synth_max_leaves;
      if (per_forward > 0) {
        // A synth retained unit spans F→W: it holds the forward's
        // activation throughout and additionally the act-grad between B
        // and W (the engine releases both at W). Convert bytes at the
        // stage's worst-case per-unit cost over the chunks it owns —
        // embedding/head chunks carry more than the uniform
        // per-forward figure — so the cap is honest.
        synth.budget.resize(static_cast<std::size_t>(strategy.pp));
        std::vector<double> per_unit(static_cast<std::size_t>(strategy.pp), 0.0);
        const int total_chunks = strategy.pp * strategy.vp;
        for (int chunk = 0; chunk < total_chunks; ++chunk) {
          const int stage = problem.stage_of_chunk(chunk);
          const double cost = static_cast<double>(
              costs.ActivationBytes({sched::OpKind::kForward, 0, 0, chunk}) +
              costs.ActGradBytes({sched::OpKind::kBackward, 0, 0, chunk}));
          per_unit[static_cast<std::size_t>(stage)] =
              std::max(per_unit[static_cast<std::size_t>(stage)], cost);
        }
        for (int stage = 0; stage < strategy.pp; ++stage) {
          const int units = static_cast<int>(
              static_cast<double>(build.activation_budget[static_cast<std::size_t>(stage)]) /
              per_unit[static_cast<std::size_t>(stage)]);
          if (units < strategy.vp) {
            return InfeasibleBuild(
                strategy,
                StrFormat("synth: stage %d fits %d chunk-forwards, below the v=%d floor",
                          stage, units, strategy.vp));
          }
          synth.budget[static_cast<std::size_t>(stage)] = units;
        }
      }
      build.schedule = sched::SynthesizeSchedule(problem, synth);
      break;
    }
  }

  build.feasible = true;
  build.note = "ok";
  return build;
}

IterationResult SimulateIteration(const model::TransformerConfig& config,
                                  const Strategy& strategy, const hw::ClusterSpec& cluster,
                                  int global_batch, const IterationOptions& options) {
  CandidateBuild build = BuildCandidate(config, strategy, cluster, global_batch, options);
  if (!build.feasible) {
    return Infeasible(strategy, std::move(build.note));
  }
  const int world = cluster.world_size();
  const int micros = build.micros;
  const sched::PipelineProblem& problem = build.problem;
  const TrainingCostModel& costs = *build.costs;
  sched::Schedule& schedule = build.schedule;

  // ---- execute ---------------------------------------------------------------
  sim::EngineOptions engine;
  engine.wgrad_mode = build.wgrad_mode;
  engine.activation_budget = build.activation_budget;
  engine.fault_plan = options.fault_plan;
  engine.dp_overlap = options.dp_overlap;
  engine.dp_link_shared = options.dp_overlap && hw::SingleTierTopology(cluster)
                                                    .FabricShares(strategy.layout())
                                                    .Shares(hw::Dim::kData, hw::Dim::kPipeline);
  sim::SimResult sim;
  bool rebalanced = false;
  Seconds unmitigated_pipeline_time = 0;
  // Per-stage static-memory scaling of the adopted mitigation's layer
  // re-partition (1.0 everywhere when nothing was adopted).
  std::vector<double> static_scale(static_cast<std::size_t>(strategy.pp), 1.0);
  auto execute = [&](const sim::CostModel& priced) {
    sim = Simulate(schedule, priced, engine);
    if (!options.rebalance_stragglers || options.fault_plan.empty()) {
      return;
    }
    MitigationOptions mitigation;
    mitigation.engine = engine;
    mitigation.rebalance.config = config;
    mitigation.rebalance.seq_len = config.seq_len / strategy.cp;
    mitigation.rebalance.slice_alignment = options.cost.slice_alignment;
    mitigation.rebalance.units_per_chunk =
        static_cast<int>(config.partition_units()) / problem.num_chunks();
    if (problem.slices > 1) {
      // Re-balance against the spans the cost model actually priced.
      mitigation.rebalance.base_spans =
          options.cost.balanced_slices
              ? model::AlignSlices(model::BalancedSlices(config, mitigation.rebalance.seq_len,
                                                         problem.slices),
                                   std::max<std::int64_t>(1, options.cost.slice_alignment))
              : model::UniformSlices(mitigation.rebalance.seq_len, problem.slices);
    }
    const MitigationReport report =
        MitigateStragglers(schedule, priced, *options.fault_plan, mitigation);
    if (report.mitigated_makespan < sim.makespan) {
      unmitigated_pipeline_time = sim.makespan;
      sim = report.mitigated;
      schedule = report.mitigated_schedule;
      for (int stage = 0; stage < strategy.pp; ++stage) {
        static_scale[static_cast<std::size_t>(stage)] =
            report.plan.stage_unit_ratio(problem, stage);
      }
      rebalanced = true;
    }
  };
  sim::CostModelStack stack(costs);
  if (options.noise_sigma > 0) {
    stack.Noisy(options.noise_sigma, options.noise_seed);
  }
  execute(stack.model());

  IterationResult result;
  result.strategy = strategy;
  result.micros = micros;
  result.pipeline_time = sim.makespan;
  result.mitigation.rebalanced = rebalanced;
  result.mitigation.unmitigated_pipeline_time =
      rebalanced ? unmitigated_pipeline_time : sim.makespan;
  result.dp.overlapped = options.dp_overlap;
  if (options.dp_overlap) {
    // The engine scheduled the buckets against the timeline; only the
    // tail past the makespan is paid.
    result.dp.serialized = sim.dp.serialized;
    result.dp.hidden = sim.dp.hidden;
    result.dp.exposed = sim.dp.exposed;
  } else {
    // Monolithic sync after the flush: everything is exposed.
    result.dp.serialized = costs.DpSyncTime();
    result.dp.exposed = result.dp.serialized;
  }
  result.dp_sync_time = result.dp.exposed;
  result.iteration_time = sim.makespan + result.dp_sync_time + options.optimizer_step;
  result.bubble_ratio = sim.bubble_ratio;
  result.static_memory = costs.MaxStaticMemory();
  result.peak_activation = sim.peak_activation;
  result.checkpoint_shard = costs.CheckpointShardBytes();
  result.checkpoint_state = costs.CheckpointStateBytes();

  // Worst stage overall: static of that stage (scaled by the adopted
  // re-partition's layer share) + its activation peak.
  Bytes peak = 0;
  for (int stage = 0; stage < strategy.pp; ++stage) {
    const Bytes stage_static = static_cast<Bytes>(
        std::llround(static_cast<double>(costs.StaticMemory(stage)) *
                     static_scale[static_cast<std::size_t>(stage)]));
    peak = std::max(peak, stage_static +
                              sim.stages[static_cast<std::size_t>(stage)].peak_activation);
  }
  if (strategy.method == Method::kZbvCapped) {
    // The capped generator's accounting releases a forward's activations
    // at its B, but its W ops are deferred (kFillWhole) and the memory is
    // really held until each W runs — so the measured peak carries an
    // ~A/2 artifact. Floor it at the construction's honest bound, 1F1B
    // parity (ZbvMaxRetainedForwards chunk-forwards on the worst stage),
    // so planner memory feasibility cannot be fooled. The surrogate
    // applies the same floor.
    const Bytes honest =
        static_cast<Bytes>(sched::ZbvMaxRetainedForwards(strategy.pp, micros)) *
        costs.PerForwardActivationBytes();
    result.peak_activation = std::max(result.peak_activation, honest);
    peak = std::max(peak, costs.MaxStaticMemory() + honest);
  }
  result.peak_memory = peak;

  const std::int64_t tokens = static_cast<std::int64_t>(global_batch) * config.seq_len;
  result.per_gpu_flops = model::TrainingFlops(config, tokens) /
                         (result.iteration_time * static_cast<double>(world));
  result.mfu = result.per_gpu_flops / cluster.gpu.peak_flops;

  if (result.peak_memory > cluster.gpu.usable_memory()) {
    result.feasible = false;
    result.note = StrFormat("OOM: peak %s > usable %s", FormatBytes(result.peak_memory).c_str(),
                            FormatBytes(cluster.gpu.usable_memory()).c_str());
  } else {
    result.feasible = true;
    result.note = "ok";
  }
  if (options.keep_timeline) {
    result.sim = std::move(sim);
  } else {
    sim.timeline.clear();
    result.sim = std::move(sim);
  }
  if (options.keep_schedule) {
    result.schedule = std::move(schedule);
    result.activation_budget = engine.activation_budget;
  }
  return result;
}

}  // namespace mepipe::core
