#include "core/memory_model.h"

#include <algorithm>

#include "common/check.h"
#include "common/format.h"

namespace mepipe::core {

VariantDecision ChooseSvppVariant(const TrainingCostModel& costs, const SvppOptions& svpp,
                                  const hw::GpuSpec& gpu) {
  VariantDecision decision;
  decision.static_bytes = costs.MaxStaticMemory();
  decision.activation_budget = gpu.usable_memory() - decision.static_bytes;

  Bytes per_forward = costs.PerForwardActivationBytes();
  if (svpp.split_backward) {
    // Between B and W the slice also holds its activation gradients.
    per_forward += costs.ActGradBytes(
        {sched::OpKind::kBackward, 0, 0, svpp.stages * svpp.virtual_chunks - 1});
  }
  decision.per_forward_bytes = per_forward;

  if (decision.activation_budget <= 0) {
    decision.reason = StrFormat("static memory %s exceeds usable %s",
                                FormatBytes(decision.static_bytes).c_str(),
                                FormatBytes(gpu.usable_memory()).c_str());
    return decision;
  }

  const int floor = MinInflight(svpp);
  const int ceiling = MaxUsefulInflight(svpp);
  MEPIPE_CHECK_GT(per_forward, 0);
  const int affordable = static_cast<int>(decision.activation_budget / per_forward);
  if (affordable < floor) {
    decision.reason =
        StrFormat("budget %s holds only %d forwards; v*s floor is %d",
                  FormatBytes(decision.activation_budget).c_str(), affordable, floor);
    return decision;
  }
  decision.feasible = true;
  decision.f = std::min(affordable, ceiling);
  return decision;
}

}  // namespace mepipe::core
