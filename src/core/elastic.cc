#include "core/elastic.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/format.h"
#include "common/rng.h"
#include "hw/comm_model.h"
#include "sched/schedule.h"
#include "sched/validate.h"

namespace mepipe::core {
namespace {

// Independent splitmix64 stream offsets: failures, straggler onsets, and
// observation noise never share draws, so the failure arrival sequence
// is identical across the three policies regardless of what each policy
// observes or re-plans.
constexpr std::uint64_t kStragglerStream = 0x5851f42d4c957f2dULL;
constexpr std::uint64_t kNoiseStream = 0x14057b7ef767814fULL;

// Lower-median normalization: anchors per-stage factors on the majority
// so a uniform fleet-wide dilation never reads as a straggler profile.
void NormalizeByMedian(std::vector<double>& values) {
  std::vector<double> sorted = values;
  const std::size_t mid = (sorted.size() - 1) / 2;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(mid),
                   sorted.end());
  const double median = sorted[mid];
  for (double& v : values) {
    v = std::max(1.0, median > 0 ? v / median : v);
  }
}

}  // namespace

const char* ToString(ElasticPolicy policy) {
  switch (policy) {
    case ElasticPolicy::kFrozen: return "frozen";
    case ElasticPolicy::kRestart: return "restart";
    case ElasticPolicy::kElastic: return "elastic";
  }
  return "?";
}

void ElasticOptions::Validate() const {
  run.Validate();
  MEPIPE_CHECK_GE(repair_time, 0.0);
  MEPIPE_CHECK_GE(replan_stall, 0.0);
  MEPIPE_CHECK_GE(reshard_stall, 0.0);
  MEPIPE_CHECK_GE(straggler.mtbf, 0.0);
  MEPIPE_CHECK_GE(straggler.slowdown, 1.0) << "straggler slowdown must be >= 1";
  MEPIPE_CHECK_GE(straggler.duration, 0.0);
  MEPIPE_CHECK_GE(straggler.busy_noise_sigma, 0.0);
  MEPIPE_CHECK_GE(pipeline_stages, 1);
  MEPIPE_CHECK_GE(units_per_stage, 1);
  MEPIPE_CHECK(straggler.stage >= -1 && straggler.stage < pipeline_stages)
      << "straggler stage " << straggler.stage << " outside [-1, " << pipeline_stages << ")";
  detector.Validate();
  MEPIPE_CHECK_GT(interval_solve_mtbfs, 0.0);

  const auto check_len = [](std::size_t got, const char* what, std::size_t want) {
    MEPIPE_CHECK(got == 0 || got == want)
        << what << " has " << got << " entries, want 0 or " << want;
  };
  const std::size_t dp = static_cast<std::size_t>(run.dp_replicas);
  check_len(iteration_time_by_survivors.size(), "iteration_time_by_survivors", dp);
  check_len(useful_fraction_by_survivors.size(), "useful_fraction_by_survivors", dp);
  check_len(reshard_stall_by_survivors.size(), "reshard_stall_by_survivors", dp);
  check_len(shape_feasible.size(), "shape_feasible", dp);
  const std::size_t stages = static_cast<std::size_t>(pipeline_stages);
  check_len(clean_stage_busy.size(), "clean_stage_busy", stages);
  check_len(straggled_stage_busy.size(), "straggled_stage_busy", stages);
  check_len(mitigated_stage_busy.size(), "mitigated_stage_busy", stages);
  check_len(mitigated_clean_stage_busy.size(), "mitigated_clean_stage_busy", stages);
  for (const Seconds t : iteration_time_by_survivors) {
    MEPIPE_CHECK_GE(t, 0.0);
  }
  for (const double f : useful_fraction_by_survivors) {
    MEPIPE_CHECK_GE(f, 0.0);
  }
  for (const Seconds t : reshard_stall_by_survivors) {
    MEPIPE_CHECK_GE(t, 0.0);
  }
  MEPIPE_CHECK_GE(straggled_iteration_time, 0.0);
  MEPIPE_CHECK_GE(mitigated_iteration_time, 0.0);
  MEPIPE_CHECK_GE(mitigated_clean_iteration_time, 0.0);
  for (const int spp : shape_slice_candidates) {
    MEPIPE_CHECK_GE(spp, 1) << "shape_slice_candidates entries must be >= 1";
  }
  for (const int vp : shape_vp_candidates) {
    MEPIPE_CHECK_GE(vp, 1) << "shape_vp_candidates entries must be >= 1";
  }
}

ElasticMetrics SimulateElasticRun(Seconds iteration_time, const ElasticOptions& opt) {
  MEPIPE_CHECK_GT(iteration_time, 0.0);
  opt.Validate();
  const ReliabilityOptions& rel = opt.run.reliability;
  const int dp = opt.run.dp_replicas;
  const int stages = opt.pipeline_stages;
  const int units0 = opt.units_per_stage;

  const Seconds target = opt.run.target_useful_time > 0
                             ? opt.run.target_useful_time
                             : static_cast<Seconds>(opt.run.iterations) * iteration_time;
  MEPIPE_CHECK_GT(target, 0.0) << "nothing to simulate";
  const Seconds mtbf =
      rel.mtbf_per_1000_gpus * 1000.0 / static_cast<double>(opt.run.gpus);

  SplitMixRng rng_fail(opt.run.seed);
  SplitMixRng rng_straggler(opt.run.seed ^ kStragglerStream);
  SplitMixRng rng_noise(opt.run.seed ^ kNoiseStream);

  ElasticMetrics m;
  m.policy = opt.policy;
  m.iteration_time = iteration_time;
  m.checkpoint_interval_by_survivors.assign(static_cast<std::size_t>(dp), 0.0);

  // ---- run state ----------------------------------------------------------
  Seconds wall = 0;        // elapsed cluster time, stalls included
  Seconds useful = 0;      // clean-equivalent progress delivered
  Seconds ckpt_useful = 0; // progress covered by the last durable checkpoint
  Seconds since_ckpt = 0;  // running wall since the last durable checkpoint
  int survivors = dp;
  std::deque<Seconds> repairs;  // wall instants outstanding repairs complete
  // Full-fleet-equivalent hazard budget to the next failure: advancing
  // dt of wall with `active` powered replicas consumes dt·active/dp.
  Seconds next_fail = rng_fail.NextExponential(mtbf);

  // Straggler ground truth (hw) and the plan currently executing
  // (assumed profile + unit assignment).
  bool straggler_active = false;
  int straggler_stage = 0;
  Seconds straggler_began = 0;
  Seconds straggler_until = std::numeric_limits<Seconds>::infinity();
  Seconds next_onset = opt.straggler.mtbf > 0
                           ? rng_straggler.NextExponential(opt.straggler.mtbf)
                           : std::numeric_limits<Seconds>::infinity();
  std::vector<double> hw(static_cast<std::size_t>(stages), 1.0);
  std::vector<double> assumed(static_cast<std::size_t>(stages), 1.0);
  std::vector<int> units(static_cast<std::size_t>(stages), units0);
  const std::vector<int> even_units = units;

  const double failure_budget = 1000.0 * (target / mtbf + 10.0);

  // ---- helpers ------------------------------------------------------------
  const auto record_event = [&](sim::FaultKind kind, int stage, Seconds begin, Seconds end,
                                std::string label) {
    if (m.events.size() < opt.max_events) {
      m.events.push_back({kind, stage, -1, -1, begin, end, std::move(label)});
    }
  };

  // All wall advancement funnels through tick(): it keeps the
  // degraded-time ledger (wall spent with fewer than dp live replicas,
  // whether idling or training) consistent by construction.
  const auto tick = [&](Seconds dt) {
    wall += dt;
    if (survivors < dp) {
      m.degraded_time += dt;
    }
  };

  struct Advance {
    Seconds done = 0;
    bool failed = false;
  };
  // Advances up to dt of wall with `active` replicas exposed to the
  // hazard, stopping early at a failure instant.
  const auto advance = [&](Seconds dt, int active) -> Advance {
    const double frac = static_cast<double>(active) / static_cast<double>(dp);
    if (frac <= 0.0 || dt <= 0.0) {
      tick(std::max(0.0, dt));
      return {std::max(0.0, dt), false};
    }
    const Seconds exposure = dt * frac;
    if (next_fail > exposure) {
      next_fail -= exposure;
      tick(dt);
      return {dt, false};
    }
    const Seconds done = next_fail / frac;
    tick(done);
    next_fail = rng_fail.NextExponential(mtbf);
    return {done, true};
  };
  // Advances THROUGH dt: short barrier stalls (reshard, re-plan) are
  // failure-atomic — the hazard budget is consumed, but a failure
  // landing inside fires right after the stall instead of aborting it.
  const auto advance_through = [&](Seconds dt, int active) {
    const double frac =
        std::max(0.0, static_cast<double>(active) / static_cast<double>(dp));
    next_fail = std::max(0.0, next_fail - std::max(0.0, dt) * frac);
    tick(std::max(0.0, dt));
  };

  const auto shape_ok = [&](int s) {
    if (s < 1) {
      return false;
    }
    return opt.shape_feasible.empty() ||
           opt.shape_feasible[static_cast<std::size_t>(s - 1)] != 0;
  };
  const auto shape_time = [&](int s) -> Seconds {
    if (!opt.iteration_time_by_survivors.empty()) {
      const Seconds t = opt.iteration_time_by_survivors[static_cast<std::size_t>(s - 1)];
      if (t > 0) {
        return t;
      }
    }
    return iteration_time * static_cast<double>(dp) / static_cast<double>(s);
  };
  const auto useful_credit = [&](int s) -> Seconds {
    if (!opt.useful_fraction_by_survivors.empty()) {
      const double f = opt.useful_fraction_by_survivors[static_cast<std::size_t>(s - 1)];
      if (f > 0) {
        return iteration_time * f;
      }
    }
    return iteration_time;
  };
  const auto reshard_stall_for = [&](int s) -> Seconds {
    if (!opt.reshard_stall_by_survivors.empty()) {
      const Seconds t = opt.reshard_stall_by_survivors[static_cast<std::size_t>(s - 1)];
      if (t > 0) {
        return t;
      }
    }
    return opt.reshard_stall;
  };

  // Checkpoint interval of a fleet shape, re-solved on first visit for
  // the surviving fleet's MTBF (ISSUE tentpole (b)); memoized — the
  // solver runs once per shape, not per checkpoint.
  std::vector<Seconds> interval_memo(static_cast<std::size_t>(dp), 0.0);
  const auto interval_for = [&](int s) -> Seconds {
    Seconds& memo = interval_memo[static_cast<std::size_t>(s - 1)];
    if (memo > 0) {
      return memo;
    }
    if (!opt.resolve_checkpoint_interval) {
      memo = rel.checkpoint_interval;
    } else {
      ResilienceOptions solve = opt.run;
      solve.gpus = std::max(1, opt.run.gpus * s / dp);
      solve.dp_replicas = s;
      const Seconds shape_mtbf =
          rel.mtbf_per_1000_gpus * 1000.0 / static_cast<double>(solve.gpus);
      solve.target_useful_time = opt.interval_solve_mtbfs * shape_mtbf;
      memo = OptimalCheckpointInterval(shape_time(s), solve, opt.interval_solver).refined;
    }
    m.checkpoint_interval_by_survivors[static_cast<std::size_t>(s - 1)] = memo;
    return memo;
  };

  // Iteration-time factor of the plan currently executing relative to
  // the clean even plan: engine-measured canonical states when the
  // pricing overrides are set, the analytic unit bottleneck otherwise.
  const auto plan_factor = [&]() -> double {
    const bool even = units == even_units;
    Seconds canonical = 0;
    if (even) {
      canonical = straggler_active ? opt.straggled_iteration_time : iteration_time;
    } else {
      canonical = straggler_active ? opt.mitigated_iteration_time
                                   : opt.mitigated_clean_iteration_time;
    }
    if (canonical > 0) {
      return canonical / iteration_time;
    }
    double bottleneck = 0;
    for (std::size_t i = 0; i < units.size(); ++i) {
      bottleneck = std::max(bottleneck, static_cast<double>(units[i]) * hw[i]);
    }
    return bottleneck / static_cast<double>(units0);
  };

  // Per-stage busy synthesis for the detector. `dilation` is hw (what
  // actually ran) for observations and `assumed` (what the plan
  // expected) for the estimator baseline.
  const auto synth_busy = [&](const std::vector<double>& dilation) {
    std::vector<Seconds> busy(static_cast<std::size_t>(stages));
    for (std::size_t i = 0; i < busy.size(); ++i) {
      const Seconds base = opt.clean_stage_busy.empty()
                               ? iteration_time / static_cast<double>(stages)
                               : opt.clean_stage_busy[i];
      busy[i] = base * (static_cast<double>(units[i]) / static_cast<double>(units0)) *
                dilation[i];
    }
    return busy;
  };
  const auto canonical_busy = [&](bool expected) -> const std::vector<Seconds>* {
    const bool even = units == even_units;
    // The estimator baseline expects what the plan assumed: the even
    // plan assumed no straggler, the mitigated plan assumed one.
    const bool strag = expected ? !even : straggler_active;
    const std::vector<Seconds>& canon =
        even ? (strag ? opt.straggled_stage_busy : opt.clean_stage_busy)
             : (strag ? opt.mitigated_stage_busy : opt.mitigated_clean_stage_busy);
    return canon.empty() ? nullptr : &canon;
  };
  const auto expected_busy = [&]() {
    const std::vector<Seconds>* canon = canonical_busy(/*expected=*/true);
    return canon ? *canon : synth_busy(assumed);
  };
  const auto observed_busy = [&]() {
    const std::vector<Seconds>* canon = canonical_busy(/*expected=*/false);
    std::vector<Seconds> busy = canon ? *canon : synth_busy(hw);
    if (opt.straggler.busy_noise_sigma > 0) {
      for (Seconds& b : busy) {
        b *= std::exp(opt.straggler.busy_noise_sigma * rng_noise.NextGaussian());
      }
    }
    return busy;
  };

  const bool detecting = opt.policy == ElasticPolicy::kElastic && opt.straggler.mtbf > 0;
  SlowdownWindowEstimator estimator;
  if (detecting) {
    estimator = SlowdownWindowEstimator(expected_busy(), opt.detector);
  }

  const auto count_failure = [&]() {
    ++m.failures;
    MEPIPE_CHECK_LT(m.failures, failure_budget)
        << "MTBF " << mtbf << "s is too short for the run to make progress under the "
        << ToString(opt.policy) << " policy";
  };

  // A replica goes down at the current wall instant: queue its repair.
  const auto lose_replica = [&]() {
    count_failure();
    --survivors;
    record_event(sim::FaultKind::kFailStop, -1, wall, wall,
                 StrFormat("replica lost (%d/%d live)", survivors, dp));
    record_event(sim::FaultKind::kRepair, -1, wall, wall + opt.repair_time,
                 StrFormat("node repair, %d outstanding", static_cast<int>(repairs.size()) + 1));
    repairs.push_back(wall + opt.repair_time);
  };

  // Synchronous outage (frozen/restart, and the elastic fallbacks):
  // every replica idles until each outstanding node is repaired, then
  // the fleet pays the restore stall. Failures during the wait queue
  // their own repairs; a failure during the restore restarts it.
  const auto synchronous_outage = [&]() {
    for (;;) {
      while (!repairs.empty()) {
        const Seconds due = repairs.front();
        const Advance r = advance(due - wall, survivors);
        m.repair_wait_time += r.done;
        if (r.failed) {
          lose_replica();
        } else {
          repairs.pop_front();
          ++survivors;
        }
      }
      const Advance r = advance(rel.recovery_time, survivors);
      m.recovery_time += r.done;
      if (!r.failed) {
        return;
      }
      lose_replica();
    }
  };

  const auto rollback_to_checkpoint = [&]() {
    const Seconds rolled = useful - ckpt_useful;
    m.lost_time += rolled;
    useful = ckpt_useful;
    since_ckpt = 0;
  };

  // Hardware failure at the current wall instant; `partial_lost` is the
  // clean-equivalent work of the interrupted iteration (every policy
  // loses it — survivors hold the last iteration boundary at best).
  const auto handle_failure = [&](Seconds partial_lost) {
    m.lost_time += partial_lost;
    lose_replica();
    switch (opt.policy) {
      case ElasticPolicy::kFrozen:
        // Full stop and restore of the durable checkpoint: survivors'
        // in-memory state is discarded with the run.
        rollback_to_checkpoint();
        synchronous_outage();
        break;
      case ElasticPolicy::kRestart:
        // Survivors keep their state and idle; the repaired node
        // restores from a peer during the recovery stall.
        synchronous_outage();
        break;
      case ElasticPolicy::kElastic:
        if (survivors >= 1 && shape_ok(survivors)) {
          // Shrink the DP ring: survivors re-cover the departed
          // replica's ZeRO-1 shard behind a redistribution barrier,
          // then training continues degraded.
          const Seconds stall = reshard_stall_for(survivors);
          const Seconds begin = wall;
          advance_through(stall, survivors);
          m.reshard_time += stall;
          ++m.reshards;
          record_event(sim::FaultKind::kReshard, -1, begin, wall,
                       StrFormat("shrink to %d replicas", survivors));
        } else if (survivors >= 1) {
          // No feasible smaller shape: restart-style synchronous wait.
          synchronous_outage();
        } else {
          // The last replica died — no surviving peer holds the state.
          rollback_to_checkpoint();
          synchronous_outage();
        }
        break;
    }
  };

  // Elastic re-expansion: completed repairs rejoin at the next
  // iteration boundary behind another reshard barrier (the rejoining
  // replica streamed its peer state during the repair window, so no
  // extra recovery stall is paid — DESIGN.md states the contract).
  const auto process_repairs = [&]() {
    while (!repairs.empty() && repairs.front() <= wall) {
      repairs.pop_front();
      ++survivors;
      if (opt.policy == ElasticPolicy::kElastic) {
        const Seconds stall = reshard_stall_for(survivors);
        const Seconds begin = wall;
        advance_through(stall, survivors);
        m.reshard_time += stall;
        ++m.expansions;
        record_event(sim::FaultKind::kReshard, -1, begin, wall,
                     StrFormat("expand to %d replicas", survivors));
      }
    }
  };

  const auto update_straggler = [&]() {
    if (opt.straggler.mtbf <= 0) {
      return;
    }
    if (straggler_active && wall >= straggler_until) {
      straggler_active = false;
      std::fill(hw.begin(), hw.end(), 1.0);
      record_event(sim::FaultKind::kStraggler, straggler_stage, straggler_began,
                   straggler_until,
                   StrFormat("stage %d x%.2f cleared", straggler_stage,
                             opt.straggler.slowdown));
      next_onset = wall + rng_straggler.NextExponential(opt.straggler.mtbf);
    }
    if (!straggler_active && wall >= next_onset) {
      straggler_active = true;
      straggler_stage =
          opt.straggler.stage >= 0
              ? opt.straggler.stage
              : static_cast<int>(rng_straggler.NextU64() % static_cast<std::uint64_t>(stages));
      std::fill(hw.begin(), hw.end(), 1.0);
      hw[static_cast<std::size_t>(straggler_stage)] = opt.straggler.slowdown;
      straggler_began = wall;
      straggler_until = opt.straggler.duration > 0
                            ? wall + opt.straggler.duration
                            : std::numeric_limits<Seconds>::infinity();
      ++m.straggler_onsets;
    }
  };

  // Live re-plan: fold the detected deviation into the assumed profile,
  // re-partition units against it, pay the re-plan stall, and re-arm
  // the detector against the new plan's expected busy times. Both
  // adoption (a straggler appeared) and reversion (it cleared) are the
  // same move — deviation is measured against the plan currently
  // executing, in either direction.
  const auto replan = [&]() {
    const std::vector<double>& ratios = estimator.WindowRatios();
    for (std::size_t i = 0; i < assumed.size(); ++i) {
      assumed[i] *= ratios[i];
    }
    NormalizeByMedian(assumed);
    units = PartitionUnitsBySpeed(units0 * stages, assumed, 1);
    const Seconds begin = wall;
    advance_through(opt.replan_stall, survivors);
    m.replan_time += opt.replan_stall;
    ++m.replans;
    StageProfile profile;
    profile.slowdown = assumed;
    record_event(sim::FaultKind::kReplan, straggler_stage, begin, wall,
                 StrFormat("replan: profile max x%.2f", profile.max_slowdown()));
    estimator.Reset(expected_busy());
  };

  // ---- the control loop ---------------------------------------------------
  while (useful + 1e-9 < target) {
    process_repairs();
    update_straggler();
    const int s = survivors;
    const Seconds tau = shape_time(s) * plan_factor();
    const Seconds credit = useful_credit(s);

    const Advance r = advance(tau, s);
    if (r.failed) {
      // The interrupted iteration's partial work is discarded.
      const double frac = tau > 0 ? r.done / tau : 1.0;
      handle_failure(frac * credit);
      continue;
    }
    useful += credit;
    since_ckpt += tau;
    ++m.iterations_completed;

    if (detecting && estimator.Observe(observed_busy()) && estimator.PersistentDeviation()) {
      replan();
    }

    if (useful + 1e-9 < target && since_ckpt >= interval_for(survivors)) {
      const Advance w = advance(rel.checkpoint_write_cost, survivors);
      m.checkpoint_time += w.done;
      if (w.failed) {
        // Failure mid-write: the elapsed write time is spent but the
        // checkpoint never became durable.
        ++m.checkpoints_aborted;
        handle_failure(0.0);
      } else {
        ckpt_useful = useful;
        since_ckpt = 0;
        ++m.checkpoints_written;
      }
    }
  }

  if (straggler_active) {
    record_event(sim::FaultKind::kStraggler, straggler_stage, straggler_began, wall,
                 StrFormat("stage %d x%.2f at run end", straggler_stage,
                           opt.straggler.slowdown));
  }
  m.wall_time = wall;
  m.useful_time = useful;
  m.degraded_fraction = wall > 0 ? m.degraded_time / wall : 0.0;
  m.goodput = wall > 0 ? useful / wall : 1.0;
  m.overhead_fraction = 1.0 - m.goodput;
  return m;
}

// ---- engine-grounded pricing ----------------------------------------------

namespace {

// Translates a shape's byte activation budget into the validator's
// forward-unit cap via the engine's measured peak (bytes per retained
// forward at the peak), then runs the full sched/validate suite.
int CountInvariantViolations(const IterationResult& result, int stages) {
  sched::InvariantOptions inv;
  if (!result.activation_budget.empty()) {
    inv.retained_cap.resize(static_cast<std::size_t>(stages));
    for (int stage = 0; stage < stages; ++stage) {
      const int peak_units = sched::PeakRetainedForwards(result.schedule, stage);
      const Bytes peak_bytes =
          result.sim.stages[static_cast<std::size_t>(stage)].peak_activation;
      const Bytes budget = result.activation_budget[static_cast<std::size_t>(stage)];
      int cap = peak_units;
      if (peak_units > 0 && peak_bytes > 0) {
        cap = static_cast<int>(static_cast<double>(budget) *
                               static_cast<double>(peak_units) /
                               static_cast<double>(peak_bytes));
      }
      inv.retained_cap[static_cast<std::size_t>(stage)] = std::max(cap, 0);
    }
  }
  return static_cast<int>(sched::CheckScheduleInvariants(result.schedule, inv)
                              .violations.size());
}

std::vector<Seconds> StageBusyOf(const sim::SimResult& sim) {
  std::vector<Seconds> busy;
  busy.reserve(sim.stages.size());
  for (const sim::StageMetrics& stage : sim.stages) {
    busy.push_back(stage.busy);
  }
  return busy;
}

// Partitioning variants a degraded shape may re-plan to: the base
// strategy first (ties keep it), then SPP re-splits (slice methods
// only) crossed with VP re-splits. CP/TP/PP never vary — they would
// change the replica's GPU footprint, and "survivors" counts replicas
// of the original footprint.
std::vector<Strategy> ShapeVariants(const Strategy& base, const ElasticOptions& options) {
  std::vector<Strategy> variants{base};
  if (!options.surrogate_shape_search) {
    return variants;
  }
  std::vector<int> spps{base.spp};
  if (MethodUsesSlices(base.method)) {
    for (const int spp : options.shape_slice_candidates) {
      if (std::find(spps.begin(), spps.end(), spp) == spps.end()) {
        spps.push_back(spp);
      }
    }
  }
  std::vector<int> vps{base.vp};
  for (const int vp : options.shape_vp_candidates) {
    if (std::find(vps.begin(), vps.end(), vp) == vps.end()) {
      vps.push_back(vp);
    }
  }
  for (const int spp : spps) {
    for (const int vp : vps) {
      if (spp == base.spp && vp == base.vp) {
        continue;
      }
      Strategy variant = base;
      variant.spp = spp;
      variant.vp = vp;
      variants.push_back(variant);
    }
  }
  return variants;
}

}  // namespace

ElasticPricing PriceElasticShapes(const model::TransformerConfig& config,
                                  const Strategy& strategy, const hw::ClusterSpec& cluster,
                                  int global_batch, ElasticOptions& options,
                                  const IterationOptions& iteration) {
  const int dp = strategy.dp;
  MEPIPE_CHECK_GE(dp, 1);
  MEPIPE_CHECK_EQ(dp, options.run.dp_replicas)
      << "strategy.dp and options.run.dp_replicas disagree";
  MEPIPE_CHECK_GT(global_batch, 0);

  // The analytic partition model follows the strategy's real shape.
  options.pipeline_stages = strategy.pp;
  options.units_per_stage = std::max(
      1, static_cast<int>(config.partition_units()) / (strategy.pp * strategy.vp));
  options.Validate();

  IterationOptions iter = iteration;
  iter.keep_timeline = false;
  iter.keep_schedule = true;

  ElasticPricing pricing;
  pricing.shapes.resize(static_cast<std::size_t>(dp));
  options.iteration_time_by_survivors.assign(static_cast<std::size_t>(dp), 0.0);
  options.useful_fraction_by_survivors.assign(static_cast<std::size_t>(dp), 0.0);
  options.reshard_stall_by_survivors.assign(static_cast<std::size_t>(dp), 0.0);
  options.shape_feasible.assign(static_cast<std::size_t>(dp), 0);

  for (int s = dp; s >= 1; --s) {
    ElasticShape& shape = pricing.shapes[static_cast<std::size_t>(s - 1)];
    shape.survivors = s;
    const int world_s = strategy.pp * s * strategy.cp * strategy.tp;
    if (world_s % cluster.gpus_per_node != 0) {
      shape.note = StrFormat("world %d does not fill whole %d-GPU nodes", world_s,
                             cluster.gpus_per_node);
      continue;
    }
    hw::ClusterSpec shrunk = cluster;
    shrunk.nodes = world_s / cluster.gpus_per_node;
    Strategy degraded = strategy;
    degraded.dp = s;
    // Structural gate on the degraded layout. Shapes built above always
    // cover the shrunk world exactly, so this only rejects layouts that
    // the engine would refuse anyway (and gives them a structured note).
    // The tp-on-consumer-tier advisory is deliberately non-fatal here:
    // the degraded run keeps whatever tp the healthy run had.
    bool structurally_invalid = false;
    for (const hw::LayoutIssue& issue :
         degraded.layout().Validate(hw::SingleTierTopology(shrunk))) {
      if (issue.code != hw::LayoutIssue::Code::kTensorParallelOnConsumerTier) {
        shape.note = issue.message;
        structurally_invalid = true;
        break;
      }
    }
    if (structurally_invalid) {
      continue;
    }
    // Survivors re-split the global batch; the ceil keeps per-replica
    // micro-batches whole and the extra samples earn proportionally
    // more clean-equivalent credit.
    const int micros = (global_batch + s - 1) / s;
    const int batch_s = micros * s;
    // Surrogate triage: analytically price the shape's partitioning
    // variants and hand only the winner to the exact engine below. The
    // base strategy is variant 0, so ties (and search-off) reproduce the
    // pre-surrogate behavior exactly.
    Strategy chosen = degraded;
    const std::vector<Strategy> variants = ShapeVariants(degraded, options);
    if (variants.size() > 1) {
      SurrogateOptions surrogate;
      surrogate.iteration = iteration;
      surrogate.iteration.keep_timeline = false;
      surrogate.iteration.keep_schedule = false;
      surrogate.cache = options.surrogate_cache;
      Seconds best_time = std::numeric_limits<Seconds>::infinity();
      for (const Strategy& variant : variants) {
        try {
          const SurrogateResult priced =
              SurrogatePrice(config, variant, shrunk, batch_s, surrogate);
          if (priced.feasible && priced.iteration_time < best_time) {
            best_time = priced.iteration_time;
            chosen = variant;
          }
        } catch (const CheckError&) {
          // Structurally inapplicable variant: skip it.
        }
      }
    }
    shape.surrogate_variants =
        variants.size() > 1 ? static_cast<int>(variants.size()) : 0;
    IterationResult result = SimulateIteration(config, chosen, shrunk, batch_s, iter);
    if (!result.feasible && (chosen.spp != degraded.spp || chosen.vp != degraded.vp)) {
      // The surrogate's pick must never cost feasibility: fall back to
      // the base partitioning when the exact engine rejects it.
      chosen = degraded;
      result = SimulateIteration(config, chosen, shrunk, batch_s, iter);
    }
    shape.micros = micros;
    shape.strategy = chosen;
    shape.note = result.note;
    if (!result.feasible) {
      continue;
    }
    shape.feasible = true;
    shape.iteration_time = result.iteration_time;
    shape.useful_fraction =
        static_cast<double>(batch_s) / static_cast<double>(global_batch);
    // Reshard barrier entering this shape: all-gather of the departed
    // replica's worst ZeRO-1 shard over the surviving DP fabric.
    const hw::LinkSpec link =
        hw::SingleTierTopology(shrunk).LinkFor(hw::Dim::kData, chosen.layout());
    shape.reshard_stall = hw::CommModel::AllGather(result.checkpoint_shard, s, link);
    shape.invariant_violations = CountInvariantViolations(result, strategy.pp);
    if (shape.invariant_violations == 0) {
      ++pricing.validated_schedules;
    }

    options.iteration_time_by_survivors[static_cast<std::size_t>(s - 1)] =
        shape.iteration_time;
    options.useful_fraction_by_survivors[static_cast<std::size_t>(s - 1)] =
        shape.useful_fraction;
    options.reshard_stall_by_survivors[static_cast<std::size_t>(s - 1)] =
        shape.reshard_stall;
    options.shape_feasible[static_cast<std::size_t>(s - 1)] = 1;

    if (s == dp) {
      options.clean_stage_busy = StageBusyOf(result.sim);
    }
  }

  const ElasticShape& full = pricing.shapes[static_cast<std::size_t>(dp - 1)];
  MEPIPE_CHECK(full.feasible) << "full-fleet strategy infeasible: " << full.note;
  pricing.clean_iteration_time = full.iteration_time;

  // ---- straggler plan states (only when stragglers are injected) ----------
  if (options.straggler.mtbf > 0) {
    MEPIPE_CHECK_GE(options.straggler.stage, 0)
        << "engine-grounded straggler pricing needs a fixed straggler stage";
    sim::FaultPlan plan;
    const Seconds horizon =
        full.iteration_time * options.straggler.slowdown * 10.0 + 1.0;
    plan.stragglers.push_back(
        {options.straggler.stage, 0.0, horizon, options.straggler.slowdown});

    IterationOptions straggled_iter = iter;
    straggled_iter.fault_plan = plan;
    const IterationResult straggled =
        SimulateIteration(config, strategy, cluster, global_batch, straggled_iter);
    MEPIPE_CHECK(straggled.feasible) << "straggled run infeasible: " << straggled.note;
    pricing.straggled_iteration_time = straggled.iteration_time;
    options.straggled_iteration_time = straggled.iteration_time;
    options.straggled_stage_busy = StageBusyOf(straggled.sim);

    IterationOptions mitigated_iter = straggled_iter;
    mitigated_iter.rebalance_stragglers = true;
    const IterationResult mitigated =
        SimulateIteration(config, strategy, cluster, global_batch, mitigated_iter);
    MEPIPE_CHECK(mitigated.feasible) << "mitigated run infeasible: " << mitigated.note;
    pricing.mitigation_adopted = mitigated.mitigation.rebalanced;
    pricing.mitigated_iteration_time = mitigated.iteration_time;
    options.mitigated_iteration_time = mitigated.iteration_time;
    options.mitigated_stage_busy = StageBusyOf(mitigated.sim);
    if (mitigated.mitigation.rebalanced &&
        CountInvariantViolations(mitigated, strategy.pp) == 0) {
      ++pricing.validated_schedules;
    }
  }

  return pricing;
}

ElasticMetrics SimulateElasticRun(const model::TransformerConfig& config,
                                  const Strategy& strategy, const hw::ClusterSpec& cluster,
                                  int global_batch, ElasticOptions options,
                                  const IterationOptions& iteration) {
  const ElasticPricing pricing =
      PriceElasticShapes(config, strategy, cluster, global_batch, options, iteration);
  return SimulateElasticRun(pricing.clean_iteration_time, options);
}

}  // namespace mepipe::core
