// Deployment economics of cheap-accelerator clusters — the §9
// discussion, made computable:
//  - hardware-failure overhead from MTBF and checkpoint/recovery costs
//    ("we estimate the cost of hardware failures is less than 5% for a
//    thousand RTX 4090 GPUs");
//  - power/operating cost and the acquisition-vs-electricity parity
//    horizon ("approximately 24 years for A100 clusters to achieve cost
//    parity");
//  - overall cost-effectiveness combining both.
#ifndef MEPIPE_CORE_DEPLOYMENT_H_
#define MEPIPE_CORE_DEPLOYMENT_H_

#include "common/units.h"
#include "hw/cluster.h"

namespace mepipe::core {

struct ReliabilityOptions {
  // Mean time between failures for a reference fleet (§9 cites ~12 h for
  // one thousand A100s). Scales inversely with GPU count.
  Seconds mtbf_per_1000_gpus = 12.0 * 3600.0;
  // Checkpoint-restore time with memory-based checkpointing (§9 cites
  // "a few minutes").
  Seconds recovery_time = 3.0 * 60.0;
  // Interval between checkpoints; work since the last one is lost.
  Seconds checkpoint_interval = 10.0 * 60.0;
  // Cost of writing one checkpoint (pause or bandwidth steal).
  Seconds checkpoint_write_cost = 10.0;
};

// Expected fraction of cluster time lost to failures + checkpointing for
// a cluster of `gpus` accelerators. §9's claim: < 5% at 1000 GPUs.
double FailureOverheadFraction(int gpus, const ReliabilityOptions& options = {});

// Cost model for writing one checkpoint with §9's memory-based
// checkpointing: every rank streams its shard to the checkpoint store in
// parallel, so the stall is governed by the worst (largest) per-rank
// shard, plus a fixed quiesce/consistency barrier.
struct CheckpointCostOptions {
  // Per-rank bandwidth to the checkpoint store (host DRAM / NIC bound on
  // commodity nodes).
  double write_bandwidth_bytes_per_s = 3.0e9;
  // Quiesce + consistency-barrier overhead paid once per checkpoint.
  Seconds barrier = 1.0;
};

// Stall of one checkpoint write whose largest per-rank shard is
// `worst_shard_bytes` (see TrainingCostModel::CheckpointShardBytes).
// Throws CheckError on non-positive bandwidth or negative sizes.
Seconds CheckpointWriteCost(Bytes worst_shard_bytes, const CheckpointCostOptions& options = {});

struct OperatingCostOptions {
  double electricity_usd_per_kwh = 0.10;  // §9: industrial rate, Feb 2025
  // Non-GPU server power (CPUs, fans, NICs) per 8-GPU node, watts.
  double host_power_w = 800;
  // Power usage effectiveness of the facility.
  double pue = 1.3;
};

// Electric operating cost of running the whole cluster for `duration`.
double OperatingCostUsd(const hw::ClusterSpec& cluster, Seconds duration,
                        const OperatingCostOptions& options = {});

// Years of continuous operation after which the cheaper-to-buy cluster's
// higher power bill erases its acquisition advantage against the
// reference cluster, assuming both deliver the same training throughput.
// Returns +infinity when the cheaper cluster also consumes less power,
// and 0 when there is no acquisition advantage to erase (the
// power-hungry cluster is not actually cheaper to buy — parity holds
// from day one, never a negative horizon).
// §9 computes ≈ 24 years for 2×4090-per-A100-equivalent fleets.
double CostParityYears(const hw::ClusterSpec& cheap, const hw::ClusterSpec& reference,
                       const OperatingCostOptions& options = {});

// Total cost of ownership over `years`, acquisition + electricity.
double TotalCostUsd(const hw::ClusterSpec& cluster, double years,
                    const OperatingCostOptions& options = {});

// ---- Rental economics of tiered fleets --------------------------------
//
// The acquisition/electricity math above prices *owning* a cluster; the
// heterogeneous-fleet planner (core/fleet) prices *renting* one. Both
// views meet in the Table 9 / §9 cost benches, which now report each
// device's rental rate next to its ownership cost.

// Rental rate of the whole fleet: every GPU of every tier at the tier's
// $/GPU-hour.
double FleetHourlyCostUsd(const hw::ClusterTopology& topology);

// Rental rate of only the ranks a placed layout occupies: dp·cp·tp ranks
// per stage, each at its hosting tier's rate. This is the
// fleet_usd_per_hour term of core::DollarCostBreakdown.
double PlacementHourlyCostUsd(const hw::ClusterTopology& topology,
                              const hw::StagePlacement& placement,
                              const hw::ParallelLayout& layout);

// WAN egress dollars for `bytes`, billed per decimal GB (cloud style).
double EgressCostUsd(Bytes bytes, double usd_per_gb);

}  // namespace mepipe::core

#endif  // MEPIPE_CORE_DEPLOYMENT_H_
