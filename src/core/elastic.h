// Online elastic runtime: detect mid-run, re-plan live, degrade
// gracefully to surviving replicas.
//
// Everything the repo had so far is offline: core/rebalance replans from
// a *complete* trace, and the PR-4 replica restart replays on the *same*
// fleet shape, idling survivors while a lost replica recovers. This
// control loop turns those pieces into an online runtime over the
// wall-clock training-run simulator (core/resilience):
//
//   (a) Straggler path — a sliding window of per-stage busy times
//       (rebalance::SlowdownWindowEstimator) watches for persistent
//       deviation from the plan currently executing. On a confirmed
//       deviation the loop re-plans live: it feeds the *detected*
//       windowed profile to PartitionUnitsBySpeed, pays an explicit
//       re-plan + weight-redistribution stall (ElasticOptions::
//       replan_stall), and continues on the regenerated assignment. The
//       hysteresis gate makes a transient one-window straggler a no-op
//       and a persistent one a single re-plan; a straggler that *clears*
//       reads as deviation in the opposite direction and triggers the
//       symmetric revert.
//
//   (b) Fail-stop path — on a replica loss the ElasticPolicy decides:
//       kFrozen stops the world until the node is repaired and restores
//       the durable checkpoint; kRestart keeps survivors' state but
//       idles them through repair + recovery (PR 4 on a repair-time
//       axis); kElastic re-shards to the survivors — the DP ring
//       shrinks, the lost replica's ZeRO-1 optimizer shard is
//       redistributed (priced via TrainingCostModel::CheckpointShardBytes
//       over the DP fabric in hw::CommModel by PriceElasticShapes), the
//       checkpoint interval is re-solved via OptimalCheckpointInterval
//       for the surviving fleet's MTBF, and the run continues at reduced
//       throughput until the configured repair time restores the node,
//       when the ring re-expands for another reshard barrier.
//
// Progress is accounted in *clean-equivalent seconds* (one clean
// full-fleet iteration delivers iteration_time of useful progress), so
// goodput is comparable across policies and fleet shapes. Fully
// deterministic under a fixed seed: failures, straggler onsets, and
// observation noise draw from three independent splitmix64 streams, so
// the failure arrival sequence is identical across the three policies.
#ifndef MEPIPE_CORE_ELASTIC_H_
#define MEPIPE_CORE_ELASTIC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/iteration.h"
#include "core/rebalance.h"
#include "core/resilience.h"
#include "core/surrogate.h"
#include "hw/cluster.h"
#include "model/transformer.h"
#include "sim/fault.h"

namespace mepipe::core {

// What the run does when a replica is lost (see file comment).
enum class ElasticPolicy { kFrozen, kRestart, kElastic };

const char* ToString(ElasticPolicy policy);

// Synthetic straggler arrivals for the online run: onsets are Poisson on
// the wall clock, each dilating one pipeline stage by `slowdown` for
// `duration` seconds (0 = until the end of the run). The detector
// observes per-stage busy times perturbed by lognormal noise of
// `busy_noise_sigma` — the knob that exercises the hysteresis gate.
struct StragglerModel {
  Seconds mtbf = 0;     // mean wall-clock time between onsets; 0 = none
  double slowdown = 1.5;
  Seconds duration = 0;
  int stage = -1;       // fixed straggling stage, or -1 = uniform per onset
  double busy_noise_sigma = 0;
};

struct ElasticOptions {
  // Failure model, fleet size, dp_replicas, seed, and run length.
  // run.reliability.checkpoint_interval is the fixed interval when
  // resolve_checkpoint_interval is off; otherwise the solver overrides
  // it per fleet shape.
  ResilienceOptions run;
  ElasticPolicy policy = ElasticPolicy::kElastic;

  // Wall-clock wait for a lost node to be replaced/repaired. Every
  // policy pays it: frozen/restart as a full-fleet stall, elastic as a
  // degraded-throughput window.
  Seconds repair_time = 1800;

  // Explicit transition stalls (who pays which stall is the DESIGN.md
  // state machine). replan_stall covers schedule regeneration + weight
  // redistribution after a straggler re-plan; reshard_stall covers the
  // ZeRO-shard redistribution barrier on every DP-ring shrink or
  // re-expansion (overridden per shape by reshard_stall_by_survivors
  // when PriceElasticShapes filled it).
  Seconds replan_stall = 30;
  Seconds reshard_stall = 20;

  StragglerModel straggler;
  // Windowed detection + hysteresis configuration (core/rebalance).
  WindowedProfileOptions detector;

  // Pipeline shape of the job for the analytic busy/partition model.
  int pipeline_stages = 8;
  int units_per_stage = 4;

  // Re-solve OptimalCheckpointInterval for every surviving-fleet shape
  // the run visits (memoized per shape); the solver's Monte-Carlo
  // horizon is `interval_solve_mtbfs` cluster MTBFs and its effort is
  // the trimmed default below (it runs once per shape, not per cell).
  bool resolve_checkpoint_interval = true;
  double interval_solve_mtbfs = 50.0;
  CheckpointIntervalOptions interval_solver{0, 0, /*coarse_points=*/9,
                                            /*golden_iterations=*/8};

  // ---- Engine-grounded pricing overrides ---------------------------------
  // All empty/zero = the analytic defaults (degraded iteration time
  // scales as dp/survivors; per-stage busy is uniform). PriceElasticShapes
  // fills them from discrete-event measurements. Indexed [survivors-1].
  std::vector<Seconds> iteration_time_by_survivors;  // wall per degraded iteration
  std::vector<double> useful_fraction_by_survivors;  // clean-iteration credit each
  std::vector<Seconds> reshard_stall_by_survivors;   // barrier entering that shape
  std::vector<std::uint8_t> shape_feasible;          // empty = every shape feasible
  // Canonical plan-state iteration times on the full fleet (0 = analytic).
  Seconds straggled_iteration_time = 0;        // even units, straggler active
  Seconds mitigated_iteration_time = 0;        // re-planned units, straggler active
  Seconds mitigated_clean_iteration_time = 0;  // re-planned units, straggler gone
  // Canonical per-stage busy vectors for the detector (empty = analytic).
  std::vector<Seconds> clean_stage_busy;
  std::vector<Seconds> straggled_stage_busy;
  std::vector<Seconds> mitigated_stage_busy;
  std::vector<Seconds> mitigated_clean_stage_busy;

  // ---- Surrogate shape triage (core/surrogate) ---------------------------
  // Off (the default): every surviving-fleet shape keeps the full-fleet
  // strategy's partitioning verbatim — bit-identical to the pre-surrogate
  // behavior. On: for each shape, PriceElasticShapes first prices
  // partitioning variants of the strategy (SPP splits for slice methods,
  // VP splits where the method admits them — never CP/TP/PP, which would
  // change the replica's GPU footprint) with the analytic surrogate, and
  // runs the exact discrete-event engine only on the variant the
  // surrogate picked. A degraded fleet often prefers a different
  // slice/chunk split than the full fleet (more micro-batches per
  // replica), and the triage makes that search affordable inside a live
  // re-plan. Ties and the all-infeasible fallback keep the base strategy.
  bool surrogate_shape_search = false;
  std::vector<int> shape_slice_candidates;  // SPP variants; empty = base only
  std::vector<int> shape_vp_candidates;     // VP variants; empty = base only
  // Optional cross-run pricing cache (not owned; thread-safe).
  SurrogateCache* surrogate_cache = nullptr;

  // Cap on the event spans kept in ElasticMetrics::events.
  std::size_t max_events = 4096;

  // Throws CheckError on malformed options (run.Validate(), negative
  // stalls/repair, straggler slowdown < 1 or stage out of range,
  // detector.Validate(), override vectors of the wrong length, ...).
  void Validate() const;
};

// What the elastic run measured.
struct ElasticMetrics {
  ElasticPolicy policy = ElasticPolicy::kElastic;
  Seconds iteration_time = 0;   // one clean full-fleet iteration
  Seconds wall_time = 0;        // total elapsed, stalls included
  Seconds useful_time = 0;      // clean-equivalent progress delivered
  Seconds lost_time = 0;        // rolled-back + interrupted-iteration work
  Seconds checkpoint_time = 0;  // spent writing checkpoints (incl. aborted)
  Seconds recovery_time = 0;    // restore-from-checkpoint/peer stalls
  Seconds repair_wait_time = 0; // wall fully stopped waiting for repairs
  Seconds reshard_time = 0;     // shrink/expand shard-redistribution stalls
  Seconds replan_time = 0;      // straggler re-plan stalls
  Seconds degraded_time = 0;    // wall spent with < dp_replicas live
  double degraded_fraction = 0; // degraded_time / wall_time
  std::int64_t iterations_completed = 0;  // degraded iterations count too
  int failures = 0;
  int reshards = 0;             // DP-ring shrink transitions
  int expansions = 0;           // DP-ring re-expansions after repair
  int replans = 0;              // straggler-triggered live re-plans
  int straggler_onsets = 0;
  int checkpoints_written = 0;
  int checkpoints_aborted = 0;
  double goodput = 0;           // useful_time / wall_time
  double overhead_fraction = 0; // 1 - goodput
  // Solver-chosen interval per surviving-replica count (index s-1;
  // 0 = that shape was never visited).
  std::vector<Seconds> checkpoint_interval_by_survivors;
  // Elastic event spans on the run's wall clock (failures, repair
  // windows, reshard barriers, re-plans, straggler windows), capped at
  // ElasticOptions::max_events; feed to the trace-layer span overloads.
  std::vector<sim::FaultSpan> events;
};

// Simulates a training run whose clean full-fleet iteration takes
// `iteration_time` seconds under the elastic control loop. Throws
// CheckError on non-positive iteration times or invalid options.
ElasticMetrics SimulateElasticRun(Seconds iteration_time, const ElasticOptions& options);

// ---- Engine-grounded shape pricing ----------------------------------------

// One surviving-fleet shape, priced on the discrete-event engine.
struct ElasticShape {
  int survivors = 0;
  bool feasible = false;
  // The partitioning this shape runs (dp = survivors). Equal to the
  // full-fleet strategy unless surrogate_shape_search re-split it.
  Strategy strategy;
  int surrogate_variants = 0;   // variants triaged for this shape (0 = search off)
  std::string note;             // "ok" or why the shape cannot run
  Seconds iteration_time = 0;   // wall per degraded iteration
  double useful_fraction = 1;   // clean-iteration credit per degraded iteration
  Seconds reshard_stall = 0;    // shard-redistribution barrier entering it
  int micros = 0;
  // sched/validate violations of the shape's schedule under the
  // shrunken fleet's activation budget (-1 = not checked).
  int invariant_violations = -1;
};

struct ElasticPricing {
  Seconds clean_iteration_time = 0;
  std::vector<ElasticShape> shapes;  // index s-1 for s in [1, dp]
  // Canonical straggler plan states on the full fleet (0 = the
  // mitigation path was not priced).
  Seconds straggled_iteration_time = 0;
  Seconds mitigated_iteration_time = 0;
  Seconds mitigated_clean_iteration_time = 0;
  bool mitigation_adopted = false;
  // Re-planned / re-sharded schedules that passed CheckScheduleInvariants
  // under their fleet shape's activation budget.
  int validated_schedules = 0;
};

// Prices every surviving-fleet shape of `strategy` (dp shrinking from
// strategy.dp down to 1) plus — when options.straggler injects one — the
// straggler-mitigation plan states, all on the discrete-event engine via
// SimulateIteration, and fills options' override vectors so the
// subsequent SimulateElasticRun consumes measured times instead of the
// analytic defaults:
//   - the shrunken cluster keeps the per-node shape (nodes scale with
//     survivors); shapes whose world size does not fill whole nodes are
//     marked infeasible and the elastic loop falls back to a
//     restart-style outage for them;
//   - micro-batches are re-split as ceil(global_batch / survivors), and
//     the clean-equivalent credit of a degraded iteration follows from
//     the extra samples it processes;
//   - the reshard barrier entering a shape is the all-gather of the
//     departed replica's worst ZeRO-1 shard (TrainingCostModel::
//     CheckpointShardBytes) over the DP fabric (hw::DataParallelLink,
//     hw::CommModel);
//   - every shape's schedule (and the adopted mitigation's re-planned
//     schedule) is validated against sched/validate invariants under an
//     activation cap derived from that shape's engine budget.
// Throws CheckError when strategy.dp disagrees with options.run.dp_replicas
// or the full-fleet strategy itself is infeasible.
ElasticPricing PriceElasticShapes(const model::TransformerConfig& config,
                                  const Strategy& strategy, const hw::ClusterSpec& cluster,
                                  int global_batch, ElasticOptions& options,
                                  const IterationOptions& iteration = {});

// Convenience: PriceElasticShapes + SimulateElasticRun on the measured
// clean iteration time.
ElasticMetrics SimulateElasticRun(const model::TransformerConfig& config,
                                  const Strategy& strategy, const hw::ClusterSpec& cluster,
                                  int global_batch, ElasticOptions options,
                                  const IterationOptions& iteration = {});

}  // namespace mepipe::core

#endif  // MEPIPE_CORE_ELASTIC_H_
