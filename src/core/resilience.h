// Multi-iteration training-run resilience simulator — §9's reliability
// discussion reproduced by measurement instead of assertion.
//
// The analytic FailureOverheadFraction (core/deployment.h) asserts the
// expected overhead of failures + checkpointing in closed form. This
// runner makes the same quantity *emerge*: it measures one iteration on
// the discrete-event engine, then steps a training run forward, drawing
// Poisson hardware failures from the ReliabilityOptions MTBF, injecting
// checkpoint-write pauses at the configured interval, and on each
// failure rolling progress back to the last checkpoint (detection +
// restart stall, then replay of the lost work). The measured
// overhead_fraction cross-validates the closed form — and, unlike it,
// the runner also reports goodput, lost seconds, and restart counts,
// and can price individual faulted iterations on the engine via
// FaultPlanForFailure.
//
// Fully deterministic under a fixed seed (splitmix64 sampling; no
// standard-library distributions).
#ifndef MEPIPE_CORE_RESILIENCE_H_
#define MEPIPE_CORE_RESILIENCE_H_

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "core/deployment.h"
#include "sched/schedule.h"
#include "sim/engine.h"

namespace mepipe::core {

struct ResilienceOptions {
  ReliabilityOptions reliability;
  // Fleet size; the cluster MTBF scales as mtbf_per_1000_gpus * 1000/gpus.
  int gpus = 1024;
  // Length of the simulated run, as useful training progress: either an
  // explicit duration, or (when 0) `iterations` times the iteration time.
  Seconds target_useful_time = 0;
  std::int64_t iterations = 10000;
  std::uint64_t seed = 1;
  // Cap on the per-failure records kept in ResilienceMetrics::failures
  // (counters are always exact).
  std::size_t max_failure_records = 1024;
  // How far a fail-stop rolls the run back. kFullPipeline restores the
  // last durable checkpoint for everyone. kDpReplicaLocal restores the
  // lost replica from a surviving peer at the last completed iteration
  // (the last DP sync point), so only the interrupted iteration's work
  // is replayed while the survivors idle.
  //
  // Contract (enforced by Validate()): dp_replicas >= 1 always —
  // kDpReplicaLocal with dp_replicas < 1 is rejected, not ignored. At
  // dp_replicas == 1 kDpReplicaLocal *silently falls back* to the
  // full-pipeline restore: a single replica has no surviving peer to
  // fetch state from, so the scope distinction is vacuous by definition,
  // not an error. This fallback is part of the documented contract and
  // is pinned by tests.
  sim::RestartScope restart_scope = sim::RestartScope::kFullPipeline;
  // Data-parallel replica count of the simulated job (for restart_scope).
  int dp_replicas = 1;

  // Validates every field: positive gpus/MTBF/checkpoint interval,
  // non-negative recovery and write costs, dp_replicas >= 1 (with a
  // scope-specific message under kDpReplicaLocal). Throws CheckError.
  // Both SimulateTrainingRun and OptimalCheckpointInterval call this
  // up-front — the interval solver validates *before* its goodput scan,
  // whose CheckError-swallowing probe loop would otherwise silently
  // score an invalid configuration as zero goodput everywhere.
  void Validate() const;
};

// One fail-stop event of the simulated run.
struct FailureRecord {
  Seconds wall_time = 0;   // when the failure struck
  Seconds lost_work = 0;   // useful progress rolled back to the checkpoint
  Seconds stall = 0;       // detection + restart downtime
  std::int64_t iteration = 0;      // iteration the failure interrupted
  Seconds iteration_offset = 0;    // how far into that iteration it struck
};

struct ResilienceMetrics {
  Seconds iteration_time = 0;      // one clean iteration (engine-measured)
  Seconds wall_time = 0;           // total elapsed, stalls included
  Seconds useful_time = 0;         // training progress delivered
  Seconds lost_time = 0;           // work redone after rollbacks
  Seconds checkpoint_time = 0;     // spent writing checkpoints (incl. aborted)
  Seconds recovery_time = 0;       // detection + restart stalls
  std::int64_t iterations_completed = 0;
  int restarts = 0;
  int checkpoints_written = 0;     // durable writes only
  // Writes a failure struck mid-stream: their elapsed time counts toward
  // checkpoint_time, but the checkpoint never became durable.
  int checkpoints_aborted = 0;
  double goodput = 0;              // useful_time / wall_time
  // 1 - goodput: the measured analogue of FailureOverheadFraction.
  double overhead_fraction = 0;
  std::vector<FailureRecord> failures;  // first max_failure_records events
};

// Simulates a training run whose clean iteration takes `iteration_time`
// seconds. Throws CheckError on non-positive iteration times or GPU
// counts.
ResilienceMetrics SimulateTrainingRun(Seconds iteration_time,
                                      const ResilienceOptions& options = {});

// Same, but measures the iteration time by executing `schedule` against
// `costs` on the discrete-event engine first.
ResilienceMetrics SimulateTrainingRun(const sched::Schedule& schedule,
                                      const sim::CostModel& costs,
                                      const ResilienceOptions& options = {});

// Scripts the engine-level fault plan reproducing `failure` inside its
// iteration: a fail-stop at the failure's offset into the iteration with
// the record's detection + restart stall, restarting from the iteration
// start. Feed to EngineOptions::fault_plan to see the failure disrupt an
// actual timeline (trace export, schedule-sensitivity studies). Under
// kDpReplicaLocal the plan carries the replica scope and marks the
// iteration start as a DP sync point, so the engine's downtime window is
// labelled as a replica-local replay.
sim::FaultPlan FaultPlanForFailure(
    const FailureRecord& failure, Seconds iteration_time,
    const ReliabilityOptions& reliability,
    sim::RestartScope scope = sim::RestartScope::kFullPipeline);

// ---- Young/Daly checkpoint-interval solver --------------------------------
//
// For write cost w and cluster MTBF M, Young's first-order optimum is
// sqrt(2 w M); Daly's second-order refinement
//   T = sqrt(2 w M) · [1 + (1/3)·sqrt(w/(2M)) + (1/9)·(w/(2M))] − w
// (valid for w < 2M; T = M otherwise). Both derive from the analytic
// overhead model; `refined` then hones the answer against the
// SimulateTrainingRun Monte-Carlo itself — a coarse log-spaced bracket
// scan followed by golden-section maximization of simulated goodput.

struct CheckpointIntervalOptions {
  // Search bounds for the refinement; 0 = derive from the Daly point
  // ([daly/16, daly·16], floored at the write cost).
  Seconds min_interval = 0;
  Seconds max_interval = 0;
  int coarse_points = 17;      // log-spaced bracketing scan
  int golden_iterations = 32;  // golden-section steps inside the bracket
};

struct CheckpointIntervalSolution {
  Seconds mtbf = 0;     // cluster-level MTBF the solver used
  Seconds young = 0;    // sqrt(2 w M)
  Seconds daly = 0;     // Young + second-order correction
  Seconds refined = 0;  // simulation-refined goodput argmax
  double goodput = 0;   // simulated goodput at `refined`
};

// Solves for the goodput-optimal checkpoint interval of a run whose
// clean iteration takes `iteration_time` under `base`'s failure model
// (base.reliability.checkpoint_interval is ignored — it is the unknown).
// Throws CheckError on non-positive write cost or iteration time.
CheckpointIntervalSolution OptimalCheckpointInterval(
    Seconds iteration_time, const ResilienceOptions& base,
    const CheckpointIntervalOptions& options = {});

}  // namespace mepipe::core

#endif  // MEPIPE_CORE_RESILIENCE_H_
