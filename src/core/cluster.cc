#include "core/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/format.h"
#include "common/rng.h"
#include "sched/serialize.h"

namespace mepipe::core {
namespace {

constexpr Seconds kInf = std::numeric_limits<Seconds>::infinity();

// Planning view of an allocation: at most `max_nodes` nodes, taken in
// slice order. Static partitions can hold more nodes than a job may use;
// the plan is priced on the capped view while the job still owns (and
// strands) the whole partition — exactly the waste the dynamic policy
// exists to avoid.
Allocation CapAllocation(const Allocation& alloc, int max_nodes) {
  Allocation capped;
  int budget = max_nodes;
  for (std::size_t i = 0; i < alloc.slices.size() && budget > 0; ++i) {
    const int take = std::min(alloc.slices[i].nodes, budget);
    hw::TierSlice slice = alloc.slices[i];
    slice.nodes = take;
    capped.slices.push_back(slice);
    capped.node_ids.emplace_back(alloc.node_ids[i].begin(),
                                 alloc.node_ids[i].begin() + take);
    budget -= take;
  }
  return capped;
}

// FNV-1a 64 over the log body; hex-rendered on the checksum line.
std::uint64_t LogChecksum(const std::string& body) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : body) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

Seconds PercentileOf(std::vector<Seconds> values, double p) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const std::size_t index =
      static_cast<std::size_t>(p * static_cast<double>(values.size() - 1));
  return values[index];
}

}  // namespace

// ---- Small types -----------------------------------------------------------

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kAdmitted:
      return "admitted";
    case JobState::kRunning:
      return "running";
    case JobState::kDraining:
      return "draining";
    case JobState::kFailed:
      return "failed";
    case JobState::kReclaimed:
      return "reclaimed";
  }
  return "?";
}

const char* ClusterEventKindName(ClusterEventKind kind) {
  switch (kind) {
    case ClusterEventKind::kSubmit:
      return "submit";
    case ClusterEventKind::kAdmit:
      return "admit";
    case ClusterEventKind::kComplete:
      return "complete";
    case ClusterEventKind::kNodeFail:
      return "node_fail";
    case ClusterEventKind::kShrink:
      return "shrink";
    case ClusterEventKind::kExpand:
      return "expand";
    case ClusterEventKind::kJobFail:
      return "job_fail";
    case ClusterEventKind::kRequeue:
      return "requeue";
    case ClusterEventKind::kPreempt:
      return "preempt";
    case ClusterEventKind::kRepair:
      return "repair";
    case ClusterEventKind::kReject:
      return "reject";
  }
  return "?";
}

int Allocation::nodes() const {
  int total = 0;
  for (const hw::TierSlice& slice : slices) {
    total += slice.nodes;
  }
  return total;
}

int Allocation::devices(const hw::ClusterTopology& fleet) const {
  int total = 0;
  for (const hw::TierSlice& slice : slices) {
    total += slice.nodes * fleet.tier(slice.tier).gpus_per_node;
  }
  return total;
}

Seconds PlanningLatencyModel::Latency(int surrogate_priced, int simulated,
                                      int cache_hits) const {
  return base + per_surrogate * surrogate_priced + per_simulation * simulated +
         per_cache_hit * cache_hits;
}

// ---- Event log -------------------------------------------------------------

std::string FormatEventLog(const hw::ClusterTopology& fleet,
                           const std::vector<ClusterEvent>& events) {
  int fleet_nodes = 0;
  for (const hw::DeviceTier& tier : fleet.tiers) {
    fleet_nodes += tier.nodes;
  }
  std::string body = "mepipe-cluster-events v1\n";
  body += StrFormat("fleet tiers=%d nodes=%d devices=%d\n", fleet.num_tiers(),
                    fleet_nodes, fleet.world_size());
  for (const ClusterEvent& event : events) {
    body += StrFormat("%.6f %s job=%d", event.time, ClusterEventKindName(event.kind),
                      event.job_id);
    if (!event.detail.empty()) {
      body += ' ';
      body += event.detail;
    }
    body += '\n';
  }
  body += StrFormat("checksum %016llx\n",
                    static_cast<unsigned long long>(LogChecksum(body)));
  return body;
}

bool ValidateEventLog(const std::string& text) {
  if (text.rfind("mepipe-cluster-events v1\n", 0) != 0) {
    return false;
  }
  // The checksum line is the last line; everything above it (including
  // its trailing newline) is the covered body.
  const std::size_t tail = text.find_last_not_of('\n');
  if (tail == std::string::npos || tail + 2 != text.size()) {
    return false;  // exactly one trailing newline
  }
  const std::size_t line_start = text.rfind('\n', tail);
  if (line_start == std::string::npos) {
    return false;
  }
  const std::string last = text.substr(line_start + 1, tail - line_start);
  if (last.rfind("checksum ", 0) != 0 || last.size() != 9 + 16) {
    return false;
  }
  const std::string body = text.substr(0, line_start + 1);
  char expected[32];
  std::snprintf(expected, sizeof(expected), "checksum %016llx",
                static_cast<unsigned long long>(LogChecksum(body)));
  return last == expected;
}

// ---- Service ---------------------------------------------------------------

std::size_t ClusterService::PlanKeyHash::operator()(const PlanKey& key) const {
  std::uint64_t state = key.carve_fingerprint ^
                        (static_cast<std::uint64_t>(key.method) << 48) ^
                        static_cast<std::uint64_t>(key.global_batch);
  std::uint64_t h = SplitMix64(state);
  h ^= SplitMix64(state);
  return static_cast<std::size_t>(h);
}

ClusterService::ClusterService(hw::ClusterTopology fleet, ClusterServiceOptions options)
    : fleet_(std::move(fleet)), options_(std::move(options)) {
  MEPIPE_CHECK_GT(fleet_.num_tiers(), 0);
  MEPIPE_CHECK_GT(options_.repair_time, 0);
  free_.resize(static_cast<std::size_t>(fleet_.num_tiers()));
  for (int t = 0; t < fleet_.num_tiers(); ++t) {
    for (int n = 0; n < fleet_.tier(t).nodes; ++n) {
      free_[static_cast<std::size_t>(t)].insert(n);
    }
  }
}

void ClusterService::Emit(Seconds time, ClusterEventKind kind, int job_id,
                          std::string detail) {
  events_.push_back({time, kind, job_id, std::move(detail)});
}

const JobRecord& ClusterService::job(int job_id) const {
  MEPIPE_CHECK(job_id >= 1 && job_id <= static_cast<int>(jobs_.size()))
      << "unknown job " << job_id;
  return jobs_[static_cast<std::size_t>(job_id - 1)];
}

int ClusterService::PartitionNodes(int tier) const {
  if (options_.static_partition_nodes > 0) {
    return options_.static_partition_nodes;
  }
  return std::max(1, fleet_.tier(tier).nodes / 4);
}

hw::ClusterTopology ClusterService::CarveFor(const Allocation& alloc) const {
  return hw::CarveSubTopology(fleet_, alloc.slices);
}

int ClusterService::Submit(JobRequest request) {
  MEPIPE_CHECK_GE(request.arrival, now_) << "arrivals must be non-decreasing";
  MEPIPE_CHECK_GE(request.min_nodes, 1);
  MEPIPE_CHECK_GE(request.max_nodes, request.min_nodes);
  MEPIPE_CHECK_GT(request.iterations, 0);
  MEPIPE_CHECK_GT(request.global_batch, 0);
  MEPIPE_CHECK_LT(request.preferred_tier, fleet_.num_tiers());
  AdvanceTo(request.arrival);

  JobRecord job;
  job.job_id = static_cast<int>(jobs_.size()) + 1;
  if (request.name.empty()) {
    request.name = StrFormat("job%d", job.job_id);
  }
  job.remaining_iterations = request.iterations;
  job.request = std::move(request);
  jobs_.push_back(std::move(job));
  JobRecord& stored = jobs_.back();
  Emit(now_, ClusterEventKind::kSubmit, stored.job_id,
       StrFormat("%s prio=%d nodes=[%d,%d] iters=%g", stored.request.name.c_str(),
                 stored.request.priority, stored.request.min_nodes,
                 stored.request.max_nodes, stored.request.iterations));

  // Structural capacity check: a demand no healthy fleet state can meet
  // is rejected up front rather than queued forever.
  int capacity = 0;
  if (options_.policy == AllocationPolicy::kStaticEqual) {
    if (stored.request.preferred_tier >= 0) {
      capacity = PartitionNodes(stored.request.preferred_tier);
    } else {
      for (int t = 0; t < fleet_.num_tiers(); ++t) {
        capacity = std::max(capacity, PartitionNodes(t));
      }
    }
  } else if (stored.request.preferred_tier >= 0) {
    capacity = fleet_.tier(stored.request.preferred_tier).nodes;
  } else {
    for (const hw::DeviceTier& tier : fleet_.tiers) {
      capacity += tier.nodes;
    }
  }
  if (stored.request.min_nodes > capacity) {
    stored.state = JobState::kReclaimed;
    ++rejected_;
    Emit(now_, ClusterEventKind::kReject, stored.job_id,
         StrFormat("min_nodes=%d exceeds capacity=%d", stored.request.min_nodes,
                   capacity));
  } else {
    AdmissionLoop(now_);
  }
  if (options_.verify_invariants) {
    VerifyInvariants();
  }
  return stored.job_id;
}

void ClusterService::CreditProgress(JobRecord& job, Seconds time) {
  if (job.plan.iteration_time <= 0 || time <= job.segment_start) {
    job.segment_start = std::max(job.segment_start, time);
    return;
  }
  const double done = std::min(job.remaining_iterations,
                               (time - job.segment_start) / job.plan.iteration_time);
  job.completed_iterations += done;
  job.remaining_iterations -= done;
  job.useful_device_seconds +=
      done * job.plan.iteration_time * job.alloc.devices(fleet_);
  job.segment_start = time;
}

void ClusterService::ReleaseAllocation(JobRecord& job) {
  for (std::size_t i = 0; i < job.alloc.slices.size(); ++i) {
    auto& pool = free_[static_cast<std::size_t>(job.alloc.slices[i].tier)];
    for (const int node : job.alloc.node_ids[i]) {
      pool.insert(node);
    }
  }
  job.alloc = Allocation{};
}

void ClusterService::CompleteJob(JobRecord& job, Seconds time) {
  CreditProgress(job, time);
  job.state = JobState::kDraining;
  Emit(time, ClusterEventKind::kComplete, job.job_id,
       StrFormat("iters=%g useful=%.3f", job.completed_iterations,
                 job.useful_device_seconds));
  ReleaseAllocation(job);
  job.state = JobState::kReclaimed;
}

bool ClusterService::PlanJob(JobRecord& job, const Allocation& alloc, Seconds time) {
  (void)time;
  const Allocation target = CapAllocation(alloc, job.request.max_nodes);
  const hw::ClusterTopology carve = CarveFor(target);

  PlannerOptions popts = options_.planner;
  popts.cache = &cache_;
  popts.iteration.keep_schedule = true;
  popts.iteration.keep_timeline = false;

  PlanKey key;
  key.method = job.request.method;
  key.global_batch = job.request.global_batch;
  key.carve_fingerprint =
      TopologyFingerprint(job.request.config, carve, popts.iteration);

  ++plan_calls_;
  const auto memo = plan_memo_.find(key);
  if (memo != plan_memo_.end()) {
    ++plan_cache_hits_;
    job.plan = memo->second;
    job.plan.from_plan_cache = true;
    job.plan.planning_latency = options_.latency.Latency(0, 0, 0);
    planning_latencies_.push_back(job.plan.planning_latency);
    return job.plan.feasible;
  }

  JobPlan plan;
  if (carve.num_tiers() == 1) {
    const PlannerResult result = SearchBestStrategy(
        job.request.method, job.request.config, carve.tier(0).spec(),
        job.request.global_batch, popts);
    plan.surrogate_priced = result.surrogate_priced;
    plan.simulated = result.simulated;
    plan.cache_hits = result.cache_hits;
    if (result.best) {
      plan.feasible = true;
      plan.strategy = result.best->strategy;
      plan.iteration_time = result.best->iteration_time;
      plan.peak_memory = result.best->peak_memory;
      if (!result.best->schedule.stage_ops.empty()) {
        plan.schedule_text = sched::SerializeSchedule(result.best->schedule);
      }
    }
  } else {
    const FleetPlannerResult result =
        SearchBestFleetStrategy(job.request.method, job.request.config, carve,
                                job.request.global_batch, popts);
    plan.fleet_path = true;
    plan.surrogate_priced = result.surrogate_priced;
    plan.simulated = result.simulated;
    plan.cache_hits = result.cache_hits;
    if (result.best) {
      plan.feasible = true;
      plan.strategy = result.best->placed.strategy;
      plan.placement = result.best->placed.placement;
      plan.iteration_time = result.best->result.iteration_time;
      plan.peak_memory = result.best->result.peak_memory;
      plan.usd_per_iteration = result.best->dollars.usd_per_iteration;
      if (!result.best->result.schedule.stage_ops.empty()) {
        plan.schedule_text = sched::SerializeSchedule(result.best->result.schedule);
      }
    }
  }
  plan.planning_latency =
      options_.latency.Latency(plan.surrogate_priced, plan.simulated, plan.cache_hits);
  plan_memo_.emplace(key, plan);
  planning_latencies_.push_back(plan.planning_latency);
  job.plan = plan;
  return plan.feasible;
}

void ClusterService::AdoptPlan(JobRecord& job, const Allocation& alloc, Seconds time) {
  MEPIPE_CHECK(job.plan.feasible);
  job.alloc = alloc;
  // Tag the winning schedule with this job's id, so interleaved fleet
  // timelines attribute every span (memoized plans store it untagged).
  if (!job.plan.schedule_text.empty()) {
    sched::Schedule schedule = sched::ParseSchedule(job.plan.schedule_text);
    sched::TagJob(schedule, job.job_id);
    job.plan.schedule_text = sched::SerializeSchedule(schedule);
  }
  job.admit_time = time;
  job.segment_start = time + job.plan.planning_latency;
  job.finish_time =
      job.segment_start + job.remaining_iterations * job.plan.iteration_time;
  job.state = JobState::kAdmitted;
}

std::optional<Allocation> ClusterService::StaticAllocation(
    const JobRequest& request, const std::vector<std::set<int>>& free) const {
  for (int t = 0; t < fleet_.num_tiers(); ++t) {
    if (request.preferred_tier >= 0 && t != request.preferred_tier) {
      continue;
    }
    const int width = PartitionNodes(t);
    if (width < request.min_nodes) {
      continue;
    }
    const auto& pool = free[static_cast<std::size_t>(t)];
    const int partitions = fleet_.tier(t).nodes / width;
    for (int p = 0; p < partitions; ++p) {
      bool whole = true;
      for (int n = p * width; n < (p + 1) * width; ++n) {
        if (pool.count(n) == 0) {
          whole = false;
          break;
        }
      }
      if (!whole) {
        continue;
      }
      Allocation alloc;
      alloc.slices.push_back({t, width});
      std::vector<int> ids;
      for (int n = p * width; n < (p + 1) * width; ++n) {
        ids.push_back(n);
      }
      alloc.node_ids.push_back(std::move(ids));
      return alloc;
    }
  }
  return std::nullopt;
}

std::optional<Allocation> ClusterService::FindAllocation(
    const JobRequest& request, int target_nodes,
    const std::vector<std::set<int>>& free) const {
  if (options_.policy == AllocationPolicy::kStaticEqual) {
    return StaticAllocation(request, free);
  }
  for (int size = target_nodes; size >= request.min_nodes; --size) {
    // Single-tier carve first (tier index ascending, smallest node ids).
    for (int t = 0; t < fleet_.num_tiers(); ++t) {
      if (request.preferred_tier >= 0 && t != request.preferred_tier) {
        continue;
      }
      const auto& pool = free[static_cast<std::size_t>(t)];
      if (static_cast<int>(pool.size()) < size) {
        continue;
      }
      Allocation alloc;
      alloc.slices.push_back({t, size});
      alloc.node_ids.emplace_back(pool.begin(), std::next(pool.begin(), size));
      return alloc;
    }
    // Cross-tier span (the fleet-planner path), tiers ascending.
    if (request.preferred_tier < 0) {
      Allocation alloc;
      int need = size;
      for (int t = 0; t < fleet_.num_tiers() && need > 0; ++t) {
        const auto& pool = free[static_cast<std::size_t>(t)];
        const int take = std::min<int>(static_cast<int>(pool.size()), need);
        if (take == 0) {
          continue;
        }
        alloc.slices.push_back({t, take});
        alloc.node_ids.emplace_back(pool.begin(), std::next(pool.begin(), take));
        need -= take;
      }
      if (need == 0 && alloc.slices.size() > 1) {
        return alloc;
      }
    }
  }
  return std::nullopt;
}

bool ClusterService::TryAdmit(JobRecord& job, Seconds time) {
  // Sizes descend from the full demand; a carve that allocates but does
  // not plan (no feasible strategy) falls through to the next size. The
  // static policy has exactly one carve shape, so it gets one attempt.
  for (int target = job.request.max_nodes; target >= job.request.min_nodes; --target) {
    const std::optional<Allocation> alloc = FindAllocation(job.request, target, free_);
    if (alloc && PlanJob(job, *alloc, time)) {
      for (std::size_t i = 0; i < alloc->slices.size(); ++i) {
        auto& pool = free_[static_cast<std::size_t>(alloc->slices[i].tier)];
        for (const int node : alloc->node_ids[i]) {
          MEPIPE_CHECK_EQ(pool.erase(node), 1u);
        }
      }
      AdoptPlan(job, *alloc, time);
      Emit(time, ClusterEventKind::kAdmit, job.job_id,
           StrFormat("nodes=%d %s t=%.6f/iter", alloc->nodes(),
                     job.plan.strategy.ToString().c_str(), job.plan.iteration_time));
      return true;
    }
    if (options_.policy == AllocationPolicy::kStaticEqual) {
      return false;
    }
  }
  return false;
}

bool ClusterService::TryPreemptFor(JobRecord& job, Seconds time) {
  if (options_.policy != AllocationPolicy::kDynamic) {
    return false;
  }
  // Victims: strictly lower priority; cheapest class first, youngest
  // admission first within a class.
  std::vector<JobRecord*> victims;
  for (JobRecord& other : jobs_) {
    if ((other.state == JobState::kAdmitted || other.state == JobState::kRunning) &&
        other.request.priority < job.request.priority) {
      victims.push_back(&other);
    }
  }
  if (victims.empty()) {
    return false;
  }
  std::sort(victims.begin(), victims.end(), [](const JobRecord* a, const JobRecord* b) {
    if (a->request.priority != b->request.priority) {
      return a->request.priority < b->request.priority;
    }
    if (a->admit_time != b->admit_time) {
      return a->admit_time > b->admit_time;
    }
    return a->job_id > b->job_id;
  });

  // Candidate victim sets: every single victim first (plan feasibility
  // is not monotone in the node pool, so singles must be exhausted
  // before pairs for the single-victim no-inversion invariant to hold by
  // construction), then growing prefixes of the sorted list.
  std::vector<std::vector<JobRecord*>> sets;
  for (JobRecord* victim : victims) {
    sets.push_back({victim});
  }
  for (std::size_t k = 2; k <= victims.size(); ++k) {
    sets.emplace_back(victims.begin(),
                      victims.begin() + static_cast<std::ptrdiff_t>(k));
  }

  for (const auto& set : sets) {
    std::vector<std::set<int>> pool = free_;
    for (const JobRecord* victim : set) {
      for (std::size_t i = 0; i < victim->alloc.slices.size(); ++i) {
        auto& tier_pool = pool[static_cast<std::size_t>(victim->alloc.slices[i].tier)];
        tier_pool.insert(victim->alloc.node_ids[i].begin(),
                         victim->alloc.node_ids[i].end());
      }
    }
    const std::optional<Allocation> alloc =
        FindAllocation(job.request, job.request.max_nodes, pool);
    if (!alloc || !PlanJob(job, *alloc, time)) {
      continue;
    }
    // Commit: evict the set, then take the allocation from the now-real
    // free pool (which equals `pool` by construction).
    for (JobRecord* victim : set) {
      CreditProgress(*victim, time);
      ReleaseAllocation(*victim);
      ++victim->preempt_count;
      victim->state = JobState::kQueued;
      Emit(time, ClusterEventKind::kPreempt, victim->job_id,
           StrFormat("by=%d remaining=%g", job.job_id, victim->remaining_iterations));
    }
    for (std::size_t i = 0; i < alloc->slices.size(); ++i) {
      auto& tier_pool = free_[static_cast<std::size_t>(alloc->slices[i].tier)];
      for (const int node : alloc->node_ids[i]) {
        MEPIPE_CHECK_EQ(tier_pool.erase(node), 1u);
      }
    }
    AdoptPlan(job, *alloc, time);
    Emit(time, ClusterEventKind::kAdmit, job.job_id,
         StrFormat("nodes=%d %s t=%.6f/iter preempting", alloc->nodes(),
                   job.plan.strategy.ToString().c_str(), job.plan.iteration_time));
    return true;
  }
  return false;
}

void ClusterService::TryExpand(Seconds time) {
  if (options_.policy != AllocationPolicy::kDynamic) {
    return;
  }
  bool adopted = true;
  while (adopted) {
    adopted = false;
    std::vector<JobRecord*> running;
    for (JobRecord& job : jobs_) {
      if ((job.state == JobState::kAdmitted || job.state == JobState::kRunning) &&
          job.alloc.nodes() < job.request.max_nodes) {
        running.push_back(&job);
      }
    }
    std::sort(running.begin(), running.end(),
              [](const JobRecord* a, const JobRecord* b) {
                if (a->request.priority != b->request.priority) {
                  return a->request.priority > b->request.priority;
                }
                return a->job_id < b->job_id;
              });
    for (JobRecord* job : running) {
      std::vector<std::set<int>> pool = free_;
      for (std::size_t i = 0; i < job->alloc.slices.size(); ++i) {
        auto& tier_pool = pool[static_cast<std::size_t>(job->alloc.slices[i].tier)];
        tier_pool.insert(job->alloc.node_ids[i].begin(), job->alloc.node_ids[i].end());
      }
      const std::optional<Allocation> alloc =
          FindAllocation(job->request, job->request.max_nodes, pool);
      if (!alloc || alloc->nodes() <= job->alloc.nodes()) {
        continue;
      }
      // Price the candidate without committing; adopt only on strict
      // predicted-completion improvement (the elastic runtime's
      // re-expansion rule).
      JobRecord probe = *job;
      if (!PlanJob(probe, *alloc, time)) {
        continue;
      }
      CreditProgress(*job, time);
      const Seconds new_finish = time + probe.plan.planning_latency +
                                 job->remaining_iterations * probe.plan.iteration_time;
      if (new_finish + 1e-9 >= job->finish_time) {
        continue;
      }
      ReleaseAllocation(*job);
      for (std::size_t i = 0; i < alloc->slices.size(); ++i) {
        auto& tier_pool = free_[static_cast<std::size_t>(alloc->slices[i].tier)];
        for (const int node : alloc->node_ids[i]) {
          MEPIPE_CHECK_EQ(tier_pool.erase(node), 1u);
        }
      }
      job->plan = probe.plan;
      AdoptPlan(*job, *alloc, time);
      ++job->expand_count;
      Emit(time, ClusterEventKind::kExpand, job->job_id,
           StrFormat("nodes=%d t=%.6f/iter", alloc->nodes(), job->plan.iteration_time));
      adopted = true;
      break;  // re-rank and re-scan after every adoption
    }
  }
}

void ClusterService::AdmissionLoop(Seconds time) {
  bool admitted = true;
  while (admitted) {
    admitted = false;
    std::vector<JobRecord*> queued;
    for (JobRecord& job : jobs_) {
      if (job.state == JobState::kQueued) {
        queued.push_back(&job);
      }
    }
    std::sort(queued.begin(), queued.end(), [](const JobRecord* a, const JobRecord* b) {
      if (a->request.priority != b->request.priority) {
        return a->request.priority > b->request.priority;
      }
      const Seconds da = a->request.deadline > 0 ? a->request.deadline : kInf;
      const Seconds db = b->request.deadline > 0 ? b->request.deadline : kInf;
      if (da != db) {
        return da < db;
      }
      if (a->request.arrival != b->request.arrival) {
        return a->request.arrival < b->request.arrival;
      }
      return a->job_id < b->job_id;
    });
    for (JobRecord* job : queued) {
      if (TryAdmit(*job, time) || TryPreemptFor(*job, time)) {
        admitted = true;
        break;  // capacity changed: re-rank from scratch
      }
    }
  }
  TryExpand(time);
}

void ClusterService::ProcessDueEvents(Seconds horizon) {
  while (true) {
    // Flip planning-complete jobs to running (no event; this is the
    // state machine's admitted → running edge).
    for (JobRecord& job : jobs_) {
      if (job.state == JobState::kAdmitted && job.segment_start <= now_) {
        job.state = JobState::kRunning;
      }
    }
    Seconds completion = kInf;
    int complete_job = -1;
    for (const JobRecord& job : jobs_) {
      if ((job.state == JobState::kAdmitted || job.state == JobState::kRunning) &&
          job.finish_time < completion) {
        completion = job.finish_time;
        complete_job = job.job_id;  // jobs_ is id-ordered: lowest id wins ties
      }
    }
    Seconds repair = kInf;
    std::size_t repair_index = repairing_.size();
    for (std::size_t i = 0; i < repairing_.size(); ++i) {
      const Repairing& r = repairing_[i];
      if (r.ready < repair ||
          (r.ready == repair && repair_index < repairing_.size() &&
           std::pair{r.tier, r.node} < std::pair{repairing_[repair_index].tier,
                                                 repairing_[repair_index].node})) {
        repair = r.ready;
        repair_index = i;
      }
    }
    const Seconds next = std::min(completion, repair);
    if (next > horizon || std::isinf(next)) {
      break;
    }
    now_ = next;
    if (completion <= repair) {  // ties: completions first
      CompleteJob(jobs_[static_cast<std::size_t>(complete_job - 1)], now_);
    } else {
      const Repairing r = repairing_[repair_index];
      repairing_.erase(repairing_.begin() + static_cast<std::ptrdiff_t>(repair_index));
      free_[static_cast<std::size_t>(r.tier)].insert(r.node);
      Emit(now_, ClusterEventKind::kRepair, -1,
           StrFormat("tier=%d node=%d", r.tier, r.node));
    }
    AdmissionLoop(now_);
    if (options_.verify_invariants) {
      VerifyInvariants();
    }
  }
}

void ClusterService::AdvanceTo(Seconds time) {
  MEPIPE_CHECK_GE(time, now_) << "the service clock cannot run backwards";
  ProcessDueEvents(time);
  now_ = time;
  for (JobRecord& job : jobs_) {
    if (job.state == JobState::kAdmitted && job.segment_start <= now_) {
      job.state = JobState::kRunning;
    }
  }
}

void ClusterService::OnNodeFailure(Seconds time, int tier, int node) {
  MEPIPE_CHECK(tier >= 0 && tier < fleet_.num_tiers());
  MEPIPE_CHECK(node >= 0 && node < fleet_.tier(tier).nodes);
  AdvanceTo(time);

  // Already down: the repair clock keeps its original deadline.
  for (const Repairing& r : repairing_) {
    if (r.tier == tier && r.node == node) {
      return;
    }
  }

  auto& pool = free_[static_cast<std::size_t>(tier)];
  if (pool.erase(node) > 0) {
    Emit(now_, ClusterEventKind::kNodeFail, -1,
         StrFormat("tier=%d node=%d idle", tier, node));
    repairing_.push_back({now_ + options_.repair_time, tier, node});
    if (options_.verify_invariants) {
      VerifyInvariants();
    }
    return;
  }

  // Find the owning job.
  JobRecord* owner = nullptr;
  std::size_t slice_index = 0;
  for (JobRecord& job : jobs_) {
    if (job.state != JobState::kAdmitted && job.state != JobState::kRunning) {
      continue;
    }
    for (std::size_t i = 0; i < job.alloc.slices.size() && owner == nullptr; ++i) {
      if (job.alloc.slices[i].tier != tier) {
        continue;
      }
      const auto& ids = job.alloc.node_ids[i];
      if (std::find(ids.begin(), ids.end(), node) != ids.end()) {
        owner = &job;
        slice_index = i;
      }
    }
    if (owner != nullptr) {
      break;
    }
  }
  MEPIPE_CHECK(owner != nullptr) << "node neither free, repairing, nor allocated";

  Emit(now_, ClusterEventKind::kNodeFail, owner->job_id,
       StrFormat("tier=%d node=%d", tier, node));
  repairing_.push_back({now_ + options_.repair_time, tier, node});
  CreditProgress(*owner, now_);

  // Shrink to the survivors (the elastic runtime's idiom): drop the dead
  // node from the allocation, re-plan the carve, keep running when a
  // feasible plan exists above the job's minimum demand.
  Allocation survivors = owner->alloc;
  auto& ids = survivors.node_ids[slice_index];
  ids.erase(std::find(ids.begin(), ids.end(), node));
  if (--survivors.slices[slice_index].nodes == 0) {
    survivors.slices.erase(survivors.slices.begin() +
                           static_cast<std::ptrdiff_t>(slice_index));
    survivors.node_ids.erase(survivors.node_ids.begin() +
                             static_cast<std::ptrdiff_t>(slice_index));
  }
  owner->alloc = Allocation{};  // the dead node is already out of play

  const bool dynamic = options_.policy == AllocationPolicy::kDynamic;
  if (dynamic && survivors.nodes() >= owner->request.min_nodes &&
      PlanJob(*owner, survivors, now_)) {
    ++owner->shrink_count;
    AdoptPlan(*owner, survivors, now_);
    Emit(now_, ClusterEventKind::kShrink, owner->job_id,
         StrFormat("nodes=%d t=%.6f/iter", survivors.nodes(),
                   owner->plan.iteration_time));
  } else {
    // Below minimum (or static policy, which never reshapes): fail, free
    // the survivors, and requeue while the retry budget lasts.
    owner->alloc = survivors;
    ReleaseAllocation(*owner);
    ++owner->failure_count;
    owner->state = JobState::kFailed;
    if (owner->failure_count >= options_.max_failures_per_job) {
      Emit(now_, ClusterEventKind::kJobFail, owner->job_id,
           StrFormat("terminal after %d failures", owner->failure_count));
      owner->state = JobState::kReclaimed;
    } else {
      Emit(now_, ClusterEventKind::kJobFail, owner->job_id,
           StrFormat("failure %d, requeued", owner->failure_count));
      owner->state = JobState::kQueued;
      Emit(now_, ClusterEventKind::kRequeue, owner->job_id,
           StrFormat("remaining=%g", owner->remaining_iterations));
    }
  }
  AdmissionLoop(now_);
  if (options_.verify_invariants) {
    VerifyInvariants();
  }
}

Seconds ClusterService::Drain() {
  while (true) {
    bool live = false;
    bool queued = false;
    Seconds next = kInf;
    for (const JobRecord& job : jobs_) {
      if (job.state == JobState::kAdmitted || job.state == JobState::kRunning) {
        live = true;
        next = std::min(next, job.finish_time);
      } else if (job.state == JobState::kQueued) {
        queued = true;
      }
    }
    if (!live && !queued) {
      break;  // pending repairs without demand are irrelevant
    }
    if (queued) {
      for (const Repairing& r : repairing_) {
        next = std::min(next, r.ready);
      }
    }
    if (std::isinf(next)) {
      // No pending event can ever free more capacity: queued leftovers
      // are unservable (they saw the whole healthy fleet) and reject
      // terminally.
      for (JobRecord& job : jobs_) {
        if (job.state == JobState::kQueued) {
          job.state = JobState::kReclaimed;
          ++rejected_;
          Emit(now_, ClusterEventKind::kReject, job.job_id, "unservable at drain");
        }
      }
      break;
    }
    AdvanceTo(next);
  }
  if (options_.verify_invariants) {
    VerifyInvariants();
  }
  return now_;
}

void ClusterService::VerifyInvariants() const {
  // 1. Disjointness + conservation: every node of every tier is owned by
  // exactly one of {free, repairing, some admitted/running job}.
  for (int t = 0; t < fleet_.num_tiers(); ++t) {
    std::vector<int> owners(static_cast<std::size_t>(fleet_.tier(t).nodes), 0);
    for (const int node : free_[static_cast<std::size_t>(t)]) {
      ++owners[static_cast<std::size_t>(node)];
    }
    for (const Repairing& r : repairing_) {
      if (r.tier == t) {
        ++owners[static_cast<std::size_t>(r.node)];
      }
    }
    for (const JobRecord& job : jobs_) {
      if (job.state != JobState::kAdmitted && job.state != JobState::kRunning) {
        MEPIPE_CHECK(job.alloc.empty())
            << "job " << job.job_id << " holds nodes in state "
            << JobStateName(job.state);
        continue;
      }
      for (std::size_t i = 0; i < job.alloc.slices.size(); ++i) {
        if (job.alloc.slices[i].tier != t) {
          continue;
        }
        MEPIPE_CHECK_EQ(static_cast<int>(job.alloc.node_ids[i].size()),
                        job.alloc.slices[i].nodes);
        for (const int node : job.alloc.node_ids[i]) {
          ++owners[static_cast<std::size_t>(node)];
        }
      }
    }
    for (int node = 0; node < fleet_.tier(t).nodes; ++node) {
      MEPIPE_CHECK_EQ(owners[static_cast<std::size_t>(node)], 1)
          << "tier " << t << " node " << node << " owned "
          << owners[static_cast<std::size_t>(node)] << " times";
    }
  }

  // 2. Every held allocation backs a feasible, memory-feasible plan
  // within the job's demand bounds.
  for (const JobRecord& job : jobs_) {
    if (job.state != JobState::kAdmitted && job.state != JobState::kRunning) {
      continue;
    }
    MEPIPE_CHECK(job.plan.feasible) << "job " << job.job_id << " runs without a plan";
    MEPIPE_CHECK_GT(job.plan.iteration_time, 0);
    MEPIPE_CHECK_GE(job.alloc.nodes(), job.request.min_nodes);
    if (options_.policy == AllocationPolicy::kDynamic) {
      MEPIPE_CHECK_LE(job.alloc.nodes(), job.request.max_nodes);
    }
    Bytes roomiest_device = 0;
    for (const hw::TierSlice& slice : job.alloc.slices) {
      roomiest_device =
          std::max(roomiest_device, fleet_.tier(slice.tier).gpu.usable_memory());
    }
    MEPIPE_CHECK_LE(job.plan.peak_memory, roomiest_device)
        << "job " << job.job_id << " plan exceeds device memory";
  }

  // 3. Admission maximality and no single-victim priority inversion.
  // Both checks consult the plan memo read-only: a queued job is only a
  // violation when an allocation exists AND the memo already proves a
  // feasible plan for that exact carve — precisely what the admission
  // loop would have acted on (it memoizes every carve it prices,
  // including infeasible outcomes).
  const auto provably_admissible = [&](const JobRecord& q,
                                       const std::vector<std::set<int>>& pool) {
    const std::optional<Allocation> alloc =
        FindAllocation(q.request, q.request.max_nodes, pool);
    if (!alloc) {
      return false;
    }
    PlannerOptions popts = options_.planner;
    popts.iteration.keep_schedule = true;
    popts.iteration.keep_timeline = false;
    PlanKey key;
    key.method = q.request.method;
    key.global_batch = q.request.global_batch;
    key.carve_fingerprint = TopologyFingerprint(
        q.request.config, CarveFor(CapAllocation(*alloc, q.request.max_nodes)),
        popts.iteration);
    const auto memo = plan_memo_.find(key);
    return memo != plan_memo_.end() && memo->second.feasible;
  };
  for (const JobRecord& q : jobs_) {
    if (q.state != JobState::kQueued) {
      continue;
    }
    MEPIPE_CHECK(!provably_admissible(q, free_))
        << "queued job " << q.job_id << " fits the free pool";
    if (options_.policy != AllocationPolicy::kDynamic) {
      continue;
    }
    for (const JobRecord& r : jobs_) {
      if ((r.state != JobState::kAdmitted && r.state != JobState::kRunning) ||
          r.request.priority >= q.request.priority) {
        continue;
      }
      std::vector<std::set<int>> pool = free_;
      for (std::size_t i = 0; i < r.alloc.slices.size(); ++i) {
        auto& tier_pool = pool[static_cast<std::size_t>(r.alloc.slices[i].tier)];
        tier_pool.insert(r.alloc.node_ids[i].begin(), r.alloc.node_ids[i].end());
      }
      MEPIPE_CHECK(!provably_admissible(q, pool))
          << "priority inversion: queued job " << q.job_id << " (prio "
          << q.request.priority << ") fits over running job " << r.job_id
          << " (prio " << r.request.priority << ")";
    }
  }
}

ClusterMetrics ClusterService::Metrics() const {
  ClusterMetrics m;
  m.submitted = static_cast<int>(jobs_.size());
  m.rejected = rejected_;
  m.plan_calls = plan_calls_;
  m.plan_cache_hits = plan_cache_hits_;
  Seconds last_event = 0;
  for (const ClusterEvent& event : events_) {
    last_event = std::max(last_event, event.time);
    switch (event.kind) {
      case ClusterEventKind::kAdmit:
        ++m.admitted;
        break;
      case ClusterEventKind::kComplete:
        ++m.completed;
        break;
      case ClusterEventKind::kPreempt:
        ++m.preemptions;
        break;
      case ClusterEventKind::kShrink:
        ++m.shrinks;
        break;
      case ClusterEventKind::kExpand:
        ++m.expands;
        break;
      case ClusterEventKind::kJobFail:
        if (event.detail.rfind("terminal", 0) == 0) {
          ++m.failed;
        }
        break;
      default:
        break;
    }
  }
  // First-admission waits, from the event stream (first kAdmit per job).
  std::vector<Seconds> first_admit(jobs_.size(), -1);
  for (const ClusterEvent& event : events_) {
    if (event.kind == ClusterEventKind::kAdmit && event.job_id >= 1) {
      Seconds& slot = first_admit[static_cast<std::size_t>(event.job_id - 1)];
      if (slot < 0) {
        slot = event.time;
      }
    }
  }
  Seconds wait_sum = 0;
  int waited = 0;
  int immediate = 0;
  double useful = 0;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    useful += jobs_[i].useful_device_seconds;
    if (first_admit[i] < 0) {
      continue;
    }
    const Seconds wait = first_admit[i] - jobs_[i].request.arrival;
    wait_sum += wait;
    ++waited;
    if (wait <= 1e-12) {
      ++immediate;
    }
  }
  m.mean_wait = waited > 0 ? wait_sum / waited : 0;
  m.admission_rate = m.submitted > 0 ? static_cast<double>(immediate) / m.submitted : 0;
  m.planning_p50 = PercentileOf(planning_latencies_, 0.50);
  m.planning_p99 = PercentileOf(planning_latencies_, 0.99);
  m.makespan = std::max(now_, last_event);
  const double fleet_device_seconds = m.makespan * fleet_.world_size();
  m.goodput = fleet_device_seconds > 0 ? useful / fleet_device_seconds : 0;
  return m;
}

// ---- Deterministic traffic -------------------------------------------------

std::vector<JobRequest> GenerateTraffic(const TrafficOptions& options) {
  MEPIPE_CHECK(!options.mix.empty()) << "traffic needs a job mix";
  MEPIPE_CHECK_GT(options.jobs, 0);
  MEPIPE_CHECK_GT(options.mean_interarrival, 0);
  double total_weight = 0;
  for (const JobMixEntry& entry : options.mix) {
    MEPIPE_CHECK_GT(entry.weight, 0);
    total_weight += entry.weight;
  }
  SplitMixRng rng(options.seed);
  std::vector<JobRequest> requests;
  Seconds clock = 0;
  for (int i = 0; i < options.jobs; ++i) {
    clock += rng.NextExponential(options.mean_interarrival);
    double pick = rng.NextUniform() * total_weight;
    const JobMixEntry* entry = &options.mix.back();
    for (const JobMixEntry& candidate : options.mix) {
      if (pick < candidate.weight) {
        entry = &candidate;
        break;
      }
      pick -= candidate.weight;
    }
    JobRequest request;
    request.config = entry->config;
    request.method = entry->method;
    request.global_batch = entry->global_batch;
    request.min_nodes = entry->min_nodes;
    request.max_nodes = entry->max_nodes;
    request.arrival = clock;
    request.priority = static_cast<int>(
        rng.NextU64() %
        static_cast<std::uint64_t>(std::max(1, options.priority_classes)));
    const double span = std::max(0.0, options.max_iterations - options.min_iterations);
    request.iterations =
        std::floor(options.min_iterations + rng.NextUniform() * span) + 1;
    if (rng.NextUniform() < options.deadline_fraction) {
      request.deadline = clock + options.mean_interarrival * (2 + 6 * rng.NextUniform());
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

ClusterMetrics RunTraffic(ClusterService& service,
                          const std::vector<JobRequest>& requests, int failures,
                          std::uint64_t failure_seed) {
  MEPIPE_CHECK_GE(failures, 0);
  struct Failure {
    Seconds time = 0;
    int tier = 0;
    int node = 0;
  };
  std::vector<Failure> plan;
  if (failures > 0 && !requests.empty()) {
    SplitMixRng rng(failure_seed);
    const Seconds window = requests.back().arrival;
    for (int i = 0; i < failures; ++i) {
      Failure f;
      f.time = window * (i + 1) / (failures + 1);
      f.tier = static_cast<int>(
          rng.NextU64() % static_cast<std::uint64_t>(service.fleet().num_tiers()));
      f.node = static_cast<int>(
          rng.NextU64() % static_cast<std::uint64_t>(service.fleet().tier(f.tier).nodes));
      plan.push_back(f);
    }
  }
  std::size_t next_failure = 0;
  for (const JobRequest& request : requests) {
    while (next_failure < plan.size() && plan[next_failure].time <= request.arrival) {
      service.OnNodeFailure(std::max(plan[next_failure].time, service.now()),
                            plan[next_failure].tier, plan[next_failure].node);
      ++next_failure;
    }
    service.Submit(request);
  }
  while (next_failure < plan.size()) {
    service.OnNodeFailure(std::max(plan[next_failure].time, service.now()),
                          plan[next_failure].tier, plan[next_failure].node);
    ++next_failure;
  }
  service.Drain();
  return service.Metrics();
}

}  // namespace mepipe::core
