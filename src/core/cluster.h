// Multi-job cluster service (ROADMAP item 5): shared-fleet admission,
// allocation, and planning under sustained job traffic.
//
// A ClusterService owns one hw::ClusterTopology and consumes a stream of
// JobRequests (model preset, method, global batch, priority, optional
// deadline, node demand). For every admission it carves a disjoint
// whole-node sub-fleet (hw::CarveSubTopology), prices it through the
// two-phase surrogate planner — SearchBestStrategy when the carve is a
// single tier, SearchBestFleetStrategy when it spans tiers — with one
// thread-safe SurrogateCache shared across all jobs, and runs the job to
// completion on the service's wall clock. Completions, fail-stops, and
// preemptions reclaim capacity, which the admission loop immediately
// re-offers to queued and degraded jobs; a node failure inside a running
// job's fleet triggers the core/elastic survivor idiom — shrink to the
// surviving nodes and re-plan live when the job stays above its minimum
// demand, fail and requeue otherwise, with the dead node returning to
// the free pool after `repair_time`.
//
// Job lifecycle (state machine contract, also in DESIGN.md):
//   kQueued → kAdmitted → kRunning → {kDraining, kFailed} → kReclaimed
// with one re-entry edge kReclaimed → kQueued for preempted and
// failed-but-retryable jobs. VerifyInvariants() re-checks after every
// event that allocations are pairwise disjoint, node counts are
// conserved (allocated + free + repairing == fleet), every admitted job
// holds a memory-feasible plan, and no queued job is priority-inverted
// against free capacity or any single lower-priority running job.
//
// Everything here is deterministic: traffic comes from SplitMixRng,
// planning latency is *modeled* from the planner's own work counters
// (not wall-clock), and the event log serializes byte-stably with a
// trailing checksum so golden snapshots can pin whole admission
// timelines.
#ifndef MEPIPE_CORE_CLUSTER_H_
#define MEPIPE_CORE_CLUSTER_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/planner.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe::core {

// ---- Requests and lifecycle ------------------------------------------------

// One training job offered to the shared fleet. Demand is expressed in
// whole nodes (the carve granularity); the service sizes the allocation
// between min_nodes and max_nodes depending on load.
struct JobRequest {
  std::string name;                 // for logs; defaults to "job<id>"
  model::TransformerConfig config;  // model to train
  Method method = Method::kSvpp;
  int global_batch = 16;
  // Strict ordering class: a queued job must never wait on free capacity
  // that, together with any single lower-priority running job's nodes,
  // could host it (the no-priority-inversion invariant).
  int priority = 0;
  // 0 = no deadline. Used only as the admission tie-break inside one
  // priority class (earliest deadline first).
  Seconds deadline = 0;
  Seconds arrival = 0;  // service wall-clock submit time
  int min_nodes = 1;    // below this the job fails rather than shrinks
  int max_nodes = 1;    // the service never allocates more
  // Tier the nodes must come from; -1 = any single tier, and when no
  // single tier can host min_nodes the allocation may span tiers (the
  // fleet-planner path).
  int preferred_tier = -1;
  // Total training iterations the job must complete. Progress carries
  // across shrinks, expansions, preemptions, and requeues.
  double iterations = 100;
};

enum class JobState {
  kQueued,     // waiting for capacity
  kAdmitted,   // nodes reserved, planning in flight
  kRunning,    // executing its planned schedule
  kDraining,   // completed; nodes being reclaimed
  kFailed,     // lost too many nodes (or was preempted)
  kReclaimed,  // nodes returned; terminal unless requeued
};

const char* JobStateName(JobState state);

// The disjoint sub-fleet a job holds: per-tier whole-node slices plus
// the concrete node ids backing them (ids are per-tier, dense from 0).
struct Allocation {
  std::vector<hw::TierSlice> slices;
  std::vector<std::vector<int>> node_ids;  // parallel to `slices`

  int nodes() const;
  int devices(const hw::ClusterTopology& fleet) const;
  bool empty() const { return slices.empty(); }
};

// The priced outcome of planning one job on its carved sub-fleet.
// Infeasible outcomes (no strategy fits the carve) are memoized too, so
// the admission loop and the invariant checker agree on what a carve
// can host without re-planning.
struct JobPlan {
  bool feasible = false;
  Strategy strategy;
  hw::StagePlacement placement;  // meaningful on the fleet path only
  bool fleet_path = false;       // true ⇔ SearchBestFleetStrategy priced it
  Seconds iteration_time = 0;
  Bytes peak_memory = 0;
  double usd_per_iteration = 0;  // fleet path only (kDollarCost pricing)
  // The winning schedule, job-tagged (sched::TagJob) and serialized —
  // the unit interleaved multi-job timelines attribute spans with.
  std::string schedule_text;
  // Planner work counters, feeding the deterministic latency model.
  int surrogate_priced = 0;
  int simulated = 0;
  int cache_hits = 0;
  // Modeled planning latency of the call that produced this plan.
  Seconds planning_latency = 0;
  bool from_plan_cache = false;  // served from the service-level memo
};

struct JobRecord {
  int job_id = 0;
  JobRequest request;
  JobState state = JobState::kQueued;
  Allocation alloc;
  JobPlan plan;
  Seconds admit_time = 0;        // last admission (re-entry updates it)
  Seconds segment_start = 0;     // when the current plan started running
  Seconds finish_time = 0;       // predicted completion under the plan
  double remaining_iterations = 0;
  double completed_iterations = 0;
  // Device-seconds of useful (planned) compute this job has banked —
  // the numerator of fleet-wide goodput.
  double useful_device_seconds = 0;
  int shrink_count = 0;
  int expand_count = 0;
  int preempt_count = 0;
  int failure_count = 0;
};

// ---- Event log -------------------------------------------------------------

enum class ClusterEventKind {
  kSubmit,
  kAdmit,
  kComplete,
  kNodeFail,
  kShrink,
  kExpand,
  kJobFail,
  kRequeue,
  kPreempt,
  kRepair,
  kReject,
};

const char* ClusterEventKindName(ClusterEventKind kind);

struct ClusterEvent {
  Seconds time = 0;
  ClusterEventKind kind = ClusterEventKind::kSubmit;
  int job_id = -1;  // -1 for fleet-level events (e.g. kRepair)
  std::string detail;
};

// Byte-stable rendering: header, fleet summary, one line per event, and
// a trailing checksum line over everything above it. The golden
// admission-timeline snapshot pins this format.
std::string FormatEventLog(const hw::ClusterTopology& fleet,
                           const std::vector<ClusterEvent>& events);

// Re-derives the checksum and structure of a FormatEventLog document.
// Returns true iff the log is intact; any flipped byte, dropped line, or
// reordered event fails.
bool ValidateEventLog(const std::string& text);

// ---- Service configuration -------------------------------------------------

// How the service maps demand onto the fleet.
//  - kDynamic: size each allocation between [min_nodes, max_nodes] by
//    load, preempt lower-priority work for higher, shrink on failure,
//    expand into idle capacity.
//  - kStaticEqual: the classic static scheme — each tier is pre-carved
//    into equal fixed-size partitions; a job takes exactly one partition
//    (no sizing, no preemption, no expansion, no cross-tier spans). The
//    bench's baseline.
enum class AllocationPolicy { kDynamic, kStaticEqual };

// Deterministic planning-latency model: charges the planner's counted
// work at fixed per-unit rates instead of sampling wall-clock, so p50 /
// p99 planning latency in benches is reproducible to the bit.
struct PlanningLatencyModel {
  Seconds base = Milliseconds(2);
  Seconds per_surrogate = Microseconds(40);
  Seconds per_simulation = Milliseconds(8);
  Seconds per_cache_hit = Microseconds(2);

  Seconds Latency(int surrogate_priced, int simulated, int cache_hits) const;
};

struct ClusterServiceOptions {
  AllocationPolicy policy = AllocationPolicy::kDynamic;
  // Planner knobs shared by every job; `cache` and `threads` are managed
  // by the service (its shared SurrogateCache is always wired in).
  PlannerOptions planner;
  PlanningLatencyModel latency;
  // Dead nodes rejoin the free pool this long after the failure.
  Seconds repair_time = 900;
  // kStaticEqual partition width in nodes (0 = tier.nodes / 4, min 1).
  int static_partition_nodes = 0;
  // A failed job re-enters the queue unless it already failed this many
  // times.
  int max_failures_per_job = 3;
  // Re-check the service invariants after every processed event (the
  // property fuzz runs with this on; benches turn it off for speed).
  bool verify_invariants = false;
};

// ---- Fleet-wide metrics ----------------------------------------------------

struct ClusterMetrics {
  int submitted = 0;
  int admitted = 0;     // admission events (re-admissions count)
  int completed = 0;
  int failed = 0;       // terminal failures (retry budget exhausted)
  int rejected = 0;     // infeasible on the whole fleet
  int preemptions = 0;
  int shrinks = 0;
  int expands = 0;
  int plan_calls = 0;
  int plan_cache_hits = 0;  // service-level memo hits
  // Modeled planning latency distribution across all planning calls.
  Seconds planning_p50 = 0;
  Seconds planning_p99 = 0;
  // Fraction of jobs whose first admission happened at their arrival
  // instant (no queueing delay).
  double admission_rate = 0;
  Seconds mean_wait = 0;      // arrival → first admission
  Seconds makespan = 0;       // last event time
  // Fleet-wide goodput: useful (planned-compute) device-seconds over
  // fleet device-seconds across the run. The bench's headline metric.
  double goodput = 0;
};

// ---- The service -----------------------------------------------------------

class ClusterService {
 public:
  ClusterService(hw::ClusterTopology fleet, ClusterServiceOptions options);

  // Submits at request.arrival (must be >= the current service time;
  // the clock first advances there, processing due events). Returns the
  // assigned job id. Jobs that can never fit the fleet are rejected
  // immediately (state kReclaimed, a kReject event).
  int Submit(JobRequest request);

  // Kills one node. `node` is the dense per-tier id. If a running job
  // holds it, the job shrinks (survivors re-plan) or fails and requeues;
  // free and repairing nodes just (re-)enter repair.
  void OnNodeFailure(Seconds time, int tier, int node);

  // Advances the wall clock, processing completions and repairs in
  // timestamp order and re-running admission after each.
  void AdvanceTo(Seconds time);

  // Runs until no job is queued or running (all terminal). Returns the
  // final clock.
  Seconds Drain();

  const JobRecord& job(int job_id) const;
  const std::vector<JobRecord>& jobs() const { return jobs_; }
  const std::vector<ClusterEvent>& events() const { return events_; }
  const hw::ClusterTopology& fleet() const { return fleet_; }
  Seconds now() const { return now_; }
  SurrogateCache& cache() { return cache_; }

  ClusterMetrics Metrics() const;

  // The carved sub-topology a job's allocation denotes (what its plan
  // was priced on).
  hw::ClusterTopology CarveFor(const Allocation& alloc) const;

  // Throws CheckError when any service invariant is violated (see the
  // header comment). The property fuzz calls this after every event.
  void VerifyInvariants() const;

 private:
  struct PlanKey {
    Method method = Method::kSvpp;
    int global_batch = 0;
    // TopologyFingerprint of the *carved* sub-fleet (model + tiers +
    // links + iteration knobs): two equal-device carvings from
    // different tiers — or differently-shaped carvings of one tier —
    // digest differently, so their plans can never collide in the memo.
    std::uint64_t carve_fingerprint = 0;

    friend bool operator==(const PlanKey&, const PlanKey&) = default;
  };
  struct PlanKeyHash {
    std::size_t operator()(const PlanKey& key) const;
  };

  struct Repairing {
    Seconds ready = 0;
    int tier = 0;
    int node = 0;
  };

  void Emit(Seconds time, ClusterEventKind kind, int job_id, std::string detail);
  void ProcessDueEvents(Seconds horizon);
  void CompleteJob(JobRecord& job, Seconds time);
  void ReleaseAllocation(JobRecord& job);
  void CreditProgress(JobRecord& job, Seconds time);
  void AdmissionLoop(Seconds time);
  bool TryAdmit(JobRecord& job, Seconds time);
  bool TryPreemptFor(JobRecord& job, Seconds time);
  void TryExpand(Seconds time);
  // Allocation search over the free pool (plus `extra` nodes when
  // simulating preemption). Returns nullopt when no carve of size
  // [min_nodes, target] fits.
  std::optional<Allocation> FindAllocation(const JobRequest& request, int target_nodes,
                                           const std::vector<std::set<int>>& free) const;
  std::optional<Allocation> StaticAllocation(const JobRequest& request,
                                             const std::vector<std::set<int>>& free) const;
  // Plans `job` on `alloc`'s carve (memoized). Returns false when no
  // feasible strategy exists on that carve.
  bool PlanJob(JobRecord& job, const Allocation& alloc, Seconds time);
  void AdoptPlan(JobRecord& job, const Allocation& alloc, Seconds time);
  int PartitionNodes(int tier) const;

  hw::ClusterTopology fleet_;
  ClusterServiceOptions options_;
  Seconds now_ = 0;
  std::vector<std::set<int>> free_;  // per tier, node ids
  std::vector<Repairing> repairing_;
  std::vector<JobRecord> jobs_;
  std::vector<ClusterEvent> events_;
  std::vector<Seconds> planning_latencies_;
  SurrogateCache cache_;
  std::unordered_map<PlanKey, JobPlan, PlanKeyHash> plan_memo_;
  int plan_calls_ = 0;
  int plan_cache_hits_ = 0;
  int rejected_ = 0;
};

// ---- Deterministic traffic -------------------------------------------------

// One entry of the synthetic job mix: a model preset with demand bounds.
struct JobMixEntry {
  model::TransformerConfig config;
  Method method = Method::kSvpp;
  int global_batch = 16;
  int min_nodes = 1;
  int max_nodes = 2;
  double weight = 1.0;  // sampling weight within the mix
};

struct TrafficOptions {
  int jobs = 16;
  // Poisson arrivals: exponential inter-arrival with this mean.
  Seconds mean_interarrival = 600;
  std::uint64_t seed = 1;
  int priority_classes = 3;        // priorities drawn from [0, classes)
  double deadline_fraction = 0.3;  // jobs given a deadline
  double min_iterations = 50;
  double max_iterations = 400;
  std::vector<JobMixEntry> mix;    // empty = CHECK-fails
};

// Draws `options.jobs` requests with SplitMixRng(seed): bit-identical
// across toolchains, sorted by arrival.
std::vector<JobRequest> GenerateTraffic(const TrafficOptions& options);

// Submits every request in arrival order, injects `failures` node
// failures at deterministic times spread over the traffic window
// (seeded), drains, and returns the final metrics.
ClusterMetrics RunTraffic(ClusterService& service, const std::vector<JobRequest>& requests,
                          int failures = 0, std::uint64_t failure_seed = 7);

}  // namespace mepipe::core

#endif  // MEPIPE_CORE_CLUSTER_H_
