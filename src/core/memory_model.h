// §4.5: the three-component memory model that picks the SVPP schedule
// variant (the parameter f — forward passes admitted before the first
// backward) fitting a device's memory.
//
//   budget = usable device memory − static memory (params, grads,
//            optimizer shards) − temporary memory (workspace, logits)
//   f      = clamp(budget / bytes-retained-per-forward, v·s, f_max)
//
// With split B/W, one retained forward eventually also holds its
// activation gradients between B and W, so the per-forward unit charges
// both.
#ifndef MEPIPE_CORE_MEMORY_MODEL_H_
#define MEPIPE_CORE_MEMORY_MODEL_H_

#include <string>

#include "core/svpp.h"
#include "core/training_cost.h"
#include "hw/gpu.h"

namespace mepipe::core {

struct VariantDecision {
  bool feasible = false;
  int f = 0;                     // chosen variant (0 when infeasible)
  Bytes static_bytes = 0;        // worst-stage static + temporary
  Bytes per_forward_bytes = 0;   // activation (+ act-grad) unit
  Bytes activation_budget = 0;   // usable − static
  std::string reason;            // set when infeasible
};

// Picks the largest feasible f for the SVPP instance priced by `costs`.
VariantDecision ChooseSvppVariant(const TrainingCostModel& costs, const SvppOptions& svpp,
                                  const hw::GpuSpec& gpu);

}  // namespace mepipe::core

#endif  // MEPIPE_CORE_MEMORY_MODEL_H_
