#include "core/analytic.h"

#include <algorithm>

#include "common/check.h"

namespace mepipe::core {
namespace {

double D(int x) { return static_cast<double>(x); }

}  // namespace

const char* ToString(Method method) {
  switch (method) {
    case Method::kGPipe:
      return "GPipe";
    case Method::kDapple:
      return "DAPPLE";
    case Method::kVpp:
      return "VPP";
    case Method::kHanayo:
      return "Hanayo";
    case Method::kTeraPipe:
      return "TeraPipe";
    case Method::kZb1p:
      return "ZB";
    case Method::kZbv:
      return "ZBV";
    case Method::kZbvCapped:
      return "ZBV-capped";
    case Method::kSvpp:
      return "MEPipe";
    case Method::kSynth:
      return "Synth";
  }
  return "?";
}

std::optional<AnalyticResult> Analyze(Method method, const AnalyticInput& input) {
  const int p = input.p;
  const int v = input.v;
  const int s = input.s;
  const int n = input.n;
  MEPIPE_CHECK_GE(p, 1);
  MEPIPE_CHECK_GE(v, 1);
  MEPIPE_CHECK_GE(s, 1);
  MEPIPE_CHECK_GE(n, 1);

  AnalyticResult out;
  switch (method) {
    case Method::kGPipe:
      // All n forwards retained before the first backward.
      out.bubble_ratio = D(p - 1) / D(p - 1 + n);
      out.activation_fraction = D(n) / D(p);
      return out;

    case Method::kDapple:
      out.bubble_ratio = D(p - 1) / D(p - 1 + n);
      out.activation_fraction = D(std::min(n, p)) / D(p);
      return out;

    case Method::kVpp: {
      if (n < p) {
        return std::nullopt;  // Table 3 marks this regime unsupported
      }
      out.bubble_ratio = D(p - 1) / D(p - 1 + n * v);
      out.activation_fraction =
          std::min(1.0 + D(p - 1) / D(p * v), D(n) / D(v * p));
      return out;
    }

    case Method::kHanayo: {
      if (n >= p) {
        out.bubble_ratio = D(p - 1) / D(p - 1 + n * v);
        out.activation_fraction = 1.0;
      } else {
        out.bubble_ratio = D(v * p + n - 1 - n * v) / D(v * p + n - 1);
        out.activation_fraction = D(n) / D(p);
      }
      return out;
    }

    case Method::kTeraPipe:
      out.bubble_ratio = D(p - 1) / D(n * s + p - 1);
      out.activation_fraction = D(n) / D(p);
      return out;

    case Method::kZb1p:
    case Method::kZbvCapped:
    case Method::kSynth:
      // §4.4 deliberately excludes the zero-bubble family from Table 3
      // (its B/W split composes with every row); the simulator measures
      // these methods instead of a closed form. Note kZbvCapped's
      // *measured* profile is floored at 1F1B-parity memory by the
      // iteration runner and the surrogate: its deferred weight
      // gradients retain every forward past its B, so the capped
      // generator's release-on-B count (~A/2) under-reports the honest
      // peak. The synthesizer's profile is a function of its budget —
      // bench_synth pins the frontier.
      return std::nullopt;

    case Method::kZbv: {
      if (n < p) {
        return std::nullopt;  // the ramp cannot fill; Table 3 assumes n >= p
      }
      // The handcrafted ZB-V construction (sched/zbv.h) reaches the
      // chunk-chain lower bound under the table's assumptions: each
      // stage idles exactly the (p-1) chunk-forwards of pipeline ramp,
      // against 6n chunk-op units of work (2n each of F, B, W at v=2,
      // uniform F = B = W). Memory is 1F1B parity: at most 2p retained
      // chunk-forwards of A/(2p) each.
      out.bubble_ratio = D(p - 1) / D(p - 1 + 6 * n);
      out.activation_fraction = 1.0;
      return out;
    }

    case Method::kSvpp: {
      const double table_fraction =
          D(v * std::max(p, s) + std::min(p, s) - 1) / D(v * s * p);
      if (n >= p) {
        out.bubble_ratio = D(p - 1) / D(n * s * v + p - 1);
        out.activation_fraction = table_fraction;
      } else {
        const int gap = (v - 1) * std::max(p - s * n, 0);
        out.bubble_ratio = D(p - 1 + gap) / D(p - 1 + gap + n * v * s);
        out.activation_fraction = std::min(table_fraction, D(n) / D(p));
      }
      return out;
    }
  }
  return std::nullopt;
}

}  // namespace mepipe::core
