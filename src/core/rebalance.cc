#include "core/rebalance.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "common/check.h"
#include "common/format.h"
#include "sched/generator.h"

namespace mepipe::core {
namespace {

// Guard for floor(T / s) at T values that are exact products U·s.
constexpr double kFloorEps = 1e-9;

std::string JoinInts(const std::vector<int>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(values[i]);
  }
  return out;
}

double SafeRatio(double numerator, double denominator) {
  return denominator > 0 ? numerator / denominator : 1.0;
}

}  // namespace

double StageProfile::max_slowdown() const {
  double worst = 1.0;
  for (const double s : slowdown) {
    worst = std::max(worst, s);
  }
  return worst;
}

void StageProfile::Validate(int stages) const {
  MEPIPE_CHECK_EQ(static_cast<int>(slowdown.size()), stages)
      << "profile has " << slowdown.size() << " entries for " << stages << " stages";
  for (const double s : slowdown) {
    MEPIPE_CHECK(std::isfinite(s) && s >= 1.0)
        << "stage slowdown must be finite and >= 1, got " << s;
  }
}

StageProfile EstimateStageSlowdowns(const sim::SimResult& clean,
                                    const sim::SimResult& faulted) {
  MEPIPE_CHECK_EQ(clean.stages.size(), faulted.stages.size())
      << "clean/faulted runs disagree on stage count";
  MEPIPE_CHECK(!clean.stages.empty()) << "cannot estimate a profile from an empty run";
  StageProfile profile;
  profile.slowdown.reserve(clean.stages.size());
  for (std::size_t i = 0; i < clean.stages.size(); ++i) {
    const Seconds base = clean.stages[i].busy;
    const Seconds dilated = faulted.stages[i].busy;
    profile.slowdown.push_back(base > 0 ? std::max(1.0, dilated / base) : 1.0);
  }
  return profile;
}

StageProfile EstimateStageSlowdowns(const sim::FaultPlan& plan, int stages, Seconds horizon) {
  MEPIPE_CHECK_GT(stages, 0);
  MEPIPE_CHECK_GT(horizon, 0) << "profile horizon must be positive";
  plan.Validate(stages);
  StageProfile profile;
  profile.slowdown.assign(static_cast<std::size_t>(stages), 1.0);
  for (const sim::StragglerFault& fault : plan.stragglers) {
    const Seconds begin = std::max<Seconds>(fault.begin, 0);
    const Seconds end = std::min(fault.end, horizon);
    if (end <= begin) {
      continue;
    }
    profile.slowdown[static_cast<std::size_t>(fault.stage)] +=
        (end - begin) / horizon * (fault.slowdown - 1.0);
  }
  return profile;
}

void WindowedProfileOptions::Validate() const {
  MEPIPE_CHECK_GE(window, 1) << "detection window must hold at least one iteration";
  MEPIPE_CHECK(min_observations >= 1 && min_observations <= window)
      << "min_observations " << min_observations << " outside [1, window=" << window << "]";
  MEPIPE_CHECK_GT(trigger_threshold, 1.0) << "trigger threshold must exceed 1";
  MEPIPE_CHECK_GE(hysteresis_windows, 1);
}

namespace {

// Median-normalized per-stage busy ratios of a partial window: the raw
// deviation of each stage from the plan's expected busy time, anchored
// on the majority so a uniform fleet-wide dilation reads as 1 everywhere.
std::vector<double> WindowRatiosFrom(const std::vector<Seconds>& baseline_busy,
                                     const std::vector<Seconds>& window_busy_sum, int observed) {
  MEPIPE_CHECK_GE(observed, 1) << "a windowed profile needs at least one observation";
  MEPIPE_CHECK_EQ(baseline_busy.size(), window_busy_sum.size())
      << "baseline/window busy vectors disagree on stage count";
  MEPIPE_CHECK(!baseline_busy.empty()) << "cannot estimate a profile over zero stages";
  std::vector<double> ratios(baseline_busy.size(), 1.0);
  for (std::size_t i = 0; i < baseline_busy.size(); ++i) {
    MEPIPE_CHECK_GE(baseline_busy[i], 0.0) << "negative baseline busy time";
    MEPIPE_CHECK_GE(window_busy_sum[i], 0.0) << "negative windowed busy time";
    const Seconds mean = window_busy_sum[i] / static_cast<double>(observed);
    ratios[i] = baseline_busy[i] > 0 ? mean / baseline_busy[i] : 1.0;
  }
  std::vector<double> sorted = ratios;
  std::nth_element(sorted.begin(), sorted.begin() + (sorted.size() - 1) / 2, sorted.end());
  const double median = sorted[(sorted.size() - 1) / 2];  // lower median
  if (median > 0) {
    for (double& r : ratios) {
      r /= median;
    }
  }
  return ratios;
}

StageProfile ProfileFromRatios(const std::vector<double>& ratios) {
  StageProfile profile;
  profile.slowdown.reserve(ratios.size());
  for (const double r : ratios) {
    profile.slowdown.push_back(std::max(1.0, r));
  }
  return profile;
}

}  // namespace

StageProfile EstimateStageSlowdowns(const std::vector<Seconds>& baseline_busy,
                                    const std::vector<Seconds>& window_busy_sum, int observed) {
  return ProfileFromRatios(WindowRatiosFrom(baseline_busy, window_busy_sum, observed));
}

SlowdownWindowEstimator::SlowdownWindowEstimator(std::vector<Seconds> baseline_busy,
                                                 const WindowedProfileOptions& options)
    : options_(options) {
  options_.Validate();
  Reset(std::move(baseline_busy));
}

void SlowdownWindowEstimator::Reset(std::vector<Seconds> baseline_busy) {
  MEPIPE_CHECK(!baseline_busy.empty()) << "estimator baseline needs at least one stage";
  for (const Seconds b : baseline_busy) {
    MEPIPE_CHECK_GE(b, 0.0) << "negative baseline busy time";
  }
  baseline_ = std::move(baseline_busy);
  accum_.assign(baseline_.size(), 0.0);
  accum_count_ = 0;
  window_profile_ = {};
  window_ratios_.clear();
  deviant_windows_ = 0;
}

bool SlowdownWindowEstimator::Observe(const std::vector<Seconds>& busy) {
  MEPIPE_CHECK(!baseline_.empty()) << "Observe() on an estimator without a baseline";
  MEPIPE_CHECK_EQ(busy.size(), baseline_.size()) << "observation/baseline stage mismatch";
  for (std::size_t i = 0; i < busy.size(); ++i) {
    MEPIPE_CHECK_GE(busy[i], 0.0) << "negative observed busy time";
    accum_[i] += busy[i];
  }
  ++accum_count_;
  if (accum_count_ < options_.window) {
    return false;
  }
  CloseWindow();
  return true;
}

bool SlowdownWindowEstimator::ClosePartialWindow() {
  if (accum_count_ < options_.min_observations) {
    // Under the confidence gate: too few observations to trust — drop.
    accum_.assign(baseline_.size(), 0.0);
    accum_count_ = 0;
    return false;
  }
  CloseWindow();
  return true;
}

void SlowdownWindowEstimator::CloseWindow() {
  window_ratios_ = WindowRatiosFrom(baseline_, accum_, accum_count_);
  window_profile_ = ProfileFromRatios(window_ratios_);
  double deviation = 1.0;
  for (const double r : window_ratios_) {
    deviation = std::max(deviation, std::max(r, r > 0 ? 1.0 / r : deviation));
  }
  if (deviation >= options_.trigger_threshold) {
    ++deviant_windows_;
  } else {
    deviant_windows_ = 0;  // one clean window re-arms the hysteresis
  }
  ++windows_closed_;
  accum_.assign(baseline_.size(), 0.0);
  accum_count_ = 0;
}

StageProfile SlowdownWindowEstimator::PartialProfile() const {
  MEPIPE_CHECK(!baseline_.empty()) << "PartialProfile() on an estimator without a baseline";
  if (accum_count_ < options_.min_observations) {
    StageProfile flat;
    flat.slowdown.assign(baseline_.size(), 1.0);
    return flat;
  }
  return ProfileFromRatios(WindowRatiosFrom(baseline_, accum_, accum_count_));
}

const StageProfile& SlowdownWindowEstimator::WindowProfile() const { return window_profile_; }

const std::vector<double>& SlowdownWindowEstimator::WindowRatios() const {
  return window_ratios_;
}

bool SlowdownWindowEstimator::PersistentDeviation() const {
  return deviant_windows_ >= options_.hysteresis_windows;
}

std::vector<int> PartitionUnitsBySpeed(int total_units, const std::vector<double>& slowdown,
                                       int min_units) {
  const int workers = static_cast<int>(slowdown.size());
  MEPIPE_CHECK_GT(workers, 0);
  MEPIPE_CHECK_GE(min_units, 1);
  MEPIPE_CHECK_GE(total_units, workers * min_units)
      << total_units << " units cannot give " << workers << " workers " << min_units << " each";
  for (const double s : slowdown) {
    MEPIPE_CHECK(std::isfinite(s) && s > 0) << "slowdown must be finite and positive, got " << s;
  }

  // Candidate bottlenecks are products U · s_i; feasibility of T is
  // monotone, so binary search the smallest feasible candidate.
  std::vector<double> candidates;
  candidates.reserve(static_cast<std::size_t>(workers) *
                     static_cast<std::size_t>(total_units - min_units + 1));
  for (const double s : slowdown) {
    for (int u = min_units; u <= total_units; ++u) {
      candidates.push_back(u * s);
    }
  }
  std::sort(candidates.begin(), candidates.end());

  auto units_at = [&](double bottleneck) {
    std::vector<int> units(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      const double quota = bottleneck / slowdown[static_cast<std::size_t>(i)];
      const int whole = static_cast<int>(std::floor(quota + kFloorEps));
      units[static_cast<std::size_t>(i)] = std::clamp(whole, min_units, total_units);
    }
    return units;
  };
  auto feasible = [&](double bottleneck) {
    std::int64_t capacity = 0;
    for (int i = 0; i < workers; ++i) {
      const double s = slowdown[static_cast<std::size_t>(i)];
      if (min_units * s > bottleneck + kFloorEps) {
        return false;  // the min allocation alone already exceeds T
      }
      capacity += static_cast<int>(std::floor(bottleneck / s + kFloorEps));
    }
    return capacity >= total_units;
  };

  std::size_t lo = 0;
  std::size_t hi = candidates.size() - 1;
  MEPIPE_CHECK(feasible(candidates[hi])) << "no feasible bottleneck (internal)";
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (feasible(candidates[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }

  std::vector<int> units = units_at(candidates[lo]);
  std::int64_t assigned = std::accumulate(units.begin(), units.end(), std::int64_t{0});
  MEPIPE_CHECK_GE(assigned, total_units) << "floor capacity below total (internal)";
  // Trim the surplus off the most-loaded workers: removing a unit there
  // can only lower (never raise) the realized bottleneck.
  while (assigned > total_units) {
    int victim = -1;
    double worst_load = -1.0;
    for (int i = 0; i < workers; ++i) {
      if (units[static_cast<std::size_t>(i)] <= min_units) {
        continue;
      }
      const double load = units[static_cast<std::size_t>(i)] * slowdown[static_cast<std::size_t>(i)];
      if (load > worst_load) {
        worst_load = load;
        victim = i;
      }
    }
    MEPIPE_CHECK_GE(victim, 0) << "partition trim stuck (internal)";
    --units[static_cast<std::size_t>(victim)];
    --assigned;
  }
  return units;
}

double RebalancePlan::unit_ratio(int chunk) const {
  if (old_units.empty() || chunk < 0 || chunk >= static_cast<int>(old_units.size())) {
    return 1.0;
  }
  return SafeRatio(new_units[static_cast<std::size_t>(chunk)],
                   old_units[static_cast<std::size_t>(chunk)]);
}

double RebalancePlan::stage_unit_ratio(const sched::PipelineProblem& problem, int stage) const {
  if (old_units.empty()) {
    return 1.0;
  }
  double before = 0;
  double after = 0;
  for (int c = 0; c < problem.num_chunks() && c < static_cast<int>(old_units.size()); ++c) {
    if (problem.stage_of_chunk(c) != stage) {
      continue;
    }
    before += old_units[static_cast<std::size_t>(c)];
    after += new_units[static_cast<std::size_t>(c)];
  }
  return SafeRatio(after, before);
}

std::string RebalancePlan::Summary() const {
  std::string out;
  auto append = [&out](const std::string& part) {
    if (!out.empty()) {
      out += "; ";
    }
    out += part;
  };
  if (!old_units.empty()) {
    append(StrFormat("units %s -> %s", JoinInts(old_units).c_str(), JoinInts(new_units).c_str()));
  }
  if (resliced()) {
    std::string tokens;
    for (std::size_t i = 0; i < new_spans.size(); ++i) {
      if (i > 0) {
        tokens += ',';
      }
      tokens += std::to_string(new_spans[i].tokens);
    }
    append("slice tokens " + tokens);
  }
  if (!old_caps.empty()) {
    append(StrFormat("caps %s -> %s", JoinInts(old_caps).c_str(), JoinInts(new_caps).c_str()));
  }
  if (out.empty()) {
    return "no-op";
  }
  out += StrFormat("; gain %.2fx", predicted_gain);
  return out;
}

std::vector<std::string> RebalancePlan::StageLabels(const sched::PipelineProblem& problem) const {
  std::vector<std::string> labels;
  labels.reserve(static_cast<std::size_t>(problem.stages));
  for (int stage = 0; stage < problem.stages; ++stage) {
    std::string label;
    if (stage < static_cast<int>(profile.slowdown.size())) {
      label = StrFormat("x%.2f", profile.slowdown[static_cast<std::size_t>(stage)]);
    }
    if (!old_units.empty()) {
      int before = 0;
      int after = 0;
      for (int c = 0; c < problem.num_chunks() && c < static_cast<int>(old_units.size()); ++c) {
        if (problem.stage_of_chunk(c) != stage) {
          continue;
        }
        before += old_units[static_cast<std::size_t>(c)];
        after += new_units[static_cast<std::size_t>(c)];
      }
      label += StrFormat(" units %d->%d", before, after);
    }
    if (stage < static_cast<int>(old_caps.size())) {
      label += StrFormat(" cap %d->%d", old_caps[static_cast<std::size_t>(stage)],
                         new_caps[static_cast<std::size_t>(stage)]);
    }
    labels.push_back(label);
  }
  return labels;
}

RebalancePlan Rebalance(const StageProfile& profile, const sched::PipelineProblem& problem,
                        const RebalanceOptions& options) {
  problem.Validate();
  profile.Validate(problem.stages);
  RebalancePlan plan;
  plan.profile = profile;
  const int chunks = problem.num_chunks();

  // Axis 1 — layers.
  if (options.units_per_chunk > 0) {
    plan.old_units.assign(static_cast<std::size_t>(chunks), options.units_per_chunk);
    plan.new_units = plan.old_units;
    if (options.repartition_layers) {
      std::vector<double> chunk_slowdown(static_cast<std::size_t>(chunks));
      for (int c = 0; c < chunks; ++c) {
        chunk_slowdown[static_cast<std::size_t>(c)] =
            profile.slowdown[static_cast<std::size_t>(problem.stage_of_chunk(c))];
      }
      plan.new_units = PartitionUnitsBySpeed(options.units_per_chunk * chunks, chunk_slowdown,
                                             std::max(1, options.min_units_per_chunk));
      auto bottleneck = [&](const std::vector<int>& units) {
        std::vector<double> load(static_cast<std::size_t>(problem.stages), 0.0);
        for (int c = 0; c < chunks; ++c) {
          load[static_cast<std::size_t>(problem.stage_of_chunk(c))] +=
              units[static_cast<std::size_t>(c)];
        }
        double worst = 0;
        for (int i = 0; i < problem.stages; ++i) {
          worst = std::max(worst, load[static_cast<std::size_t>(i)] *
                                      profile.slowdown[static_cast<std::size_t>(i)]);
        }
        return worst;
      };
      plan.predicted_gain = SafeRatio(bottleneck(plan.old_units), bottleneck(plan.new_units));
    }
  }

  // Axis 2 — slices.
  if (options.rebalance_slices && options.config.hidden > 0 && options.seq_len > 0 &&
      problem.slices > 1) {
    const std::int64_t alignment = std::max<std::int64_t>(1, options.slice_alignment);
    plan.old_spans = options.base_spans;
    if (plan.old_spans.empty()) {
      plan.old_spans = model::AlignSlices(
          model::BalancedSlices(options.config, options.seq_len, problem.slices), alignment);
    }
    MEPIPE_CHECK_EQ(plan.old_spans.size(), static_cast<std::size_t>(problem.slices))
        << "base_spans count disagrees with problem.slices";
    std::int64_t cursor = 0;
    for (const model::SliceSpan& span : plan.old_spans) {
      MEPIPE_CHECK_EQ(span.start, cursor) << "base_spans are not contiguous";
      MEPIPE_CHECK_GT(span.tokens, 0) << "base_spans contain an empty slice";
      cursor = span.end();
    }
    MEPIPE_CHECK_EQ(cursor, options.seq_len) << "base_spans do not cover [0, seq_len)";
    plan.new_spans = model::AlignSlices(
        model::TimeBalancedSlices(options.config, options.seq_len, problem.slices,
                                  options.slice_time),
        alignment);
  }

  // Axis 3 — caps. A stage's per-forward activation footprint scales
  // with its layer share, so the cap shrinks/grows inversely to keep
  // the same memory envelope; v·s stays the schedulability floor.
  if (!options.base_caps.empty()) {
    MEPIPE_CHECK_EQ(static_cast<int>(options.base_caps.size()), problem.stages)
        << "base_caps must have one entry per stage";
    plan.old_caps = options.base_caps;
    plan.new_caps = plan.old_caps;
    if (options.retune_caps) {
      const int floor_cap = problem.virtual_chunks * problem.slices;
      for (int i = 0; i < problem.stages; ++i) {
        MEPIPE_CHECK_GE(plan.old_caps[static_cast<std::size_t>(i)], floor_cap)
            << "base cap below the v*s schedulability floor on stage " << i;
        const double ratio = std::max(plan.stage_unit_ratio(problem, i), kFloorEps);
        const int cap = static_cast<int>(
            std::llround(plan.old_caps[static_cast<std::size_t>(i)] / ratio));
        plan.new_caps[static_cast<std::size_t>(i)] = std::max(floor_cap, cap);
      }
    }
  }
  return plan;
}

RebalancedCostModel::RebalancedCostModel(const sim::CostModel& base,
                                         const sched::PipelineProblem& problem,
                                         const RebalancePlan& plan,
                                         const model::TransformerConfig& config)
    : sim::WrappingCostModel(base) {
  problem.Validate();
  const int chunks = problem.num_chunks();
  unit_ratio_.assign(static_cast<std::size_t>(chunks), 1.0);
  if (!plan.old_units.empty()) {
    MEPIPE_CHECK_EQ(static_cast<int>(plan.old_units.size()), chunks)
        << "plan unit count disagrees with the problem's chunks";
    MEPIPE_CHECK_EQ(plan.new_units.size(), plan.old_units.size());
    for (int c = 0; c < chunks; ++c) {
      MEPIPE_CHECK_GT(plan.old_units[static_cast<std::size_t>(c)], 0);
      unit_ratio_[static_cast<std::size_t>(c)] = plan.unit_ratio(c);
    }
  }
  if (plan.resliced()) {
    MEPIPE_CHECK_GT(config.hidden, 0) << "slice re-pricing needs the model config";
    MEPIPE_CHECK_EQ(plan.old_spans.size(), static_cast<std::size_t>(problem.slices));
    MEPIPE_CHECK_EQ(plan.new_spans.size(), plan.old_spans.size());
    const std::size_t slices = plan.old_spans.size();
    forward_ratio_.resize(slices);
    backward_ratio_.resize(slices);
    wgrad_ratio_.resize(slices);
    token_ratio_.resize(slices);
    for (std::size_t t = 0; t < slices; ++t) {
      const model::SliceSpan& before = plan.old_spans[t];
      const model::SliceSpan& after = plan.new_spans[t];
      MEPIPE_CHECK_GT(before.tokens, 0);
      MEPIPE_CHECK_GT(after.tokens, 0);
      token_ratio_[t] = static_cast<double>(after.tokens) / static_cast<double>(before.tokens);
      forward_ratio_[t] = SafeRatio(model::ForwardLayerFlops(config, after).total(),
                                    model::ForwardLayerFlops(config, before).total());
      backward_ratio_[t] = SafeRatio(model::BackwardLayerFlops(config, after),
                                     model::BackwardLayerFlops(config, before));
      wgrad_ratio_[t] = SafeRatio(model::WeightGradLayerFlops(config, after),
                                  model::WeightGradLayerFlops(config, before));
    }
  }
}

Seconds RebalancedCostModel::ComputeTime(const sched::OpId& op) const {
  double ratio = 1.0;
  if (op.chunk >= 0 && op.chunk < static_cast<int>(unit_ratio_.size())) {
    ratio *= unit_ratio_[static_cast<std::size_t>(op.chunk)];
  }
  if (!forward_ratio_.empty() && op.slice >= 0 &&
      op.slice < static_cast<int>(forward_ratio_.size())) {
    const std::size_t t = static_cast<std::size_t>(op.slice);
    switch (op.kind) {
      case sched::OpKind::kForward:
        ratio *= forward_ratio_[t];
        break;
      case sched::OpKind::kBackward:
        ratio *= backward_ratio_[t];
        break;
      case sched::OpKind::kWeightGrad:
      case sched::OpKind::kWeightGradGemm:
        ratio *= wgrad_ratio_[t];
        break;
      case sched::OpKind::kDpSync:
        break;  // parameter volume is slice-independent; unit ratio applies
    }
  }
  return base().ComputeTime(op) * ratio;
}

Seconds RebalancedCostModel::TransferTime(const sched::OpId& producer) const {
  double ratio = 1.0;
  if (!token_ratio_.empty() && producer.slice >= 0 &&
      producer.slice < static_cast<int>(token_ratio_.size())) {
    ratio = token_ratio_[static_cast<std::size_t>(producer.slice)];
  }
  return base().TransferTime(producer) * ratio;
}

Bytes RebalancedCostModel::ActivationBytes(const sched::OpId& forward) const {
  double ratio = 1.0;
  if (forward.chunk >= 0 && forward.chunk < static_cast<int>(unit_ratio_.size())) {
    ratio *= unit_ratio_[static_cast<std::size_t>(forward.chunk)];
  }
  if (!token_ratio_.empty() && forward.slice >= 0 &&
      forward.slice < static_cast<int>(token_ratio_.size())) {
    ratio *= token_ratio_[static_cast<std::size_t>(forward.slice)];
  }
  return static_cast<Bytes>(std::llround(static_cast<double>(base().ActivationBytes(forward)) * ratio));
}

Bytes RebalancedCostModel::ActGradBytes(const sched::OpId& backward) const {
  double ratio = 1.0;
  if (backward.chunk >= 0 && backward.chunk < static_cast<int>(unit_ratio_.size())) {
    ratio *= unit_ratio_[static_cast<std::size_t>(backward.chunk)];
  }
  if (!token_ratio_.empty() && backward.slice >= 0 &&
      backward.slice < static_cast<int>(token_ratio_.size())) {
    ratio *= token_ratio_[static_cast<std::size_t>(backward.slice)];
  }
  return static_cast<Bytes>(std::llround(static_cast<double>(base().ActGradBytes(backward)) * ratio));
}

Seconds RebalancedCostModel::DpSyncTime(const sched::OpId& bucket) const {
  // A chunk's gradient-bucket volume tracks its parameter share, which
  // moves with the layer re-partition (the latency term is scaled along
  // with it — an approximation, small against the volume term).
  double ratio = 1.0;
  if (bucket.chunk >= 0 && bucket.chunk < static_cast<int>(unit_ratio_.size())) {
    ratio = unit_ratio_[static_cast<std::size_t>(bucket.chunk)];
  }
  return base().DpSyncTime(bucket) * ratio;
}

double MitigationReport::degradation() const {
  return clean_makespan > 0 ? faulted_makespan / clean_makespan : 1.0;
}

double MitigationReport::mitigated_degradation() const {
  return clean_makespan > 0 ? mitigated_makespan / clean_makespan : 1.0;
}

double MitigationReport::improvement() const {
  return mitigated_makespan > 0 ? faulted_makespan / mitigated_makespan : 1.0;
}

MitigationReport MitigateStragglers(const sched::Schedule& schedule, const sim::CostModel& costs,
                                    const sim::FaultPlan& faults,
                                    const MitigationOptions& options) {
  const sched::PipelineProblem& problem = schedule.problem;
  faults.Validate(problem.stages);

  MitigationReport report;
  sim::EngineOptions clean_options = options.engine;
  clean_options.fault_plan = nullptr;
  const sim::SimResult clean = sim::Simulate(schedule, costs, clean_options);
  report.clean_makespan = clean.makespan;

  sim::EngineOptions faulted_options = options.engine;
  faulted_options.fault_plan = faults;  // copied into shared storage
  report.faulted = sim::Simulate(schedule, costs, faulted_options);
  report.faulted_makespan = report.faulted.makespan;

  report.profile =
      options.profile.empty() ? EstimateStageSlowdowns(clean, report.faulted) : options.profile;
  report.profile.Validate(problem.stages);

  RebalanceOptions rebalance = options.rebalance;
  if (rebalance.base_caps.empty()) {
    const int floor_cap = problem.virtual_chunks * problem.slices;
    rebalance.base_caps.resize(static_cast<std::size_t>(problem.stages));
    for (int i = 0; i < problem.stages; ++i) {
      rebalance.base_caps[static_cast<std::size_t>(i)] =
          std::max(floor_cap, sched::PeakRetainedForwards(schedule, i));
    }
  }
  report.plan = Rebalance(report.profile, problem, rebalance);

  const RebalancedCostModel mitigated_costs(costs, problem, report.plan, rebalance.config);

  sched::GeneratorOptions generator;
  generator.inflight_cap = report.plan.new_caps.empty() ? rebalance.base_caps : report.plan.new_caps;
  generator.backward_first = true;
  generator.child_count_backward_priority = true;
  generator.wgrad = schedule.deferred_wgrad ? sched::WgradPolicy::kDeferred
                                            : sched::WgradPolicy::kLowestPriority;
  generator.b_time = problem.split_backward ? 1.0 : 2.0;
  // The sched-side hook: abstract durations reflect the measured
  // slowdown times the rebalanced layer share, so the interleaving is
  // generated against the rates the mitigated run will actually see.
  generator.stage_time_scale.resize(static_cast<std::size_t>(problem.stages));
  for (int i = 0; i < problem.stages; ++i) {
    generator.stage_time_scale[static_cast<std::size_t>(i)] =
        report.profile.slowdown[static_cast<std::size_t>(i)] *
        report.plan.stage_unit_ratio(problem, i);
  }
  report.mitigated_schedule =
      sched::GenerateCapped(problem, generator, schedule.method + "+rebalanced");

  report.mitigated = sim::Simulate(report.mitigated_schedule, mitigated_costs, faulted_options);
  report.mitigated_makespan = report.mitigated.makespan;
  return report;
}

}  // namespace mepipe::core
