#include "core/svpp.h"

#include <algorithm>

#include "common/check.h"
#include "common/format.h"

namespace mepipe::core {

int MinInflight(const SvppOptions& options) {
  return options.virtual_chunks * options.slices;
}

int Table3Inflight(const SvppOptions& options) {
  const int p = options.stages;
  const int s = options.slices;
  const int v = options.virtual_chunks;
  return v * std::max(p, s) + std::min(p, s) - 1;
}

int MaxUsefulInflight(const SvppOptions& options) {
  return Table3Inflight(options) + 2 * options.virtual_chunks * options.slices;
}

sched::Schedule GenerateSvpp(const SvppOptions& options) {
  sched::PipelineProblem problem;
  problem.stages = options.stages;
  problem.virtual_chunks = options.virtual_chunks;
  problem.slices = options.slices;
  problem.micros = options.micros;
  problem.split_backward = options.split_backward;
  problem.Validate();

  const int floor = MinInflight(options);
  int f = options.max_inflight == 0 ? MaxUsefulInflight(options) : options.max_inflight;
  MEPIPE_CHECK_GE(f, floor) << "SVPP variant f=" << f << " is below the v*s floor " << floor;
  f = std::min(f, MaxUsefulInflight(options));

  sched::GeneratorOptions generator;
  generator.inflight_cap = sched::CapSchedule(options.stages, f, floor);
  generator.backward_first = true;
  generator.child_count_backward_priority = options.reschedule_backwards;
  generator.wgrad = sched::WgradPolicy::kDeferred;
  if (options.split_backward) {
    generator.b_time = 1.0;  // B is the activation-gradient half only
  }
  return GenerateCapped(problem, generator,
                        StrFormat("SVPP(v=%d,s=%d,f=%d)", options.virtual_chunks,
                                  options.slices, f));
}

}  // namespace mepipe::core
