// The surrogate planner subsystem: analytic candidate pricing for the
// strategy grid search (ROADMAP item 1).
//
// The planner's bottleneck is that every (PP, DP, CP/SPP, VP, recompute)
// candidate is priced with a full discrete-event simulation, and the
// goodput objective adds a Monte-Carlo checkpoint-interval solve on top.
// The surrogate replaces the first phase of that with a tabular
// critical-path pass over the candidate's schedule — the same list
// semantics sched::BuildScheduleTable uses, but charged with the
// candidate's real CostModel — plus closed-form Young/Daly goodput
// pricing, so 10⁴–10⁵ candidates can be ranked in seconds and the exact
// DES runs only on the top-k survivors.
//
// Pricing contract (also in DESIGN.md):
//  - Exact: per-stage program order, same-stage waits, deferred
//    weight-gradient fills (all three WgradModes), activation-budget
//    drains, running activation/act-grad memory, the monolithic DP sync,
//    and the overlapped per-bucket DP stream when the fabric is not
//    shared. For transfer-free cost models the surrogate's makespan,
//    peak memory, and bubble fraction equal the engine's bit for bit.
//  - Approximate: cross-stage transfers are charged point-to-point
//    (arrival = producer done + transfer time) without per-directed-link
//    serialization, and the overlapped DP stream ignores fabric
//    contention (dp_link_shared). Both only shift readiness, so the
//    error is bounded by the schedule's transfer contention.
//  - Not modeled: fault plans, noise, straggler rebalancing. The
//    surrogate always prices the clean run; fault-aware search uses
//    SurrogateLowerBound for pruning and the DES for measurement.
#ifndef MEPIPE_CORE_SURROGATE_H_
#define MEPIPE_CORE_SURROGATE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/iteration.h"
#include "core/resilience.h"

namespace mepipe::core {

// ---- Tabular schedule pricing ---------------------------------------------

struct TableOptions {
  sim::WgradMode wgrad_mode = sim::WgradMode::kFillGemms;
  // Per-stage activation budget (empty = unbudgeted), same semantics as
  // sim::EngineOptions::activation_budget.
  std::vector<Bytes> activation_budget;
  // Schedule the per-bucket DP sync stream against the finished table
  // (fills the dp_* fields below); without it the caller prices the
  // monolithic sync itself.
  bool dp_overlap = false;
};

// What the critical-path pass measures. Mirrors sim::SimResult's summary
// fields, minus the timeline.
struct TablePrice {
  Seconds makespan = 0;
  double bubble_ratio = 0;        // mean of per-stage 1 - busy/makespan
  Bytes peak_activation = 0;      // max over stages
  int budget_violations = 0;
  std::vector<Seconds> stage_busy;
  std::vector<Bytes> stage_peak_activation;
  // Overlapped-DP accounting (zero unless TableOptions::dp_overlap).
  Seconds dp_serialized = 0;
  Seconds dp_hidden = 0;
  Seconds dp_exposed = 0;
};

// Prices `schedule` against `costs` with the engine's list semantics but
// dense arenas, no timeline, and the approximations documented above.
// The schedule is assumed valid (generators validate; the DES re-checks
// survivors).
TablePrice PriceScheduleTable(const sched::Schedule& schedule, const sim::CostModel& costs,
                              const TableOptions& options = {});

// ---- Cost-model fingerprint + pricing cache -------------------------------

// Deterministic 64-bit digest of everything that determines a surrogate
// price besides the strategy shape: the model architecture, the cluster
// (GPU + links), TrainingCostOptions (efficiency curve probed
// behaviorally), and the pricing-relevant IterationOptions (wgrad mode,
// SVPP variant knobs, optimizer step, DP overlap). Fault plans and noise
// are deliberately excluded — the surrogate prices the clean run.
std::uint64_t CostModelFingerprint(const model::TransformerConfig& config,
                                   const hw::ClusterSpec& cluster,
                                   const IterationOptions& options);

// Fleet analogue: digests every tier (GPU, shape, links, rental rate)
// and the inter-tier link matrix (bandwidth, latency, egress price) on
// top of the model/options digest, so heterogeneous-fleet prices never
// collide with homogeneous ones or with differently-priced fleets.
std::uint64_t TopologyFingerprint(const model::TransformerConfig& config,
                                  const hw::ClusterTopology& topology,
                                  const IterationOptions& options);

// Cache key: (method, shape, batch, cost-model fingerprint, placement).
// `placement` is 0 for homogeneous searches and StagePlacement::Hash()
// for placed (heterogeneous-fleet) candidates.
struct SurrogateKey {
  Method method = Method::kSvpp;
  int pp = 1, dp = 1, cp = 1, tp = 1, vp = 1, spp = 1;
  bool recompute = false;
  int global_batch = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t placement = 0;

  friend bool operator==(const SurrogateKey&, const SurrogateKey&) = default;
};

struct SurrogateKeyHash {
  std::size_t operator()(const SurrogateKey& key) const;
};

// The surrogate's analogue of IterationResult — everything the search
// ranks on, nothing it renders.
struct SurrogateResult {
  Strategy strategy;
  bool feasible = false;
  std::string note;  // "ok", structural constraint, or OOM explanation

  int micros = 0;
  Seconds pipeline_time = 0;   // table makespan
  Seconds dp_sync_time = 0;    // exposed DP sync estimate
  Seconds iteration_time = 0;  // makespan + exposed sync + optimizer step
  double bubble_ratio = 0;

  Bytes static_memory = 0;
  Bytes peak_activation = 0;
  Bytes peak_memory = 0;
  Bytes checkpoint_shard = 0;

  bool cache_hit = false;  // served from a SurrogateCache
};

// Thread-safe pricing cache. Repeated shapes — planner re-runs, elastic
// re-plans, multi-job traffic — hit instead of re-pricing; a memoized
// Young/Daly + refinement interval solve serves the exact phase of the
// goodput search. All methods are safe to call concurrently.
class SurrogateCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t interval_hits = 0;
    std::int64_t interval_misses = 0;
  };

  std::optional<SurrogateResult> Lookup(const SurrogateKey& key);
  void Insert(const SurrogateKey& key, const SurrogateResult& result);

  // Memoized OptimalCheckpointInterval: identical (iteration_time, base,
  // options) tuples return the stored solution. A concurrent duplicate
  // solve is benign — the solver is deterministic, so both threads
  // insert the same value.
  CheckpointIntervalSolution IntervalSolve(Seconds iteration_time,
                                           const ResilienceOptions& base,
                                           const CheckpointIntervalOptions& options = {});

  Stats stats() const;
  std::size_t size() const;
  void Clear();

 private:
  struct IntervalKey {
    std::uint64_t time_bits = 0;   // iteration_time
    std::uint64_t write_bits = 0;  // checkpoint_write_cost
    std::uint64_t mtbf_bits = 0;
    std::uint64_t recovery_bits = 0;
    std::uint64_t target_bits = 0;
    std::int64_t iterations = 0;
    std::uint64_t seed = 0;
    int gpus = 0;
    int dp_replicas = 0;
    int scope = 0;
    std::uint64_t min_bits = 0;
    std::uint64_t max_bits = 0;
    int coarse_points = 0;
    int golden_iterations = 0;

    friend bool operator==(const IntervalKey&, const IntervalKey&) = default;
  };
  struct IntervalKeyHash {
    std::size_t operator()(const IntervalKey& key) const;
  };

  mutable std::mutex mu_;
  std::unordered_map<SurrogateKey, SurrogateResult, SurrogateKeyHash> entries_;
  std::unordered_map<IntervalKey, CheckpointIntervalSolution, IntervalKeyHash> intervals_;
  Stats stats_;
};

// ---- Candidate pricing ----------------------------------------------------

struct SurrogateOptions {
  // Same knobs SimulateIteration takes; fault plan / noise / rebalance
  // fields are ignored (the surrogate prices the clean run).
  IterationOptions iteration;
  // Optional shared cache (not owned; may be used from many threads).
  SurrogateCache* cache = nullptr;
};

// Builds the candidate (core::BuildCandidate) and prices it with the
// tabular pass. Infeasible candidates return feasible=false with the
// structural or OOM note, mirroring SimulateIteration.
SurrogateResult SurrogatePrice(const model::TransformerConfig& config,
                               const Strategy& strategy, const hw::ClusterSpec& cluster,
                               int global_batch, const SurrogateOptions& options = {});

// ---- Closed-form goodput --------------------------------------------------

// Analytic goodput pricing: checkpoint write cost from the shard, the
// Daly second-order interval (no Monte-Carlo refinement), and the
// closed-form overhead fraction write/T + (recovery + lost)/MTBF with a
// restart-scope-aware expected lost work (interval/2 for full-pipeline
// restarts; about half an iteration for replica-local ones). Used to
// rank candidates under the goodput objective before the exact
// SimulateTrainingRun-refined solve runs on the survivors.
struct SurrogateGoodput {
  Seconds checkpoint_interval = 0;    // Daly closed form
  Seconds checkpoint_write_cost = 0;
  double goodput = 0;                 // 1 - closed-form overhead, clamped
  Seconds effective_iteration_time = 0;  // iteration_time / goodput
};

SurrogateGoodput ClosedFormGoodput(Seconds iteration_time, Bytes checkpoint_shard,
                                   const ResilienceOptions& resilience,
                                   const CheckpointCostOptions& checkpoint_cost = {});

// ---- Fault-aware pruning bound --------------------------------------------

// Lower bound on a candidate's iteration time under `options` (including
// its fault plan): the busiest stage must execute its F/B/W work back to
// back, with straggler windows capping the rate at 1/slowdown — the
// bound inverts each stage's work-capacity function over the plan's
// windows. Fail-stops and link faults only add time and are ignored, so
// the bound stays sound. Clean runs reduce to the compute-only bound
// (busiest stage + serialized DP sync + optimizer step). Returns nullopt
// when the strategy is structurally inapplicable. Not valid under
// straggler rebalancing (search_rebalanced), which moves work across
// stages.
std::optional<Seconds> SurrogateLowerBound(const model::TransformerConfig& config,
                                           const Strategy& strategy,
                                           const hw::ClusterSpec& cluster, int global_batch,
                                           const IterationOptions& options);

}  // namespace mepipe::core

#endif  // MEPIPE_CORE_SURROGATE_H_
