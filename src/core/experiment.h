// The paper's measurement protocol (§7.1): "Each task is executed for
// 100 iterations … We measure the average time of the last 10 iterations
// as the result." This harness runs a strategy for many jittered
// iterations (sim/noise) and reports the tail statistics an experiment
// section would quote.
#ifndef MEPIPE_CORE_EXPERIMENT_H_
#define MEPIPE_CORE_EXPERIMENT_H_

#include <vector>

#include "core/iteration.h"

namespace mepipe::core {

struct ExperimentOptions {
  int iterations = 100;    // total simulated iterations
  int tail = 10;           // how many final iterations to average
  double noise_sigma = 0.03;  // per-op lognormal jitter (~3%)
  std::uint64_t seed = 1;
  IterationOptions iteration;
};

struct ExperimentReport {
  Strategy strategy;
  bool feasible = false;
  std::string note;

  int iterations = 0;
  Seconds mean_iteration = 0;   // tail mean — the paper's reported value
  Seconds stddev_iteration = 0; // tail standard deviation
  Seconds min_iteration = 0;    // over the tail
  Seconds max_iteration = 0;
  std::vector<Seconds> all_iterations;  // full series, warmup included
};

// Runs the protocol. The schedule and deterministic per-op costs are
// resolved once; each iteration re-executes under fresh noise. The first
// iteration's feasibility gates the whole experiment, matching how a
// real run either fits in memory or dies at startup.
ExperimentReport RunExperiment(const model::TransformerConfig& config,
                               const Strategy& strategy, const hw::ClusterSpec& cluster,
                               int global_batch, const ExperimentOptions& options = {});

}  // namespace mepipe::core

#endif  // MEPIPE_CORE_EXPERIMENT_H_
