// Closed-form bubble-ratio and activation-memory expressions for every
// scheduling method the paper analyzes — a direct transcription of
// Table 3 (§4.4), under its assumptions: evenly partitioned computation,
// balanced stages, communication ignored, and (for the capped methods)
// the lowest-bubble / highest-memory variant.
//
// Activation memory is expressed as a fraction of A, the activation
// footprint of one full sample through the whole model (Table 1).
#ifndef MEPIPE_CORE_ANALYTIC_H_
#define MEPIPE_CORE_ANALYTIC_H_

#include <optional>
#include <string>

namespace mepipe::core {

enum class Method {
  kGPipe,
  kDapple,   // 1F1B
  kVpp,      // Megatron interleaved
  kHanayo,   // wave-like
  kTeraPipe, // sequence pipeline, GPipe-like ordering
  kZb1p,       // zero bubble (1F1B extension)
  kZbv,        // zero bubble (V-shape), handcrafted construction
  kZbvCapped,  // ZBV's former capped-generator approximation
  kSvpp,       // MEPipe
  kSynth,      // budgeted building-block synthesizer (sched/synth.h)
};

const char* ToString(Method method);

struct AnalyticInput {
  int p = 1;  // pipeline stages
  int v = 1;  // virtual pipeline size
  int s = 1;  // sequence pipeline size (slices)
  int n = 1;  // micro-batches
};

struct AnalyticResult {
  double bubble_ratio = 0;
  // Peak activation memory of the worst stage, as a fraction of A.
  double activation_fraction = 0;
};

// Table 3 entry for `method`; nullopt when the table marks the regime
// unsupported (e.g. VPP with n < p).
std::optional<AnalyticResult> Analyze(Method method, const AnalyticInput& input);

}  // namespace mepipe::core

#endif  // MEPIPE_CORE_ANALYTIC_H_
