#include "core/profiler.h"

#include <algorithm>

#include "common/format.h"

namespace mepipe::core {

Profile Profile::FromResult(const sim::SimResult& result) {
  Profile profile;
  for (const sim::OpSpan& span : result.timeline) {
    if (span.is_transfer) {
      continue;
    }
    const Key key{span.op.kind, span.op.slice, span.op.chunk};
    OpStats& stats = profile.stats_[key];
    const Seconds duration = span.end - span.start;
    if (stats.count == 0) {
      stats.min = duration;
      stats.max = duration;
    } else {
      stats.min = std::min(stats.min, duration);
      stats.max = std::max(stats.max, duration);
    }
    ++stats.count;
    stats.total += duration;
  }
  return profile;
}

const OpStats* Profile::Find(sched::OpKind kind, int slice, int chunk) const {
  const auto it = stats_.find({kind, slice, chunk});
  return it == stats_.end() ? nullptr : &it->second;
}

Seconds Profile::MeanOf(sched::OpKind kind) const {
  Seconds total = 0;
  int count = 0;
  for (const auto& [key, stats] : stats_) {
    if (key.kind == kind) {
      total += stats.total;
      count += stats.count;
    }
  }
  return count > 0 ? total / count : 0.0;
}

std::string Profile::Report() const {
  std::string out = "profile: (kind, slice, chunk) -> mean [min, max] x count\n";
  for (const auto& [key, stats] : stats_) {
    out += StrFormat("  %-2s t=%d g=%-2d  %10.3f ms [%10.3f, %10.3f] x%d\n",
                     ToString(key.kind), key.slice, key.chunk, ToMilliseconds(stats.mean()),
                     ToMilliseconds(stats.min), ToMilliseconds(stats.max), stats.count);
  }
  return out;
}

Seconds ProfiledCostModel::ComputeTime(const sched::OpId& op) const {
  if (const OpStats* stats = profile_.Find(op.kind, op.slice, op.chunk)) {
    return stats->mean();
  }
  return fallback_.ComputeTime(op);
}

Seconds ProfiledCostModel::TransferTime(const sched::OpId& producer) const {
  return fallback_.TransferTime(producer);
}

Bytes ProfiledCostModel::ActivationBytes(const sched::OpId& forward) const {
  return fallback_.ActivationBytes(forward);
}

Bytes ProfiledCostModel::ActGradBytes(const sched::OpId& backward) const {
  return fallback_.ActGradBytes(backward);
}

int ProfiledCostModel::WeightGradGemmCount(const sched::OpId& wgrad) const {
  return fallback_.WeightGradGemmCount(wgrad);
}

}  // namespace mepipe::core
