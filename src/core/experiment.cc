#include "core/experiment.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mepipe::core {

ExperimentReport RunExperiment(const model::TransformerConfig& config,
                               const Strategy& strategy, const hw::ClusterSpec& cluster,
                               int global_batch, const ExperimentOptions& options) {
  MEPIPE_CHECK_GE(options.iterations, 1);
  MEPIPE_CHECK_GE(options.tail, 1);
  MEPIPE_CHECK_LE(options.tail, options.iterations);

  ExperimentReport report;
  report.strategy = strategy;

  IterationOptions iteration = options.iteration;
  iteration.keep_timeline = false;
  iteration.noise_sigma = options.noise_sigma;

  for (int i = 0; i < options.iterations; ++i) {
    iteration.noise_seed = options.seed * 1000003ULL + static_cast<std::uint64_t>(i);
    const IterationResult result =
        SimulateIteration(config, strategy, cluster, global_batch, iteration);
    if (i == 0) {
      report.feasible = result.feasible;
      report.note = result.note;
      if (!result.feasible) {
        return report;  // a real run would die at startup
      }
    }
    report.all_iterations.push_back(result.iteration_time);
  }
  report.iterations = options.iterations;

  const auto tail_begin = report.all_iterations.end() - options.tail;
  double sum = 0;
  double sum_sq = 0;
  report.min_iteration = *tail_begin;
  report.max_iteration = *tail_begin;
  for (auto it = tail_begin; it != report.all_iterations.end(); ++it) {
    sum += *it;
    sum_sq += *it * *it;
    report.min_iteration = std::min(report.min_iteration, *it);
    report.max_iteration = std::max(report.max_iteration, *it);
  }
  const double k = static_cast<double>(options.tail);
  report.mean_iteration = sum / k;
  report.stddev_iteration =
      std::sqrt(std::max(0.0, sum_sq / k - report.mean_iteration * report.mean_iteration));
  return report;
}

}  // namespace mepipe::core
