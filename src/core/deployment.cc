#include "core/deployment.h"

#include <limits>

#include "common/check.h"

namespace mepipe::core {

double FailureOverheadFraction(int gpus, const ReliabilityOptions& options) {
  MEPIPE_CHECK_GT(gpus, 0);
  MEPIPE_CHECK_GT(options.mtbf_per_1000_gpus, 0.0);
  MEPIPE_CHECK_GT(options.checkpoint_interval, 0.0);
  const double mtbf = options.mtbf_per_1000_gpus * 1000.0 / static_cast<double>(gpus);
  // Each failure costs recovery plus on average half a checkpoint
  // interval of lost work; each interval costs one checkpoint write.
  const double per_failure = options.recovery_time + options.checkpoint_interval / 2.0;
  const double failure_fraction = per_failure / mtbf;
  const double checkpoint_fraction =
      options.checkpoint_write_cost / options.checkpoint_interval;
  return failure_fraction + checkpoint_fraction;
}

namespace {

double ClusterPowerWatts(const hw::ClusterSpec& cluster, const OperatingCostOptions& options) {
  const double gpu_power =
      static_cast<double>(cluster.world_size()) * cluster.gpu.board_power_w;
  const double host_power = static_cast<double>(cluster.nodes) * options.host_power_w;
  return (gpu_power + host_power) * options.pue;
}

double AcquisitionUsd(const hw::ClusterSpec& cluster) {
  return static_cast<double>(cluster.nodes) * cluster.gpu.server_price_usd;
}

}  // namespace

double OperatingCostUsd(const hw::ClusterSpec& cluster, Seconds duration,
                        const OperatingCostOptions& options) {
  const double kwh = ClusterPowerWatts(cluster, options) / 1000.0 * duration / 3600.0;
  return kwh * options.electricity_usd_per_kwh;
}

double CostParityYears(const hw::ClusterSpec& cheap, const hw::ClusterSpec& reference,
                       const OperatingCostOptions& options) {
  const double acquisition_gap = AcquisitionUsd(reference) - AcquisitionUsd(cheap);
  const double seconds_per_year = 365.0 * 24.0 * 3600.0;
  const double power_gap_per_year =
      OperatingCostUsd(cheap, seconds_per_year, options) -
      OperatingCostUsd(reference, seconds_per_year, options);
  if (power_gap_per_year <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  // No acquisition advantage to erase: the power-hungry cluster is not
  // actually cheaper to buy, so parity holds from day one. Clamp instead
  // of returning a (meaningless) negative horizon.
  if (acquisition_gap <= 0.0) {
    return 0.0;
  }
  return acquisition_gap / power_gap_per_year;
}

Seconds CheckpointWriteCost(Bytes worst_shard_bytes, const CheckpointCostOptions& options) {
  MEPIPE_CHECK_GE(worst_shard_bytes, 0);
  MEPIPE_CHECK_GT(options.write_bandwidth_bytes_per_s, 0.0);
  MEPIPE_CHECK_GE(options.barrier, 0.0);
  return options.barrier +
         static_cast<double>(worst_shard_bytes) / options.write_bandwidth_bytes_per_s;
}

double TotalCostUsd(const hw::ClusterSpec& cluster, double years,
                    const OperatingCostOptions& options) {
  const double seconds = years * 365.0 * 24.0 * 3600.0;
  return AcquisitionUsd(cluster) + OperatingCostUsd(cluster, seconds, options);
}

double FleetHourlyCostUsd(const hw::ClusterTopology& topology) {
  double total = 0;
  for (const hw::DeviceTier& tier : topology.tiers) {
    total += static_cast<double>(tier.world_size()) * tier.usd_per_gpu_hour;
  }
  return total;
}

double PlacementHourlyCostUsd(const hw::ClusterTopology& topology,
                              const hw::StagePlacement& placement,
                              const hw::ParallelLayout& layout) {
  const double group = static_cast<double>(layout.dp) * layout.cp * layout.tp;
  double total = 0;
  for (int stage = 0; stage < placement.stages(); ++stage) {
    total += group * topology.tier(placement.tier_of(stage)).usd_per_gpu_hour;
  }
  return total;
}

double EgressCostUsd(Bytes bytes, double usd_per_gb) {
  MEPIPE_CHECK_GE(bytes, 0);
  MEPIPE_CHECK_GE(usd_per_gb, 0.0);
  return static_cast<double>(bytes) / 1e9 * usd_per_gb;
}

}  // namespace mepipe::core
