#include "core/training_cost.h"

#include <algorithm>

#include "common/check.h"
#include "common/format.h"
#include "model/slicing.h"

namespace mepipe::core {
namespace {

double D(std::int64_t x) { return static_cast<double>(x); }

}  // namespace

std::string Strategy::ToString() const {
  std::string out = StrFormat("%s(pp=%d,dp=%d", core::ToString(method), pp, dp);
  if (cp > 1) {
    out += StrFormat(",cp=%d", cp);
  }
  if (tp > 1) {
    out += StrFormat(",tp=%d", tp);
  }
  if (vp > 1) {
    out += StrFormat(",vp=%d", vp);
  }
  if (spp > 1) {
    out += StrFormat(",spp=%d", spp);
  }
  if (recompute) {
    out += ",recomp";
  }
  return out + ")";
}

TrainingCostModel::TrainingCostModel(const model::TransformerConfig& config,
                                     const Strategy& strategy, const hw::ClusterSpec& cluster,
                                     const sched::PipelineProblem& problem,
                                     const TrainingCostOptions& options)
    : config_(config),
      strategy_(strategy),
      cluster_(cluster),
      problem_(problem),
      options_(options),
      comm_(cluster) {
  MEPIPE_CHECK_EQ(problem_.stages, strategy_.pp);
  MEPIPE_CHECK_EQ(problem_.virtual_chunks, strategy_.vp);
  MEPIPE_CHECK_EQ(problem_.slices, strategy_.spp);
  MEPIPE_CHECK(!(strategy_.cp > 1 && strategy_.spp > 1))
      << "CP and SPP both slice samples; the paper (and this model) use one at a time";
  MEPIPE_CHECK(!(strategy_.recompute && problem_.split_backward))
      << "recomputation is incompatible with split B/W (§7.1)";
  MEPIPE_CHECK_EQ(config_.seq_len % strategy_.cp, 0);

  const int num_chunks = problem_.num_chunks();
  const std::int64_t units = config_.partition_units();
  MEPIPE_CHECK_EQ(units % num_chunks, 0)
      << config_.name << ": " << units << " partition units not divisible by " << num_chunks
      << " chunks";
  const int units_per_chunk = static_cast<int>(units / num_chunks);
  MEPIPE_CHECK_GE(units_per_chunk, 1);

  // --- chunk shapes -------------------------------------------------------
  chunks_.resize(static_cast<std::size_t>(num_chunks));
  for (int g = 0; g < num_chunks; ++g) {
    ChunkShape& shape = chunks_[static_cast<std::size_t>(g)];
    shape.transformer_layers = units_per_chunk;
    if (g == 0) {
      shape.has_embedding = true;
      --shape.transformer_layers;
    }
    if (g == num_chunks - 1) {
      shape.has_head = true;
      --shape.transformer_layers;
    }
    MEPIPE_CHECK_GE(shape.transformer_layers, 0);
  }

  // --- slice spans ---------------------------------------------------------
  const std::int64_t tokens_per_rank = config_.seq_len / strategy_.cp;
  if (options_.balanced_slices && strategy_.spp > 1) {
    MEPIPE_CHECK_EQ(strategy_.cp, 1) << "balanced slicing applies to SPP, not CP";
    spans_ = model::AlignSlices(
        model::BalancedSlices(config_, tokens_per_rank, strategy_.spp),
        options_.slice_alignment);
  } else {
    spans_ = model::UniformSlices(tokens_per_rank, strategy_.spp);
  }

  // --- per (chunk, slice) durations ---------------------------------------
  const double tp = D(strategy_.tp);
  const auto kernel_time = [&](Flops flops, std::int64_t tokens) -> Seconds {
    if (flops <= 0) {
      return 0.0;
    }
    const std::int64_t hidden_eff = std::max<std::int64_t>(1, config_.hidden / strategy_.tp);
    // Megatron's CP splits each rank's tokens into two symmetric chunks
    // for load balance (§7.3), so kernels see half the rows.
    const std::int64_t eff_tokens = strategy_.cp > 1 ? std::max<std::int64_t>(1, tokens / 2)
                                                     : tokens;
    const double eff = options_.efficiency.ShapeEfficiency(hidden_eff, eff_tokens) *
                       options_.efficiency.AlignmentEfficiency(eff_tokens);
    return flops / (cluster_.gpu.sustained_matmul_flops() * eff);
  };

  forward_time_.assign(static_cast<std::size_t>(num_chunks), {});
  backward_time_.assign(static_cast<std::size_t>(num_chunks), {});
  wgrad_time_.assign(static_cast<std::size_t>(num_chunks), {});
  wgemm_time_.assign(static_cast<std::size_t>(num_chunks), {});

  for (int g = 0; g < num_chunks; ++g) {
    const ChunkShape& shape = chunks_[static_cast<std::size_t>(g)];
    auto& f_row = forward_time_[static_cast<std::size_t>(g)];
    auto& b_row = backward_time_[static_cast<std::size_t>(g)];
    auto& w_row = wgrad_time_[static_cast<std::size_t>(g)];
    auto& wg_row = wgemm_time_[static_cast<std::size_t>(g)];

    for (int t = 0; t < strategy_.spp; ++t) {
      const model::SliceSpan span = spans_[static_cast<std::size_t>(t)];
      const std::int64_t tokens = span.tokens;

      // Per-layer FLOPs of this slice. With CP the sample is split across
      // ranks: GEMMs see tokens/cp rows; the (globally causal) attention
      // work is balanced symmetrically, i.e. 1/cp of the whole sample's.
      model::LayerFlops layer;
      if (strategy_.cp == 1) {
        layer = model::ForwardLayerFlops(config_, span);
      } else {
        layer.gemm = model::ForwardLayerFlops(config_, {0, tokens}).gemm;
        layer.attention =
            model::ForwardLayerFlops(config_, {0, config_.seq_len}).attention / D(strategy_.cp);
      }

      const double layers = D(shape.transformer_layers);
      Flops f_flops = layers * layer.total() / tp;
      Flops b_flops = layers * (layer.gemm + 2.0 * layer.attention) / tp;
      Flops w_flops = layers * layer.gemm / tp;
      if (shape.has_embedding) {
        f_flops += model::ForwardEmbeddingFlops(config_, tokens);
      }
      if (shape.has_head) {
        f_flops += model::ForwardHeadFlops(config_, tokens) / tp;
        b_flops += model::BackwardHeadFlops(config_, tokens) / tp;
        w_flops += model::WeightGradHeadFlops(config_, tokens) / tp;
      }

      // Communication serialized with the op (conservatively): CP's KV
      // ring per layer, TP's two all-reduces per layer. The backward pass
      // circulates K/V again *and* returns dK/dV partials — 2× the
      // forward exchange volume.
      const Seconds cp_comm =
          layers * comm_.CpKvExchangePerLayer(config_, tokens, strategy_.layout());
      const Seconds cp_comm_backward = 2.0 * cp_comm;
      const Seconds tp_comm =
          layers * comm_.TpAllReducePerLayer(config_, tokens, strategy_.layout());

      Seconds f_time = kernel_time(f_flops, tokens) + cp_comm + tp_comm + options_.op_overhead;
      Seconds b_time =
          kernel_time(b_flops, tokens) + cp_comm_backward + tp_comm + options_.op_overhead;
      if (strategy_.recompute) {
        b_time += kernel_time(f_flops, tokens) + cp_comm + tp_comm;
      }
      if (!problem_.split_backward) {
        b_time += kernel_time(w_flops, tokens);
      }
      const Seconds w_time = kernel_time(w_flops, tokens) + options_.op_overhead;

      f_row.push_back(f_time);
      b_row.push_back(b_time);
      w_row.push_back(w_time);

      // Per-GEMM decomposition of W (§5): 7 GEMMs per transformer layer
      // plus one for the head projection.
      std::vector<Seconds> gemms;
      const std::vector<Flops> layer_gemms = model::WeightGradGemms(config_, tokens);
      for (int l = 0; l < shape.transformer_layers; ++l) {
        for (const Flops flops : layer_gemms) {
          gemms.push_back(kernel_time(flops / tp, tokens) + options_.op_overhead / 8.0);
        }
      }
      if (shape.has_head) {
        gemms.push_back(kernel_time(model::WeightGradHeadFlops(config_, tokens) / tp, tokens) +
                        options_.op_overhead / 8.0);
      }
      if (gemms.empty()) {
        gemms.push_back(w_time);  // embedding-only chunk: a single tiny task
      }
      wg_row.push_back(std::move(gemms));
    }
  }

  // --- per-stage / per-chunk parameter bytes -------------------------------
  param_bytes_per_stage_.assign(static_cast<std::size_t>(problem_.stages), 0);
  param_bytes_per_chunk_.assign(static_cast<std::size_t>(num_chunks), 0);
  for (int g = 0; g < num_chunks; ++g) {
    const ChunkShape& shape = chunks_[static_cast<std::size_t>(g)];
    std::int64_t params =
        static_cast<std::int64_t>(shape.transformer_layers) * config_.params_per_layer();
    if (shape.has_embedding) {
      params += config_.embedding_params();
    }
    if (shape.has_head) {
      params += config_.head_params();
    }
    const Bytes bytes = params * options_.memory.bytes_per_param / strategy_.tp;
    param_bytes_per_chunk_[static_cast<std::size_t>(g)] = bytes;
    param_bytes_per_stage_[static_cast<std::size_t>(problem_.stage_of_chunk(g))] += bytes;
  }
}

std::int64_t TrainingCostModel::SliceTokens(int slice) const {
  return spans_[static_cast<std::size_t>(slice)].tokens;
}

const TrainingCostModel::ChunkShape& TrainingCostModel::Shape(int chunk) const {
  return chunks_[static_cast<std::size_t>(chunk)];
}

Seconds TrainingCostModel::ComputeTime(const sched::OpId& op) const {
  const auto g = static_cast<std::size_t>(op.chunk);
  const auto t = static_cast<std::size_t>(op.slice);
  switch (op.kind) {
    case sched::OpKind::kForward:
      return forward_time_[g][t];
    case sched::OpKind::kBackward:
      return backward_time_[g][t];
    case sched::OpKind::kWeightGrad:
      return wgrad_time_[g][t];
    case sched::OpKind::kWeightGradGemm: {
      const auto& gemms = wgemm_time_[g][t];
      MEPIPE_CHECK_GE(op.gemm, 0);
      MEPIPE_CHECK_LT(static_cast<std::size_t>(op.gemm), gemms.size());
      return gemms[static_cast<std::size_t>(op.gemm)];
    }
    case sched::OpKind::kDpSync:
      return DpSyncTime(op);  // comm op; the engine prices it via DpSyncTime
  }
  return 0.0;
}

Seconds TrainingCostModel::DpSyncTime(const sched::OpId& bucket) const {
  return comm_.DpGradientSync(param_bytes_per_chunk_[static_cast<std::size_t>(bucket.chunk)],
                              strategy_.layout());
}

Seconds TrainingCostModel::TransferTime(const sched::OpId& producer) const {
  const Bytes bytes =
      model::BoundaryBytesPerToken(config_) * SliceTokens(producer.slice);
  return comm_.PipelineP2p(bytes, strategy_.layout());
}

Bytes TrainingCostModel::ActivationBytes(const sched::OpId& forward) const {
  const ChunkShape& shape = Shape(forward.chunk);
  const Bytes per_token = strategy_.recompute
                              ? model::LayerActivationBytesPerTokenRecompute(config_)
                              : model::LayerActivationBytesPerToken(config_);
  return per_token * SliceTokens(forward.slice) * shape.transformer_layers / strategy_.tp;
}

Bytes TrainingCostModel::ActGradBytes(const sched::OpId& backward) const {
  const ChunkShape& shape = Shape(backward.chunk);
  return model::LayerActGradBytesPerToken(config_) * SliceTokens(backward.slice) *
         shape.transformer_layers / strategy_.tp;
}

int TrainingCostModel::WeightGradGemmCount(const sched::OpId& wgrad) const {
  return static_cast<int>(
      wgemm_time_[static_cast<std::size_t>(wgrad.chunk)][static_cast<std::size_t>(wgrad.slice)]
          .size());
}

Bytes TrainingCostModel::StaticMemory(int stage) const {
  const Bytes params = param_bytes_per_stage_[static_cast<std::size_t>(stage)];
  // bf16 params + bf16 grads + sharded mixed-precision optimizer (§7.4).
  const Bytes grads = params * options_.memory.bytes_per_grad / options_.memory.bytes_per_param;
  const std::int64_t param_count = params / options_.memory.bytes_per_param;
  // ZeRO-1 shards the optimizer over Megatron's distributed-optimizer
  // group: all dp·cp ranks holding identical parameters (§7.2).
  const Bytes optimizer = param_count * options_.memory.optimizer_bytes_per_param /
                          (strategy_.dp * strategy_.cp);
  Bytes temporary = options_.memory.fixed_workspace;
  const int head_stage = problem_.stage_of_chunk(problem_.num_chunks() - 1);
  if (stage == head_stage) {
    std::int64_t max_tokens = 0;
    for (const auto& span : spans_) {
      max_tokens = std::max(max_tokens, span.tokens);
    }
    temporary += model::LogitsTemporaryBytes(config_, max_tokens) / strategy_.tp;
  }
  return params + grads + optimizer + temporary;
}

Bytes TrainingCostModel::MaxStaticMemory() const {
  Bytes max_bytes = 0;
  for (int stage = 0; stage < problem_.stages; ++stage) {
    max_bytes = std::max(max_bytes, StaticMemory(stage));
  }
  return max_bytes;
}

Bytes TrainingCostModel::CheckpointShardBytes() const {
  Bytes worst = 0;
  for (const Bytes params : param_bytes_per_stage_) {
    const std::int64_t param_count = params / options_.memory.bytes_per_param;
    const Bytes optimizer_shard = param_count * options_.memory.optimizer_bytes_per_param /
                                  (strategy_.dp * strategy_.cp);
    // The dp-rank-0 writer of the biggest stage pays params + its shard.
    worst = std::max(worst, params + optimizer_shard);
  }
  return worst;
}

Bytes TrainingCostModel::CheckpointStateBytes() const {
  Bytes total = 0;
  for (const Bytes params : param_bytes_per_stage_) {
    const std::int64_t param_count = params / options_.memory.bytes_per_param;
    total += params + param_count * options_.memory.optimizer_bytes_per_param;
  }
  return total;
}

Seconds TrainingCostModel::DpSyncTime() const {
  Seconds worst = 0;
  for (const Bytes params : param_bytes_per_stage_) {
    worst = std::max(worst, comm_.DpGradientSync(params, strategy_.layout()));
  }
  return worst;
}

Seconds TrainingCostModel::StageDpSyncTime(int stage) const {
  return comm_.DpGradientSync(param_bytes_per_stage_[static_cast<std::size_t>(stage)],
                              strategy_.layout());
}

Bytes TrainingCostModel::StageParamBytes(int stage) const {
  return param_bytes_per_stage_[static_cast<std::size_t>(stage)];
}

Bytes TrainingCostModel::ChunkParamBytes(int chunk) const {
  return param_bytes_per_chunk_[static_cast<std::size_t>(chunk)];
}

Bytes TrainingCostModel::BoundaryBytes(int slice) const {
  return model::BoundaryBytesPerToken(config_) * SliceTokens(slice);
}

Bytes TrainingCostModel::PerForwardActivationBytes() const {
  Bytes worst = 0;
  for (int g = 0; g < problem_.num_chunks(); ++g) {
    for (int t = 0; t < problem_.slices; ++t) {
      worst = std::max(worst, ActivationBytes({sched::OpKind::kForward, 0, t, g}));
    }
  }
  return worst;
}

}  // namespace mepipe::core
