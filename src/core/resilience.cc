#include "core/resilience.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace mepipe::core {

void ResilienceOptions::Validate() const {
  MEPIPE_CHECK_GT(gpus, 0);
  if (restart_scope == sim::RestartScope::kDpReplicaLocal) {
    MEPIPE_CHECK_GE(dp_replicas, 1)
        << "kDpReplicaLocal requires dp_replicas >= 1 (dp_replicas == 1 falls "
        << "back to the full-pipeline restore; fewer replicas than one is "
        << "not a job)";
  } else {
    MEPIPE_CHECK_GE(dp_replicas, 1);
  }
  MEPIPE_CHECK_GT(reliability.mtbf_per_1000_gpus, 0.0);
  MEPIPE_CHECK_GT(reliability.checkpoint_interval, 0.0);
  MEPIPE_CHECK_GE(reliability.recovery_time, 0.0);
  MEPIPE_CHECK_GE(reliability.checkpoint_write_cost, 0.0);
}

ResilienceMetrics SimulateTrainingRun(Seconds iteration_time,
                                      const ResilienceOptions& options) {
  MEPIPE_CHECK_GT(iteration_time, 0.0);
  options.Validate();
  const ReliabilityOptions& rel = options.reliability;

  const Seconds target = options.target_useful_time > 0
                             ? options.target_useful_time
                             : static_cast<Seconds>(options.iterations) * iteration_time;
  MEPIPE_CHECK_GT(target, 0.0) << "nothing to simulate";

  const Seconds mtbf =
      rel.mtbf_per_1000_gpus * 1000.0 / static_cast<double>(options.gpus);
  SplitMixRng rng(options.seed);
  const bool replica_local =
      options.restart_scope == sim::RestartScope::kDpReplicaLocal &&
      options.dp_replicas > 1;

  ResilienceMetrics m;
  m.iteration_time = iteration_time;

  Seconds wall = 0;       // elapsed cluster time, stalls included
  Seconds useful = 0;     // durable + tentative training progress
  Seconds ckpt = 0;       // progress covered by the last durable checkpoint
  // Wall-clock time to the next failure: checkpoint writes and recovery
  // stalls tick it down just like forward progress does, so failures can
  // strike mid-write (aborting the checkpoint) and mid-recovery
  // (restarting the recovery).
  Seconds next_fail = rng.NextExponential(mtbf);

  // The run fails to converge when the cluster MTBF is so short that no
  // checkpoint interval ever completes; bound the restart count so such
  // configurations surface as an error instead of a hung loop.
  const double expected_failures = target / mtbf + 10.0;

  const auto record_failure = [&](Seconds lost) {
    if (m.failures.size() < options.max_failure_records) {
      const auto iteration = static_cast<std::int64_t>(useful / iteration_time);
      m.failures.push_back({wall, lost, rel.recovery_time, iteration,
                            useful - static_cast<Seconds>(iteration) * iteration_time});
    }
  };

  // Hardware failure at the current wall instant: record it, roll
  // progress back to the restore target, then stall for detection +
  // restart. The recovery stall runs on the wall clock too — a failure
  // striking mid-recovery loses nothing further (progress is already
  // rolled back) but restarts the recovery from scratch.
  const auto fail = [&]() {
    Seconds restore = ckpt;
    if (replica_local) {
      // Surviving replicas hold the state of the last completed
      // iteration (the last DP sync point); the lost replica restores
      // from a peer and replays only the interrupted iteration.
      const Seconds sync =
          std::floor(useful / iteration_time + 1e-9) * iteration_time;
      restore = std::max(restore, std::min(sync, useful));
    }
    const Seconds lost = useful - restore;
    record_failure(lost);
    useful = restore;
    m.lost_time += lost;
    ++m.restarts;
    MEPIPE_CHECK_LT(m.restarts, 100.0 * expected_failures)
        << "MTBF " << mtbf << "s is too short for the run to make durable "
        << "progress past its " << rel.checkpoint_interval << "s checkpoint interval";
    next_fail = rng.NextExponential(mtbf);
    while (next_fail <= rel.recovery_time) {
      wall += next_fail;
      m.recovery_time += next_fail;
      record_failure(0.0);
      ++m.restarts;
      MEPIPE_CHECK_LT(m.restarts, 100.0 * expected_failures)
          << "MTBF " << mtbf << "s is shorter than the " << rel.recovery_time
          << "s recovery stall; the run can never come back up";
      next_fail = rng.NextExponential(mtbf);
    }
    wall += rel.recovery_time;
    m.recovery_time += rel.recovery_time;
    next_fail -= rel.recovery_time;
  };

  while (useful < target) {
    const Seconds to_ckpt = ckpt + rel.checkpoint_interval - useful;
    const Seconds to_done = target - useful;
    const Seconds run = std::min({to_ckpt, to_done, next_fail});
    wall += run;
    useful += run;
    next_fail -= run;
    if (next_fail <= 0.0) {
      fail();
    } else if (run == to_ckpt && useful < target) {
      if (next_fail <= rel.checkpoint_write_cost) {
        // Failure strikes mid-write: the elapsed write time is spent but
        // the checkpoint never becomes durable.
        wall += next_fail;
        m.checkpoint_time += next_fail;
        next_fail = 0.0;
        ++m.checkpoints_aborted;
        fail();
      } else {
        wall += rel.checkpoint_write_cost;
        next_fail -= rel.checkpoint_write_cost;
        m.checkpoint_time += rel.checkpoint_write_cost;
        ckpt = useful;
        ++m.checkpoints_written;
      }
    }
  }

  m.wall_time = wall;
  m.useful_time = useful;
  // Count completed iterations exactly: float accumulation of `useful`
  // can land a hair under an iteration boundary, so snap near-integer
  // quotients before truncating.
  const double iterations = useful / iteration_time;
  const double rounded = std::nearbyint(iterations);
  m.iterations_completed = std::abs(iterations - rounded) <= 1e-6 * std::max(1.0, rounded)
                               ? static_cast<std::int64_t>(rounded)
                               : static_cast<std::int64_t>(iterations);
  m.goodput = wall > 0 ? useful / wall : 1.0;
  m.overhead_fraction = 1.0 - m.goodput;
  return m;
}

ResilienceMetrics SimulateTrainingRun(const sched::Schedule& schedule,
                                      const sim::CostModel& costs,
                                      const ResilienceOptions& options) {
  sim::EngineOptions engine_options;
  const sim::SimResult clean = sim::Simulate(schedule, costs, engine_options);
  return SimulateTrainingRun(clean.makespan, options);
}

sim::FaultPlan FaultPlanForFailure(const FailureRecord& failure, Seconds iteration_time,
                                   const ReliabilityOptions& reliability,
                                   sim::RestartScope scope) {
  MEPIPE_CHECK_GT(iteration_time, 0.0);
  sim::FaultPlan plan;
  // Iteration-local view: restart from the iteration start (the implicit
  // t=0 checkpoint — under replica scope also the last DP sync point),
  // stalled for the run-level detection + restart cost.
  const Seconds offset =
      std::clamp(failure.iteration_offset, 0.0, iteration_time);
  plan.fail_stops.push_back({/*stage=*/0, offset,
                             /*detection_delay=*/0.0,
                             /*restart_time=*/reliability.recovery_time});
  plan.restart_scope = scope;
  if (scope == sim::RestartScope::kDpReplicaLocal) {
    plan.sync_points.push_back(0.0);
  }
  return plan;
}

CheckpointIntervalSolution OptimalCheckpointInterval(
    Seconds iteration_time, const ResilienceOptions& base,
    const CheckpointIntervalOptions& options) {
  MEPIPE_CHECK_GT(iteration_time, 0.0);
  // Validate the base options before the goodput scan: goodput_at below
  // deliberately swallows CheckError for intervals the MTBF cannot
  // sustain, which would otherwise also swallow genuinely malformed
  // options (e.g. kDpReplicaLocal with dp_replicas < 1) into a silent
  // all-zero-goodput search. The checkpoint interval itself is the
  // unknown being solved for, so it is exempted from the check.
  {
    ResilienceOptions probe = base;
    probe.reliability.checkpoint_interval =
        std::max(probe.reliability.checkpoint_interval, 1.0);
    probe.Validate();
  }
  const Seconds w = base.reliability.checkpoint_write_cost;
  MEPIPE_CHECK_GT(w, 0.0) << "a free checkpoint has no optimal interval";
  MEPIPE_CHECK_GE(options.coarse_points, 3);
  MEPIPE_CHECK_GE(options.golden_iterations, 0);

  CheckpointIntervalSolution sol;
  sol.mtbf = base.reliability.mtbf_per_1000_gpus * 1000.0 /
             static_cast<double>(base.gpus);
  sol.young = std::sqrt(2.0 * w * sol.mtbf);
  if (w < 2.0 * sol.mtbf) {
    const double ratio = w / (2.0 * sol.mtbf);
    sol.daly =
        sol.young * (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) - w;
  } else {
    sol.daly = sol.mtbf;  // Daly's regime boundary: checkpoint every MTBF
  }

  const auto goodput_at = [&](Seconds interval) {
    ResilienceOptions run = base;
    run.reliability.checkpoint_interval = interval;
    try {
      return SimulateTrainingRun(iteration_time, run).goodput;
    } catch (const CheckError&) {
      // The scan legitimately probes intervals the MTBF cannot sustain
      // (no durable progress before the restart bound trips); score them
      // as zero goodput instead of aborting the search.
      return 0.0;
    }
  };

  Seconds lo = options.min_interval > 0 ? options.min_interval
                                        : std::max(sol.daly / 16.0, w);
  Seconds hi = options.max_interval > 0 ? options.max_interval : sol.daly * 16.0;
  lo = std::max(lo, 1e-3);
  hi = std::max(hi, lo * 2.0);
  MEPIPE_CHECK_LT(lo, hi);

  // Coarse log-spaced bracketing scan: the simulated goodput curve is
  // unimodal in expectation but Monte-Carlo-stepped locally, so bracket
  // globally before polishing.
  const int n = options.coarse_points;
  std::vector<Seconds> grid(static_cast<std::size_t>(n));
  int best = 0;
  double best_goodput = -1.0;
  for (int i = 0; i < n; ++i) {
    grid[static_cast<std::size_t>(i)] =
        lo * std::pow(hi / lo, static_cast<double>(i) / (n - 1));
    const double g = goodput_at(grid[static_cast<std::size_t>(i)]);
    if (g > best_goodput) {
      best_goodput = g;
      best = i;
    }
  }
  sol.refined = grid[static_cast<std::size_t>(best)];
  sol.goodput = best_goodput;

  // Golden-section maximization between the bracket's neighbours.
  Seconds a = grid[static_cast<std::size_t>(std::max(0, best - 1))];
  Seconds b = grid[static_cast<std::size_t>(std::min(n - 1, best + 1))];
  const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;
  Seconds x1 = b - inv_phi * (b - a);
  Seconds x2 = a + inv_phi * (b - a);
  double f1 = goodput_at(x1);
  double f2 = goodput_at(x2);
  for (int i = 0; i < options.golden_iterations; ++i) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + inv_phi * (b - a);
      f2 = goodput_at(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - inv_phi * (b - a);
      f1 = goodput_at(x1);
    }
    const double f_best = std::max(f1, f2);
    if (f_best > sol.goodput) {
      sol.goodput = f_best;
      sol.refined = f1 > f2 ? x1 : x2;
    }
  }
  return sol;
}

}  // namespace mepipe::core
