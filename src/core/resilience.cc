#include "core/resilience.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace mepipe::core {

ResilienceMetrics SimulateTrainingRun(Seconds iteration_time,
                                      const ResilienceOptions& options) {
  MEPIPE_CHECK_GT(iteration_time, 0.0);
  MEPIPE_CHECK_GT(options.gpus, 0);
  const ReliabilityOptions& rel = options.reliability;
  MEPIPE_CHECK_GT(rel.mtbf_per_1000_gpus, 0.0);
  MEPIPE_CHECK_GT(rel.checkpoint_interval, 0.0);
  MEPIPE_CHECK_GE(rel.recovery_time, 0.0);
  MEPIPE_CHECK_GE(rel.checkpoint_write_cost, 0.0);

  const Seconds target = options.target_useful_time > 0
                             ? options.target_useful_time
                             : static_cast<Seconds>(options.iterations) * iteration_time;
  MEPIPE_CHECK_GT(target, 0.0) << "nothing to simulate";

  const Seconds mtbf =
      rel.mtbf_per_1000_gpus * 1000.0 / static_cast<double>(options.gpus);
  SplitMixRng rng(options.seed);

  ResilienceMetrics m;
  m.iteration_time = iteration_time;

  Seconds wall = 0;       // elapsed cluster time, stalls included
  Seconds useful = 0;     // durable + tentative training progress
  Seconds ckpt = 0;       // progress covered by the last checkpoint
  Seconds next_fail = rng.NextExponential(mtbf);  // up-time to next failure

  // The run fails to converge when the cluster MTBF is so short that no
  // checkpoint interval ever completes; bound the restart count so such
  // configurations surface as an error instead of a hung loop.
  const double expected_failures = target / mtbf + 10.0;

  while (useful < target) {
    const Seconds to_ckpt = ckpt + rel.checkpoint_interval - useful;
    const Seconds to_done = target - useful;
    const Seconds run = std::min({to_ckpt, to_done, next_fail});
    wall += run;
    useful += run;
    next_fail -= run;
    if (next_fail <= 0.0) {
      // Hardware failure: record it, roll progress back to the last
      // checkpoint, stall for detection + restart; the lost work is then
      // replayed as ordinary forward progress.
      const Seconds lost = useful - ckpt;
      if (m.failures.size() < options.max_failure_records) {
        const auto iteration = static_cast<std::int64_t>(useful / iteration_time);
        m.failures.push_back({wall, lost, rel.recovery_time, iteration,
                              useful - static_cast<Seconds>(iteration) * iteration_time});
      }
      useful = ckpt;
      m.lost_time += lost;
      m.recovery_time += rel.recovery_time;
      wall += rel.recovery_time;
      ++m.restarts;
      MEPIPE_CHECK_LT(m.restarts, 100.0 * expected_failures)
          << "MTBF " << mtbf << "s is too short for the run to make durable "
          << "progress past its " << rel.checkpoint_interval << "s checkpoint interval";
      next_fail = rng.NextExponential(mtbf);
    } else if (run == to_ckpt && useful < target) {
      wall += rel.checkpoint_write_cost;
      m.checkpoint_time += rel.checkpoint_write_cost;
      ckpt = useful;
      ++m.checkpoints_written;
    }
  }

  m.wall_time = wall;
  m.useful_time = useful;
  m.iterations_completed = static_cast<std::int64_t>(useful / iteration_time);
  m.goodput = wall > 0 ? useful / wall : 1.0;
  m.overhead_fraction = 1.0 - m.goodput;
  return m;
}

ResilienceMetrics SimulateTrainingRun(const sched::Schedule& schedule,
                                      const sim::CostModel& costs,
                                      const ResilienceOptions& options) {
  sim::EngineOptions engine_options;
  const sim::SimResult clean = sim::Simulate(schedule, costs, engine_options);
  return SimulateTrainingRun(clean.makespan, options);
}

sim::FaultPlan FaultPlanForFailure(const FailureRecord& failure, Seconds iteration_time,
                                   const ReliabilityOptions& reliability) {
  MEPIPE_CHECK_GT(iteration_time, 0.0);
  sim::FaultPlan plan;
  // Iteration-local view: restart from the iteration start (the implicit
  // t=0 checkpoint), stalled for the run-level detection + restart cost.
  const Seconds offset =
      std::clamp(failure.iteration_offset, 0.0, iteration_time);
  plan.fail_stops.push_back({/*stage=*/0, offset,
                             /*detection_delay=*/0.0,
                             /*restart_time=*/reliability.recovery_time});
  return plan;
}

}  // namespace mepipe::core
