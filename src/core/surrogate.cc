#include "core/surrogate.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>
#include <limits>

#include "common/check.h"
#include "common/format.h"
#include "core/deployment.h"
#include "sched/dependency.h"
#include "sched/zbv.h"

namespace mepipe::core {
namespace {

using sched::Dep;
using sched::OpId;
using sched::OpKind;

constexpr double kEps = 1e-12;

// ---- Tabular critical-path pass -------------------------------------------
//
// The engine's list-scheduling loop on dense arenas: op completion times
// live in a flat vector indexed by (kind, micro, slice, chunk) instead of
// hash maps, dependencies are enumerated allocation-free through
// sched::ForEachDependency, and nothing is recorded per op — the pass
// keeps only per-stage clocks, busy sums, and running memory counters.
// Cross-stage readiness is producer-done + transfer time (no per-link
// serialization): the one structural approximation, exact whenever
// transfers are free.
class TableSim {
 public:
  TableSim(const sched::Schedule& schedule, const sim::CostModel& costs,
           const TableOptions& options)
      : schedule_(schedule),
        problem_(schedule.problem),
        costs_(costs),
        options_(options),
        chunks_(problem_.num_chunks()),
        done_(static_cast<std::size_t>(3) * static_cast<std::size_t>(problem_.micros) *
                  static_cast<std::size_t>(problem_.slices) *
                  static_cast<std::size_t>(chunks_),
              kNotDone),
        cursor_(static_cast<std::size_t>(problem_.stages), 0),
        clock_(static_cast<std::size_t>(problem_.stages), 0.0),
        wqueue_(static_cast<std::size_t>(problem_.stages)),
        current_bytes_(static_cast<std::size_t>(problem_.stages), 0),
        peak_bytes_(static_cast<std::size_t>(problem_.stages), 0),
        busy_(static_cast<std::size_t>(problem_.stages), 0.0),
        overflow_count_(static_cast<std::size_t>(problem_.stages), 0) {
    if (!options_.activation_budget.empty()) {
      MEPIPE_CHECK_EQ(options_.activation_budget.size(),
                      static_cast<std::size_t>(problem_.stages))
          << "activation_budget must have one entry per stage";
    }
  }

  TablePrice Run();

 private:
  static constexpr Seconds kNotDone = -1.0;

  struct WgradItem {
    OpId op;
    Seconds available = 0;
    int next_gemm = 0;
    int gemm_count = 1;
  };

  std::size_t Index(const OpId& op) const {
    // kForward=0, kBackward=1, kWeightGrad=2 (per-GEMM splits and DP
    // buckets never land in the arena).
    const auto kind = static_cast<std::size_t>(op.kind);
    return ((kind * static_cast<std::size_t>(problem_.micros) +
             static_cast<std::size_t>(op.micro)) *
                static_cast<std::size_t>(problem_.slices) +
            static_cast<std::size_t>(op.slice)) *
               static_cast<std::size_t>(chunks_) +
           static_cast<std::size_t>(op.chunk);
  }

  Seconds DoneTime(const OpId& op) const { return done_[Index(op)]; }
  void MarkDone(const OpId& op, Seconds t) { done_[Index(op)] = t; }

  bool DepsDone(const OpId& op) const {
    bool ok = true;
    sched::ForEachDependency(problem_, op, [&](const Dep& dep) {
      ok = ok && done_[Index(dep.op)] != kNotDone;
    });
    return ok;
  }

  Seconds ReadyTime(const OpId& op) const {
    Seconds ready = 0.0;
    sched::ForEachDependency(problem_, op, [&](const Dep& dep) {
      const Seconds done = done_[Index(dep.op)];
      ready = std::max(ready, dep.cross_stage ? done + costs_.TransferTime(dep.op) : done);
    });
    return ready;
  }

  void Record(int stage, Seconds start, Seconds end) {
    busy_[static_cast<std::size_t>(stage)] += end - start;
    makespan_ = std::max(makespan_, end);
  }

  void AddMem(int stage, Bytes delta) {
    Bytes& current = current_bytes_[static_cast<std::size_t>(stage)];
    current += delta;
    peak_bytes_[static_cast<std::size_t>(stage)] =
        std::max(peak_bytes_[static_cast<std::size_t>(stage)], current);
  }

  void ReleaseSlice(int stage, const OpId& op, bool release_act_grad) {
    const OpId forward{OpKind::kForward, op.micro, op.slice, op.chunk, -1, op.job};
    AddMem(stage, -costs_.ActivationBytes(forward));
    if (release_act_grad) {
      const OpId backward{OpKind::kBackward, op.micro, op.slice, op.chunk, -1, op.job};
      AddMem(stage, -costs_.ActGradBytes(backward));
    }
  }

  void FillWgrad(int stage, Seconds until) {
    if (options_.wgrad_mode == sim::WgradMode::kImmediate) {
      return;
    }
    auto& queue = wqueue_[static_cast<std::size_t>(stage)];
    double& clock = clock_[static_cast<std::size_t>(stage)];
    while (!queue.empty()) {
      WgradItem& item = queue.front();
      if (item.available > clock + kEps) {
        break;
      }
      const OpId gemm_op{OpKind::kWeightGradGemm, item.op.micro, item.op.slice, item.op.chunk,
                         item.next_gemm, item.op.job};
      const OpId& exec_op = item.gemm_count > 1 ? gemm_op : item.op;
      const Seconds end = clock + costs_.ComputeTime(exec_op);
      if (end > until + kEps) {
        break;
      }
      Record(stage, clock, end);
      clock = end;
      if (++item.next_gemm >= item.gemm_count) {
        MarkDone(item.op, clock);
        ReleaseSlice(stage, item.op, /*release_act_grad=*/true);
        queue.pop_front();
      }
    }
  }

  void DrainForBudget(int stage, Bytes incoming) {
    if (options_.activation_budget.empty()) {
      return;
    }
    const Bytes budget = options_.activation_budget[static_cast<std::size_t>(stage)];
    if (budget <= 0) {
      return;
    }
    auto& queue = wqueue_[static_cast<std::size_t>(stage)];
    while (!queue.empty() &&
           current_bytes_[static_cast<std::size_t>(stage)] + incoming > budget) {
      DrainWgradItem(stage, queue.front());
      queue.pop_front();
    }
    if (current_bytes_[static_cast<std::size_t>(stage)] + incoming > budget) {
      ++overflow_count_[static_cast<std::size_t>(stage)];
    }
  }

  void DrainWgradItem(int stage, WgradItem& item) {
    double& clock = clock_[static_cast<std::size_t>(stage)];
    clock = std::max(clock, item.available);
    if (item.gemm_count <= 1) {
      const Seconds end = clock + costs_.ComputeTime(item.op);
      Record(stage, clock, end);
      clock = end;
    } else {
      for (; item.next_gemm < item.gemm_count; ++item.next_gemm) {
        const OpId gemm_op{OpKind::kWeightGradGemm, item.op.micro, item.op.slice, item.op.chunk,
                           item.next_gemm, item.op.job};
        const Seconds end = clock + costs_.ComputeTime(gemm_op);
        Record(stage, clock, end);
        clock = end;
      }
    }
    MarkDone(item.op, clock);
    ReleaseSlice(stage, item.op, /*release_act_grad=*/true);
  }

  void RunDpSync(TablePrice& price) const {
    Seconds last_end = 0;
    for (int stage = 0; stage < problem_.stages; ++stage) {
      std::vector<std::pair<Seconds, Seconds>> buckets;  // (ready, duration)
      Seconds total = 0;
      for (const OpId& bucket : sched::DpSyncOps(problem_, stage, schedule_.job)) {
        const Seconds duration = costs_.DpSyncTime(bucket);
        if (duration <= 0) {
          continue;
        }
        Seconds ready = 0;
        sched::ForEachDependency(problem_, bucket, [&](const Dep& dep) {
          ready = std::max(ready, done_[Index(dep.op)]);
        });
        buckets.push_back({ready, duration});
        total += duration;
      }
      std::stable_sort(buckets.begin(), buckets.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; });
      Seconds stream = 0;
      for (const auto& [ready, duration] : buckets) {
        stream = std::max(stream, ready) + duration;
      }
      price.dp_serialized = std::max(price.dp_serialized, total);
      last_end = std::max(last_end, stream);
    }
    price.dp_exposed = std::max(0.0, last_end - makespan_);
    price.dp_hidden = std::max(0.0, price.dp_serialized - price.dp_exposed);
  }

  const sched::Schedule& schedule_;
  const sched::PipelineProblem& problem_;
  const sim::CostModel& costs_;
  const TableOptions& options_;

  int chunks_;
  std::vector<Seconds> done_;
  std::vector<std::size_t> cursor_;
  std::vector<double> clock_;
  std::vector<std::deque<WgradItem>> wqueue_;
  std::vector<Bytes> current_bytes_;
  std::vector<Bytes> peak_bytes_;
  std::vector<Seconds> busy_;
  std::vector<int> overflow_count_;
  Seconds makespan_ = 0;
};

TablePrice TableSim::Run() {
  std::size_t remaining = 0;
  for (const auto& ops : schedule_.stage_ops) {
    remaining += ops.size();
  }

  while (remaining > 0) {
    bool progress = false;
    for (int stage = 0; stage < problem_.stages; ++stage) {
      auto& cursor = cursor_[static_cast<std::size_t>(stage)];
      const auto& ops = schedule_.stage_ops[static_cast<std::size_t>(stage)];
      double& clock = clock_[static_cast<std::size_t>(stage)];
      while (cursor < ops.size()) {
        const OpId& op = ops[cursor];
        if (!DepsDone(op)) {
          break;
        }
        const Seconds ready = ReadyTime(op);
        if (ready > clock) {
          FillWgrad(stage, ready);
        }
        if (op.kind == OpKind::kForward) {
          DrainForBudget(stage, costs_.ActivationBytes(op));
        } else if (op.kind == OpKind::kBackward && problem_.split_backward) {
          DrainForBudget(stage, costs_.ActGradBytes(op));
        }
        const Seconds start = std::max(clock, ready);
        const Seconds end = start + costs_.ComputeTime(op);
        Record(stage, start, end);
        clock = end;
        MarkDone(op, end);

        switch (op.kind) {
          case OpKind::kForward:
            AddMem(stage, costs_.ActivationBytes(op));
            break;
          case OpKind::kBackward:
            if (!problem_.split_backward) {
              ReleaseSlice(stage, op, /*release_act_grad=*/false);
            } else {
              AddMem(stage, costs_.ActGradBytes(op));
              if (schedule_.deferred_wgrad) {
                const OpId w{OpKind::kWeightGrad, op.micro, op.slice, op.chunk, -1, op.job};
                WgradItem item{w, end, 0,
                               options_.wgrad_mode == sim::WgradMode::kFillGemms
                                   ? costs_.WeightGradGemmCount(w)
                                   : 1};
                if (options_.wgrad_mode == sim::WgradMode::kImmediate) {
                  DrainWgradItem(stage, item);
                } else {
                  wqueue_[static_cast<std::size_t>(stage)].push_back(item);
                }
              }
            }
            break;
          case OpKind::kWeightGrad:
            ReleaseSlice(stage, op, /*release_act_grad=*/true);
            break;
          case OpKind::kWeightGradGemm:
          case OpKind::kDpSync:
            MEPIPE_CHECK(false) << "op kind cannot appear in static orders";
            break;
        }
        ++cursor;
        --remaining;
        progress = true;
      }
    }
    MEPIPE_CHECK(progress) << "surrogate wedged with " << remaining << " ops left";
  }

  for (int stage = 0; stage < problem_.stages; ++stage) {
    auto& queue = wqueue_[static_cast<std::size_t>(stage)];
    while (!queue.empty()) {
      DrainWgradItem(stage, queue.front());
      queue.pop_front();
    }
  }

  TablePrice price;
  price.makespan = makespan_;
  price.stage_busy = busy_;
  price.stage_peak_activation = peak_bytes_;
  double bubble_sum = 0;
  for (int stage = 0; stage < problem_.stages; ++stage) {
    price.peak_activation =
        std::max(price.peak_activation, peak_bytes_[static_cast<std::size_t>(stage)]);
    price.budget_violations += overflow_count_[static_cast<std::size_t>(stage)];
    bubble_sum += makespan_ > 0
                      ? 1.0 - busy_[static_cast<std::size_t>(stage)] / makespan_
                      : 0.0;
  }
  price.bubble_ratio = problem_.stages > 0 ? bubble_sum / problem_.stages : 0.0;
  if (options_.dp_overlap) {
    RunDpSync(price);
  }
  return price;
}

// ---- Fingerprint hashing ---------------------------------------------------

constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Digest {
  std::uint64_t state = 0x6d65706970655f73ULL;  // "mepipe_s"

  void Mix(std::uint64_t value) { state = SplitMix64(state ^ value); }
  void Mix(std::int64_t value) { Mix(static_cast<std::uint64_t>(value)); }
  void Mix(int value) { Mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(value))); }
  void Mix(bool value) { Mix(static_cast<std::uint64_t>(value ? 1 : 2)); }
  void Mix(double value) { Mix(std::bit_cast<std::uint64_t>(value)); }
  void Mix(const std::string& value) {
    // FNV-1a, implementation-independent (std::hash is not pinned).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : value) {
      h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    }
    Mix(h);
  }
};

void MixLink(Digest& digest, const hw::LinkSpec& link) {
  digest.Mix(link.name);
  digest.Mix(link.bandwidth);
  digest.Mix(link.latency);
  digest.Mix(link.through_host);
}

}  // namespace

TablePrice PriceScheduleTable(const sched::Schedule& schedule, const sim::CostModel& costs,
                              const TableOptions& options) {
  return TableSim(schedule, costs, options).Run();
}

std::uint64_t CostModelFingerprint(const model::TransformerConfig& config,
                                   const hw::ClusterSpec& cluster,
                                   const IterationOptions& options) {
  Digest digest;
  // Model architecture.
  digest.Mix(config.name);
  digest.Mix(config.hidden);
  digest.Mix(config.ffn_hidden);
  digest.Mix(config.layers);
  digest.Mix(config.heads);
  digest.Mix(config.kv_heads);
  digest.Mix(config.vocab);
  digest.Mix(config.seq_len);
  // Cluster: GPU + fabric.
  digest.Mix(cluster.nodes);
  digest.Mix(cluster.gpus_per_node);
  digest.Mix(cluster.gpu.name);
  digest.Mix(cluster.gpu.memory_capacity);
  digest.Mix(cluster.gpu.memory_reserved);
  digest.Mix(cluster.gpu.peak_flops);
  digest.Mix(cluster.gpu.matmul_derate);
  MixLink(digest, cluster.intra_node);
  MixLink(digest, cluster.inter_node);
  // TrainingCostOptions. The efficiency curve's parameters are private;
  // probe it behaviorally at points that pin both the half-saturation
  // constant and its hidden-width scaling.
  digest.Mix(options.cost.op_overhead);
  digest.Mix(options.cost.balanced_slices);
  digest.Mix(options.cost.slice_alignment);
  digest.Mix(options.cost.memory.bytes_per_param);
  digest.Mix(options.cost.memory.bytes_per_grad);
  digest.Mix(options.cost.memory.optimizer_bytes_per_param);
  digest.Mix(options.cost.memory.fixed_workspace);
  digest.Mix(options.cost.efficiency.ShapeEfficiency(5120, 64));
  digest.Mix(options.cost.efficiency.ShapeEfficiency(5120, 4096));
  digest.Mix(options.cost.efficiency.ShapeEfficiency(1024, 384));
  // Pricing-relevant iteration knobs (faults/noise/rebalance excluded —
  // the surrogate prices the clean run).
  digest.Mix(static_cast<int>(options.wgrad_mode));
  digest.Mix(options.svpp_inflight);
  digest.Mix(options.svpp_reschedule);
  digest.Mix(options.optimizer_step);
  digest.Mix(options.dp_overlap);
  digest.Mix(options.synth_offset_radius);
  digest.Mix(options.synth_max_leaves);
  return digest.state;
}

std::uint64_t TopologyFingerprint(const model::TransformerConfig& config,
                                  const hw::ClusterTopology& topology,
                                  const IterationOptions& options) {
  // Reuse the homogeneous digest on the first tier's spec, then fold in
  // every tier and the inter-tier link matrix.
  Digest digest;
  digest.Mix(CostModelFingerprint(config, topology.tiers.front().spec(), options));
  digest.Mix(topology.num_tiers());
  for (const hw::DeviceTier& tier : topology.tiers) {
    digest.Mix(tier.name);
    digest.Mix(tier.region);
    digest.Mix(tier.nodes);
    digest.Mix(tier.gpus_per_node);
    digest.Mix(tier.usd_per_gpu_hour);
    digest.Mix(tier.gpu.name);
    digest.Mix(tier.gpu.memory_capacity);
    digest.Mix(tier.gpu.memory_reserved);
    digest.Mix(tier.gpu.peak_flops);
    digest.Mix(tier.gpu.matmul_derate);
    MixLink(digest, tier.intra_node);
    MixLink(digest, tier.inter_node);
  }
  for (const hw::TierLink& link : topology.tier_links) {
    MixLink(digest, link.link);
    digest.Mix(link.usd_per_gb_egress);
    digest.Mix(link.wan);
  }
  return digest.state;
}

std::size_t SurrogateKeyHash::operator()(const SurrogateKey& key) const {
  Digest digest;
  digest.Mix(static_cast<int>(key.method));
  digest.Mix(key.pp);
  digest.Mix(key.dp);
  digest.Mix(key.cp);
  digest.Mix(key.tp);
  digest.Mix(key.vp);
  digest.Mix(key.spp);
  digest.Mix(key.recompute);
  digest.Mix(key.global_batch);
  digest.Mix(key.fingerprint);
  digest.Mix(key.placement);
  return static_cast<std::size_t>(digest.state);
}

std::size_t SurrogateCache::IntervalKeyHash::operator()(const IntervalKey& key) const {
  Digest digest;
  digest.Mix(key.time_bits);
  digest.Mix(key.write_bits);
  digest.Mix(key.mtbf_bits);
  digest.Mix(key.recovery_bits);
  digest.Mix(key.target_bits);
  digest.Mix(key.iterations);
  digest.Mix(key.seed);
  digest.Mix(key.gpus);
  digest.Mix(key.dp_replicas);
  digest.Mix(key.scope);
  digest.Mix(key.min_bits);
  digest.Mix(key.max_bits);
  digest.Mix(key.coarse_points);
  digest.Mix(key.golden_iterations);
  return static_cast<std::size_t>(digest.state);
}

std::optional<SurrogateResult> SurrogateCache::Lookup(const SurrogateKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = entries_.find(key); it != entries_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  return std::nullopt;
}

void SurrogateCache::Insert(const SurrogateKey& key, const SurrogateResult& result) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.insert_or_assign(key, result);
}

CheckpointIntervalSolution SurrogateCache::IntervalSolve(
    Seconds iteration_time, const ResilienceOptions& base,
    const CheckpointIntervalOptions& options) {
  IntervalKey key;
  key.time_bits = std::bit_cast<std::uint64_t>(iteration_time);
  key.write_bits = std::bit_cast<std::uint64_t>(base.reliability.checkpoint_write_cost);
  key.mtbf_bits = std::bit_cast<std::uint64_t>(base.reliability.mtbf_per_1000_gpus);
  key.recovery_bits = std::bit_cast<std::uint64_t>(base.reliability.recovery_time);
  key.target_bits = std::bit_cast<std::uint64_t>(base.target_useful_time);
  key.iterations = base.iterations;
  key.seed = base.seed;
  key.gpus = base.gpus;
  key.dp_replicas = base.dp_replicas;
  key.scope = static_cast<int>(base.restart_scope);
  key.min_bits = std::bit_cast<std::uint64_t>(options.min_interval);
  key.max_bits = std::bit_cast<std::uint64_t>(options.max_interval);
  key.coarse_points = options.coarse_points;
  key.golden_iterations = options.golden_iterations;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = intervals_.find(key); it != intervals_.end()) {
      ++stats_.interval_hits;
      return it->second;
    }
    ++stats_.interval_misses;
  }
  // Solve outside the lock: the solver is deterministic, so a concurrent
  // duplicate computes the identical value and the second insert is a
  // no-op.
  const CheckpointIntervalSolution solution =
      OptimalCheckpointInterval(iteration_time, base, options);
  std::lock_guard<std::mutex> lock(mu_);
  intervals_.emplace(key, solution);
  return solution;
}

SurrogateCache::Stats SurrogateCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t SurrogateCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void SurrogateCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  intervals_.clear();
  stats_ = {};
}

SurrogateResult SurrogatePrice(const model::TransformerConfig& config,
                               const Strategy& strategy, const hw::ClusterSpec& cluster,
                               int global_batch, const SurrogateOptions& options) {
  SurrogateKey key;
  if (options.cache != nullptr) {
    key.method = strategy.method;
    key.pp = strategy.pp;
    key.dp = strategy.dp;
    key.cp = strategy.cp;
    key.tp = strategy.tp;
    key.vp = strategy.vp;
    key.spp = strategy.spp;
    key.recompute = strategy.recompute;
    key.global_batch = global_batch;
    key.fingerprint = CostModelFingerprint(config, cluster, options.iteration);
    if (auto hit = options.cache->Lookup(key)) {
      hit->cache_hit = true;
      return *hit;
    }
  }

  CandidateBuild build = BuildCandidate(config, strategy, cluster, global_batch,
                                        options.iteration);
  SurrogateResult result;
  result.strategy = strategy;
  if (!build.feasible) {
    result.note = std::move(build.note);
  } else {
    const TrainingCostModel& costs = *build.costs;
    TableOptions table;
    table.wgrad_mode = build.wgrad_mode;
    table.activation_budget = build.activation_budget;
    table.dp_overlap = options.iteration.dp_overlap;
    const TablePrice price = PriceScheduleTable(build.schedule, costs, table);

    result.micros = build.micros;
    result.pipeline_time = price.makespan;
    result.dp_sync_time =
        options.iteration.dp_overlap ? price.dp_exposed : costs.DpSyncTime();
    result.iteration_time =
        price.makespan + result.dp_sync_time + options.iteration.optimizer_step;
    result.bubble_ratio = price.bubble_ratio;
    result.static_memory = costs.MaxStaticMemory();
    result.peak_activation = price.peak_activation;
    result.checkpoint_shard = costs.CheckpointShardBytes();
    Bytes peak = 0;
    for (int stage = 0; stage < strategy.pp; ++stage) {
      peak = std::max(peak, costs.StaticMemory(stage) +
                                price.stage_peak_activation[static_cast<std::size_t>(stage)]);
    }
    if (strategy.method == Method::kZbvCapped) {
      // Same honest-memory floor as SimulateIteration: the capped
      // generator's release-on-B accounting under-reports the peak its
      // deferred Ws actually hold (~A/2 artifact); floor at 1F1B parity
      // so the surrogate and the simulator agree on memory feasibility.
      const Bytes honest =
          static_cast<Bytes>(sched::ZbvMaxRetainedForwards(strategy.pp, build.micros)) *
          costs.PerForwardActivationBytes();
      result.peak_activation = std::max(result.peak_activation, honest);
      peak = std::max(peak, costs.MaxStaticMemory() + honest);
    }
    result.peak_memory = peak;
    if (peak > cluster.gpu.usable_memory()) {
      result.feasible = false;
      result.note = StrFormat("OOM: peak %s > usable %s", FormatBytes(peak).c_str(),
                              FormatBytes(cluster.gpu.usable_memory()).c_str());
    } else {
      result.feasible = true;
      result.note = "ok";
    }
  }
  if (options.cache != nullptr) {
    options.cache->Insert(key, result);
  }
  return result;
}

SurrogateGoodput ClosedFormGoodput(Seconds iteration_time, Bytes checkpoint_shard,
                                   const ResilienceOptions& resilience,
                                   const CheckpointCostOptions& checkpoint_cost) {
  MEPIPE_CHECK_GT(iteration_time, 0) << "goodput needs a positive iteration time";
  MEPIPE_CHECK_GT(resilience.gpus, 0) << "goodput needs a positive fleet size";
  SurrogateGoodput out;
  out.checkpoint_write_cost = CheckpointWriteCost(checkpoint_shard, checkpoint_cost);
  const double w = out.checkpoint_write_cost;
  const Seconds mtbf =
      resilience.reliability.mtbf_per_1000_gpus * 1000.0 / resilience.gpus;
  MEPIPE_CHECK_GT(mtbf, 0) << "goodput needs a positive MTBF";
  // Young's first-order optimum and Daly's second-order refinement
  // (the same closed forms OptimalCheckpointInterval seeds its
  // Monte-Carlo scan with).
  const double young = std::sqrt(2.0 * w * mtbf);
  Seconds interval;
  if (w < 2.0 * mtbf) {
    const double ratio = w / (2.0 * mtbf);
    interval = young * (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) - w;
  } else {
    interval = mtbf;
  }
  out.checkpoint_interval = std::max(interval, w);
  // Expected overhead: steady-state write cost plus per-failure recovery
  // and lost work. Full-pipeline restarts replay half an interval on
  // average; replica-local restarts replay only the interrupted
  // iteration while survivors idle.
  Seconds lost = out.checkpoint_interval / 2.0;
  if (resilience.restart_scope == sim::RestartScope::kDpReplicaLocal &&
      resilience.dp_replicas > 1) {
    lost = std::min(lost, iteration_time / 2.0);
  }
  const double overhead = w / out.checkpoint_interval +
                          (resilience.reliability.recovery_time + lost) / mtbf;
  out.goodput = std::clamp(1.0 - overhead, 1e-6, 1.0);
  out.effective_iteration_time = iteration_time / out.goodput;
  return out;
}

std::optional<Seconds> SurrogateLowerBound(const model::TransformerConfig& config,
                                           const Strategy& strategy,
                                           const hw::ClusterSpec& cluster, int global_batch,
                                           const IterationOptions& options) {
  if (strategy.dp <= 0 || global_batch % strategy.dp != 0) {
    return std::nullopt;
  }
  sched::PipelineProblem problem;
  problem.stages = strategy.pp;
  problem.virtual_chunks = strategy.vp;
  problem.slices = strategy.spp;
  problem.micros = global_batch / strategy.dp;
  problem.split_backward = MethodSplitsBackward(strategy.method);
  try {
    problem.Validate();
    const TrainingCostModel costs(config, strategy, cluster, problem, options.cost);

    // Per-stage straggler windows from the plan (sorted, disjoint per
    // stage — FaultPlan::Validate enforces that). Fail-stops and link
    // faults only add time and are ignored: the bound stays sound.
    std::vector<std::vector<const sim::StragglerFault*>> windows(
        static_cast<std::size_t>(problem.stages));
    if (options.fault_plan) {
      for (const sim::StragglerFault& fault : options.fault_plan->stragglers) {
        if (fault.stage >= 0 && fault.stage < problem.stages) {
          windows[static_cast<std::size_t>(fault.stage)].push_back(&fault);
        }
      }
      for (auto& stage_windows : windows) {
        std::sort(stage_windows.begin(), stage_windows.end(),
                  [](const auto* a, const auto* b) { return a->begin < b->begin; });
      }
    }

    Seconds bound = 0;
    for (int stage = 0; stage < problem.stages; ++stage) {
      Seconds busy = 0;
      for (int chunk = 0; chunk < problem.num_chunks(); ++chunk) {
        if (problem.stage_of_chunk(chunk) != stage) {
          continue;
        }
        for (int slice = 0; slice < problem.slices; ++slice) {
          busy += costs.ComputeTime({sched::OpKind::kForward, 0, slice, chunk});
          busy += costs.ComputeTime({sched::OpKind::kBackward, 0, slice, chunk});
          if (problem.split_backward) {
            busy += costs.ComputeTime({sched::OpKind::kWeightGrad, 0, slice, chunk});
          }
        }
      }
      busy *= problem.micros;
      // Earliest instant a stage working gap-free from t=0 finishes
      // `busy` seconds of clean work, with straggler windows dilating
      // progress by their slowdown factor.
      Seconds t = 0;
      Seconds remaining = busy;
      for (const sim::StragglerFault* fault : windows[static_cast<std::size_t>(stage)]) {
        if (remaining <= 0) {
          break;
        }
        if (fault->begin > t) {
          const Seconds clean = fault->begin - t;
          if (remaining <= clean) {
            t += remaining;
            remaining = 0;
            break;
          }
          remaining -= clean;
          t = fault->begin;
        }
        const Seconds window = std::max(0.0, fault->end - t);
        const Seconds capacity = window / std::max(fault->slowdown, 1.0);
        if (remaining <= capacity) {
          t += remaining * std::max(fault->slowdown, 1.0);
          remaining = 0;
          break;
        }
        remaining -= capacity;
        t = std::max(t, fault->end);
      }
      t += std::max(0.0, remaining);
      bound = std::max(bound, t);
    }
    // Overlapped DP sync can hide in bubbles entirely, so only the
    // serialized sync adds to the bound.
    const Seconds dp_sync = options.dp_overlap ? 0.0 : costs.DpSyncTime();
    return bound + dp_sync + options.optimizer_step;
  } catch (const CheckError&) {
    return std::nullopt;  // let the full evaluation explain why
  }
}

}  // namespace mepipe::core
