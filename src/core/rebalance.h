// Straggler-aware rebalancing — scheduling *around* measured slowdowns
// instead of merely pricing them.
//
// The fault layer (sim/fault.h) measures how much a straggler costs a
// fixed schedule; this subsystem closes the loop. Given a per-stage
// slowdown profile — supplied directly, or estimated from a prior run's
// per-stage busy times under a FaultPlan — it produces a mitigated plan
// along three axes:
//   1. Layer re-partitioning: move partition units off the slow stage so
//      that units_i · slowdown_i is equalized (a bottleneck-minimizing
//      partitioner generalizing the balanced split core/training_cost
//      assumes).
//   2. Speed-weighted slice re-balancing: re-solve the TeraPipe-style
//      sample partition under a weighted time functional
//      (model::TimeBalancedSlices) instead of raw FLOPs.
//   3. Cap re-tuning: shrink/grow the per-stage in-flight caps with the
//      stage's new layer share so memory stays within the old envelope,
//      and regenerate the program order with per-stage abstract time
//      scaling (sched::GeneratorOptions::stage_time_scale) so the
//      interleaving wraps around the known-slow stage.
// MitigateStragglers drives the full estimate → rebalance → resimulate
// loop and reports makespan before/after mitigation under the *same*
// fault plan.
#ifndef MEPIPE_CORE_REBALANCE_H_
#define MEPIPE_CORE_REBALANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "model/flops.h"
#include "model/slicing.h"
#include "model/transformer.h"
#include "sched/op.h"
#include "sched/schedule.h"
#include "sim/cost_model.h"
#include "sim/engine.h"
#include "sim/fault.h"

namespace mepipe::core {

// Measured (or asserted) per-stage compute slowdown: stage i runs its
// compute `slowdown[i]`× slower than the cost model's clean rate.
struct StageProfile {
  std::vector<double> slowdown;  // one entry per stage, each >= 1

  bool empty() const { return slowdown.empty(); }
  double max_slowdown() const;
  // Throws CheckError unless there is exactly one finite entry >= 1 per
  // stage.
  void Validate(int stages) const;
};

// Estimates the profile from two runs of the *same schedule*: a clean
// one and one under a fault plan. A straggler dilates every compute op
// it covers, so the stage's busy-time ratio recovers the average
// dilation; stages untouched by faults come out at 1. Requires matching
// stage counts; stages with zero clean busy time report 1.
StageProfile EstimateStageSlowdowns(const sim::SimResult& clean,
                                    const sim::SimResult& faulted);

// Derives the profile analytically from the plan itself: the
// time-averaged straggler dilation of each stage over [0, horizon)
// (windows clipped to the horizon). Use when no clean baseline run is
// available. Only straggler faults contribute; link/fail-stop faults do
// not slow *compute*.
StageProfile EstimateStageSlowdowns(const sim::FaultPlan& plan, int stages, Seconds horizon);

// ---- Windowed online estimation (the elastic runtime's detector) ----------
//
// The offline estimators above need a complete trace; the online
// control loop (core/elastic) only ever has the last few iterations'
// per-stage busy times — a *partial window*. The windowed overload
// estimates from busy-time sums accumulated over `observed` iterations,
// and SlowdownWindowEstimator adds the confidence/hysteresis gate that
// keeps measurement noise from triggering re-plan thrashing.

struct WindowedProfileOptions {
  // Iterations per detection window.
  int window = 8;
  // Confidence gate: a (partial) window is only trusted once it holds at
  // least this many observations.
  int min_observations = 4;
  // A window counts as deviant when some stage's busy time departs from
  // the baseline by at least this factor (in either direction — a stage
  // that *speeds up* relative to the adopted plan signals a cleared
  // straggler just as a slowdown signals a new one).
  double trigger_threshold = 1.15;
  // Hysteresis: this many *consecutive* deviant windows are required
  // before PersistentDeviation() reports true. A transient one-window
  // blip can never trigger a re-plan when this is >= 2.
  int hysteresis_windows = 2;

  // Throws CheckError on window < 1, min_observations outside
  // [1, window], trigger_threshold <= 1, or hysteresis_windows < 1.
  void Validate() const;
};

// Estimates a profile from a partial window: `window_busy_sum[i]` is the
// per-stage busy time accumulated over `observed` iterations, and
// `baseline_busy[i]` the expected busy time of one iteration under the
// current plan. Per-stage ratios are normalized by their (lower) median
// so that a *uniform* dilation — a degraded fleet running every stage
// proportionally slower — does not read as a straggler, then floored at
// 1 to satisfy the StageProfile contract. Stages with zero baseline
// report 1. Throws CheckError on size mismatch, observed < 1, or
// negative busy times.
StageProfile EstimateStageSlowdowns(const std::vector<Seconds>& baseline_busy,
                                    const std::vector<Seconds>& window_busy_sum, int observed);

// Sliding-window slowdown detector. Feed one Observe() per iteration;
// every `window` observations close a window, whose median-normalized
// busy ratios are tested against the trigger threshold. Only after
// `hysteresis_windows` consecutive deviant windows does
// PersistentDeviation() fire — and a single clean window re-arms it.
// After the control loop adopts a re-plan it calls Reset() with the new
// plan's expected busy times, so the detector always measures deviation
// from *the plan currently executing*.
class SlowdownWindowEstimator {
 public:
  // An empty baseline makes a dormant estimator (Observe() checks).
  SlowdownWindowEstimator() = default;
  explicit SlowdownWindowEstimator(std::vector<Seconds> baseline_busy,
                                   const WindowedProfileOptions& options = {});

  // Replaces the baseline and clears every window and hysteresis state.
  void Reset(std::vector<Seconds> baseline_busy);

  // Feeds one iteration's per-stage busy times; returns true when this
  // observation closed a window. Throws CheckError on size mismatch or
  // an unset baseline.
  bool Observe(const std::vector<Seconds>& busy);

  // Closes the currently accumulating window early (a state transition
  // does not wait for a full window). Counts only when the partial
  // window passes the confidence gate (>= min_observations); otherwise
  // the observations are discarded. Returns true when a window closed.
  bool ClosePartialWindow();

  // Profile over the currently accumulating partial window (all-1 when
  // under the confidence gate).
  StageProfile PartialProfile() const;

  // Profile of the last closed window (empty before the first closes).
  const StageProfile& WindowProfile() const;
  // Raw median-normalized busy ratios of the last closed window —
  // unlike WindowProfile they can dip below 1 (a stage running *faster*
  // than the plan expected). Empty before the first window closes.
  const std::vector<double>& WindowRatios() const;

  // True once >= hysteresis_windows consecutive closed windows were
  // deviant (threshold crossed in either direction).
  bool PersistentDeviation() const;

  int deviant_windows() const { return deviant_windows_; }
  int windows_closed() const { return windows_closed_; }
  const WindowedProfileOptions& options() const { return options_; }
  const std::vector<Seconds>& baseline() const { return baseline_; }

 private:
  void CloseWindow();

  WindowedProfileOptions options_;
  std::vector<Seconds> baseline_;
  std::vector<Seconds> accum_;     // busy sums of the open window
  int accum_count_ = 0;
  StageProfile window_profile_;    // last closed window
  std::vector<double> window_ratios_;
  int deviant_windows_ = 0;        // consecutive deviant closed windows
  int windows_closed_ = 0;
};

// Bottleneck-minimizing partitioner: splits `total_units` identical
// units across `slowdown.size()` workers so that the maximum of
// units_i · slowdown_i is minimized, subject to units_i >= min_units.
// Exact (binary search over the candidate bottlenecks + greedy trim).
// Generalizes the uniform split: all-equal slowdowns return the even
// partition. Throws CheckError when total_units < workers · min_units
// or any slowdown is not finite and positive.
std::vector<int> PartitionUnitsBySpeed(int total_units, const std::vector<double>& slowdown,
                                       int min_units);

struct RebalanceOptions {
  // Mitigation axes (see file comment). Each can be disabled to ablate.
  bool repartition_layers = true;
  bool rebalance_slices = true;
  bool retune_caps = true;

  // Layer re-partitioning: partition units per chunk in the unmitigated
  // plan (total = units_per_chunk · num_chunks). 0 disables axis 1.
  int units_per_chunk = 0;
  int min_units_per_chunk = 1;

  // Slice re-balancing: model + per-rank sequence the slices partition.
  // A default-constructed config (hidden == 0) or seq_len == 0 disables
  // axis 2.
  model::TransformerConfig config;
  std::int64_t seq_len = 0;
  std::int64_t slice_alignment = 1;
  // Weighted objective for the re-solve; the default model reproduces
  // the FLOPs-balanced partition (no-op unless base_spans differ).
  model::SliceTimeModel slice_time;
  // The spans the unmitigated cost model prices (empty = FLOPs-balanced
  // spans of (config, seq_len), aligned to slice_alignment).
  std::vector<model::SliceSpan> base_spans;

  // Cap re-tuning: the unmitigated per-stage in-flight caps (empty
  // disables axis 3; MitigateStragglers derives them from the input
  // schedule via PeakRetainedForwards).
  std::vector<int> base_caps;
};

// The mitigated assignment: what moved, and the predicted payoff.
struct RebalancePlan {
  StageProfile profile;

  // Axis 1 — partition units per global chunk (old == new when disabled).
  std::vector<int> old_units;
  std::vector<int> new_units;
  // Axis 2 — slice spans (empty when disabled).
  std::vector<model::SliceSpan> old_spans;
  std::vector<model::SliceSpan> new_spans;
  // Axis 3 — per-stage in-flight caps (empty when disabled).
  std::vector<int> old_caps;
  std::vector<int> new_caps;

  // Predicted bottleneck ratio max_i(load_old) / max_i(load_new) where
  // load_i = slowdown_i · units on stage i; 1.0 when axis 1 is off.
  double predicted_gain = 1.0;

  bool repartitioned() const { return old_units != new_units; }
  bool resliced() const { return old_spans != new_spans; }
  bool retuned() const { return old_caps != new_caps; }
  bool any_change() const { return repartitioned() || resliced() || retuned(); }

  // new/old unit share of one chunk / of one stage's chunks (1.0 when
  // axis 1 is off).
  double unit_ratio(int chunk) const;
  double stage_unit_ratio(const sched::PipelineProblem& problem, int stage) const;

  // One-line human summary, e.g.
  //   "units 8,8,8,8 -> 10,9,4,9; caps 7,6,5,4 -> 6,6,9,4; gain 1.60x".
  std::string Summary() const;
  // Per-stage annotation labels for the trace layer (ASCII timeline rows,
  // Chrome-trace thread names), e.g. "x2.00 units 8->4 cap 5->9".
  std::vector<std::string> StageLabels(const sched::PipelineProblem& problem) const;
};

// Computes the mitigated plan for `profile`. Pure planning — nothing is
// simulated. Throws CheckError on inconsistent inputs (profile size,
// base_caps size, base_spans not covering [0, seq_len)).
RebalancePlan Rebalance(const StageProfile& profile, const sched::PipelineProblem& problem,
                        const RebalanceOptions& options);

// Adapter re-pricing a base cost model under a RebalancePlan: compute
// times (including per-GEMM W durations) scale with the chunk's unit
// ratio and the slice's re-balanced FLOPs ratio; transfers with the
// slice's token ratio (boundary tensors are layer-count independent);
// activation footprints with both; DP gradient buckets with the chunk's
// unit ratio (a chunk's parameter volume tracks its layer share). The W
// GEMM *count* stays the base model's — the decomposition granularity is
// a property of its chunk shape (inherited forwarding). Works over any
// base model (uniform or training). Holds `base` by reference — it must
// outlive this wrapper, or build through sim::CostModelStack
// (stack.Wrap<core::RebalancedCostModel>(problem, plan, config)), which
// owns the chain.
class RebalancedCostModel : public sim::WrappingCostModel {
 public:
  // `config` prices the slice re-balance (axis 2); pass a default config
  // when plan.resliced() is false. Throws CheckError when the plan's
  // chunk count disagrees with `problem`.
  RebalancedCostModel(const sim::CostModel& base, const sched::PipelineProblem& problem,
                      const RebalancePlan& plan, const model::TransformerConfig& config = {});

  Seconds ComputeTime(const sched::OpId& op) const override;
  Seconds TransferTime(const sched::OpId& producer) const override;
  Bytes ActivationBytes(const sched::OpId& forward) const override;
  Bytes ActGradBytes(const sched::OpId& backward) const override;
  Seconds DpSyncTime(const sched::OpId& bucket) const override;

 private:
  std::vector<double> unit_ratio_;      // per chunk
  std::vector<double> forward_ratio_;   // per slice (empty = 1)
  std::vector<double> backward_ratio_;  // per slice
  std::vector<double> wgrad_ratio_;     // per slice
  std::vector<double> token_ratio_;     // per slice
};

struct MitigationOptions {
  RebalanceOptions rebalance;
  // Engine options for all three runs; its fault_plan field is ignored
  // (the driver installs the plan itself for the faulted/mitigated runs).
  sim::EngineOptions engine;
  // Override the measured profile (empty = estimate from clean vs
  // faulted busy times).
  StageProfile profile;
};

// The estimate → rebalance → resimulate report.
struct MitigationReport {
  StageProfile profile;         // the slowdowns mitigation planned for
  RebalancePlan plan;
  Seconds clean_makespan = 0;     // original schedule, no faults
  Seconds faulted_makespan = 0;   // original schedule under the plan
  Seconds mitigated_makespan = 0; // rebalanced schedule under the plan
  sched::Schedule mitigated_schedule;
  sim::SimResult faulted;
  sim::SimResult mitigated;

  double degradation() const;            // faulted / clean
  double mitigated_degradation() const;  // mitigated / clean
  double improvement() const;            // faulted / mitigated
};

// Runs `schedule` clean and under `faults`, estimates the per-stage
// slowdown, rebalances, regenerates the program order (backward-first,
// child-count priority, per-stage time scaling), and re-simulates the
// mitigated schedule under the same fault plan. Throws CheckError on
// invalid inputs.
MitigationReport MitigateStragglers(const sched::Schedule& schedule, const sim::CostModel& costs,
                                    const sim::FaultPlan& faults,
                                    const MitigationOptions& options = {});

}  // namespace mepipe::core

#endif  // MEPIPE_CORE_REBALANCE_H_
