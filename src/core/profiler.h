// The profiler component of the paper's implementation (§6): MEPipe
// "includes (1) a profiler that measures the computation time and memory
// consumption for each forward and backward pass".
//
// Here the profiler digests an executed timeline into per-(kind, slice,
// chunk) duration statistics, and ProfiledCostModel replays those
// measurements as a cost model — closing the paper's profiler →
// scheduler → engine loop: simulate once with analytic costs, profile,
// re-plan with measured costs.
#ifndef MEPIPE_CORE_PROFILER_H_
#define MEPIPE_CORE_PROFILER_H_

#include <map>
#include <string>

#include "sim/cost_model.h"
#include "sim/engine.h"

namespace mepipe::core {

struct OpStats {
  int count = 0;
  Seconds total = 0;
  Seconds min = 0;
  Seconds max = 0;

  Seconds mean() const { return count > 0 ? total / count : 0.0; }
};

class Profile {
 public:
  // Aggregates the compute spans of a simulated run. Micro-batch index
  // is dropped (durations are micro-invariant); (kind, slice, chunk) is
  // the key, matching how the cost model is indexed.
  static Profile FromResult(const sim::SimResult& result);

  const OpStats* Find(sched::OpKind kind, int slice, int chunk) const;
  // Mean duration across every op of `kind`.
  Seconds MeanOf(sched::OpKind kind) const;
  std::size_t distinct_ops() const { return stats_.size(); }

  // Human-readable per-kind summary (the §6 profiler's report).
  std::string Report() const;

 private:
  struct Key {
    sched::OpKind kind;
    int slice;
    int chunk;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  std::map<Key, OpStats> stats_;
};

// A cost model that replays profiled durations, falling back to a base
// model for ops the profile never saw (and for transfers/memory, which
// the profile does not capture).
class ProfiledCostModel : public sim::CostModel {
 public:
  ProfiledCostModel(Profile profile, const sim::CostModel& fallback)
      : profile_(std::move(profile)), fallback_(fallback) {}

  Seconds ComputeTime(const sched::OpId& op) const override;
  Seconds TransferTime(const sched::OpId& producer) const override;
  Bytes ActivationBytes(const sched::OpId& forward) const override;
  Bytes ActGradBytes(const sched::OpId& backward) const override;
  int WeightGradGemmCount(const sched::OpId& wgrad) const override;

 private:
  Profile profile_;
  const sim::CostModel& fallback_;
};

}  // namespace mepipe::core

#endif  // MEPIPE_CORE_PROFILER_H_
