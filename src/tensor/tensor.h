// A minimal dense float tensor. Exists so the reference transformer
// (src/ref) can demonstrate *numerically* that slice-level pipeline
// execution — forward with a K/V cache, backward in reverse slice order
// with dK/dV accumulators, weight gradients deferred per GEMM — computes
// exactly the gradients of whole-sequence execution. Performance is a
// non-goal (the performance substrate is the simulator).
#ifndef MEPIPE_TENSOR_TENSOR_H_
#define MEPIPE_TENSOR_TENSOR_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace mepipe::tensor {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::int64_t> shape);

  static Tensor Zeros(std::vector<std::int64_t> shape);
  // Gaussian init, scaled like typical transformer init (std = `scale`).
  static Tensor Randn(std::vector<std::int64_t> shape, std::mt19937& rng, float scale);

  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t dim(int i) const { return shape_[static_cast<std::size_t>(i)]; }
  int rank() const { return static_cast<int>(shape_.size()); }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  // 2-D accessors (most of the reference model is [rows, cols]).
  float& at(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(r * dim(1) + c)];
  }
  float at(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * dim(1) + c)];
  }
  float& at(std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float at(std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  // Rows [begin, end) of a 2-D tensor, copied.
  Tensor RowSlice(std::int64_t begin, std::int64_t end) const;

  // Appends the rows of `rows` (same column count) to this 2-D tensor.
  void AppendRows(const Tensor& rows);

  // this += other (same shape).
  void Add(const Tensor& other);
  // this += alpha * other.
  void Axpy(float alpha, const Tensor& other);
  void Fill(float value);
  void Scale(float value);

  // Max |a - b| over all elements; shapes must match.
  static float MaxAbsDiff(const Tensor& a, const Tensor& b);

 private:
  std::vector<std::int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace mepipe::tensor

#endif  // MEPIPE_TENSOR_TENSOR_H_
