#include "tensor/ops.h"

#include <cmath>

namespace mepipe::tensor {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  MEPIPE_CHECK_EQ(a.rank(), 2);
  MEPIPE_CHECK_EQ(b.rank(), 2);
  MEPIPE_CHECK_EQ(a.dim(1), b.dim(0));
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t l = 0; l < k; ++l) {
      const float av = a.at(i, l);
      if (av == 0.0f) {
        continue;
      }
      for (std::int64_t j = 0; j < n; ++j) {
        c.at(i, j) += av * b.at(l, j);
      }
    }
  }
  return c;
}

Tensor MatMulTa(const Tensor& a, const Tensor& b) {
  MEPIPE_CHECK_EQ(a.rank(), 2);
  MEPIPE_CHECK_EQ(b.rank(), 2);
  MEPIPE_CHECK_EQ(a.dim(0), b.dim(0));
  const std::int64_t k = a.dim(0);
  const std::int64_t m = a.dim(1);
  const std::int64_t n = b.dim(1);
  Tensor c({m, n});
  for (std::int64_t l = 0; l < k; ++l) {
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = a.at(l, i);
      if (av == 0.0f) {
        continue;
      }
      for (std::int64_t j = 0; j < n; ++j) {
        c.at(i, j) += av * b.at(l, j);
      }
    }
  }
  return c;
}

Tensor MatMulTb(const Tensor& a, const Tensor& b) {
  MEPIPE_CHECK_EQ(a.rank(), 2);
  MEPIPE_CHECK_EQ(b.rank(), 2);
  MEPIPE_CHECK_EQ(a.dim(1), b.dim(1));
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(0);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float sum = 0.0f;
      for (std::int64_t l = 0; l < k; ++l) {
        sum += a.at(i, l) * b.at(j, l);
      }
      c.at(i, j) = sum;
    }
  }
  return c;
}

Tensor Silu(const Tensor& x) {
  Tensor y = x;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    const float v = y.at(i);
    y.at(i) = v / (1.0f + std::exp(-v));
  }
  return y;
}

Tensor SiluBackward(const Tensor& x, const Tensor& dy) {
  MEPIPE_CHECK(x.shape() == dy.shape());
  Tensor dx = x;
  for (std::int64_t i = 0; i < dx.numel(); ++i) {
    const float v = x.at(i);
    const float sig = 1.0f / (1.0f + std::exp(-v));
    const float d = sig * (1.0f + v * (1.0f - sig));
    dx.at(i) = dy.at(i) * d;
  }
  return dx;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  MEPIPE_CHECK(a.shape() == b.shape());
  Tensor c = a;
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    c.at(i) *= b.at(i);
  }
  return c;
}

RmsNormResult RmsNorm(const Tensor& x, const Tensor& w, float eps) {
  MEPIPE_CHECK_EQ(x.rank(), 2);
  const std::int64_t m = x.dim(0);
  const std::int64_t h = x.dim(1);
  MEPIPE_CHECK_EQ(w.numel(), h);
  RmsNormResult out{Tensor({m, h}), Tensor({m})};
  for (std::int64_t i = 0; i < m; ++i) {
    double sum_sq = 0;
    for (std::int64_t j = 0; j < h; ++j) {
      sum_sq += static_cast<double>(x.at(i, j)) * x.at(i, j);
    }
    const float inv = 1.0f / std::sqrt(static_cast<float>(sum_sq / static_cast<double>(h)) + eps);
    out.inv_rms.at(i) = inv;
    for (std::int64_t j = 0; j < h; ++j) {
      out.y.at(i, j) = x.at(i, j) * inv * w.at(j);
    }
  }
  return out;
}

RmsNormGrads RmsNormBackward(const Tensor& x, const Tensor& w, const Tensor& inv_rms,
                             const Tensor& dy, float /*eps*/) {
  const std::int64_t m = x.dim(0);
  const std::int64_t h = x.dim(1);
  RmsNormGrads out{Tensor({m, h}), Tensor({h})};
  for (std::int64_t i = 0; i < m; ++i) {
    const float inv = inv_rms.at(i);
    // dL/dw_j += dy_ij * x_ij * inv.
    double dot = 0;  // Σ_j dy_ij * w_j * x_ij
    for (std::int64_t j = 0; j < h; ++j) {
      out.dw.at(j) += dy.at(i, j) * x.at(i, j) * inv;
      dot += static_cast<double>(dy.at(i, j)) * w.at(j) * x.at(i, j);
    }
    const float scale = static_cast<float>(dot) * inv * inv * inv / static_cast<float>(h);
    for (std::int64_t j = 0; j < h; ++j) {
      out.dx.at(i, j) = dy.at(i, j) * w.at(j) * inv - x.at(i, j) * scale;
    }
  }
  return out;
}

Tensor SoftmaxRows(const Tensor& scores) {
  MEPIPE_CHECK_EQ(scores.rank(), 2);
  const std::int64_t m = scores.dim(0);
  const std::int64_t n = scores.dim(1);
  Tensor probs({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    float max_v = scores.at(i, 0);
    for (std::int64_t j = 1; j < n; ++j) {
      max_v = std::max(max_v, scores.at(i, j));
    }
    double sum = 0;
    for (std::int64_t j = 0; j < n; ++j) {
      const float e = std::exp(scores.at(i, j) - max_v);
      probs.at(i, j) = e;
      sum += e;
    }
    const float inv = 1.0f / static_cast<float>(sum);
    for (std::int64_t j = 0; j < n; ++j) {
      probs.at(i, j) *= inv;
    }
  }
  return probs;
}

Tensor SoftmaxRowsBackward(const Tensor& probs, const Tensor& dprobs) {
  MEPIPE_CHECK(probs.shape() == dprobs.shape());
  const std::int64_t m = probs.dim(0);
  const std::int64_t n = probs.dim(1);
  Tensor dscores({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    double dot = 0;
    for (std::int64_t j = 0; j < n; ++j) {
      dot += static_cast<double>(probs.at(i, j)) * dprobs.at(i, j);
    }
    for (std::int64_t j = 0; j < n; ++j) {
      dscores.at(i, j) = probs.at(i, j) * (dprobs.at(i, j) - static_cast<float>(dot));
    }
  }
  return dscores;
}

Tensor Embed(const Tensor& table, const std::vector<std::int64_t>& ids) {
  MEPIPE_CHECK_EQ(table.rank(), 2);
  const std::int64_t h = table.dim(1);
  Tensor out({static_cast<std::int64_t>(ids.size()), h});
  for (std::size_t i = 0; i < ids.size(); ++i) {
    MEPIPE_CHECK_GE(ids[i], 0);
    MEPIPE_CHECK_LT(ids[i], table.dim(0));
    for (std::int64_t j = 0; j < h; ++j) {
      out.at(static_cast<std::int64_t>(i), j) = table.at(ids[i], j);
    }
  }
  return out;
}

void EmbedBackward(const std::vector<std::int64_t>& ids, const Tensor& dy, Tensor& dtable) {
  MEPIPE_CHECK_EQ(dy.dim(0), static_cast<std::int64_t>(ids.size()));
  MEPIPE_CHECK_EQ(dy.dim(1), dtable.dim(1));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::int64_t j = 0; j < dy.dim(1); ++j) {
      dtable.at(ids[i], j) += dy.at(static_cast<std::int64_t>(i), j);
    }
  }
}

CrossEntropyResult CrossEntropy(const Tensor& logits, const std::vector<std::int64_t>& targets) {
  MEPIPE_CHECK_EQ(logits.dim(0), static_cast<std::int64_t>(targets.size()));
  const Tensor probs = SoftmaxRows(logits);
  CrossEntropyResult out;
  out.dlogits = probs;
  const std::int64_t m = logits.dim(0);
  const float inv_m = 1.0f / static_cast<float>(m);
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int64_t target = targets[static_cast<std::size_t>(i)];
    MEPIPE_CHECK_GE(target, 0);
    MEPIPE_CHECK_LT(target, logits.dim(1));
    out.loss -= std::log(std::max(1e-20, static_cast<double>(probs.at(i, target))));
    out.dlogits.at(i, target) -= 1.0f;
  }
  out.loss /= static_cast<double>(m);
  out.dlogits.Scale(inv_m);
  return out;
}

}  // namespace mepipe::tensor
