// Dense math primitives for the reference transformer: matmuls (with
// the transposed variants backward passes need), RMSNorm, SiLU, row-wise
// softmax, embedding lookup, and cross-entropy — each with its backward.
// All plain loops over float32; correctness is the only goal.
#ifndef MEPIPE_TENSOR_OPS_H_
#define MEPIPE_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace mepipe::tensor {

// C[m,n] = A[m,k] · B[k,n]
Tensor MatMul(const Tensor& a, const Tensor& b);
// C[m,n] = A[k,m]ᵀ · B[k,n]   (dW = Xᵀ·dY)
Tensor MatMulTa(const Tensor& a, const Tensor& b);
// C[m,n] = A[m,k] · B[n,k]ᵀ   (dX = dY·Wᵀ)
Tensor MatMulTb(const Tensor& a, const Tensor& b);

// y = x ⊙ sigmoid(x) (SiLU), elementwise; and its backward.
Tensor Silu(const Tensor& x);
Tensor SiluBackward(const Tensor& x, const Tensor& dy);

// z = a ⊙ b elementwise.
Tensor Mul(const Tensor& a, const Tensor& b);

// RMSNorm over the last dimension of x[m,h] with learned scale w[h].
struct RmsNormResult {
  Tensor y;        // [m,h]
  Tensor inv_rms;  // [m] saved for backward
};
RmsNormResult RmsNorm(const Tensor& x, const Tensor& w, float eps = 1e-5f);
struct RmsNormGrads {
  Tensor dx;  // [m,h]
  Tensor dw;  // [h]
};
RmsNormGrads RmsNormBackward(const Tensor& x, const Tensor& w, const Tensor& inv_rms,
                             const Tensor& dy, float eps = 1e-5f);

// Row-wise softmax of scores[m,n]; backward given saved probabilities.
Tensor SoftmaxRows(const Tensor& scores);
Tensor SoftmaxRowsBackward(const Tensor& probs, const Tensor& dprobs);

// Embedding lookup: table[V,h], ids[m] → [m,h]; backward scatters.
Tensor Embed(const Tensor& table, const std::vector<std::int64_t>& ids);
void EmbedBackward(const std::vector<std::int64_t>& ids, const Tensor& dy, Tensor& dtable);

// Mean cross-entropy of logits[m,V] against targets[m] (token ids);
// also returns dlogits for the mean loss.
struct CrossEntropyResult {
  double loss = 0;
  Tensor dlogits;  // [m,V]
};
CrossEntropyResult CrossEntropy(const Tensor& logits, const std::vector<std::int64_t>& targets);

}  // namespace mepipe::tensor

#endif  // MEPIPE_TENSOR_OPS_H_
