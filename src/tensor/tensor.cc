#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>

namespace mepipe::tensor {
namespace {

std::int64_t NumelOf(const std::vector<std::int64_t>& shape) {
  std::int64_t n = 1;
  for (const std::int64_t d : shape) {
    MEPIPE_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape)), data_(static_cast<std::size_t>(NumelOf(shape_)), 0.0f) {}

Tensor Tensor::Zeros(std::vector<std::int64_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Randn(std::vector<std::int64_t> shape, std::mt19937& rng, float scale) {
  Tensor out(std::move(shape));
  std::normal_distribution<float> dist(0.0f, scale);
  for (float& v : out.data_) {
    v = dist(rng);
  }
  return out;
}

Tensor Tensor::RowSlice(std::int64_t begin, std::int64_t end) const {
  MEPIPE_CHECK_EQ(rank(), 2);
  MEPIPE_CHECK_GE(begin, 0);
  MEPIPE_CHECK_LE(end, dim(0));
  MEPIPE_CHECK_LE(begin, end);
  const std::int64_t cols = dim(1);
  Tensor out({end - begin, cols});
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * cols),
            data_.begin() + static_cast<std::ptrdiff_t>(end * cols), out.data_.begin());
  return out;
}

void Tensor::AppendRows(const Tensor& rows) {
  MEPIPE_CHECK_EQ(rank(), 2);
  MEPIPE_CHECK_EQ(rows.rank(), 2);
  MEPIPE_CHECK_EQ(dim(1), rows.dim(1));
  data_.insert(data_.end(), rows.data_.begin(), rows.data_.end());
  shape_[0] += rows.dim(0);
}

void Tensor::Add(const Tensor& other) { Axpy(1.0f, other); }

void Tensor::Axpy(float alpha, const Tensor& other) {
  MEPIPE_CHECK(shape_ == other.shape_) << "shape mismatch in Axpy";
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Tensor::Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::Scale(float value) {
  for (float& v : data_) {
    v *= value;
  }
}

float Tensor::MaxAbsDiff(const Tensor& a, const Tensor& b) {
  MEPIPE_CHECK(a.shape_ == b.shape_) << "shape mismatch in MaxAbsDiff";
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a.data_[i] - b.data_[i]));
  }
  return max_diff;
}

}  // namespace mepipe::tensor
