file(REMOVE_RECURSE
  "CMakeFiles/schedule_gallery.dir/schedule_gallery.cpp.o"
  "CMakeFiles/schedule_gallery.dir/schedule_gallery.cpp.o.d"
  "schedule_gallery"
  "schedule_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
