# Empty dependencies file for schedule_gallery.
# This may be replaced when dependencies are built.
