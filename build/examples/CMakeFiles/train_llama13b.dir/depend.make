# Empty dependencies file for train_llama13b.
# This may be replaced when dependencies are built.
