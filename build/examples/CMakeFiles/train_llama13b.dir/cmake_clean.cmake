file(REMOVE_RECURSE
  "CMakeFiles/train_llama13b.dir/train_llama13b.cpp.o"
  "CMakeFiles/train_llama13b.dir/train_llama13b.cpp.o.d"
  "train_llama13b"
  "train_llama13b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_llama13b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
