file(REMOVE_RECURSE
  "CMakeFiles/profile_and_export.dir/profile_and_export.cpp.o"
  "CMakeFiles/profile_and_export.dir/profile_and_export.cpp.o.d"
  "profile_and_export"
  "profile_and_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_and_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
