file(REMOVE_RECURSE
  "libmepipe_sched.a"
)
