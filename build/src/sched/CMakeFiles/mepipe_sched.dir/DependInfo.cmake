
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/baselines.cc" "src/sched/CMakeFiles/mepipe_sched.dir/baselines.cc.o" "gcc" "src/sched/CMakeFiles/mepipe_sched.dir/baselines.cc.o.d"
  "/root/repo/src/sched/dependency.cc" "src/sched/CMakeFiles/mepipe_sched.dir/dependency.cc.o" "gcc" "src/sched/CMakeFiles/mepipe_sched.dir/dependency.cc.o.d"
  "/root/repo/src/sched/generator.cc" "src/sched/CMakeFiles/mepipe_sched.dir/generator.cc.o" "gcc" "src/sched/CMakeFiles/mepipe_sched.dir/generator.cc.o.d"
  "/root/repo/src/sched/op.cc" "src/sched/CMakeFiles/mepipe_sched.dir/op.cc.o" "gcc" "src/sched/CMakeFiles/mepipe_sched.dir/op.cc.o.d"
  "/root/repo/src/sched/schedule.cc" "src/sched/CMakeFiles/mepipe_sched.dir/schedule.cc.o" "gcc" "src/sched/CMakeFiles/mepipe_sched.dir/schedule.cc.o.d"
  "/root/repo/src/sched/serialize.cc" "src/sched/CMakeFiles/mepipe_sched.dir/serialize.cc.o" "gcc" "src/sched/CMakeFiles/mepipe_sched.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mepipe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
