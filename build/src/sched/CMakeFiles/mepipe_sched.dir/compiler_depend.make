# Empty compiler generated dependencies file for mepipe_sched.
# This may be replaced when dependencies are built.
