file(REMOVE_RECURSE
  "CMakeFiles/mepipe_sched.dir/baselines.cc.o"
  "CMakeFiles/mepipe_sched.dir/baselines.cc.o.d"
  "CMakeFiles/mepipe_sched.dir/dependency.cc.o"
  "CMakeFiles/mepipe_sched.dir/dependency.cc.o.d"
  "CMakeFiles/mepipe_sched.dir/generator.cc.o"
  "CMakeFiles/mepipe_sched.dir/generator.cc.o.d"
  "CMakeFiles/mepipe_sched.dir/op.cc.o"
  "CMakeFiles/mepipe_sched.dir/op.cc.o.d"
  "CMakeFiles/mepipe_sched.dir/schedule.cc.o"
  "CMakeFiles/mepipe_sched.dir/schedule.cc.o.d"
  "CMakeFiles/mepipe_sched.dir/serialize.cc.o"
  "CMakeFiles/mepipe_sched.dir/serialize.cc.o.d"
  "libmepipe_sched.a"
  "libmepipe_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mepipe_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
