file(REMOVE_RECURSE
  "libmepipe_tensor.a"
)
