file(REMOVE_RECURSE
  "CMakeFiles/mepipe_tensor.dir/ops.cc.o"
  "CMakeFiles/mepipe_tensor.dir/ops.cc.o.d"
  "CMakeFiles/mepipe_tensor.dir/tensor.cc.o"
  "CMakeFiles/mepipe_tensor.dir/tensor.cc.o.d"
  "libmepipe_tensor.a"
  "libmepipe_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mepipe_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
