# Empty dependencies file for mepipe_tensor.
# This may be replaced when dependencies are built.
