# Empty dependencies file for mepipe_common.
# This may be replaced when dependencies are built.
