file(REMOVE_RECURSE
  "libmepipe_common.a"
)
