file(REMOVE_RECURSE
  "CMakeFiles/mepipe_common.dir/check.cc.o"
  "CMakeFiles/mepipe_common.dir/check.cc.o.d"
  "CMakeFiles/mepipe_common.dir/format.cc.o"
  "CMakeFiles/mepipe_common.dir/format.cc.o.d"
  "CMakeFiles/mepipe_common.dir/units.cc.o"
  "CMakeFiles/mepipe_common.dir/units.cc.o.d"
  "libmepipe_common.a"
  "libmepipe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mepipe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
