file(REMOVE_RECURSE
  "libmepipe_ref.a"
)
