file(REMOVE_RECURSE
  "CMakeFiles/mepipe_ref.dir/ref_model.cc.o"
  "CMakeFiles/mepipe_ref.dir/ref_model.cc.o.d"
  "libmepipe_ref.a"
  "libmepipe_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mepipe_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
