
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ref/ref_model.cc" "src/ref/CMakeFiles/mepipe_ref.dir/ref_model.cc.o" "gcc" "src/ref/CMakeFiles/mepipe_ref.dir/ref_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mepipe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mepipe_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mepipe_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
