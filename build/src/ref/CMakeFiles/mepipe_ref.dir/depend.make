# Empty dependencies file for mepipe_ref.
# This may be replaced when dependencies are built.
