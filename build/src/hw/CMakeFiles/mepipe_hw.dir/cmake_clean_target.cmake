file(REMOVE_RECURSE
  "libmepipe_hw.a"
)
