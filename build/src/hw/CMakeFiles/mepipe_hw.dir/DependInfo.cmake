
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cluster.cc" "src/hw/CMakeFiles/mepipe_hw.dir/cluster.cc.o" "gcc" "src/hw/CMakeFiles/mepipe_hw.dir/cluster.cc.o.d"
  "/root/repo/src/hw/comm_model.cc" "src/hw/CMakeFiles/mepipe_hw.dir/comm_model.cc.o" "gcc" "src/hw/CMakeFiles/mepipe_hw.dir/comm_model.cc.o.d"
  "/root/repo/src/hw/efficiency.cc" "src/hw/CMakeFiles/mepipe_hw.dir/efficiency.cc.o" "gcc" "src/hw/CMakeFiles/mepipe_hw.dir/efficiency.cc.o.d"
  "/root/repo/src/hw/gpu.cc" "src/hw/CMakeFiles/mepipe_hw.dir/gpu.cc.o" "gcc" "src/hw/CMakeFiles/mepipe_hw.dir/gpu.cc.o.d"
  "/root/repo/src/hw/interconnect.cc" "src/hw/CMakeFiles/mepipe_hw.dir/interconnect.cc.o" "gcc" "src/hw/CMakeFiles/mepipe_hw.dir/interconnect.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mepipe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mepipe_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
