file(REMOVE_RECURSE
  "CMakeFiles/mepipe_hw.dir/cluster.cc.o"
  "CMakeFiles/mepipe_hw.dir/cluster.cc.o.d"
  "CMakeFiles/mepipe_hw.dir/comm_model.cc.o"
  "CMakeFiles/mepipe_hw.dir/comm_model.cc.o.d"
  "CMakeFiles/mepipe_hw.dir/efficiency.cc.o"
  "CMakeFiles/mepipe_hw.dir/efficiency.cc.o.d"
  "CMakeFiles/mepipe_hw.dir/gpu.cc.o"
  "CMakeFiles/mepipe_hw.dir/gpu.cc.o.d"
  "CMakeFiles/mepipe_hw.dir/interconnect.cc.o"
  "CMakeFiles/mepipe_hw.dir/interconnect.cc.o.d"
  "libmepipe_hw.a"
  "libmepipe_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mepipe_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
