# Empty compiler generated dependencies file for mepipe_hw.
# This may be replaced when dependencies are built.
