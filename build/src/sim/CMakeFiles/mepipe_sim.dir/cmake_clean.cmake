file(REMOVE_RECURSE
  "CMakeFiles/mepipe_sim.dir/cost_model.cc.o"
  "CMakeFiles/mepipe_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/mepipe_sim.dir/engine.cc.o"
  "CMakeFiles/mepipe_sim.dir/engine.cc.o.d"
  "libmepipe_sim.a"
  "libmepipe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mepipe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
