file(REMOVE_RECURSE
  "libmepipe_sim.a"
)
