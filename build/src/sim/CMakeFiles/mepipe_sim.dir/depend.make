# Empty dependencies file for mepipe_sim.
# This may be replaced when dependencies are built.
