
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/flops.cc" "src/model/CMakeFiles/mepipe_model.dir/flops.cc.o" "gcc" "src/model/CMakeFiles/mepipe_model.dir/flops.cc.o.d"
  "/root/repo/src/model/memory.cc" "src/model/CMakeFiles/mepipe_model.dir/memory.cc.o" "gcc" "src/model/CMakeFiles/mepipe_model.dir/memory.cc.o.d"
  "/root/repo/src/model/slicing.cc" "src/model/CMakeFiles/mepipe_model.dir/slicing.cc.o" "gcc" "src/model/CMakeFiles/mepipe_model.dir/slicing.cc.o.d"
  "/root/repo/src/model/transformer.cc" "src/model/CMakeFiles/mepipe_model.dir/transformer.cc.o" "gcc" "src/model/CMakeFiles/mepipe_model.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mepipe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
