# Empty dependencies file for mepipe_model.
# This may be replaced when dependencies are built.
