file(REMOVE_RECURSE
  "libmepipe_model.a"
)
