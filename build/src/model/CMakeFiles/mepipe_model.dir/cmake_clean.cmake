file(REMOVE_RECURSE
  "CMakeFiles/mepipe_model.dir/flops.cc.o"
  "CMakeFiles/mepipe_model.dir/flops.cc.o.d"
  "CMakeFiles/mepipe_model.dir/memory.cc.o"
  "CMakeFiles/mepipe_model.dir/memory.cc.o.d"
  "CMakeFiles/mepipe_model.dir/slicing.cc.o"
  "CMakeFiles/mepipe_model.dir/slicing.cc.o.d"
  "CMakeFiles/mepipe_model.dir/transformer.cc.o"
  "CMakeFiles/mepipe_model.dir/transformer.cc.o.d"
  "libmepipe_model.a"
  "libmepipe_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mepipe_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
