file(REMOVE_RECURSE
  "CMakeFiles/mepipe_trace.dir/ascii.cc.o"
  "CMakeFiles/mepipe_trace.dir/ascii.cc.o.d"
  "CMakeFiles/mepipe_trace.dir/chrome_trace.cc.o"
  "CMakeFiles/mepipe_trace.dir/chrome_trace.cc.o.d"
  "CMakeFiles/mepipe_trace.dir/csv.cc.o"
  "CMakeFiles/mepipe_trace.dir/csv.cc.o.d"
  "CMakeFiles/mepipe_trace.dir/memory_timeline.cc.o"
  "CMakeFiles/mepipe_trace.dir/memory_timeline.cc.o.d"
  "libmepipe_trace.a"
  "libmepipe_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mepipe_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
