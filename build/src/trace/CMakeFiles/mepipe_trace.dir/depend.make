# Empty dependencies file for mepipe_trace.
# This may be replaced when dependencies are built.
