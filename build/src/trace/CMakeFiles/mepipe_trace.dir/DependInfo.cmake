
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/ascii.cc" "src/trace/CMakeFiles/mepipe_trace.dir/ascii.cc.o" "gcc" "src/trace/CMakeFiles/mepipe_trace.dir/ascii.cc.o.d"
  "/root/repo/src/trace/chrome_trace.cc" "src/trace/CMakeFiles/mepipe_trace.dir/chrome_trace.cc.o" "gcc" "src/trace/CMakeFiles/mepipe_trace.dir/chrome_trace.cc.o.d"
  "/root/repo/src/trace/csv.cc" "src/trace/CMakeFiles/mepipe_trace.dir/csv.cc.o" "gcc" "src/trace/CMakeFiles/mepipe_trace.dir/csv.cc.o.d"
  "/root/repo/src/trace/memory_timeline.cc" "src/trace/CMakeFiles/mepipe_trace.dir/memory_timeline.cc.o" "gcc" "src/trace/CMakeFiles/mepipe_trace.dir/memory_timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mepipe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mepipe_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mepipe_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
