file(REMOVE_RECURSE
  "libmepipe_trace.a"
)
