file(REMOVE_RECURSE
  "libmepipe_core.a"
)
