# Empty compiler generated dependencies file for mepipe_core.
# This may be replaced when dependencies are built.
