
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytic.cc" "src/core/CMakeFiles/mepipe_core.dir/analytic.cc.o" "gcc" "src/core/CMakeFiles/mepipe_core.dir/analytic.cc.o.d"
  "/root/repo/src/core/deployment.cc" "src/core/CMakeFiles/mepipe_core.dir/deployment.cc.o" "gcc" "src/core/CMakeFiles/mepipe_core.dir/deployment.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/mepipe_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/mepipe_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/iteration.cc" "src/core/CMakeFiles/mepipe_core.dir/iteration.cc.o" "gcc" "src/core/CMakeFiles/mepipe_core.dir/iteration.cc.o.d"
  "/root/repo/src/core/memory_model.cc" "src/core/CMakeFiles/mepipe_core.dir/memory_model.cc.o" "gcc" "src/core/CMakeFiles/mepipe_core.dir/memory_model.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/core/CMakeFiles/mepipe_core.dir/planner.cc.o" "gcc" "src/core/CMakeFiles/mepipe_core.dir/planner.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/core/CMakeFiles/mepipe_core.dir/profiler.cc.o" "gcc" "src/core/CMakeFiles/mepipe_core.dir/profiler.cc.o.d"
  "/root/repo/src/core/svpp.cc" "src/core/CMakeFiles/mepipe_core.dir/svpp.cc.o" "gcc" "src/core/CMakeFiles/mepipe_core.dir/svpp.cc.o.d"
  "/root/repo/src/core/training_cost.cc" "src/core/CMakeFiles/mepipe_core.dir/training_cost.cc.o" "gcc" "src/core/CMakeFiles/mepipe_core.dir/training_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mepipe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mepipe_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mepipe_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mepipe_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mepipe_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
