file(REMOVE_RECURSE
  "CMakeFiles/mepipe_core.dir/analytic.cc.o"
  "CMakeFiles/mepipe_core.dir/analytic.cc.o.d"
  "CMakeFiles/mepipe_core.dir/deployment.cc.o"
  "CMakeFiles/mepipe_core.dir/deployment.cc.o.d"
  "CMakeFiles/mepipe_core.dir/experiment.cc.o"
  "CMakeFiles/mepipe_core.dir/experiment.cc.o.d"
  "CMakeFiles/mepipe_core.dir/iteration.cc.o"
  "CMakeFiles/mepipe_core.dir/iteration.cc.o.d"
  "CMakeFiles/mepipe_core.dir/memory_model.cc.o"
  "CMakeFiles/mepipe_core.dir/memory_model.cc.o.d"
  "CMakeFiles/mepipe_core.dir/planner.cc.o"
  "CMakeFiles/mepipe_core.dir/planner.cc.o.d"
  "CMakeFiles/mepipe_core.dir/profiler.cc.o"
  "CMakeFiles/mepipe_core.dir/profiler.cc.o.d"
  "CMakeFiles/mepipe_core.dir/svpp.cc.o"
  "CMakeFiles/mepipe_core.dir/svpp.cc.o.d"
  "CMakeFiles/mepipe_core.dir/training_cost.cc.o"
  "CMakeFiles/mepipe_core.dir/training_cost.cc.o.d"
  "libmepipe_core.a"
  "libmepipe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mepipe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
