file(REMOVE_RECURSE
  "CMakeFiles/test_ref_model.dir/test_ref_model.cc.o"
  "CMakeFiles/test_ref_model.dir/test_ref_model.cc.o.d"
  "test_ref_model"
  "test_ref_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ref_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
