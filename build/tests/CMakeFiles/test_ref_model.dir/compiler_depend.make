# Empty compiler generated dependencies file for test_ref_model.
# This may be replaced when dependencies are built.
