# Empty compiler generated dependencies file for test_svpp.
# This may be replaced when dependencies are built.
