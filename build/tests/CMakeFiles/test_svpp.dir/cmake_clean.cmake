file(REMOVE_RECURSE
  "CMakeFiles/test_svpp.dir/test_svpp.cc.o"
  "CMakeFiles/test_svpp.dir/test_svpp.cc.o.d"
  "test_svpp"
  "test_svpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
