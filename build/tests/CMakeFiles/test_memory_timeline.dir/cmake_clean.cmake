file(REMOVE_RECURSE
  "CMakeFiles/test_memory_timeline.dir/test_memory_timeline.cc.o"
  "CMakeFiles/test_memory_timeline.dir/test_memory_timeline.cc.o.d"
  "test_memory_timeline"
  "test_memory_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
