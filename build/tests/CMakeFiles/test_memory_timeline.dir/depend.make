# Empty dependencies file for test_memory_timeline.
# This may be replaced when dependencies are built.
