
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_memory.cc" "tests/CMakeFiles/test_memory.dir/test_memory.cc.o" "gcc" "tests/CMakeFiles/test_memory.dir/test_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mepipe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mepipe_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mepipe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mepipe_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mepipe_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/ref/CMakeFiles/mepipe_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mepipe_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mepipe_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mepipe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
