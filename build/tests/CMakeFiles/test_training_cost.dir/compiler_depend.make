# Empty compiler generated dependencies file for test_training_cost.
# This may be replaced when dependencies are built.
