file(REMOVE_RECURSE
  "CMakeFiles/test_training_cost.dir/test_training_cost.cc.o"
  "CMakeFiles/test_training_cost.dir/test_training_cost.cc.o.d"
  "test_training_cost"
  "test_training_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_training_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
