file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_pp.dir/bench_table6_pp.cc.o"
  "CMakeFiles/bench_table6_pp.dir/bench_table6_pp.cc.o.d"
  "bench_table6_pp"
  "bench_table6_pp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_pp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
