# Empty compiler generated dependencies file for bench_table6_pp.
# This may be replaced when dependencies are built.
