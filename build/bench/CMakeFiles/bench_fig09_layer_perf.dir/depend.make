# Empty dependencies file for bench_fig09_layer_perf.
# This may be replaced when dependencies are built.
