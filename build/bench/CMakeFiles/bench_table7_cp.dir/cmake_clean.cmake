file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_cp.dir/bench_table7_cp.cc.o"
  "CMakeFiles/bench_table7_cp.dir/bench_table7_cp.cc.o.d"
  "bench_table7_cp"
  "bench_table7_cp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_cp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
