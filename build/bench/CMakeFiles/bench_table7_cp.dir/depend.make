# Empty dependencies file for bench_table7_cp.
# This may be replaced when dependencies are built.
