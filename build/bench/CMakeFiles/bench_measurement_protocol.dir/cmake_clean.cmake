file(REMOVE_RECURSE
  "CMakeFiles/bench_measurement_protocol.dir/bench_measurement_protocol.cc.o"
  "CMakeFiles/bench_measurement_protocol.dir/bench_measurement_protocol.cc.o.d"
  "bench_measurement_protocol"
  "bench_measurement_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_measurement_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
