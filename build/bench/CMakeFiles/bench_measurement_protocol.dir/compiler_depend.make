# Empty compiler generated dependencies file for bench_measurement_protocol.
# This may be replaced when dependencies are built.
