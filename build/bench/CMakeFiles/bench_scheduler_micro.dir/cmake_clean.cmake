file(REMOVE_RECURSE
  "CMakeFiles/bench_scheduler_micro.dir/bench_scheduler_micro.cc.o"
  "CMakeFiles/bench_scheduler_micro.dir/bench_scheduler_micro.cc.o.d"
  "bench_scheduler_micro"
  "bench_scheduler_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheduler_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
