# Empty compiler generated dependencies file for bench_fig08_e2e_gbs.
# This may be replaced when dependencies are built.
