file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_e2e_gbs.dir/bench_fig08_e2e_gbs.cc.o"
  "CMakeFiles/bench_fig08_e2e_gbs.dir/bench_fig08_e2e_gbs.cc.o.d"
  "bench_fig08_e2e_gbs"
  "bench_fig08_e2e_gbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_e2e_gbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
