# Empty compiler generated dependencies file for bench_fig01_memory_bubble.
# This may be replaced when dependencies are built.
