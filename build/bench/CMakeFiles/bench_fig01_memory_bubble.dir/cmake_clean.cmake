file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_memory_bubble.dir/bench_fig01_memory_bubble.cc.o"
  "CMakeFiles/bench_fig01_memory_bubble.dir/bench_fig01_memory_bubble.cc.o.d"
  "bench_fig01_memory_bubble"
  "bench_fig01_memory_bubble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_memory_bubble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
