file(REMOVE_RECURSE
  "CMakeFiles/bench_sec9_deployment.dir/bench_sec9_deployment.cc.o"
  "CMakeFiles/bench_sec9_deployment.dir/bench_sec9_deployment.cc.o.d"
  "bench_sec9_deployment"
  "bench_sec9_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec9_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
