# Empty dependencies file for bench_fig10_model_size.
# This may be replaced when dependencies are built.
