// Engine error paths: unsatisfiable schedules, malformed activation
// budgets, and the budget-overflow reporting added for schedules whose
// deferred-W queue cannot free enough memory.
#include <gtest/gtest.h>

#include "common/check.h"
#include "sched/baselines.h"
#include "sim/engine.h"

namespace mepipe::sim {
namespace {

using sched::OpId;
using sched::OpKind;

sched::Schedule TwoStageOneMicro() {
  sched::Schedule schedule;
  schedule.problem.stages = 2;
  schedule.problem.micros = 1;
  schedule.method = "test";
  schedule.stage_ops = {
      {{OpKind::kForward, 0, 0, 0}, {OpKind::kBackward, 0, 0, 0}},
      {{OpKind::kForward, 0, 0, 1}, {OpKind::kBackward, 0, 0, 1}},
  };
  return schedule;
}

TEST(EngineErrors, DeadlockingScheduleThrows) {
  // B before its own F on the last stage can never execute; Simulate must
  // surface this as CheckError (via validation) instead of wedging.
  sched::Schedule schedule = TwoStageOneMicro();
  std::swap(schedule.stage_ops[1][0], schedule.stage_ops[1][1]);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.0);
  EXPECT_THROW(Simulate(schedule, costs), CheckError);
}

TEST(EngineErrors, IncompleteScheduleThrows) {
  sched::Schedule schedule = TwoStageOneMicro();
  schedule.stage_ops[0].pop_back();
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.0);
  EXPECT_THROW(Simulate(schedule, costs), CheckError);
}

TEST(EngineErrors, NegativeBudgetThrows) {
  const auto schedule = sched::OneFOneBSchedule(2, 2);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.0, /*act_bytes=*/10);
  EngineOptions options;
  options.activation_budget = {-1, 100};
  EXPECT_THROW(Simulate(schedule, costs, options), CheckError);
}

TEST(EngineErrors, WrongBudgetArityThrows) {
  const auto schedule = sched::OneFOneBSchedule(2, 2);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.0, /*act_bytes=*/10);
  EngineOptions options;
  options.activation_budget = {100};  // 2 stages
  EXPECT_THROW(Simulate(schedule, costs, options), CheckError);
}

TEST(EngineErrors, ZeroBudgetMeansUnbudgeted) {
  const auto schedule = sched::OneFOneBSchedule(2, 2);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.0, /*act_bytes=*/10);
  EngineOptions options;
  options.activation_budget = {0, 0};
  const SimResult result = Simulate(schedule, costs, options);
  EXPECT_EQ(result.budget_violations, 0);
  EXPECT_DOUBLE_EQ(result.makespan, Simulate(schedule, costs).makespan);
}

TEST(EngineErrors, OverflowRecordedWhenQueueCannotHelp) {
  // 1F1B without split backward has no deferred-W queue: a budget below
  // one activation can never be met. The engine must admit the ops and
  // report the violation instead of silently proceeding.
  const auto schedule = sched::OneFOneBSchedule(2, 2);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.0, /*act_bytes=*/10);
  EngineOptions options;
  options.activation_budget = {5, 5};
  const SimResult result = Simulate(schedule, costs, options);
  // Stage 0 retains two forwards (overflow 5 then 15); stage 1 releases
  // each backward before the next forward (overflow 5 twice).
  EXPECT_EQ(result.budget_violations, 4);
  EXPECT_EQ(result.stages[0].budget_violations, 2);
  EXPECT_EQ(result.stages[0].budget_overflow_bytes, 15);
  EXPECT_EQ(result.stages[1].budget_violations, 2);
  EXPECT_EQ(result.stages[1].budget_overflow_bytes, 5);
  // The timeline itself is unchanged — violations are bookkeeping.
  EXPECT_DOUBLE_EQ(result.makespan, Simulate(schedule, costs).makespan);
}

TEST(EngineErrors, StrictBudgetThrows) {
  const auto schedule = sched::OneFOneBSchedule(2, 2);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.0, /*act_bytes=*/10);
  EngineOptions options;
  options.activation_budget = {5, 5};
  options.strict_activation_budget = true;
  EXPECT_THROW(Simulate(schedule, costs, options), CheckError);
}

TEST(EngineErrors, SufficientBudgetReportsNoViolation) {
  // A zero-bubble schedule under a budget the deferred-W drain can honour
  // must stay violation-free.
  const auto schedule = sched::Zb1pSchedule(4, 8);
  const UniformCostModel costs(1.0, 1.0, 1.0, 0.0, /*act_bytes=*/1,
                               /*act_grad_bytes=*/1, /*wgrad_gemms=*/2);
  EngineOptions options;
  options.activation_budget = {100, 100, 100, 100};
  options.strict_activation_budget = true;  // would throw on any violation
  const SimResult result = Simulate(schedule, costs, options);
  EXPECT_EQ(result.budget_violations, 0);
  for (const StageMetrics& stage : result.stages) {
    EXPECT_EQ(stage.budget_overflow_bytes, 0);
  }
}

}  // namespace
}  // namespace mepipe::sim
