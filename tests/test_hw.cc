// Tests for the hardware substrate: GPU/link presets, cluster link
// mapping, collective cost model, operator-efficiency calibration.
#include <gtest/gtest.h>

#include "hw/cluster.h"
#include "hw/comm_model.h"
#include "hw/efficiency.h"
#include "hw/gpu.h"
#include "hw/interconnect.h"
#include "model/transformer.h"

namespace mepipe::hw {
namespace {

TEST(Gpu, PresetsMatchTable9) {
  const GpuSpec rtx = Rtx4090();
  EXPECT_EQ(rtx.memory_capacity, 24 * kGiB);
  EXPECT_DOUBLE_EQ(rtx.peak_flops, 330e12);
  EXPECT_DOUBLE_EQ(rtx.server_price_usd, 30000);
  const GpuSpec a100 = A100_80G();
  EXPECT_EQ(a100.memory_capacity, 80 * kGiB);
  EXPECT_DOUBLE_EQ(a100.peak_flops, 312e12);
  EXPECT_DOUBLE_EQ(a100.server_price_usd, 150000);
}

TEST(Gpu, Fp32AccumulationPenaltyHalves4090) {
  // §7.6: a single RTX 4090 reaches roughly half an A100's GEMM rate.
  const double rtx = Rtx4090().sustained_matmul_flops();
  const double a100 = A100_80G().sustained_matmul_flops();
  EXPECT_NEAR(rtx / a100, 0.53, 0.08);
}

TEST(Gpu, UsableMemoryBelowCapacity) {
  EXPECT_LT(Rtx4090().usable_memory(), Rtx4090().memory_capacity);
  EXPECT_GT(Rtx4090().usable_memory(), 20 * kGiB);
}

TEST(Link, TransferTimeIncludesLatency) {
  const LinkSpec link{"x", 10e9, Microseconds(20)};
  EXPECT_DOUBLE_EQ(link.transfer_time(0), Microseconds(20));
  EXPECT_NEAR(link.transfer_time(10'000'000), 0.001 + 20e-6, 1e-12);
}

TEST(Cluster, PresetsMatchPaperTestbeds) {
  const ClusterSpec rtx = Rtx4090Cluster();
  EXPECT_EQ(rtx.world_size(), 64);
  EXPECT_EQ(rtx.gpus_per_node, 8);
  const ClusterSpec a100 = A100Cluster();
  EXPECT_EQ(a100.world_size(), 32);
  EXPECT_GT(a100.intra_node.bandwidth, rtx.intra_node.bandwidth * 5);
}

TEST(Cluster, PipelineCrossesNodesAtPp8) {
  // pp=8 on 8 nodes: every boundary crosses nodes; 8 streams share a NIC.
  const ClusterSpec cluster = Rtx4090Cluster();
  const LinkSpec link = PipelineP2pLink(cluster, {8, 4, 2, 1});
  EXPECT_NEAR(link.bandwidth, cluster.inter_node.bandwidth / 8.0, 1.0);
}

TEST(Cluster, PipelineLoopbackAtPp1) {
  const ClusterSpec cluster = Rtx4090Cluster();
  const LinkSpec link = PipelineP2pLink(cluster, {1, 64, 1, 1});
  EXPECT_GT(link.bandwidth, 1e14);
}

TEST(Cluster, CpGroupsStayIntraNode) {
  const ClusterSpec cluster = Rtx4090Cluster();
  const LinkSpec link = ContextParallelLink(cluster, {8, 2, 4, 1});
  EXPECT_EQ(link.name, cluster.intra_node.name);
}

TEST(Cluster, SmallDpGroupsStayIntraNode) {
  const ClusterSpec cluster = Rtx4090Cluster();
  EXPECT_EQ(DataParallelLink(cluster, {8, 8, 1, 1}).name, cluster.intra_node.name);
  EXPECT_EQ(DataParallelLink(cluster, {8, 4, 2, 1}).name, cluster.intra_node.name);
}

TEST(Cluster, LargeDpGroupsShareNicByInterleavedRings) {
  const ClusterSpec cluster = Rtx4090Cluster();
  // dp=16, cp=2: the 16·2-rank block spans nodes; 2 rings share the NIC.
  const LinkSpec link = DataParallelLink(cluster, {2, 16, 2, 1});
  EXPECT_NEAR(link.bandwidth, cluster.inter_node.bandwidth / 2.0, 1.0);
}

TEST(Comm, RingAllReduceFormula) {
  const LinkSpec link{"x", 10e9, 0.0};
  // 2(g-1)/g · bytes / bw.
  EXPECT_NEAR(CommModel::AllReduce(10e9, 4, link), 2.0 * 3.0 / 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(CommModel::AllReduce(123, 1, link), 0.0);
}

TEST(Comm, AllGatherAndReduceScatterMatch) {
  const LinkSpec link{"x", 10e9, 0.0};
  EXPECT_DOUBLE_EQ(CommModel::AllGather(8e9, 8, link),
                   CommModel::ReduceScatter(8e9, 8, link));
  EXPECT_NEAR(CommModel::AllGather(8e9, 8, link), 0.7, 1e-9);
}

TEST(Comm, CpExchangeGrowsWithCp) {
  const CommModel comm(Rtx4090Cluster());
  const auto config = model::Llama13B();
  const Seconds cp2 = comm.CpKvExchangePerLayer(config, 2048, {8, 4, 2, 1});
  const Seconds cp4 = comm.CpKvExchangePerLayer(config, 1024, {8, 2, 4, 1});
  EXPECT_GT(cp2, 0);
  EXPECT_GT(cp4, cp2);  // more rounds despite smaller blocks
  EXPECT_DOUBLE_EQ(comm.CpKvExchangePerLayer(config, 4096, {8, 8, 1, 1}), 0.0);
}

TEST(Comm, DpSyncZeroWithoutReplication) {
  const CommModel comm(Rtx4090Cluster());
  EXPECT_DOUBLE_EQ(comm.DpGradientSync(1 * kGiB, {64, 1, 1, 1}), 0.0);
  EXPECT_GT(comm.DpGradientSync(1 * kGiB, {8, 8, 1, 1}), 0.0);
}

TEST(Comm, TpAllReducePerLayer) {
  const CommModel comm(A100Cluster());
  const auto config = model::Llama13B();
  EXPECT_GT(comm.TpAllReducePerLayer(config, 4096, {4, 1, 1, 8}), 0.0);
  EXPECT_DOUBLE_EQ(comm.TpAllReducePerLayer(config, 4096, {4, 8, 1, 1}), 0.0);
}

TEST(Efficiency, CalibratedToFigure9) {
  // §7.3: Llama 13B transformer layer slows ~12.6% from SPP=1 to SPP=8.
  const EfficiencyModel eff;
  const double full = eff.ShapeEfficiency(5120, 4096);
  const double sliced = eff.ShapeEfficiency(5120, 512);
  EXPECT_NEAR(full / sliced, 1.126, 0.02);
}

TEST(Efficiency, MonotoneInTokens) {
  const EfficiencyModel eff;
  double previous = 0;
  for (std::int64_t t : {128, 256, 512, 1024, 2048, 4096}) {
    const double e = eff.ShapeEfficiency(5120, t);
    EXPECT_GT(e, previous);
    EXPECT_LE(e, 1.0);
    previous = e;
  }
}

TEST(Efficiency, NarrowerModelsDegradeFaster) {
  const EfficiencyModel eff;
  EXPECT_LT(eff.ShapeEfficiency(4096, 512), eff.ShapeEfficiency(8192, 512));
}

TEST(Efficiency, KernelTimeScalesInverselyWithEfficiency) {
  const EfficiencyModel eff;
  const auto config = model::Llama13B();
  const GpuSpec gpu = Rtx4090();
  const Seconds big = eff.KernelTime(1e12, gpu, config, 4096);
  const Seconds small = eff.KernelTime(1e12, gpu, config, 256);
  EXPECT_GT(small, big);
  EXPECT_DOUBLE_EQ(eff.KernelTime(0, gpu, config, 256), 0.0);
}

}  // namespace
}  // namespace mepipe::hw
