// Tests for the schedule container and its validation (sched/schedule).
#include "sched/schedule.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "sched/baselines.h"
#include "sched/validate.h"

namespace mepipe::sched {
namespace {

Schedule TwoStageOneMicro() {
  Schedule schedule;
  schedule.problem.stages = 2;
  schedule.problem.micros = 1;
  schedule.method = "hand";
  schedule.stage_ops = {
      {{OpKind::kForward, 0, 0, 0}, {OpKind::kBackward, 0, 0, 0}},
      {{OpKind::kForward, 0, 0, 1}, {OpKind::kBackward, 0, 0, 1}},
  };
  return schedule;
}

TEST(Schedule, HandBuiltValidates) {
  EXPECT_NO_THROW(ValidateSchedule(TwoStageOneMicro()));
  // The full tabular validator agrees with the structural check.
  EXPECT_TRUE(CheckScheduleInvariants(TwoStageOneMicro()).ok());
}

TEST(Schedule, TableTimingOfHandBuilt) {
  // F0@s0 [0,1] → F0@s1 [1,2] → B0@s1 [2,3] → B0@s0 [3,4] under unit
  // costs and free transfers.
  const ScheduleTable table = BuildScheduleTable(TwoStageOneMicro());
  ASSERT_EQ(table.rows.size(), 4u);
  EXPECT_DOUBLE_EQ(table.makespan, 4.0);
  for (const TableRow& row : table.rows) {
    EXPECT_DOUBLE_EQ(row.end - row.start, 1.0);
  }
}

TEST(Schedule, InvariantValidatorFlagsCapOverrun) {
  // GPipe retains all n forwards; a cap below n is a reported violation
  // on every stage, and the throwing wrapper throws.
  const Schedule schedule = GPipeSchedule(3, 7);
  InvariantOptions options;
  options.retained_cap = {3, 3, 3};
  const InvariantReport report = CheckScheduleInvariants(schedule, options);
  EXPECT_EQ(report.violations.size(), 3u);
  EXPECT_EQ(report.violations.front().invariant, "activation-cap");
  EXPECT_THROW(ValidateScheduleInvariants(schedule, options), CheckError);
  options.retained_cap = {7, 7, 7};
  EXPECT_TRUE(CheckScheduleInvariants(schedule, options).ok());
  // A 0 entry marks the stage unbudgeted.
  options.retained_cap = {0, 0, 0};
  EXPECT_TRUE(CheckScheduleInvariants(schedule, options).ok());
}

TEST(Schedule, MissingOpRejected) {
  Schedule schedule = TwoStageOneMicro();
  schedule.stage_ops[0].pop_back();
  EXPECT_THROW(ValidateSchedule(schedule), CheckError);
}

TEST(Schedule, DuplicateOpRejected) {
  Schedule schedule = TwoStageOneMicro();
  schedule.stage_ops[0][1] = schedule.stage_ops[0][0];
  EXPECT_THROW(ValidateSchedule(schedule), CheckError);
}

TEST(Schedule, OpOnWrongStageRejected) {
  Schedule schedule = TwoStageOneMicro();
  std::swap(schedule.stage_ops[0], schedule.stage_ops[1]);
  EXPECT_THROW(ValidateSchedule(schedule), CheckError);
}

TEST(Schedule, DeadlockingOrderRejected) {
  // B before its own F on the last stage can never execute.
  Schedule schedule = TwoStageOneMicro();
  std::swap(schedule.stage_ops[1][0], schedule.stage_ops[1][1]);
  EXPECT_THROW(ValidateSchedule(schedule), CheckError);
}

TEST(Schedule, DeferredWgradRequiresSplitBackward) {
  Schedule schedule = TwoStageOneMicro();
  schedule.deferred_wgrad = true;  // but split_backward is false
  EXPECT_THROW(ValidateSchedule(schedule), CheckError);
}

TEST(Schedule, FirstBackwardIndex) {
  const Schedule schedule = OneFOneBSchedule(4, 8);
  EXPECT_EQ(FirstBackwardIndex(schedule, 0), 4u);
  EXPECT_EQ(FirstBackwardIndex(schedule, 3), 1u);
}

TEST(Schedule, FirstBackwardIndexNoBackward) {
  Schedule schedule = TwoStageOneMicro();
  schedule.stage_ops[0] = {{OpKind::kForward, 0, 0, 0}};
  EXPECT_EQ(FirstBackwardIndex(schedule, 0), 1u);
}

TEST(Schedule, PeakRetainedForwardsGPipeEqualsMicros) {
  const Schedule schedule = GPipeSchedule(3, 7);
  for (int stage = 0; stage < 3; ++stage) {
    EXPECT_EQ(PeakRetainedForwards(schedule, stage), 7);
  }
}

TEST(Schedule, PeakRetainedReleasesOnWWhenSplitStatic) {
  // A split schedule with static W ops releases on W, not B.
  Schedule schedule;
  schedule.problem.stages = 1;
  schedule.problem.micros = 2;
  schedule.problem.split_backward = true;
  schedule.method = "hand-split";
  schedule.stage_ops = {{
      {OpKind::kForward, 0, 0, 0},
      {OpKind::kForward, 1, 0, 0},
      {OpKind::kBackward, 1, 0, 0},
      {OpKind::kBackward, 0, 0, 0},
      {OpKind::kWeightGrad, 1, 0, 0},
      {OpKind::kWeightGrad, 0, 0, 0},
  }};
  ValidateSchedule(schedule);
  EXPECT_EQ(PeakRetainedForwards(schedule, 0), 2);
}

TEST(Schedule, OpIdPrinting) {
  EXPECT_EQ(ToString(OpId{OpKind::kForward, 1, 2, 3}), "F(m=1,t=2,g=3)");
  EXPECT_EQ(ToString(OpId{OpKind::kWeightGradGemm, 0, 1, 2, 5}), "Wg(m=0,t=1,g=2,k=5)");
}

TEST(Schedule, OpIdHashDistinguishesFields) {
  OpIdHash hash;
  const OpId a{OpKind::kForward, 1, 2, 3};
  OpId b = a;
  b.slice = 3;
  EXPECT_NE(hash(a), hash(b));
  b = a;
  b.kind = OpKind::kBackward;
  EXPECT_NE(hash(a), hash(b));
}

}  // namespace
}  // namespace mepipe::sched
