// Tests for the fault-injection layer (sim/fault): plan validation, the
// window-integration arithmetic, engine integration, determinism, and
// the trace exporters.
#include "sim/fault.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/svpp.h"
#include "sched/baselines.h"
#include "sim/engine.h"
#include "trace/chrome_trace.h"
#include "trace/fault_timeline.h"

namespace mepipe::sim {
namespace {

using sched::OpId;
using sched::OpKind;

const OpId kForward0{OpKind::kForward, 0, 0, 0};

TEST(FaultPlan, ValidatesWindows) {
  FaultPlan plan;
  plan.stragglers.push_back({0, 2.0, 1.0, 2.0});  // end < begin
  EXPECT_THROW(plan.Validate(2), CheckError);

  plan.stragglers = {{0, 0.0, 1.0, 0.5}};  // slowdown < 1
  EXPECT_THROW(plan.Validate(2), CheckError);

  plan.stragglers = {{5, 0.0, 1.0, 2.0}};  // stage out of range
  EXPECT_THROW(plan.Validate(2), CheckError);

  plan.stragglers = {{0, 0.0, 2.0, 2.0}, {0, 1.0, 3.0, 3.0}};  // overlap
  EXPECT_THROW(plan.Validate(2), CheckError);

  plan.stragglers = {{0, 0.0, 2.0, 2.0}, {0, 2.0, 3.0, 3.0}};  // touching is fine
  EXPECT_NO_THROW(plan.Validate(2));

  plan = {};
  plan.transfer_retries.push_back({0, 1, 0.0, 1.0, 0, 0.1});  // retries < 1
  EXPECT_THROW(plan.Validate(2), CheckError);
}

TEST(Fault, StragglerIntegratesAcrossWindowBoundary) {
  const UniformCostModel base(1.0, 2.0, 0.5, 0.1);
  FaultPlan plan;
  plan.stragglers = {{0, 0.5, 1.5, 2.0}};
  const FaultyCostModel faulty(base, plan, 2);
  // 0.5s of work at full speed, the remaining 0.5s dilated 2x -> ends 1.5.
  EXPECT_DOUBLE_EQ(faulty.ComputeEndAt(0, kForward0, 0.0), 1.5);
  // Entirely outside the window: unperturbed.
  EXPECT_DOUBLE_EQ(faulty.ComputeEndAt(0, kForward0, 10.0), 11.0);
  // Other stages untouched.
  EXPECT_DOUBLE_EQ(faulty.ComputeEndAt(1, kForward0, 0.0), 1.0);
  // The fault-free CostModel view delegates to the base model.
  EXPECT_DOUBLE_EQ(faulty.ComputeTime(kForward0), 1.0);
}

TEST(Fault, FailStopDowntimeAndCheckpoints) {
  const UniformCostModel base(1.0, 2.0, 0.5, 0.1);
  FaultPlan plan;
  plan.fail_stops = {{1, 2.0, 1.0, 3.0}};
  {
    // No checkpoint: all 2.0s since t=0 are lost; downtime [2, 8).
    const FaultyCostModel faulty(base, plan, 2);
    EXPECT_DOUBLE_EQ(faulty.NextUpTime(3.0), 8.0);
    EXPECT_DOUBLE_EQ(faulty.NextUpTime(8.0), 8.0);
    // Op started at 1.5 does 0.5s, suspends for 6, finishes the rest.
    EXPECT_DOUBLE_EQ(faulty.ComputeEndAt(0, kForward0, 1.5), 8.5);
  }
  {
    // A checkpoint at 1.5 shrinks the replay to 0.5s; downtime [2, 6.5).
    FaultPlan with_ckpt = plan;
    with_ckpt.checkpoints = {1.5};
    const FaultyCostModel faulty(base, with_ckpt, 2);
    EXPECT_DOUBLE_EQ(faulty.NextUpTime(2.0), 6.5);
  }
}

TEST(Fault, RepairTimeExtendsTheDowntime) {
  const UniformCostModel base(1.0, 2.0, 0.5, 0.1);
  FaultPlan plan;
  // detection 1 + repair 2.5 + restart 3 + replay 2 = downtime [2, 10.5).
  plan.fail_stops = {{1, 2.0, 1.0, 3.0, 2.5}};
  const FaultyCostModel faulty(base, plan, 2);
  EXPECT_DOUBLE_EQ(faulty.NextUpTime(2.0), 10.5);
  const auto spans = faulty.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].end - spans[0].begin, 8.5);

  FaultPlan bad;
  bad.fail_stops = {{1, 2.0, 1.0, 3.0, -0.5}};
  EXPECT_THROW(bad.Validate(2), CheckError);
}

TEST(Fault, ElasticFaultKindsStringify) {
  // The elastic runtime's event kinds flow through the same trace
  // exporters as the engine's; their names must be stable.
  EXPECT_STREQ(ToString(FaultKind::kReplan), "replan");
  EXPECT_STREQ(ToString(FaultKind::kReshard), "reshard");
  EXPECT_STREQ(ToString(FaultKind::kRepair), "repair");
}

TEST(Fault, ReplicaScopeRestoresFromSyncPoints) {
  const UniformCostModel base(1.0, 2.0, 0.5, 0.1);
  FaultPlan plan;
  plan.checkpoints = {1.0};
  plan.sync_points = {4.0};
  plan.fail_stops = {{1, 5.0, 1.0, 3.0}};
  {
    // Full-pipeline restart ignores the sync point: replay 5-1=4s, so
    // downtime is detection(1) + restart(3) + replay(4) = [5, 13).
    const FaultyCostModel faulty(base, plan, 2);
    EXPECT_DOUBLE_EQ(faulty.NextUpTime(5.0), 13.0);
  }
  {
    // Replica-local restart restores from the surviving peers' last DP
    // sync at t=4: replay only 1s, downtime [5, 10).
    FaultPlan replica = plan;
    replica.restart_scope = RestartScope::kDpReplicaLocal;
    const FaultyCostModel faulty(base, replica, 2);
    EXPECT_DOUBLE_EQ(faulty.NextUpTime(5.0), 10.0);
    const auto spans = faulty.Spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_NE(spans[0].label.find("lost replica replays"), std::string::npos);
  }
}

TEST(Fault, SyncPointsValidateAndStringify) {
  FaultPlan plan;
  plan.sync_points = {-1.0};
  EXPECT_THROW(plan.Validate(2), CheckError);
  plan.sync_points = {0.0, 4.0};
  EXPECT_NO_THROW(plan.Validate(2));
  EXPECT_STREQ(ToString(RestartScope::kFullPipeline), "full-pipeline");
  EXPECT_STREQ(ToString(RestartScope::kDpReplicaLocal), "dp-replica-local");
}

TEST(Fault, LaterFailStopsShiftByEarlierDowntime) {
  const UniformCostModel base(1.0, 2.0, 0.5, 0.1);
  FaultPlan plan;
  plan.checkpoints = {2.0, 4.0};
  plan.fail_stops = {{0, 3.0, 0.0, 1.0},   // lost 1 -> window [3, 5)
                     {1, 5.0, 0.0, 1.0}};  // lost 1, shifted by 2 -> [7, 9)
  const FaultyCostModel faulty(base, plan, 2);
  EXPECT_DOUBLE_EQ(faulty.NextUpTime(3.5), 5.0);
  EXPECT_DOUBLE_EQ(faulty.NextUpTime(7.5), 9.0);
  const auto spans = faulty.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_DOUBLE_EQ(spans[0].begin, 3.0);
  EXPECT_DOUBLE_EQ(spans[0].end, 5.0);
  EXPECT_DOUBLE_EQ(spans[1].begin, 7.0);
  EXPECT_DOUBLE_EQ(spans[1].end, 9.0);
}

TEST(Fault, LinkDegradeStretchesTransfers) {
  const UniformCostModel base(1.0, 2.0, 0.5, 0.1);
  FaultPlan plan;
  plan.link_degrades = {{0, 1, 0.0, 10.0, 3.0}};
  const FaultyCostModel faulty(base, plan, 2);
  EXPECT_NEAR(faulty.TransferEndAt(0, 1, kForward0, 0.0), 0.3, 1e-12);
  // Opposite direction unaffected.
  EXPECT_NEAR(faulty.TransferEndAt(1, 0, kForward0, 0.0), 0.1, 1e-12);
  // Outside the window unaffected.
  EXPECT_NEAR(faulty.TransferEndAt(0, 1, kForward0, 20.0), 20.1, 1e-12);
}

TEST(Fault, TransferRetryWithExponentialBackoff) {
  const UniformCostModel base(1.0, 2.0, 0.5, 0.1);
  FaultPlan plan;
  plan.transfer_retries = {{0, 1, 0.0, 1.0, 2, 0.25}};
  const FaultyCostModel faulty(base, plan, 2);
  // attempt(0.1) + 0.25 + attempt(0.1) + 0.5 + success(0.1) = 1.05.
  EXPECT_NEAR(faulty.TransferEndAt(0, 1, kForward0, 0.0), 1.05, 1e-12);
  // Entering the link after the flaky window: clean send.
  EXPECT_NEAR(faulty.TransferEndAt(0, 1, kForward0, 2.0), 2.1, 1e-12);
}

TEST(Fault, EngineMeasuresStragglerDegradation) {
  // GPipe p=2 n=1, f=1 b=2: clean spans F0[0,1] F1[1,2] B1[2,4] B0[4,6].
  const auto schedule = sched::GPipeSchedule(2, 1);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.0);
  FaultPlan plan;
  plan.stragglers = {{1, 1.0, 3.0, 2.0}};  // stage 1 halves through [1, 3)
  EngineOptions options;
  options.fault_plan = plan;
  const SimResult faulted = Simulate(schedule, costs, options);
  // F1 dilates to [1,3), B1 runs clean [3,5), B0 [5,7).
  EXPECT_DOUBLE_EQ(faulted.makespan, 7.0);
  EXPECT_DOUBLE_EQ(Simulate(schedule, costs).makespan, 6.0);
  ASSERT_EQ(faulted.fault_spans.size(), 1u);
  EXPECT_EQ(faulted.fault_spans[0].kind, FaultKind::kStraggler);
}

TEST(Fault, EngineSuspendsAcrossFailStop) {
  const auto schedule = sched::GPipeSchedule(2, 1);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.0);
  FaultPlan plan;
  plan.checkpoints = {1.0};
  plan.fail_stops = {{1, 2.0, 0.5, 1.0}};  // lost 1.0 -> downtime [2, 4.5)
  EngineOptions options;
  options.fault_plan = plan;
  const SimResult result = Simulate(schedule, costs, options);
  // B1 would start at 2 but the cluster is down until 4.5: [4.5, 6.5),
  // then B0 [6.5, 8.5).
  EXPECT_DOUBLE_EQ(result.makespan, 8.5);
}

TEST(Fault, DeterministicUnderIdenticalPlan) {
  const auto schedule = core::GenerateSvpp(
      {.stages = 4, .virtual_chunks = 1, .slices = 2, .micros = 8});
  const UniformCostModel costs(1.0, 1.2, 0.8, 0.05, 16, 8, 3);
  FaultPlan plan;
  plan.stragglers = {{2, 3.0, 9.0, 1.7}};
  plan.link_degrades = {{1, 2, 0.0, 20.0, 2.0}};
  plan.transfer_retries = {{2, 3, 5.0, 15.0, 2, 0.1}};
  plan.checkpoints = {10.0};
  plan.fail_stops = {{3, 12.0, 0.5, 2.0}};
  EngineOptions options;
  options.fault_plan = plan;
  const SimResult a = Simulate(schedule, costs, options);
  const SimResult b = Simulate(schedule, costs, options);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].op, b.timeline[i].op);
    EXPECT_EQ(a.timeline[i].stage, b.timeline[i].stage);
    EXPECT_DOUBLE_EQ(a.timeline[i].start, b.timeline[i].start);
    EXPECT_DOUBLE_EQ(a.timeline[i].end, b.timeline[i].end);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.fault_spans.size(), b.fault_spans.size());
  // Faults only ever slow a schedule down.
  EXPECT_GE(a.makespan, Simulate(schedule, costs).makespan);
}

TEST(Fault, ExportersCarryFaultEvents) {
  const auto schedule = sched::GPipeSchedule(2, 2);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.1);
  FaultPlan plan;
  plan.stragglers = {{0, 0.0, 2.0, 1.5}};
  plan.fail_stops = {{1, 3.0, 0.0, 1.0}};
  EngineOptions options;
  options.fault_plan = plan;
  const SimResult result = Simulate(schedule, costs, options);

  const std::string json = trace::ToChromeTraceJson(result);
  EXPECT_NE(json.find("straggler"), std::string::npos);
  EXPECT_NE(json.find("fail-stop"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);

  const std::string csv = trace::FaultTimelineCsv(result);
  EXPECT_NE(csv.find("kind,stage,from,to,begin_s,end_s,label"), std::string::npos);
  EXPECT_NE(csv.find("straggler"), std::string::npos);
  EXPECT_NE(csv.find("fail-stop"), std::string::npos);

  EXPECT_FALSE(trace::RenderFaultSpans(result).empty());

  // A result without faults exports cleanly too.
  const SimResult clean = Simulate(schedule, costs);
  EXPECT_EQ(trace::FaultTimelineCsv(clean).find("straggler"), std::string::npos);
}

}  // namespace
}  // namespace mepipe::sim
