// Tests for the §6 profiler component (core/profiler).
#include "core/profiler.h"

#include <gtest/gtest.h>

#include "core/svpp.h"
#include "sched/baselines.h"
#include "sim/cost_model.h"

namespace mepipe::core {
namespace {

using sched::OpKind;

sim::SimResult RunSample() {
  const auto schedule = sched::OneFOneBSchedule(3, 4);
  const sim::UniformCostModel costs(1.0, 2.0, 0.0, 0.1);
  return Simulate(schedule, costs);
}

TEST(Profiler, CapturesDurations) {
  const Profile profile = Profile::FromResult(RunSample());
  const OpStats* f = profile.Find(OpKind::kForward, 0, 0);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->count, 4);  // 4 micros through chunk 0
  EXPECT_DOUBLE_EQ(f->mean(), 1.0);
  EXPECT_DOUBLE_EQ(f->min, 1.0);
  EXPECT_DOUBLE_EQ(f->max, 1.0);
  const OpStats* b = profile.Find(OpKind::kBackward, 0, 2);
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->mean(), 2.0);
}

TEST(Profiler, MeanOfKind) {
  const Profile profile = Profile::FromResult(RunSample());
  EXPECT_DOUBLE_EQ(profile.MeanOf(OpKind::kForward), 1.0);
  EXPECT_DOUBLE_EQ(profile.MeanOf(OpKind::kBackward), 2.0);
  EXPECT_DOUBLE_EQ(profile.MeanOf(OpKind::kWeightGrad), 0.0);  // none ran
}

TEST(Profiler, IgnoresTransfers) {
  const Profile profile = Profile::FromResult(RunSample());
  // 3 stages × {F,B} keys only.
  EXPECT_EQ(profile.distinct_ops(), 6u);
}

TEST(Profiler, ReportMentionsEveryKind) {
  const std::string report = Profile::FromResult(RunSample()).Report();
  EXPECT_NE(report.find("F "), std::string::npos);
  EXPECT_NE(report.find("B "), std::string::npos);
  EXPECT_NE(report.find("ms"), std::string::npos);
}

TEST(ProfiledCostModel, ReplaysMeasurements) {
  const Profile profile = Profile::FromResult(RunSample());
  const sim::UniformCostModel fallback(9.0, 9.0, 9.0, 0.5, 7, 3, 2);
  const ProfiledCostModel replay(profile, fallback);
  // Seen ops use the measured mean.
  EXPECT_DOUBLE_EQ(replay.ComputeTime({OpKind::kForward, 0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(replay.ComputeTime({OpKind::kBackward, 2, 0, 1}), 2.0);
  // Unseen ops (W) and non-compute quantities use the fallback.
  EXPECT_DOUBLE_EQ(replay.ComputeTime({OpKind::kWeightGrad, 0, 0, 0}), 9.0);
  EXPECT_DOUBLE_EQ(replay.TransferTime({OpKind::kForward, 0, 0, 0}), 0.5);
  EXPECT_EQ(replay.ActivationBytes({OpKind::kForward, 0, 0, 0}), 7);
  EXPECT_EQ(replay.ActGradBytes({OpKind::kBackward, 0, 0, 0}), 3);
  EXPECT_EQ(replay.WeightGradGemmCount({OpKind::kWeightGrad, 0, 0, 0}), 2);
}

TEST(ProfiledCostModel, ClosesTheLoop) {
  // Simulate with analytic costs, profile, re-simulate with the profiled
  // model: identical makespan (the §6 profiler→scheduler→engine cycle).
  core::SvppOptions options;
  options.stages = 4;
  options.slices = 2;
  options.micros = 6;
  const auto schedule = GenerateSvpp(options);
  const sim::UniformCostModel analytic(1.0, 1.0, 1.0, 0.0);
  const auto first = Simulate(schedule, analytic);
  const ProfiledCostModel replay(Profile::FromResult(first), analytic);
  const auto second = Simulate(schedule, replay);
  EXPECT_NEAR(second.makespan, first.makespan, 1e-9);
}

}  // namespace
}  // namespace mepipe::core
