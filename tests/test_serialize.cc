// Tests for schedule serialization (sched/serialize).
#include "sched/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/check.h"
#include "core/svpp.h"
#include "sched/baselines.h"

namespace mepipe::sched {
namespace {

void ExpectSchedulesEqual(const Schedule& a, const Schedule& b) {
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.problem.stages, b.problem.stages);
  EXPECT_EQ(a.problem.virtual_chunks, b.problem.virtual_chunks);
  EXPECT_EQ(a.problem.slices, b.problem.slices);
  EXPECT_EQ(a.problem.micros, b.problem.micros);
  EXPECT_EQ(a.problem.split_backward, b.problem.split_backward);
  EXPECT_EQ(a.problem.placement, b.problem.placement);
  EXPECT_EQ(a.deferred_wgrad, b.deferred_wgrad);
  EXPECT_EQ(a.stage_ops, b.stage_ops);
}

TEST(Serialize, RoundTripOneFOneB) {
  const Schedule original = OneFOneBSchedule(4, 6);
  const Schedule parsed = ParseSchedule(SerializeSchedule(original));
  ExpectSchedulesEqual(original, parsed);
}

TEST(Serialize, RoundTripSvppSplit) {
  core::SvppOptions options;
  options.stages = 4;
  options.virtual_chunks = 2;
  options.slices = 2;
  options.micros = 4;
  const Schedule original = GenerateSvpp(options);
  const Schedule parsed = ParseSchedule(SerializeSchedule(original));
  ExpectSchedulesEqual(original, parsed);
}

TEST(Serialize, RoundTripVShape) {
  const Schedule original = ZbvSchedule(4, 4);
  const Schedule parsed = ParseSchedule(SerializeSchedule(original));
  ExpectSchedulesEqual(original, parsed);
}

TEST(Serialize, HeaderAndShape) {
  const std::string text = SerializeSchedule(GPipeSchedule(2, 2));
  EXPECT_EQ(text.rfind("mepipe-schedule v1\n", 0), 0u);
  EXPECT_NE(text.find("method GPipe"), std::string::npos);
  EXPECT_NE(text.find("problem p=2 v=1 s=1 n=2 split=0 placement=rr deferred_w=0"),
            std::string::npos);
  EXPECT_NE(text.find("stage 0: F0.0.0"), std::string::npos);
}

TEST(Serialize, RejectsBadHeader) {
  EXPECT_THROW(ParseSchedule("not a schedule"), CheckError);
}

TEST(Serialize, RejectsCorruptedOps) {
  std::string text = SerializeSchedule(GPipeSchedule(2, 2));
  // Remove one op: the multiset validation must fire.
  const std::size_t pos = text.find(" F1.0.0");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, 7);
  EXPECT_THROW(ParseSchedule(text), CheckError);
}

TEST(Serialize, RejectsDeadlockedOrder) {
  std::string text = SerializeSchedule(GPipeSchedule(2, 1));
  // Swap F and B on stage 1: B before its own F cannot execute.
  const std::size_t pos = text.find("stage 1: F0.0.1 B0.0.1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 22, "stage 1: B0.0.1 F0.0.1");
  EXPECT_THROW(ParseSchedule(text), CheckError);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mepipe_sched.txt";
  const Schedule original = TeraPipeSchedule(3, 2, 3);
  WriteScheduleFile(original, path);
  const Schedule loaded = ReadScheduleFile(path);
  ExpectSchedulesEqual(original, loaded);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(ReadScheduleFile("/nonexistent/dir/sched.txt"), CheckError);
}

}  // namespace
}  // namespace mepipe::sched
