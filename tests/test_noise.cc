// Tests for the measurement-noise wrapper (sim/noise).
#include "sim/noise.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sched/baselines.h"
#include "sim/engine.h"

namespace mepipe::sim {
namespace {

using sched::OpId;
using sched::OpKind;

TEST(Noise, DeterministicWithinIteration) {
  const UniformCostModel base(1.0, 2.0, 0.5, 0.1);
  const NoisyCostModel noisy(base, 0.05, 42);
  const OpId op{OpKind::kForward, 1, 0, 2};
  EXPECT_DOUBLE_EQ(noisy.ComputeTime(op), noisy.ComputeTime(op));
}

TEST(Noise, DifferentSeedsDiffer) {
  const UniformCostModel base(1.0, 2.0, 0.5, 0.1);
  const NoisyCostModel a(base, 0.05, 1);
  const NoisyCostModel b(base, 0.05, 2);
  const OpId op{OpKind::kForward, 0, 0, 0};
  EXPECT_NE(a.ComputeTime(op), b.ComputeTime(op));
}

TEST(Noise, ZeroSigmaIsTransparent) {
  const UniformCostModel base(1.0, 2.0, 0.5, 0.1);
  const NoisyCostModel noisy(base, 0.0, 7);
  EXPECT_DOUBLE_EQ(noisy.ComputeTime({OpKind::kForward, 0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(noisy.TransferTime({OpKind::kForward, 0, 0, 0}), 0.1);
}

TEST(Noise, MemoryQuantitiesUntouched) {
  const UniformCostModel base(1.0, 2.0, 0.5, 0.1, 11, 5, 3);
  const NoisyCostModel noisy(base, 0.2, 7);
  EXPECT_EQ(noisy.ActivationBytes({OpKind::kForward, 0, 0, 0}), 11);
  EXPECT_EQ(noisy.ActGradBytes({OpKind::kBackward, 0, 0, 0}), 5);
  EXPECT_EQ(noisy.WeightGradGemmCount({OpKind::kWeightGrad, 0, 0, 0}), 3);
}

TEST(Noise, JitterIsBounded) {
  const UniformCostModel base(1.0, 2.0, 0.5, 0.1);
  const NoisyCostModel noisy(base, 0.03, 99);
  for (int m = 0; m < 50; ++m) {
    const double t = noisy.ComputeTime({OpKind::kForward, m, 0, 0});
    EXPECT_GT(t, 0.8);
    EXPECT_LT(t, 1.25);
  }
}

TEST(Noise, IterationTimeDispersionIsSmall) {
  // The paper's protocol: many iterations, report the average. Makespan
  // dispersion across seeds should be on the order of sigma.
  const auto schedule = sched::OneFOneBSchedule(4, 8);
  const UniformCostModel base(1.0, 2.0, 0.0, 0.05);
  const Seconds clean = Simulate(schedule, base).makespan;
  double sum = 0;
  double sum_sq = 0;
  const int iterations = 20;
  for (int i = 0; i < iterations; ++i) {
    const NoisyCostModel noisy(base, 0.03, static_cast<std::uint64_t>(i + 1));
    const Seconds t = Simulate(schedule, noisy).makespan;
    sum += t;
    sum_sq += t * t;
  }
  const double mean = sum / iterations;
  const double stddev = std::sqrt(std::max(0.0, sum_sq / iterations - mean * mean));
  EXPECT_NEAR(mean, clean, clean * 0.05);
  EXPECT_LT(stddev / mean, 0.05);
  EXPECT_GT(stddev, 0.0);
}

}  // namespace
}  // namespace mepipe::sim
