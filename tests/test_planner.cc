// Integration tests: strategy grid search (core/planner) against the
// paper's §7.2 findings.
#include "core/planner.h"

#include <gtest/gtest.h>

#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe::core {
namespace {

TEST(Planner, FindsFeasibleStrategiesForAllMainMethods) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  for (Method m : {Method::kDapple, Method::kVpp, Method::kZb1p, Method::kSvpp}) {
    const PlannerResult result = SearchBestStrategy(m, config, cluster, 64);
    ASSERT_TRUE(result.best.has_value()) << ToString(m);
    EXPECT_TRUE(result.best->feasible);
    EXPECT_FALSE(result.evaluated.empty());
  }
}

TEST(Planner, MepipeWinsOnLlama13B) {
  // The headline: MEPipe beats every baseline at every global batch size
  // (Figure 8).
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  for (int gbs : {32, 64, 128}) {
    const auto mepipe = SearchBestStrategy(Method::kSvpp, config, cluster, gbs);
    ASSERT_TRUE(mepipe.best.has_value());
    for (Method m : {Method::kDapple, Method::kVpp, Method::kZb1p, Method::kZbv}) {
      const auto other = SearchBestStrategy(m, config, cluster, gbs);
      if (other.best) {
        EXPECT_LT(mepipe.best->iteration_time, other.best->iteration_time)
            << ToString(m) << " gbs=" << gbs;
      }
    }
  }
}

TEST(Planner, MepipePicksPaperConfigAt128) {
  // Table 5: MEPipe (8, 4, 1) at GBS=128 — pp=8, slice-level spp, vp=1.
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  const auto result = SearchBestStrategy(Method::kSvpp, config, cluster, 128);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(result.best->strategy.pp, 8);
  EXPECT_EQ(result.best->strategy.vp, 1);
  EXPECT_GE(result.best->strategy.spp, 4);
  EXPECT_FALSE(result.best->strategy.recompute);
}

TEST(Planner, VppNeedsRecomputationOn13B) {
  // §7.2: VPP's extra warmup forwards overflow 24 GB without recompute.
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  const auto result = SearchBestStrategy(Method::kVpp, config, cluster, 64);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_TRUE(result.best->strategy.recompute);
  EXPECT_EQ(result.best->strategy.pp, 4);  // 40 units / (p·v=8) — max p is 4
}

TEST(Planner, RespectsMinDp) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  PlannerOptions options;
  options.min_dp = 2;
  const auto result = SearchBestStrategy(Method::kSvpp, config, cluster, 64, options);
  for (const auto& e : result.evaluated) {
    EXPECT_GE(e.strategy.dp, 2);
  }
}

TEST(Planner, EvaluatedTimelinesAreDropped) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  const auto result = SearchBestStrategy(Method::kSvpp, config, cluster, 32);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_FALSE(result.best->sim.timeline.empty());  // winner re-simulated
  for (const auto& e : result.evaluated) {
    EXPECT_TRUE(e.sim.timeline.empty());
  }
}

TEST(Planner, SpeedupGrowsAsBatchShrinks) {
  // Figure 8's trend: 1.36× at GBS=128 → 1.86× at GBS=32 (scaled
  // clusters have fewer micro-batches, so bubbles dominate and
  // slice-level scheduling pays off more).
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  auto speedup = [&](int gbs) {
    const auto mepipe = SearchBestStrategy(Method::kSvpp, config, cluster, gbs);
    double best_other = 1e30;
    for (Method m : {Method::kDapple, Method::kZb1p}) {
      const auto other = SearchBestStrategy(m, config, cluster, gbs);
      if (other.best) {
        best_other = std::min(best_other, other.best->iteration_time);
      }
    }
    return best_other / mepipe.best->iteration_time;
  };
  const double s32 = speedup(32);
  const double s128 = speedup(128);
  EXPECT_GT(s32, 1.0);
  EXPECT_GT(s128, 1.0);
  EXPECT_GT(s32, s128);
}

TEST(Planner, PrunedSearchFindsSameWinnerWithFewerSimulations) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  PlannerOptions full;
  PlannerOptions pruned;
  pruned.prune = true;
  for (Method m : {Method::kDapple, Method::kSvpp}) {
    const auto a = SearchBestStrategy(m, config, cluster, 64, full);
    const auto b = SearchBestStrategy(m, config, cluster, 64, pruned);
    ASSERT_TRUE(a.best.has_value());
    ASSERT_TRUE(b.best.has_value());
    EXPECT_EQ(a.best->strategy.ToString(), b.best->strategy.ToString()) << ToString(m);
    EXPECT_NEAR(a.best->iteration_time, b.best->iteration_time, 1e-9);
    EXPECT_GT(b.pruned, 0) << ToString(m);
    EXPECT_LT(b.simulated, a.simulated) << ToString(m);
    EXPECT_EQ(a.evaluated.size(), b.evaluated.size());
  }
}

TEST(Planner, A100ClusterFindsNvlinkTensorParallelConfig) {
  // The Table 9 reference side: on the A100 cluster (NVLink), opening up
  // tensor parallelism yields a high-utilization Megatron-style config.
  const auto config = model::Llama13B();
  const auto cluster = hw::A100Cluster();
  PlannerOptions options;
  options.tp_candidates = {1, 2, 4, 8};
  options.min_dp = 1;
  const auto result = SearchBestStrategy(Method::kVpp, config, cluster, 128, options);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_GT(result.best->mfu, 0.5);
  EXPECT_LT(result.best->mfu, 0.95);
  EXPECT_LE(ToMilliseconds(result.best->iteration_time), 8000);
}

TEST(Planner, DeterministicAcrossRuns) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  const auto a = SearchBestStrategy(Method::kSvpp, config, cluster, 64);
  const auto b = SearchBestStrategy(Method::kSvpp, config, cluster, 64);
  ASSERT_TRUE(a.best && b.best);
  EXPECT_DOUBLE_EQ(a.best->iteration_time, b.best->iteration_time);
  EXPECT_EQ(a.best->strategy.ToString(), b.best->strategy.ToString());
}

TEST(Planner, SearchMethodsCoversAll) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  const auto results = SearchMethods({Method::kDapple, Method::kSvpp}, config, cluster, 64);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].best.has_value());
  EXPECT_TRUE(results[1].best.has_value());
}

TEST(Planner, PruningNeverChangesTheWinnerOnASmallGrid) {
  // Regression guard on the pruning lower bound: across every method on
  // a deliberately small grid, the pruned search must land on the same
  // winner at the same time as the exhaustive one.
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  PlannerOptions full;
  full.pp_candidates = {2, 4, 8};
  full.slice_candidates = {1, 2, 4};
  full.vp_candidates = {1, 2};
  PlannerOptions pruned = full;
  pruned.prune = true;
  for (Method m : {Method::kDapple, Method::kGPipe, Method::kVpp, Method::kZb1p,
                   Method::kTeraPipe, Method::kSvpp}) {
    const auto a = SearchBestStrategy(m, config, cluster, 32, full);
    const auto b = SearchBestStrategy(m, config, cluster, 32, pruned);
    ASSERT_EQ(a.best.has_value(), b.best.has_value()) << ToString(m);
    if (!a.best) {
      continue;
    }
    EXPECT_EQ(a.best->strategy.ToString(), b.best->strategy.ToString()) << ToString(m);
    EXPECT_NEAR(a.best->iteration_time, b.best->iteration_time, 1e-9) << ToString(m);
    EXPECT_LE(b.simulated, a.simulated) << ToString(m);
    EXPECT_EQ(a.evaluated.size(), b.evaluated.size()) << ToString(m);
  }
}

TEST(Planner, FaultAwarePruningKeepsTheFaultedWinner) {
  // The fault-aware lower bound (core::SurrogateLowerBound) caps each
  // stage's rate over the plan's straggler windows, so pruning stays on
  // under a fault plan — same faulted winner, fewer simulations. Only
  // search_rebalanced disables it (work moves across stages).
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  PlannerOptions options;
  options.pp_candidates = {8};  // 13B's 40 partition units need pp | 40
  options.slice_candidates = {1, 2, 4, 8};
  options.vp_candidates = {1};

  const auto clean = SearchBestStrategy(Method::kSvpp, config, cluster, 64, options);
  ASSERT_TRUE(clean.best.has_value());

  sim::FaultPlan faults;
  faults.stragglers.push_back({1, 0.0, 1e9, 2.0});
  options.fault_plan = faults;
  const auto exhaustive = SearchBestStrategy(Method::kSvpp, config, cluster, 64, options);
  options.prune = true;
  const auto pruned = SearchBestStrategy(Method::kSvpp, config, cluster, 64, options);
  ASSERT_TRUE(exhaustive.best.has_value());
  ASSERT_TRUE(pruned.best.has_value());
  EXPECT_EQ(exhaustive.best->strategy.ToString(), pruned.best->strategy.ToString());
  EXPECT_NEAR(exhaustive.best->iteration_time, pruned.best->iteration_time, 1e-9);
  EXPECT_GT(pruned.pruned, 0);  // the fault-aware bound actually fired
  EXPECT_LT(pruned.simulated, exhaustive.simulated);
  EXPECT_EQ(exhaustive.evaluated.size(), pruned.evaluated.size());
  EXPECT_GT(pruned.best->iteration_time, clean.best->iteration_time);

  // Rebalanced search re-partitions stages, which invalidates any
  // per-stage bound — pruning must stand down there.
  options.search_rebalanced = true;
  const auto rebalanced = SearchBestStrategy(Method::kSvpp, config, cluster, 64, options);
  EXPECT_EQ(rebalanced.pruned, 0);
}

TEST(Planner, JointPruningKeepsTheWinnerUnderFaultsAndGoodput) {
  // Satellite of the surrogate PR: the joint straggler × goodput search
  // can now prune. Same winner and score as the exhaustive joint search,
  // with at least one candidate bounded out.
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  PlannerOptions full;
  full.pp_candidates = {8};
  full.slice_candidates = {1, 2, 4, 8};
  full.vp_candidates = {1};
  full.objective = PlannerObjective::kGoodput;
  full.resilience.seed = 7;
  sim::FaultPlan faults;
  faults.stragglers.push_back({1, 0.0, 1e9, 2.0});
  full.fault_plan = faults;
  PlannerOptions pruned = full;
  pruned.prune = true;
  const auto a = SearchBestStrategy(Method::kSvpp, config, cluster, 64, full);
  const auto b = SearchBestStrategy(Method::kSvpp, config, cluster, 64, pruned);
  ASSERT_TRUE(a.best.has_value());
  ASSERT_TRUE(b.best.has_value());
  EXPECT_EQ(a.best->strategy.ToString(), b.best->strategy.ToString());
  EXPECT_NEAR(a.best->goodput.effective_iteration_time,
              b.best->goodput.effective_iteration_time, 1e-9);
  EXPECT_GT(b.pruned, 0);
  EXPECT_EQ(a.evaluated.size(), b.evaluated.size());
}

TEST(Planner, TwoPhaseSearchMatchesExhaustiveForEveryMethodAndBothObjectives) {
  // The two-phase driver's acceptance bar: on the small grid every
  // method's surrogate top-k contains the true winner, for both ranking
  // objectives.
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  PlannerOptions full;
  full.pp_candidates = {2, 4, 8};
  full.slice_candidates = {1, 2, 4};
  full.vp_candidates = {1, 2};
  full.resilience.seed = 7;
  PlannerOptions two_phase = full;
  two_phase.two_phase = true;
  two_phase.surrogate_top_k = 4;
  two_phase.threads = 2;
  for (PlannerObjective objective :
       {PlannerObjective::kIterationTime, PlannerObjective::kGoodput}) {
    full.objective = objective;
    two_phase.objective = objective;
    for (Method m : {Method::kDapple, Method::kGPipe, Method::kVpp, Method::kZb1p,
                     Method::kTeraPipe, Method::kSvpp}) {
      const auto a = SearchBestStrategy(m, config, cluster, 32, full);
      const auto b = SearchBestStrategy(m, config, cluster, 32, two_phase);
      ASSERT_EQ(a.best.has_value(), b.best.has_value()) << ToString(m);
      if (!a.best) {
        continue;
      }
      EXPECT_EQ(a.best->strategy.ToString(), b.best->strategy.ToString()) << ToString(m);
      EXPECT_NEAR(a.best->iteration_time, b.best->iteration_time, 1e-9) << ToString(m);
      EXPECT_GT(b.surrogate_priced, 0) << ToString(m);
      EXPECT_LT(b.simulated, a.simulated) << ToString(m);
      EXPECT_EQ(a.evaluated.size(), b.evaluated.size()) << ToString(m);
    }
  }
}

TEST(Planner, TwoPhaseWinnerIsBitIdenticalAcrossThreadCounts) {
  // Determinism contract: candidates are ranked by (score, grid order)
  // and the exact phase runs in grid order, so the thread count can
  // never change the winner — bit for bit.
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  PlannerOptions base;
  base.pp_candidates = {2, 4, 8};
  base.slice_candidates = {1, 2, 4, 8};
  base.vp_candidates = {1, 2};
  base.two_phase = true;
  base.surrogate_top_k = 4;
  base.threads = 1;
  const auto serial = SearchBestStrategy(Method::kSvpp, config, cluster, 64, base);
  ASSERT_TRUE(serial.best.has_value());
  for (int threads : {2, 8}) {
    PlannerOptions options = base;
    options.threads = threads;
    const auto parallel = SearchBestStrategy(Method::kSvpp, config, cluster, 64, options);
    ASSERT_TRUE(parallel.best.has_value()) << threads << " threads";
    EXPECT_EQ(serial.best->strategy.ToString(), parallel.best->strategy.ToString())
        << threads << " threads";
    EXPECT_EQ(serial.best->iteration_time, parallel.best->iteration_time)
        << threads << " threads";
    EXPECT_EQ(serial.surrogate_priced, parallel.surrogate_priced);
    EXPECT_EQ(serial.simulated, parallel.simulated);
  }
}

TEST(Planner, TwoPhaseFallsBackToExhaustiveUnderAFaultPlan) {
  // The surrogate prices clean runs only; a faulted search must ignore
  // two_phase and evaluate the whole grid with the engine.
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  PlannerOptions options;
  options.pp_candidates = {8};
  options.slice_candidates = {1, 8};
  options.vp_candidates = {1};
  sim::FaultPlan faults;
  faults.stragglers.push_back({1, 0.0, 1e9, 2.0});
  options.fault_plan = faults;
  const auto exhaustive = SearchBestStrategy(Method::kSvpp, config, cluster, 64, options);
  options.two_phase = true;
  const auto fallback = SearchBestStrategy(Method::kSvpp, config, cluster, 64, options);
  ASSERT_TRUE(exhaustive.best.has_value());
  ASSERT_TRUE(fallback.best.has_value());
  EXPECT_EQ(fallback.surrogate_priced, 0);
  EXPECT_EQ(exhaustive.best->strategy.ToString(), fallback.best->strategy.ToString());
  EXPECT_EQ(exhaustive.simulated, fallback.simulated);
}

TEST(Planner, TwoPhaseServesRepeatSearchesFromTheCache) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  SurrogateCache cache;
  PlannerOptions options;
  options.pp_candidates = {2, 4, 8};
  options.slice_candidates = {1, 2, 4};
  options.vp_candidates = {1};
  options.two_phase = true;
  options.cache = &cache;
  const auto first = SearchBestStrategy(Method::kSvpp, config, cluster, 64, options);
  const auto second = SearchBestStrategy(Method::kSvpp, config, cluster, 64, options);
  ASSERT_TRUE(first.best.has_value());
  ASSERT_TRUE(second.best.has_value());
  EXPECT_EQ(first.cache_hits, 0);
  EXPECT_EQ(second.cache_hits, second.surrogate_priced);  // every price served
  EXPECT_EQ(first.best->strategy.ToString(), second.best->strategy.ToString());
  EXPECT_EQ(first.best->iteration_time, second.best->iteration_time);
}

TEST(Planner, SearchRebalancedVariantsBeatOrMatchTheFaultedSearch) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  PlannerOptions options;
  options.pp_candidates = {8};  // 13B's 40 partition units need pp | 40
  options.slice_candidates = {1, 8};
  options.vp_candidates = {1};
  sim::FaultPlan faults;
  faults.stragglers.push_back({1, 0.0, 1e9, 2.0});
  options.fault_plan = faults;

  const auto plain = SearchBestStrategy(Method::kSvpp, config, cluster, 64, options);
  options.search_rebalanced = true;
  const auto rebalanced = SearchBestStrategy(Method::kSvpp, config, cluster, 64, options);
  ASSERT_TRUE(plain.best.has_value());
  ASSERT_TRUE(rebalanced.best.has_value());
  EXPECT_GT(rebalanced.simulated, plain.simulated);  // extra mitigated evals
  EXPECT_LE(rebalanced.best->iteration_time, plain.best->iteration_time + 1e-9);
}

TEST(Planner, GoodputObjectivePricesEveryFeasibleCandidate) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  PlannerOptions options;
  options.pp_candidates = {8};
  options.slice_candidates = {1, 2};
  options.vp_candidates = {1};
  options.objective = PlannerObjective::kGoodput;
  options.resilience.seed = 2025;
  const auto result = SearchBestStrategy(Method::kDapple, config, cluster, 64, options);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_TRUE(result.best->goodput.priced);
  EXPECT_GT(result.best->goodput.checkpoint_interval, 0.0);
  // The write cost includes the consistency barrier plus the shard.
  EXPECT_GT(result.best->goodput.checkpoint_write_cost, 1.0);
  EXPECT_GT(result.best->goodput.goodput, 0.0);
  EXPECT_LE(result.best->goodput.goodput, 1.0);
  // Effective time is the wall-clock cost of one useful iteration.
  EXPECT_GE(result.best->goodput.effective_iteration_time,
            result.best->iteration_time);
  for (const auto& e : result.evaluated) {
    if (e.feasible) {
      EXPECT_TRUE(e.goodput.priced) << e.strategy.ToString();
    } else {
      EXPECT_FALSE(e.goodput.priced) << e.strategy.ToString();
    }
  }
}

TEST(Planner, IterationTimeObjectiveLeavesGoodputUnpriced) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  const auto result = SearchBestStrategy(Method::kDapple, config, cluster, 64);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_FALSE(result.best->goodput.priced);
  EXPECT_GT(result.best->checkpoint_shard, 0);  // sized regardless
  EXPECT_GT(result.best->checkpoint_state, result.best->checkpoint_shard);
}

TEST(Planner, GoodputObjectiveCanFlipTheWinner) {
  // The acceptance scenario: on Llama-7B (32 partition units, so pp=32
  // is admissible) DAPPLE's fault-free winner is pp=4/dp=16 — but its
  // dp-rank-0 checkpoint writers carry 8x the bf16 parameter shard of
  // the pp=32 layout. On a 16384-GPU fleet (MTBF ~22 min) with a slow
  // 50 MB/s checkpoint store, the cheaper checkpoints buy more goodput
  // than the slightly faster schedule does, and the ranking flips.
  const auto config = model::Llama7B();
  const auto cluster = hw::Rtx4090Cluster();
  PlannerOptions options;
  options.pp_candidates = {4, 32};
  options.slice_candidates = {1};
  options.vp_candidates = {1};
  options.allow_recompute = false;
  options.resilience.gpus = 16384;
  options.resilience.reliability.mtbf_per_1000_gpus = 6.0 * 3600.0;
  options.resilience.seed = 2025;
  const Seconds mtbf = 6.0 * 3600.0 * 1000.0 / 16384.0;
  options.resilience.target_useful_time = 60.0 * mtbf;
  options.checkpoint_cost.write_bandwidth_bytes_per_s = 0.05e9;
  options.interval_solver.coarse_points = 9;
  options.interval_solver.golden_iterations = 8;

  const auto fastest = SearchBestStrategy(Method::kDapple, config, cluster, 128, options);
  options.objective = PlannerObjective::kGoodput;
  const auto sturdiest = SearchBestStrategy(Method::kDapple, config, cluster, 128, options);
  ASSERT_TRUE(fastest.best.has_value());
  ASSERT_TRUE(sturdiest.best.has_value());
  EXPECT_EQ(fastest.best->strategy.pp, 4);
  EXPECT_EQ(sturdiest.best->strategy.pp, 32);
  EXPECT_NE(fastest.best->strategy.ToString(), sturdiest.best->strategy.ToString());
  // The flip is real: the goodput winner is slower fault-free but
  // cheaper per useful iteration once failures are priced in.
  EXPECT_GT(sturdiest.best->iteration_time, fastest.best->iteration_time);
  const IterationResult* fault_free_choice = nullptr;
  for (const auto& e : sturdiest.evaluated) {
    if (e.feasible &&
        e.strategy.ToString() == fastest.best->strategy.ToString()) {
      fault_free_choice = &e;
    }
  }
  ASSERT_NE(fault_free_choice, nullptr);
  EXPECT_LT(sturdiest.best->goodput.effective_iteration_time,
            fault_free_choice->goodput.effective_iteration_time);
}

TEST(Planner, JointSearchReducesToPureGoodputWhenThePlanIsEmpty) {
  // The joint straggler x goodput mode must reproduce the standalone
  // goodput ranking when the straggler axis is off: clearing the fault
  // plan from a joint configuration yields the pure goodput search,
  // candidate for candidate.
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  PlannerOptions joint;
  joint.pp_candidates = {8};
  joint.slice_candidates = {1, 8};
  joint.vp_candidates = {1};
  joint.objective = PlannerObjective::kGoodput;
  joint.resilience.seed = 11;
  joint.interval_solver.coarse_points = 9;
  joint.interval_solver.golden_iterations = 8;
  sim::FaultPlan faults;
  faults.stragglers.push_back({1, 0.0, 1e9, 2.0});
  joint.fault_plan = faults;

  PlannerOptions goodput_only = joint;
  goodput_only.fault_plan = nullptr;

  const auto joint_off = SearchBestStrategy(Method::kSvpp, config, cluster, 64, goodput_only);
  PlannerOptions pure = goodput_only;  // never carried a plan at all
  const auto standalone = SearchBestStrategy(Method::kSvpp, config, cluster, 64, pure);
  ASSERT_TRUE(joint_off.best.has_value());
  ASSERT_TRUE(standalone.best.has_value());
  EXPECT_EQ(joint_off.best->strategy.ToString(), standalone.best->strategy.ToString());
  EXPECT_NEAR(joint_off.best->goodput.effective_iteration_time,
              standalone.best->goodput.effective_iteration_time, 1e-9);
  ASSERT_EQ(joint_off.evaluated.size(), standalone.evaluated.size());
  for (std::size_t i = 0; i < joint_off.evaluated.size(); ++i) {
    EXPECT_NEAR(joint_off.evaluated[i].goodput.effective_iteration_time,
                standalone.evaluated[i].goodput.effective_iteration_time, 1e-9);
  }
}

TEST(Planner, JointSearchReducesToPureStragglerWhenGoodputIsOff) {
  // ... and the standalone straggler ranking when the goodput axis is
  // off: same plan, objective back to kIterationTime.
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  PlannerOptions joint;
  joint.pp_candidates = {8};
  joint.slice_candidates = {1, 8};
  joint.vp_candidates = {1};
  joint.objective = PlannerObjective::kGoodput;
  joint.resilience.seed = 11;
  joint.interval_solver.coarse_points = 9;
  joint.interval_solver.golden_iterations = 8;
  sim::FaultPlan faults;
  faults.stragglers.push_back({1, 0.0, 1e9, 2.0});
  joint.fault_plan = faults;

  PlannerOptions straggler_only = joint;
  straggler_only.objective = PlannerObjective::kIterationTime;

  PlannerOptions pure;  // the standalone straggler search from scratch
  pure.pp_candidates = joint.pp_candidates;
  pure.slice_candidates = joint.slice_candidates;
  pure.vp_candidates = joint.vp_candidates;
  pure.fault_plan = joint.fault_plan;

  const auto joint_off = SearchBestStrategy(Method::kSvpp, config, cluster, 64, straggler_only);
  const auto standalone = SearchBestStrategy(Method::kSvpp, config, cluster, 64, pure);
  ASSERT_TRUE(joint_off.best.has_value());
  ASSERT_TRUE(standalone.best.has_value());
  EXPECT_EQ(joint_off.best->strategy.ToString(), standalone.best->strategy.ToString());
  EXPECT_NEAR(joint_off.best->iteration_time, standalone.best->iteration_time, 1e-9);
  EXPECT_FALSE(joint_off.best->goodput.priced);  // axis really off
}

TEST(Planner, JointSearchPricesFailuresOnTopOfStragglerDilation) {
  // Both axes on at once: every feasible candidate's goodput pricing
  // runs on its *faulted* iteration time, so the joint effective time
  // dominates both standalone costs.
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  PlannerOptions options;
  options.pp_candidates = {8};
  options.slice_candidates = {1, 8};
  options.vp_candidates = {1};
  options.resilience.seed = 11;
  options.interval_solver.coarse_points = 9;
  options.interval_solver.golden_iterations = 8;

  const auto clean = SearchBestStrategy(Method::kSvpp, config, cluster, 64, options);
  ASSERT_TRUE(clean.best.has_value());

  sim::FaultPlan faults;
  faults.stragglers.push_back({1, 0.0, 1e9, 2.0});
  options.fault_plan = faults;
  options.objective = PlannerObjective::kGoodput;
  const auto joint = SearchBestStrategy(Method::kSvpp, config, cluster, 64, options);
  ASSERT_TRUE(joint.best.has_value());
  EXPECT_TRUE(joint.best->goodput.priced);
  // Straggler dilation is in the base iteration time...
  EXPECT_GT(joint.best->iteration_time, clean.best->iteration_time);
  // ...and the failure model compounds on top of it.
  EXPECT_GE(joint.best->goodput.effective_iteration_time,
            joint.best->iteration_time);
  for (const auto& e : joint.evaluated) {
    if (e.feasible) {
      EXPECT_TRUE(e.goodput.priced) << e.strategy.ToString();
      EXPECT_GE(e.goodput.effective_iteration_time, e.iteration_time);
    }
  }
}

TEST(Planner, GoodputPruningKeepsTheWinner) {
  // The compute lower bound stays sound under the goodput score
  // (goodput <= 1 implies score >= iteration_time): pruned and
  // exhaustive searches agree.
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  PlannerOptions full;
  full.pp_candidates = {4, 8};
  full.slice_candidates = {1, 2};
  full.vp_candidates = {1};
  full.objective = PlannerObjective::kGoodput;
  full.resilience.seed = 7;
  PlannerOptions pruned = full;
  pruned.prune = true;
  const auto a = SearchBestStrategy(Method::kDapple, config, cluster, 64, full);
  const auto b = SearchBestStrategy(Method::kDapple, config, cluster, 64, pruned);
  ASSERT_TRUE(a.best.has_value());
  ASSERT_TRUE(b.best.has_value());
  EXPECT_EQ(a.best->strategy.ToString(), b.best->strategy.ToString());
  EXPECT_NEAR(a.best->goodput.effective_iteration_time,
              b.best->goodput.effective_iteration_time, 1e-9);
  EXPECT_EQ(a.evaluated.size(), b.evaluated.size());
}

}  // namespace
}  // namespace mepipe::core
