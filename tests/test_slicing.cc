// Tests for non-uniform (TeraPipe-style balanced) slicing
// (model/slicing).
#include "model/slicing.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "model/transformer.h"

namespace mepipe::model {
namespace {

void ExpectCoverage(const std::vector<SliceSpan>& spans, std::int64_t seq_len) {
  std::int64_t cursor = 0;
  for (const SliceSpan& span : spans) {
    EXPECT_EQ(span.start, cursor);
    EXPECT_GT(span.tokens, 0);
    cursor = span.end();
  }
  EXPECT_EQ(cursor, seq_len);
}

TEST(BalancedSlices, CoversSequenceContiguously) {
  const auto config = Llama13B();
  for (int s : {1, 2, 3, 4, 8, 16}) {
    const auto spans = BalancedSlices(config, 4096, s);
    ASSERT_EQ(spans.size(), static_cast<std::size_t>(s));
    ExpectCoverage(spans, 4096);
  }
}

TEST(BalancedSlices, EarlierSlicesAreLonger) {
  // Later slices attend over more context, so a balanced partition gives
  // them fewer tokens.
  const auto config = Llama13B();
  const auto spans = BalancedSlices(config, 4096, 4);
  for (std::size_t i = 0; i + 1 < spans.size(); ++i) {
    EXPECT_GE(spans[i].tokens, spans[i + 1].tokens) << i;
  }
  EXPECT_GT(spans.front().tokens, spans.back().tokens);
}

TEST(BalancedSlices, BeatsUniformOnImbalance) {
  const auto config = Llama13B();
  for (std::int64_t seq_len : {4096LL, 32768LL, 131072LL}) {
    const auto uniform = UniformSlices(seq_len, 8);
    const auto balanced = BalancedSlices(config, seq_len, 8);
    EXPECT_LT(SliceImbalance(config, balanced), SliceImbalance(config, uniform))
        << "L=" << seq_len;
    EXPECT_LT(SliceImbalance(config, balanced), 1.02) << "L=" << seq_len;
  }
}

TEST(BalancedSlices, ImbalanceGrowsWithContextForUniform) {
  // §5: at 4k the attention share is small (mild imbalance); at 128k the
  // last uniform slice dominates.
  const auto config = Llama13B();
  const double at_4k = SliceImbalance(config, UniformSlices(4096, 8));
  const double at_128k = SliceImbalance(config, UniformSlices(131072, 8));
  EXPECT_GT(at_128k, at_4k);
  EXPECT_GT(at_128k, 1.4);
  EXPECT_LT(at_4k, 1.15);
}

TEST(BalancedSlices, SingleSliceIsWholeSequence) {
  const auto config = Llama7B();
  const auto spans = BalancedSlices(config, 4096, 1);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (SliceSpan{0, 4096}));
}

TEST(BalancedSlices, RejectsBadArguments) {
  const auto config = Llama7B();
  EXPECT_THROW(BalancedSlices(config, 4, 0), CheckError);
  EXPECT_THROW(BalancedSlices(config, 2, 4), CheckError);
}

TEST(AlignSlices, RoundsInteriorBoundaries) {
  const auto config = Llama13B();
  const auto spans = AlignSlices(BalancedSlices(config, 4096, 4), 128);
  ExpectCoverage(spans, 4096);
  for (std::size_t i = 0; i + 1 < spans.size(); ++i) {
    EXPECT_EQ(spans[i].end() % 128, 0) << i;
  }
}

TEST(AlignSlices, PreservesSingleSliceAndUnitAlignment) {
  const auto config = Llama13B();
  const auto one = AlignSlices(BalancedSlices(config, 4096, 1), 128);
  EXPECT_EQ(one.size(), 1u);
  const auto raw = BalancedSlices(config, 4097, 3);
  EXPECT_EQ(AlignSlices(raw, 1), raw);
}

TEST(AlignSlices, NeverEmptiesASlice) {
  const auto config = Llama13B();
  // Aggressive alignment on a short sequence.
  const auto spans = AlignSlices(BalancedSlices(config, 1024, 8), 128);
  ExpectCoverage(spans, 1024);
  for (const SliceSpan& span : spans) {
    EXPECT_GE(span.tokens, 128);
  }
}

TEST(SliceImbalance, UniformOnBalancedCostIsOne) {
  // With one slice the ratio is trivially 1.
  const auto config = Llama13B();
  EXPECT_DOUBLE_EQ(SliceImbalance(config, {{0, 4096}}), 1.0);
}

// Property sweep: balanced slicing stays contiguous, ordered, and
// near-optimal across sequence lengths and slice counts.
class BalancedSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(BalancedSweep, ValidAndBalanced) {
  const auto [seq_len, slices] = GetParam();
  const auto config = Llama7B();
  const auto spans = BalancedSlices(config, seq_len, slices);
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(slices));
  ExpectCoverage(spans, seq_len);
  EXPECT_LT(SliceImbalance(config, spans), 1.10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BalancedSweep,
    ::testing::Values(std::tuple{1024LL, 2LL}, std::tuple{4096LL, 4LL},
                      std::tuple{4096LL, 16LL}, std::tuple{8192LL, 8LL},
                      std::tuple{65536LL, 8LL}, std::tuple{131072LL, 16LL},
                      std::tuple{1000LL, 3LL}, std::tuple{37LL, 5LL}),
    [](const auto& info) {
      return "L" + std::to_string(std::get<0>(info.param)) + "s" +
             std::to_string(std::get<1>(info.param));
    });

// Adversarial sweep over (seq_len, slices, alignment), including prime,
// tiny, and huge sequence lengths and alignments larger than the whole
// sequence: BalancedSlices + AlignSlices must always cover [0, seq_len)
// exactly with non-empty spans. Guards the aligned-fallback path (too
// few tokens for one aligned block per slice used to clamp with an
// inverted [min, max] range — UB that could empty a span).
TEST(AlignSlices, AdversarialShapesAlwaysCoverWithNonEmptySpans) {
  const auto config = Llama7B();
  const std::int64_t seq_lens[] = {7, 13, 37, 97, 1021, 4093, 65537, 131071};
  const std::int64_t slice_counts[] = {2, 3, 5, 7, 16};
  const std::int64_t alignments[] = {1, 13, 16, 128, 4096};
  for (const std::int64_t seq_len : seq_lens) {
    for (const std::int64_t slices : slice_counts) {
      if (seq_len < slices) {
        continue;  // fewer tokens than slices is rejected by contract
      }
      for (const std::int64_t alignment : alignments) {
        SCOPED_TRACE("L=" + std::to_string(seq_len) + " s=" + std::to_string(slices) +
                     " a=" + std::to_string(alignment));
        const auto spans = AlignSlices(BalancedSlices(config, seq_len, slices), alignment);
        ASSERT_EQ(spans.size(), static_cast<std::size_t>(slices));
        ExpectCoverage(spans, seq_len);
      }
    }
  }
}

TEST(TimeBalancedSlices, DefaultModelReproducesBalancedSlices) {
  const auto config = Llama13B();
  for (std::int64_t slices : {2LL, 4LL, 8LL}) {
    EXPECT_EQ(TimeBalancedSlices(config, 16384, slices, SliceTimeModel{}),
              BalancedSlices(config, 16384, slices));
  }
}

TEST(TimeBalancedSlices, ConstantOverheadLeavesTheBottleneckOptimal) {
  // The per-slice overhead is the same for every slice and the objective
  // is the bottleneck, so max_i(flops_i + C) is minimized exactly when
  // max_i(flops_i) is: the overhead-heavy solve must match the
  // FLOPs-balanced one up to discretization noise.
  const auto config = Llama13B();
  SliceTimeModel heavy;
  heavy.overhead = 1e18;  // dwarfs any slice's FLOPs
  const auto with_overhead = TimeBalancedSlices(config, 131072, 8, heavy);
  ExpectCoverage(with_overhead, 131072);
  auto worst = [&](const std::vector<SliceSpan>& spans) {
    double out = 0;
    for (const SliceSpan& span : spans) {
      out = std::max(out, SliceTimeCost(config, span, heavy));
    }
    return out;
  };
  EXPECT_NEAR(worst(with_overhead) / worst(BalancedSlices(config, 131072, 8)), 1.0, 0.02);
}

TEST(TimeBalancedSlices, AttentionWeightShiftsTheSplit) {
  // Weighting attention FLOPs harder penalizes late (context-heavy)
  // slices more, so they shrink relative to the FLOPs-balanced split.
  const auto config = Llama13B();
  SliceTimeModel attention_heavy;
  attention_heavy.attention_weight = 8.0;
  const auto base = BalancedSlices(config, 131072, 4);
  const auto shifted = TimeBalancedSlices(config, 131072, 4, attention_heavy);
  ExpectCoverage(shifted, 131072);
  EXPECT_LT(shifted.back().tokens, base.back().tokens);
}

TEST(TimeBalancedSlices, RejectsDegenerateModels) {
  const auto config = Llama7B();
  SliceTimeModel zero;
  zero.gemm_weight = 0.0;
  zero.attention_weight = 0.0;
  EXPECT_THROW(TimeBalancedSlices(config, 4096, 4, zero), CheckError);
  SliceTimeModel negative;
  negative.overhead = -1.0;
  EXPECT_THROW(TimeBalancedSlices(config, 4096, 4, negative), CheckError);
}

TEST(SliceTimeCost, DefaultModelEqualsForwardFlops) {
  const auto config = Llama13B();
  const SliceSpan span{1024, 2048};
  EXPECT_DOUBLE_EQ(SliceTimeCost(config, span, SliceTimeModel{}),
                   SliceForwardCost(config, span));
}

}  // namespace
}  // namespace mepipe::model
