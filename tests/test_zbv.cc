// Differential and golden tests for the handcrafted ZB-V construction
// (sched/zbv.h) against the retained capped-generator approximation and
// the core/analytic Table 3 row.
#include "sched/zbv.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "core/analytic.h"
#include "sched/baselines.h"
#include "sched/serialize.h"
#include "sched/validate.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace mepipe::sched {
namespace {

struct Grid {
  int stages;
  int micros;
};

// The differential grid from the issue: p in {4, 8} crossed with
// microbatch counts below, at, and above p (ZBV fixes s=1, v=2).
std::vector<Grid> DifferentialGrid() {
  std::vector<Grid> grid;
  for (int p : {4, 8}) {
    for (int n : {2, p - 1, p, 2 * p, 3 * p, 16}) {
      if (n >= 1) {
        grid.push_back({p, n});
      }
    }
  }
  return grid;
}

InvariantOptions ZbvInvariantOptions(int stages, int micros) {
  InvariantOptions options;
  options.costs.transfer_time = 0.05;  // the construction's default
  options.retained_cap.assign(static_cast<std::size_t>(stages),
                              ZbvMaxRetainedForwards(stages, micros));
  return options;
}

TEST(Zbv, PassesEveryInvariant) {
  for (const Grid& g : DifferentialGrid()) {
    const Schedule schedule = HandcraftedZbvSchedule(g.stages, g.micros);
    const InvariantReport report =
        CheckScheduleInvariants(schedule, ZbvInvariantOptions(g.stages, g.micros));
    EXPECT_TRUE(report.ok()) << "p=" << g.stages << " n=" << g.micros << "\n"
                             << report.Summary();
  }
}

TEST(Zbv, BubbleNoWorseThanCappedApproximation) {
  for (const Grid& g : DifferentialGrid()) {
    const Schedule hand = ZbvSchedule(g.stages, g.micros);
    const Schedule capped = ZbvCappedSchedule(g.stages, g.micros);
    const sim::UniformCostModel costs(1.0, 1.0, 1.0, 0.05);
    sim::EngineOptions fill_whole;
    fill_whole.wgrad_mode = sim::WgradMode::kFillWhole;
    const sim::SimResult hand_result = Simulate(hand, costs);
    const sim::SimResult capped_result = Simulate(capped, costs, fill_whole);
    EXPECT_LE(hand_result.bubble_ratio, capped_result.bubble_ratio + 1e-9)
        << "p=" << g.stages << " n=" << g.micros;
  }
}

TEST(Zbv, IdenticalOpMultisetsPerStage) {
  for (const Grid& g : DifferentialGrid()) {
    const Schedule hand = ZbvSchedule(g.stages, g.micros);
    const Schedule capped = ZbvCappedSchedule(g.stages, g.micros);
    ASSERT_FALSE(hand.deferred_wgrad);   // W is part of the construction
    ASSERT_TRUE(capped.deferred_wgrad);  // W is filled by the engine
    for (int stage = 0; stage < g.stages; ++stage) {
      // Modulo the W placement the two variants schedule the same work.
      std::vector<OpId> hand_ops = hand.stage_ops[static_cast<std::size_t>(stage)];
      std::erase_if(hand_ops, [](const OpId& op) { return op.kind == OpKind::kWeightGrad; });
      std::vector<OpId> capped_ops = capped.stage_ops[static_cast<std::size_t>(stage)];
      std::sort(hand_ops.begin(), hand_ops.end());
      std::sort(capped_ops.begin(), capped_ops.end());
      EXPECT_EQ(hand_ops, capped_ops) << "p=" << g.stages << " n=" << g.micros
                                      << " stage=" << stage;
    }
  }
}

TEST(Zbv, PeakActivationWithinTable3Bound) {
  for (const Grid& g : DifferentialGrid()) {
    const Schedule schedule = ZbvSchedule(g.stages, g.micros);
    // 1F1B parity: at most 2·min(n,p) chunk-forwards of A/(2p) each, so
    // the worst stage's fraction of A is min(n,p)/p (= Table 3's bound
    // of 1 in the n >= p regime the table covers).
    const double bound =
        static_cast<double>(std::min(g.micros, g.stages)) / g.stages;
    const auto row = core::Analyze(core::Method::kZbv, {g.stages, 2, 1, g.micros});
    if (row.has_value()) {
      EXPECT_LE(bound, row->activation_fraction + 1e-12);
    }
    for (int stage = 0; stage < g.stages; ++stage) {
      const double fraction =
          PeakRetainedForwards(schedule, stage) / (2.0 * g.stages);
      EXPECT_LE(fraction, bound + 1e-12)
          << "p=" << g.stages << " n=" << g.micros << " stage=" << stage;
    }
  }
}

TEST(Zbv, SteadyStateMatchesTable3ClosedForm) {
  // Under the table's assumptions (uniform F = B = W, zero-cost
  // communication, n >= p) the construction reaches the chunk-chain
  // lower bound exactly: makespan = 6n + (p-1) chunk-op units.
  for (const Grid& g : DifferentialGrid()) {
    if (g.micros < g.stages) {
      continue;  // the ramp cannot fill; Analyze returns nullopt here
    }
    ZbvOptions options;
    options.transfer_time = 0.0;
    const Schedule schedule = HandcraftedZbvSchedule(g.stages, g.micros, options);
    const sim::UniformCostModel costs(1.0, 1.0, 1.0, 0.0);
    const sim::SimResult result = Simulate(schedule, costs);
    const auto row = core::Analyze(core::Method::kZbv, {g.stages, 2, 1, g.micros});
    ASSERT_TRUE(row.has_value());
    EXPECT_NEAR(result.makespan, 6.0 * g.micros + (g.stages - 1), 1e-9)
        << "p=" << g.stages << " n=" << g.micros;
    EXPECT_NEAR(result.bubble_ratio, row->bubble_ratio, 1e-9)
        << "p=" << g.stages << " n=" << g.micros;
  }
}

// Order-based replay of the builder's activation accounting over a
// produced schedule: retained chunk-forwards plus act_grad_weight per
// B-to-W act-grad backlog entry, maximized over every stage prefix.
// Stage ops execute serially in program order, so this matches the
// builder's own peak bookkeeping.
double ReplayPeakActivationUnits(const Schedule& schedule, double act_grad_weight) {
  double peak = 0.0;
  for (const auto& ops : schedule.stage_ops) {
    int retained = 0;
    int pending_w = 0;
    for (const OpId& op : ops) {
      switch (op.kind) {
        case OpKind::kForward:
          ++retained;
          break;
        case OpKind::kBackward:
          ++pending_w;
          break;
        case OpKind::kWeightGrad:
          --retained;
          --pending_w;
          break;
        default:
          break;
      }
      peak = std::max(peak, retained + act_grad_weight * pending_w);
    }
  }
  return peak;
}

// Regression for the fill-policy selection bug: ranking the four fill
// trials by makespan alone can select a fill whose act-grad backlog
// blows the activation budget while a within-budget fill exists at a
// marginally larger makespan. Pinned shape: p=8, n=12 with unit act-grad
// weight — the makespan winner peaks at 28 units, a feasible fill at 24.
TEST(Zbv, FillSelectionRespectsActivationBudget) {
  constexpr int kStages = 8;
  constexpr int kMicros = 12;
  constexpr double kBudget = 26.0;
  ZbvOptions options;
  options.act_grad_weight = 1.0;

  // The shape is a genuine regression: the unconstrained makespan winner
  // violates the budget, and at least one trial fits it.
  const std::vector<ZbvFillCandidate> candidates =
      ZbvFillCandidates(kStages, kMicros, options);
  ASSERT_EQ(candidates.size(), 4u);
  const auto winner = std::min_element(
      candidates.begin(), candidates.end(),
      [](const ZbvFillCandidate& a, const ZbvFillCandidate& b) {
        return a.makespan < b.makespan;
      });
  EXPECT_GT(winner->peak_activation_units, kBudget);
  EXPECT_TRUE(std::any_of(candidates.begin(), candidates.end(),
                          [&](const ZbvFillCandidate& c) {
                            return c.peak_activation_units <= kBudget;
                          }));

  // The fixed selection never picks a budget-violating fill when a
  // feasible one exists.
  options.activation_budget_units = kBudget;
  const Schedule schedule = HandcraftedZbvSchedule(kStages, kMicros, options);
  EXPECT_LE(ReplayPeakActivationUnits(schedule, options.act_grad_weight), kBudget + 1e-9);
  const InvariantReport report =
      CheckScheduleInvariants(schedule, ZbvInvariantOptions(kStages, kMicros));
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(Zbv, FillSelectionDegradesToLeastPeakWhenNothingFits) {
  ZbvOptions options;
  options.act_grad_weight = 1.0;
  options.activation_budget_units = 1.0;  // below any fill's peak
  const std::vector<ZbvFillCandidate> candidates = ZbvFillCandidates(8, 12, options);
  double least_peak = candidates.front().peak_activation_units;
  for (const ZbvFillCandidate& c : candidates) {
    EXPECT_FALSE(c.within_budget);
    least_peak = std::min(least_peak, c.peak_activation_units);
  }
  const Schedule schedule = HandcraftedZbvSchedule(8, 12, options);
  EXPECT_NEAR(ReplayPeakActivationUnits(schedule, options.act_grad_weight), least_peak, 1e-9);
}

TEST(Zbv, DefaultOptionsKeepLegacyFillSelection) {
  // act_grad_weight = 0 makes every fill feasible (peak = retained
  // forwards <= cap = budget), so the memory-aware key must reduce to
  // the legacy makespan-only ranking bit-for-bit — the pinned goldens
  // below depend on it.
  for (const Grid& g : DifferentialGrid()) {
    const std::vector<ZbvFillCandidate> candidates =
        ZbvFillCandidates(g.stages, g.micros);
    for (const ZbvFillCandidate& c : candidates) {
      EXPECT_TRUE(c.within_budget) << "p=" << g.stages << " n=" << g.micros;
    }
  }
}

TEST(Zbv, RejectsMalformedOptions) {
  ZbvOptions negative_transfer;
  negative_transfer.transfer_time = -0.1;
  EXPECT_THROW(HandcraftedZbvSchedule(4, 8, negative_transfer), CheckError);
  ZbvOptions zero_f;
  zero_f.f_time = 0.0;
  EXPECT_THROW(HandcraftedZbvSchedule(4, 8, zero_f), CheckError);
  ZbvOptions tiny_cap;
  tiny_cap.max_retained = 1;  // both legs of a micro can never be in flight
  EXPECT_THROW(HandcraftedZbvSchedule(4, 8, tiny_cap), CheckError);
  ZbvOptions negative_weight;
  negative_weight.act_grad_weight = -0.5;
  EXPECT_THROW(HandcraftedZbvSchedule(4, 8, negative_weight), CheckError);
  ZbvOptions negative_budget;
  negative_budget.activation_budget_units = -1.0;
  EXPECT_THROW(HandcraftedZbvSchedule(4, 8, negative_budget), CheckError);
}

TEST(Zbv, ValidatorCatchesCorruptedSchedules) {
  Schedule schedule = ZbvSchedule(4, 8);
  // Swap a B ahead of the F it depends on within one stage.
  auto& ops = schedule.stage_ops[0];
  const auto first_b = std::find_if(ops.begin(), ops.end(), [](const OpId& op) {
    return op.kind == OpKind::kBackward;
  });
  ASSERT_NE(first_b, ops.end());
  std::swap(ops.front(), *first_b);
  const InvariantReport report = CheckScheduleInvariants(schedule, ZbvInvariantOptions(4, 8));
  EXPECT_FALSE(report.ok());
  EXPECT_THROW(ValidateScheduleInvariants(schedule, ZbvInvariantOptions(4, 8)), CheckError);
}

// --- golden snapshots --------------------------------------------------------
// The construction is deterministic; its serialized form for the two
// canonical configs is pinned byte-for-byte under tests/golden/. A diff
// here means the construction changed — regenerate the goldens (see
// tests/golden/README.md) only when that is intentional.

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MEPIPE_CHECK(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ZbvGolden : public ::testing::TestWithParam<Grid> {};

TEST_P(ZbvGolden, SnapshotIsByteStable) {
  const Grid g = GetParam();
  const std::string path = std::string(MEPIPE_TESTS_DIR) + "/golden/zbv_p" +
                           std::to_string(g.stages) + "_n" + std::to_string(g.micros) + ".txt";
  const std::string golden = ReadFileOrDie(path);
  const Schedule schedule = ZbvSchedule(g.stages, g.micros);
  EXPECT_EQ(SerializeSchedule(schedule), golden);
  // Parsing the golden text and re-serializing must reproduce it exactly.
  const Schedule parsed = ParseSchedule(golden);
  EXPECT_EQ(SerializeSchedule(parsed), golden);
  EXPECT_EQ(parsed.stage_ops, schedule.stage_ops);
}

INSTANTIATE_TEST_SUITE_P(Canonical, ZbvGolden,
                         ::testing::Values(Grid{4, 8}, Grid{8, 16}), [](const auto& info) {
                           return "p" + std::to_string(info.param.stages) + "n" +
                                  std::to_string(info.param.micros);
                         });

}  // namespace
}  // namespace mepipe::sched
