// Tests for the memory model (model/memory) against the paper's own
// byte arithmetic.
#include "model/memory.h"

#include <gtest/gtest.h>

#include "model/transformer.h"

namespace mepipe::model {
namespace {

TEST(Memory, LayerActivationBytesBallpark) {
  // Megatron's classic estimate is 34·h bytes/token/layer without
  // FlashAttention; with it, somewhat less. 13B (h=5120): tens of KiB.
  const auto config = Llama13B();
  const Bytes per_token = LayerActivationBytesPerToken(config);
  EXPECT_GT(per_token, 20 * config.hidden / 10);  // > 2h bytes, loose floor
  EXPECT_LT(per_token, 34 * config.hidden);       // below the no-flash bound
}

TEST(Memory, RecomputeKeepsOnlyLayerInput) {
  const auto config = Llama13B();
  EXPECT_EQ(LayerActivationBytesPerTokenRecompute(config), 2 * config.hidden);
  // §7.3: recomputation reduces activation memory by ~90%.
  const double ratio =
      static_cast<double>(LayerActivationBytesPerTokenRecompute(config)) /
      static_cast<double>(LayerActivationBytesPerToken(config));
  EXPECT_LT(ratio, 0.12);
}

TEST(Memory, SampleActivationBytesMatchesFigure1Scale) {
  // Figure 1's x-axis tops out above 20 GB for Llama 13B at L=4096 —
  // the per-sample whole-model activation footprint A.
  const auto config = Llama13B();
  const double a_gib = ToGiB(SampleActivationBytes(config));
  EXPECT_GT(a_gib, 15.0);
  EXPECT_LT(a_gib, 30.0);
}

TEST(Memory, BoundaryIsTwoBytesPerHidden) {
  const auto config = Llama7B();
  EXPECT_EQ(BoundaryBytesPerToken(config), 2 * config.hidden);
}

TEST(Memory, ActGradSmallerThanActivations) {
  const auto config = Llama13B();
  EXPECT_LT(LayerActGradBytesPerToken(config), LayerActivationBytesPerToken(config));
  EXPECT_GT(LayerActGradBytesPerToken(config), 0);
}

TEST(Memory, OptimizerShardingMatchesPaper34B) {
  // §7.4: "the mixed precision optimizer in Megatron-LM occupies around
  // 6.375 GB for each worker" — 34e9 params × 12 B over 64 workers.
  const auto config = Llama34B();
  const std::int64_t params_per_stage = config.total_params() / 16;  // pp=16
  const StageMemory memory =
      StaticStageMemory(config, config.partition_units() / 16, false, false, 4, 0);
  // Optimizer bytes: 12 · params_stage / dp ⇒ 12 · total / (16·4).
  const double expected_gib = 12.0 * static_cast<double>(config.total_params()) / 64.0 /
                              static_cast<double>(kGiB);
  EXPECT_NEAR(ToGiB(memory.optimizer), expected_gib, expected_gib * 0.15);
  (void)params_per_stage;
}

TEST(Memory, ParamAndGradBytesMatchPaper34B) {
  // §7.4: parameters + gradients ≈ 34·4/p GB per worker.
  const auto config = Llama34B();
  const int p = 16;
  const StageMemory memory =
      StaticStageMemory(config, config.partition_units() / p, false, false, 4, 0);
  const double expected_gib =
      4.0 * static_cast<double>(config.total_params()) / p / static_cast<double>(kGiB);
  EXPECT_NEAR(ToGiB(memory.parameters + memory.gradients), expected_gib, expected_gib * 0.15);
}

TEST(Memory, HeadStagePaysLogitsTemporary) {
  const auto config = Llama13B();
  const StageMemory with_head =
      StaticStageMemory(config, 4, false, true, 8, /*logits_tokens=*/4096);
  const StageMemory without_head = StaticStageMemory(config, 4, false, false, 8, 4096);
  EXPECT_GT(with_head.temporary, without_head.temporary);
  // Slicing shrinks the logits buffer (an SPP side benefit).
  const StageMemory sliced = StaticStageMemory(config, 4, false, true, 8, 512);
  EXPECT_LT(sliced.temporary, with_head.temporary);
}

TEST(Memory, LogitsBytes) {
  const auto config = Llama13B();
  EXPECT_EQ(LogitsTemporaryBytes(config, 1024), 2LL * 4 * 1024 * 32000);
}

}  // namespace
}  // namespace mepipe::model
