// Tests for the slice-level dependency semantics (sched/dependency).
#include "sched/dependency.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/check.h"

namespace mepipe::sched {
namespace {

PipelineProblem Make(int p, int v, int s, int n, bool split = false) {
  PipelineProblem problem;
  problem.stages = p;
  problem.virtual_chunks = v;
  problem.slices = s;
  problem.micros = n;
  problem.split_backward = split;
  return problem;
}

TEST(Dependency, FirstForwardHasNoDeps) {
  const auto deps = DependenciesOf(Make(4, 2, 2, 4), {OpKind::kForward, 0, 0, 0});
  EXPECT_TRUE(deps.empty());
}

TEST(Dependency, ForwardChunkAndSliceDeps) {
  const PipelineProblem problem = Make(4, 2, 2, 4);
  const auto deps = DependenciesOf(problem, {OpKind::kForward, 1, 1, 3});
  ASSERT_EQ(deps.size(), 2u);
  EXPECT_EQ(deps[0].op, (OpId{OpKind::kForward, 1, 1, 2}));
  EXPECT_TRUE(deps[0].cross_stage);
  EXPECT_EQ(deps[1].op, (OpId{OpKind::kForward, 1, 0, 3}));
  EXPECT_FALSE(deps[1].cross_stage);
}

TEST(Dependency, LastChunkBackwardDependsOnItsForward) {
  const PipelineProblem problem = Make(4, 1, 2, 4);
  const auto deps = DependenciesOf(problem, {OpKind::kBackward, 0, 1, 3});
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].op, (OpId{OpKind::kForward, 0, 1, 3}));
  EXPECT_FALSE(deps[0].cross_stage);
}

TEST(Dependency, BackwardSliceChain) {
  // B of slice 0 needs B of slice 1 on the same chunk (dK/dV flow).
  const PipelineProblem problem = Make(4, 1, 2, 4);
  const auto deps = DependenciesOf(problem, {OpKind::kBackward, 2, 0, 1});
  ASSERT_EQ(deps.size(), 2u);
  EXPECT_EQ(deps[0].op, (OpId{OpKind::kBackward, 2, 0, 2}));
  EXPECT_TRUE(deps[0].cross_stage);
  EXPECT_EQ(deps[1].op, (OpId{OpKind::kBackward, 2, 1, 1}));
  EXPECT_FALSE(deps[1].cross_stage);
}

TEST(Dependency, WeightGradDependsOnlyOnItsBackward) {
  const PipelineProblem problem = Make(4, 1, 2, 4, /*split=*/true);
  for (OpKind kind : {OpKind::kWeightGrad, OpKind::kWeightGradGemm}) {
    const auto deps = DependenciesOf(problem, {kind, 1, 1, 2, 0});
    ASSERT_EQ(deps.size(), 1u);
    EXPECT_EQ(deps[0].op, (OpId{OpKind::kBackward, 1, 1, 2}));
  }
}

TEST(Dependency, VShapeAdjacentChunksShareStage) {
  PipelineProblem problem = Make(4, 2, 1, 2);
  problem.placement = ChunkPlacement::kVShape;
  // Chunks 3 and 4 both live on stage 3 under the V shape.
  EXPECT_EQ(problem.stage_of_chunk(3), 3);
  EXPECT_EQ(problem.stage_of_chunk(4), 3);
  const auto deps = DependenciesOf(problem, {OpKind::kForward, 0, 0, 4});
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_FALSE(deps[0].cross_stage);  // same stage — no transfer
}

TEST(Dependency, StageOpsCountsAndOwnership) {
  const PipelineProblem problem = Make(4, 2, 3, 5, /*split=*/true);
  std::size_t total = 0;
  for (int stage = 0; stage < 4; ++stage) {
    const auto ops = StageOps(problem, stage);
    EXPECT_EQ(ops.size(), static_cast<std::size_t>(5 * 3 * 2 * 3));  // n·s·v·{F,B,W}
    for (const OpId& op : ops) {
      EXPECT_EQ(problem.stage_of_chunk(op.chunk), stage);
    }
    total += ops.size();
  }
  EXPECT_EQ(AllOps(problem).size(), total);
}

TEST(Dependency, GraphIsAcyclic) {
  // Kahn-style check over every op of a nontrivial problem.
  const PipelineProblem problem = Make(3, 2, 2, 3, /*split=*/true);
  const auto ops = AllOps(problem);
  std::unordered_set<OpId, OpIdHash> done;
  std::size_t remaining = ops.size();
  bool progress = true;
  while (progress && remaining > 0) {
    progress = false;
    for (const OpId& op : ops) {
      if (done.contains(op)) {
        continue;
      }
      bool ready = true;
      for (const Dep& dep : DependenciesOf(problem, op)) {
        if (!done.contains(dep.op)) {
          ready = false;
          break;
        }
      }
      if (ready) {
        done.insert(op);
        --remaining;
        progress = true;
      }
    }
  }
  EXPECT_EQ(remaining, 0u);
}

TEST(Problem, ValidationRejectsBadShapes) {
  PipelineProblem bad = Make(0, 1, 1, 1);
  EXPECT_THROW(bad.Validate(), CheckError);
  PipelineProblem vshape = Make(4, 3, 1, 2);
  vshape.placement = ChunkPlacement::kVShape;
  EXPECT_THROW(vshape.Validate(), CheckError);
}

TEST(Problem, OpsPerStage) {
  EXPECT_EQ(Make(4, 2, 3, 5).ops_per_stage(), 2 * 5 * 3 * 2);
  EXPECT_EQ(Make(4, 2, 3, 5, true).ops_per_stage(), 3 * 5 * 3 * 2);
}

}  // namespace
}  // namespace mepipe::sched
