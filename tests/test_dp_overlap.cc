// Tests for overlapped data-parallel gradient synchronization: the
// kDpSync bucket ops, the engine's comm-stream post-pass (hidden vs
// exposed accounting, fabric sharing), and the iteration-level
// decomposition.
#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/iteration.h"
#include "core/svpp.h"
#include "hw/cluster.h"
#include "model/transformer.h"
#include "sched/baselines.h"
#include "sched/dependency.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace mepipe {
namespace {

using sched::OpId;
using sched::OpKind;

// Prices DP buckets per chunk (everything else forwarded): lets a test
// hide one stage's bucket while leaving another unpriced.
class ChunkPricedDpSync : public sim::WrappingCostModel {
 public:
  ChunkPricedDpSync(const sim::CostModel& base, std::map<int, Seconds> per_chunk)
      : WrappingCostModel(base), per_chunk_(std::move(per_chunk)) {}

  Seconds DpSyncTime(const OpId& bucket) const override {
    const auto it = per_chunk_.find(bucket.chunk);
    return it == per_chunk_.end() ? 0.0 : it->second;
  }

 private:
  std::map<int, Seconds> per_chunk_;
};

Seconds MaxEnd(const sim::SimResult& result, OpKind kind, int chunk) {
  Seconds end = 0;
  for (const sim::OpSpan& span : result.timeline) {
    if (span.op.kind == kind && span.op.chunk == chunk) {
      end = std::max(end, span.end);
    }
  }
  return end;
}

TEST(DpOverlap, DisabledOrUnpricedProducesNoBuckets) {
  const auto schedule = sched::OneFOneBSchedule(2, 4);
  const sim::UniformCostModel unpriced(1.0, 2.0, 0.0, 0.0);
  sim::EngineOptions options;
  options.dp_overlap = true;
  const sim::SimResult no_price = Simulate(schedule, unpriced, options);
  EXPECT_EQ(no_price.dp.buckets, 0);
  EXPECT_DOUBLE_EQ(no_price.dp.serialized, 0.0);
  EXPECT_DOUBLE_EQ(no_price.dp.exposed, 0.0);

  const sim::UniformCostModel priced(1.0, 2.0, 0.0, 0.0, 1, 0, 1, /*dp_sync=*/0.5);
  const sim::SimResult off = Simulate(schedule, priced, {});
  EXPECT_EQ(off.dp.buckets, 0);
  for (const sim::OpSpan& span : off.timeline) {
    EXPECT_NE(span.op.kind, OpKind::kDpSync);
  }
}

TEST(DpOverlap, FullyHiddenBucketHasZeroExposed) {
  // 1F1B, p=2: stage 0 runs the last backward, so stage 1's gradients
  // finish a full backward early. Price only stage 1's bucket — it fits
  // entirely inside that window, so nothing is exposed.
  const auto schedule = sched::OneFOneBSchedule(2, 4);
  const sim::UniformCostModel base(1.0, 2.0, 0.0, 0.0);
  const ChunkPricedDpSync costs(base, {{1, 0.5}});
  sim::EngineOptions options;
  options.dp_overlap = true;
  const sim::SimResult result = Simulate(schedule, costs, options);
  EXPECT_EQ(result.dp.buckets, 1);
  EXPECT_DOUBLE_EQ(result.dp.serialized, 0.5);
  EXPECT_DOUBLE_EQ(result.dp.exposed, 0.0);
  EXPECT_DOUBLE_EQ(result.dp.hidden, 0.5);
  EXPECT_LE(result.dp.last_end, result.makespan);
}

TEST(DpOverlap, CriticalStageBucketIsFullyExposed) {
  // The stage whose compute sets the makespan produces its last gradient
  // at the makespan; its bucket has zero overlap capacity and must be
  // exposed in full — the classic last-bucket effect.
  const auto schedule = sched::OneFOneBSchedule(2, 4);
  const sim::UniformCostModel base(1.0, 2.0, 0.0, 0.0);
  const ChunkPricedDpSync costs(base, {{0, 0.5}});  // stage 0 is critical
  sim::EngineOptions options;
  options.dp_overlap = true;
  const sim::SimResult result = Simulate(schedule, costs, options);
  EXPECT_DOUBLE_EQ(result.dp.serialized, 0.5);
  EXPECT_DOUBLE_EQ(result.dp.exposed, 0.5);
  EXPECT_DOUBLE_EQ(result.dp.hidden, 0.0);
}

TEST(DpOverlap, MultiChunkStagesHidePartOfTheirSync) {
  // Interleaved vp=2: each stage's first-half chunk backwards last, but
  // its second-half chunk finishes early — that bucket hides, so the
  // exposed tail is strictly below the serialized total.
  const auto schedule = sched::VppSchedule(4, 2, 8);
  const sim::UniformCostModel costs(1.0, 2.0, 0.0, 0.0, 1, 0, 1, /*dp_sync=*/0.4);
  sim::EngineOptions options;
  options.dp_overlap = true;
  const sim::SimResult result = Simulate(schedule, costs, options);
  EXPECT_EQ(result.dp.buckets, 8);  // 2 chunks on each of 4 stages
  EXPECT_DOUBLE_EQ(result.dp.serialized, 0.8);
  EXPECT_GT(result.dp.hidden, 0.0);
  EXPECT_LT(result.dp.exposed, result.dp.serialized);
  EXPECT_NEAR(result.dp.exposed + result.dp.hidden, result.dp.serialized, 1e-9);
}

TEST(DpOverlap, ExposedPlusHiddenEqualsSerializedAcrossTheGrid) {
  std::vector<sched::Schedule> schedules;
  schedules.push_back(sched::OneFOneBSchedule(4, 8));
  schedules.push_back(sched::VppSchedule(4, 2, 8));
  schedules.push_back(
      core::GenerateSvpp({.stages = 4, .virtual_chunks = 1, .slices = 4, .micros = 8}));
  schedules.push_back(
      core::GenerateSvpp({.stages = 4, .virtual_chunks = 2, .slices = 2, .micros = 8}));
  for (const auto& schedule : schedules) {
    for (const Seconds dp_sync : {0.01, 0.5, 5.0}) {
      for (const Seconds transfer : {0.0, 0.05}) {
        for (const bool shared : {false, true}) {
          const sim::UniformCostModel costs(1.0, 1.0, 1.0, transfer, 1, 0, 1, dp_sync);
          sim::EngineOptions options;
          options.dp_overlap = true;
          options.dp_link_shared = shared;
          const sim::SimResult result = Simulate(schedule, costs, options);
          const sim::SimResult baseline = Simulate(schedule, costs, {});
          // Overlap is a post-pass: the pipeline timeline cannot move.
          EXPECT_DOUBLE_EQ(result.makespan, baseline.makespan)
              << schedule.method << " dp=" << dp_sync << " shared=" << shared;
          EXPECT_GE(result.dp.exposed, 0.0);
          EXPECT_GE(result.dp.hidden, 0.0);
          EXPECT_NEAR(result.dp.exposed + result.dp.hidden, result.dp.serialized, 1e-9)
              << schedule.method << " dp=" << dp_sync << " transfer=" << transfer
              << " shared=" << shared;
        }
      }
    }
  }
}

TEST(DpOverlap, SerializedIsTheWorstStageBucketSum) {
  const auto schedule = sched::VppSchedule(4, 2, 8);
  const sim::UniformCostModel costs(1.0, 1.0, 0.0, 0.0, 1, 0, 1, /*dp_sync=*/0.25);
  sim::EngineOptions options;
  options.dp_overlap = true;
  const sim::SimResult result = Simulate(schedule, costs, options);
  Seconds worst = 0;
  for (int stage = 0; stage < 4; ++stage) {
    Seconds total = 0;
    for (const OpId& bucket : sched::DpSyncOps(schedule.problem, stage)) {
      total += costs.DpSyncTime(bucket);
    }
    worst = std::max(worst, total);
  }
  EXPECT_DOUBLE_EQ(result.dp.serialized, worst);
}

TEST(DpOverlap, BucketSpansAreCommStreamTransfers) {
  const auto schedule = sched::VppSchedule(4, 2, 8);
  const sim::UniformCostModel costs(1.0, 1.0, 0.0, 0.05, 1, 0, 1, /*dp_sync=*/0.25);
  sim::EngineOptions options;
  options.dp_overlap = true;
  const sim::SimResult result = Simulate(schedule, costs, options);
  std::vector<Seconds> per_stage(4, 0.0);
  int buckets = 0;
  for (const sim::OpSpan& span : result.timeline) {
    if (span.op.kind != OpKind::kDpSync) {
      continue;
    }
    EXPECT_TRUE(span.is_transfer);  // comm stream, not compute
    EXPECT_LT(span.start, span.end);
    per_stage[static_cast<std::size_t>(span.stage)] += span.end - span.start;
    ++buckets;
  }
  EXPECT_EQ(buckets, result.dp.buckets);
  for (int stage = 0; stage < 4; ++stage) {
    EXPECT_NEAR(result.stages[static_cast<std::size_t>(stage)].dp_sync,
                per_stage[static_cast<std::size_t>(stage)], 1e-12);
  }
}

TEST(DpOverlap, BucketsWaitForTheLastWeightGradient) {
  // Split-backward SVPP: a chunk's bucket may only start once every
  // deferred W (or W GEMM) of that chunk has completed.
  const auto schedule =
      core::GenerateSvpp({.stages = 4, .virtual_chunks = 1, .slices = 2, .micros = 6});
  const sim::UniformCostModel costs(1.0, 1.0, 1.0, 0.02, 1, 0, 4, /*dp_sync=*/0.3);
  sim::EngineOptions options;
  options.dp_overlap = true;
  const sim::SimResult result = Simulate(schedule, costs, options);
  ASSERT_GT(result.dp.buckets, 0);
  for (const sim::OpSpan& span : result.timeline) {
    if (span.op.kind != OpKind::kDpSync) {
      continue;
    }
    const Seconds grads_done =
        std::max(MaxEnd(result, OpKind::kWeightGrad, span.op.chunk),
                 MaxEnd(result, OpKind::kWeightGradGemm, span.op.chunk));
    EXPECT_GE(span.start, grads_done - 1e-12) << "chunk " << span.op.chunk;
  }
}

TEST(DpOverlap, SharedFabricOnlyDelaysSyncCompletion) {
  // With dp_link_shared the buckets yield to pipeline transfers: the
  // makespan is untouched, sync completion can only slip later, and the
  // exposed/hidden split still sums to the serialized total.
  const auto schedule = sched::VppSchedule(4, 2, 8);
  const sim::UniformCostModel costs(1.0, 1.0, 0.0, /*transfer=*/0.4, 1, 0, 1,
                                    /*dp_sync=*/0.5);
  sim::EngineOptions free_fabric;
  free_fabric.dp_overlap = true;
  sim::EngineOptions shared = free_fabric;
  shared.dp_link_shared = true;
  const sim::SimResult without = Simulate(schedule, costs, free_fabric);
  const sim::SimResult with = Simulate(schedule, costs, shared);
  EXPECT_DOUBLE_EQ(with.makespan, without.makespan);
  EXPECT_GE(with.dp.last_end, without.dp.last_end - 1e-12);
  EXPECT_GE(with.dp.exposed, without.dp.exposed - 1e-12);
  EXPECT_NEAR(with.dp.exposed + with.dp.hidden, with.dp.serialized, 1e-9);
}

// ---------------------------------------------------------------------------
// Iteration-level decomposition
// ---------------------------------------------------------------------------

TEST(DpOverlapIteration, DecompositionAndBounds) {
  const model::TransformerConfig config = model::Llama13B();
  const hw::ClusterSpec cluster = hw::Rtx4090Cluster();
  core::Strategy strategy;
  strategy.method = core::Method::kSvpp;
  strategy.pp = 8;
  strategy.dp = 8;
  strategy.spp = 4;

  core::IterationOptions serialized;
  core::IterationOptions overlapped;
  overlapped.dp_overlap = true;
  const auto serial = SimulateIteration(config, strategy, cluster, 64, serialized);
  const auto overlap = SimulateIteration(config, strategy, cluster, 64, overlapped);
  ASSERT_TRUE(serial.feasible) << serial.note;
  ASSERT_TRUE(overlap.feasible) << overlap.note;

  // The pipeline itself is untouched by overlap.
  EXPECT_NEAR(overlap.pipeline_time, serial.pipeline_time, 1e-9);

  // Serialized mode: everything exposed, nothing hidden.
  EXPECT_FALSE(serial.dp.overlapped);
  EXPECT_DOUBLE_EQ(serial.dp.exposed, serial.dp.serialized);
  EXPECT_DOUBLE_EQ(serial.dp.hidden, 0.0);
  EXPECT_DOUBLE_EQ(serial.dp_sync_time, serial.dp.exposed);

  // Overlapped mode: the invariant and the sandwich bound
  // pipeline <= iteration <= pipeline + serialized sync + optimizer.
  EXPECT_TRUE(overlap.dp.overlapped);
  EXPECT_NEAR(overlap.dp.exposed + overlap.dp.hidden, overlap.dp.serialized, 1e-9);
  EXPECT_DOUBLE_EQ(overlap.dp_sync_time, overlap.dp.exposed);
  EXPECT_NEAR(overlap.iteration_time,
              overlap.pipeline_time + overlap.dp_sync_time + Milliseconds(15), 1e-9);
  EXPECT_GE(overlap.iteration_time, overlap.pipeline_time);
  EXPECT_LE(overlap.iteration_time,
            overlap.pipeline_time + overlap.dp.serialized + Milliseconds(15) + 1e-9);
}

TEST(DpOverlapIteration, InterleavedChunksYieldStrictImprovement) {
  // vp=2 gives every stage an early-finishing chunk whose bucket hides,
  // so overlapping strictly beats serializing the sync.
  const model::TransformerConfig config = model::Llama7B();
  const hw::ClusterSpec cluster = hw::Rtx4090Cluster();
  core::Strategy strategy;
  strategy.method = core::Method::kSvpp;
  strategy.pp = 8;
  strategy.dp = 8;
  strategy.spp = 2;
  strategy.vp = 2;

  core::IterationOptions serialized;
  core::IterationOptions overlapped;
  overlapped.dp_overlap = true;
  const auto serial = SimulateIteration(config, strategy, cluster, 64, serialized);
  const auto overlap = SimulateIteration(config, strategy, cluster, 64, overlapped);
  ASSERT_TRUE(serial.feasible) << serial.note;
  ASSERT_TRUE(overlap.feasible) << overlap.note;
  EXPECT_GT(overlap.dp.hidden, 0.0);
  EXPECT_LT(overlap.iteration_time, serial.iteration_time);
}

}  // namespace
}  // namespace mepipe
