// Multi-job cluster service: property fuzz over seeded traffic (the
// service invariants re-checked after every admission / completion /
// failure event), a differential single-job contract against calling
// the planner directly, the carve-fingerprint plan-memo regression,
// byte-stable admission-timeline snapshots with corrupted-log
// detection, and the job-tag threading through schedules, simulation
// spans, and serialization that multi-job timelines rely on.
#include "core/cluster.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "core/planner.h"
#include "core/surrogate.h"
#include "hw/cluster.h"
#include "model/transformer.h"
#include "sched/baselines.h"
#include "sched/schedule.h"
#include "sched/serialize.h"
#include "sim/cost_model.h"
#include "sim/engine.h"
#include "trace/chrome_trace.h"

namespace mepipe::core {
namespace {

// Small two-tier fleet (4 + 2 nodes) so planner grids stay cheap while
// cross-tier spans, preferred-tier carves, and static partitions all
// still occur.
hw::ClusterTopology SmallFleet() {
  hw::DeviceTier cheap = hw::Rtx4090Tier();
  cheap.nodes = 4;
  hw::DeviceTier premium = hw::A100Tier();
  premium.nodes = 2;
  hw::ClusterTopology fleet;
  fleet.tiers = {cheap, premium};
  fleet.SetLinkBetween(0, 1, hw::LanLink(hw::Rtx4090Cluster().inter_node));
  return fleet;
}

ClusterServiceOptions FastOptions(AllocationPolicy policy) {
  ClusterServiceOptions options;
  options.policy = policy;
  options.planner.min_dp = 1;
  options.planner.pp_candidates = {2, 4};
  options.planner.slice_candidates = {1, 2};
  options.planner.vp_candidates = {1};
  options.planner.two_phase = true;
  options.planner.surrogate_top_k = 2;
  options.planner.threads = 1;
  return options;
}

TrafficOptions FuzzTraffic(std::uint64_t seed, int jobs, Seconds mean_interarrival) {
  TrafficOptions options;
  options.jobs = jobs;
  options.mean_interarrival = mean_interarrival;
  options.seed = seed;
  JobMixEntry small;
  small.config = model::Llama7B();
  small.global_batch = 8;
  small.min_nodes = 1;
  small.max_nodes = 2;
  small.weight = 2.0;
  JobMixEntry large;
  large.config = model::Llama13B();
  large.global_batch = 16;
  large.min_nodes = 2;
  large.max_nodes = 3;
  large.weight = 1.0;
  options.mix = {small, large};
  return options;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MEPIPE_CHECK(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- Property fuzz ---------------------------------------------------------

// 100+ seeded scenarios across policies, loads, fleet shapes, and
// failure counts. verify_invariants re-checks after EVERY processed
// event (submit, admit, completion, node failure, repair, preemption):
// allocations pairwise disjoint, device counts conserved (allocated +
// free + repairing == fleet), every admitted job memory-feasible, no
// queued job priority-inverted. A violation throws CheckError and fails
// the scenario.
TEST(ClusterFuzz, InvariantsHoldAcrossSeededTraffic) {
  int completed_total = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    const AllocationPolicy policy =
        seed % 2 == 0 ? AllocationPolicy::kDynamic : AllocationPolicy::kStaticEqual;
    ClusterServiceOptions options = FastOptions(policy);
    options.verify_invariants = true;
    const Seconds load[] = {40, 200, 1200};
    const int failures = static_cast<int>(seed % 4);
    ClusterService service(SmallFleet(), options);
    const std::vector<JobRequest> requests =
        GenerateTraffic(FuzzTraffic(seed + 1, 5, load[seed % 3]));
    const ClusterMetrics m = RunTraffic(service, requests, failures, seed * 13 + 1);

    // Post-run: every job reached a terminal state and the books close.
    for (const JobRecord& job : service.jobs()) {
      EXPECT_TRUE(job.state == JobState::kReclaimed) << "job " << job.job_id
          << " ended " << JobStateName(job.state);
      EXPECT_TRUE(job.alloc.empty());
    }
    EXPECT_EQ(m.submitted, 5);
    EXPECT_LE(m.completed + m.failed + m.rejected, m.submitted);
    EXPECT_GE(m.plan_calls, m.plan_cache_hits);
    EXPECT_GE(m.goodput, 0.0);
    EXPECT_LE(m.goodput, 1.0 + 1e-9);
    completed_total += m.completed;

    // The event log of every scenario validates (and is therefore
    // reproducible byte-for-byte).
    EXPECT_TRUE(ValidateEventLog(FormatEventLog(service.fleet(), service.events())));
  }
  // The fuzz must exercise real work, not 100 empty runs.
  EXPECT_GT(completed_total, 200);
}

// ---- Differential single-job contract --------------------------------------

// A one-job cluster on a single-tier carve must produce exactly the
// plan, priced iteration time, and (job-tagged) schedule that calling
// SearchBestStrategy directly produces — bit-identical, not just close.
TEST(ClusterDifferential, SingleTierJobMatchesSearchBestStrategy) {
  ClusterServiceOptions options = FastOptions(AllocationPolicy::kDynamic);
  ClusterService service(SmallFleet(), options);

  JobRequest request;
  request.config = model::Llama7B();
  request.method = Method::kSvpp;
  request.global_batch = 8;
  request.min_nodes = 2;
  request.max_nodes = 2;
  request.preferred_tier = 0;
  const int id = service.Submit(request);
  const JobRecord& job = service.job(id);
  ASSERT_TRUE(job.plan.feasible);
  EXPECT_FALSE(job.plan.fleet_path);

  // The same search, by hand, on the same carve with the same knobs.
  const hw::ClusterTopology carve = service.CarveFor(job.alloc);
  ASSERT_EQ(carve.num_tiers(), 1);
  SurrogateCache cache;
  PlannerOptions popts = options.planner;
  popts.cache = &cache;
  popts.iteration.keep_schedule = true;
  popts.iteration.keep_timeline = false;
  const PlannerResult direct = SearchBestStrategy(
      request.method, request.config, carve.tier(0).spec(), request.global_batch, popts);
  ASSERT_TRUE(direct.best.has_value());

  EXPECT_EQ(job.plan.strategy.ToString(), direct.best->strategy.ToString());
  EXPECT_EQ(job.plan.iteration_time, direct.best->iteration_time);  // bitwise
  EXPECT_EQ(job.plan.peak_memory, direct.best->peak_memory);

  // The stored schedule is the direct winner's, tagged with the job id.
  sched::Schedule tagged = direct.best->schedule;
  sched::TagJob(tagged, id);
  EXPECT_EQ(job.plan.schedule_text, sched::SerializeSchedule(tagged));
  service.Drain();
  EXPECT_EQ(service.Metrics().completed, 1);
}

// A job forced to span both tiers must match SearchBestFleetStrategy on
// the spanning carve.
TEST(ClusterDifferential, CrossTierJobMatchesSearchBestFleetStrategy) {
  ClusterServiceOptions options = FastOptions(AllocationPolicy::kDynamic);
  ClusterService service(SmallFleet(), options);

  JobRequest request;
  request.config = model::Llama7B();
  request.method = Method::kSvpp;
  request.global_batch = 8;
  request.min_nodes = 5;  // > tier0's 4 nodes: must span tiers
  request.max_nodes = 5;
  const int id = service.Submit(request);
  const JobRecord& job = service.job(id);
  ASSERT_TRUE(job.plan.feasible);
  EXPECT_TRUE(job.plan.fleet_path);
  ASSERT_EQ(job.alloc.slices.size(), 2u);

  const hw::ClusterTopology carve = service.CarveFor(job.alloc);
  ASSERT_EQ(carve.num_tiers(), 2);
  SurrogateCache cache;
  PlannerOptions popts = options.planner;
  popts.cache = &cache;
  popts.iteration.keep_schedule = true;
  popts.iteration.keep_timeline = false;
  const FleetPlannerResult direct = SearchBestFleetStrategy(
      request.method, request.config, carve, request.global_batch, popts);
  ASSERT_TRUE(direct.best.has_value());

  EXPECT_EQ(job.plan.strategy.ToString(), direct.best->placed.strategy.ToString());
  EXPECT_EQ(job.plan.placement.ToString(), direct.best->placed.placement.ToString());
  EXPECT_EQ(job.plan.iteration_time, direct.best->result.iteration_time);  // bitwise
  EXPECT_EQ(job.plan.peak_memory, direct.best->result.peak_memory);
  EXPECT_EQ(job.plan.usd_per_iteration, direct.best->dollars.usd_per_iteration);

  sched::Schedule tagged = direct.best->result.schedule;
  sched::TagJob(tagged, id);
  EXPECT_EQ(job.plan.schedule_text, sched::SerializeSchedule(tagged));
}

// ---- Carve-fingerprint plan-memo regression --------------------------------

// Equal-node carves from different tiers must key different plan-memo
// entries (the TopologyFingerprint of the carved sub-fleet is part of
// the key); a repeat carve of the same shape must hit the memo.
TEST(ClusterPlanMemo, CarveFingerprintKeysDistinguishTiers) {
  const hw::ClusterTopology fleet = SmallFleet();
  IterationOptions iopts;
  const auto carve0 = hw::CarveSubTopology(fleet, {{0, 1}});
  const auto carve1 = hw::CarveSubTopology(fleet, {{1, 1}});
  const auto config = model::Llama7B();
  EXPECT_NE(TopologyFingerprint(config, carve0, iopts),
            TopologyFingerprint(config, carve1, iopts));
  // Different shape of the same tier also digests differently.
  const auto carve0b = hw::CarveSubTopology(fleet, {{0, 2}});
  EXPECT_NE(TopologyFingerprint(config, carve0, iopts),
            TopologyFingerprint(config, carve0b, iopts));

  ClusterService service(SmallFleet(), FastOptions(AllocationPolicy::kDynamic));
  JobRequest on_cheap;
  on_cheap.config = config;
  on_cheap.global_batch = 8;
  on_cheap.min_nodes = 1;
  on_cheap.max_nodes = 1;
  on_cheap.preferred_tier = 0;
  JobRequest on_premium = on_cheap;
  on_premium.preferred_tier = 1;
  const int a = service.Submit(on_cheap);
  const int b = service.Submit(on_premium);
  // No collision: the premium job was planned fresh, not served the
  // cheap tier's plan.
  EXPECT_EQ(service.Metrics().plan_cache_hits, 0);
  EXPECT_NE(service.job(a).plan.iteration_time, service.job(b).plan.iteration_time);

  // Same carve shape again: memo hit, identical plan.
  const int c = service.Submit(on_cheap);
  EXPECT_EQ(service.Metrics().plan_cache_hits, 1);
  EXPECT_TRUE(service.job(c).plan.from_plan_cache);
  EXPECT_EQ(service.job(c).plan.iteration_time, service.job(a).plan.iteration_time);
  EXPECT_EQ(service.job(c).plan.strategy.ToString(),
            service.job(a).plan.strategy.ToString());
}

// ---- Golden admission timeline ---------------------------------------------

// Fixed 8-job two-tier scenario with two injected failures: the full
// event log is pinned byte-for-byte. Regenerate (only with an
// intentional behavior change) via MEPIPE_REGEN_GOLDEN=1; see
// tests/golden/README.md.
std::string GoldenScenarioLog() {
  ClusterService service(SmallFleet(), FastOptions(AllocationPolicy::kDynamic));
  const std::vector<JobRequest> requests = GenerateTraffic(FuzzTraffic(5, 8, 120));
  RunTraffic(service, requests, /*failures=*/2, /*failure_seed=*/11);
  return FormatEventLog(service.fleet(), service.events());
}

TEST(ClusterGolden, AdmissionTimelineIsByteStable) {
  const std::string path =
      std::string(MEPIPE_TESTS_DIR) + "/golden/cluster_admission_timeline.txt";
  const std::string log = GoldenScenarioLog();
  ASSERT_TRUE(ValidateEventLog(log));
  if (std::getenv("MEPIPE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    MEPIPE_CHECK(out.good()) << "cannot write " << path;
    out << log;
    GTEST_SKIP() << "regenerated " << path;
  }
  EXPECT_EQ(log, ReadFileOrDie(path));
}

TEST(ClusterGolden, CorruptedLogsAreDetected) {
  const std::string log = GoldenScenarioLog();
  ASSERT_TRUE(ValidateEventLog(log));

  // Flip one byte in the body.
  std::string flipped = log;
  flipped[log.size() / 2] ^= 1;
  EXPECT_FALSE(ValidateEventLog(flipped));

  // Drop one event line.
  const std::size_t first_nl = log.find('\n', log.find("admit"));
  ASSERT_NE(first_nl, std::string::npos);
  std::string dropped = log;
  const std::size_t line_begin = dropped.rfind('\n', first_nl - 1);
  dropped.erase(line_begin, first_nl - line_begin);
  EXPECT_FALSE(ValidateEventLog(dropped));

  // Truncation, header damage, checksum damage.
  EXPECT_FALSE(ValidateEventLog(log.substr(0, log.size() - 2)));
  EXPECT_FALSE(ValidateEventLog("mepipe-cluster-events v2\n" + log));
  std::string bad_sum = log;
  bad_sum[log.size() - 2] = bad_sum[log.size() - 2] == '0' ? '1' : '0';
  EXPECT_FALSE(ValidateEventLog(bad_sum));
}

// ---- Job-tag threading -----------------------------------------------------

TEST(JobTag, StampsScheduleAndEveryOp) {
  sched::Schedule schedule = sched::OneFOneBSchedule(4, 8);
  EXPECT_EQ(schedule.job, 0);
  sched::TagJob(schedule, 7);
  EXPECT_EQ(schedule.job, 7);
  for (const auto& ops : schedule.stage_ops) {
    for (const sched::OpId& op : ops) {
      EXPECT_EQ(op.job, 7);
    }
  }
  sched::ValidateSchedule(schedule);  // tagged schedules stay valid
}

TEST(JobTag, TaggedScheduleSimulatesIdenticallyAndSpansCarryTag) {
  const sched::Schedule plain = sched::OneFOneBSchedule(4, 6);
  sched::Schedule tagged = plain;
  sched::TagJob(tagged, 3);

  const sim::UniformCostModel costs(1.0, 2.0, 0.5, 0.1, /*act_bytes=*/10);
  const sim::SimResult base = sim::Simulate(plain, costs);
  const sim::SimResult job = sim::Simulate(tagged, costs);
  EXPECT_EQ(base.makespan, job.makespan);
  EXPECT_EQ(base.peak_activation, job.peak_activation);
  ASSERT_EQ(base.timeline.size(), job.timeline.size());
  for (std::size_t i = 0; i < base.timeline.size(); ++i) {
    EXPECT_EQ(base.timeline[i].op.job, 0);
    EXPECT_EQ(job.timeline[i].op.job, 3);  // every span, transfers included
    EXPECT_EQ(base.timeline[i].start, job.timeline[i].start);
    EXPECT_EQ(base.timeline[i].end, job.timeline[i].end);
  }
}

TEST(JobTag, SerializationRoundTripsAndUntaggedFormatIsUnchanged) {
  const sched::Schedule plain = sched::OneFOneBSchedule(2, 3);
  const std::string untagged_text = sched::SerializeSchedule(plain);
  EXPECT_EQ(untagged_text.find("job "), std::string::npos);

  sched::Schedule tagged = plain;
  sched::TagJob(tagged, 12);
  const std::string tagged_text = sched::SerializeSchedule(tagged);
  EXPECT_NE(tagged_text.find("\njob 12\n"), std::string::npos);

  const sched::Schedule parsed = sched::ParseSchedule(tagged_text);
  EXPECT_EQ(parsed.job, 12);
  for (const auto& ops : parsed.stage_ops) {
    for (const sched::OpId& op : ops) {
      EXPECT_EQ(op.job, 12);
    }
  }
  EXPECT_EQ(sched::SerializeSchedule(parsed), tagged_text);

  // Parsing the untagged text still yields job 0 everywhere.
  const sched::Schedule plain_parsed = sched::ParseSchedule(untagged_text);
  EXPECT_EQ(plain_parsed.job, 0);
}

TEST(JobTag, AdoptedPlansCarryTheJobId) {
  ClusterService service(SmallFleet(), FastOptions(AllocationPolicy::kDynamic));
  JobRequest request;
  request.config = model::Llama7B();
  request.global_batch = 8;
  request.min_nodes = 1;
  request.max_nodes = 1;
  const int id = service.Submit(request);
  const JobRecord& job = service.job(id);
  ASSERT_TRUE(job.plan.feasible);
  ASSERT_FALSE(job.plan.schedule_text.empty());
  const sched::Schedule schedule = sched::ParseSchedule(job.plan.schedule_text);
  EXPECT_EQ(schedule.job, id);
}

// Multi-job Chrome-trace export: one process group per job, spans named
// with the job tag.
TEST(JobTag, MultiJobTraceInterleavesByJobId) {
  const sched::Schedule plain = sched::OneFOneBSchedule(2, 2);
  const sim::UniformCostModel costs(1.0, 2.0, 0.0, 0.0);

  trace::JobTimeline a;
  a.job_id = 1;
  a.name = "jobA";
  a.offset = 0;
  a.result = sim::Simulate(plain, costs);

  sched::Schedule tagged = plain;
  sched::TagJob(tagged, 2);
  trace::JobTimeline b;
  b.job_id = 2;
  b.name = "jobB";
  b.offset = 5.0;
  b.result = sim::Simulate(tagged, costs);

  const std::string json = trace::ToChromeTraceJson({a, b});
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  EXPECT_NE(json.find("jobA"), std::string::npos);
  EXPECT_NE(json.find("j=2"), std::string::npos);  // tagged op names
  EXPECT_EQ(json.find("j=1"), std::string::npos);  // untagged job stays clean
}

// ---- Service edge cases ----------------------------------------------------

TEST(ClusterService, RejectsStructurallyImpossibleDemand) {
  ClusterService service(SmallFleet(), FastOptions(AllocationPolicy::kDynamic));
  JobRequest request;
  request.config = model::Llama7B();
  request.min_nodes = 7;  // fleet has 6 nodes total
  request.max_nodes = 7;
  const int id = service.Submit(request);
  EXPECT_EQ(service.job(id).state, JobState::kReclaimed);
  EXPECT_EQ(service.Metrics().rejected, 1);
}

TEST(ClusterService, StaticPolicyNeverShrinksOrPreempts) {
  ClusterServiceOptions options = FastOptions(AllocationPolicy::kStaticEqual);
  options.verify_invariants = true;
  ClusterService service(SmallFleet(), options);
  const std::vector<JobRequest> requests = GenerateTraffic(FuzzTraffic(3, 6, 60));
  const ClusterMetrics m = RunTraffic(service, requests, /*failures=*/3, 29);
  EXPECT_EQ(m.preemptions, 0);
  EXPECT_EQ(m.shrinks, 0);
  EXPECT_EQ(m.expands, 0);
}

TEST(ClusterService, NodeFailureShrinksOrRequeuesUnderDynamicPolicy) {
  ClusterServiceOptions options = FastOptions(AllocationPolicy::kDynamic);
  options.verify_invariants = true;
  ClusterService service(SmallFleet(), options);
  JobRequest request;
  request.config = model::Llama7B();
  request.global_batch = 8;
  request.min_nodes = 1;
  request.max_nodes = 2;
  request.iterations = 1000;
  const int id = service.Submit(request);
  ASSERT_EQ(service.job(id).state, JobState::kAdmitted);
  const int tier = service.job(id).alloc.slices[0].tier;
  const int node = service.job(id).alloc.node_ids[0][0];
  service.OnNodeFailure(10.0, tier, node);
  const JobRecord& job = service.job(id);
  // Held 2 nodes, min 1: the survivor re-plans and keeps running. (The
  // admission loop may immediately re-expand it into remaining free
  // capacity, so the post-failure size is [min, max], not exactly 1.)
  EXPECT_EQ(job.shrink_count, 1);
  EXPECT_TRUE(job.state == JobState::kAdmitted || job.state == JobState::kRunning);
  EXPECT_GE(job.alloc.nodes(), 1);
  EXPECT_LE(job.alloc.nodes(), 2);
  service.Drain();
  EXPECT_EQ(service.Metrics().completed, 1);
}

}  // namespace
}  // namespace mepipe::core
