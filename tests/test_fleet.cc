// Tests for heterogeneous-fleet planning (core/fleet + the planner's
// fleet path): placement enumeration, speed-proportional layer splits,
// the single-tier bit-identity contract, surrogate fidelity on placed
// candidates, dollar-cost pricing, and the objective flip the paper's
// economics imply.
#include "core/fleet.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/deployment.h"
#include "core/iteration.h"
#include "core/planner.h"
#include "core/rebalance.h"
#include "core/surrogate.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe::core {
namespace {

hw::ClusterTopology MixedFleet(const hw::TierLink& cross) {
  hw::ClusterTopology fleet;
  fleet.tiers = {hw::Rtx4090Tier(), hw::A100Tier()};
  fleet.SetLinkBetween(0, 1, cross);
  return fleet;
}

hw::TierLink Lan() { return hw::LanLink(hw::Rtx4090Cluster().inter_node); }

PlacedStrategy Placed(Method method, int pp, int dp, int spp, hw::StagePlacement placement) {
  PlacedStrategy placed;
  placed.strategy.method = method;
  placed.strategy.pp = pp;
  placed.strategy.dp = dp;
  placed.strategy.spp = spp;
  placed.placement = std::move(placement);
  return placed;
}

// ---- PartitionUnitsBySpeed pins (satellite: 2x / 4x ratios) ---------------

TEST(PartitionBySpeed, TwoTimesSlowerStageHostsHalfTheLayers) {
  // Two stages, the second 2x slower, 12 units: load is equalized at
  // 8·1 == 4·2.
  const auto units = PartitionUnitsBySpeed(12, {1.0, 2.0}, 1);
  EXPECT_EQ(units, (std::vector<int>{8, 4}));
}

TEST(PartitionBySpeed, FourTimesSlowerStageHostsAQuarter) {
  const auto units = PartitionUnitsBySpeed(10, {1.0, 4.0}, 1);
  EXPECT_EQ(units, (std::vector<int>{8, 2}));
}

TEST(PartitionBySpeed, OneSlowStageAmongFourFastOnes) {
  const auto units = PartitionUnitsBySpeed(32, {1.0, 1.0, 1.0, 4.0}, 1);
  ASSERT_EQ(units.size(), 4u);
  EXPECT_EQ(units[0] + units[1] + units[2] + units[3], 32);
  // The 4x stage ends with the fewest layers and the bottleneck
  // max(units_i · slowdown_i) is the optimal 10.
  EXPECT_EQ(units[3], 2);
  double bottleneck = 0;
  const std::vector<double> slowdown = {1.0, 1.0, 1.0, 4.0};
  for (std::size_t i = 0; i < units.size(); ++i) {
    bottleneck = std::max(bottleneck, units[i] * slowdown[i]);
  }
  EXPECT_DOUBLE_EQ(bottleneck, 10.0);
}

// ---- Placement enumeration and slowdown profiles --------------------------

TEST(Placements, EnumerationOrderIsUniformThenContiguousSplits) {
  const auto fleet = MixedFleet(Lan());
  const auto placements = EnumeratePlacements(fleet, 3);
  ASSERT_EQ(placements.size(), 6u);
  EXPECT_EQ(placements[0].stage_tier, (std::vector<int>{0, 0, 0}));
  EXPECT_EQ(placements[1].stage_tier, (std::vector<int>{1, 1, 1}));
  EXPECT_EQ(placements[2].stage_tier, (std::vector<int>{0, 1, 1}));
  EXPECT_EQ(placements[3].stage_tier, (std::vector<int>{0, 0, 1}));
  EXPECT_EQ(placements[4].stage_tier, (std::vector<int>{1, 0, 0}));
  EXPECT_EQ(placements[5].stage_tier, (std::vector<int>{1, 1, 0}));
}

TEST(Placements, SlowdownsAreRelativeToTheFastestTier) {
  const auto fleet = MixedFleet(Lan());
  hw::StagePlacement split;
  split.stage_tier = {1, 1, 0, 0};
  const auto profile = PlacementSlowdowns(fleet, split);
  ASSERT_EQ(profile.slowdown.size(), 4u);
  // The A100 is the fastest tier: its stages sit at exactly 1, the 4090
  // stages strictly above.
  EXPECT_DOUBLE_EQ(profile.slowdown[0], 1.0);
  EXPECT_DOUBLE_EQ(profile.slowdown[1], 1.0);
  EXPECT_GT(profile.slowdown[2], 1.0);
  EXPECT_DOUBLE_EQ(profile.slowdown[2], profile.slowdown[3]);
  EXPECT_DOUBLE_EQ(profile.slowdown[2], fleet.TierSlowdown(0));
}

TEST(Placements, ValidateFlagsOversubscriptionAndShape) {
  const auto fleet = MixedFleet(Lan());
  // 4 stages x dp=16 = 64 ranks, all on the 32-GPU A100 tier.
  hw::ParallelLayout layout{4, 16, 1, 1};
  const auto oversub = layout.Validate(fleet, hw::StagePlacement::Uniform(4, 1));
  ASSERT_FALSE(oversub.empty());
  EXPECT_EQ(oversub.front().code, hw::LayoutIssue::Code::kRankOversubscription);

  const auto wrong_shape = layout.Validate(fleet, hw::StagePlacement::Uniform(3, 0));
  ASSERT_FALSE(wrong_shape.empty());
  EXPECT_EQ(wrong_shape.front().code, hw::LayoutIssue::Code::kPlacementShape);

  // tp > 1 on the consumer (through-host) tier is structurally flagged.
  hw::ParallelLayout tp2{4, 2, 1, 2};
  const auto issues = tp2.Validate(fleet, hw::StagePlacement::Uniform(4, 0));
  bool flagged = false;
  for (const auto& issue : issues) {
    flagged |= issue.code == hw::LayoutIssue::Code::kTensorParallelOnConsumerTier;
  }
  EXPECT_TRUE(flagged);
}

// ---- Single-tier bit-identity ---------------------------------------------

TEST(SingleTier, PlacedIterationReproducesSimulateIterationBitForBit) {
  const auto config = model::Llama7B();
  const auto cluster = hw::Rtx4090Cluster();
  const auto fleet = hw::SingleTierTopology(cluster);
  const auto placed =
      Placed(Method::kSvpp, 8, 8, 4, hw::StagePlacement::Uniform(8, 0));

  for (const bool dp_overlap : {false, true}) {
    IterationOptions options;
    options.dp_overlap = dp_overlap;
    const auto reference = SimulateIteration(config, placed.strategy, cluster, 128, options);
    const auto fleet_view = SimulatePlacedIteration(config, placed, fleet, 128, options);
    ASSERT_TRUE(reference.feasible);
    ASSERT_TRUE(fleet_view.result.feasible);
    EXPECT_EQ(fleet_view.result.note, reference.note);
    EXPECT_EQ(fleet_view.result.micros, reference.micros);
    EXPECT_EQ(fleet_view.result.pipeline_time, reference.pipeline_time);
    EXPECT_EQ(fleet_view.result.dp_sync_time, reference.dp_sync_time);
    EXPECT_EQ(fleet_view.result.dp.serialized, reference.dp.serialized);
    EXPECT_EQ(fleet_view.result.dp.hidden, reference.dp.hidden);
    EXPECT_EQ(fleet_view.result.dp.exposed, reference.dp.exposed);
    EXPECT_EQ(fleet_view.result.iteration_time, reference.iteration_time);
    EXPECT_EQ(fleet_view.result.bubble_ratio, reference.bubble_ratio);
    EXPECT_EQ(fleet_view.result.static_memory, reference.static_memory);
    EXPECT_EQ(fleet_view.result.peak_activation, reference.peak_activation);
    EXPECT_EQ(fleet_view.result.peak_memory, reference.peak_memory);
    EXPECT_EQ(fleet_view.result.checkpoint_shard, reference.checkpoint_shard);
    EXPECT_EQ(fleet_view.result.per_gpu_flops, reference.per_gpu_flops);
    EXPECT_EQ(fleet_view.result.mfu, reference.mfu);
    // No placement heterogeneity: every stage at slowdown 1, even split.
    for (const double s : fleet_view.slowdown) {
      EXPECT_DOUBLE_EQ(s, 1.0);
    }
  }
}

TEST(SingleTier, PlacedSurrogateReproducesSurrogatePriceBitForBit) {
  const auto config = model::Llama7B();
  const auto cluster = hw::Rtx4090Cluster();
  const auto fleet = hw::SingleTierTopology(cluster);
  const auto placed =
      Placed(Method::kSvpp, 8, 8, 4, hw::StagePlacement::Uniform(8, 0));

  const auto reference = SurrogatePrice(config, placed.strategy, cluster, 128);
  const auto fleet_view = SurrogatePricePlaced(config, placed, fleet, 128);
  ASSERT_TRUE(reference.feasible);
  ASSERT_TRUE(fleet_view.result.feasible);
  EXPECT_EQ(fleet_view.result.note, reference.note);
  EXPECT_EQ(fleet_view.result.micros, reference.micros);
  EXPECT_EQ(fleet_view.result.pipeline_time, reference.pipeline_time);
  EXPECT_EQ(fleet_view.result.dp_sync_time, reference.dp_sync_time);
  EXPECT_EQ(fleet_view.result.iteration_time, reference.iteration_time);
  EXPECT_EQ(fleet_view.result.bubble_ratio, reference.bubble_ratio);
  EXPECT_EQ(fleet_view.result.static_memory, reference.static_memory);
  EXPECT_EQ(fleet_view.result.peak_activation, reference.peak_activation);
  EXPECT_EQ(fleet_view.result.peak_memory, reference.peak_memory);
  EXPECT_EQ(fleet_view.result.checkpoint_shard, reference.checkpoint_shard);
}

// ---- Heterogeneous pricing ------------------------------------------------

TEST(Hetero, SlowTierStagesHostFewerLayersAndStretchTheIteration) {
  const auto config = model::Llama7B();
  const auto fleet = MixedFleet(Lan());
  hw::StagePlacement split;
  split.stage_tier = {1, 1, 0, 0};  // A100 first half, 4090 second half
  const auto placed = Placed(Method::kSvpp, 4, 4, 4, split);
  const auto out = SimulatePlacedIteration(config, placed, fleet, 128);
  ASSERT_TRUE(out.result.feasible) << out.result.note;
  ASSERT_EQ(out.stage_units.size(), 4u);
  // Speed-proportional partition: the fast A100 stages take strictly
  // more layers than the 4090 stages.
  EXPECT_GT(out.stage_units[0], out.stage_units[2]);
  EXPECT_EQ(out.stage_units[0], out.stage_units[1]);
  EXPECT_EQ(out.stage_units[2], out.stage_units[3]);

  // The same shape run entirely on A100s is faster than the mixed
  // placement; entirely on 4090s slower.
  const auto premium =
      SimulatePlacedIteration(config, Placed(Method::kSvpp, 4, 4, 4,
                                             hw::StagePlacement::Uniform(4, 1)),
                              fleet, 128);
  ASSERT_TRUE(premium.result.feasible) << premium.result.note;
  EXPECT_LT(premium.result.iteration_time, out.result.iteration_time);
  const auto budget =
      SimulatePlacedIteration(config, Placed(Method::kSvpp, 4, 4, 4,
                                             hw::StagePlacement::Uniform(4, 0)),
                              fleet, 128);
  ASSERT_TRUE(budget.result.feasible) << budget.result.note;
  EXPECT_GT(budget.result.iteration_time, out.result.iteration_time);
}

TEST(Hetero, SurrogateTracksTheDesOnPlacedCandidates) {
  // Surrogate-vs-DES fidelity pin on a heterogeneous config: the tabular
  // price stays within a few percent of the engine's makespan (the only
  // approximation is transfer contention).
  const auto config = model::Llama7B();
  const auto fleet = MixedFleet(Lan());
  hw::StagePlacement split;
  split.stage_tier = {1, 1, 0, 0};
  const auto placed = Placed(Method::kSvpp, 4, 4, 4, split);
  const auto des = SimulatePlacedIteration(config, placed, fleet, 128);
  const auto surrogate = SurrogatePricePlaced(config, placed, fleet, 128);
  ASSERT_TRUE(des.result.feasible);
  ASSERT_TRUE(surrogate.result.feasible);
  const double rel = std::abs(surrogate.result.iteration_time - des.result.iteration_time) /
                     des.result.iteration_time;
  EXPECT_LT(rel, 0.05) << "surrogate " << surrogate.result.iteration_time << " vs DES "
                       << des.result.iteration_time;
  // The dollar decomposition agrees on the placement-static parts.
  EXPECT_EQ(surrogate.dollars.fleet_usd_per_hour, des.dollars.fleet_usd_per_hour);
  EXPECT_EQ(surrogate.dollars.wan_egress_bytes, des.dollars.wan_egress_bytes);
}

TEST(Hetero, PlacedSurrogateCacheHitsReproduceTheMiss) {
  const auto config = model::Llama7B();
  const auto fleet = MixedFleet(Lan());
  hw::StagePlacement split;
  split.stage_tier = {1, 1, 0, 0};
  const auto placed = Placed(Method::kSvpp, 4, 4, 4, split);
  SurrogateCache cache;
  SurrogateOptions options;
  options.cache = &cache;
  const auto miss = SurrogatePricePlaced(config, placed, fleet, 128, options);
  const auto hit = SurrogatePricePlaced(config, placed, fleet, 128, options);
  EXPECT_FALSE(miss.result.cache_hit);
  EXPECT_TRUE(hit.result.cache_hit);
  EXPECT_EQ(hit.result.iteration_time, miss.result.iteration_time);
  EXPECT_EQ(hit.dollars.usd_per_iteration, miss.dollars.usd_per_iteration);
}

// ---- Dollar-cost pricing --------------------------------------------------

TEST(Dollars, RentalRatesFollowOccupiedRanks) {
  const auto fleet = MixedFleet(Lan());
  // Whole fleet: 64 x $0.35 + 32 x $1.90.
  EXPECT_DOUBLE_EQ(FleetHourlyCostUsd(fleet), 64 * 0.35 + 32 * 1.90);
  // A 4-stage x dp=2 layout entirely on the A100 tier rents 8 ranks.
  hw::ParallelLayout layout{4, 2, 1, 1};
  EXPECT_DOUBLE_EQ(
      PlacementHourlyCostUsd(fleet, hw::StagePlacement::Uniform(4, 1), layout),
      8 * 1.90);
  // Split placement: half the ranks at each rate.
  hw::StagePlacement split;
  split.stage_tier = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(PlacementHourlyCostUsd(fleet, split, layout),
                   4 * 0.35 + 4 * 1.90);
}

TEST(Dollars, EgressBilledPerDecimalGigabyte) {
  EXPECT_DOUBLE_EQ(EgressCostUsd(2'000'000'000, 0.05), 0.10);
  EXPECT_DOUBLE_EQ(EgressCostUsd(0, 0.05), 0.0);
  EXPECT_THROW(EgressCostUsd(-1, 0.05), CheckError);
  EXPECT_THROW(EgressCostUsd(1, -0.01), CheckError);
}

TEST(Dollars, WanEgressScalesWithTierCrossings) {
  const auto config = model::Llama7B();
  const auto wan = MixedFleet(hw::WanLink(25.0, 0.02));
  hw::StagePlacement one_crossing;
  one_crossing.stage_tier = {0, 0, 1, 1};
  hw::StagePlacement three_crossings;
  three_crossings.stage_tier = {0, 1, 0, 1};
  const auto once = SimulatePlacedIteration(
      config, Placed(Method::kSvpp, 4, 4, 4, one_crossing), wan, 128);
  const auto thrice = SimulatePlacedIteration(
      config, Placed(Method::kSvpp, 4, 4, 4, three_crossings), wan, 128);
  ASSERT_TRUE(once.result.feasible) << once.result.note;
  ASSERT_TRUE(thrice.result.feasible) << thrice.result.note;
  EXPECT_GT(once.dollars.wan_egress_bytes, 0);
  EXPECT_EQ(thrice.dollars.wan_egress_bytes, 3 * once.dollars.wan_egress_bytes);
  EXPECT_DOUBLE_EQ(once.dollars.usd_per_iteration,
                   once.dollars.rental_usd_per_iteration +
                       once.dollars.egress_usd_per_iteration);

  // The same crossings over a LAN link bill nothing.
  const auto lan = MixedFleet(Lan());
  const auto free_lan = SimulatePlacedIteration(
      config, Placed(Method::kSvpp, 4, 4, 4, one_crossing), lan, 128);
  ASSERT_TRUE(free_lan.result.feasible);
  EXPECT_EQ(free_lan.dollars.wan_egress_bytes, 0);
  EXPECT_DOUBLE_EQ(free_lan.dollars.egress_usd_per_iteration, 0.0);
}

// ---- The fleet grid search ------------------------------------------------

PlannerOptions FleetSearchOptions(PlannerObjective objective, int threads) {
  PlannerOptions options;
  options.min_dp = 1;
  options.pp_candidates = {4, 8};
  options.slice_candidates = {1, 4};
  options.vp_candidates = {1};
  options.two_phase = true;
  options.surrogate_top_k = 8;
  options.threads = threads;
  options.objective = objective;
  return options;
}

TEST(FleetSearch, DollarObjectiveFlipsTheWinnerAwayFromPremium) {
  const auto config = model::Llama7B();
  const auto fleet = MixedFleet(hw::WanLink(5.0, 0.08));
  const auto by_time = SearchBestFleetStrategy(
      Method::kSvpp, config, fleet, 128,
      FleetSearchOptions(PlannerObjective::kIterationTime, 1));
  const auto by_cost = SearchBestFleetStrategy(
      Method::kSvpp, config, fleet, 128,
      FleetSearchOptions(PlannerObjective::kDollarCost, 1));
  ASSERT_TRUE(by_time.best.has_value());
  ASSERT_TRUE(by_cost.best.has_value());
  // The objectives disagree: time pays for the premium tier, dollars do
  // not — and each winner is optimal under its own metric.
  EXPECT_NE(by_time.best->placed.ToString(), by_cost.best->placed.ToString());
  EXPECT_LT(by_cost.best->dollars.usd_per_iteration,
            by_time.best->dollars.usd_per_iteration);
  EXPECT_LE(by_time.best->result.iteration_time, by_cost.best->result.iteration_time);
  // Placements that failed validation were filtered, not evaluated.
  EXPECT_GT(by_cost.invalid_placements, 0);
  EXPECT_GT(by_cost.evaluated, 0);
}

TEST(FleetSearch, TwoPhaseWinnerIsThreadCountInvariant) {
  const auto config = model::Llama7B();
  const auto fleet = MixedFleet(hw::WanLink(25.0, 0.02));
  std::optional<PlacedIterationResult> reference;
  for (const int threads : {1, 2, 8}) {
    const auto result = SearchBestFleetStrategy(
        Method::kSvpp, config, fleet, 128,
        FleetSearchOptions(PlannerObjective::kDollarCost, threads));
    ASSERT_TRUE(result.best.has_value()) << "threads=" << threads;
    if (!reference) {
      reference = result.best;
      continue;
    }
    EXPECT_EQ(result.best->placed.ToString(), reference->placed.ToString());
    EXPECT_EQ(result.best->result.iteration_time, reference->result.iteration_time);
    EXPECT_EQ(result.best->dollars.usd_per_iteration,
              reference->dollars.usd_per_iteration);
  }
}

TEST(FleetSearch, GoodputObjectiveIsRejected) {
  const auto fleet = MixedFleet(Lan());
  EXPECT_THROW(SearchBestFleetStrategy(
                   Method::kSvpp, model::Llama7B(), fleet, 128,
                   FleetSearchOptions(PlannerObjective::kGoodput, 1)),
               CheckError);
}

}  // namespace
}  // namespace mepipe::core
