// Tests for the transformer model descriptions (model/transformer).
#include "model/transformer.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace mepipe::model {
namespace {

TEST(Transformer, PresetsMatchPaperTable4) {
  const TransformerConfig c7 = Llama7B();
  EXPECT_EQ(c7.hidden, 4096);
  EXPECT_EQ(c7.layers, 30);
  const TransformerConfig c13 = Llama13B();
  EXPECT_EQ(c13.hidden, 5120);
  EXPECT_EQ(c13.layers, 38);
  const TransformerConfig c34 = Llama34B();
  EXPECT_EQ(c34.hidden, 8192);
  EXPECT_EQ(c34.layers, 46);
  for (const auto& c : {c7, c13, c34}) {
    EXPECT_EQ(c.seq_len, 4096);
    EXPECT_EQ(c.vocab, 32000);
  }
}

TEST(Transformer, PartitionUnitsIncludeEmbeddingAndHead) {
  // §7.1: embedding + head count as partition units ⇒ 32 / 40 / 48.
  EXPECT_EQ(Llama7B().partition_units(), 32);
  EXPECT_EQ(Llama13B().partition_units(), 40);
  EXPECT_EQ(Llama34B().partition_units(), 48);
}

TEST(Transformer, ParameterCountsAreInTheRightBallpark) {
  // The "7B"/"13B"/"34B" names refer to the full models; ours have two
  // fewer layers, so expect slightly below the nominal count.
  const double p7 = static_cast<double>(Llama7B().total_params());
  EXPECT_GT(p7, 5.8e9);
  EXPECT_LT(p7, 7.0e9);
  const double p13 = static_cast<double>(Llama13B().total_params());
  EXPECT_GT(p13, 11.5e9);
  EXPECT_LT(p13, 13.2e9);
  const double p34 = static_cast<double>(Llama34B().total_params());
  EXPECT_GT(p34, 29e9);
  EXPECT_LT(p34, 34.5e9);
}

TEST(Transformer, GroupedQueryAttentionShrinksKv) {
  const TransformerConfig c34 = Llama34B();
  EXPECT_EQ(c34.head_dim(), 128);
  EXPECT_EQ(c34.kv_hidden(), 8 * 128);
  EXPECT_LT(c34.kv_hidden(), c34.hidden);
  // MHA models: kv width == hidden.
  EXPECT_EQ(Llama13B().kv_hidden(), Llama13B().hidden);
}

TEST(Transformer, BySizeLookup) {
  EXPECT_EQ(LlamaBySize("7B").name, "Llama-7B");
  EXPECT_EQ(LlamaBySize("13B").name, "Llama-13B");
  EXPECT_EQ(LlamaBySize("34B").name, "Llama-34B");
  EXPECT_THROW(LlamaBySize("70B"), CheckError);
}

TEST(Transformer, TinyModelIsConsistent) {
  const TransformerConfig tiny = TinyTestModel();
  EXPECT_GT(tiny.total_params(), 0);
  EXPECT_EQ(tiny.partition_units(), tiny.layers + 2);
  EXPECT_EQ(tiny.hidden % tiny.heads, 0);
}

}  // namespace
}  // namespace mepipe::model
