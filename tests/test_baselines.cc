// Tests for the baseline schedule constructions (sched/baselines).
#include "sched/baselines.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "sched/validate.h"
#include "sched/zbv.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace mepipe::sched {
namespace {

TEST(GPipe, AllForwardsBeforeBackwards) {
  const Schedule schedule = GPipeSchedule(4, 6);
  for (int stage = 0; stage < 4; ++stage) {
    EXPECT_EQ(FirstBackwardIndex(schedule, stage), 6u);
  }
}

TEST(OneFOneB, WarmupDepthDecreasesByStage) {
  const Schedule schedule = OneFOneBSchedule(4, 8);
  for (int stage = 0; stage < 4; ++stage) {
    EXPECT_EQ(FirstBackwardIndex(schedule, stage), static_cast<std::size_t>(4 - stage));
  }
}

TEST(OneFOneB, FewMicrosLimitWarmup) {
  const Schedule schedule = OneFOneBSchedule(8, 3);
  EXPECT_LE(PeakRetainedForwards(schedule, 0), 3);
}

TEST(Vpp, RequiresDivisibleMicros) {
  EXPECT_THROW(VppSchedule(4, 2, 6), CheckError);
  EXPECT_THROW(VppSchedule(4, 1, 8), CheckError);
}

TEST(Vpp, MegatronWarmupFormula) {
  const int p = 4;
  const int v = 2;
  const int n = 8;
  const Schedule schedule = VppSchedule(p, v, n);
  for (int rank = 0; rank < p; ++rank) {
    const int warmup = std::min((p - rank - 1) * 2 + (v - 1) * p, n * v);
    // Megatron's steady loop issues one more forward before the first
    // backward, so the first B sits at index warmup + 1.
    EXPECT_EQ(FirstBackwardIndex(schedule, rank), static_cast<std::size_t>(warmup + 1))
        << "rank " << rank;
  }
}

TEST(Vpp, ChunkCyclingOrder) {
  // First p forwards of rank 0 are chunk 0 for micros 0..p-1, then
  // chunk 1 (global chunk p) for the same micros.
  const Schedule schedule = VppSchedule(4, 2, 8);
  const auto& ops = schedule.stage_ops[0];
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(ops[static_cast<std::size_t>(k)].chunk, 0);
    EXPECT_EQ(ops[static_cast<std::size_t>(k)].micro, k);
  }
  for (int k = 4; k < 8; ++k) {
    EXPECT_EQ(ops[static_cast<std::size_t>(k)].chunk, 4);
    EXPECT_EQ(ops[static_cast<std::size_t>(k)].micro, k - 4);
  }
}

TEST(Vpp, LowerBubbleThanOneFOneB) {
  const sim::UniformCostModel costs(1.0, 2.0, 0.0, 0.0);
  const auto vpp = Simulate(VppSchedule(4, 2, 8), costs);
  const auto fb = Simulate(OneFOneBSchedule(4, 8), costs);
  EXPECT_LT(vpp.bubble_ratio, fb.bubble_ratio);
}

TEST(TeraPipe, SliceOrderWithinMicro) {
  const Schedule schedule = TeraPipeSchedule(2, 4, 3);
  const auto& ops = schedule.stage_ops[0];
  // All forwards first, slices in causal order within each micro.
  for (int m = 0; m < 3; ++m) {
    for (int t = 0; t < 4; ++t) {
      const OpId& op = ops[static_cast<std::size_t>(m * 4 + t)];
      EXPECT_EQ(op.kind, OpKind::kForward);
      EXPECT_EQ(op.micro, m);
      EXPECT_EQ(op.slice, t);
    }
  }
}

TEST(TeraPipe, RetainsAllSlicesLikeGPipe) {
  const Schedule schedule = TeraPipeSchedule(4, 4, 4);
  EXPECT_EQ(PeakRetainedForwards(schedule, 0), 16);  // n·s
}

TEST(TeraPipe, LowerBubbleThanGPipeAtSameMicros) {
  const sim::UniformCostModel costs(1.0, 2.0, 0.0, 0.0);
  // Slice ops are s× shorter; compare bubble *ratios*.
  const auto tera = Simulate(TeraPipeSchedule(4, 4, 4), costs);
  const auto gpipe = Simulate(GPipeSchedule(4, 4), costs);
  EXPECT_LT(tera.bubble_ratio, gpipe.bubble_ratio);
}

TEST(Zb1p, SplitsBackwardAndDefersW) {
  const Schedule schedule = Zb1pSchedule(4, 8);
  EXPECT_TRUE(schedule.problem.split_backward);
  EXPECT_TRUE(schedule.deferred_wgrad);
  for (const auto& ops : schedule.stage_ops) {
    EXPECT_EQ(ops.size(), 16u);  // F and B only; W executed by the engine
  }
}

TEST(Zbv, VShapePlacesBothEndsOnStageZero) {
  const Schedule schedule = ZbvSchedule(4, 8);
  EXPECT_EQ(schedule.problem.placement, ChunkPlacement::kVShape);
  EXPECT_EQ(schedule.problem.stage_of_chunk(0), 0);
  EXPECT_EQ(schedule.problem.stage_of_chunk(7), 0);
}

TEST(Zbv, HandcraftedPlacesWStatically) {
  const Schedule schedule = ZbvSchedule(4, 8);
  EXPECT_FALSE(schedule.deferred_wgrad);
  for (const auto& ops : schedule.stage_ops) {
    EXPECT_EQ(ops.size(), 48u);  // 2n each of F, B, W
  }
}

TEST(ZbvCapped, KeepsTheOldDeferredWShape) {
  const Schedule schedule = ZbvCappedSchedule(4, 8);
  EXPECT_TRUE(schedule.deferred_wgrad);
  EXPECT_EQ(schedule.problem.placement, ChunkPlacement::kVShape);
  EXPECT_LE(PeakRetainedForwards(schedule, 0), 4);
  for (const auto& ops : schedule.stage_ops) {
    EXPECT_EQ(ops.size(), 32u);  // F and B only; W executed by the engine
  }
}

TEST(Hanayo, WaveScheduleValidatesAndExecutes) {
  const Schedule schedule = HanayoSchedule(4, 8);
  EXPECT_EQ(schedule.problem.virtual_chunks, 2);
  EXPECT_EQ(schedule.problem.placement, ChunkPlacement::kVShape);
  EXPECT_FALSE(schedule.problem.split_backward);
  const sim::UniformCostModel costs(1.0, 2.0, 0.0, 0.0);
  const auto wave = Simulate(schedule, costs);
  // The greedy V-shape generation is a pessimistic approximation of the
  // handcrafted wave (see DESIGN.md); Table 3's closed form remains the
  // comparison source. Here: a coherent, bounded execution.
  EXPECT_GT(wave.bubble_ratio, 0.0);
  EXPECT_LT(wave.bubble_ratio, 0.5);
}

TEST(Hanayo, MemoryStaysInDappleClass) {
  const Schedule schedule = HanayoSchedule(4, 8);
  // ≤ 2p chunk-forwards of A/(2p) each ⇒ ≤ A (Table 3's bound).
  EXPECT_LE(sched::PeakRetainedForwards(schedule, 0), 2 * 4);
}

// Property sweep: every baseline validates over a parameter grid.
struct BaselineCase {
  int p, n;
};

class BaselineSweep : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(BaselineSweep, AllConstructionsValidate) {
  const auto [p, n] = GetParam();
  std::vector<Schedule> schedules;
  schedules.push_back(GPipeSchedule(p, n));
  schedules.push_back(OneFOneBSchedule(p, n));
  schedules.push_back(TeraPipeSchedule(p, 4, n));
  schedules.push_back(Zb1pSchedule(p, n));
  schedules.push_back(ZbvSchedule(p, n));
  schedules.push_back(ZbvCappedSchedule(p, n));
  schedules.push_back(HanayoSchedule(p, n));
  if (n % p == 0) {
    schedules.push_back(VppSchedule(p, 2, n));
  }
  // Every construction passes the full tabular invariant validator, not
  // just the structural checks its generator already ran.
  for (const Schedule& schedule : schedules) {
    SCOPED_TRACE(schedule.method);
    InvariantOptions invariants;
    invariants.costs.transfer_time = 0.05;
    if (schedule.method == "ZBV") {
      invariants.retained_cap.assign(static_cast<std::size_t>(p),
                                     ZbvMaxRetainedForwards(p, n));
    }
    ValidateScheduleInvariants(schedule, invariants);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BaselineSweep,
                         ::testing::Values(BaselineCase{2, 2}, BaselineCase{2, 8},
                                           BaselineCase{4, 4}, BaselineCase{4, 8},
                                           BaselineCase{4, 17}, BaselineCase{8, 8},
                                           BaselineCase{8, 32}, BaselineCase{16, 16},
                                           BaselineCase{8, 3}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.p) + "n" +
                                  std::to_string(info.param.n);
                         });

}  // namespace
}  // namespace mepipe::sched
